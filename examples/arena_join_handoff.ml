(* An arena-shrunk detector disagreement: the fork/join handoff.

   `racedet arena` found (and shrank to this single-unit program) the
   signature precision gap between the paper's detector and the
   lockset baselines: main writes a static before starting the thread,
   the thread increments it without locks, and main reads it back
   after join().  Every access is ordered by the start/join edges, so
   the program is race-free — and the paper detector's join
   pseudo-locks (Section 2.3) plus the ownership model prove it quiet,
   as does vector-clock happens-before.  Eraser and object-race
   detection model no fork/join ordering at all, so both report a
   race on G.d2s.

   Reproduce the hunt:  dune exec bin/racedet.exe -- arena --repro DIR
   Run this program:     dune exec examples/arena_join_handoff.exe *)

module H = Drd_harness

(* Verbatim arena output (spec: index 0, units [u2:join-handoff x1]);
   the generator names cells by unit id, hence the `2` suffixes. *)
let source =
  {|
  class G {
    static int d2s; static int d2r; static int t2;
    static boolean a2; static boolean b2;
    static Object l2;
  }
  class U2A extends Thread {
    void run() {
      for (int i = 0; i < 1; i = i + 1) { G.d2s = G.d2s + 1; }
    }
  }
  class Main {
    static void main() {
      G.l2 = new Object();
      G.d2s = 1;
      U2A u2a = new U2A();
      u2a.start();
      u2a.join();
      print("u2", G.d2s);
      print("end", 0);
    }
  }
|}

let () =
  Fmt.pr "The join-handoff program, under every registered detector:@.@.";
  List.iter
    (fun (e : H.Registry.entry) ->
      let config = H.Registry.apply e H.Config.full in
      let compiled = H.Pipeline.compile config ~source in
      let r = H.Pipeline.run_module e.H.Registry.impl compiled in
      Fmt.pr "  %-8s %s@." e.H.Registry.name
        (match r.H.Pipeline.m_races with
        | [] -> "quiet (no race)"
        | races -> "reports " ^ String.concat ", " races))
    H.Registry.all;
  Fmt.pr
    "@.The program is race-free: start()/join() order every access.  The \
     paper's@.join pseudo-locks and ownership model prove that without \
     vector clocks;@.the Eraser and object-race disciplines cannot express \
     it.@."
