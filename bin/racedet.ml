(* racedet — command-line driver for the datarace detection pipeline.

   Subcommands:
     run      compile + execute a MiniJava program (file or built-in
              benchmark) under a detector configuration and print the
              race reports;
     explore  run a parallel schedule-exploration campaign (seed sweep,
              quantum jitter or PCT priority scheduling) and print the
              deduped races with reproduction recipes;
     analyze  run only the static datarace analysis and report its
              statistics;
     ir       dump the (optionally instrumented/optimized) IR;
     list     list built-in benchmarks and configurations. *)

module H = Drd_harness
module E = Drd_explore
module Ir = Drd_ir.Ir
open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let load_source file benchmark =
  match (file, benchmark) with
  | Some f, None -> Ok (read_file f)
  | None, Some "figure2" -> Ok (H.Programs.figure2 ())
  | None, Some "figure2-samelock" -> Ok (H.Programs.figure2 ~same_pq:true ())
  | None, Some b -> (
      match H.Programs.find b with
      | Some bench -> Ok bench.H.Programs.b_source
      | None ->
          Error
            (Printf.sprintf "unknown benchmark %s (try: racedet list)" b))
  | Some _, Some _ -> Error "give either FILE or --benchmark, not both"
  | None, None -> Error "give a FILE or --benchmark NAME"

let config_of_name ?quantum ?pct ?(pct_horizon = 20_000) name seed =
  match H.Config.by_name name with
  | Some c ->
      Ok
        {
          c with
          H.Config.seed;
          quantum = Option.value quantum ~default:c.H.Config.quantum;
          policy =
            (match pct with
            | Some depth -> Drd_vm.Interp.Pct { depth; horizon = pct_horizon }
            | None -> c.H.Config.policy);
        }
  | None -> Error (Printf.sprintf "unknown configuration %s" name)

(* ---- common arguments ---- *)

let file_arg =
  Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"MiniJava source file.")

let benchmark_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "b"; "benchmark" ] ~docv:"NAME"
        ~doc:"Use a built-in benchmark instead of a file.")

let config_arg =
  Arg.(
    value & opt string "Full"
    & info [ "c"; "config" ] ~docv:"CONFIG"
        ~doc:"Detector configuration (see $(b,racedet list)).")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Scheduler seed.")

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print detector statistics.")

let quantum_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "quantum" ] ~docv:"N"
        ~doc:"Override the scheduler slice bound (instructions).")

let pct_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "pct" ] ~docv:"D"
        ~doc:
          "Schedule with PCT-style random thread priorities and $(docv) \
           priority-change points instead of the random walk.")

let pct_horizon_arg =
  Arg.(
    value & opt int 20_000
    & info [ "pct-horizon" ] ~docv:"STEPS"
        ~doc:"Step horizon the PCT priority-change points are drawn from.")

(* ---- JSON rendering (hand-rolled; no JSON library in the sealed
   environment) ---- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 32 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let jstr s = "\"" ^ json_escape s ^ "\""

let jlist items = "[" ^ String.concat "," items ^ "]"

let jobj fields =
  "{" ^ String.concat "," (List.map (fun (k, v) -> jstr k ^ ":" ^ v) fields) ^ "}"

let run_json compiled (r : H.Pipeline.result) =
  let names = H.Pipeline.names_of compiled r in
  let race_json (race : Drd_core.Report.race) =
    let e = race.Drd_core.Report.current in
    let p = race.Drd_core.Report.prior in
    let lockset ls =
      jlist
        (List.map
           (fun l -> jstr (Drd_core.Names.lock_name names l))
           (Drd_core.Lockset_id.to_sorted_list ls))
    in
    jobj
      [
        ("location", jstr (Drd_core.Names.loc_name names race.Drd_core.Report.loc));
        ( "current",
          jobj
            [
              ("thread", string_of_int e.Drd_core.Event.thread);
              ( "kind",
                jstr
                  (match e.Drd_core.Event.kind with
                  | Drd_core.Event.Read -> "read"
                  | Drd_core.Event.Write -> "write") );
              ("site", jstr (Drd_core.Names.site_name names e.Drd_core.Event.site));
              ("locks", lockset e.Drd_core.Event.locks);
            ] );
        ( "prior",
          jobj
            [
              ( "thread",
                match p.Drd_core.Trie.p_thread with
                | Drd_core.Event.Thread t -> string_of_int t
                | _ -> jstr "multiple" );
              ( "kind",
                jstr
                  (match p.Drd_core.Trie.p_kind with
                  | Drd_core.Event.Read -> "read"
                  | Drd_core.Event.Write -> "write") );
              ("site", jstr (Drd_core.Names.site_name names p.Drd_core.Trie.p_site));
              ("locks", lockset p.Drd_core.Trie.p_locks);
            ] );
        ( "static_peers",
          jlist
            (List.map jstr
               (H.Pipeline.static_peers_of_site compiled
                  e.Drd_core.Event.site)) );
      ]
  in
  let races =
    match r.H.Pipeline.report with
    | Some coll -> List.map race_json (Drd_core.Report.races coll)
    | None -> List.map (fun l -> jobj [ ("location", jstr l) ]) r.H.Pipeline.races
  in
  let deadlocks =
    List.map
      (fun (d : Drd_core.Lock_order.report) ->
        jobj
          [
            ("locks", jlist (List.map string_of_int d.Drd_core.Lock_order.dl_locks));
            ("threads", jlist (List.map string_of_int d.Drd_core.Lock_order.dl_threads));
          ])
      r.H.Pipeline.deadlocks
  in
  print_endline
    (jobj
       [
         ("races", jlist races);
         ("potential_deadlocks", jlist deadlocks);
         ("events", string_of_int r.H.Pipeline.events);
         ("steps", string_of_int r.H.Pipeline.steps);
         ("threads", string_of_int r.H.Pipeline.threads);
         ("wall_time_s", Printf.sprintf "%.6f" r.H.Pipeline.wall_time);
       ])

(* ---- run ---- *)

let run_cmd_impl file benchmark config_name seed quantum pct pct_horizon
    verbose json =
  match load_source file benchmark with
  | Error e -> `Error (false, e)
  | Ok source -> (
      match config_of_name ?quantum ?pct ~pct_horizon config_name seed with
      | Error e -> `Error (false, e)
      | Ok config when json ->
          let compiled = H.Pipeline.compile config ~source in
          let r = H.Pipeline.run compiled in
          run_json compiled r;
          `Ok ()
      | Ok config ->
          let compiled = H.Pipeline.compile config ~source in
          let r = H.Pipeline.run compiled in
          List.iter
            (fun (tag, v) ->
              match v with
              | Some v -> Fmt.pr "[out] %s = %a@." tag Drd_vm.Value.pp v
              | None -> Fmt.pr "[out] %s@." tag)
            r.H.Pipeline.prints;
          (match r.H.Pipeline.report with
          | Some coll when Drd_core.Report.count coll > 0 ->
              let names = H.Pipeline.names_of compiled r in
              List.iter
                (fun (race : Drd_core.Report.race) ->
                  Fmt.pr "@.%a@." (Drd_core.Report.pp_race names) race;
                  match
                    H.Pipeline.static_peers_of_site compiled
                      race.Drd_core.Report.current.Drd_core.Event.site
                  with
                  | [] -> ()
                  | peers ->
                      Fmt.pr "  statically possible racing statements:@.";
                      List.iter (Fmt.pr "    %s@.") peers)
                (Drd_core.Report.races coll)
          | Some _ -> Fmt.pr "@.No dataraces detected.@."
          | None ->
              if r.H.Pipeline.races = [] then
                Fmt.pr "@.No dataraces detected (%s).@." config.H.Config.name
              else begin
                Fmt.pr "@.Dataraces reported by %s on:@." config.H.Config.name;
                List.iter (Fmt.pr "  %s@.") r.H.Pipeline.races
              end);
          (match r.H.Pipeline.deadlocks with
          | [] -> ()
          | dls ->
              Fmt.pr "@.Potential deadlocks (lock-order cycles):@.";
              List.iter
                (fun (d : Drd_core.Lock_order.report) ->
                  Fmt.pr "  locks {%a} acquired in conflicting order by threads {%a}@."
                    Fmt.(list ~sep:(any ", ") int)
                    d.Drd_core.Lock_order.dl_locks
                    Fmt.(list ~sep:(any ", ") int)
                    d.Drd_core.Lock_order.dl_threads)
                dls);
          if verbose then begin
            Fmt.pr "@.--- pipeline statistics ---@.";
            Fmt.pr "compile time:      %.3fs@." compiled.H.Pipeline.compile_time;
            (match compiled.H.Pipeline.static_stats with
            | Some s -> Fmt.pr "%a@." Drd_static.Race_set.pp_stats s
            | None -> ());
            Fmt.pr "traces inserted:   %d@." compiled.H.Pipeline.traces_inserted;
            Fmt.pr "traces eliminated: %d@." compiled.H.Pipeline.traces_eliminated;
            Fmt.pr "threads:           %d@." r.H.Pipeline.threads;
            Fmt.pr "steps:             %d@." r.H.Pipeline.steps;
            Fmt.pr "events:            %d@." r.H.Pipeline.events;
            Fmt.pr "wall time:         %.3fs@." r.H.Pipeline.wall_time;
            (match r.H.Pipeline.immutability with
            | Some s ->
                Fmt.pr "immutability:      %a@." Drd_core.Immutability.pp_summary s
            | None -> ());
            match r.H.Pipeline.detector_stats with
            | Some s -> Fmt.pr "%a@." Drd_core.Detector.pp_stats s
            | None -> ()
          end;
          `Ok ())

let run_cmd =
  let doc = "run a program under a datarace detector" in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit machine-readable JSON.")
  in
  Cmd.v
    (Cmd.info "run" ~doc)
    Term.(
      ret
        (const run_cmd_impl $ file_arg $ benchmark_arg $ config_arg $ seed_arg
       $ quantum_arg $ pct_arg $ pct_horizon_arg $ verbose_arg $ json_arg))

(* ---- analyze ---- *)

let analyze_impl file benchmark =
  match load_source file benchmark with
  | Error e -> `Error (false, e)
  | Ok source ->
      let ast = Drd_lang.Parser.parse_program source in
      let tprog = Drd_lang.Typecheck.check ast in
      let prog = Drd_ir.Lower.lower_program tprog in
      let rs = Drd_static.Race_set.compute prog in
      Fmt.pr "%a@." Drd_static.Race_set.pp_stats (Drd_static.Race_set.stats rs);
      `Ok ()

let analyze_cmd =
  let doc = "run the static datarace analysis only" in
  Cmd.v
    (Cmd.info "analyze" ~doc)
    Term.(ret (const analyze_impl $ file_arg $ benchmark_arg))

(* ---- ir ---- *)

let ir_impl file benchmark config_name meth =
  match load_source file benchmark with
  | Error e -> `Error (false, e)
  | Ok source -> (
      match config_of_name config_name 42 with
      | Error e -> `Error (false, e)
      | Ok config ->
          let compiled = H.Pipeline.compile config ~source in
          let prog = compiled.H.Pipeline.prog in
          (match meth with
          | Some key -> (
              match Ir.find_mir prog key with
              | Some m -> Fmt.pr "%a@." Drd_ir.Pretty.pp_mir m
              | None -> Fmt.pr "no method %s@." key)
          | None -> Fmt.pr "%a@." Drd_ir.Pretty.pp_program prog);
          `Ok ())

let ir_cmd =
  let doc = "dump the (instrumented) intermediate representation" in
  let meth =
    Arg.(
      value
      & opt (some string) None
      & info [ "m"; "method" ] ~docv:"Class.method" ~doc:"Dump one method only.")
  in
  Cmd.v
    (Cmd.info "ir" ~doc)
    Term.(ret (const ir_impl $ file_arg $ benchmark_arg $ config_arg $ meth))

(* ---- record / detect: post-mortem mode (paper Section 1) ---- *)

let record_impl file benchmark out =
  match load_source file benchmark with
  | Error e -> `Error (false, e)
  | Ok source ->
      let compiled = H.Pipeline.compile H.Config.full ~source in
      let log, result = H.Pipeline.record_log compiled in
      let oc = open_out out in
      Drd_core.Event_log.to_channel oc log;
      close_out oc;
      Fmt.pr "recorded %d events (%d threads, %d steps) to %s@."
        (Drd_core.Event_log.length log)
        result.Drd_vm.Interp.r_max_threads result.Drd_vm.Interp.r_steps out;
      `Ok ()

let record_cmd =
  let doc = "execute a program recording its event log (post-mortem phase 1)" in
  let out =
    Arg.(
      value & opt string "events.log"
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Log file to write.")
  in
  Cmd.v
    (Cmd.info "record" ~doc)
    Term.(ret (const record_impl $ file_arg $ benchmark_arg $ out))

let detect_impl log_file config_name pairs benchmark =
  match config_of_name config_name 42 with
  | Error e -> `Error (false, e)
  | Ok config -> (
    match
      let ic = open_in log_file in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> Drd_core.Event_log.of_channel ic)
    with
    | exception Sys_error e -> `Error (false, e)
    | exception Failure e -> `Error (false, e)
    | log ->
      let coll, stats = H.Pipeline.detect_post_mortem config log in
      Fmt.pr "replayed %d log entries@." (Drd_core.Event_log.length log);
      Fmt.pr "%a@." Drd_core.Detector.pp_stats stats;
      let racy = Drd_core.Report.racy_locs coll in
      (* Site names are available when the recorded program is known
         (record always compiles with the Full configuration). *)
      let site_name =
        match benchmark with
        | None -> fun s -> Printf.sprintf "site %d" s
        | Some b -> (
            match H.Programs.find b with
            | None -> fun s -> Printf.sprintf "site %d" s
            | Some bench ->
                let compiled =
                  H.Pipeline.compile H.Config.full
                    ~source:bench.H.Programs.b_source
                in
                fun s ->
                  if s < 0 then "<unknown>"
                  else
                    Drd_ir.Site_table.name
                      compiled.H.Pipeline.prog.Drd_ir.Ir.p_sites s)
      in
      if racy = [] then Fmt.pr "@.No dataraces detected.@."
      else begin
        Fmt.pr "@.Dataraces on %d locations:@." (List.length racy);
        List.iter (Fmt.pr "  location %d@.") racy;
        if pairs then begin
          Fmt.pr
            "@.FullRace reconstruction (all racing site pairs, Section 2.5):@.";
          List.iter
            (fun (loc, ps) ->
              Fmt.pr "  location %d:@." loc;
              List.iter
                (fun (p : Drd_core.Full_race.pair) ->
                  Fmt.pr "    %5d× %a at %s  vs  %a at %s@." p.Drd_core.Full_race.fr_count
                    Drd_core.Event.pp_kind p.Drd_core.Full_race.fr_kind_a
                    (site_name p.Drd_core.Full_race.fr_site_a)
                    Drd_core.Event.pp_kind p.Drd_core.Full_race.fr_kind_b
                    (site_name p.Drd_core.Full_race.fr_site_b))
                ps)
            (Drd_core.Full_race.reconstruct log ~locs:racy)
        end
      end;
      `Ok ())

let detect_cmd =
  let doc = "run the detection phase offline over a recorded log (phase 2)" in
  let log_file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"LOG" ~doc:"Event log produced by $(b,racedet record).")
  in
  let pairs =
    Arg.(
      value & flag
      & info [ "pairs" ]
          ~doc:"Reconstruct the full set of racing site pairs (FullRace) \
                for each detected location.")
  in
  let bench_for_names =
    Arg.(
      value
      & opt (some string) None
      & info [ "b"; "benchmark" ] ~docv:"NAME"
          ~doc:"The recorded benchmark, to resolve site names.")
  in
  Cmd.v
    (Cmd.info "detect" ~doc)
    Term.(ret (const detect_impl $ log_file $ config_arg $ pairs $ bench_for_names))

(* ---- sweep: the legacy seed sweep (now a thin campaign) ---- *)

let sweep_impl file benchmark config_name nseeds =
  match load_source file benchmark with
  | Error e -> `Error (false, e)
  | Ok source -> (
      match config_of_name config_name 42 with
      | Error e -> `Error (false, e)
      | Ok config ->
          let seeds = List.init nseeds (fun i -> i + 1) in
          let rows, failures = E.Explore.sweep config ~source ~seeds in
          Fmt.pr "racy objects over %d schedules (%s):@." nseeds
            config.H.Config.name;
          if rows = [] then Fmt.pr "  (none)@.";
          List.iter
            (fun (obj, n) -> Fmt.pr "  %4d/%d  %s@." n nseeds obj)
            rows;
          List.iter
            (fun (seed, e) -> Fmt.pr "  seed %d FAILED: %s@." seed e)
            failures;
          `Ok ())

let sweep_cmd =
  let doc = "run across many scheduler seeds and aggregate the reports" in
  let nseeds =
    Arg.(
      value & opt int 10
      & info [ "n"; "seeds" ] ~docv:"N" ~doc:"Number of seeds to sweep.")
  in
  Cmd.v
    (Cmd.info "sweep" ~doc)
    Term.(ret (const sweep_impl $ file_arg $ benchmark_arg $ config_arg $ nseeds))

(* ---- explore: the parallel schedule-exploration campaign ---- *)

let explore_json (r : E.Explore.report) =
  let stats = r.E.Explore.r_stats in
  let races =
    List.map
      (fun (d : E.Aggregate.deduped) ->
        jobj
          [
            ("object", jstr d.E.Aggregate.d_key.E.Aggregate.k_object);
            ("site_a", jstr d.E.Aggregate.d_key.E.Aggregate.k_site_a);
            ("site_b", jstr d.E.Aggregate.d_key.E.Aggregate.k_site_b);
            ("kinds", jstr d.E.Aggregate.d_kinds);
            ("runs_reporting", string_of_int d.E.Aggregate.d_count);
            ("first_run", string_of_int d.E.Aggregate.d_first_index);
            ("first_seed", string_of_int d.E.Aggregate.d_first_seed);
            ("first_schedule", jstr d.E.Aggregate.d_first_spec);
            ("repro_flags", jstr d.E.Aggregate.d_first_repro);
          ])
      r.E.Explore.r_races
  in
  let failures =
    List.map
      (fun (f : E.Aggregate.failure) ->
        jobj
          [
            ("run", string_of_int f.E.Aggregate.f_index);
            ("seed", string_of_int f.E.Aggregate.f_seed);
            ("error", jstr f.E.Aggregate.f_error);
          ])
      r.E.Explore.r_failures
  in
  let discovery =
    List.map
      (fun (i, n) -> jlist [ string_of_int i; string_of_int n ])
      stats.E.Aggregate.st_discovery
  in
  print_endline
    (jobj
       [
         ("strategy", jstr (E.Strategy.name r.E.Explore.r_spec.E.Explore.e_strategy));
         ("workers", string_of_int r.E.Explore.r_spec.E.Explore.e_workers);
         ("runs", string_of_int stats.E.Aggregate.st_runs);
         ("failures", jlist failures);
         ("distinct_races", string_of_int stats.E.Aggregate.st_distinct_races);
         ( "distinct_fingerprints",
           string_of_int stats.E.Aggregate.st_distinct_fingerprints );
         ("events", string_of_int stats.E.Aggregate.st_events);
         ("steps", string_of_int stats.E.Aggregate.st_steps);
         ("wall_s", Printf.sprintf "%.6f" r.E.Explore.r_wall);
         ("runs_per_sec", Printf.sprintf "%.2f" (E.Explore.runs_per_sec r));
         ("events_per_sec", Printf.sprintf "%.1f" (E.Explore.events_per_sec r));
         ( "events_per_sec_per_worker",
           Printf.sprintf "%.1f" (E.Explore.events_per_sec_per_worker r) );
         ("discovery", jlist discovery);
         ("races", jlist races);
       ])

let explore_impl file benchmark config_name strategy depth workers runs
    max_seconds seed quantum pct_horizon json =
  match load_source file benchmark with
  | Error e -> `Error (false, e)
  | Ok source -> (
      match config_of_name ?quantum config_name seed with
      | Error e -> `Error (false, e)
      | Ok config -> (
          match E.Strategy.of_string strategy with
          | Error e -> `Error (false, e)
          | Ok strategy ->
              let strategy =
                match strategy with
                | E.Strategy.Pct _ -> E.Strategy.Pct depth
                | s -> s
              in
              let spec =
                {
                  E.Explore.e_config = config;
                  e_strategy = strategy;
                  e_workers = max workers 1;
                  e_budget =
                    { E.Explore.b_runs = runs; b_seconds = max_seconds };
                  e_pct_horizon = pct_horizon;
                }
              in
              let r = E.Explore.run_campaign spec ~source in
              if json then explore_json r
              else begin
                let stats = r.E.Explore.r_stats in
                let target =
                  match (file, benchmark) with
                  | Some f, _ -> f
                  | None, Some b -> "-b " ^ b
                  | None, None -> "..."
                in
                Fmt.pr
                  "explored %d schedules (%s, %d workers) in %.2fs: %.1f \
                   runs/s, %.0f events/s/worker@."
                  stats.E.Aggregate.st_runs
                  (E.Strategy.name strategy)
                  spec.E.Explore.e_workers r.E.Explore.r_wall
                  (E.Explore.runs_per_sec r)
                  (E.Explore.events_per_sec_per_worker r);
                Fmt.pr
                  "distinct interleaving fingerprints: %d/%d; events %d; \
                   steps %d@."
                  stats.E.Aggregate.st_distinct_fingerprints
                  stats.E.Aggregate.st_runs stats.E.Aggregate.st_events
                  stats.E.Aggregate.st_steps;
                (match r.E.Explore.r_failures with
                | [] -> ()
                | fs ->
                    Fmt.pr "@.%d runs failed:@." (List.length fs);
                    List.iter
                      (fun (f : E.Aggregate.failure) ->
                        Fmt.pr "  run %d (seed %d): %s@." f.E.Aggregate.f_index
                          f.E.Aggregate.f_seed f.E.Aggregate.f_error)
                      fs);
                if r.E.Explore.r_races = [] then
                  Fmt.pr "@.No dataraces detected in any schedule.@."
                else begin
                  Fmt.pr "@.Deduped races (%d):@."
                    (List.length r.E.Explore.r_races);
                  List.iter
                    (fun (d : E.Aggregate.deduped) ->
                      Fmt.pr "  %4d/%d  %a%s@." d.E.Aggregate.d_count
                        stats.E.Aggregate.st_runs E.Aggregate.pp_key
                        d.E.Aggregate.d_key
                        (if d.E.Aggregate.d_kinds = "" then ""
                         else " (" ^ d.E.Aggregate.d_kinds ^ ")");
                      Fmt.pr "          first seen in run %d (%s)@."
                        d.E.Aggregate.d_first_index d.E.Aggregate.d_first_spec;
                      Fmt.pr "          reproduce: racedet run %s -c %s %s@."
                        target config.H.Config.name
                        d.E.Aggregate.d_first_repro)
                    r.E.Explore.r_races;
                  match stats.E.Aggregate.st_discovery with
                  | [] | [ _ ] -> ()
                  | ds ->
                      Fmt.pr "@.new-race discovery (run -> cumulative): %s@."
                        (String.concat ", "
                           (List.map
                              (fun (i, n) -> Printf.sprintf "%d->%d" i n)
                              ds))
                end
              end;
              `Ok ()))

let explore_cmd =
  let doc =
    "explore many schedules in parallel and dedupe the race reports"
  in
  let strategy =
    Arg.(
      value & opt string "pct"
      & info [ "s"; "strategy" ] ~docv:"NAME"
          ~doc:
            "Exploration strategy: $(b,sweep) (sequential seeds), \
             $(b,jitter) (random seed + slice bound per run), or $(b,pct) \
             (random thread priorities with change points).")
  in
  let depth =
    Arg.(
      value & opt int 3
      & info [ "d"; "depth" ] ~docv:"D"
          ~doc:"Priority-change points per run (pct strategy).")
  in
  let workers =
    Arg.(
      value & opt int 1
      & info [ "w"; "workers" ] ~docv:"N"
          ~doc:"Parallel worker domains to fan runs out over.")
  in
  let runs =
    Arg.(
      value & opt int 64
      & info [ "n"; "runs" ] ~docv:"N" ~doc:"Run budget for the campaign.")
  in
  let max_seconds =
    Arg.(
      value
      & opt (some float) None
      & info [ "max-seconds" ] ~docv:"S"
          ~doc:
            "Wall-clock budget; stops claiming new runs once exceeded \
             (makes the campaign non-deterministic).")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit machine-readable JSON.")
  in
  Cmd.v
    (Cmd.info "explore" ~doc)
    Term.(
      ret
        (const explore_impl $ file_arg $ benchmark_arg $ config_arg $ strategy
       $ depth $ workers $ runs $ max_seconds $ seed_arg $ quantum_arg
       $ pct_horizon_arg $ json_arg))

(* ---- list ---- *)

let list_impl () =
  Fmt.pr "Benchmarks (plus the paper's 'figure2' / 'figure2-samelock' examples):@.";
  List.iter
    (fun (b : H.Programs.benchmark) ->
      Fmt.pr "  %-10s %s@." b.H.Programs.b_name b.H.Programs.b_description)
    H.Programs.benchmarks;
  Fmt.pr "@.Configurations:@.";
  List.iter
    (fun (c : H.Config.t) ->
      Fmt.pr "  %-14s static=%b weaker=%b peel=%b cache=%b ownership=%b@."
        c.H.Config.name c.H.Config.static_analysis c.H.Config.weaker_elim
        c.H.Config.loop_peel c.H.Config.use_cache c.H.Config.use_ownership)
    H.Config.all;
  `Ok ()

let list_cmd =
  let doc = "list built-in benchmarks and configurations" in
  Cmd.v (Cmd.info "list" ~doc) Term.(ret (const list_impl $ const ()))

let () =
  let doc = "efficient and precise datarace detection (PLDI 2002)" in
  let info = Cmd.info "racedet" ~version:"1.0" ~doc in
  exit (Cmd.eval (Cmd.group info [ run_cmd; explore_cmd; analyze_cmd; ir_cmd; record_cmd; detect_cmd; sweep_cmd; list_cmd ]))
