(* racedet — command-line driver for the datarace detection pipeline.

   Subcommands:
     run      compile + execute a MiniJava program (file or built-in
              benchmark) under a detector configuration and print the
              race reports;
     explore  run a schedule-exploration campaign (seed sweep, quantum
              jitter or PCT priority scheduling) — optionally one shard
              of a distributed campaign (--shard I/N --emit-obs FILE);
     merge    re-fold shard observation files into the single-process
              campaign report;
     serve    long-lived streaming detection daemon (stdin or a Unix
              socket), bounded memory via quiescent-location eviction;
     analyze  run only the static datarace analysis and report its
              statistics;
     ir       dump the (optionally instrumented/optimized) IR;
     list     list built-in benchmarks and configurations.

   Exit codes: 0 success; 2 malformed input data (event logs,
   observation files, protocol streams); 124 command-line misuse;
   125 internal error. *)

module H = Drd_harness
module E = Drd_explore
module W = Drd_explore.Wire
module Ir = Drd_ir.Ir
module A = Drd_arena.Arena
open Cmdliner

(* Malformed input *data* (as opposed to command-line misuse, which
   cmdliner exits 124 for, and internal errors, which it exits 125
   for): print the diagnostic to stderr and exit 2, so scripts can
   tell a truncated log from a crashed tool. *)
let data_error_exit = 2

let data_error fmt =
  Printf.ksprintf
    (fun m ->
      Printf.eprintf "racedet: %s\n%!" m;
      exit data_error_exit)
    fmt

(* A program that fails to compile — lex, parse or type error — is
   command-line misuse (the user pointed the tool at bad source), not
   malformed input data and not an internal error: route the frontend
   diagnostic through cmdliner's error path, exit 124.  Campaigns
   compile once up-front (Pipeline.compile in Explore.run_campaign), so
   a bad program is fatal before any worker domain starts, never a
   per-run failure row. *)
let or_compile_error f =
  try f () with H.Pipeline.Compile_error msg -> `Error (false, msg)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let load_source file benchmark =
  match (file, benchmark) with
  | Some f, None -> Ok (read_file f)
  | None, Some "figure2" -> Ok (H.Programs.figure2 ())
  | None, Some "figure2-samelock" -> Ok (H.Programs.figure2 ~same_pq:true ())
  | None, Some b -> (
      match H.Programs.find b with
      | Some bench -> Ok bench.H.Programs.b_source
      | None ->
          Error
            (Printf.sprintf "unknown benchmark %s (try: racedet list)" b))
  | Some _, Some _ -> Error "give either FILE or --benchmark, not both"
  | None, None -> Error "give a FILE or --benchmark NAME"

(* What reproduction command lines name: the file, or the benchmark
   flag that selects the same program. *)
let target_of file benchmark =
  match (file, benchmark) with
  | Some f, _ -> f
  | None, Some b -> "-b " ^ b
  | None, None -> "..."

let config_of_name ?quantum ?pct ?(pct_horizon = 20_000) name seed =
  match H.Config.by_name name with
  | Some c ->
      Ok
        {
          c with
          H.Config.seed;
          quantum = Option.value quantum ~default:c.H.Config.quantum;
          policy =
            (match pct with
            | Some depth -> Drd_vm.Interp.Pct { depth; horizon = pct_horizon }
            | None -> c.H.Config.policy);
        }
  | None -> Error (Printf.sprintf "unknown configuration %s" name)

(* ---- common arguments (one definition per flag; every subcommand
   that takes a seed/strategy/… shares these) ---- *)

let file_arg =
  Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"MiniJava source file.")

let benchmark_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "b"; "benchmark" ] ~docv:"NAME"
        ~doc:"Use a built-in benchmark instead of a file.")

let config_arg =
  Arg.(
    value & opt string "Full"
    & info [ "c"; "config" ] ~docv:"CONFIG"
        ~doc:
          "Detector configuration (see $(b,racedet list)).  Selecting a \
           baseline technique by configuration name ($(b,-c Eraser), \
           $(b,-c ObjRace), $(b,-c HappensBefore)) is deprecated: use \
           $(b,--detector) $(b,eraser)/$(b,objrace)/$(b,vclock).")

(* The name-keyed detector registry behind `--detector`: unknown names
   are command-line misuse, so cmdliner's conv error path (exit 124)
   is exactly right. *)
let detector_conv : H.Registry.entry Arg.conv =
  let parse s =
    match H.Registry.find s with
    | Some e -> Ok e
    | None ->
        Error
          (`Msg
             (Printf.sprintf "unknown detector %s (expected one of: %s)" s
                (String.concat ", " (H.Registry.names ()))))
  in
  let print ppf (e : H.Registry.entry) = Fmt.string ppf e.H.Registry.name in
  Arg.conv (parse, print)

let detector_doc =
  "Detection technique (see $(b,racedet list)): $(b,paper), $(b,eraser), \
   $(b,objrace) or $(b,vclock).  Supersedes selecting baselines through \
   $(b,-c): $(b,-c Eraser) is $(b,--detector eraser), $(b,-c ObjRace) is \
   $(b,--detector objrace), $(b,-c HappensBefore) is $(b,--detector \
   vclock)."

let detector_arg =
  Arg.(
    value
    & opt (some detector_conv) None
    & info [ "detector" ] ~docv:"NAME" ~doc:detector_doc)

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Scheduler seed.")

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print detector statistics.")

let quantum_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "quantum" ] ~docv:"N"
        ~doc:"Override the scheduler slice bound (instructions).")

let pct_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "pct" ] ~docv:"D"
        ~doc:
          "Schedule with PCT-style random thread priorities and $(docv) \
           priority-change points instead of the random walk.")

let pct_horizon_arg =
  Arg.(
    value & opt int 20_000
    & info [ "pct-horizon" ] ~docv:"STEPS"
        ~doc:"Step horizon the PCT priority-change points are drawn from.")

let json_arg =
  Arg.(value & flag & info [ "json" ] ~doc:"Emit machine-readable JSON.")

let engine_arg =
  Arg.(
    value
    & opt
        (enum
           [
             ("specialized", (`Spec : H.Pipeline.engine));
             ("linked", `Linked);
             ("ref", `Ref);
           ])
        `Spec
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:
          "VM engine: $(b,specialized) executes the flat linked image with \
           the link-time specialized trace fast paths enabled (the \
           default); $(b,linked) executes the same image with the fast \
           paths disabled; $(b,ref) executes the frozen pre-link block \
           interpreter.  All three produce bit-identical schedules and \
           reports; $(b,linked) and $(b,ref) exist for cross-checking and \
           benchmarking.")

let no_specialize_arg =
  Arg.(
    value & flag
    & info [ "no-specialize" ]
        ~doc:
          "Disable the link-time specialized trace fast paths: run the \
           $(b,linked) engine even though $(b,specialized) is the default. \
           Reports are identical either way; this exists for cross-checking \
           and for timing the generic detector pipeline.")

let site_stats_arg =
  Arg.(
    value & flag
    & info [ "site-stats" ]
        ~doc:
          "Count events per trace site and print a table of site, \
           specialization class (fixed-lockset, owned, read-only or \
           generic), events seen, fast-path drops and generic fallbacks, \
           plus the fraction of all events that arrived through \
           specialized sites.")

let no_timing_arg =
  Arg.(
    value & flag
    & info [ "no-timing" ]
        ~doc:
          "Omit wall-clock, throughput and worker-count output so reports \
           are comparable across machines and with $(b,racedet merge).")

let strategy_arg =
  Arg.(
    value & opt string "pct"
    & info [ "s"; "strategy" ] ~docv:"NAME"
        ~doc:
          "Exploration strategy: $(b,sweep) (sequential seeds), \
           $(b,jitter) (random seed + slice bound per run), or $(b,pct) \
           (random thread priorities with change points).")

let depth_arg =
  Arg.(
    value & opt int 3
    & info [ "d"; "depth" ] ~docv:"D"
        ~doc:"Priority-change points per run (pct strategy).")

let workers_arg =
  Arg.(
    value & opt int 1
    & info [ "w"; "workers" ] ~docv:"N"
        ~doc:"Parallel worker domains to fan runs out over.")

let batch_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "batch" ] ~docv:"N"
        ~doc:
          "Runs per work-queue claim (default: scaled to the budget and \
           worker count).  The report is byte-identical for every batch \
           size; the knob only trades hand-off overhead against \
           adaptive-budget overshoot.")

let no_ctx_reuse_arg =
  Arg.(
    value & flag
    & info [ "no-ctx-reuse" ]
        ~doc:
          "Allocate fresh detector and VM state for every run instead of \
           resetting each worker's pooled run context in place.  The \
           report is byte-identical either way; the flag exists to \
           demonstrate (and CI-check) exactly that, at a throughput \
           cost.")

let runs_arg =
  Arg.(
    value & opt int 64
    & info [ "n"; "runs" ] ~docv:"N" ~doc:"Run budget for the campaign.")

(* ---- run: JSON rendering on the shared Wire.json value ---- *)

let run_json compiled (r : H.Pipeline.result) ~extra =
  let names = H.Pipeline.names_of compiled r in
  let race_json (race : Drd_core.Report.race) =
    let e = race.Drd_core.Report.current in
    let p = race.Drd_core.Report.prior in
    let lockset ls =
      W.List
        (List.map
           (fun l -> W.String (Drd_core.Names.lock_name names l))
           (Drd_core.Lockset_id.to_sorted_list ls))
    in
    let kind = function
      | Drd_core.Event.Read -> W.String "read"
      | Drd_core.Event.Write -> W.String "write"
    in
    W.Obj
      [
        ( "location",
          W.String (Drd_core.Names.loc_name names race.Drd_core.Report.loc) );
        ( "current",
          W.Obj
            [
              ("thread", W.Int e.Drd_core.Event.thread);
              ("kind", kind e.Drd_core.Event.kind);
              ( "site",
                W.String (Drd_core.Names.site_name names e.Drd_core.Event.site)
              );
              ("locks", lockset e.Drd_core.Event.locks);
            ] );
        ( "prior",
          W.Obj
            [
              ( "thread",
                match p.Drd_core.Trie.p_thread with
                | Drd_core.Event.Thread t -> W.Int t
                | _ -> W.String "multiple" );
              ("kind", kind p.Drd_core.Trie.p_kind);
              ( "site",
                W.String (Drd_core.Names.site_name names p.Drd_core.Trie.p_site)
              );
              ("locks", lockset p.Drd_core.Trie.p_locks);
            ] );
        ( "static_peers",
          W.List
            (List.map
               (fun s -> W.String s)
               (H.Pipeline.static_peers_of_site compiled
                  e.Drd_core.Event.site)) );
      ]
  in
  let races =
    match r.H.Pipeline.report with
    | Some coll -> List.map race_json (Drd_core.Report.races coll)
    | None ->
        List.map
          (fun l -> W.Obj [ ("location", W.String l) ])
          r.H.Pipeline.races
  in
  let deadlocks =
    List.map
      (fun (d : Drd_core.Lock_order.report) ->
        W.Obj
          [
            ( "locks",
              W.List
                (List.map (fun l -> W.Int l) d.Drd_core.Lock_order.dl_locks) );
            ( "threads",
              W.List
                (List.map (fun t -> W.Int t) d.Drd_core.Lock_order.dl_threads)
            );
          ])
      r.H.Pipeline.deadlocks
  in
  print_endline
    (W.json_to_string
       (W.Obj
          ([
             ("races", W.List races);
             ("potential_deadlocks", W.List deadlocks);
             ("events", W.Int r.H.Pipeline.events);
             ("steps", W.Int r.H.Pipeline.steps);
             ("threads", W.Int r.H.Pipeline.threads);
             ("wall_time_s", W.Float r.H.Pipeline.wall_time);
           ]
          @ extra)))

(* ---- run ---- *)

let spec_class_name = function
  | Some Drd_ir.Link.Sfixed -> "fixed-lockset"
  | Some Drd_ir.Link.Sowned -> "owned"
  | Some Drd_ir.Link.Sro -> "read-only"
  | None -> "generic"

(* The --site-stats table: one row per trace site that saw events or
   was specialized — its class, the events routed through it, how many
   took a fast-path drop and how many fell back to the full detector
   pipeline — plus the share of all events that arrived through
   specialized sites. *)
let print_site_stats compiled (r : H.Pipeline.result) =
  match r.H.Pipeline.site_stats with
  | None -> ()
  | Some (ev, fast) ->
      let image = compiled.H.Pipeline.image in
      let sites = compiled.H.Pipeline.prog.Drd_ir.Ir.p_sites in
      Fmt.pr "@.--- per-site event statistics ---@.";
      Fmt.pr "%-5s %-14s %10s %10s %10s  %s@." "site" "class" "events" "fast"
        "generic" "name";
      for s = 0 to Array.length ev - 1 do
        let cls = Drd_ir.Link.spec_class_of_site image s in
        if ev.(s) > 0 || cls <> None then
          Fmt.pr "%-5d %-14s %10d %10d %10d  %s@." s (spec_class_name cls)
            ev.(s) fast.(s)
            (ev.(s) - fast.(s))
            (Drd_ir.Site_table.name sites s)
      done;
      if r.H.Pipeline.events > 0 then
        Fmt.pr "events through specialized sites: %d / %d (%.1f%%)@."
          r.H.Pipeline.spec_events r.H.Pipeline.events
          (100.
          *. float_of_int r.H.Pipeline.spec_events
          /. float_of_int r.H.Pipeline.events)

let site_stats_json compiled (r : H.Pipeline.result) =
  match r.H.Pipeline.site_stats with
  | None -> []
  | Some (ev, fast) ->
      let image = compiled.H.Pipeline.image in
      let sites = compiled.H.Pipeline.prog.Drd_ir.Ir.p_sites in
      let rows = ref [] in
      for s = Array.length ev - 1 downto 0 do
        let cls = Drd_ir.Link.spec_class_of_site image s in
        if ev.(s) > 0 || cls <> None then
          rows :=
            W.Obj
              [
                ("site", W.Int s);
                ("name", W.String (Drd_ir.Site_table.name sites s));
                ("class", W.String (spec_class_name cls));
                ("events", W.Int ev.(s));
                ("fast", W.Int fast.(s));
                ("generic", W.Int (ev.(s) - fast.(s)));
              ]
            :: !rows
      done;
      [
        ("spec_events", W.Int r.H.Pipeline.spec_events);
        ("site_stats", W.List !rows);
      ]

let run_cmd_impl file benchmark config_name detector seed quantum pct
    pct_horizon engine no_specialize site_stats verbose json =
  or_compile_error @@ fun () ->
  let engine : H.Pipeline.engine =
    if no_specialize && engine = `Spec then `Linked else engine
  in
  match load_source file benchmark with
  | Error e -> `Error (false, e)
  | Ok source -> (
      match
        Result.map
          (fun c ->
            match detector with
            | None -> c
            | Some e -> H.Registry.apply e c)
          (config_of_name ?quantum ?pct ~pct_horizon config_name seed)
      with
      | Error e -> `Error (false, e)
      | Ok config when json ->
          let compiled = H.Pipeline.compile config ~source in
          let r = H.Pipeline.run ~engine ~site_stats compiled in
          run_json compiled r ~extra:(site_stats_json compiled r);
          `Ok ()
      | Ok config ->
          let compiled = H.Pipeline.compile config ~source in
          let r = H.Pipeline.run ~engine ~site_stats compiled in
          List.iter
            (fun (tag, v) ->
              match v with
              | Some v -> Fmt.pr "[out] %s = %a@." tag Drd_vm.Value.pp v
              | None -> Fmt.pr "[out] %s@." tag)
            r.H.Pipeline.prints;
          (match r.H.Pipeline.report with
          | Some coll when Drd_core.Report.count coll > 0 ->
              let names = H.Pipeline.names_of compiled r in
              List.iter
                (fun (race : Drd_core.Report.race) ->
                  Fmt.pr "@.%a@." (Drd_core.Report.pp_race names) race;
                  match
                    H.Pipeline.static_peers_of_site compiled
                      race.Drd_core.Report.current.Drd_core.Event.site
                  with
                  | [] -> ()
                  | peers ->
                      Fmt.pr "  statically possible racing statements:@.";
                      List.iter (Fmt.pr "    %s@.") peers)
                (Drd_core.Report.races coll)
          | Some _ -> Fmt.pr "@.No dataraces detected.@."
          | None ->
              if r.H.Pipeline.races = [] then
                Fmt.pr "@.No dataraces detected (%s).@." config.H.Config.name
              else begin
                Fmt.pr "@.Dataraces reported by %s on:@." config.H.Config.name;
                List.iter (Fmt.pr "  %s@.") r.H.Pipeline.races
              end);
          (match r.H.Pipeline.deadlocks with
          | [] -> ()
          | dls ->
              Fmt.pr "@.Potential deadlocks (lock-order cycles):@.";
              List.iter
                (fun (d : Drd_core.Lock_order.report) ->
                  Fmt.pr "  locks {%a} acquired in conflicting order by threads {%a}@."
                    Fmt.(list ~sep:(any ", ") int)
                    d.Drd_core.Lock_order.dl_locks
                    Fmt.(list ~sep:(any ", ") int)
                    d.Drd_core.Lock_order.dl_threads)
                dls);
          if verbose then begin
            Fmt.pr "@.--- pipeline statistics ---@.";
            Fmt.pr "compile time:      %.3fs@." compiled.H.Pipeline.compile_time;
            (match compiled.H.Pipeline.static_stats with
            | Some s -> Fmt.pr "%a@." Drd_static.Race_set.pp_stats s
            | None -> ());
            Fmt.pr "traces inserted:   %d@." compiled.H.Pipeline.traces_inserted;
            Fmt.pr "traces eliminated: %d@." compiled.H.Pipeline.traces_eliminated;
            Fmt.pr "threads:           %d@." r.H.Pipeline.threads;
            Fmt.pr "steps:             %d@." r.H.Pipeline.steps;
            Fmt.pr "events:            %d@." r.H.Pipeline.events;
            Fmt.pr "wall time:         %.3fs@." r.H.Pipeline.wall_time;
            (match r.H.Pipeline.immutability with
            | Some s ->
                Fmt.pr "immutability:      %a@." Drd_core.Immutability.pp_summary s
            | None -> ());
            match r.H.Pipeline.detector_stats with
            | Some s -> Fmt.pr "%a@." Drd_core.Detector.pp_stats s
            | None -> ()
          end;
          print_site_stats compiled r;
          `Ok ())

let run_cmd =
  let doc = "run a program under a datarace detector" in
  Cmd.v
    (Cmd.info "run" ~doc)
    Term.(
      ret
        (const run_cmd_impl $ file_arg $ benchmark_arg $ config_arg
       $ detector_arg $ seed_arg $ quantum_arg $ pct_arg $ pct_horizon_arg
       $ engine_arg $ no_specialize_arg $ site_stats_arg $ verbose_arg
       $ json_arg))

(* ---- analyze ---- *)

let analyze_impl file benchmark =
  match load_source file benchmark with
  | Error e -> `Error (false, e)
  | Ok source ->
      let ast = Drd_lang.Parser.parse_program source in
      let tprog = Drd_lang.Typecheck.check ast in
      let prog = Drd_ir.Lower.lower_program tprog in
      let rs = Drd_static.Race_set.compute prog in
      Fmt.pr "%a@." Drd_static.Race_set.pp_stats (Drd_static.Race_set.stats rs);
      `Ok ()

let analyze_cmd =
  let doc = "run the static datarace analysis only" in
  Cmd.v
    (Cmd.info "analyze" ~doc)
    Term.(ret (const analyze_impl $ file_arg $ benchmark_arg))

(* ---- ir ---- *)

let ir_impl file benchmark config_name meth =
  or_compile_error @@ fun () ->
  match load_source file benchmark with
  | Error e -> `Error (false, e)
  | Ok source -> (
      match config_of_name config_name 42 with
      | Error e -> `Error (false, e)
      | Ok config ->
          let compiled = H.Pipeline.compile config ~source in
          let prog = compiled.H.Pipeline.prog in
          (match meth with
          | Some key -> (
              match Ir.find_mir prog key with
              | Some m -> Fmt.pr "%a@." Drd_ir.Pretty.pp_mir m
              | None -> Fmt.pr "no method %s@." key)
          | None -> Fmt.pr "%a@." Drd_ir.Pretty.pp_program prog);
          `Ok ())

let ir_cmd =
  let doc = "dump the (instrumented) intermediate representation" in
  let meth =
    Arg.(
      value
      & opt (some string) None
      & info [ "m"; "method" ] ~docv:"Class.method" ~doc:"Dump one method only.")
  in
  Cmd.v
    (Cmd.info "ir" ~doc)
    Term.(ret (const ir_impl $ file_arg $ benchmark_arg $ config_arg $ meth))

(* ---- record / detect: post-mortem mode (paper Section 1) ---- *)

let record_impl file benchmark out =
  or_compile_error @@ fun () ->
  match load_source file benchmark with
  | Error e -> `Error (false, e)
  | Ok source ->
      let compiled = H.Pipeline.compile H.Config.full ~source in
      let log, result = H.Pipeline.record_log compiled in
      let oc = open_out out in
      Drd_core.Event_log.to_channel oc log;
      close_out oc;
      Fmt.pr "recorded %d events (%d threads, %d steps) to %s@."
        (Drd_core.Event_log.length log)
        result.Drd_vm.Interp.r_max_threads result.Drd_vm.Interp.r_steps out;
      `Ok ()

let record_cmd =
  let doc = "execute a program recording its event log (post-mortem phase 1)" in
  let out =
    Arg.(
      value & opt string "events.log"
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Log file to write.")
  in
  Cmd.v
    (Cmd.info "record" ~doc)
    Term.(ret (const record_impl $ file_arg $ benchmark_arg $ out))

let read_log log_file =
  match
    let ic = open_in log_file in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Drd_core.Event_log.of_channel ic)
  with
  | exception Sys_error e -> data_error "%s" e
  | exception Failure e -> data_error "%s" e
  | log -> log

(* `--detector` on a baseline replays the log through the registry's
   module — the generic sibling of the paper detector's post-mortem
   phase below.  Site/location names are not part of the log, so
   locations print by id, as the `-c` baseline path always has. *)
let detect_replay_module (e : H.Registry.entry) log_file json =
  let log = read_log log_file in
  let racy, events = H.Pipeline.replay_module e.H.Registry.impl log in
  if json then
    print_endline
      (W.json_to_string
         (W.Obj
            [
              ("detector", W.String e.H.Registry.name);
              ("racy_locations", W.List (List.map (fun l -> W.Int l) racy));
              ("events", W.Int events);
              ("entries", W.Int (Drd_core.Event_log.length log));
            ]))
  else begin
    Fmt.pr "replayed %d log entries (%d access events)@."
      (Drd_core.Event_log.length log)
      events;
    if racy = [] then
      Fmt.pr "@.No dataraces detected (%s).@." e.H.Registry.name
    else begin
      Fmt.pr "@.Dataraces reported by %s on:@." e.H.Registry.name;
      List.iter (Fmt.pr "  location %d@.") racy
    end
  end;
  `Ok ()

let detect_impl log_file config_name detector pairs benchmark json =
  match detector with
  | Some e when e.H.Registry.detector <> H.Config.Ours ->
      detect_replay_module e log_file json
  | _ -> (
  match
    Result.map
      (fun c ->
        match detector with
        | None -> c
        | Some e -> H.Registry.apply e c)
      (config_of_name config_name 42)
  with
  | Error e -> `Error (false, e)
  | Ok config -> (
    match read_log log_file with
    | log when json ->
      (* The same renderer the serve daemon closes a session with, so a
         streamed session's report frame can be byte-compared against
         this one-shot replay. *)
      let coll, stats = H.Pipeline.detect_post_mortem config log in
      print_endline
        (Drd_serve.Protocol.events_report_body
           ~races:(Drd_core.Report.races coll)
           ~stats ~evictions:0);
      `Ok ()
    | log ->
      let coll, stats = H.Pipeline.detect_post_mortem config log in
      Fmt.pr "replayed %d log entries@." (Drd_core.Event_log.length log);
      Fmt.pr "%a@." Drd_core.Detector.pp_stats stats;
      let racy = Drd_core.Report.racy_locs coll in
      (* Site names are available when the recorded program is known
         (record always compiles with the Full configuration). *)
      let site_name =
        match benchmark with
        | None -> fun s -> Printf.sprintf "site %d" s
        | Some b -> (
            match H.Programs.find b with
            | None -> fun s -> Printf.sprintf "site %d" s
            | Some bench ->
                let compiled =
                  H.Pipeline.compile H.Config.full
                    ~source:bench.H.Programs.b_source
                in
                fun s ->
                  if s < 0 then "<unknown>"
                  else
                    Drd_ir.Site_table.name
                      compiled.H.Pipeline.prog.Drd_ir.Ir.p_sites s)
      in
      if racy = [] then Fmt.pr "@.No dataraces detected.@."
      else begin
        Fmt.pr "@.Dataraces on %d locations:@." (List.length racy);
        List.iter (Fmt.pr "  location %d@.") racy;
        if pairs then begin
          Fmt.pr
            "@.FullRace reconstruction (all racing site pairs, Section 2.5):@.";
          List.iter
            (fun (loc, ps) ->
              Fmt.pr "  location %d:@." loc;
              List.iter
                (fun (p : Drd_core.Full_race.pair) ->
                  Fmt.pr "    %5d× %a at %s  vs  %a at %s@." p.Drd_core.Full_race.fr_count
                    Drd_core.Event.pp_kind p.Drd_core.Full_race.fr_kind_a
                    (site_name p.Drd_core.Full_race.fr_site_a)
                    Drd_core.Event.pp_kind p.Drd_core.Full_race.fr_kind_b
                    (site_name p.Drd_core.Full_race.fr_site_b))
                ps)
            (Drd_core.Full_race.reconstruct log ~locs:racy)
        end
      end;
      `Ok ()))

let detect_cmd =
  let doc = "run the detection phase offline over a recorded log (phase 2)" in
  let log_file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"LOG" ~doc:"Event log produced by $(b,racedet record).")
  in
  let pairs =
    Arg.(
      value & flag
      & info [ "pairs" ]
          ~doc:"Reconstruct the full set of racing site pairs (FullRace) \
                for each detected location.")
  in
  let bench_for_names =
    Arg.(
      value
      & opt (some string) None
      & info [ "b"; "benchmark" ] ~docv:"NAME"
          ~doc:"The recorded benchmark, to resolve site names.")
  in
  Cmd.v
    (Cmd.info "detect" ~doc)
    Term.(
      ret
        (const detect_impl $ log_file $ config_arg $ detector_arg $ pairs
       $ bench_for_names $ json_arg))

(* ---- sweep: the legacy seed sweep (now a thin campaign) ---- *)

let sweep_impl file benchmark config_name nseeds seed json =
  match load_source file benchmark with
  | Error e -> `Error (false, e)
  | Ok source -> (
      match config_of_name config_name seed with
      | Error e -> `Error (false, e)
      | Ok config ->
          let seeds = List.init nseeds (fun i -> i + 1) in
          let { E.Explore.sw_objects = rows; sw_failures = failures } =
            E.Explore.sweep config ~source ~seeds
          in
          if json then
            print_endline
              (W.json_to_string
                 (W.Obj
                    [
                      ("config", W.String config.H.Config.name);
                      ("schedules", W.Int nseeds);
                      ( "objects",
                        W.List
                          (List.map
                             (fun (obj, n) ->
                               W.Obj
                                 [
                                   ("object", W.String obj);
                                   ("runs_reporting", W.Int n);
                                 ])
                             rows) );
                      ( "failures",
                        W.List
                          (List.map
                             (fun (seed, e) ->
                               W.Obj
                                 [
                                   ("seed", W.Int seed);
                                   ("error", W.String e);
                                 ])
                             failures) );
                    ]))
          else begin
            Fmt.pr "racy objects over %d schedules (%s):@." nseeds
              config.H.Config.name;
            if rows = [] then Fmt.pr "  (none)@.";
            List.iter
              (fun (obj, n) -> Fmt.pr "  %4d/%d  %s@." n nseeds obj)
              rows;
            List.iter
              (fun (seed, e) -> Fmt.pr "  seed %d FAILED: %s@." seed e)
              failures
          end;
          `Ok ())

let sweep_cmd =
  let doc = "run across many scheduler seeds and aggregate the reports" in
  let nseeds =
    Arg.(
      value & opt int 10
      & info [ "n"; "seeds" ] ~docv:"N" ~doc:"Number of seeds to sweep.")
  in
  Cmd.v
    (Cmd.info "sweep" ~doc)
    Term.(
      ret
        (const sweep_impl $ file_arg $ benchmark_arg $ config_arg $ nseeds
       $ seed_arg $ json_arg))

(* ---- explore: the parallel schedule-exploration campaign ---- *)

let parse_shard = function
  | None -> Ok None
  | Some s -> (
      let bad () =
        Error
          (Printf.sprintf "bad --shard %s (want I/N with 0 <= I < N)" s)
      in
      match String.index_opt s '/' with
      | None -> bad ()
      | Some k -> (
          let i = String.sub s 0 k in
          let n = String.sub s (k + 1) (String.length s - k - 1) in
          match (int_of_string_opt i, int_of_string_opt n) with
          | Some i, Some n when n >= 1 && i >= 0 && i < n -> Ok (Some (i, n))
          | _ -> bad ()))

let explore_impl file benchmark config_name strategy depth workers batch
    no_ctx_reuse runs max_seconds plateau seed quantum pct_horizon equiv shard
    emit_obs no_timing json =
  or_compile_error @@ fun () ->
  match batch with
  | Some b when b < 1 ->
      `Error (false, Printf.sprintf "bad --batch %d (want >= 1)" b)
  | _ -> (
  match load_source file benchmark with
  | Error e -> `Error (false, e)
  | Ok source -> (
      match config_of_name ?quantum config_name seed with
      | Error e -> `Error (false, e)
      | Ok config -> (
          match E.Strategy.of_string strategy with
          | Error e -> `Error (false, e)
          | Ok strategy -> (
            match E.Explore.equiv_of_string equiv with
            | Error e -> `Error (false, e)
            | Ok equiv -> (
              match parse_shard shard with
              | Error e -> `Error (false, e)
              | Ok shard ->
                  let strategy =
                    match strategy with
                    | E.Strategy.Pct _ -> E.Strategy.Pct depth
                    | s -> s
                  in
                  let sp =
                    E.Explore.spec ~strategy ~workers:(max workers 1)
                      ~budget:(E.Explore.budget ?seconds:max_seconds ?plateau runs)
                      ~pct_horizon ~equiv config
                  in
                  let r =
                    E.Explore.run_campaign ?shard ?batch
                      ~reuse_ctx:(not no_ctx_reuse) sp ~source
                  in
                  let target = target_of file benchmark in
                  (match emit_obs with
                  | Some path ->
                      let rows = E.Explore.rows_of_report r in
                      let oc = open_out path in
                      E.Explore.write_obs_channel oc ~target sp rows;
                      close_out oc;
                      (* Diagnostics never on stdout under --json:
                         machine consumers read it. *)
                      (if json then Fmt.epr else Fmt.pr)
                        "wrote %d observation rows%s to %s@."
                        (List.length rows)
                        (match shard with
                        | Some (i, n) -> Printf.sprintf " (shard %d/%d)" i n
                        | None -> "")
                        path
                  | None ->
                      if json then
                        print_endline
                          (E.Explore.report_json ~timing:(not no_timing) r)
                      else
                        print_string
                          (E.Explore.report_text ~timing:(not no_timing)
                             ~target r));
                  `Ok ())))))

let explore_cmd =
  let doc =
    "explore many schedules in parallel and dedupe the race reports"
  in
  let max_seconds =
    Arg.(
      value
      & opt (some float) None
      & info [ "max-seconds" ] ~docv:"S"
          ~doc:
            "Wall-clock budget; stops claiming new runs once exceeded \
             (makes the campaign non-deterministic).")
  in
  let plateau =
    Arg.(
      value
      & opt (some int) None
      & info [ "plateau" ] ~docv:"K"
          ~doc:
            "Adaptive budget: stop after $(docv) consecutive runs that \
             discover no new distinct race (deterministic, unlike \
             $(b,--max-seconds)).  With $(b,--shard) the window is a \
             campaign-wide property the shard cannot evaluate alone, so \
             each shard runs its full slice and $(b,racedet merge) \
             applies the window.")
  in
  let shard =
    Arg.(
      value
      & opt (some string) None
      & info [ "shard" ] ~docv:"I/N"
          ~doc:
            "Run only shard $(i,I) of $(i,N) — the run indices congruent \
             to I mod N.  Combine with $(b,--emit-obs) and $(b,racedet \
             merge) for distributed campaigns.  A $(b,--plateau) window \
             is deferred to merge time (the shard emits its full slice).")
  in
  let emit_obs =
    Arg.(
      value
      & opt (some string) None
      & info [ "emit-obs" ] ~docv:"FILE"
          ~doc:
            "Instead of a report, write the raw run observations \
             (schema-versioned JSON lines) to $(docv) for $(b,racedet \
             merge).")
  in
  let equiv =
    Arg.(
      value & opt string "raw"
      & info [ "equiv" ] ~docv:"MODE"
          ~doc:
            "Schedule-equivalence mode: $(b,raw) fingerprints the exact \
             event order; $(b,hb) fingerprints the happens-before \
             structure and skips detector replay for schedules \
             equivalent to one already seen (the run still counts, and \
             the deduped race report is identical to $(b,raw)'s).")
  in
  Cmd.v
    (Cmd.info "explore" ~doc)
    Term.(
      ret
        (const explore_impl $ file_arg $ benchmark_arg $ config_arg
       $ strategy_arg $ depth_arg $ workers_arg $ batch_arg
       $ no_ctx_reuse_arg $ runs_arg $ max_seconds
       $ plateau $ seed_arg $ quantum_arg $ pct_horizon_arg $ equiv $ shard
       $ emit_obs $ no_timing_arg $ json_arg))

(* ---- merge: re-fold shard observation files ---- *)

let merge_impl files json =
  if files = [] then
    `Error
      (false, "give at least one OBS file (from racedet explore --emit-obs)")
  else
    (* Stream each file row by row (fold_obs_channel): one line resident
       at a time, so an observation file larger than memory still
       merges.  Only the decoded rows accumulate. *)
    let read_one path =
      match open_in path with
      | exception Sys_error e -> Error e
      | ic -> (
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () ->
              match
                E.Explore.fold_obs_channel ic ~init:[] ~row:(fun acc r ->
                    r :: acc)
              with
              | Ok (spec, target, rows_rev) ->
                  Ok (spec, target, List.rev rows_rev)
              | Error m -> Error (Printf.sprintf "%s: %s" path m)))
    in
    let rec read_all acc = function
      | [] -> Ok (List.rev acc)
      | p :: ps -> (
          match read_one p with
          | Ok x -> read_all ((p, x) :: acc) ps
          | Error _ as e -> e)
    in
    match read_all [] files with
    | Error e -> data_error "%s" e
    | Ok shards -> (
        let p0, (spec0, target0, _) = List.hd shards in
        match
          List.find_opt
            (fun (_, (sp, _, _)) -> not (E.Explore.compatible spec0 sp))
            (List.tl shards)
        with
        | Some (p, (sp, _, _)) ->
            (* Name the mismatch when it is only the equivalence mode:
               rows recorded under different equivalences fold into
               different class/pruning stats, so mixing them would
               produce a report no single-process campaign matches. *)
            let only_equiv_differs =
              E.Explore.compatible spec0
                { sp with E.Explore.e_equiv = spec0.E.Explore.e_equiv }
            in
            if only_equiv_differs then
              data_error
                "%s records a %s-equivalence campaign but %s records %s \
                 (mixed equivalence modes); refusing to merge"
                p0
                (E.Explore.equiv_name spec0.E.Explore.e_equiv)
                p
                (E.Explore.equiv_name sp.E.Explore.e_equiv)
            else
              data_error
                "%s and %s describe different campaigns (spec mismatch); \
                 refusing to merge"
                p0 p
        | None -> (
            let rows = List.concat_map (fun (_, (_, _, rs)) -> rs) shards in
            (* A run index in two inputs means overlapping shards — the
               fold would double-count sightings.  Compile failures
               (index -1) are per-shard and exempt. *)
            let seen = Hashtbl.create 64 in
            let dup =
              List.find_opt
                (fun row ->
                  let i = E.Aggregate.row_index row in
                  if i < 0 then false
                  else if Hashtbl.mem seen i then true
                  else begin
                    Hashtbl.add seen i ();
                    false
                  end)
                rows
            in
            match dup with
            | Some row ->
                data_error
                  "run index %d appears in more than one input (overlapping \
                   shards?); refusing to merge"
                  (E.Aggregate.row_index row)
            | None -> (
                (* The inverse failure of overlap: a missing shard file
                   or truncated tail leaves gaps in the index range, and
                   the fold would silently produce a plausible report
                   that is not the single-process one.  With a purely
                   runs-based budget every index must be present; with a
                   wall-clock or plateau budget, runs legitimately never
                   executed, so only warn. *)
                let missing = E.Explore.missing_indices spec0 rows in
                let b = spec0.E.Explore.e_budget in
                let pure_runs_budget =
                  b.E.Explore.b_seconds = None && b.E.Explore.b_plateau = None
                in
                let describe_missing () =
                  let shown =
                    List.filteri (fun k _ -> k < 8) missing
                    |> List.map string_of_int
                  in
                  Printf.sprintf "%d of %d run indices missing (%s%s)"
                    (List.length missing) b.E.Explore.b_runs
                    (String.concat ", " shown)
                    (if List.length missing > 8 then ", ..." else "")
                in
                match missing with
                | _ :: _ when pure_runs_budget ->
                    data_error
                      "%s — incomplete shard set or truncated file? refusing \
                       to merge"
                      (describe_missing ())
                | _ ->
                    if missing <> [] then
                      Printf.eprintf
                        "warning: %s; assuming the campaign's \
                         wall-clock/plateau budget stopped those runs\n\
                         %!"
                        (describe_missing ());
                    let r = E.Explore.merge spec0 rows in
                    if json then
                      print_endline (E.Explore.report_json ~timing:false r)
                    else
                      print_string
                        (E.Explore.report_text ~timing:false ~target:target0 r);
                    `Ok ())))

let merge_cmd =
  let doc = "merge shard observation files into one campaign report" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Validates that every input records the same campaign \
         (configuration, strategy, budget — worker fan-out may differ), \
         that no run index appears twice (overlapping shards), and — \
         for purely runs-based budgets — that every run index is \
         present (an incomplete shard set is an error; under a \
         wall-clock or plateau budget gaps only warn).  It then \
         re-folds the observations in run-index order.  The report is \
         byte-identical to running the whole campaign in one process \
         with $(b,--no-timing).";
      `P
        "Produce inputs with $(b,racedet explore --shard I/N --emit-obs \
         FILE).";
    ]
  in
  let files =
    Arg.(
      value & pos_all file []
      & info [] ~docv:"OBS"
          ~doc:"Observation files from $(b,racedet explore --emit-obs).")
  in
  Cmd.v
    (Cmd.info "merge" ~doc ~man)
    Term.(ret (const merge_impl $ files $ json_arg))

(* ---- serve: the long-lived streaming detection daemon ---- *)

let serve_impl config_name socket stats_every evict_high evict_low =
  match config_of_name config_name 42 with
  | Error e -> `Error (false, e)
  | Ok config -> (
      match
        match evict_high with
        | None ->
            if evict_low <> None then
              Error "--evict-low is meaningless without --evict-high"
            else Ok None
        | Some high -> (
            match Drd_core.Detector.eviction ?low:evict_low ~high () with
            | ev -> Ok (Some ev)
            | exception Invalid_argument m -> Error m)
      with
      | Error e -> `Error (false, e)
      | Ok eviction -> (
          let conf =
            {
              Drd_serve.Server.sv_config = config;
              sv_eviction = eviction;
              sv_stats_every = stats_every;
            }
          in
          match socket with
          | Some path -> (
              match Drd_serve.Server.serve_socket conf ~path () with
              | Ok () -> `Ok ()
              | Error e -> `Error (false, e))
          | None -> (
              match Drd_serve.Server.serve_channels conf stdin stdout with
              | Ok () -> `Ok ()
              | Error e -> data_error "%s" e)))

let serve_cmd =
  let doc = "long-lived streaming detection daemon (service mode)" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Accepts newline-delimited frames: event-log lines (the \
         $(b,racedet record) text format) and observation-wire lines are \
         payload; JSON lines tagged $(b,hello)/$(b,stats)/$(b,close)/\
         $(b,shutdown) are control.  Each $(b,hello) opens a session \
         ($(b,events): incremental detection, racy locations reported the \
         moment they are found; $(b,obs): a streaming $(b,racedet merge)); \
         $(b,close) — or end of stream — emits the session's final report \
         frame.  A payload line before any $(b,hello) implicitly opens a \
         default events session, so $(b,cat events.log | racedet serve) \
         works bare.";
      `P
        "Without $(b,--socket) the daemon serves one connection on \
         stdin/stdout.  With it, a Unix-domain socket accepts any number \
         of concurrent client connections.";
      `P
        "Memory is bounded with $(b,--evict-high): when more locations \
         than that are tracked, the least-recently-accessed ones are \
         retired down to $(b,--evict-low) (default half of high).  \
         Eviction never changes the report for a location that is never \
         evicted; a retired location that is accessed again re-enters as \
         brand new.  Periodic machine-readable stats lines go to stderr, \
         never into the protocol stream.";
    ]
  in
  let socket =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"Listen on a Unix-domain socket instead of stdin/stdout.")
  in
  let stats_every =
    Arg.(
      value & opt float 10.
      & info [ "stats-every" ] ~docv:"S"
          ~doc:"Seconds between stderr stats lines (0 disables them).")
  in
  let evict_high =
    Arg.(
      value
      & opt (some int) None
      & info [ "evict-high" ] ~docv:"N"
          ~doc:
            "Evict quiescent locations once more than $(docv) are tracked \
             (default: never evict; memory grows with distinct locations).")
  in
  let evict_low =
    Arg.(
      value
      & opt (some int) None
      & info [ "evict-low" ] ~docv:"N"
          ~doc:
            "Keep the $(docv) most recently accessed locations when \
             evicting (default: half of $(b,--evict-high)).")
  in
  Cmd.v
    (Cmd.info "serve" ~doc ~man)
    Term.(
      ret
        (const serve_impl $ config_arg $ socket $ stats_every $ evict_high
       $ evict_low))

(* ---- arena: differential detector testing on generated programs ---- *)

let arena_impl count seed max_units max_steps detectors no_shrink
    fail_on_miss repro_dir json =
  let detectors =
    match detectors with [] -> H.Registry.all | ds -> ds
  in
  let opts =
    {
      A.o_seed = seed;
      o_count = count;
      o_max_units = max_units;
      o_max_steps = max_steps;
      o_detectors = detectors;
      o_shrink = not no_shrink;
    }
  in
  let r = A.run opts in
  if json then print_string (A.to_json r)
  else Fmt.pr "%a" A.pp_report r;
  (match repro_dir with
  | None -> ()
  | Some dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      let write name text =
        let path = Filename.concat dir name in
        let oc = open_out path in
        output_string oc text;
        close_out oc;
        (* Diagnostics never on stdout under --json. *)
        (if json then Fmt.epr else Fmt.pr) "wrote %s@." path
      in
      List.iter
        (fun (p : A.pair) ->
          match p.A.pr_example with
          | None -> ()
          | Some x ->
              write
                (Printf.sprintf "arena_%s_over_%s.mj" p.A.pr_reporter
                   p.A.pr_silent)
                (A.repro_source ~reporter:p.A.pr_reporter
                   ~silent:p.A.pr_silent x))
        r.A.r_pairs;
      List.iter
        (fun (m : A.miss) ->
          match m.A.ms_example with
          | None -> ()
          | Some x ->
              write
                (Printf.sprintf "arena_miss_%s.mj" m.A.ms_detector)
                (Fmt.str
                   "// Arena-shrunk GROUND-TRUTH MISS: %s stayed quiet on \
                    the\n\
                    // guaranteed race %s.\n%s"
                   m.A.ms_detector x.A.x_marker (Drd_arena.Gen.emit x.A.x_shrunk)))
        r.A.r_misses);
  match fail_on_miss with
  | Some (e : H.Registry.entry)
    when A.guaranteed_misses r ~detector:e.H.Registry.name > 0 ->
      Fmt.epr "racedet arena: %s missed %d guaranteed race(s)@."
        e.H.Registry.name
        (A.guaranteed_misses r ~detector:e.H.Registry.name);
      exit 1
  | _ -> `Ok ()

let arena_cmd =
  let doc = "differentially test the detectors on generated programs" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Generates a deterministic corpus of well-typed concurrent \
         MiniJava programs composed from synchronization idioms — \
         mutexes, fork/join chains, wait/notify signaling, worker-loop \
         queues — with seeded races and known-safe twins, so every \
         program carries ground truth.  Runs every selected detector \
         over every program on the same schedule, scores each against \
         the labels (precision, recall, guaranteed-race misses), counts \
         pairwise disagreements, and shrinks the first witness of each \
         disagreement direction to a minimal program.";
      `P
        "Racy cells are labelled $(i,guaranteed) (every detector reports \
         them in every schedule; silence is unambiguously a miss — the \
         count $(b,--fail-on-miss) gates on) or $(i,feasible) \
         (schedule-dependent, e.g. races hidden behind an accidental \
         lock-order edge; counted toward recall only).";
      `P
        "For a fixed seed/count/detector set the $(b,--json) report is \
         byte-identical across invocations.";
    ]
  in
  let count =
    Arg.(
      value & opt int 200
      & info [ "n"; "programs" ] ~docv:"N" ~doc:"Programs to generate.")
  in
  let max_units =
    Arg.(
      value & opt int 4
      & info [ "max-units" ] ~docv:"N"
          ~doc:"Idiom units per program (1 to $(docv)).")
  in
  let max_steps =
    Arg.(
      value & opt int 400_000
      & info [ "max-steps" ] ~docv:"N"
          ~doc:
            "VM step budget per run; a program exceeding it scores as an \
             error verdict.")
  in
  let detectors =
    Arg.(
      value
      & opt_all detector_conv []
      & info [ "detector" ] ~docv:"NAME"
          ~doc:
            "Restrict the arena to the named detectors (repeatable; \
             default: all).  Same names as $(b,run --detector).")
  in
  let no_shrink =
    Arg.(
      value & flag
      & info [ "no-shrink" ]
          ~doc:
            "Skip shrinking disagreement/miss witnesses (saves the extra \
             runs; the example specs stay as first seen).")
  in
  let fail_on_miss =
    Arg.(
      value
      & opt (some detector_conv) None
      & info [ "fail-on-miss" ] ~docv:"NAME"
          ~doc:
            "Exit 1 if $(docv) missed any guaranteed race — the CI gate \
             for the paper detector.")
  in
  let repro_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "repro" ] ~docv:"DIR"
          ~doc:
            "Write each shrunk disagreement/miss witness as a standalone \
             MiniJava reproducer under $(docv).")
  in
  Cmd.v
    (Cmd.info "arena" ~doc ~man)
    Term.(
      ret
        (const arena_impl $ count $ seed_arg $ max_units $ max_steps
       $ detectors $ no_shrink $ fail_on_miss $ repro_dir $ json_arg))

(* ---- list ---- *)

let list_impl () =
  Fmt.pr "Benchmarks (plus the paper's 'figure2' / 'figure2-samelock' examples):@.";
  List.iter
    (fun (b : H.Programs.benchmark) ->
      Fmt.pr "  %-10s %s@." b.H.Programs.b_name b.H.Programs.b_description)
    H.Programs.benchmarks;
  Fmt.pr "@.Configurations:@.";
  List.iter
    (fun (c : H.Config.t) ->
      Fmt.pr "  %-14s static=%b weaker=%b peel=%b cache=%b ownership=%b@."
        c.H.Config.name c.H.Config.static_analysis c.H.Config.weaker_elim
        c.H.Config.loop_peel c.H.Config.use_cache c.H.Config.use_ownership)
    H.Config.all;
  Fmt.pr "@.Detectors (run/detect/arena --detector):@.";
  List.iter
    (fun (e : H.Registry.entry) ->
      Fmt.pr "  %-8s %s%s@." e.H.Registry.name (H.Registry.describe e)
        (match e.H.Registry.aliases with
        | [] -> ""
        | a -> Printf.sprintf " (aliases: %s)" (String.concat ", " a)))
    H.Registry.all;
  `Ok ()

let list_cmd =
  let doc = "list built-in benchmarks and configurations" in
  Cmd.v (Cmd.info "list" ~doc) Term.(ret (const list_impl $ const ()))

let () =
  let doc = "efficient and precise datarace detection (PLDI 2002)" in
  let exits =
    Cmd.Exit.info data_error_exit
      ~doc:
        "on malformed input data (a truncated or corrupt event log, \
         observation file or protocol stream) — distinct from \
         command-line misuse (124) and internal errors (125)."
    :: Cmd.Exit.defaults
  in
  let info = Cmd.info "racedet" ~version:"1.0" ~doc ~exits in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            run_cmd;
            explore_cmd;
            merge_cmd;
            serve_cmd;
            analyze_cmd;
            ir_cmd;
            record_cmd;
            detect_cmd;
            sweep_cmd;
            arena_cmd;
            list_cmd;
          ]))
