open Drd_core
let () =
  let module E = Event in
  let t = Trie.create () in
  let empty = Lockset_id.of_list [] in
  let e1 = E.make_interned ~loc:7 ~thread:0 ~locks:empty ~kind:E.Read ~site:1 in
  let r1, _ = Trie.process t e1 in
  assert (r1 = None);
  let e2 = E.make_interned ~loc:7 ~thread:1 ~locks:empty ~kind:E.Write ~site:2 in
  let r2, _ = Trie.process t e2 in
  (match r2 with
  | Some p ->
      Printf.printf "prior thread = %s, kind = %s, site = %d\n"
        (match p.Trie.p_thread with
         | E.Top -> "Top" | E.Bot -> "Bot" | E.Thread i -> "Thread " ^ string_of_int i)
        (match p.Trie.p_kind with E.Read -> "Read" | E.Write -> "Write")
        p.Trie.p_site
  | None -> print_endline "NO RACE FOUND")
