(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section 8) and runs Bechamel micro-benchmarks for the
   per-event costs that explain Table 2's structure.

   Run everything:          dune exec bench/main.exe
   Individual pieces:       dune exec bench/main.exe -- --table2 --figure3
   Quick mode (small sizes) dune exec bench/main.exe -- --quick *)

module H = Drd_harness
open Drd_core

let fpf = Format.printf

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: the per-access costs of the runtime
   stages.  One suite per paper table: Table 2's columns differ exactly
   in which of these costs is paid per event. *)

let bench_event =
  Event.make ~loc:4242 ~thread:1 ~locks:Event.Lockset.empty ~kind:Event.Read
    ~site:0

let table2_micro_tests () =
  let open Bechamel in
  let cache = Cache.create () in
  ignore (Cache.lookup_or_add cache ~kind:Event.Read ~loc:4242);
  let cache_hit =
    Test.make ~name:"table2/cache-hit"
      (Staged.stage (fun () ->
           ignore (Cache.lookup_or_add cache ~kind:Event.Read ~loc:4242)))
  in
  (* A trie holding a representative mtrt-like history. *)
  let trie = Trie.create () in
  Trie.update trie
    (Event.make ~loc:0 ~thread:0 ~locks:(Event.Lockset.of_list [ 1; 7 ])
       ~kind:Event.Write ~site:0);
  Trie.update trie
    (Event.make ~loc:0 ~thread:2 ~locks:(Event.Lockset.of_list [ 2; 7 ])
       ~kind:Event.Write ~site:0);
  let probe =
    Event.make ~loc:0 ~thread:1 ~locks:(Event.Lockset.of_list [ 7 ])
      ~kind:Event.Read ~site:0
  in
  let trie_process =
    Test.make ~name:"table2/trie-process"
      (Staged.stage (fun () -> ignore (Trie.process trie probe)))
  in
  let det_cached =
    let coll = Report.collector () in
    let d = Detector.create coll in
    Detector.on_access d bench_event;
    Test.make ~name:"table2/detector-event-cached"
      (Staged.stage (fun () -> Detector.on_access d bench_event))
  in
  let det_nocache =
    let coll = Report.collector () in
    let d =
      Detector.create
        ~config:{ Detector.default_config with Detector.use_cache = false }
        coll
    in
    Detector.on_access d bench_event;
    Test.make ~name:"table2/detector-event-nocache"
      (Staged.stage (fun () -> Detector.on_access d bench_event))
  in
  [ cache_hit; trie_process; det_cached; det_nocache ]

let table3_micro_tests () =
  let open Bechamel in
  (* Table 3's variants differ in the ownership filter and location
     granularity; measure the ownership check and a full owned-path
     event. *)
  let own = Ownership.create () in
  ignore (Ownership.check own ~thread:0 ~loc:7);
  let ownership_check =
    Test.make ~name:"table3/ownership-check"
      (Staged.stage (fun () -> ignore (Ownership.check own ~thread:0 ~loc:7)))
  in
  let det_owned =
    let coll = Report.collector () in
    let d =
      Detector.create
        ~config:{ Detector.default_config with Detector.use_cache = false }
        coll
    in
    Detector.on_access d bench_event;
    Test.make ~name:"table3/detector-event-owned"
      (Staged.stage (fun () -> Detector.on_access d bench_event))
  in
  [ ownership_check; det_owned ]

let run_bechamel tests =
  let open Bechamel in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"micro" tests) in
  let results =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
      Toolkit.Instance.monotonic_clock raw
  in
  Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results []
  |> List.sort compare
  |> List.iter (fun (name, ols) ->
         match Analyze.OLS.estimates ols with
         | Some (est :: _) -> fpf "  %-36s %8.1f ns/event@." name est
         | _ -> fpf "  %-36s (no estimate)@." name);
  fpf "@."

let microbench () =
  fpf "Per-event costs (Bechamel; these are the quantities whose ratios@.";
  fpf "drive the overhead differences across Table 2 columns):@.";
  run_bechamel (table2_micro_tests ());
  fpf "Ownership-model costs (Table 3 variants):@.";
  run_bechamel (table3_micro_tests ())

(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* Ablations for the design choices DESIGN.md calls out: the 256-entry
   cache size the paper fixes (Section 4.3), and the per-location vs
   packed history representation. *)

let ablation () =
  fpf "Ablation 1: cache size (paper fixes 256 direct-mapped entries)@.";
  fpf "%8s %12s %12s %14s@." "entries" "hits" "misses" "hit rate";
  let b = Option.get (H.Programs.find "tsp") in
  let compiled = H.Pipeline.compile H.Config.full ~source:b.H.Programs.b_perf_source in
  let log, _ = H.Pipeline.record_log compiled in
  List.iter
    (fun size ->
      let collector = Report.collector () in
      let det =
        Detector.create
          ~config:{ Detector.default_config with Detector.cache_size = size }
          collector
      in
      Event_log.replay log det;
      let s = Detector.stats det in
      let lookups = s.Detector.events_in in
      fpf "%8d %12d %12d %13.1f%%@." size s.Detector.cache_hits
        (lookups - s.Detector.cache_hits)
        (100. *. float_of_int s.Detector.cache_hits /. float_of_int (max lookups 1)))
    [ 16; 64; 256; 1024; 4096 ];
  fpf "@.Ablation 2: history representation (replay wall time, tsp)@.";
  List.iter
    (fun (name, history) ->
      let collector = Report.collector () in
      let det =
        Detector.create
          ~config:
            { Detector.default_config with Detector.history; use_cache = false }
          collector
      in
      let t0 = Unix.gettimeofday () in
      Event_log.replay log det;
      let dt = Unix.gettimeofday () -. t0 in
      let s = Detector.stats det in
      fpf "  %-14s %.3fs  %6d trie nodes, %d races@." name dt
        s.Detector.trie_nodes s.Detector.races_reported)
    [ ("per-location", Detector.Per_location); ("packed", Detector.Packed) ];
  fpf "@."

(* ------------------------------------------------------------------ *)
(* Exploration-engine throughput: runs/sec and events/sec for a PCT
   campaign on tsp at 1, 2 and 4 workers, and the resulting parallel
   speedup.  --json additionally writes BENCH_explore.json.  The
   speedup is only meaningful relative to the machine: the JSON
   records recommended_domain_count so a 1-core container's ~1.0x is
   not misread as a regression. *)

(* Provenance stamped into every benchmark JSON so tracked numbers can
   be tied to a commit and toolchain. *)
let git_commit () =
  try
    let ic = Unix.open_process_in "git rev-parse HEAD 2>/dev/null" in
    let line = try String.trim (input_line ic) with End_of_file -> "" in
    ignore (Unix.close_process_in ic);
    if line = "" then "unknown" else line
  with _ -> "unknown"

let iso8601_now () =
  let t = Unix.gmtime (Unix.gettimeofday ()) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (t.Unix.tm_year + 1900)
    (t.Unix.tm_mon + 1) t.Unix.tm_mday t.Unix.tm_hour t.Unix.tm_min
    t.Unix.tm_sec

let bpf_meta buf =
  Printf.bprintf buf
    "  \"commit\": \"%s\",\n  \"ocaml_version\": \"%s\",\n  \"timestamp\": \
     \"%s\",\n"
    (git_commit ()) Sys.ocaml_version (iso8601_now ())

(* Shared scaffolding for the tracked benchmark JSON files
   (BENCH_*.json): open brace, provenance meta, section-specific body,
   close brace, write and announce.  [fill] emits the body lines
   (indented two spaces, last line without a trailing comma). *)
let write_json ~file fill =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  bpf_meta buf;
  fill buf;
  Buffer.add_string buf "}\n";
  let oc = open_out file in
  output_string oc (Buffer.contents buf);
  close_out oc;
  fpf "wrote %s@.@." file

(* JSON array elements with the trailing-comma discipline: [emit]
   writes one element, without the separator or newline. *)
let bpf_elems buf items emit =
  let last = List.length items - 1 in
  List.iteri
    (fun i x ->
      emit buf x;
      Buffer.add_string buf (if i = last then "\n" else ",\n"))
    items

let explore_bench ~quick ~json () =
  let module E = Drd_explore in
  let b = Option.get (H.Programs.find "tsp") in
  let runs = if quick then 16 else 48 in
  let spec workers =
    E.Explore.spec ~strategy:(E.Strategy.Pct 3) ~workers
      ~budget:(E.Explore.runs_budget runs) H.Config.full
  in
  let report_bytes r =
    ( E.Explore.report_text ~timing:false ~target:"-b tsp" r,
      E.Explore.report_json ~timing:false r )
  in
  fpf "Exploration engine throughput (pct, tsp, %d runs/campaign)@." runs;
  fpf "%8s %6s %10s %12s %14s %9s@." "workers" "batch" "wall" "runs/s"
    "events/s" "races";
  let rows =
    List.map
      (fun workers ->
        let r = E.Explore.run_campaign (spec workers) ~source:b.H.Programs.b_source in
        let rps = E.Explore.runs_per_sec r in
        let batch = E.Pool.default_batch ~workers ~total:runs in
        fpf "%8d %6d %9.2fs %12.1f %14.0f %9d@." workers batch
          r.E.Explore.r_wall rps
          (E.Explore.events_per_sec r)
          r.E.Explore.r_stats.E.Aggregate.st_distinct_races;
        (workers, batch, r, rps))
      [ 1; 2; 4 ]
  in
  (* The scaling claim is only worth stamping if the outputs agree:
     every worker count must render the identical report. *)
  let reports_identical =
    match rows with
    | (_, _, r1, _) :: rest ->
        let base = report_bytes r1 in
        List.for_all (fun (_, _, r, _) -> report_bytes r = base) rest
    | [] -> false
  in
  if not reports_identical then
    failwith "explore bench: reports differ across worker counts";
  (* Zero-realloc contract: a campaign whose workers reuse one run
     context each (the default) must render byte-for-byte what fresh
     per-run state renders, at every worker count.  Refuse to stamp
     throughput numbers measured on a pool that changed the output. *)
  let ctx_reuse_identical =
    List.for_all
      (fun (workers, _, r, _) ->
        let fresh =
          E.Explore.run_campaign ~reuse_ctx:false (spec workers)
            ~source:b.H.Programs.b_source
        in
        report_bytes fresh = report_bytes r)
      rows
  in
  if not ctx_reuse_identical then
    failwith "explore bench: context reuse changed the report";
  (* Warm per-run allocation of the campaign hot loop: one reused
     context, sweep spec, per-domain minor-word counter.  This is the
     number the tentpole optimization moved (~150k -> <50k) and the
     suite pins at 100k (test_explore_engine). *)
  let minor_words_per_run =
    let compiled =
      H.Pipeline.compile H.Config.full ~source:b.H.Programs.b_source
    in
    let ctx = H.Pipeline.Run_ctx.create compiled in
    let rsp =
      E.Strategy.spec E.Strategy.Sweep ~base:H.Config.full ~pct_horizon:5_000 0
    in
    ignore (E.Explore.observe_run ~ctx compiled rsp);
    ignore (E.Explore.observe_run ~ctx compiled rsp);
    let n = 8 in
    let before = Gc.minor_words () in
    for _ = 1 to n do
      ignore (E.Explore.observe_run ~ctx compiled rsp)
    done;
    (Gc.minor_words () -. before) /. float_of_int n
  in
  fpf "ctx reuse identical: %b; warm hot loop: %.0f minor words/run@."
    ctx_reuse_identical minor_words_per_run;
  let rps_of w = match List.find_opt (fun (w', _, _, _) -> w' = w) rows with
    | Some (_, _, _, rps) -> rps
    | None -> 0.
  in
  let speedup w = rps_of w /. Float.max (rps_of 1) 1e-9 in
  let cores = Domain.recommended_domain_count () in
  fpf "speedup: 2 workers %.2fx, 4 workers %.2fx (%d core%s available, \
       reports identical: %b)@.@."
    (speedup 2) (speedup 4) cores (if cores = 1 then "" else "s")
    reports_identical;
  (* Hand-off granularity: same campaign, same workers, forced batch
     sizes.  The report is byte-identical at every size (asserted); the
     sweep shows what the per-claim overhead costs at batch 1 and what
     the default claws back. *)
  let batch_workers = 2 in
  fpf "Work-queue batch sweep (%d workers, %d runs)@." batch_workers runs;
  fpf "%8s %10s %12s@." "batch" "wall" "runs/s";
  let batch_rows =
    let base = ref None in
    List.map
      (fun batch ->
        let r =
          E.Explore.run_campaign ~batch (spec batch_workers)
            ~source:b.H.Programs.b_source
        in
        (match !base with
        | None -> base := Some (report_bytes r)
        | Some bytes ->
            if report_bytes r <> bytes then
              failwith "explore bench: reports differ across batch sizes");
        let rps = E.Explore.runs_per_sec r in
        fpf "%8d %9.2fs %12.1f@." batch r.E.Explore.r_wall rps;
        (batch, r, rps))
      [ 1; 4; 16 ]
  in
  fpf "@.";
  (* Happens-before replay pruning: how many detector replays --equiv hb
     skips on PCT campaigns, with the invariant that the deduped race
     report stays identical to the raw-equivalence campaign's. *)
  let hb_cases =
    (* tsp schedules diverge fast at long horizons (every run its own
       class); 5k priority-change points is where PCT revisits
       happens-before classes often enough for pruning to bite. *)
    let runs = if quick then 40 else 80 in
    [ ("needle", runs, 10_000); ("tsp", runs, 5_000) ]
  in
  fpf "Happens-before replay pruning (pct campaigns, --equiv hb)@.";
  fpf "%8s %6s %9s %8s %13s %13s@." "program" "runs" "classes" "pruned"
    "pruned rate" "races match";
  let hb_rows =
    List.map
      (fun (name, runs, horizon) ->
        let b = Option.get (H.Programs.find name) in
        let spec equiv =
          E.Explore.spec ~strategy:(E.Strategy.Pct 3)
            ~budget:(E.Explore.runs_budget runs) ~pct_horizon:horizon ~equiv
            H.Config.full
        in
        let run equiv =
          E.Explore.run_campaign (spec equiv) ~source:b.H.Programs.b_source
        in
        let raw = run E.Explore.Raw and hb = run E.Explore.Hb in
        let stats = hb.E.Explore.r_stats in
        let pruned = stats.E.Aggregate.st_pruned_runs in
        let classes = stats.E.Aggregate.st_equiv_classes in
        let rate = float_of_int pruned /. float_of_int (max runs 1) in
        let races_match =
          raw.E.Explore.r_races = hb.E.Explore.r_races
          && raw.E.Explore.r_objects = hb.E.Explore.r_objects
        in
        fpf "%8s %6d %9d %8d %12.1f%% %13b@." name runs classes pruned
          (100. *. rate) races_match;
        (name, runs, horizon, classes, pruned, rate, races_match))
      hb_cases
  in
  fpf "@.";
  if json then
    write_json ~file:"BENCH_explore.json" (fun buf ->
        let bpf fmt = Printf.bprintf buf fmt in
        bpf "  \"benchmark\": \"tsp\",\n  \"strategy\": \"pct(d=3)\",\n";
        bpf "  \"runs_per_campaign\": %d,\n" runs;
        bpf "  \"recommended_domain_count\": %d,\n" cores;
        bpf "  \"reports_identical\": %b,\n" reports_identical;
        bpf "  \"ctx_reuse_identical\": %b,\n" ctx_reuse_identical;
        bpf "  \"minor_words_per_run\": %.0f,\n" minor_words_per_run;
        bpf "  \"workers\": [\n";
        bpf_elems buf rows (fun buf (workers, batch, r, rps) ->
            Printf.bprintf buf
              "    { \"workers\": %d, \"batch\": %d, \"wall_s\": %.4f, \
               \"runs_per_sec\": %.2f, \"events_per_sec\": %.1f, \
               \"events_per_sec_per_worker\": %.1f, \"distinct_races\": %d }"
              workers batch r.E.Explore.r_wall rps
              (E.Explore.events_per_sec r)
              (E.Explore.events_per_sec_per_worker r)
              r.E.Explore.r_stats.E.Aggregate.st_distinct_races);
        bpf "  ],\n";
        bpf "  \"speedup_2_workers\": %.3f,\n  \"speedup_4_workers\": %.3f,\n"
          (speedup 2) (speedup 4);
        bpf "  \"batch_sweep\": [\n";
        bpf_elems buf batch_rows (fun buf (batch, r, rps) ->
            Printf.bprintf buf
              "    { \"workers\": %d, \"batch\": %d, \"wall_s\": %.4f, \
               \"runs_per_sec\": %.2f }"
              batch_workers batch r.E.Explore.r_wall rps);
        bpf "  ],\n";
        bpf "  \"hb_pruning\": [\n";
        bpf_elems buf hb_rows
          (fun buf (name, runs, horizon, classes, pruned, rate, races_match) ->
            Printf.bprintf buf
              "    { \"program\": \"%s\", \"strategy\": \"pct(d=3)\", \
               \"runs\": %d, \"pct_horizon\": %d, \"equiv_classes\": %d, \
               \"pruned_runs\": %d, \"pruned_rate\": %.3f, \
               \"races_match_raw\": %b }"
              name runs horizon classes pruned rate races_match);
        bpf "  ]\n")

(* ------------------------------------------------------------------ *)
(* Detector replay throughput: events/sec for the runtime configurations
   of Tables 2/3 (Full, NoCache, NoOwnership) plus the packed history,
   replaying recorded logs of tsp and needle.  --json writes
   BENCH_detector.json, the tracked benchmark for the interned-lockset
   hot path.  The run also asserts the zero-allocation property: events
   dropped by the cache or the ownership filter must not allocate. *)

let detector_variants =
  [
    ("Full", Detector.default_config);
    ("NoCache", { Detector.default_config with Detector.use_cache = false });
    ( "NoOwnership",
      { Detector.default_config with Detector.use_ownership = false } );
    ("Packed", { Detector.default_config with Detector.history = Detector.Packed });
  ]

(* Minor-heap words per event on the two filtered hot paths, measured in
   steady state.  Fails loudly if either path starts allocating. *)
let detector_alloc_check () =
  let coll = Report.collector () in
  let d_cache = Detector.create ~config:Detector.default_config coll in
  let d_own =
    Detector.create
      ~config:{ Detector.default_config with Detector.use_cache = false }
      coll
  in
  let locks = Lockset_id.of_list [ 7 ] in
  Detector.on_access_interned d_cache ~loc:2 ~thread:1 ~locks ~kind:Event.Read
    ~site:3;
  Detector.on_access_interned d_own ~loc:1 ~thread:0 ~locks ~kind:Event.Write
    ~site:1;
  let n = 100_000 in
  let measure step =
    let before = Gc.minor_words () in
    for _ = 1 to n do
      step ()
    done;
    (Gc.minor_words () -. before) /. float_of_int n
  in
  let cache_hit_words =
    measure (fun () ->
        Detector.on_access_interned d_cache ~loc:2 ~thread:1 ~locks
          ~kind:Event.Read ~site:3)
  in
  let owned_words =
    measure (fun () ->
        Detector.on_access_interned d_own ~loc:1 ~thread:0 ~locks
          ~kind:Event.Write ~site:1)
  in
  if cache_hit_words > 0.01 then
    failwith
      (Printf.sprintf "cache-hit path allocates %.3f words/event" cache_hit_words);
  if owned_words > 0.01 then
    failwith
      (Printf.sprintf "ownership path allocates %.3f words/event" owned_words);
  (cache_hit_words, owned_words)

let detector_bench ~quick ~json () =
  let programs = [ "tsp"; "needle" ] in
  let target_events = if quick then 300_000 else 2_000_000 in
  let trials = if quick then 2 else 4 in
  let cache_hit_words, owned_words = detector_alloc_check () in
  fpf "Detector replay throughput (events/sec, best of %d)@." trials;
  fpf "hot-path allocation: cache-hit %.3f words/event, owned %.3f words/event@."
    cache_hit_words owned_words;
  fpf "%8s %14s %10s %14s %8s@." "program" "config" "entries" "events/s" "races";
  let results =
    List.map
      (fun name ->
        let b = Option.get (H.Programs.find name) in
        let compiled =
          H.Pipeline.compile H.Config.full ~source:b.H.Programs.b_perf_source
        in
        let log, _ = H.Pipeline.record_log compiled in
        let accesses = ref 0 in
        Event_log.iter
          (function Event_log.Access _ -> incr accesses | _ -> ())
          log;
        (* Short logs (needle) are replayed many times per trial so the
           timer sees a meaningful amount of work. *)
        let reps = max 1 (target_events / max !accesses 1) in
        let rows =
          List.map
            (fun (cname, config) ->
              let best = ref 0. and races = ref 0 in
              for _ = 1 to trials do
                let t0 = Unix.gettimeofday () in
                let last_races = ref 0 in
                for _ = 1 to reps do
                  let coll = Report.collector () in
                  let det = Detector.create ~config coll in
                  Event_log.replay log det;
                  last_races := Report.count coll
                done;
                let dt = Unix.gettimeofday () -. t0 in
                let eps = float_of_int (reps * !accesses) /. Float.max dt 1e-9 in
                if eps > !best then best := eps;
                races := !last_races
              done;
              fpf "%8s %14s %10d %14.0f %8d@." name cname !accesses !best !races;
              (cname, !best, !races))
            detector_variants
        in
        (name, !accesses, reps, rows))
      programs
  in
  fpf "@.";
  if json then
    write_json ~file:"BENCH_detector.json" (fun buf ->
        let bpf fmt = Printf.bprintf buf fmt in
        bpf "  \"target_events\": %d,\n  \"trials\": %d,\n" target_events
          trials;
        bpf
          "  \"alloc_words_per_event\": { \"cache_hit\": %.4f, \"owned\": \
           %.4f },\n"
          cache_hit_words owned_words;
        bpf "  \"programs\": [\n";
        bpf_elems buf results (fun buf (name, accesses, reps, rows) ->
            Printf.bprintf buf
              "    { \"program\": \"%s\", \"access_events\": %d, \
               \"replays_per_trial\": %d,\n"
              name accesses reps;
            Printf.bprintf buf "      \"configs\": [\n";
            bpf_elems buf rows (fun buf (cname, eps, races) ->
                Printf.bprintf buf
                  "        { \"config\": \"%s\", \"events_per_sec\": %.0f, \
                   \"races\": %d }"
                  cname eps races);
            Printf.bprintf buf "      ] }");
        bpf "  ]\n")

(* ------------------------------------------------------------------ *)
(* VM engine throughput: the link phase's payoff.  Measures, in the same
   process, raw interpreter speed (steps/sec with the detector off — the
   hot loop itself) and exploration-style campaign throughput (runs/sec
   over PCT strategy specs with the full detector pipeline, the cost the
   exploration engine pays per schedule) on tsp under both engines: the
   frozen pre-link block interpreter (ref) and the linked flat-image
   engine (linked).  Schedules are bit-identical, so the step counts
   must agree exactly — the run fails loudly if they do not.  --json
   writes BENCH_vm.json, the tracked benchmark for the link phase. *)

let vm_bench ~quick ~json () =
  let module E = Drd_explore in
  let b = Option.get (H.Programs.find "tsp") in
  let compiled =
    H.Pipeline.compile H.Config.full ~source:b.H.Programs.b_source
  in
  let engines =
    [
      ("ref", (`Ref : H.Pipeline.engine));
      ("linked", `Linked);
      ("specialized", `Spec);
    ]
  in
  let step_trials = if quick then 3 else 5 in
  fpf "VM engine throughput (tsp; ref = pre-link block interpreter)@.";
  fpf "%8s %12s %14s@." "engine" "steps" "steps/s";
  (* Trials are interleaved across engines (every round measures all
     engines back to back) so host-speed drift over the bench's run
     hits each engine equally instead of whichever is measured last;
     best-of-N per engine then discards the slow rounds. *)
  let steps_rows =
    let acc =
      List.map (fun (name, engine) -> (name, engine, ref 0, ref 0.)) engines
    in
    for _ = 1 to step_trials do
      List.iter
        (fun (_, engine, steps, best) ->
          let t0 = Unix.gettimeofday () in
          let r = H.Pipeline.run ~detect:false ~engine compiled in
          let dt = Unix.gettimeofday () -. t0 in
          steps := r.H.Pipeline.steps;
          let sps = float_of_int r.H.Pipeline.steps /. Float.max dt 1e-9 in
          if sps > !best then best := sps)
        acc
    done;
    List.map
      (fun (name, _, steps, best) ->
        fpf "%8s %12d %14.0f@." name !steps !best;
        (name, !steps, !best))
      acc
  in
  (match steps_rows with
  | (_, s0, _) :: rest ->
      List.iter
        (fun (name, s, _) ->
          if s <> s0 then
            failwith
              (Printf.sprintf "engines diverged: %d steps (ref) vs %d (%s)" s0
                 s name))
        rest
  | [] -> ());
  let runs = if quick then 24 else 64 in
  let campaign_trials = if quick then 1 else 5 in
  (* One exploration campaign: [runs] pct(d=3) replays with the per-run
     seeds/quanta the real campaigns use.  [detect:true] is the
     race-hunting configuration (per-run detector included);
     [detect:false] is the fingerprint-only pass the happens-before
     pruning replays run, where the VM is nearly the whole cost. *)
  let campaign_once ~detect engine =
    let t0 = Unix.gettimeofday () in
    for index = 0 to runs - 1 do
      let sp =
        E.Strategy.spec (E.Strategy.Pct 3) ~base:compiled.H.Pipeline.config
          ~pct_horizon:20_000 index
      in
      let vm =
        {
          (H.Pipeline.vm_config_of compiled.H.Pipeline.config) with
          Drd_vm.Interp.seed = sp.E.Strategy.sp_seed;
          quantum = sp.E.Strategy.sp_quantum;
          policy = sp.E.Strategy.sp_policy;
        }
      in
      ignore (H.Pipeline.run ~vm ~detect ~engine compiled)
    done;
    float_of_int runs /. Float.max (Unix.gettimeofday () -. t0) 1e-9
  in
  fpf "@.Exploration campaigns (pct(d=3), %d runs, best of %d)@." runs
    campaign_trials;
  fpf "%8s %16s %18s@." "engine" "detect runs/s" "fingerprint runs/s";
  (* Interleaved like the step trials: each round measures detect and
     fingerprint campaigns for every engine before the next round, so
     the engine ratios (the numbers the specialization metrics are
     computed from) are drift-free. *)
  let campaign_rows =
    let acc =
      List.map (fun (name, engine) -> (name, engine, ref 0., ref 0.)) engines
    in
    for _ = 1 to campaign_trials do
      List.iter
        (fun (_, engine, det, fp) ->
          let d = campaign_once ~detect:true engine in
          if d > !det then det := d;
          let f = campaign_once ~detect:false engine in
          if f > !fp then fp := f)
        acc
    done;
    List.map
      (fun (name, _, det, fp) ->
        fpf "%8s %16.1f %18.1f@." name !det !fp;
        (name, !det, !fp))
      acc
  in
  let steps_of n =
    match List.find_opt (fun (n', _, _) -> n' = n) steps_rows with
    | Some (_, _, sps) -> sps
    | None -> 0.
  in
  let det_of n =
    match List.find_opt (fun (n', _, _) -> n' = n) campaign_rows with
    | Some (_, det, _) -> det
    | None -> 0.
  in
  let fp_of n =
    match List.find_opt (fun (n', _, _) -> n' = n) campaign_rows with
    | Some (_, _, fp) -> fp
    | None -> 0.
  in
  let steps_speedup = steps_of "linked" /. Float.max (steps_of "ref") 1e-9 in
  let explore_speedup = det_of "linked" /. Float.max (det_of "ref") 1e-9 in
  let fp_speedup = fp_of "linked" /. Float.max (fp_of "ref") 1e-9 in
  (* The specialization payoff: detect-on throughput over the generic
     linked engine, and how much of the gap between generic detection
     and the fingerprint-only pass (the detector's whole cost) the fast
     paths close.  Also measured: the share of events that arrive
     through specialized trace ops, from one instrumented run. *)
  let spec_speedup = det_of "specialized" /. Float.max (det_of "linked") 1e-9 in
  let gap = fp_of "linked" -. det_of "linked" in
  let gap_closed =
    if gap > 0. then (det_of "specialized" -. det_of "linked") /. gap else 0.
  in
  let coverage =
    let r = H.Pipeline.run ~engine:`Spec compiled in
    if r.H.Pipeline.events = 0 then 0.
    else
      float_of_int r.H.Pipeline.spec_events
      /. float_of_int r.H.Pipeline.events
  in
  fpf
    "speedup: %.2fx steps/s, %.2fx explore runs/s (detector on), %.2fx \
     fingerprint runs/s@."
    steps_speedup explore_speedup fp_speedup;
  fpf
    "specialization: %.2fx detect runs/s over linked, %.0f%% of the \
     detector-cost gap closed, %.1f%% of events specialized@.@."
    spec_speedup (100. *. gap_closed) (100. *. coverage);
  if json then
    write_json ~file:"BENCH_vm.json" (fun buf ->
        let bpf fmt = Printf.bprintf buf fmt in
        bpf "  \"benchmark\": \"tsp\",\n";
        bpf "  \"step_trials\": %d,\n  \"campaign_runs\": %d,\n" step_trials
          runs;
        bpf "  \"engines\": [\n";
        bpf_elems buf steps_rows (fun buf (name, steps, sps) ->
            Printf.bprintf buf
              "    { \"engine\": \"%s\", \"steps\": %d, \"steps_per_sec\": \
               %.0f, \"explore_runs_per_sec\": %.2f, \
               \"fingerprint_runs_per_sec\": %.2f }"
              name steps sps (det_of name) (fp_of name));
        bpf "  ],\n";
        bpf "  \"steps_speedup\": %.3f,\n" steps_speedup;
        bpf "  \"explore_runs_speedup\": %.3f,\n" explore_speedup;
        bpf "  \"fingerprint_runs_speedup\": %.3f,\n" fp_speedup;
        bpf "  \"specialized_detect_speedup\": %.3f,\n" spec_speedup;
        bpf "  \"specialized_gap_closed\": %.3f,\n" gap_closed;
        bpf "  \"specialized_event_coverage\": %.3f\n" coverage)

(* ------------------------------------------------------------------ *)
(* Serve-daemon soak: an in-process daemon on a Unix socket, N client
   domains streaming event logs concurrently.  Each client first runs
   one identity session — the recorded tsp log, whose report frame must
   be byte-identical to the one-shot replay (the daemon's eviction
   watermark is above tsp's location count, so nothing is retired) —
   then churn sessions cycling through a location space far larger than
   the watermark, which must keep live locations bounded while evicting
   freely.  --json writes BENCH_serve.json, the tracked aggregate
   events/s number. *)

let serve_bench ~quick ~json () =
  let module W = Drd_explore.Wire in
  let module SP = Drd_serve.Protocol in
  let evict_high = 4096 in
  let clients = 4 in
  let churn_lines_per_session = 100_000 in
  let churn_window = 20_000 (* locations per session; >> evict_high *) in
  let target_per_client = if quick then 250_000 else 2_500_000 in
  (* The identity payload and its expected report body. *)
  let b = Option.get (H.Programs.find "tsp") in
  let compiled = H.Pipeline.compile H.Config.full ~source:b.H.Programs.b_source in
  let log, _ = H.Pipeline.record_log compiled in
  let log_blob =
    let buf = Buffer.create (1 lsl 20) in
    Event_log.iter
      (fun e ->
        Buffer.add_string buf (Event_log.entry_to_line e);
        Buffer.add_char buf '\n')
      log;
    Buffer.contents buf
  in
  let expected_body =
    let coll, stats = H.Pipeline.detect_post_mortem H.Config.full log in
    SP.events_report_body ~races:(Report.races coll) ~stats ~evictions:0
  in
  (* Churn payload: every location is touched by two threads holding a
     common lock, so tries fill without reporting races (no race-frame
     backpressure while a client streams without reading). *)
  let churn_blob =
    let buf = Buffer.create (1 lsl 22) in
    for i = 0 to churn_lines_per_session - 1 do
      let loc = 1 + (i mod churn_window) in
      let thread = 1 + (i / churn_window mod 2) in
      let kind = if thread = 1 then 'W' else 'R' in
      Printf.bprintf buf "A %d %d %c 7 5\n" loc thread kind
    done;
    Buffer.contents buf
  in
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "racedet-bench-%d.sock" (Unix.getpid ()))
  in
  let conf =
    {
      Drd_serve.Server.sv_config = H.Config.full;
      sv_eviction = Some (Detector.eviction ~high:evict_high ());
      sv_stats_every = 0.;
    }
  in
  let ready = Atomic.make false in
  let server =
    Domain.spawn (fun () ->
        Drd_serve.Server.serve_socket conf ~path
          ~ready:(fun () -> Atomic.set ready true)
          ())
  in
  while not (Atomic.get ready) do
    Domain.cpu_relax ()
  done;
  let connect () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_UNIX path);
    (fd, Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd)
  in
  (* Read frames until the session's report; returns the raw report
     body, its eviction count, and daemon-wide live locations from the
     last stats frame seen on the way (0 if none was requested). *)
  let read_report ic =
    let rec go live =
      let line = input_line ic in
      match W.json_of_string line with
      | Error m -> failwith ("serve bench: bad frame: " ^ m)
      | Ok j -> (
          match W.member "t" j with
          | Some (W.String "report") ->
              let body =
                (* The raw body substring: everything after the
                   "report": key up to the frame's closing brace. *)
                let key = "\"report\":" in
                let klen = String.length key in
                let at = ref (-1) in
                (try
                   for i = 0 to String.length line - klen do
                     if String.sub line i klen = key then begin
                       at := i + klen;
                       raise Exit
                     end
                   done
                 with Exit -> ());
                if !at < 0 then failwith "serve bench: report frame malformed";
                String.sub line !at (String.length line - !at - 1)
              in
              let evictions =
                match W.member "report" j with
                | Some rep -> (
                    match W.member "evictions" rep with
                    | Some (W.Int n) -> n
                    | _ -> 0)
                | None -> 0
              in
              (body, evictions, live)
          | Some (W.String "stats") ->
              let live =
                match W.member "stats" j with
                | Some st -> (
                    match W.member "live_locations" st with
                    | Some (W.Int n) -> n
                    | _ -> live)
                | None -> live
              in
              go live
          | Some (W.String "error") ->
              failwith ("serve bench: error frame: " ^ line)
          | _ -> go live)
    in
    go 0
  in
  (* One client: identity session then churn sessions up to the event
     budget; returns (events streamed, identity ok, max live, evictions). *)
  let run_client cid =
    let _fd, ic, oc = connect () in
    (* Stats-before-close samples live locations while the session's
       state is still resident. *)
    let session ?(stats = false) j payload =
      output_string oc
        (SP.control_to_line
           (SP.Hello
              {
                c_session = Printf.sprintf "c%d-s%d" cid j;
                c_kind = SP.Events;
                c_config = "";
              }));
      output_char oc '\n';
      output_string oc payload;
      if stats then begin
        output_string oc (SP.control_to_line SP.Stats_req);
        output_char oc '\n'
      end;
      output_string oc (SP.control_to_line SP.Close);
      output_char oc '\n';
      flush oc;
      read_report ic
    in
    let count_lines s =
      let n = ref 0 in
      String.iter (fun c -> if c = '\n' then incr n) s;
      !n
    in
    let body, ev0, _ = session 0 log_blob in
    let identity_ok = body = expected_body && ev0 = 0 in
    let events = ref (count_lines log_blob) in
    let max_live = ref 0 and evictions = ref 0 and sessions = ref 1 in
    while !events < target_per_client do
      incr sessions;
      let _, ev, live = session ~stats:true !sessions churn_blob in
      events := !events + churn_lines_per_session;
      if live > !max_live then max_live := live;
      evictions := !evictions + ev
    done;
    close_out oc;
    (!events, identity_ok, !max_live, !evictions, !sessions)
  in
  fpf "Serve-daemon soak (%d clients, ~%d events each, evict-high %d)@."
    clients target_per_client evict_high;
  let t0 = Unix.gettimeofday () in
  let workers = List.init clients (fun i -> Domain.spawn (fun () -> run_client i)) in
  let results = List.map Domain.join workers in
  let wall = Unix.gettimeofday () -. t0 in
  (* Final daemon stats, then shutdown. *)
  let daemon_stats =
    let _fd, ic, oc = connect () in
    output_string oc (SP.control_to_line SP.Stats_req);
    output_char oc '\n';
    flush oc;
    let line = input_line ic in
    output_string oc (SP.control_to_line SP.Shutdown);
    output_char oc '\n';
    close_out oc;
    Result.get_ok (W.json_of_string line)
  in
  (match Domain.join server with
  | Ok () -> ()
  | Error e -> failwith ("serve bench: server failed: " ^ e));
  let events_total =
    List.fold_left (fun acc (e, _, _, _, _) -> acc + e) 0 results
  in
  let identity_ok = List.for_all (fun (_, ok, _, _, _) -> ok) results in
  let max_live =
    List.fold_left (fun acc (_, _, l, _, _) -> max acc l) 0 results
  in
  let evictions_total =
    List.fold_left (fun acc (_, _, _, ev, _) -> acc + ev) 0 results
  in
  let sessions_total =
    List.fold_left (fun acc (_, _, _, _, s) -> acc + s) 0 results
  in
  let eps = float_of_int events_total /. Float.max wall 1e-9 in
  let heap_words_max =
    match W.member "stats" daemon_stats with
    | Some st -> (
        match W.member "heap_words_max" st with Some (W.Int n) -> n | _ -> 0)
    | _ -> 0
  in
  fpf "  events: %d over %.2fs = %.0f events/s aggregate@." events_total wall
    eps;
  fpf
    "  identity sessions byte-identical: %b; churn: %d sessions, max live \
     locations %d (bound %d), %d evictions@."
    identity_ok sessions_total max_live
    (clients * evict_high)
    evictions_total;
  fpf "  daemon heap high-water: %d words@.@." heap_words_max;
  if not identity_ok then
    failwith "serve bench: session report differs from one-shot replay";
  (* Daemon-wide live locations: at most [clients] sessions are open at
     once, each bounded by the watermark. *)
  if max_live > clients * evict_high then
    failwith
      (Printf.sprintf "serve bench: live locations %d exceed bound %d"
         max_live (clients * evict_high));
  if evictions_total = 0 then
    failwith "serve bench: churn sessions never triggered eviction";
  if json then
    write_json ~file:"BENCH_serve.json" (fun buf ->
        let bpf fmt = Printf.bprintf buf fmt in
        bpf "  \"clients\": %d,\n" clients;
        bpf "  \"evict_high\": %d,\n" evict_high;
        bpf "  \"events_total\": %d,\n" events_total;
        bpf "  \"sessions_total\": %d,\n" sessions_total;
        bpf "  \"wall_s\": %.4f,\n" wall;
        bpf "  \"events_per_sec\": %.0f,\n" eps;
        bpf "  \"identity_sessions_ok\": %b,\n" identity_ok;
        bpf "  \"max_live_locations\": %d,\n" max_live;
        bpf "  \"evictions_total\": %d,\n" evictions_total;
        bpf "  \"heap_words_max\": %d\n" heap_words_max)

(* ---- the differential detector arena (BENCH_arena.json) ---- *)

let arena_bench ~quick ~json () =
  let module A = Drd_arena.Arena in
  let count = if quick then 150 else 1200 in
  let opts = { A.default_options with A.o_count = count } in
  fpf "Detector arena (%d generated programs, seed %d)@." count
    opts.A.o_seed;
  let t0 = Unix.gettimeofday () in
  let r = A.run opts in
  let wall = Unix.gettimeofday () -. t0 in
  Fmt.pr "%a" A.pp_report r;
  fpf "wall: %.1fs@.@." wall;
  if r.A.r_misses <> [] then
    failwith "arena bench: a detector missed a guaranteed race";
  if json then
    write_json ~file:"BENCH_arena.json" (fun buf ->
        let bpf fmt = Printf.bprintf buf fmt in
        bpf "  \"seed\": %d,\n" r.A.r_seed;
        bpf "  \"programs\": %d,\n" r.A.r_count;
        bpf "  \"max_units\": %d,\n" r.A.r_max_units;
        bpf "  \"cells\": %d,\n" r.A.r_cells;
        bpf "  \"wall_s\": %.4f,\n" wall;
        bpf "  \"detectors\": [\n";
        bpf_elems buf r.A.r_tallies (fun buf (t : A.tally) ->
            Printf.bprintf buf
              "    {\"name\": \"%s\", \"tp\": %d, \"fp\": %d, \"fn\": %d, \
               \"tn\": %d, \"precision\": %.4f, \"recall\": %.4f, \
               \"guaranteed_missed\": %d, \"feasible_caught\": %d, \
               \"feasible_total\": %d, \"unexpected\": %d, \"errors\": %d}"
              t.A.t_name t.A.t_tp t.A.t_fp t.A.t_fn t.A.t_tn (A.precision t)
              (A.recall t) t.A.t_guaranteed_missed t.A.t_feasible_caught
              t.A.t_feasible_total t.A.t_unexpected t.A.t_errors);
        bpf "  ],\n";
        bpf "  \"disagreements\": [\n";
        bpf_elems buf r.A.r_pairs (fun buf (p : A.pair) ->
            Printf.bprintf buf
              "    {\"reporter\": \"%s\", \"silent\": \"%s\", \"count\": %d%s}"
              p.A.pr_reporter p.A.pr_silent p.A.pr_count
              (match p.A.pr_example with
              | None -> ""
              | Some x ->
                  Printf.sprintf ", \"shrunk_example\": \"%s on %s\""
                    (Fmt.str "%a" Drd_arena.Gen.pp_spec x.A.x_shrunk
                    |> String.map (fun c -> if c = '"' then '\'' else c))
                    x.A.x_marker));
        bpf "  ]\n")

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let has f = List.mem f args in
  let all = args = [] || has "--all" in
  let quick = has "--quick" in
  if all || has "--figure1" then H.Tables.figure1 ();
  if all || has "--figure2" then H.Tables.figure2 ();
  if all || has "--figure3" then H.Tables.figure3 ();
  if all || has "--table1" then H.Tables.table1 ();
  if all || has "--table2" then
    ignore (H.Tables.table2 ~runs:(if quick then 1 else 3) ~perf:(not quick) ());
  if all || has "--table3" then ignore (H.Tables.table3 ());
  if all || has "--sor-vs-sor2" then ignore (H.Tables.sor_vs_sor2 ());
  if all || has "--space" then ignore (H.Tables.space ());
  if all || has "--join-example" then H.Tables.join_example ();
  if all || has "--baselines" then ignore (H.Tables.baselines ());
  if all || has "--ablation" then ablation ();
  if all || has "--explore" then explore_bench ~quick ~json:(has "--json") ();
  if all || has "--detector" then detector_bench ~quick ~json:(has "--json") ();
  if all || has "--vm" then vm_bench ~quick ~json:(has "--json") ();
  if all || has "--serve" then serve_bench ~quick ~json:(has "--json") ();
  if all || has "--arena" then arena_bench ~quick ~json:(has "--json") ();
  if all || has "--micro" then microbench ()
