(** The differential detector arena.

    Runs every registered detection technique over a deterministic
    corpus of generated, ground-truth-labelled concurrent programs
    ({!Gen}), scores each against the labels (precision / recall /
    guaranteed-miss counts), tallies pairwise disagreements, and
    shrinks the first witness of each disagreement direction — and of
    each guaranteed-race miss — to a minimal spec. *)

module Registry = Drd_harness.Registry

type options = {
  o_seed : int;
  o_count : int;  (** programs in the corpus *)
  o_max_units : int;  (** idiom units per program, 1..n *)
  o_max_steps : int;
      (** VM step budget per run; exceeding it is an error verdict *)
  o_detectors : Registry.entry list;
  o_shrink : bool;
      (** shrink disagreement / miss witnesses (costs extra runs) *)
}

val default_options : options
(** seed 42, 200 programs, up to 4 units, 400k steps, every registered
    detector, shrinking on. *)

type outcome = { oc_races : string list; oc_error : string option }

val run_one : options -> Registry.entry -> Gen.spec -> outcome
(** One program under one technique, on the schedule determined by the
    spec alone (every detector sees the same interleaving). *)

type tally = {
  t_name : string;
  mutable t_tp : int;
  mutable t_fp : int;
  mutable t_fn : int;
  mutable t_tn : int;
  mutable t_guaranteed_missed : int;  (** the CI-gated count *)
  mutable t_feasible_total : int;
  mutable t_feasible_caught : int;
  mutable t_unexpected : int;
      (** reports matching no ground-truth cell (also counted as FP) *)
  mutable t_errors : int;
}

val precision : tally -> float
val recall : tally -> float

type example = {
  x_marker : string;
  x_spec : Gen.spec;
  x_shrunk : Gen.spec;  (** minimal spec still witnessing the property *)
}

type pair = {
  pr_reporter : string;
  pr_silent : string;
  mutable pr_count : int;
  mutable pr_example : example option;
}

type miss = {
  ms_detector : string;
  mutable ms_count : int;
  mutable ms_example : example option;
}

type report = {
  r_seed : int;
  r_count : int;
  r_max_units : int;
  r_cells : int;
  r_tallies : tally list;
  r_pairs : pair list;
  r_misses : miss list;
}

val run : options -> report

val guaranteed_misses : report -> detector:string -> int
(** The gated count for one detector (0 if it did not run). *)

val shrink : holds:(Gen.spec -> bool) -> Gen.spec -> Gen.spec
(** Greedy structural shrinking: drop units, then lower loop counts,
    to a fixpoint of [holds]. *)

val disagreement_holds :
  options ->
  reporter:Registry.entry ->
  silent:Registry.entry ->
  marker:string ->
  Gen.spec ->
  bool

val miss_holds :
  options -> detector:Registry.entry -> marker:string -> Gen.spec -> bool

val pp_report : Format.formatter -> report -> unit

val to_json : report -> string
(** Deterministic rendering: byte-identical across runs for a fixed
    (seed, count, max_units, detector set). *)

val repro_source : reporter:string -> silent:string -> example -> string
(** A standalone MiniJava reproducer for a shrunk disagreement, with an
    explanatory header comment. *)
