(* A QCheck generator of well-typed MiniJava concurrent programs
   composed from the synchronization idioms the repo models — mutexes
   (`synchronized` regions), fork/join chains, wait/notify signaling,
   and thread-pool-style worker loops — with seeded injected races and
   known-safe twins, so every generated program carries ground truth.

   A program is a list of independent UNITS.  Each unit owns disjoint
   static cells of the shared class G (data cells d<k>s / d<k>r, flags
   a<k> / b<k>, lock l<k>, noise cell t<k>) plus private helper classes
   (Mix<k>, Q<k>), named by the unit's stable id — NOT its list
   position — so shrinking a spec never renames the cells a reproducer
   refers to.

   Ground truth per idiom (worked out against each detector's actual
   discipline; the test suite pins this matrix):

   - Sync_counter   SAFE.  Two threads increment d<k>s under the common
                    lock.  Every detector quiet.
   - Rendezvous_race RACY (guaranteed).  Both threads access d<k>r
                    before AND after a symmetric wait/notify handshake,
                    so in every terminating schedule each side has an
                    access that is unordered with the other side's and
                    outside the ownership/exclusive initialization
                    exemption.  All four detectors report it in every
                    schedule — the gating cells for ground-truth
                    misses.
   - Join_handoff   SAFE.  main writes pre-start, the thread writes
                    unlocked, main reads post-join.  Paper quiet (join
                    pseudo-locks), vclock quiet (start/join edges);
                    Eraser and objrace report — their documented lack
                    of fork/join modeling.
   - Start_chain    SAFE.  T1 writes then starts T2; T2 writes then
                    starts T3; T3 writes.  Ordered by start edges
                    (vclock quiet), but lockset techniques lose the
                    ordering once ownership's single-handoff exemption
                    is spent: paper, Eraser and objrace all report.
                    The paper detector's honest precision cost.
   - Ping_pong      SAFE.  A writes, signals; B waits, writes, signals
                    back; A writes again.  Monitor-ordered alternation:
                    vclock quiet, every lockset technique reports —
                    the classic lockset imprecision.
   - Oneshot_handoff SAFE.  Producer writes then signals once; consumer
                    waits then writes once.  Only Eraser reports (the
                    paper's ownership one-shot exemption and objrace's
                    demotion-access grace both absorb it; vclock sees
                    the monitor edge).
   - Mixed_object   SAFE.  Mix<k>.imm is immutable after main's init
                    and read unlocked (also via a virtual get());
                    Mix<k>.cnt is lock-protected.  Per-field detectors
                    quiet; objrace merges the disciplines at object
                    granularity and reports the Mix object.
   - Worker_pool    SAFE or RACY.  A synchronized queue Q<k> filled by
                    main and drained by two workers through virtual
                    take() calls; accumulation under the unit lock.
                    objrace reports the Q object in both variants (the
                    call-as-write flood); the racy twin adds a
                    rendezvous race on d<k>r.
   - Hidden_race    RACY (feasible, NOT guaranteed).  Both threads
                    write d<k>r without locks, on opposite sides of
                    critical sections on l<k>: the race is feasible,
                    but a schedule that orders the critical sections
                    conveniently hides it behind an accidental
                    happens-before edge (paper Section 2.2's critique)
                    and serialized schedules let ownership absorb one
                    side.  Eraser and objrace report it in every
                    schedule; paper and vclock only in some — so these
                    cells count toward recall but are exempt from the
                    CI ground-truth gate. *)

type rw = Ww | Rw

type idiom =
  | Sync_counter
  | Rendezvous_race of rw
  | Join_handoff
  | Start_chain
  | Ping_pong
  | Oneshot_handoff
  | Mixed_object
  | Worker_pool of bool (* racy twin? *)
  | Hidden_race

type unit_spec = { u_id : int; u_idiom : idiom; u_iters : int }

type spec = { sp_index : int; sp_units : unit_spec list }

(* Hidden_race needs a second post-demotion write for the
   always-reporting detectors to be guaranteed their report. *)
let min_iters = function Hidden_race -> 2 | _ -> 1

let make_unit ~id ~idiom ~iters =
  { u_id = id; u_idiom = idiom; u_iters = max iters (min_iters idiom) }

let idiom_name = function
  | Sync_counter -> "sync-counter"
  | Rendezvous_race Ww -> "rendezvous-ww"
  | Rendezvous_race Rw -> "rendezvous-rw"
  | Join_handoff -> "join-handoff"
  | Start_chain -> "start-chain"
  | Ping_pong -> "ping-pong"
  | Oneshot_handoff -> "oneshot-handoff"
  | Mixed_object -> "mixed-object"
  | Worker_pool false -> "worker-pool"
  | Worker_pool true -> "worker-pool-racy"
  | Hidden_race -> "hidden-race"

let all_idioms =
  [
    Sync_counter;
    Rendezvous_race Ww;
    Rendezvous_race Rw;
    Join_handoff;
    Start_chain;
    Ping_pong;
    Oneshot_handoff;
    Mixed_object;
    Worker_pool false;
    Worker_pool true;
    Hidden_race;
  ]

let idiom_of_name n = List.find_opt (fun i -> idiom_name i = n) all_idioms

let pp_unit ppf u =
  Fmt.pf ppf "u%d:%s x%d" u.u_id (idiom_name u.u_idiom) u.u_iters

let pp_spec ppf sp =
  Fmt.pf ppf "#%d [%a]" sp.sp_index
    (Fmt.list ~sep:(Fmt.any "; ") pp_unit)
    sp.sp_units

(* ---- ground truth ---- *)

type cell = {
  c_marker : string;
  c_prefix : bool; (* marker is an object-identity prefix, not an exact name *)
  c_racy : bool;
  c_guaranteed : bool;
      (* racy cells only: every detector reports it in every schedule,
         so a silent detector has unambiguously missed ground truth *)
}

let static_cell ~racy ?(guaranteed = true) marker =
  { c_marker = marker; c_prefix = false; c_racy = racy; c_guaranteed = guaranteed }

let object_cell marker =
  { c_marker = marker; c_prefix = true; c_racy = false; c_guaranteed = false }

let cell_matches c desc =
  if c.c_prefix then String.starts_with ~prefix:c.c_marker desc
  else String.equal c.c_marker desc

let truth_of_unit u =
  let k = u.u_id in
  let ds = Printf.sprintf "G.d%ds" k in
  let dr = Printf.sprintf "G.d%dr" k in
  match u.u_idiom with
  | Sync_counter -> [ static_cell ~racy:false ds ]
  | Rendezvous_race Ww -> [ static_cell ~racy:true dr ]
  | Rendezvous_race Rw ->
      [ static_cell ~racy:true dr; static_cell ~racy:false ds ]
  | Join_handoff -> [ static_cell ~racy:false ds ]
  | Start_chain -> [ static_cell ~racy:false ds ]
  | Ping_pong -> [ static_cell ~racy:false ds ]
  | Oneshot_handoff -> [ static_cell ~racy:false ds ]
  | Mixed_object -> [ object_cell (Printf.sprintf "Mix%d#" k) ]
  | Worker_pool racy ->
      [ object_cell (Printf.sprintf "Q%d#" k); static_cell ~racy:false ds ]
      @ if racy then [ static_cell ~racy:true dr ] else []
  | Hidden_race ->
      [
        static_cell ~racy:true ~guaranteed:false dr;
        static_cell ~racy:false (Printf.sprintf "G.t%d" k);
      ]

let truth sp = List.concat_map truth_of_unit sp.sp_units

(* ---- MiniJava emission ---- *)

type emitted = {
  e_classes : string list;
  e_init : string list; (* main, before any thread is created *)
  e_threads : (string * string) list; (* class, var: created/started/joined *)
  e_post : string list; (* main, after every join *)
}

(* `synchronized (G.l<k>) { G.<flag> = true; G.l<k>.notifyAll(); }` *)
let signal k flag =
  Printf.sprintf "synchronized (G.l%d) { G.%s%d = true; G.l%d.notifyAll(); }" k
    flag k k

(* `synchronized (G.l<k>) { while (!G.<flag>) { G.l<k>.wait(); } }` *)
let await k flag =
  Printf.sprintf "synchronized (G.l%d) { while (!G.%s%d) { G.l%d.wait(); } }" k
    flag k k

let thread_class name body =
  let b = Buffer.create 256 in
  Printf.ksprintf (Buffer.add_string b) "class %s extends Thread {\n" name;
  Buffer.add_string b "  void run() {\n";
  List.iter
    (fun line -> Buffer.add_string b ("    " ^ line ^ "\n"))
    body;
  Buffer.add_string b "  }\n}\n";
  Buffer.contents b

let for_n n body = Printf.sprintf "for (int i = 0; i < %d; i = i + 1) { %s }" n body

let emit_unit u : emitted =
  let k = u.u_id in
  let n = u.u_iters in
  let cls suffix = Printf.sprintf "U%d%s" k suffix in
  let var suffix = Printf.sprintf "u%d%s" k suffix in
  let init_lock = Printf.sprintf "G.l%d = new Object();" k in
  let two_threads a_body b_body =
    [ thread_class (cls "A") a_body; thread_class (cls "B") b_body ]
  in
  match u.u_idiom with
  | Sync_counter ->
      let body =
        [ for_n n (Printf.sprintf "synchronized (G.l%d) { G.d%ds = G.d%ds + 1; }" k k k) ]
      in
      {
        e_classes = two_threads body body;
        e_init = [ init_lock ];
        e_threads = [ (cls "A", var "a"); (cls "B", var "b") ];
        e_post = [];
      }
  | Rendezvous_race rw ->
      let a_body =
        [
          Printf.sprintf "G.d%dr = 1;" k;
          signal k "a";
          await k "b";
          for_n n (Printf.sprintf "G.d%dr = G.d%dr + 1;" k k);
        ]
      in
      let b_body =
        match rw with
        | Ww ->
            [
              Printf.sprintf "G.d%dr = 2;" k;
              signal k "b";
              await k "a";
              for_n n (Printf.sprintf "G.d%dr = G.d%dr + 2;" k k);
            ]
        | Rw ->
            [
              Printf.sprintf "G.d%ds = G.d%dr;" k k;
              signal k "b";
              await k "a";
              for_n n (Printf.sprintf "G.d%ds = G.d%ds + G.d%dr;" k k k);
            ]
      in
      {
        e_classes = two_threads a_body b_body;
        e_init = [ init_lock ];
        e_threads = [ (cls "A", var "a"); (cls "B", var "b") ];
        e_post = [];
      }
  | Join_handoff ->
      {
        e_classes =
          [
            thread_class (cls "A")
              [ for_n n (Printf.sprintf "G.d%ds = G.d%ds + 1;" k k) ];
          ];
        e_init = [ init_lock; Printf.sprintf "G.d%ds = 1;" k ];
        e_threads = [ (cls "A", var "a") ];
        e_post = [ Printf.sprintf "print(\"u%d\", G.d%ds);" k k ];
      }
  | Start_chain ->
      let write = Printf.sprintf "G.d%ds = G.d%ds + 1;" k k in
      let start_next suffix =
        Printf.sprintf "%s t = new %s(); t.start();" (cls suffix) (cls suffix)
      in
      {
        e_classes =
          [
            thread_class (cls "A") [ write; start_next "B" ];
            thread_class (cls "B") [ write; start_next "C" ];
            thread_class (cls "C") [ write ];
          ];
        e_init = [ init_lock ];
        (* main can only join the chain's head; B and C just run to
           completion (the VM waits for every thread). *)
        e_threads = [ (cls "A", var "a") ];
        e_post = [];
      }
  | Ping_pong ->
      let a_body =
        [
          Printf.sprintf "G.d%ds = 1;" k;
          signal k "a";
          await k "b";
          for_n n (Printf.sprintf "G.d%ds = G.d%ds + 1;" k k);
        ]
      in
      let b_body =
        [
          await k "a";
          Printf.sprintf "G.d%ds = G.d%ds + 3;" k k;
          signal k "b";
        ]
      in
      {
        e_classes = two_threads a_body b_body;
        e_init = [ init_lock ];
        e_threads = [ (cls "A", var "a"); (cls "B", var "b") ];
        e_post = [];
      }
  | Oneshot_handoff ->
      (* The consumer's access must be a single plain write: an
         increment would read first, spending objrace's
         demotion-access grace, and the write would then report. *)
      let a_body = [ Printf.sprintf "G.d%ds = 7;" k; signal k "a" ] in
      let b_body = [ await k "a"; Printf.sprintf "G.d%ds = 9;" k ] in
      {
        e_classes = two_threads a_body b_body;
        e_init = [ init_lock ];
        e_threads = [ (cls "A", var "a"); (cls "B", var "b") ];
        e_post = [];
      }
  | Mixed_object ->
      let mix =
        Printf.sprintf
          "class Mix%d {\n  int imm; int cnt;\n  int get() { return imm; }\n}\n"
          k
      in
      let body =
        [
          for_n n
            (Printf.sprintf
               "int v = G.m%d.get(); synchronized (G.l%d) { G.m%d.cnt = G.m%d.cnt + v; }"
               k k k k);
        ]
      in
      {
        e_classes = mix :: two_threads body body;
        e_init =
          [
            init_lock;
            Printf.sprintf "G.m%d = new Mix%d();" k k;
            Printf.sprintf "G.m%d.imm = 5;" k;
          ];
        e_threads = [ (cls "A", var "a"); (cls "B", var "b") ];
        e_post = [];
      }
  | Worker_pool racy ->
      let q =
        Printf.sprintf
          "class Q%d {\n\
          \  int[] slots; int size;\n\
          \  Q%d() { slots = new int[8]; size = 0; }\n\
          \  synchronized void put(int v) {\n\
          \    if (size < 8) { slots[size] = v; size = size + 1; }\n\
          \  }\n\
          \  synchronized int take() {\n\
          \    if (size > 0) { size = size - 1; return slots[size]; }\n\
          \    return 0 - 1;\n\
          \  }\n\
           }\n"
          k k
      in
      let drain =
        for_n n
          (Printf.sprintf
             "int v = G.q%d.take(); synchronized (G.l%d) { G.d%ds = G.d%ds + v; }"
             k k k k)
      in
      let a_body, b_body =
        if racy then
          ( [
              drain;
              Printf.sprintf "G.d%dr = 1;" k;
              signal k "a";
              await k "b";
              Printf.sprintf "G.d%dr = G.d%dr + 1;" k k;
            ],
            [
              drain;
              Printf.sprintf "G.d%dr = 2;" k;
              signal k "b";
              await k "a";
              Printf.sprintf "G.d%dr = G.d%dr + 2;" k k;
            ] )
        else ([ drain ], [ drain ])
      in
      {
        e_classes = q :: two_threads a_body b_body;
        e_init =
          [
            init_lock;
            Printf.sprintf "G.q%d = new Q%d();" k k;
            Printf.sprintf "for (int i = 0; i < 4; i = i + 1) { G.q%d.put(i); }"
              k;
          ];
        e_threads = [ (cls "A", var "a"); (cls "B", var "b") ];
        e_post = [];
      }
  | Hidden_race ->
      let a_body =
        [
          for_n n (Printf.sprintf "G.d%dr = G.d%dr + 1;" k k);
          Printf.sprintf "synchronized (G.l%d) { G.t%d = G.t%d + 1; }" k k k;
        ]
      in
      let b_body =
        [
          Printf.sprintf "synchronized (G.l%d) { G.t%d = G.t%d + 1; }" k k k;
          for_n n (Printf.sprintf "G.d%dr = G.d%dr + 2;" k k);
        ]
      in
      {
        e_classes = two_threads a_body b_body;
        e_init = [ init_lock ];
        e_threads = [ (cls "A", var "a"); (cls "B", var "b") ];
        e_post = [];
      }

let emit (sp : spec) : string =
  let b = Buffer.create 4096 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let units = List.map (fun u -> (u, emit_unit u)) sp.sp_units in
  (* The shared static-cell class. *)
  pf "class G {\n";
  List.iter
    (fun (u, _) ->
      let k = u.u_id in
      pf "  static int d%ds; static int d%dr; static int t%d;\n" k k k;
      pf "  static boolean a%d; static boolean b%d;\n" k k;
      pf "  static Object l%d;\n" k;
      match u.u_idiom with
      | Mixed_object -> pf "  static Mix%d m%d;\n" k k
      | Worker_pool _ -> pf "  static Q%d q%d;\n" k k
      | _ -> ())
    units;
  pf "}\n";
  List.iter (fun (_, e) -> List.iter (pf "%s") e.e_classes) units;
  pf "class Main {\n  static void main() {\n";
  List.iter
    (fun (_, e) -> List.iter (pf "    %s\n") e.e_init)
    units;
  List.iter
    (fun (_, e) ->
      List.iter
        (fun (c, v) -> pf "    %s %s = new %s();\n" c v c)
        e.e_threads)
    units;
  List.iter
    (fun (_, e) -> List.iter (fun (_, v) -> pf "    %s.start();\n" v) e.e_threads)
    units;
  List.iter
    (fun (_, e) -> List.iter (fun (_, v) -> pf "    %s.join();\n" v) e.e_threads)
    units;
  List.iter (fun (_, e) -> List.iter (pf "    %s\n") e.e_post) units;
  pf "    print(\"end\", 0);\n";
  pf "  }\n}\n";
  Buffer.contents b

(* ---- QCheck generation ---- *)

let idiom_gen : idiom QCheck.Gen.t =
  QCheck.Gen.frequency
    [
      (2, QCheck.Gen.return Sync_counter);
      (2, QCheck.Gen.map (fun b -> Rendezvous_race (if b then Ww else Rw)) QCheck.Gen.bool);
      (2, QCheck.Gen.return Join_handoff);
      (1, QCheck.Gen.return Start_chain);
      (2, QCheck.Gen.return Ping_pong);
      (2, QCheck.Gen.return Oneshot_handoff);
      (2, QCheck.Gen.return Mixed_object);
      (1, QCheck.Gen.return (Worker_pool false));
      (1, QCheck.Gen.return (Worker_pool true));
      (2, QCheck.Gen.return Hidden_race);
    ]

let unit_gen id : unit_spec QCheck.Gen.t =
  QCheck.Gen.map2
    (fun idiom iters -> make_unit ~id ~idiom ~iters)
    idiom_gen
    (QCheck.Gen.int_range 1 3)

let spec_gen ?(max_units = 4) ~index () : spec QCheck.Gen.t =
  let open QCheck.Gen in
  int_range 1 (max 1 max_units) >>= fun n ->
  let rec units i =
    if i >= n then return []
    else map2 (fun u rest -> u :: rest) (unit_gen i) (units (i + 1))
  in
  map (fun us -> { sp_index = index; sp_units = us }) (units 0)

(* Deterministic batch generation: one [Random.State] seeded from
   [seed] drives every program, so a (seed, count, max_units) triple
   names the corpus exactly. *)
let generate ?(seed = 42) ~count ?(max_units = 4) () : spec list =
  let rand = Random.State.make [| 0x9e3779b9; seed |] in
  List.init count (fun index -> spec_gen ~max_units ~index () rand)
