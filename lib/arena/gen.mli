(** QCheck generation of well-typed concurrent MiniJava programs with
    seeded races and known-safe twins.

    A generated program composes 1–4 independent {e units}, each an
    instance of one synchronization {!idiom} over its own slice of the
    shared statics (named by the unit's stable [u_id], so shrinking
    never renames the cells a reproducer mentions).  Every unit carries
    ground truth: the {!cell}s it touches, each labelled racy or safe,
    and racy cells labelled {e guaranteed} (reported by every detector
    in every schedule — the cells the CI gate may fail on) or merely
    {e feasible} (schedule-dependent; counted toward recall only). *)

type rw = Ww  (** both sides write *) | Rw  (** one side reads into a sink *)

type idiom =
  | Sync_counter  (** safe: shared counter under a common lock *)
  | Rendezvous_race of rw
      (** racy (guaranteed): unsynchronized accesses on both sides of a
          symmetric wait/notify rendezvous *)
  | Join_handoff
      (** safe: main writes, thread writes unlocked, main reads after
          join — the fork/join idiom Eraser and objrace false-report *)
  | Start_chain
      (** safe: T1 writes then starts T2, which writes then starts T3 —
          ordered by start edges; every lockset technique (the paper
          detector included) false-reports *)
  | Ping_pong
      (** safe: monitor-ordered write alternation; lockset techniques
          false-report, vector clocks stay quiet *)
  | Oneshot_handoff
      (** safe: single producer→consumer handoff; only Eraser
          false-reports *)
  | Mixed_object
      (** safe: one immutable field read unlocked beside one
          lock-protected field; objrace's object granularity merges
          them and false-reports *)
  | Worker_pool of bool
      (** safe queue drain through synchronized virtual calls (objrace
          false-reports the queue object); [true] adds a guaranteed
          rendezvous race after the drain *)
  | Hidden_race
      (** racy (feasible): the paper Section 2.2 shape — unlocked
          writes hidden behind an accidental lock-order edge.  Eraser
          and objrace always report; paper and vclock only in some
          schedules. *)

type unit_spec = {
  u_id : int;  (** stable cell-naming key, preserved by shrinking *)
  u_idiom : idiom;
  u_iters : int;  (** loop trip count, [>= min_iters u_idiom] *)
}

type spec = { sp_index : int; sp_units : unit_spec list }

val min_iters : idiom -> int
val make_unit : id:int -> idiom:idiom -> iters:int -> unit_spec

val idiom_name : idiom -> string
val all_idioms : idiom list
val idiom_of_name : string -> idiom option
val pp_unit : Format.formatter -> unit_spec -> unit
val pp_spec : Format.formatter -> spec -> unit

(** {1 Ground truth} *)

type cell = {
  c_marker : string;
      (** What the cell looks like in a detector report: an exact
          static-field name (["G.d0r"]) or an object-identity prefix
          (["Mix0#"]). *)
  c_prefix : bool;
  c_racy : bool;
  c_guaranteed : bool;
      (** Racy cells only: reported by every detector in every
          schedule, so silence is unambiguously a miss. *)
}

val cell_matches : cell -> string -> bool
(** Does a decoded report location denote this cell? *)

val truth : spec -> cell list
(** Every ground-truth cell of the program, in unit order. *)

(** {1 Emission and generation} *)

val emit : spec -> string
(** The MiniJava source text for a spec — always well-typed and
    terminating (the only loops are bounded [for]s and monitor waits
    that a peer's notify releases). *)

val spec_gen : ?max_units:int -> index:int -> unit -> spec QCheck.Gen.t

val generate : ?seed:int -> count:int -> ?max_units:int -> unit -> spec list
(** [generate ~seed ~count ()] — the deterministic corpus named by
    [(seed, count, max_units)]: one [Random.State] seeded from [seed]
    drives every program in order. *)
