(* The differential detector arena: run every registered detection
   technique over a generated corpus of ground-truth-labelled programs
   (lib/arena/gen.ml), score each against the labels, count pairwise
   disagreements, and shrink the first witness of every disagreement
   direction — and every guaranteed-race miss — to a minimal spec. *)

module P = Drd_harness.Pipeline
module Registry = Drd_harness.Registry
module Config = Drd_harness.Config
module Interp = Drd_vm.Interp

type options = {
  o_seed : int;
  o_count : int;
  o_max_units : int;
  o_max_steps : int;  (** VM step budget per run; exceeding it is an error verdict *)
  o_detectors : Registry.entry list;
  o_shrink : bool;  (** shrink disagreement/miss witnesses (costs extra runs) *)
}

let default_options =
  {
    o_seed = 42;
    o_count = 200;
    o_max_units = 4;
    o_max_steps = 400_000;
    o_detectors = Registry.all;
    o_shrink = true;
  }

type outcome = { oc_races : string list; oc_error : string option }

(* One program under one technique.  The schedule is a function of the
   spec alone (same seed/quantum/policy for every detector), so
   detectors disagree only by discipline, never by interleaving. *)
let run_one (opts : options) (entry : Registry.entry) (sp : Gen.spec) : outcome
    =
  let source = Gen.emit sp in
  let base =
    { Config.full with Config.seed = opts.o_seed + (31 * sp.Gen.sp_index) }
  in
  let config = Registry.apply entry base in
  match
    let compiled = P.compile config ~source in
    let vm =
      { (P.vm_config_of config) with Interp.max_steps = opts.o_max_steps }
    in
    P.run_module ~vm entry.Registry.impl compiled
  with
  | r -> { oc_races = r.P.m_races; oc_error = None }
  | exception e -> { oc_races = []; oc_error = Some (Printexc.to_string e) }

let reported (oc : outcome) (c : Gen.cell) =
  List.exists (Gen.cell_matches c) oc.oc_races

(* ---- scoring ---- *)

type tally = {
  t_name : string;
  mutable t_tp : int;
  mutable t_fp : int;
  mutable t_fn : int;
  mutable t_tn : int;
  mutable t_guaranteed_missed : int;
      (** racy cells labelled guaranteed that the detector stayed silent
          on — the CI-gated count *)
  mutable t_feasible_total : int;
  mutable t_feasible_caught : int;
  mutable t_unexpected : int;
      (** reports matching no ground-truth cell (counted as FP too) *)
  mutable t_errors : int;  (** runs that raised (deadlock, step budget, …) *)
}

let fresh_tally name =
  {
    t_name = name;
    t_tp = 0;
    t_fp = 0;
    t_fn = 0;
    t_tn = 0;
    t_guaranteed_missed = 0;
    t_feasible_total = 0;
    t_feasible_caught = 0;
    t_unexpected = 0;
    t_errors = 0;
  }

let precision t =
  let d = t.t_tp + t.t_fp in
  if d = 0 then 1.0 else float_of_int t.t_tp /. float_of_int d

let recall t =
  let d = t.t_tp + t.t_fn in
  if d = 0 then 1.0 else float_of_int t.t_tp /. float_of_int d

type example = {
  x_marker : string;
  x_spec : Gen.spec;  (** the program the disagreement was first seen on *)
  x_shrunk : Gen.spec;  (** minimal spec still witnessing it *)
}

type pair = {
  pr_reporter : string;
  pr_silent : string;
  mutable pr_count : int;  (** cell×program disagreements in this direction *)
  mutable pr_example : example option;
}

type miss = {
  ms_detector : string;
  mutable ms_count : int;
  mutable ms_example : example option;
}

type report = {
  r_seed : int;
  r_count : int;
  r_max_units : int;
  r_cells : int;  (** ground-truth cells scored across the corpus *)
  r_tallies : tally list;
  r_pairs : pair list;  (** directions that occurred, registry order *)
  r_misses : miss list;  (** detectors with guaranteed-race misses *)
}

(* ---- shrinking ---- *)

let remove_nth i l = List.filteri (fun j _ -> j <> i) l
let replace_nth i x l = List.mapi (fun j y -> if j = i then x else y) l

(* Greedy structural shrinking: try dropping whole units, then
   lowering loop counts, re-testing the property after each step and
   restarting from the first candidate that still witnesses it. *)
let shrink_steps (sp : Gen.spec) : Gen.spec list =
  let units = sp.Gen.sp_units in
  let drops =
    if List.length units <= 1 then []
    else
      List.mapi (fun i _ -> { sp with Gen.sp_units = remove_nth i units }) units
  in
  let decs =
    List.concat
      (List.mapi
         (fun i u ->
           if u.Gen.u_iters > Gen.min_iters u.Gen.u_idiom then
             [
               {
                 sp with
                 Gen.sp_units =
                   replace_nth i { u with Gen.u_iters = u.Gen.u_iters - 1 } units;
               };
             ]
           else [])
         units)
  in
  drops @ decs

let rec shrink ~holds sp =
  match List.find_opt holds (shrink_steps sp) with
  | Some sp' -> shrink ~holds sp'
  | None -> sp

let cell_named sp marker =
  List.find_opt (fun c -> c.Gen.c_marker = marker) (Gen.truth sp)

(* The witness property for a pairwise disagreement: the marker's cell
   still exists and [reporter] still reports it while [silent] stays
   quiet, with neither run erroring. *)
let disagreement_holds opts ~reporter ~silent ~marker sp =
  match cell_named sp marker with
  | None -> false
  | Some c ->
      let o1 = run_one opts reporter sp in
      let o2 = run_one opts silent sp in
      o1.oc_error = None && o2.oc_error = None && reported o1 c
      && not (reported o2 c)

let miss_holds opts ~detector ~marker sp =
  match cell_named sp marker with
  | None -> false
  | Some c ->
      let o = run_one opts detector sp in
      (match o.oc_error with Some _ -> true | None -> not (reported o c))

(* ---- the arena ---- *)

let run (opts : options) : report =
  let dets = opts.o_detectors in
  let specs =
    Gen.generate ~seed:opts.o_seed ~count:opts.o_count
      ~max_units:opts.o_max_units ()
  in
  let tallies = List.map (fun e -> fresh_tally e.Registry.name) dets in
  let tally_of name = List.find (fun t -> t.t_name = name) tallies in
  let pairs =
    List.concat_map
      (fun e1 ->
        List.filter_map
          (fun e2 ->
            if e1.Registry.name = e2.Registry.name then None
            else
              Some
                {
                  pr_reporter = e1.Registry.name;
                  pr_silent = e2.Registry.name;
                  pr_count = 0;
                  pr_example = None;
                })
          dets)
      dets
  in
  let pair_of r s =
    List.find (fun p -> p.pr_reporter = r && p.pr_silent = s) pairs
  in
  let misses =
    List.map
      (fun e ->
        { ms_detector = e.Registry.name; ms_count = 0; ms_example = None })
      dets
  in
  let miss_of name = List.find (fun m -> m.ms_detector = name) misses in
  let cells_scored = ref 0 in
  List.iter
    (fun sp ->
      let outs = List.map (fun e -> (e, run_one opts e sp)) dets in
      let cells = Gen.truth sp in
      cells_scored := !cells_scored + List.length cells;
      List.iter
        (fun (e, oc) ->
          let t = tally_of e.Registry.name in
          (match oc.oc_error with
          | Some _ -> t.t_errors <- t.t_errors + 1
          | None -> ());
          List.iter
            (fun c ->
              let rep = reported oc c in
              if c.Gen.c_racy then (
                if not c.Gen.c_guaranteed then (
                  t.t_feasible_total <- t.t_feasible_total + 1;
                  if rep then t.t_feasible_caught <- t.t_feasible_caught + 1);
                if rep then t.t_tp <- t.t_tp + 1
                else (
                  t.t_fn <- t.t_fn + 1;
                  if c.Gen.c_guaranteed then (
                    t.t_guaranteed_missed <- t.t_guaranteed_missed + 1;
                    let m = miss_of e.Registry.name in
                    m.ms_count <- m.ms_count + 1;
                    if m.ms_example = None then
                      m.ms_example <-
                        Some
                          {
                            x_marker = c.Gen.c_marker;
                            x_spec = sp;
                            x_shrunk = sp;
                          })))
              else if rep then t.t_fp <- t.t_fp + 1
              else t.t_tn <- t.t_tn + 1)
            cells;
          let unexpected =
            List.filter
              (fun r -> not (List.exists (fun c -> Gen.cell_matches c r) cells))
              oc.oc_races
          in
          let n = List.length unexpected in
          t.t_unexpected <- t.t_unexpected + n;
          t.t_fp <- t.t_fp + n)
        outs;
      List.iter
        (fun c ->
          List.iter
            (fun (e1, o1) ->
              List.iter
                (fun (e2, o2) ->
                  if
                    e1.Registry.name <> e2.Registry.name
                    && o1.oc_error = None && o2.oc_error = None
                    && reported o1 c
                    && not (reported o2 c)
                  then (
                    let p = pair_of e1.Registry.name e2.Registry.name in
                    p.pr_count <- p.pr_count + 1;
                    if p.pr_example = None then
                      p.pr_example <-
                        Some
                          {
                            x_marker = c.Gen.c_marker;
                            x_spec = sp;
                            x_shrunk = sp;
                          }))
                outs)
            outs)
        cells)
    specs;
  if opts.o_shrink then (
    List.iter
      (fun p ->
        match p.pr_example with
        | None -> ()
        | Some x ->
            let holds =
              disagreement_holds opts
                ~reporter:(Registry.find p.pr_reporter |> Option.get)
                ~silent:(Registry.find p.pr_silent |> Option.get)
                ~marker:x.x_marker
            in
            p.pr_example <- Some { x with x_shrunk = shrink ~holds x.x_spec })
      pairs;
    List.iter
      (fun m ->
        match m.ms_example with
        | None -> ()
        | Some x ->
            let holds =
              miss_holds opts
                ~detector:(Registry.find m.ms_detector |> Option.get)
                ~marker:x.x_marker
            in
            m.ms_example <- Some { x with x_shrunk = shrink ~holds x.x_spec })
      misses);
  {
    r_seed = opts.o_seed;
    r_count = opts.o_count;
    r_max_units = opts.o_max_units;
    r_cells = !cells_scored;
    r_tallies = tallies;
    r_pairs = List.filter (fun p -> p.pr_count > 0) pairs;
    r_misses = List.filter (fun m -> m.ms_count > 0) misses;
  }

let guaranteed_misses (r : report) ~detector =
  match List.find_opt (fun t -> t.t_name = detector) r.r_tallies with
  | None -> 0
  | Some t -> t.t_guaranteed_missed

(* ---- rendering ---- *)

let spec_flag (sp : Gen.spec) =
  (* The spec re-encoded as `racedet arena` flags, for reproducing one
     program outside the arena. *)
  Fmt.str "index %d, units [%a]" sp.Gen.sp_index
    (Fmt.list ~sep:(Fmt.any "; ") Gen.pp_unit)
    sp.Gen.sp_units

let pp_example ppf (x : example) =
  Fmt.pf ppf "on %s, first seen %a, shrunk to %a" x.x_marker Gen.pp_spec
    x.x_spec Gen.pp_spec x.x_shrunk

let pp_report ppf (r : report) =
  Fmt.pf ppf
    "arena: %d programs (seed %d, <=%d units), %d ground-truth cells@."
    r.r_count r.r_seed r.r_max_units r.r_cells;
  Fmt.pf ppf
    "%-8s %5s %5s %5s %5s  %9s %7s  %6s %8s %6s@." "detector" "tp" "fp" "fn"
    "tn" "precision" "recall" "missed" "feasible" "errors";
  List.iter
    (fun t ->
      Fmt.pf ppf "%-8s %5d %5d %5d %5d  %9.3f %7.3f  %6d %4d/%-3d %6d@."
        t.t_name t.t_tp t.t_fp t.t_fn t.t_tn (precision t) (recall t)
        t.t_guaranteed_missed t.t_feasible_caught t.t_feasible_total t.t_errors)
    r.r_tallies;
  Fmt.pf ppf "disagreements (reporter > silent):@.";
  List.iter
    (fun p ->
      Fmt.pf ppf "  %-8s > %-8s %5d  %a@." p.pr_reporter p.pr_silent p.pr_count
        (Fmt.option pp_example)
        p.pr_example)
    r.r_pairs;
  List.iter
    (fun m ->
      Fmt.pf ppf "GROUND-TRUTH MISS: %s missed %d guaranteed race(s); %a@."
        m.ms_detector m.ms_count
        (Fmt.option pp_example)
        m.ms_example)
    r.r_misses

(* JSON, hand-rolled like bench/main.ml: deterministic key order, no
   floats beyond fixed precision, byte-identical across runs for a
   fixed (seed, count, max_units, detectors). *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_of_spec (sp : Gen.spec) =
  Fmt.str "{\"index\":%d,\"units\":[%s]}" sp.Gen.sp_index
    (String.concat ","
       (List.map
          (fun u ->
            Fmt.str "{\"id\":%d,\"idiom\":\"%s\",\"iters\":%d}" u.Gen.u_id
              (Gen.idiom_name u.Gen.u_idiom)
              u.Gen.u_iters)
          sp.Gen.sp_units))

let json_of_example (x : example) =
  Fmt.str "{\"marker\":\"%s\",\"spec\":%s,\"shrunk\":%s}"
    (json_escape x.x_marker) (json_of_spec x.x_spec) (json_of_spec x.x_shrunk)

let to_json (r : report) : string =
  let b = Buffer.create 4096 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "{\n";
  pf "  \"seed\": %d,\n  \"programs\": %d,\n  \"max_units\": %d,\n" r.r_seed
    r.r_count r.r_max_units;
  pf "  \"cells\": %d,\n" r.r_cells;
  pf "  \"detectors\": [\n";
  List.iteri
    (fun i t ->
      pf
        "    {\"name\": \"%s\", \"tp\": %d, \"fp\": %d, \"fn\": %d, \"tn\": \
         %d, \"precision\": %.4f, \"recall\": %.4f, \"guaranteed_missed\": \
         %d, \"feasible_caught\": %d, \"feasible_total\": %d, \"unexpected\": \
         %d, \"errors\": %d}%s\n"
        (json_escape t.t_name) t.t_tp t.t_fp t.t_fn t.t_tn (precision t)
        (recall t) t.t_guaranteed_missed t.t_feasible_caught t.t_feasible_total
        t.t_unexpected t.t_errors
        (if i = List.length r.r_tallies - 1 then "" else ","))
    r.r_tallies;
  pf "  ],\n";
  pf "  \"disagreements\": [\n";
  List.iteri
    (fun i p ->
      pf "    {\"reporter\": \"%s\", \"silent\": \"%s\", \"count\": %d%s}%s\n"
        (json_escape p.pr_reporter) (json_escape p.pr_silent) p.pr_count
        (match p.pr_example with
        | None -> ""
        | Some x -> ", \"example\": " ^ json_of_example x)
        (if i = List.length r.r_pairs - 1 then "" else ","))
    r.r_pairs;
  pf "  ],\n";
  pf "  \"misses\": [\n";
  List.iteri
    (fun i m ->
      pf "    {\"detector\": \"%s\", \"count\": %d%s}%s\n"
        (json_escape m.ms_detector) m.ms_count
        (match m.ms_example with
        | None -> ""
        | Some x -> ", \"example\": " ^ json_of_example x)
        (if i = List.length r.r_misses - 1 then "" else ","))
    r.r_misses;
  pf "  ]\n";
  pf "}\n";
  Buffer.contents b

(* A standalone reproducer for a shrunk disagreement: the MiniJava
   source prefixed with a header explaining what to expect. *)
let repro_source ~(reporter : string) ~(silent : string) (x : example) :
    string =
  Fmt.str
    "// Arena-shrunk disagreement: %s reports a race on %s, %s stays\n\
     // quiet, on the same schedule.  Spec: %s.\n\
     // Regenerate: racedet arena (the arena shrinks the first witness\n\
     // of every disagreement direction to a spec like this one).\n\
     %s"
    reporter x.x_marker silent (spec_flag x.x_shrunk) (Gen.emit x.x_shrunk)
