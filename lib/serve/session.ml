module Detector = Drd_core.Detector
module Event_log = Drd_core.Event_log
module Report = Drd_core.Report
module Config = Drd_harness.Config
module Explore = Drd_explore.Explore
module Aggregate = Drd_explore.Aggregate

type events_state = {
  detector : Detector.t;
  collector : Report.collector;
  mutable fed : int;
  mutable emitted : int;  (** race frames sent so far *)
}

type obs_state = {
  (* Header line not yet seen while [None]. *)
  mutable spec : (Explore.spec * string) option;
  mutable rows_rev : Aggregate.row list;
  mutable obs_fed : int;
  mutable obs_races : int;  (** distinct races; known only after close *)
}

type state = E of events_state | O of obs_state

type t = { s_id : string; s_kind : Protocol.kind; state : state }

(* A connection-lifetime pool of (detector, collector) pairs, keyed by
   the detector knobs a session's configuration selects.  The daemon's
   eviction policy is fixed per server, so it is not part of the key.
   Reusing a pooled pair across the sessions of one connection — reset
   in place at session open — keeps the detector's grown tables
   (history, caches, ownership) warm instead of re-allocating them per
   session; reports are byte-identical to fresh-detector sessions. *)
type pool = {
  mutable p_entries : ((bool * bool) * (Detector.t * Report.collector)) list;
}

let pool () = { p_entries = [] }

let create ?pool ~id ~kind ~config ~eviction () =
  let state =
    match kind with
    | Protocol.Events ->
        (* Mirror the one-shot post-mortem path (Pipeline.detect_post_mortem):
           same knobs, Per_location history — which eviction requires. *)
        let dconfig =
          {
            Detector.default_config with
            use_cache = config.Config.use_cache;
            use_ownership = config.Config.use_ownership;
          }
        in
        let fresh () =
          let collector = Report.collector () in
          let detector = Detector.create ~config:dconfig ?eviction collector in
          (detector, collector)
        in
        let detector, collector =
          match pool with
          | None -> fresh ()
          | Some p -> (
              let key = (dconfig.Detector.use_cache, dconfig.Detector.use_ownership) in
              match List.assoc_opt key p.p_entries with
              | Some (d, c) ->
                  (* Detector.reset leaves the collector to its owner. *)
                  Detector.reset d;
                  Report.reset c;
                  (d, c)
              | None ->
                  let pair = fresh () in
                  p.p_entries <- (key, pair) :: p.p_entries;
                  pair)
        in
        E { detector; collector; fed = 0; emitted = 0 }
    | Protocol.Obs ->
        O { spec = None; rows_rev = []; obs_fed = 0; obs_races = 0 }
  in
  { s_id = id; s_kind = kind; state }

let id t = t.s_id
let kind t = t.s_kind

(* New races since the last emission: the collector keeps detection
   order, so they are the suffix after the first [emitted]. *)
let rec drop n l = if n <= 0 then l else match l with [] -> [] | _ :: tl -> drop (n - 1) tl

let fresh_race_frames t st =
  let total = Report.count st.collector in
  if total = st.emitted then []
  else
    let fresh = drop st.emitted (Report.races st.collector) in
    List.mapi
      (fun i race ->
        Protocol.race_frame ~session:t.s_id ~seq:(st.emitted + i) race)
      fresh
    |> fun frames ->
    st.emitted <- total;
    frames

let feed_events t st line =
  match Event_log.entry_of_line line with
  | Error _ as e -> e
  | Ok None -> Ok []
  | Ok (Some entry) ->
      st.fed <- st.fed + 1;
      (match entry with
      | Event_log.Access e -> Detector.on_access st.detector e
      | Event_log.Acquire (thread, lock) ->
          Detector.on_acquire st.detector ~thread ~lock
      | Event_log.Release (thread, lock) ->
          Detector.on_release st.detector ~thread ~lock
      | Event_log.Thread_start _ | Event_log.Thread_join _ -> ()
      | Event_log.Thread_exit thread ->
          Detector.on_thread_exit st.detector ~thread);
      Ok (fresh_race_frames t st)

let feed_obs st line =
  match st.spec with
  | None -> (
      match Explore.spec_of_json line with
      | Error m -> Error ("obs header: " ^ m)
      | Ok spec ->
          let target =
            match Explore.target_of_json line with Ok t -> t | Error _ -> ""
          in
          st.spec <- Some (spec, target);
          Ok [])
  | Some _ -> (
      match Explore.row_of_line line with
      | Error _ as e -> e
      | Ok row ->
          st.rows_rev <- row :: st.rows_rev;
          st.obs_fed <- st.obs_fed + 1;
          Ok [])

let feed_line t line =
  match t.state with
  | E st -> feed_events t st line
  | O st -> feed_obs st line

(* The same refusals [racedet merge] gives for a broken shard set:
   duplicate run indices would double-count sightings; gaps under a
   purely runs-based budget mean the stream was truncated. *)
let check_rows spec rows =
  let seen = Hashtbl.create 64 in
  let dup =
    List.find_opt
      (fun row ->
        let i = Aggregate.row_index row in
        if i < 0 then false
        else if Hashtbl.mem seen i then true
        else begin
          Hashtbl.add seen i ();
          false
        end)
      rows
  in
  match dup with
  | Some row ->
      Error
        (Printf.sprintf "run index %d appears more than once in the stream"
           (Aggregate.row_index row))
  | None -> (
      let missing = Explore.missing_indices spec rows in
      let b = spec.Explore.e_budget in
      let pure_runs_budget =
        b.Explore.b_seconds = None && b.Explore.b_plateau = None
      in
      match missing with
      | _ :: _ when pure_runs_budget ->
          Error
            (Printf.sprintf
               "%d of %d run indices missing — truncated stream? refusing \
                to fold"
               (List.length missing) b.Explore.b_runs)
      | _ -> Ok ())

let close t =
  match t.state with
  | E st ->
      Ok
        (Protocol.events_report_body
           ~races:(Report.races st.collector)
           ~stats:(Detector.stats st.detector)
           ~evictions:(Detector.evictions st.detector))
  | O st -> (
      match st.spec with
      | None -> Error "obs session closed before its spec header line"
      | Some (spec, _target) -> (
          let rows = List.rev st.rows_rev in
          match check_rows spec rows with
          | Error _ as e -> e
          | Ok () ->
              let report = Explore.merge spec rows in
              st.obs_races <-
                report.Explore.r_stats.Aggregate.st_distinct_races;
              Ok (Explore.report_json ~timing:false report)))

let events t = match t.state with E st -> st.fed | O st -> st.obs_fed
let races t =
  match t.state with E st -> Report.count st.collector | O st -> st.obs_races

let evictions t =
  match t.state with E st -> Detector.evictions st.detector | O _ -> 0

let live_locations t =
  match t.state with E st -> Detector.live_locations st.detector | O _ -> 0
