module Wire = Drd_explore.Wire

type t = {
  m_started : float;
  mutable m_lines : int;
  mutable m_events : int;
  mutable m_sessions_opened : int;
  mutable m_sessions_closed : int;
  mutable m_errors : int;
  (* Lifetime totals contributed by sessions that have closed; open
     sessions' shares are supplied at snapshot time. *)
  mutable m_closed_races : int;
  mutable m_closed_evictions : int;
  (* Instantaneous-rate window, reset at every snapshot. *)
  mutable m_win_events : int;
  mutable m_win_t0 : float;
  (* Running maximum of the major heap, sampled by the server loop. *)
  mutable m_heap_max : int;
}

let create ~now =
  {
    m_started = now;
    m_lines = 0;
    m_events = 0;
    m_sessions_opened = 0;
    m_sessions_closed = 0;
    m_errors = 0;
    m_closed_races = 0;
    m_closed_evictions = 0;
    m_win_events = 0;
    m_win_t0 = now;
    m_heap_max = 0;
  }

let on_line m = m.m_lines <- m.m_lines + 1

let on_events m n =
  m.m_events <- m.m_events + n;
  m.m_win_events <- m.m_win_events + n

let on_session_open m = m.m_sessions_opened <- m.m_sessions_opened + 1
let on_error m = m.m_errors <- m.m_errors + 1

let absorb_session m ~events:_ ~races ~evictions =
  m.m_sessions_closed <- m.m_sessions_closed + 1;
  m.m_closed_races <- m.m_closed_races + races;
  m.m_closed_evictions <- m.m_closed_evictions + evictions

let live_sessions m = m.m_sessions_opened - m.m_sessions_closed
let events_total m = m.m_events

let sample_heap m =
  let h = (Gc.quick_stat ()).Gc.heap_words in
  if h > m.m_heap_max then m.m_heap_max <- h

let rate events dt = float_of_int events /. Float.max dt 1e-9

let stats_json m ~now ~live_locations ~live_races ~live_evictions =
  sample_heap m;
  let win_rate = rate m.m_win_events (now -. m.m_win_t0) in
  let total_rate = rate m.m_events (now -. m.m_started) in
  m.m_win_events <- 0;
  m.m_win_t0 <- now;
  Wire.Obj
    [
      ("uptime_s", Wire.Float (now -. m.m_started));
      ("lines", Wire.Int m.m_lines);
      ("events", Wire.Int m.m_events);
      ("events_per_sec", Wire.Float win_rate);
      ("events_per_sec_total", Wire.Float total_rate);
      ("sessions_opened", Wire.Int m.m_sessions_opened);
      ("sessions_closed", Wire.Int m.m_sessions_closed);
      ("live_sessions", Wire.Int (live_sessions m));
      ("live_locations", Wire.Int live_locations);
      ("evictions", Wire.Int (m.m_closed_evictions + live_evictions));
      ("races_found", Wire.Int (m.m_closed_races + live_races));
      ("errors", Wire.Int m.m_errors);
      ("heap_words_max", Wire.Int m.m_heap_max);
    ]
