(** One client session of the serve daemon.

    An [Events] session owns a fresh detector (with the daemon's
    eviction policy) and a race collector; every payload line is
    decoded with {!Drd_core.Event_log.entry_of_line} and fed straight
    through the interned hot path, and each newly reported racy
    location is returned as an incremental race frame.  Closing renders
    the final aggregate ({!Protocol.events_report_body}), which is
    byte-identical to rendering the one-shot detector run over the same
    stream.

    An [Obs] session is a streaming [racedet merge] of one shard: the
    first payload line must be the wire spec header, each further line
    one observation row; closing folds the rows ({!Drd_explore.Explore.merge})
    and renders the campaign report JSON.  Obs sessions emit no
    incremental frames — the fold is defined in run-index order, which
    a stream does not promise. *)

type t

type pool
(** A connection-lifetime pool of detector state: sessions opened with
    the same detector knobs reuse one (detector, collector) pair, reset
    in place at session open instead of re-allocated.  Pools are
    single-connection (and single-domain) — never share one across
    connections. *)

val pool : unit -> pool

val create :
  ?pool:pool ->
  id:string ->
  kind:Protocol.kind ->
  config:Drd_harness.Config.t ->
  eviction:Drd_core.Detector.eviction option ->
  unit ->
  t
(** [config] supplies the detector knobs ([use_cache],
    [use_ownership]); the history is always [Per_location], the
    representation eviction requires.  [?pool] reuses the connection's
    pooled detector state for an [Events] session; the session's frames
    and report are byte-identical with or without it. *)

val id : t -> string
val kind : t -> Protocol.kind

val feed_line : t -> string -> (string list, string) result
(** Ingest one payload line; returns the frames to send back (race
    frames, usually none).  [Error] means the line was malformed for
    this session's kind — the server answers with an error frame and
    drops the session. *)

val close : t -> (string, string) result
(** Final report body (a raw JSON value for {!Protocol.report_frame}).
    [Error] for an obs session whose stream was incomplete (no spec
    header, or missing run indices under a purely runs-based budget —
    the same refusal [racedet merge] gives). *)

val events : t -> int
(** Payload entries ingested (event-log entries or observation rows). *)

val races : t -> int
(** Distinct racy locations reported so far (0 for an obs session until
    close). *)

val evictions : t -> int
val live_locations : t -> int
