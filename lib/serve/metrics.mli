(** Daemon-wide observability counters for [racedet serve].

    One {!t} lives for the whole daemon.  Cheap mutable counters are
    bumped on the ingest path; {!stats_json} renders a machine-readable
    snapshot — the periodic stats line and the reply to a [stats]
    control request — including instantaneous (since the previous
    snapshot) and cumulative events/s.

    Totals for evictions, races and live locations are split between
    what closed sessions contributed (absorbed via {!absorb_session})
    and what the currently open sessions hold; the server passes the
    live part to {!stats_json} at snapshot time. *)

type t

val create : now:float -> t

val on_line : t -> unit
(** One payload or control line ingested. *)

val on_events : t -> int -> unit
(** [n] access/sync events fed to a session's detector. *)

val on_session_open : t -> unit

val on_error : t -> unit
(** One protocol or payload error was answered with an error frame. *)

val absorb_session :
  t -> events:int -> races:int -> evictions:int -> unit
(** Fold a closing session's totals into the daemon-lifetime counters
    (and count the close).  [events] is only sanity-checked against the
    running event counter, which already saw them via {!on_events}. *)

val live_sessions : t -> int

val events_total : t -> int

val sample_heap : t -> unit
(** Record the current major-heap size; {!stats_json} reports the
    running maximum, the number the soak test watches for flatness. *)

val stats_json :
  t ->
  now:float ->
  live_locations:int ->
  live_races:int ->
  live_evictions:int ->
  Drd_explore.Wire.json
(** Snapshot and reset the instantaneous window.  The [live_*] values
    are the sums over currently open sessions; they are added to the
    closed-session totals. *)
