module Wire = Drd_explore.Wire
module Report = Drd_core.Report
module Event = Drd_core.Event
module Trie = Drd_core.Trie
module Detector = Drd_core.Detector
module Lockset_id = Drd_core.Lockset_id

let protocol_version = 1

type kind = Events | Obs

let kind_name = function Events -> "events" | Obs -> "obs"

let kind_of_string = function
  | "events" -> Ok Events
  | "obs" -> Ok Obs
  | k -> Error (Printf.sprintf "unknown session kind %S (events|obs)" k)

type control =
  | Hello of { c_session : string; c_kind : kind; c_config : string }
  | Stats_req
  | Close
  | Shutdown

type inbound = Control of control | Payload

(* Tags of the v2 observation wire lines: they are JSON too, but they
   are payload for an obs session, not control. *)
let obs_payload_tags = [ "spec"; "run"; "failure" ]

let classify_line line =
  if String.length line = 0 || line.[0] <> '{' then Ok Payload
  else
    match Wire.json_of_string line with
    | Error m -> Error ("bad control frame: " ^ m)
    | Ok j -> (
        match Wire.member "t" j with
        | Some (Wire.String t) when List.mem t obs_payload_tags -> Ok Payload
        | Some (Wire.String t) -> (
            (* Control frames carry the serve protocol version. *)
            match Wire.member "v" j with
            | Some (Wire.Int v) when v >= 1 && v <= protocol_version -> (
                match t with
                | "hello" ->
                    let str k default =
                      match Wire.member k j with
                      | Some (Wire.String s) -> Ok s
                      | None -> Ok default
                      | Some _ ->
                          Error
                            (Printf.sprintf "hello field %S: expected string" k)
                    in
                    (* "" = use the daemon's default configuration *)
                    Result.bind (str "session" "") (fun c_session ->
                        Result.bind (str "config" "") (fun c_config ->
                            Result.bind
                              (Result.bind (str "kind" "events")
                                 kind_of_string)
                              (fun c_kind ->
                                Ok
                                  (Control
                                     (Hello { c_session; c_kind; c_config })))))
                | "stats" -> Ok (Control Stats_req)
                | "close" -> Ok (Control Close)
                | "shutdown" -> Ok (Control Shutdown)
                | t ->
                    Error
                      (Printf.sprintf
                         "unknown control frame type %S \
                          (hello|stats|close|shutdown)"
                         t))
            | Some (Wire.Int v) ->
                Error
                  (Printf.sprintf
                     "serve protocol version %d not supported (this build \
                      speaks versions 1-%d)"
                     v protocol_version)
            | _ -> Error "control frame has no protocol version")
        | _ -> Error "control frame has no type tag")

let line tag fields =
  Wire.json_to_string
    (Wire.Obj
       (("v", Wire.Int protocol_version) :: ("t", Wire.String tag) :: fields))

let control_to_line = function
  | Hello { c_session; c_kind; c_config } ->
      line "hello"
        [
          ("session", Wire.String c_session);
          ("kind", Wire.String (kind_name c_kind));
          ("config", Wire.String c_config);
        ]
  | Stats_req -> line "stats" []
  | Close -> line "close" []
  | Shutdown -> line "shutdown" []

let hello_frame ~session ~kind =
  line "hello"
    [
      ("session", Wire.String session); ("kind", Wire.String (kind_name kind));
    ]

let kind_json = function
  | Event.Read -> Wire.String "read"
  | Event.Write -> Wire.String "write"

let lockset_json ls =
  Wire.List (List.map (fun l -> Wire.Int l) (Lockset_id.to_sorted_list ls))

(* The id-level twin of the CLI's named race JSON: the daemon only sees
   the event stream, never the program, so sites/locks/locations stay
   integers exactly as they appear in the log. *)
let race_json (race : Report.race) =
  let e = race.Report.current in
  let p = race.Report.prior in
  Wire.Obj
    [
      ("location", Wire.Int race.Report.loc);
      ( "current",
        Wire.Obj
          [
            ("thread", Wire.Int e.Event.thread);
            ("kind", kind_json e.Event.kind);
            ("site", Wire.Int e.Event.site);
            ("locks", lockset_json e.Event.locks);
          ] );
      ( "prior",
        Wire.Obj
          [
            ( "thread",
              match p.Trie.p_thread with
              | Event.Thread t -> Wire.Int t
              | _ -> Wire.String "multiple" );
            ("kind", kind_json p.Trie.p_kind);
            ("site", Wire.Int p.Trie.p_site);
            ("locks", lockset_json p.Trie.p_locks);
          ] );
    ]

let race_frame ~session ~seq race =
  line "race"
    [
      ("session", Wire.String session);
      ("seq", Wire.Int seq);
      ("race", race_json race);
    ]

let stats_json (s : Detector.stats) =
  Wire.Obj
    [
      ("events_in", Wire.Int s.Detector.events_in);
      ("cache_hits", Wire.Int s.Detector.cache_hits);
      ("ownership_filtered", Wire.Int s.Detector.ownership_filtered);
      ("weaker_filtered", Wire.Int s.Detector.weaker_filtered);
      ("race_checks", Wire.Int s.Detector.race_checks);
      ("races_reported", Wire.Int s.Detector.races_reported);
      ("locations_tracked", Wire.Int s.Detector.locations_tracked);
      ("trie_nodes", Wire.Int s.Detector.trie_nodes);
    ]

(* live-location counts deliberately stay out of the body: they are an
   instantaneous daemon metric (stats frames), and their definition
   depends on whether an eviction policy is present — including them
   would break the byte-identity of an evicting-but-never-evicted
   session's report against the one-shot replay. *)
let events_report_body ~races ~stats ~evictions =
  Wire.json_to_string
    (Wire.Obj
       [
         ("kind", Wire.String "events");
         ("races", Wire.List (List.map race_json races));
         ("stats", stats_json stats);
         ("evictions", Wire.Int evictions);
       ])

let report_frame ~session ~body =
  Printf.sprintf "{\"v\":%d,\"t\":\"report\",\"session\":%s,\"report\":%s}"
    protocol_version
    (Wire.json_to_string (Wire.String session))
    body

let stats_frame j = line "stats" [ ("stats", j) ]
let error_frame ~msg = line "error" [ ("msg", Wire.String msg) ]
