(** The session/control framing of [racedet serve], built on the wire
    JSON layer ({!Drd_explore.Wire}).

    A connection (one Unix-socket accept, or the daemon's stdin)
    carries a sequence of newline-delimited frames:

    - {b payload lines} — for an [events] session, lines in the
      {!Drd_core.Event_log} text format ([A/L/U/S/J/X ...]); for an
      [obs] session, the v2 wire observation lines ([spec]/[run]/
      [failure] tagged JSON) that [racedet explore --emit-obs] writes.
      Event lines never start with ['{'], so the hot ingest path never
      parses JSON.
    - {b control frames} — JSON lines tagged [hello] (open a session),
      [stats] (request a metrics snapshot), [close] (end the session
      and emit its final report) and [shutdown] (stop the daemon;
      socket mode).  A payload line before any [hello] implicitly opens
      a default [events] session, so [cat events.log | racedet serve]
      works bare.

    Server responses are JSON frames tagged [hello] (ack), [race]
    (incremental: a new racy location, emitted the moment the detector
    reports it), [report] (final per-session aggregate), [stats] and
    [error].  Every frame carries a protocol version; decoders reject
    frames from a future version instead of guessing. *)

module Wire = Drd_explore.Wire

val protocol_version : int

(** Session payload kind. *)
type kind =
  | Events  (** Incremental detection over an event-log stream. *)
  | Obs  (** Streaming fold of explore observation rows (merge). *)

val kind_name : kind -> string
val kind_of_string : string -> (kind, string) result

(** Client-to-server control frames. *)
type control =
  | Hello of { c_session : string; c_kind : kind; c_config : string }
  | Stats_req
  | Close
  | Shutdown

(** One classified inbound line. *)
type inbound =
  | Control of control
  | Payload  (** Event-log line or obs row; the session decodes it. *)

val classify_line : string -> (inbound, string) result
(** Lines not starting with ['{'] are payload without further
    inspection.  JSON lines dispatch on their ["t"] tag: control tags
    yield [Control], wire observation tags ([spec]/[run]/[failure])
    yield [Payload], anything else (or a future protocol version) is an
    error. *)

val control_to_line : control -> string
(** Encode a control frame (for clients and tests). *)

(* ---- server-to-client frames; each is one line, no newline ---- *)

val hello_frame : session:string -> kind:kind -> string

val race_json : Drd_core.Report.race -> Wire.json
(** The id-level rendering of one race: location, current access
    (thread/kind/site/sorted lockset) and the prior access it races
    with (thread or ["multiple"]).  Shared by the incremental race
    frames, the final report body and [racedet detect --json]. *)

val race_frame : session:string -> seq:int -> Drd_core.Report.race -> string

val events_report_body :
  races:Drd_core.Report.race list ->
  stats:Drd_core.Detector.stats ->
  evictions:int ->
  string
(** The final aggregate of an [events] session, as a raw JSON string:
    the deduped race list plus the detector's funnel statistics and the
    eviction count.  Byte-deterministic, so a serve session fed a
    recorded log renders byte-identically to the one-shot detector run
    it replays (as long as nothing was evicted).  Live-location counts
    are deliberately absent — they are instantaneous daemon state,
    reported by stats frames. *)

val report_frame : session:string -> body:string -> string
(** [body] is a raw JSON value (e.g. {!events_report_body} or an
    {!Drd_explore.Explore.report_json} string), spliced verbatim. *)

val stats_frame : Wire.json -> string

val error_frame : msg:string -> string
