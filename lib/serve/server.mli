(** The [racedet serve] daemon loop.

    Two transports over the same framing ({!Protocol}):

    - {!serve_channels} — one connection on a channel pair, for
      [cat events.log | racedet serve] and for tests.  Sequential
      sessions; EOF closes the open session and emits its report.
    - {!serve_socket} — a Unix-domain socket accepting many concurrent
      connections, multiplexed with [select] on a single domain (the
      detector hot path is sequential per session anyway; one domain
      keeps every session's trie access unsynchronized).

    Both tick the daemon {!Metrics} and print a periodic
    machine-readable stats line — a [{"t":"stats",...}] JSON object —
    to [stderr], never mixing it into the protocol stream. *)

type conf = {
  sv_config : Drd_harness.Config.t;
      (** Default detector configuration for sessions whose [hello]
          names none (and for implicit sessions). *)
  sv_eviction : Drd_core.Detector.eviction option;
      (** Quiescent-location eviction shared by every events session;
          [None] means unbounded (one-shot semantics). *)
  sv_stats_every : float;
      (** Seconds between periodic stats lines; [0.] disables them. *)
}

val serve_channels : conf -> in_channel -> out_channel -> (unit, string) result
(** Serve one connection reading frames from [ic], writing response
    frames to [oc].  Returns [Error msg] on malformed input (protocol
    or payload) — the CLI maps this to the data-error exit code —
    after answering with an [error] frame. *)

val serve_socket :
  conf -> path:string -> ?ready:(unit -> unit) -> unit -> (unit, string) result
(** Bind [path] (unlinking any stale socket first), call [ready] once
    listening (test/bench synchronization), and serve until a
    [shutdown] control frame arrives.  Connection-level input errors
    answer with an [error] frame and drop that connection only.
    [Error] is reserved for failures to establish the socket. *)
