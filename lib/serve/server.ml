module Config = Drd_harness.Config
module Wire = Drd_explore.Wire

type conf = {
  sv_config : Config.t;
  sv_eviction : Drd_core.Detector.eviction option;
  sv_stats_every : float;
}

(* ---- one connection's protocol state, transport-agnostic ---- *)

type conn = {
  c_send : string -> unit;
  mutable c_session : Session.t option;
  c_pool : Session.pool;
      (* connection-lifetime detector state, reset per session *)
}

(* What one inbound line did to the connection. *)
type outcome =
  | Continue
  | Shutdown_req
  | Fatal of string  (** input error: error frame sent, drop the peer *)

let chomp_cr line =
  let n = String.length line in
  if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line

let absorb metrics s =
  Metrics.absorb_session metrics ~events:(Session.events s)
    ~races:(Session.races s) ~evictions:(Session.evictions s)

(* Abandon an open session without a report (error paths). *)
let abandon metrics conn =
  match conn.c_session with
  | None -> ()
  | Some s ->
      conn.c_session <- None;
      ignore (Session.close s : (string, string) result);
      absorb metrics s

(* Close the open session and send its report frame.  [Ok false] when
   there was nothing to close. *)
let close_session metrics conn =
  match conn.c_session with
  | None -> Ok false
  | Some s -> (
      conn.c_session <- None;
      let r = Session.close s in
      (* Obs races are only known after [close]. *)
      absorb metrics s;
      match r with
      | Ok body ->
          conn.c_send (Protocol.report_frame ~session:(Session.id s) ~body);
          Ok true
      | Error m ->
          Metrics.on_error metrics;
          conn.c_send (Protocol.error_frame ~msg:m);
          Error m)

let stats_json_now metrics ~live =
  let locs, races, evs = live () in
  Metrics.stats_json metrics ~now:(Unix.gettimeofday ()) ~live_locations:locs
    ~live_races:races ~live_evictions:evs

(* The periodic observability line: the stats snapshot tagged like a
   frame, but on stderr — never interleaved with the protocol stream. *)
let emit_stats_stderr metrics ~live =
  let j =
    match stats_json_now metrics ~live with
    | Wire.Obj fields -> Wire.Obj (("t", Wire.String "stats") :: fields)
    | j -> j
  in
  Printf.eprintf "%s\n%!" (Wire.json_to_string j)

let fatal metrics conn msg =
  Metrics.on_error metrics;
  conn.c_send (Protocol.error_frame ~msg);
  abandon metrics conn;
  Fatal msg

let handle_control conf metrics conn ~live = function
  | Protocol.Hello { c_session; c_kind; c_config } -> (
      match conn.c_session with
      | Some s ->
          fatal metrics conn
            (Printf.sprintf "session %S already open; close it first"
               (Session.id s))
      | None -> (
          let config =
            if c_config = "" then Some conf.sv_config
            else Config.by_name c_config
          in
          match config with
          | None ->
              fatal metrics conn
                (Printf.sprintf "unknown detector configuration %S" c_config)
          | Some config ->
              let id = if c_session = "" then "default" else c_session in
              Metrics.on_session_open metrics;
              conn.c_session <-
                Some
                  (Session.create ~pool:conn.c_pool ~id ~kind:c_kind ~config
                     ~eviction:conf.sv_eviction ());
              conn.c_send (Protocol.hello_frame ~session:id ~kind:c_kind);
              Continue))
  | Protocol.Stats_req ->
      conn.c_send (Protocol.stats_frame (stats_json_now metrics ~live));
      Continue
  | Protocol.Close -> (
      match close_session metrics conn with
      | Ok true -> Continue
      | Ok false -> fatal metrics conn "no open session to close"
      | Error m -> Fatal m)
  | Protocol.Shutdown -> Shutdown_req

let handle_line conf metrics conn ~live line =
  Metrics.on_line metrics;
  match Protocol.classify_line line with
  | Error m -> fatal metrics conn m
  | Ok (Protocol.Control c) -> handle_control conf metrics conn ~live c
  | Ok Protocol.Payload -> (
      let s =
        match conn.c_session with
        | Some s -> s
        | None ->
            (* Payload before any hello: implicitly open the default
               events session, so [cat events.log | racedet serve]
               needs no framing at all. *)
            Metrics.on_session_open metrics;
            let s =
              Session.create ~pool:conn.c_pool ~id:"default"
                ~kind:Protocol.Events ~config:conf.sv_config
                ~eviction:conf.sv_eviction ()
            in
            conn.c_session <- Some s;
            s
      in
      let before = Session.events s in
      match Session.feed_line s line with
      | Ok frames ->
          Metrics.on_events metrics (Session.events s - before);
          List.iter conn.c_send frames;
          Continue
      | Error m -> fatal metrics conn m)

let live_of_conn conn () =
  match conn.c_session with
  | None -> (0, 0, 0)
  | Some s -> (Session.live_locations s, Session.races s, Session.evictions s)

(* ---- stdin/stdout transport ---- *)

let serve_channels conf ic oc =
  let metrics = Metrics.create ~now:(Unix.gettimeofday ()) in
  let send frame =
    output_string oc frame;
    output_char oc '\n';
    flush oc
  in
  let conn = { c_send = send; c_session = None; c_pool = Session.pool () } in
  let live = live_of_conn conn in
  let next_stats =
    ref
      (if conf.sv_stats_every > 0. then
         Unix.gettimeofday () +. conf.sv_stats_every
       else infinity)
  in
  let since_check = ref 0 in
  let result = ref (Ok ()) in
  let continue = ref true in
  while !continue do
    match input_line ic with
    | exception End_of_file -> continue := false
    | line ->
        (match handle_line conf metrics conn ~live (chomp_cr line) with
        | Continue -> ()
        | Shutdown_req -> continue := false
        | Fatal m ->
            result := Error m;
            continue := false);
        incr since_check;
        (* The time check is a syscall; amortize it over the hot loop. *)
        if !since_check >= 4096 then begin
          since_check := 0;
          Metrics.sample_heap metrics;
          let now = Unix.gettimeofday () in
          if now >= !next_stats then begin
            emit_stats_stderr metrics ~live;
            next_stats := now +. conf.sv_stats_every
          end
        end
  done;
  (match !result with
  | Ok () -> (
      (* EOF closes the open session, exactly like a close frame. *)
      match close_session metrics conn with
      | Ok _ -> ()
      | Error m -> result := Error m)
  | Error _ -> ());
  if conf.sv_stats_every > 0. then emit_stats_stderr metrics ~live;
  !result

(* ---- Unix-socket transport ---- *)

type sconn = {
  sc_fd : Unix.file_descr;
  sc_buf : Buffer.t;  (** bytes read but not yet split into lines *)
  sc_alive : bool ref;  (** cleared when a write hits a gone peer *)
  sc_conn : conn;
}

let rec write_all fd s pos len =
  if len > 0 then
    let n = Unix.write_substring fd s pos len in
    write_all fd s (pos + n) (len - n)

let make_sconn fd =
  let alive = ref true in
  let send frame =
    if !alive then
      try
        let line = frame ^ "\n" in
        write_all fd line 0 (String.length line)
      with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
        alive := false
  in
  {
    sc_fd = fd;
    sc_buf = Buffer.create 65536;
    sc_alive = alive;
    sc_conn = { c_send = send; c_session = None; c_pool = Session.pool () };
  }

let serve_socket conf ~path ?ready () =
  match
    (try Unix.unlink path with Unix.Unix_error _ -> ());
    let srv = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind srv (Unix.ADDR_UNIX path);
    Unix.listen srv 64;
    srv
  with
  | exception Unix.Unix_error (e, _, _) ->
      Error
        (Printf.sprintf "cannot listen on %s: %s" path (Unix.error_message e))
  | srv ->
      (match ready with Some f -> f () | None -> ());
      let metrics = Metrics.create ~now:(Unix.gettimeofday ()) in
      let conns : (Unix.file_descr, sconn) Hashtbl.t = Hashtbl.create 16 in
      let live () =
        Hashtbl.fold
          (fun _ sc (l, r, e) ->
            match sc.sc_conn.c_session with
            | None -> (l, r, e)
            | Some s ->
                ( l + Session.live_locations s,
                  r + Session.races s,
                  e + Session.evictions s ))
          conns (0, 0, 0)
      in
      let running = ref true in
      let finish_conn sc ~report =
        if Hashtbl.mem conns sc.sc_fd then begin
          Hashtbl.remove conns sc.sc_fd;
          if report then
            (* EOF ≡ close: emit the report; the send silently no-ops
               if the peer is fully gone. *)
            ignore (close_session metrics sc.sc_conn : (bool, string) result)
          else abandon metrics sc.sc_conn;
          try Unix.close sc.sc_fd with Unix.Unix_error _ -> ()
        end
      in
      let process_buffer sc =
        let s = Buffer.contents sc.sc_buf in
        let len = String.length s in
        let pos = ref 0 in
        let stop = ref false in
        while (not !stop) && !pos < len do
          match String.index_from_opt s !pos '\n' with
          | None -> stop := true
          | Some nl ->
              let line = chomp_cr (String.sub s !pos (nl - !pos)) in
              pos := nl + 1;
              (match
                 handle_line conf metrics sc.sc_conn ~live line
               with
              | Continue -> ()
              | Shutdown_req ->
                  running := false;
                  stop := true
              | Fatal _ ->
                  finish_conn sc ~report:false;
                  stop := true)
        done;
        if Hashtbl.mem conns sc.sc_fd then begin
          let rest = String.sub s !pos (len - !pos) in
          Buffer.clear sc.sc_buf;
          Buffer.add_string sc.sc_buf rest
        end
      in
      let chunk = Bytes.create 65536 in
      let read_conn sc =
        match Unix.read sc.sc_fd chunk 0 (Bytes.length chunk) with
        | exception Unix.Unix_error (Unix.ECONNRESET, _, _) ->
            finish_conn sc ~report:false
        | 0 -> finish_conn sc ~report:true
        | n ->
            Buffer.add_subbytes sc.sc_buf chunk 0 n;
            process_buffer sc
      in
      let next_stats =
        ref
          (if conf.sv_stats_every > 0. then
             Unix.gettimeofday () +. conf.sv_stats_every
           else infinity)
      in
      while !running do
        let fds = srv :: Hashtbl.fold (fun fd _ acc -> fd :: acc) conns [] in
        let timeout =
          if conf.sv_stats_every > 0. then
            Float.max 0.05 (!next_stats -. Unix.gettimeofday ())
          else -1.
        in
        let readable, _, _ =
          try Unix.select fds [] [] timeout
          with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
        in
        List.iter
          (fun fd ->
            if fd == srv then (
              match Unix.accept srv with
              | exception Unix.Unix_error _ -> ()
              | cfd, _ -> Hashtbl.replace conns cfd (make_sconn cfd))
            else
              match Hashtbl.find_opt conns fd with
              | None -> () (* dropped earlier in this round *)
              | Some sc -> read_conn sc)
          readable;
        Metrics.sample_heap metrics;
        if conf.sv_stats_every > 0. then begin
          let now = Unix.gettimeofday () in
          if now >= !next_stats then begin
            emit_stats_stderr metrics ~live;
            next_stats := now +. conf.sv_stats_every
          end
        end
      done;
      (* Shutdown: finish every connection as if its stream ended. *)
      let all = Hashtbl.fold (fun _ sc acc -> sc :: acc) conns [] in
      List.iter (fun sc -> finish_conn sc ~report:true) all;
      (try Unix.close srv with Unix.Unix_error _ -> ());
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      if conf.sv_stats_every > 0. then emit_stats_stderr metrics ~live;
      Ok ()
