(* Campaign-level aggregation: dedupe race reports across runs by
   (object, field, site-pair), remember the first schedule that produced
   each, keep the exploration statistics (distinct interleaving
   fingerprints, discovery decay, throughput inputs) — and, with a
   plateau window armed, decide when the campaign stopped discovering.

   The plateau decision lives here rather than in the runner so that it
   is a deterministic function of the row sequence in run-index order:
   parallel runners may overshoot the stop point (in-flight runs), and
   [racedet merge] re-folds rows recorded elsewhere; both get the same
   cutoff because this module ignores every row after the window
   trips. *)

type race_key = {
  k_object : string;
  k_site_a : string;
  k_site_b : string;
}

(* Heap ids are schedule-dependent ("TourElement#12.next" may be #14
   under another interleaving), so keys strip the "#id" component and
   dedupe on the class+field identity. *)
let normalize_object name =
  let b = Buffer.create (String.length name) in
  let n = String.length name in
  let i = ref 0 in
  while !i < n do
    if name.[!i] = '#' then begin
      incr i;
      while !i < n && name.[!i] >= '0' && name.[!i] <= '9' do
        incr i
      done
    end
    else begin
      Buffer.add_char b name.[!i];
      incr i
    end
  done;
  Buffer.contents b

let key ~obj ~site_a ~site_b =
  let obj = normalize_object obj in
  if String.compare site_a site_b <= 0 then
    { k_object = obj; k_site_a = site_a; k_site_b = site_b }
  else { k_object = obj; k_site_a = site_b; k_site_b = site_a }

type sighting = {
  s_key : race_key;
  s_kinds : string; (* e.g. "write vs read" *)
}

type run_obs = {
  o_index : int;
  o_seed : int;
  o_spec : string; (* human description of the schedule *)
  o_repro : string; (* racedet run flags replaying it *)
  o_sightings : sighting list;
  o_objects : string list; (* raw racy-object names (sweep compat) *)
  o_fingerprint : int;
  o_hb_fingerprint : int option; (* happens-before class (hb campaigns) *)
  o_events : int;
  o_steps : int;
  o_wall : float; (* VM seconds for this run *)
}

type failure = { f_index : int; f_seed : int; f_error : string }

type row =
  | Run of run_obs
  | Failed of failure

let row_index = function Run o -> o.o_index | Failed f -> f.f_index

type deduped = {
  d_key : race_key;
  d_count : int;
  d_kinds : string;
  d_first_index : int;
  d_first_seed : int;
  d_first_spec : string;
  d_first_repro : string;
}

type stop_reason =
  | Exhausted
  | Plateau of { p_window : int; p_at : int }
  | Deadline

let describe_stop = function
  | Exhausted -> "budget exhausted"
  | Plateau { p_window; p_at } ->
      Printf.sprintf "discovery plateau: no new race for %d consecutive runs (tripped by run %d)"
        p_window p_at
  | Deadline -> "wall-clock budget expired"

type t = {
  plateau : int option;
  hb : bool; (* fold under happens-before equivalence *)
  mutable quiet : int; (* consecutive folded rows with no new race *)
  mutable plateau_stop : (int * int) option; (* window, tripping index *)
  mutable deadline_hit : bool;
  mutable runs : int;
  mutable failures : failure list; (* reverse order *)
  mutable obs : run_obs list; (* reverse fold order *)
  races : (race_key, deduped) Hashtbl.t;
  fingerprints : (int, int) Hashtbl.t; (* fingerprint -> runs showing it *)
  equiv_keys : (int, unit) Hashtbl.t; (* equivalence classes folded so far *)
  mutable pruned : int; (* runs whose class was already seen (hb only) *)
  object_counts : (string, int) Hashtbl.t;
  mutable discovery : (int * int) list; (* (run idx, cumulative races), rev *)
  mutable events : int;
  mutable steps : int;
  mutable run_wall : float;
}

let create ?plateau ?(hb = false) () =
  {
    plateau;
    hb;
    quiet = 0;
    plateau_stop = None;
    deadline_hit = false;
    runs = 0;
    failures = [];
    obs = [];
    races = Hashtbl.create 32;
    fingerprints = Hashtbl.create 64;
    equiv_keys = Hashtbl.create 64;
    pruned = 0;
    object_counts = Hashtbl.create 32;
    discovery = [];
    events = 0;
    steps = 0;
    run_wall = 0.;
  }

let stopped t = t.plateau_stop <> None

(* A row brought no new distinct race; advance the plateau window. *)
let note_quiet t index =
  match t.plateau with
  | None -> ()
  | Some window ->
      t.quiet <- t.quiet + 1;
      if t.quiet >= window then t.plateau_stop <- Some (window, index)

(* Feed observations in run-index order for deterministic first-seen
   attribution and plateau decisions; the engine sorts merged worker
   results before folding. *)
let add_run t (o : run_obs) =
  if stopped t then ()
  else begin
    t.runs <- t.runs + 1;
    t.obs <- o :: t.obs;
    t.events <- t.events + o.o_events;
    t.steps <- t.steps + o.o_steps;
    t.run_wall <- t.run_wall +. o.o_wall;
    Hashtbl.replace t.fingerprints o.o_fingerprint
      (1 + Option.value (Hashtbl.find_opt t.fingerprints o.o_fingerprint) ~default:0);
    (* Equivalence-class accounting is done here, in fold order, rather
       than trusting the runner's replay cache: workers race to claim
       classes and shards each start cold, so runner-side counts are not
       deterministic — this fold is, which keeps merged reports
       byte-identical to single-process ones. *)
    let equiv_key =
      if t.hb then Option.value o.o_hb_fingerprint ~default:o.o_fingerprint
      else o.o_fingerprint
    in
    if Hashtbl.mem t.equiv_keys equiv_key then begin
      if t.hb then t.pruned <- t.pruned + 1
    end
    else Hashtbl.add t.equiv_keys equiv_key ();
    List.iter
      (fun obj ->
        Hashtbl.replace t.object_counts obj
          (1 + Option.value (Hashtbl.find_opt t.object_counts obj) ~default:0))
      o.o_objects;
    let new_race = ref false in
    (* A run can sight the same key through several racy locations (two
       objects of one class); count it once per run. *)
    let seen_this_run = Hashtbl.create 8 in
    List.iter
      (fun s ->
        if not (Hashtbl.mem seen_this_run s.s_key) then begin
          Hashtbl.add seen_this_run s.s_key ();
          match Hashtbl.find_opt t.races s.s_key with
          | Some d ->
              Hashtbl.replace t.races s.s_key { d with d_count = d.d_count + 1 }
          | None ->
              new_race := true;
              Hashtbl.add t.races s.s_key
                {
                  d_key = s.s_key;
                  d_count = 1;
                  d_kinds = s.s_kinds;
                  d_first_index = o.o_index;
                  d_first_seed = o.o_seed;
                  d_first_spec = o.o_spec;
                  d_first_repro = o.o_repro;
                }
        end)
      o.o_sightings;
    if !new_race then begin
      t.quiet <- 0;
      t.discovery <- (o.o_index, Hashtbl.length t.races) :: t.discovery
    end
    else note_quiet t o.o_index
  end

let add_failure t (f : failure) =
  if stopped t then ()
  else begin
    t.failures <- f :: t.failures;
    note_quiet t f.f_index
  end

let add_row t = function Run o -> add_run t o | Failed f -> add_failure t f

(* Rows from pool workers / merged shards arrive in completion order;
   re-establish run-index order here so the fold semantics (first-seen
   attribution, plateau cutoff) never depend on scheduling. *)
let add_rows t rows =
  List.sort (fun a b -> compare (row_index a) (row_index b)) rows
  |> List.iter (add_row t)

let note_deadline t = t.deadline_hit <- true

let races t =
  Hashtbl.fold (fun _ d acc -> d :: acc) t.races []
  |> List.sort (fun a b ->
         match compare b.d_count a.d_count with
         | 0 -> compare a.d_key b.d_key
         | c -> c)

let object_rows t =
  Hashtbl.fold (fun obj n acc -> (obj, n) :: acc) t.object_counts []
  |> List.sort (fun (oa, a) (ob, b) ->
         match compare b a with 0 -> compare oa ob | c -> c)

let failures t =
  List.sort (fun a b -> compare a.f_index b.f_index) t.failures

let observations t = List.rev t.obs

type stats = {
  st_runs : int;
  st_failed : int;
  st_distinct_races : int;
  st_distinct_fingerprints : int;
  st_equiv_classes : int; (* distinct equivalence classes folded *)
  st_pruned_runs : int; (* runs that needed no detector replay (hb) *)
  st_events : int;
  st_steps : int;
  st_run_wall : float; (* summed per-run VM seconds (CPU view) *)
  st_discovery : (int * int) list; (* run index -> cumulative races *)
  st_stop : stop_reason;
}

let stats t =
  {
    st_runs = t.runs;
    st_failed = List.length t.failures;
    st_distinct_races = Hashtbl.length t.races;
    st_distinct_fingerprints = Hashtbl.length t.fingerprints;
    st_equiv_classes = Hashtbl.length t.equiv_keys;
    st_pruned_runs = t.pruned;
    st_events = t.events;
    st_steps = t.steps;
    st_run_wall = t.run_wall;
    st_discovery = List.rev t.discovery;
    st_stop =
      (match t.plateau_stop with
      | Some (p_window, p_at) -> Plateau { p_window; p_at }
      | None -> if t.deadline_hit then Deadline else Exhausted);
  }

let pp_key ppf k =
  Fmt.pf ppf "%s  [%s vs %s]" k.k_object k.k_site_a k.k_site_b
