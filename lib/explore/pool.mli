(** Persistent worker-domain pool primitives for campaign execution.

    The original runner spawned one domain per worker and synchronized
    per run — a shared claim counter, shared replay-cache mutex and a
    shared results channel all hit once or twice per run — which made
    multi-domain throughput {e negative} (contention plus cross-domain
    minor-GC handshakes swamped the parallelism).  This module is the
    batched replacement: long-lived domains claim {e chunks} of work
    ordinals from a {!queue}, hand completed batches back through
    single-producer {!outbox}es, and trade domain-local discoveries
    through an append-only {!journal} — one shared touch per batch
    instead of several per run.

    Nothing here knows about campaigns or can affect a report: the
    campaign fold re-sorts rows by run index, so chunk sizes and claim
    interleavings are invisible by construction. *)

(** {1 Chunked work queue} *)

type queue

type chunk = {
  c_ordinal : int;
      (** Claim ordinal: dense and monotone across the queue, so chunk
          completions can be replayed in claim order (the plateau
          tracker's reorder buffer keys on it). *)
  c_first : int;  (** First work ordinal of the chunk. *)
  c_count : int;  (** Ordinals in the chunk; the tail chunk may be short. *)
}

val queue : batch:int -> total:int -> queue
(** A queue over work ordinals [0, total), handed out [batch] at a
    time.  Raises [Invalid_argument] if [batch < 1]. *)

val claim : queue -> chunk option
(** Claim the next chunk — one [Atomic.fetch_and_add] regardless of
    batch size.  [None] when the queue is exhausted. *)

val default_batch : workers:int -> total:int -> int
(** Chunk size when the caller does not pin one: a few claims per worker
    (load balance) capped at 16 (bounded overshoot past a plateau stop).
    Purely a throughput knob — any value yields the same report. *)

(** {1 Single-producer outboxes} *)

type 'a outbox
(** A mutex-guarded accumulator shared by exactly two parties: one
    producing worker pushing once per batch, and the aggregator, which
    drains only after the workers quiesce — so the fold never contends
    with running workers. *)

val outbox : unit -> 'a outbox

val push : 'a outbox -> 'a -> unit

val drain : 'a outbox -> 'a list
(** Everything pushed so far, in push order; empties the outbox. *)

(** {1 Append-only journal} *)

type 'a journal
(** A shared append-only log for trading domain-local discoveries (hb
    replay-cache entries) between workers at batch boundaries.  Each
    worker keeps its own read cursor; {!exchange} is one critical
    section per batch. *)

val journal : unit -> 'a journal

val exchange : 'a journal -> cursor:int -> publish:'a list -> 'a list * int
(** [exchange j ~cursor ~publish] appends [publish] and returns
    [(news, cursor')]: every entry other workers appended since
    [cursor] (oldest first, excluding [publish] itself), and the new
    cursor to resume from. *)

(** {1 The pool} *)

val run : ?gc_space_overhead:int -> workers:int -> (worker:int -> 'a) -> 'a list
(** [run ~workers f] runs [f ~worker:w] for [w] in [0..workers-1] on
    long-lived domains and returns the results in worker order.  The
    {e calling} domain is worker 0 (a 1-worker pool never spawns), so
    [workers] domains run on [workers] cores.

    [?gc_space_overhead] raises [Gc.space_overhead] (process-global in
    OCaml 5) for the duration of the pool and restores it on exit, even
    on raise: lazier major-GC pacing keeps allocation-bursty workers out
    of each other's collection handshakes.  Throughput-only.

    If workers raise, all domains still run to completion, then the
    first exception in worker order is re-raised with its backtrace. *)
