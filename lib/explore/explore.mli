(** The parallel schedule-exploration engine.

    Dynamic detection only covers the schedules it observes (paper
    Section 9).  A campaign drives the detector across many
    qualitatively different schedules — seed sweeps, quantum jitter,
    PCT-style priority scheduling — fanning runs out over OCaml 5
    domains, and aggregates the deduped race reports with a
    reproduction recipe for each.

    Determinism: with a pure run-count budget the campaign executes a
    fixed, strategy-determined set of runs and merges them in run-index
    order, so the same {!spec} always yields the same deduped report
    set regardless of worker scheduling.  A wall-clock budget
    ({!budget.b_seconds}) trades that away for boundedness. *)

module Config = Drd_harness.Config

type budget = {
  b_runs : int;  (** Maximum runs in the campaign. *)
  b_seconds : float option;  (** Optional wall-clock cap. *)
}

val runs_budget : int -> budget

type spec = {
  e_config : Config.t;  (** Base detector configuration. *)
  e_strategy : Strategy.t;
  e_workers : int;  (** Domains to fan out over. *)
  e_budget : budget;
  e_pct_horizon : int;
      (** Step horizon for PCT priority-change points (ignored by other
          strategies). *)
}

val default_spec : Config.t -> spec
(** Jitter strategy, 1 worker, 32 runs, horizon 20k. *)

type report = {
  r_spec : spec;
  r_races : Aggregate.deduped list;
      (** Deduped by (object, field, site-pair); each with first-seen
          seed/schedule. *)
  r_objects : (string * int) list;
      (** Racy-object occurrence counts (the legacy sweep view). *)
  r_failures : Aggregate.failure list;
      (** Runs that crashed (deadlock, step limit, …) — isolated, never
          fatal to the campaign. *)
  r_stats : Aggregate.stats;
  r_wall : float;  (** Campaign wall clock, worker compiles included. *)
}

val runs_per_sec : report -> float

val events_per_sec : report -> float

val events_per_sec_per_worker : report -> float

val observe_run :
  Drd_harness.Pipeline.compiled -> Strategy.run_spec -> Aggregate.run_obs
(** Execute one schedule and summarize it (races sighted, interleaving
    fingerprint, throughput counters).  Exposed for tests. *)

val run_campaign : spec -> source:string -> report
(** Compile (once per worker) and execute the campaign.  Worker
    exceptions become {!Aggregate.failure} rows. *)

val sweep :
  ?workers:int ->
  Config.t ->
  source:string ->
  seeds:int list ->
  (string * int) list * (int * string) list
(** The legacy schedule sweep (formerly [Pipeline.sweep]), rebased onto
    the engine: run once per scheduler seed and aggregate the racy
    objects as [(object, runs-that-reported-it)] rows sorted by
    frequency, plus [(seed, error)] failures. *)
