(** The parallel schedule-exploration engine.

    Dynamic detection only covers the schedules it observes (paper
    Section 9).  A campaign drives the detector across many
    qualitatively different schedules — seed sweeps, quantum jitter,
    PCT-style priority scheduling — fanning runs out over OCaml 5
    domains, and aggregates the deduped race reports with a
    reproduction recipe for each.

    Determinism: run indices derive purely from the campaign {!spec}
    ({!Strategy.mix}), and results are folded in run-index order, so
    the same spec always yields the same report set regardless of
    worker scheduling.  That is also what makes campaigns {e shardable}:
    [run_campaign ~shard:(i, n)] executes only the indices congruent to
    [i mod n], and {!merge} re-folds rows recorded by any number of
    shards into the identical single-process report.  A wall-clock
    budget ({!budget.b_seconds}) trades determinism for boundedness; a
    plateau window ({!budget.b_plateau}) keeps it — the cutoff is a
    deterministic function of the row sequence (see {!Aggregate}). *)

module Config = Drd_harness.Config

(** {1 Campaign description}

    Re-exported from {!Campaign} (type equations, so record literals
    and [with]-updates keep working) with smart constructors — a spec
    is a pure, serializable value; see the wire codecs below. *)

type budget = Campaign.budget = {
  b_runs : int;  (** Maximum runs in the campaign. *)
  b_seconds : float option;  (** Optional wall-clock cap. *)
  b_plateau : int option;
      (** Adaptive budget: stop after this many consecutive runs with
          no new distinct race. *)
}

val budget : ?seconds:float -> ?plateau:int -> int -> budget

val runs_budget : int -> budget
(** [budget n] with no wall-clock cap and no plateau window. *)

val equal_budget : budget -> budget -> bool

val pp_budget : budget Fmt.t

(** Which schedules count as "the same interleaving" (re-exported from
    {!Campaign}). *)
type equiv = Campaign.equiv = Raw | Hb

val equiv_name : equiv -> string
(** ["raw"] or ["hb"]; the CLI/wire spelling. *)

val equiv_of_string : string -> (equiv, string) result

type spec = Campaign.spec = {
  e_config : Config.t;  (** Base detector configuration. *)
  e_strategy : Strategy.t;
  e_workers : int;  (** Domains to fan out over. *)
  e_budget : budget;
  e_pct_horizon : int;
      (** Step horizon for PCT priority-change points (ignored by other
          strategies). *)
  e_equiv : equiv;
      (** Schedule-equivalence mode.  Under {!Hb} each run is
          fingerprinted by its happens-before structure
          ({!Hb_fingerprint}) and detector replay is skipped for
          classes already seen — the run still counts, and its deduped
          races are identical to what the replay would have found. *)
}

val spec :
  ?strategy:Strategy.t ->
  ?workers:int ->
  ?budget:budget ->
  ?pct_horizon:int ->
  ?equiv:equiv ->
  Config.t ->
  spec
(** Defaults: Jitter strategy, 1 worker, 32 runs, horizon 20k, raw
    equivalence. *)

val default_spec : Config.t -> spec
(** [spec config] with all defaults. *)

val equal_spec : spec -> spec -> bool

val compatible : spec -> spec -> bool
(** Equal up to [e_workers]: do two specs describe the same campaign
    (the same deterministic run set)?  This is the merge-safety
    relation for shard files. *)

val pp_spec : spec Fmt.t

(** {1 Reports} *)

type report = {
  r_spec : spec;
  r_races : Aggregate.deduped list;
      (** Deduped by (object, field, site-pair); each with first-seen
          seed/schedule. *)
  r_objects : (string * int) list;
      (** Racy-object occurrence counts (the legacy sweep view). *)
  r_failures : Aggregate.failure list;
      (** Runs that crashed (deadlock, step limit, …) — isolated, never
          fatal to the campaign. *)
  r_obs : Aggregate.run_obs list;
      (** The folded per-run observations — what a shard emits on the
          wire ({!rows_of_report}). *)
  r_stats : Aggregate.stats;  (** Including {!Aggregate.stats.st_stop}. *)
  r_wall : float;  (** Campaign wall clock, worker compiles included. *)
}

val runs_per_sec : report -> float

val events_per_sec : report -> float

val events_per_sec_per_worker : report -> float

val fingerprint_tap : unit -> Drd_vm.Sink.t * (unit -> int)
(** The raw order-sensitive interleaving fingerprint: an FNV-1a-style
    hash of the exact event stream.  Shares its constants (and the
    46-bit mask rationale) with {!Hb_fingerprint}.  Exposed for
    tests. *)

val observe_run :
  ?ctx:Drd_harness.Pipeline.Run_ctx.t ->
  Drd_harness.Pipeline.compiled ->
  Strategy.run_spec ->
  Aggregate.run_obs
(** Execute one schedule and summarize it (races sighted, interleaving
    fingerprint, throughput counters).  [?ctx] reuses a pooled run
    context (see {!Drd_harness.Pipeline.Run_ctx}); the observation is
    byte-identical with or without it.  Exposed for tests. *)

val run_campaign :
  ?shard:int * int ->
  ?batch:int ->
  ?reuse_ctx:bool ->
  spec ->
  source:string ->
  report
(** Execute the campaign on a persistent worker-domain pool: domains
    are spawned once (the calling domain is worker 0), each compiles
    its own program copy, claims {e chunks} of run indices from a
    batched work queue, and hands results back as pre-serialized wire
    rows through per-worker outboxes — the fold never contends with
    running workers.  [?batch] pins the chunk size (default: a few
    claims per worker, capped at 16); it is a pure throughput knob —
    every batch size yields the byte-identical report, because rows are
    re-sorted by run index before folding.  Raises [Invalid_argument]
    on [batch < 1].

    [?reuse_ctx] (default [true]) gives each worker domain one pooled
    {!Drd_harness.Pipeline.Run_ctx.t} for the whole campaign, reset in
    place between runs instead of re-allocating detector and VM state
    per run.  Like [?batch], it is a pure throughput knob: reports are
    byte-identical either way (the CLI's [--no-ctx-reuse] and CI's
    fresh-vs-reused diff enforce this).

    A source that fails to compile raises
    {!Drd_harness.Pipeline.Compile_error} before any domain is spawned:
    broken input fails the whole campaign up front instead of silently
    stranding its runs.  {e Run}-time exceptions still become
    {!Aggregate.failure} rows and never kill the campaign.

    [~shard:(i, n)] runs only the indices owned by shard [i] of [n]
    (those congruent to [i mod n]); raises [Invalid_argument] unless
    [0 <= i < n].

    A plateau window ({!budget.b_plateau}) is a campaign-wide property:
    a shard cannot evaluate it against only its own subsequence of the
    discovery curve.  In shard mode ([n > 1]) the window is therefore
    not applied locally — the shard runs its full owned slice and its
    report/rows contain every owned run — and {!merge} applies the
    window over the re-assembled index sequence, which is what keeps
    the merged report byte-identical to the single-process one. *)

val report_of_rows :
  ?wall:float ->
  ?deadline_hit:bool ->
  ?apply_plateau:bool ->
  spec ->
  Aggregate.row list ->
  report
(** Fold rows (sorted into run-index order internally) into a report,
    honoring the spec's plateau window unless [~apply_plateau:false]
    (shard-local folds, where the window must wait for the merge).
    This is the single folding path: {!run_campaign} and {!merge} both
    end here, which is why a merged report is byte-identical to a
    single-process one. *)

val merge : spec -> Aggregate.row list -> report
(** [report_of_rows spec rows] — fold rows collected from shard files
    ([r_wall] is 0; render with [~timing:false]). *)

val missing_indices : spec -> Aggregate.row list -> int list
(** Run indices in [0 .. total_runs - 1] (the campaign's deterministic
    index range, [total_runs] being the run budget capped by the
    strategy's intrinsic count) that no row covers, in ascending order.
    Non-empty input to {!merge} means an incomplete shard set: with a
    purely runs-based budget the merged report would silently differ
    from the single-process run.  Rows with negative indices (markers
    from older recorders) are ignored. *)

val rows_of_report : report -> Aggregate.row list
(** The report's observations and failures as wire rows, in run-index
    order. *)

(** {1 Rendering}

    Shared by [racedet explore] and [racedet merge] so that a merged
    campaign reproduces the single-process report byte for byte.
    [~timing:false] omits everything that depends on wall clock or
    worker fan-out (use it when comparing shard-merged output against
    a single-process run). *)

val report_text : ?timing:bool -> target:string -> report -> string
(** [target] is what reproduction command lines name (a file path or
    ["-b NAME"]). *)

val report_json : ?timing:bool -> report -> string

(** {1 Wire (re-exported from {!Wire})}

    The versioned JSON-lines observation format for sharded campaigns. *)

val spec_to_json : ?target:string -> spec -> string

val spec_of_json : string -> (spec, string) result

val target_of_json : string -> (string, string) result

val obs_to_json : Aggregate.run_obs -> string

val obs_of_json : string -> (Aggregate.run_obs, string) result

val failure_to_json : Aggregate.failure -> string

val failure_of_json : string -> (Aggregate.failure, string) result

val row_to_json : Aggregate.row -> string

val row_of_json : string -> (Aggregate.row, string) result

val row_of_line : string -> (Aggregate.row, string) result
(** Line-at-a-time streaming decode; see {!Wire.row_of_line}. *)

val write_obs_channel :
  out_channel -> ?target:string -> spec -> Aggregate.row list -> unit

val read_obs_channel :
  in_channel -> (spec * string * Aggregate.row list, string) result

val fold_obs_channel :
  in_channel ->
  init:'a ->
  row:('a -> Aggregate.row -> 'a) ->
  (spec * string * 'a, string) result
(** Streaming fold over an observation file; see
    {!Wire.fold_obs_channel}. *)

(** {1 The legacy seed sweep} *)

type sweep_result = {
  sw_objects : (string * int) list;
      (** [(object, runs-that-reported-it)], sorted by frequency. *)
  sw_failures : (int * string) list;  (** [(seed, error)]. *)
}

val sweep :
  ?workers:int -> Config.t -> source:string -> seeds:int list -> sweep_result
(** The legacy schedule sweep (formerly [Pipeline.sweep]), rebased onto
    the engine: run once per scheduler seed and aggregate the racy
    objects. *)
