module Interp = Drd_vm.Interp
module Config = Drd_harness.Config

type t =
  | Sweep
  | Jitter
  | Pct of int
  | Seeds of int array

let name = function
  | Sweep -> "sweep"
  | Jitter -> "jitter"
  | Pct d -> Printf.sprintf "pct(d=%d)" d
  | Seeds a -> Printf.sprintf "seeds(%d)" (Array.length a)

let of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "sweep" -> Ok Sweep
  | "jitter" -> Ok Jitter
  | "pct" -> Ok (Pct 3)
  | s -> Error (Printf.sprintf "unknown strategy %s (try sweep|jitter|pct)" s)

let count = function Seeds a -> Some (Array.length a) | _ -> None

(* A SplitMix64-style finalizer over (base seed, run index): every run
   of a campaign gets an independent-looking but fully deterministic
   seed, so the same campaign spec always executes the same runs no
   matter how they are distributed over workers. *)
let mix seed index =
  let z = ref (((seed * 0x9E3779B9) lxor (index * 0xBF58476D)) + 0x94D049BB) in
  (* 62-bit truncations of the SplitMix64 constants (OCaml ints are 63
     bits). *)
  z := (!z lxor (!z lsr 30)) * 0x3F58476D1CE4E5B9;
  z := (!z lxor (!z lsr 27)) * 0x14D049BB133111EB;
  (!z lxor (!z lsr 31)) land 0x3FFFFFFF

type run_spec = {
  sp_index : int;
  sp_seed : int;
  sp_quantum : int;
  sp_policy : Interp.policy;
}

let spec strategy ~(base : Config.t) ~pct_horizon index =
  match strategy with
  | Sweep ->
      {
        sp_index = index;
        sp_seed = base.Config.seed + index;
        sp_quantum = base.Config.quantum;
        sp_policy = Interp.Random_walk;
      }
  | Jitter ->
      (* Random-walk with the slice bound itself randomized: schedules
         range from near-sequential (huge quanta) to maximally noisy
         (quantum 1). *)
      let seed = mix base.Config.seed (2 * index) in
      let q = 1 + (mix base.Config.seed ((2 * index) + 1) mod (4 * max base.Config.quantum 1)) in
      {
        sp_index = index;
        sp_seed = seed;
        sp_quantum = q;
        sp_policy = Interp.Random_walk;
      }
  | Pct depth ->
      {
        sp_index = index;
        sp_seed = mix base.Config.seed index;
        sp_quantum = base.Config.quantum;
        sp_policy = Interp.Pct { depth; horizon = pct_horizon };
      }
  | Seeds seeds ->
      {
        sp_index = index;
        sp_seed = seeds.(index);
        sp_quantum = base.Config.quantum;
        sp_policy = Interp.Random_walk;
      }

(* One batched claim's worth of run specs: indices [first, first+stride,
   ..., first+(count-1)*stride].  Pool workers use this to materialize a
   whole chunk in one call (the stride is the shard modulus). *)
let specs strategy ~base ~pct_horizon ~first ~stride ~count =
  List.init count (fun k -> spec strategy ~base ~pct_horizon (first + (k * stride)))

let describe_policy = function
  | Interp.Random_walk -> "random-walk"
  | Interp.Pct { depth; horizon } ->
      Printf.sprintf "pct depth=%d horizon=%d" depth horizon

let describe sp =
  Printf.sprintf "seed %d, quantum %d, %s" sp.sp_seed sp.sp_quantum
    (describe_policy sp.sp_policy)

(* The `racedet run` flags that replay this spec as a single run. *)
let repro_flags sp =
  match sp.sp_policy with
  | Interp.Random_walk ->
      Printf.sprintf "--seed %d --quantum %d" sp.sp_seed sp.sp_quantum
  | Interp.Pct { depth; horizon } ->
      Printf.sprintf "--seed %d --quantum %d --pct %d --pct-horizon %d"
        sp.sp_seed sp.sp_quantum depth horizon
