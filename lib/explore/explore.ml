module Pipeline = Drd_harness.Pipeline
module Config = Drd_harness.Config
module Interp = Drd_vm.Interp
module Sink = Drd_vm.Sink
module Memloc = Drd_vm.Memloc
module Site_table = Drd_ir.Site_table
module Ir = Drd_ir.Ir
open Drd_core

(* ---- the campaign description (re-exported from Campaign) ---- *)

type budget = Campaign.budget = {
  b_runs : int;
  b_seconds : float option;
  b_plateau : int option;
}

let budget = Campaign.budget
let runs_budget = Campaign.runs_budget
let equal_budget = Campaign.equal_budget
let pp_budget = Campaign.pp_budget

type equiv = Campaign.equiv = Raw | Hb

let equiv_name = Campaign.equiv_name
let equiv_of_string = Campaign.equiv_of_string

type spec = Campaign.spec = {
  e_config : Config.t;
  e_strategy : Strategy.t;
  e_workers : int;
  e_budget : budget;
  e_pct_horizon : int;
  e_equiv : equiv;
}

let spec = Campaign.spec
let default_spec = Campaign.default_spec
let equal_spec = Campaign.equal_spec
let compatible = Campaign.compatible
let pp_spec = Campaign.pp_spec

type report = {
  r_spec : spec;
  r_races : Aggregate.deduped list;
  r_objects : (string * int) list;
  r_failures : Aggregate.failure list;
  r_obs : Aggregate.run_obs list;
  r_stats : Aggregate.stats;
  r_wall : float; (* campaign wall clock, compiles included *)
}

let runs_per_sec r =
  float_of_int r.r_stats.Aggregate.st_runs /. Float.max r.r_wall 1e-9

let events_per_sec r =
  float_of_int r.r_stats.Aggregate.st_events /. Float.max r.r_wall 1e-9

let events_per_sec_per_worker r =
  events_per_sec r /. float_of_int (max r.r_spec.e_workers 1)

(* ---- single run ---- *)

(* A raw interleaving fingerprint: an order-sensitive FNV-1a-style hash
   of the event stream (thread, location, kind per access, plus lock and
   lifecycle transitions).  Two runs with the same fingerprint consumed
   the same detector-visible schedule.  The constants — and the 46-bit
   wire-int-safety rationale for the mask — live in Hb_fingerprint,
   shared with the happens-before tap. *)
let fingerprint_tap () =
  let fp = ref Hb_fingerprint.fnv_offset in
  let mixin v = fp := Hb_fingerprint.mix !fp v in
  let tap =
    {
      Sink.null with
      Sink.access =
        (fun ~tid ~loc ~kind ~locks:_ ~site:_ ->
          mixin tid;
          mixin loc;
          mixin (match kind with Event.Read -> 17 | Event.Write -> 23));
      acquire =
        (fun ~tid ~lock ->
          mixin (tid + 101);
          mixin lock);
      release =
        (fun ~tid ~lock ->
          mixin (tid + 211);
          mixin lock);
      thread_start = (fun ~parent ~child -> mixin ((parent * 31) + child));
    }
  in
  (tap, fun () -> !fp)

let kinds_of (race : Report.race) =
  let k = function Event.Read -> "read" | Event.Write -> "write" in
  Printf.sprintf "%s vs %s" (k race.Report.current.Event.kind)
    (k race.Report.prior.Trie.p_kind)

let site_name (c : Pipeline.compiled) s =
  if s < 0 || s >= Site_table.count c.Pipeline.prog.Ir.p_sites then "<unknown>"
  else Site_table.name c.Pipeline.prog.Ir.p_sites s

let sightings_of (c : Pipeline.compiled) (r : Pipeline.result) =
  match r.Pipeline.report with
  | Some coll ->
      List.map
        (fun (race : Report.race) ->
          let obj =
            Memloc.describe c.Pipeline.prog.Ir.p_tprog r.Pipeline.heap
              race.Report.loc
          in
          {
            Aggregate.s_key =
              Aggregate.key ~obj
                ~site_a:(site_name c race.Report.current.Event.site)
                ~site_b:(site_name c race.Report.prior.Trie.p_site);
            s_kinds = kinds_of race;
          })
        (Report.races coll)
  | None ->
      (* Baseline detectors report locations only. *)
      List.map
        (fun loc ->
          {
            Aggregate.s_key = Aggregate.key ~obj:loc ~site_a:"" ~site_b:"";
            s_kinds = "";
          })
        r.Pipeline.races

let vm_of (c : Pipeline.compiled) (sp : Strategy.run_spec) =
  {
    (Pipeline.vm_config_of c.Pipeline.config) with
    Interp.seed = sp.Strategy.sp_seed;
    quantum = sp.Strategy.sp_quantum;
    policy = sp.Strategy.sp_policy;
  }

let observe_run (c : Pipeline.compiled) (sp : Strategy.run_spec) :
    Aggregate.run_obs =
  let vm = vm_of c sp in
  let tap, fp = fingerprint_tap () in
  let r = Pipeline.run ~vm ~tap c in
  {
    Aggregate.o_index = sp.Strategy.sp_index;
    o_seed = sp.Strategy.sp_seed;
    o_spec = Strategy.describe sp;
    o_repro = Strategy.repro_flags sp;
    o_sightings = sightings_of c r;
    o_objects = r.Pipeline.racy_objects;
    o_fingerprint = fp ();
    o_hb_fingerprint = None;
    o_events = r.Pipeline.events;
    o_steps = r.Pipeline.steps;
    o_wall = r.Pipeline.wall_time;
  }

(* ---- happens-before replay pruning ----

   Under hb equivalence each run is fingerprinted first with the
   detector off (same instrumented program, so the same schedule —
   see Pipeline.run's [?detect]); the detector replays only schedules
   whose happens-before class is new to this process.  For a known
   class the representative's sightings are reused: equivalent
   schedules present identical per-location access orders and locksets
   to the detector, so its report is identical too — which is what
   keeps a pruned campaign's deduped races equal to an unpruned one's.

   The cache is best-effort and process-local (shards each start cold;
   workers may race to claim a class and both replay).  That only costs
   duplicate work, never changes a report: the authoritative
   pruned/class statistics are re-derived deterministically from the
   recorded hb fingerprints by the Aggregate fold. *)

type seen_classes = {
  sn_mu : Mutex.t;
  sn_tbl : (int, Aggregate.sighting list * string list) Hashtbl.t;
}

let seen_make () = { sn_mu = Mutex.create (); sn_tbl = Hashtbl.create 64 }

let seen_find seen hb =
  Mutex.lock seen.sn_mu;
  let v = Hashtbl.find_opt seen.sn_tbl hb in
  Mutex.unlock seen.sn_mu;
  v

let seen_store seen hb rep =
  Mutex.lock seen.sn_mu;
  if not (Hashtbl.mem seen.sn_tbl hb) then Hashtbl.add seen.sn_tbl hb rep;
  Mutex.unlock seen.sn_mu

let observe_run_hb (c : Pipeline.compiled) (sp : Strategy.run_spec) ~seen :
    Aggregate.run_obs =
  let vm = vm_of c sp in
  let raw_tap, raw_fp = fingerprint_tap () in
  let hb_tap, hb_fp = Hb_fingerprint.tap () in
  let r1 = Pipeline.run ~vm ~tap:(Sink.tee raw_tap hb_tap) ~detect:false c in
  let hb = hb_fp () in
  let sightings, objects, wall =
    match seen_find seen hb with
    | Some (sightings, objects) -> (sightings, objects, r1.Pipeline.wall_time)
    | None ->
        let r2 = Pipeline.run ~vm c in
        let sightings = sightings_of c r2 in
        let objects = r2.Pipeline.racy_objects in
        seen_store seen hb (sightings, objects);
        (sightings, objects, r1.Pipeline.wall_time +. r2.Pipeline.wall_time)
  in
  {
    Aggregate.o_index = sp.Strategy.sp_index;
    o_seed = sp.Strategy.sp_seed;
    o_spec = Strategy.describe sp;
    o_repro = Strategy.repro_flags sp;
    o_sightings = sightings;
    o_objects = objects;
    o_fingerprint = raw_fp ();
    o_hb_fingerprint = Some hb;
    o_events = r1.Pipeline.events;
    o_steps = r1.Pipeline.steps;
    o_wall = wall;
  }

(* ---- folding rows into a report ---- *)

let report_of_rows ?(wall = 0.) ?(deadline_hit = false) ?(apply_plateau = true)
    (sp : spec) rows : report =
  let plateau = if apply_plateau then sp.e_budget.b_plateau else None in
  let agg = Aggregate.create ?plateau ~hb:(sp.e_equiv = Hb) () in
  if deadline_hit then Aggregate.note_deadline agg;
  (* Fold in run-index order so first-seen attribution, the discovery
     curve and the plateau cutoff do not depend on worker interleaving
     or on how rows were distributed over shard files. *)
  List.sort
    (fun a b -> compare (Aggregate.row_index a) (Aggregate.row_index b))
    rows
  |> List.iter (Aggregate.add_row agg);
  {
    r_spec = sp;
    r_races = Aggregate.races agg;
    r_objects = Aggregate.object_rows agg;
    r_failures = Aggregate.failures agg;
    r_obs = Aggregate.observations agg;
    r_stats = Aggregate.stats agg;
    r_wall = wall;
  }

let merge sp rows = report_of_rows sp rows

(* Run indices the campaign's deterministic index range owns but [rows]
   do not cover — at merge time, evidence of an incomplete shard set.
   Compile failures carry index -1 (per-shard, outside the range) and
   are ignored. *)
let missing_indices (sp : spec) rows =
  let total =
    match Strategy.count sp.e_strategy with
    | Some n -> min n sp.e_budget.b_runs
    | None -> sp.e_budget.b_runs
  in
  let present = Hashtbl.create 64 in
  List.iter
    (fun row ->
      let i = Aggregate.row_index row in
      if i >= 0 then Hashtbl.replace present i ())
    rows;
  List.init total Fun.id |> List.filter (fun i -> not (Hashtbl.mem present i))

let rows_of_report r =
  List.sort
    (fun a b -> compare (Aggregate.row_index a) (Aggregate.row_index b))
    (List.map (fun o -> Aggregate.Run o) r.r_obs
    @ List.map (fun f -> Aggregate.Failed f) r.r_failures)

(* ---- the online plateau tracker ----

   The authoritative plateau cutoff is the Aggregate fold above (a
   deterministic function of the row sequence); this tracker only stops
   workers from *claiming* further runs once the window has visibly
   tripped.  It replays completions in claim-ordinal order through a
   reorder buffer, so its verdict matches the fold's for the runs it has
   seen; any overshoot rows the workers were already executing are
   discarded by the fold. *)

type tracker = {
  tk_window : int;
  tk_mu : Mutex.t;
  tk_seen : (Aggregate.race_key, unit) Hashtbl.t;
  tk_pending : (int, Aggregate.race_key list) Hashtbl.t;
  mutable tk_next : int;
  mutable tk_quiet : int;
  mutable tk_stop : bool;
}

let tracker_make window =
  {
    tk_window = window;
    tk_mu = Mutex.create ();
    tk_seen = Hashtbl.create 16;
    tk_pending = Hashtbl.create 16;
    tk_next = 0;
    tk_quiet = 0;
    tk_stop = false;
  }

let tracker_stopped = function None -> false | Some t -> t.tk_stop

let tracker_note tracker ordinal keys =
  match tracker with
  | None -> ()
  | Some t ->
      Mutex.lock t.tk_mu;
      Hashtbl.replace t.tk_pending ordinal keys;
      let rec drain () =
        match Hashtbl.find_opt t.tk_pending t.tk_next with
        | None -> ()
        | Some keys ->
            Hashtbl.remove t.tk_pending t.tk_next;
            t.tk_next <- t.tk_next + 1;
            let fresh =
              List.exists (fun k -> not (Hashtbl.mem t.tk_seen k)) keys
            in
            List.iter
              (fun k ->
                if not (Hashtbl.mem t.tk_seen k) then Hashtbl.add t.tk_seen k ())
              keys;
            if fresh then t.tk_quiet <- 0 else t.tk_quiet <- t.tk_quiet + 1;
            if t.tk_quiet >= t.tk_window then t.tk_stop <- true;
            drain ()
      in
      drain ();
      Mutex.unlock t.tk_mu

(* ---- the parallel campaign runner ---- *)

type worker_out = {
  w_obs : Aggregate.run_obs list;
  w_failures : Aggregate.failure list;
  w_ran : int;
}

let run_campaign ?shard (sp : spec) ~source : report =
  let shard_i, shard_n =
    match shard with
    | None -> (0, 1)
    | Some (i, n) ->
        if n < 1 || i < 0 || i >= n then
          invalid_arg (Printf.sprintf "Explore.run_campaign: shard %d/%d" i n);
        (i, n)
  in
  let b = sp.e_budget in
  let total_runs =
    match Strategy.count sp.e_strategy with
    | Some n -> min n b.b_runs
    | None -> b.b_runs
  in
  (* Shard i of n owns the run indices congruent to i mod n; the k-th
     claim from the shared counter maps to index i + k*n, so indices are
     a pure function of the spec and the shard, never of scheduling. *)
  let owned =
    if total_runs <= shard_i then 0
    else (total_runs - shard_i + shard_n - 1) / shard_n
  in
  let t0 = Unix.gettimeofday () in
  let deadline = Option.map (fun s -> t0 +. s) b.b_seconds in
  (* A shard sees only its own subsequence of the discovery curve, so a
     locally-armed plateau window would trip at a different point than
     the campaign-wide fold does (a shard whose indices happen to be
     quiet would stop and drop rows below the true cutoff while another
     shard keeps discovering).  In shard mode the window is therefore
     deferred entirely to merge time: the shard runs its full owned
     slice and emits every row, and the merge fold applies the plateau
     over the re-assembled index sequence. *)
  let local_plateau = if shard_n > 1 then None else b.b_plateau in
  let tracker = Option.map tracker_make local_plateau in
  (* The hb replay cache is shared across this process's workers (the
     table is mutex-protected; domains may still both replay a class
     they raced to claim — harmless, see observe_run_hb). *)
  let seen = match sp.e_equiv with Hb -> Some (seen_make ()) | Raw -> None in
  let next = Atomic.make 0 in
  (* Each worker compiles its own copy of the program (compilation
     mutates the IR in place during instrumentation, so domains must not
     share one) and claims run indices from the shared counter.  A
     failing run — VM Runtime_error, step-limit, anything — becomes a
     failure row; it never kills the worker, let alone the campaign. *)
  let worker () =
    match Pipeline.compile sp.e_config ~source with
    | exception e ->
        {
          w_obs = [];
          w_failures =
            [ { Aggregate.f_index = -1; f_seed = -1; f_error = Printexc.to_string e } ];
          w_ran = 0;
        }
    | compiled ->
        let observe =
          match seen with
          | Some seen -> fun rsp -> observe_run_hb compiled rsp ~seen
          | None -> observe_run compiled
        in
        let obs = ref [] and fails = ref [] in
        let expired () =
          match deadline with
          | Some d -> Unix.gettimeofday () > d
          | None -> false
        in
        let rec loop ran =
          if expired () || tracker_stopped tracker then ran
          else begin
            let k = Atomic.fetch_and_add next 1 in
            let i = shard_i + (k * shard_n) in
            if i >= total_runs then ran
            else begin
              let rsp =
                Strategy.spec sp.e_strategy ~base:sp.e_config
                  ~pct_horizon:sp.e_pct_horizon i
              in
              (match observe rsp with
              | o ->
                  obs := o :: !obs;
                  tracker_note tracker k
                    (List.map
                       (fun s -> s.Aggregate.s_key)
                       o.Aggregate.o_sightings)
              | exception e ->
                  fails :=
                    {
                      Aggregate.f_index = i;
                      f_seed = rsp.Strategy.sp_seed;
                      f_error = Printexc.to_string e;
                    }
                    :: !fails;
                  tracker_note tracker k []);
              loop (ran + 1)
            end
          end
        in
        let ran = loop 0 in
        { w_obs = !obs; w_failures = !fails; w_ran = ran }
  in
  let outs =
    if sp.e_workers <= 1 then [ worker () ]
    else
      let domains = List.init sp.e_workers (fun _ -> Domain.spawn worker) in
      List.map Domain.join domains
  in
  let wall = Unix.gettimeofday () -. t0 in
  let ran = List.fold_left (fun acc w -> acc + w.w_ran) 0 outs in
  (* If the clock cut the campaign short, say so — unless a plateau
     tripped, in which case the fold reports that instead. *)
  let deadline_hit = deadline <> None && ran < owned in
  let rows =
    List.concat_map
      (fun w ->
        List.map (fun o -> Aggregate.Run o) w.w_obs
        @ List.map (fun f -> Aggregate.Failed f) w.w_failures)
      outs
  in
  report_of_rows ~wall ~deadline_hit ~apply_plateau:(shard_n = 1) sp rows

(* ---- report rendering (shared by explore and merge so their output
   is byte-identical) ---- *)

let report_text ?(timing = true) ~target (r : report) =
  let b = Buffer.create 1024 in
  let pr fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let stats = r.r_stats in
  let strategy_name = Strategy.name r.r_spec.e_strategy in
  if timing then
    pr
      "explored %d schedules (%s, %d workers) in %.2fs: %.1f runs/s, %.0f \
       events/s/worker\n"
      stats.Aggregate.st_runs strategy_name r.r_spec.e_workers r.r_wall
      (runs_per_sec r)
      (events_per_sec_per_worker r)
  else pr "explored %d schedules (%s)\n" stats.Aggregate.st_runs strategy_name;
  pr "distinct interleaving fingerprints: %d/%d; events %d; steps %d\n"
    stats.Aggregate.st_distinct_fingerprints stats.Aggregate.st_runs
    stats.Aggregate.st_events stats.Aggregate.st_steps;
  if r.r_spec.e_equiv = Hb then
    pr
      "happens-before classes: %d; detector replays pruned: %d/%d (%.1f%%)\n"
      stats.Aggregate.st_equiv_classes stats.Aggregate.st_pruned_runs
      stats.Aggregate.st_runs
      (100.
      *. float_of_int stats.Aggregate.st_pruned_runs
      /. float_of_int (max stats.Aggregate.st_runs 1));
  (match stats.Aggregate.st_stop with
  | Aggregate.Exhausted -> ()
  | s -> pr "stopped early: %s\n" (Aggregate.describe_stop s));
  (match r.r_failures with
  | [] -> ()
  | fs ->
      pr "\n%d runs failed:\n" (List.length fs);
      List.iter
        (fun (f : Aggregate.failure) ->
          pr "  run %d (seed %d): %s\n" f.Aggregate.f_index f.Aggregate.f_seed
            f.Aggregate.f_error)
        fs);
  if r.r_races = [] then pr "\nNo dataraces detected in any schedule.\n"
  else begin
    pr "\nDeduped races (%d):\n" (List.length r.r_races);
    List.iter
      (fun (d : Aggregate.deduped) ->
        pr "  %4d/%d  %s%s\n" d.Aggregate.d_count stats.Aggregate.st_runs
          (Fmt.str "%a" Aggregate.pp_key d.Aggregate.d_key)
          (if d.Aggregate.d_kinds = "" then ""
           else " (" ^ d.Aggregate.d_kinds ^ ")");
        pr "          first seen in run %d (%s)\n" d.Aggregate.d_first_index
          d.Aggregate.d_first_spec;
        pr "          reproduce: racedet run %s -c %s %s\n" target
          r.r_spec.e_config.Config.name d.Aggregate.d_first_repro)
      r.r_races;
    match stats.Aggregate.st_discovery with
    | [] | [ _ ] -> ()
    | ds ->
        pr "\nnew-race discovery (run -> cumulative): %s\n"
          (String.concat ", "
             (List.map (fun (i, n) -> Printf.sprintf "%d->%d" i n) ds))
  end;
  Buffer.contents b

let report_json ?(timing = true) (r : report) =
  let stats = r.r_stats in
  let races =
    List.map
      (fun (d : Aggregate.deduped) ->
        Wire.Obj
          [
            ("object", Wire.String d.Aggregate.d_key.Aggregate.k_object);
            ("site_a", Wire.String d.Aggregate.d_key.Aggregate.k_site_a);
            ("site_b", Wire.String d.Aggregate.d_key.Aggregate.k_site_b);
            ("kinds", Wire.String d.Aggregate.d_kinds);
            ("runs_reporting", Wire.Int d.Aggregate.d_count);
            ("first_run", Wire.Int d.Aggregate.d_first_index);
            ("first_seed", Wire.Int d.Aggregate.d_first_seed);
            ("first_schedule", Wire.String d.Aggregate.d_first_spec);
            ("repro_flags", Wire.String d.Aggregate.d_first_repro);
          ])
      r.r_races
  in
  let failures =
    List.map
      (fun (f : Aggregate.failure) ->
        Wire.Obj
          [
            ("run", Wire.Int f.Aggregate.f_index);
            ("seed", Wire.Int f.Aggregate.f_seed);
            ("error", Wire.String f.Aggregate.f_error);
          ])
      r.r_failures
  in
  let discovery =
    List.map
      (fun (i, n) -> Wire.List [ Wire.Int i; Wire.Int n ])
      stats.Aggregate.st_discovery
  in
  let timing_fields =
    if not timing then []
    else
      [
        ("workers", Wire.Int r.r_spec.e_workers);
        ("wall_s", Wire.Float r.r_wall);
        ("runs_per_sec", Wire.Float (runs_per_sec r));
        ("events_per_sec", Wire.Float (events_per_sec r));
        ("events_per_sec_per_worker", Wire.Float (events_per_sec_per_worker r));
      ]
  in
  Wire.json_to_string
    (Wire.Obj
       ([
          ("strategy", Wire.String (Strategy.name r.r_spec.e_strategy));
          ("runs", Wire.Int stats.Aggregate.st_runs);
          ("failures", Wire.List failures);
          ("distinct_races", Wire.Int stats.Aggregate.st_distinct_races);
          ( "distinct_fingerprints",
            Wire.Int stats.Aggregate.st_distinct_fingerprints );
          ("equiv", Wire.String (equiv_name r.r_spec.e_equiv));
          ("equiv_classes", Wire.Int stats.Aggregate.st_equiv_classes);
          ("pruned_runs", Wire.Int stats.Aggregate.st_pruned_runs);
          ( "pruned_rate",
            Wire.Float
              (float_of_int stats.Aggregate.st_pruned_runs
              /. float_of_int (max stats.Aggregate.st_runs 1)) );
          ("events", Wire.Int stats.Aggregate.st_events);
          ("steps", Wire.Int stats.Aggregate.st_steps);
          ("stop", Wire.String (Aggregate.describe_stop stats.Aggregate.st_stop));
        ]
       @ timing_fields
       @ [ ("discovery", Wire.List discovery); ("races", Wire.List races) ]))

(* ---- wire re-exports ---- *)

let spec_to_json = Wire.spec_to_json
let spec_of_json = Wire.spec_of_json
let target_of_json = Wire.target_of_json
let obs_to_json = Wire.obs_to_json
let obs_of_json = Wire.obs_of_json
let failure_to_json = Wire.failure_to_json
let failure_of_json = Wire.failure_of_json
let row_to_json = Wire.row_to_json
let row_of_json = Wire.row_of_json
let row_of_line = Wire.row_of_line
let write_obs_channel = Wire.write_obs_channel
let read_obs_channel = Wire.read_obs_channel
let fold_obs_channel = Wire.fold_obs_channel

(* ---- the legacy seed sweep, rebased on the engine ---- *)

type sweep_result = {
  sw_objects : (string * int) list;
  sw_failures : (int * string) list;
}

let sweep ?(workers = 1) (config : Config.t) ~source ~seeds : sweep_result =
  let seeds = Array.of_list seeds in
  let sp =
    Campaign.spec
      ~strategy:(Strategy.Seeds seeds)
      ~workers
      ~budget:(runs_budget (Array.length seeds))
      config
  in
  let r = run_campaign sp ~source in
  {
    sw_objects = r.r_objects;
    sw_failures =
      List.map
        (fun (f : Aggregate.failure) ->
          (f.Aggregate.f_seed, f.Aggregate.f_error))
        r.r_failures;
  }
