module Pipeline = Drd_harness.Pipeline
module Config = Drd_harness.Config
module Interp = Drd_vm.Interp
module Sink = Drd_vm.Sink
module Memloc = Drd_vm.Memloc
module Site_table = Drd_ir.Site_table
module Ir = Drd_ir.Ir
open Drd_core

(* ---- the campaign description (re-exported from Campaign) ---- *)

type budget = Campaign.budget = {
  b_runs : int;
  b_seconds : float option;
  b_plateau : int option;
}

let budget = Campaign.budget
let runs_budget = Campaign.runs_budget
let equal_budget = Campaign.equal_budget
let pp_budget = Campaign.pp_budget

type equiv = Campaign.equiv = Raw | Hb

let equiv_name = Campaign.equiv_name
let equiv_of_string = Campaign.equiv_of_string

type spec = Campaign.spec = {
  e_config : Config.t;
  e_strategy : Strategy.t;
  e_workers : int;
  e_budget : budget;
  e_pct_horizon : int;
  e_equiv : equiv;
}

let spec = Campaign.spec
let default_spec = Campaign.default_spec
let equal_spec = Campaign.equal_spec
let compatible = Campaign.compatible
let pp_spec = Campaign.pp_spec

type report = {
  r_spec : spec;
  r_races : Aggregate.deduped list;
  r_objects : (string * int) list;
  r_failures : Aggregate.failure list;
  r_obs : Aggregate.run_obs list;
  r_stats : Aggregate.stats;
  r_wall : float; (* campaign wall clock, compiles included *)
}

let runs_per_sec r =
  float_of_int r.r_stats.Aggregate.st_runs /. Float.max r.r_wall 1e-9

let events_per_sec r =
  float_of_int r.r_stats.Aggregate.st_events /. Float.max r.r_wall 1e-9

let events_per_sec_per_worker r =
  events_per_sec r /. float_of_int (max r.r_spec.e_workers 1)

(* ---- single run ---- *)

(* A raw interleaving fingerprint: an order-sensitive FNV-1a-style hash
   of the event stream (thread, location, kind per access, plus lock and
   lifecycle transitions).  Two runs with the same fingerprint consumed
   the same detector-visible schedule.  The constants — and the 46-bit
   wire-int-safety rationale for the mask — live in Hb_fingerprint,
   shared with the happens-before tap. *)
let fingerprint_tap () =
  let fp = ref Hb_fingerprint.fnv_offset in
  let mixin v = fp := Hb_fingerprint.mix !fp v in
  let tap =
    {
      Sink.null with
      Sink.access =
        (fun ~tid ~loc ~kind ~locks:_ ~site:_ ->
          mixin tid;
          mixin loc;
          mixin (match kind with Event.Read -> 17 | Event.Write -> 23));
      acquire =
        (fun ~tid ~lock ->
          mixin (tid + 101);
          mixin lock);
      release =
        (fun ~tid ~lock ->
          mixin (tid + 211);
          mixin lock);
      thread_start = (fun ~parent ~child -> mixin ((parent * 31) + child));
    }
  in
  (tap, fun () -> !fp)

(* Constant strings: this runs once per sighting per run in the
   campaign hot loop, so no formatting machinery. *)
let kinds_of (race : Report.race) =
  match (race.Report.current.Event.kind, race.Report.prior.Trie.p_kind) with
  | Event.Read, Event.Read -> "read vs read"
  | Event.Read, Event.Write -> "read vs write"
  | Event.Write, Event.Read -> "write vs read"
  | Event.Write, Event.Write -> "write vs write"

let site_name (c : Pipeline.compiled) s =
  if s < 0 || s >= Site_table.count c.Pipeline.prog.Ir.p_sites then "<unknown>"
  else Site_table.name c.Pipeline.prog.Ir.p_sites s

let sightings_of (c : Pipeline.compiled) (r : Pipeline.result) =
  match r.Pipeline.report with
  | Some coll ->
      List.map
        (fun (race : Report.race) ->
          let obj =
            Memloc.describe c.Pipeline.prog.Ir.p_tprog r.Pipeline.heap
              race.Report.loc
          in
          {
            Aggregate.s_key =
              Aggregate.key ~obj
                ~site_a:(site_name c race.Report.current.Event.site)
                ~site_b:(site_name c race.Report.prior.Trie.p_site);
            s_kinds = kinds_of race;
          })
        (Report.races coll)
  | None ->
      (* Baseline detectors report locations only. *)
      List.map
        (fun loc ->
          {
            Aggregate.s_key = Aggregate.key ~obj:loc ~site_a:"" ~site_b:"";
            s_kinds = "";
          })
        r.Pipeline.races

let vm_of (c : Pipeline.compiled) (sp : Strategy.run_spec) =
  {
    (Pipeline.vm_config_of c.Pipeline.config) with
    Interp.seed = sp.Strategy.sp_seed;
    quantum = sp.Strategy.sp_quantum;
    policy = sp.Strategy.sp_policy;
  }

let observe_run ?ctx (c : Pipeline.compiled) (sp : Strategy.run_spec) :
    Aggregate.run_obs =
  let vm = vm_of c sp in
  let tap, fp = fingerprint_tap () in
  let r = Pipeline.run ?ctx ~vm ~tap c in
  {
    Aggregate.o_index = sp.Strategy.sp_index;
    o_seed = sp.Strategy.sp_seed;
    o_spec = Strategy.describe sp;
    o_repro = Strategy.repro_flags sp;
    o_sightings = sightings_of c r;
    o_objects = r.Pipeline.racy_objects;
    o_fingerprint = fp ();
    o_hb_fingerprint = None;
    o_events = r.Pipeline.events;
    o_steps = r.Pipeline.steps;
    o_wall = r.Pipeline.wall_time;
  }

(* ---- happens-before replay pruning ----

   Under hb equivalence each run is fingerprinted first with the
   detector off (same instrumented program, so the same schedule —
   see Pipeline.run's [?detect]); the detector replays only schedules
   whose happens-before class is new to this process.  For a known
   class the representative's sightings are reused: equivalent
   schedules present identical per-location access orders and locksets
   to the detector, so its report is identical too — which is what
   keeps a pruned campaign's deduped races equal to an unpruned one's.

   The cache is best-effort, and each pool worker keeps a {e
   domain-local} shard of it — lookups and stores in the run hot loop
   touch no lock at all.  Workers trade discoveries through a shared
   append-only journal at batch boundaries ({!seen_sync}: one critical
   section per claimed chunk), so a class replayed by one worker is
   pruned by the others a chunk later.  Two workers can still replay a
   class they discovered concurrently, and shards each start cold.
   That only costs duplicate work, never changes a report: equivalent
   schedules produce identical sightings, and the authoritative
   pruned/class statistics are re-derived deterministically from the
   recorded hb fingerprints by the Aggregate fold. *)

type seen_rep = Aggregate.sighting list * string list

type seen_classes = {
  sn_tbl : (int, seen_rep) Hashtbl.t; (* domain-local: lock-free *)
  mutable sn_fresh : (int * seen_rep) list;
      (* locally discovered since the last sync, newest first *)
  mutable sn_cursor : int; (* journal read position *)
}

let seen_make () =
  { sn_tbl = Hashtbl.create 64; sn_fresh = []; sn_cursor = 0 }

(* Batch-boundary exchange: publish local discoveries, absorb foreign
   ones.  The cursor lands past our own entries, so nothing is read
   back. *)
let seen_sync journal seen =
  let publish = List.rev seen.sn_fresh in
  seen.sn_fresh <- [];
  let news, cursor = Pool.exchange journal ~cursor:seen.sn_cursor ~publish in
  seen.sn_cursor <- cursor;
  List.iter
    (fun (hb, rep) ->
      if not (Hashtbl.mem seen.sn_tbl hb) then Hashtbl.add seen.sn_tbl hb rep)
    news

let observe_run_hb ?ctx (c : Pipeline.compiled) (sp : Strategy.run_spec) ~seen :
    Aggregate.run_obs =
  let vm = vm_of c sp in
  let raw_tap, raw_fp = fingerprint_tap () in
  let hb_tap, hb_fp = Hb_fingerprint.tap () in
  let r1 =
    Pipeline.run ?ctx ~vm ~tap:(Sink.tee raw_tap hb_tap) ~detect:false c
  in
  let hb = hb_fp () in
  let sightings, objects, wall =
    match Hashtbl.find_opt seen.sn_tbl hb with
    | Some (sightings, objects) -> (sightings, objects, r1.Pipeline.wall_time)
    | None ->
        let r2 = Pipeline.run ?ctx ~vm c in
        let sightings = sightings_of c r2 in
        let objects = r2.Pipeline.racy_objects in
        Hashtbl.add seen.sn_tbl hb (sightings, objects);
        seen.sn_fresh <- (hb, (sightings, objects)) :: seen.sn_fresh;
        (sightings, objects, r1.Pipeline.wall_time +. r2.Pipeline.wall_time)
  in
  {
    Aggregate.o_index = sp.Strategy.sp_index;
    o_seed = sp.Strategy.sp_seed;
    o_spec = Strategy.describe sp;
    o_repro = Strategy.repro_flags sp;
    o_sightings = sightings;
    o_objects = objects;
    o_fingerprint = raw_fp ();
    o_hb_fingerprint = Some hb;
    o_events = r1.Pipeline.events;
    o_steps = r1.Pipeline.steps;
    o_wall = wall;
  }

(* ---- folding rows into a report ---- *)

let report_of_rows ?(wall = 0.) ?(deadline_hit = false) ?(apply_plateau = true)
    (sp : spec) rows : report =
  let plateau = if apply_plateau then sp.e_budget.b_plateau else None in
  let agg = Aggregate.create ?plateau ~hb:(sp.e_equiv = Hb) () in
  if deadline_hit then Aggregate.note_deadline agg;
  (* Folded in run-index order (add_rows sorts) so first-seen
     attribution, the discovery curve and the plateau cutoff do not
     depend on worker interleaving or on how rows were distributed over
     shard files. *)
  Aggregate.add_rows agg rows;
  {
    r_spec = sp;
    r_races = Aggregate.races agg;
    r_objects = Aggregate.object_rows agg;
    r_failures = Aggregate.failures agg;
    r_obs = Aggregate.observations agg;
    r_stats = Aggregate.stats agg;
    r_wall = wall;
  }

let merge sp rows = report_of_rows sp rows

(* Run indices the campaign's deterministic index range owns but [rows]
   do not cover — at merge time, evidence of an incomplete shard set.
   Negative indices (out-of-range markers from older recorders) are
   ignored. *)
let missing_indices (sp : spec) rows =
  let total =
    match Strategy.count sp.e_strategy with
    | Some n -> min n sp.e_budget.b_runs
    | None -> sp.e_budget.b_runs
  in
  let present = Hashtbl.create 64 in
  List.iter
    (fun row ->
      let i = Aggregate.row_index row in
      if i >= 0 then Hashtbl.replace present i ())
    rows;
  List.init total Fun.id |> List.filter (fun i -> not (Hashtbl.mem present i))

let rows_of_report r =
  List.sort
    (fun a b -> compare (Aggregate.row_index a) (Aggregate.row_index b))
    (List.map (fun o -> Aggregate.Run o) r.r_obs
    @ List.map (fun f -> Aggregate.Failed f) r.r_failures)

(* ---- the online plateau tracker ----

   The authoritative plateau cutoff is the Aggregate fold above (a
   deterministic function of the row sequence); this tracker only stops
   workers from *claiming* further chunks once the window has visibly
   tripped.  It replays completions in claim-ordinal order through a
   reorder buffer — one note per completed chunk, carrying the race-key
   list of each run in the chunk, so the quiet window still advances
   per run.  Its verdict matches the fold's for the runs it has seen;
   any overshoot rows the workers were already executing (up to a chunk
   per worker) are discarded by the fold.  A chunk abandoned mid-flight
   (deadline, or the stop flag tripping) is never noted — safe, because
   a worker only abandons after the stop decision is already made, at
   which point the reorder buffer has no further job. *)

type tracker = {
  tk_window : int;
  tk_mu : Mutex.t;
  tk_seen : (Aggregate.race_key, unit) Hashtbl.t;
  tk_pending : (int, Aggregate.race_key list list) Hashtbl.t;
  mutable tk_next : int;
  mutable tk_quiet : int;
  mutable tk_stop : bool;
}

let tracker_make window =
  {
    tk_window = window;
    tk_mu = Mutex.create ();
    tk_seen = Hashtbl.create 16;
    tk_pending = Hashtbl.create 16;
    tk_next = 0;
    tk_quiet = 0;
    tk_stop = false;
  }

let tracker_stopped = function None -> false | Some t -> t.tk_stop

(* [run_keys] holds one race-key list per run of chunk [ordinal], in
   run order. *)
let tracker_note tracker ordinal run_keys =
  match tracker with
  | None -> ()
  | Some t ->
      Mutex.lock t.tk_mu;
      Hashtbl.replace t.tk_pending ordinal run_keys;
      let note_run keys =
        let fresh =
          List.exists (fun k -> not (Hashtbl.mem t.tk_seen k)) keys
        in
        List.iter
          (fun k ->
            if not (Hashtbl.mem t.tk_seen k) then Hashtbl.add t.tk_seen k ())
          keys;
        if fresh then t.tk_quiet <- 0 else t.tk_quiet <- t.tk_quiet + 1;
        if t.tk_quiet >= t.tk_window then t.tk_stop <- true
      in
      let rec drain () =
        match Hashtbl.find_opt t.tk_pending t.tk_next with
        | None -> ()
        | Some runs ->
            Hashtbl.remove t.tk_pending t.tk_next;
            t.tk_next <- t.tk_next + 1;
            List.iter note_run runs;
            drain ()
      in
      drain ();
      Mutex.unlock t.tk_mu

(* ---- the parallel campaign runner ----

   Executed on a persistent worker-domain pool (Pool): domains are
   spawned once for the whole campaign (the calling domain is worker 0),
   claim *chunks* of work ordinals from a batched queue — one atomic per
   chunk instead of one per run — and hand each completed chunk back as
   pre-serialized wire rows through a single-producer outbox.  The
   aggregate fold runs after the pool quiesces and never contends with
   workers; it re-sorts rows by run index, so neither the batch size nor
   any claim interleaving can reach a report.

   Every worker count takes the same serialize→decode path (worker 0
   included), so single-worker and multi-worker campaigns agree
   byte-for-byte by construction, not by luck: the wire codec's
   round-trip identity is golden-tested, and everything downstream of
   it sees identical rows. *)

(* How much heavier major-GC pacing to allow while a multi-domain pool
   runs (Gc.space_overhead, default 120).  Campaign runs allocate in
   bursts — each builds and drops a detector and a VM heap — and in
   OCaml 5 every domain's minor collection is a stop-the-world handshake
   over all of them; lazier pacing buys fewer synchronized collections
   for a bounded memory cost.  Throughput-only: reports cannot see it. *)
let pool_gc_space_overhead = 240

let run_campaign ?shard ?batch ?(reuse_ctx = true) (sp : spec) ~source : report
    =
  let shard_i, shard_n =
    match shard with
    | None -> (0, 1)
    | Some (i, n) ->
        if n < 1 || i < 0 || i >= n then
          invalid_arg (Printf.sprintf "Explore.run_campaign: shard %d/%d" i n);
        (i, n)
  in
  let b = sp.e_budget in
  let total_runs =
    match Strategy.count sp.e_strategy with
    | Some n -> min n b.b_runs
    | None -> b.b_runs
  in
  (* Shard i of n owns the run indices congruent to i mod n; work
     ordinal k maps to index i + k*n, so indices are a pure function of
     the spec and the shard, never of scheduling. *)
  let owned = Campaign.owned_count ~shard_i ~shard_n ~total:total_runs in
  let workers = max 1 (min sp.e_workers owned) in
  let batch =
    match batch with
    | Some b when b >= 1 -> b
    | Some b -> invalid_arg (Printf.sprintf "Explore.run_campaign: batch %d" b)
    | None -> Pool.default_batch ~workers ~total:owned
  in
  let t0 = Unix.gettimeofday () in
  let deadline = Option.map (fun s -> t0 +. s) b.b_seconds in
  (* A shard sees only its own subsequence of the discovery curve, so a
     locally-armed plateau window would trip at a different point than
     the campaign-wide fold does (a shard whose indices happen to be
     quiet would stop and drop rows below the true cutoff while another
     shard keeps discovering).  In shard mode the window is therefore
     deferred entirely to merge time: the shard runs its full owned
     slice and emits every row, and the merge fold applies the plateau
     over the re-assembled index sequence. *)
  let local_plateau = if shard_n > 1 then None else b.b_plateau in
  let tracker = Option.map tracker_make local_plateau in
  let hb_journal =
    match sp.e_equiv with Hb -> Some (Pool.journal ()) | Raw -> None
  in
  (* Compile once up front on the calling domain: a source that does not
     compile fails the same way on every domain, so the campaign fails
     fast — Pipeline.Compile_error propagates to the caller — and the
     pool never starts.  Worker 0 (the calling domain) reuses this
     compiled program; other workers compile their own copy on their own
     domain, per the compile-once-per-domain contract (instrumentation
     and linking mutate the IR in place; a compiled must not cross
     domains). *)
  let compiled0 = Pipeline.compile sp.e_config ~source in
  let queue = Pool.queue ~batch ~total:owned in
  let outboxes = Array.init workers (fun _ -> Pool.outbox ()) in
  let expired () =
    match deadline with
    | Some d -> Unix.gettimeofday () > d
    | None -> false
  in
  (* The per-domain worker: claim a chunk, run its schedules, serialize
     each row into a reusable scratch buffer, push the chunk's rows in
     one outbox touch, note the tracker once, sync the hb shard once.  A
     failing run — VM Runtime_error, step limit, anything — becomes a
     failure row; it never kills the worker, let alone the campaign. *)
  let worker_body ~worker:w =
    let compiled =
      if w = 0 then compiled0 else Pipeline.compile sp.e_config ~source
    in
    let seen = match sp.e_equiv with Hb -> Some (seen_make ()) | Raw -> None in
    (* One run context per worker domain, alive for the whole campaign:
       the hot loop resets state in place instead of re-allocating a
       detector and a VM heap per run.  Reports are byte-identical
       either way ([--no-ctx-reuse] exists to demonstrate exactly
       that). *)
    let ctx =
      if reuse_ctx then Some (Pipeline.Run_ctx.create compiled) else None
    in
    let observe =
      match seen with
      | Some seen -> fun rsp -> observe_run_hb ?ctx compiled rsp ~seen
      | None -> fun rsp -> observe_run ?ctx compiled rsp
    in
    let scratch = Buffer.create 1024 in
    let outbox = outboxes.(w) in
    let ran = ref 0 in
    let stop () = tracker_stopped tracker || expired () in
    let rec chunk_loop () =
      if not (stop ()) then
        match Pool.claim queue with
        | None -> ()
        | Some ch ->
            let rsps =
              Strategy.specs sp.e_strategy ~base:sp.e_config
                ~pct_horizon:sp.e_pct_horizon
                ~first:(Campaign.shard_index ~shard_i ~shard_n ch.Pool.c_first)
                ~stride:shard_n ~count:ch.Pool.c_count
            in
            let rows = ref [] and run_keys = ref [] in
            let abandoned = ref false in
            List.iter
              (fun (rsp : Strategy.run_spec) ->
                if not !abandoned then
                  if stop () then abandoned := true
                  else begin
                    let row, keys =
                      match observe rsp with
                      | o ->
                          ( Aggregate.Run o,
                            List.map
                              (fun s -> s.Aggregate.s_key)
                              o.Aggregate.o_sightings )
                      | exception e ->
                          ( Aggregate.Failed
                              {
                                Aggregate.f_index = rsp.Strategy.sp_index;
                                f_seed = rsp.Strategy.sp_seed;
                                f_error = Printexc.to_string e;
                              },
                            [] )
                    in
                    incr ran;
                    Buffer.clear scratch;
                    Wire.row_to_buffer scratch row;
                    rows := Buffer.contents scratch :: !rows;
                    run_keys := keys :: !run_keys
                  end)
              rsps;
            if !rows <> [] then Pool.push outbox (List.rev !rows);
            (* An abandoned chunk is incomplete: noting it would feed
               the reorder buffer a hole's worth of wrong run counts.
               Abandonment only happens after the stop decision, so the
               tracker has nothing left to decide. *)
            if not !abandoned then
              tracker_note tracker ch.Pool.c_ordinal (List.rev !run_keys);
            (match (seen, hb_journal) with
            | Some seen, Some journal -> seen_sync journal seen
            | _ -> ());
            chunk_loop ()
    in
    chunk_loop ();
    !ran
  in
  let rans =
    Pool.run
      ?gc_space_overhead:(if workers > 1 then Some pool_gc_space_overhead else None)
      ~workers worker_body
  in
  let wall = Unix.gettimeofday () -. t0 in
  let ran = List.fold_left ( + ) 0 rans in
  (* If the clock cut the campaign short, say so — unless a plateau
     tripped, in which case the fold reports that instead. *)
  let deadline_hit = deadline <> None && ran < owned in
  let rows =
    Array.to_list outboxes
    |> List.concat_map Pool.drain
    |> List.concat
    |> List.map (fun line ->
           match Wire.row_of_json line with
           | Ok row -> row
           | Error m ->
               (* Rows were serialized by this very build one chunk ago;
                  a decode failure is a wire-codec bug, not a data
                  error. *)
               failwith ("internal: campaign row round-trip failed: " ^ m))
  in
  report_of_rows ~wall ~deadline_hit ~apply_plateau:(shard_n = 1) sp rows

(* ---- report rendering (shared by explore and merge so their output
   is byte-identical) ---- *)

let report_text ?(timing = true) ~target (r : report) =
  let b = Buffer.create 1024 in
  let pr fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let stats = r.r_stats in
  let strategy_name = Strategy.name r.r_spec.e_strategy in
  if timing then
    pr
      "explored %d schedules (%s, %d workers) in %.2fs: %.1f runs/s, %.0f \
       events/s/worker\n"
      stats.Aggregate.st_runs strategy_name r.r_spec.e_workers r.r_wall
      (runs_per_sec r)
      (events_per_sec_per_worker r)
  else pr "explored %d schedules (%s)\n" stats.Aggregate.st_runs strategy_name;
  pr "distinct interleaving fingerprints: %d/%d; events %d; steps %d\n"
    stats.Aggregate.st_distinct_fingerprints stats.Aggregate.st_runs
    stats.Aggregate.st_events stats.Aggregate.st_steps;
  if r.r_spec.e_equiv = Hb then
    pr
      "happens-before classes: %d; detector replays pruned: %d/%d (%.1f%%)\n"
      stats.Aggregate.st_equiv_classes stats.Aggregate.st_pruned_runs
      stats.Aggregate.st_runs
      (100.
      *. float_of_int stats.Aggregate.st_pruned_runs
      /. float_of_int (max stats.Aggregate.st_runs 1));
  (match stats.Aggregate.st_stop with
  | Aggregate.Exhausted -> ()
  | s -> pr "stopped early: %s\n" (Aggregate.describe_stop s));
  (match r.r_failures with
  | [] -> ()
  | fs ->
      pr "\n%d runs failed:\n" (List.length fs);
      List.iter
        (fun (f : Aggregate.failure) ->
          pr "  run %d (seed %d): %s\n" f.Aggregate.f_index f.Aggregate.f_seed
            f.Aggregate.f_error)
        fs);
  if r.r_races = [] then pr "\nNo dataraces detected in any schedule.\n"
  else begin
    pr "\nDeduped races (%d):\n" (List.length r.r_races);
    List.iter
      (fun (d : Aggregate.deduped) ->
        pr "  %4d/%d  %s%s\n" d.Aggregate.d_count stats.Aggregate.st_runs
          (Fmt.str "%a" Aggregate.pp_key d.Aggregate.d_key)
          (if d.Aggregate.d_kinds = "" then ""
           else " (" ^ d.Aggregate.d_kinds ^ ")");
        pr "          first seen in run %d (%s)\n" d.Aggregate.d_first_index
          d.Aggregate.d_first_spec;
        pr "          reproduce: racedet run %s -c %s %s\n" target
          r.r_spec.e_config.Config.name d.Aggregate.d_first_repro)
      r.r_races;
    match stats.Aggregate.st_discovery with
    | [] | [ _ ] -> ()
    | ds ->
        pr "\nnew-race discovery (run -> cumulative): %s\n"
          (String.concat ", "
             (List.map (fun (i, n) -> Printf.sprintf "%d->%d" i n) ds))
  end;
  Buffer.contents b

let report_json ?(timing = true) (r : report) =
  let stats = r.r_stats in
  let races =
    List.map
      (fun (d : Aggregate.deduped) ->
        Wire.Obj
          [
            ("object", Wire.String d.Aggregate.d_key.Aggregate.k_object);
            ("site_a", Wire.String d.Aggregate.d_key.Aggregate.k_site_a);
            ("site_b", Wire.String d.Aggregate.d_key.Aggregate.k_site_b);
            ("kinds", Wire.String d.Aggregate.d_kinds);
            ("runs_reporting", Wire.Int d.Aggregate.d_count);
            ("first_run", Wire.Int d.Aggregate.d_first_index);
            ("first_seed", Wire.Int d.Aggregate.d_first_seed);
            ("first_schedule", Wire.String d.Aggregate.d_first_spec);
            ("repro_flags", Wire.String d.Aggregate.d_first_repro);
          ])
      r.r_races
  in
  let failures =
    List.map
      (fun (f : Aggregate.failure) ->
        Wire.Obj
          [
            ("run", Wire.Int f.Aggregate.f_index);
            ("seed", Wire.Int f.Aggregate.f_seed);
            ("error", Wire.String f.Aggregate.f_error);
          ])
      r.r_failures
  in
  let discovery =
    List.map
      (fun (i, n) -> Wire.List [ Wire.Int i; Wire.Int n ])
      stats.Aggregate.st_discovery
  in
  let timing_fields =
    if not timing then []
    else
      [
        ("workers", Wire.Int r.r_spec.e_workers);
        ("wall_s", Wire.Float r.r_wall);
        ("runs_per_sec", Wire.Float (runs_per_sec r));
        ("events_per_sec", Wire.Float (events_per_sec r));
        ("events_per_sec_per_worker", Wire.Float (events_per_sec_per_worker r));
      ]
  in
  Wire.json_to_string
    (Wire.Obj
       ([
          ("strategy", Wire.String (Strategy.name r.r_spec.e_strategy));
          ("runs", Wire.Int stats.Aggregate.st_runs);
          ("failures", Wire.List failures);
          ("distinct_races", Wire.Int stats.Aggregate.st_distinct_races);
          ( "distinct_fingerprints",
            Wire.Int stats.Aggregate.st_distinct_fingerprints );
          ("equiv", Wire.String (equiv_name r.r_spec.e_equiv));
          ("equiv_classes", Wire.Int stats.Aggregate.st_equiv_classes);
          ("pruned_runs", Wire.Int stats.Aggregate.st_pruned_runs);
          ( "pruned_rate",
            Wire.Float
              (float_of_int stats.Aggregate.st_pruned_runs
              /. float_of_int (max stats.Aggregate.st_runs 1)) );
          ("events", Wire.Int stats.Aggregate.st_events);
          ("steps", Wire.Int stats.Aggregate.st_steps);
          ("stop", Wire.String (Aggregate.describe_stop stats.Aggregate.st_stop));
        ]
       @ timing_fields
       @ [ ("discovery", Wire.List discovery); ("races", Wire.List races) ]))

(* ---- wire re-exports ---- *)

let spec_to_json = Wire.spec_to_json
let spec_of_json = Wire.spec_of_json
let target_of_json = Wire.target_of_json
let obs_to_json = Wire.obs_to_json
let obs_of_json = Wire.obs_of_json
let failure_to_json = Wire.failure_to_json
let failure_of_json = Wire.failure_of_json
let row_to_json = Wire.row_to_json
let row_of_json = Wire.row_of_json
let row_of_line = Wire.row_of_line
let write_obs_channel = Wire.write_obs_channel
let read_obs_channel = Wire.read_obs_channel
let fold_obs_channel = Wire.fold_obs_channel

(* ---- the legacy seed sweep, rebased on the engine ---- *)

type sweep_result = {
  sw_objects : (string * int) list;
  sw_failures : (int * string) list;
}

let sweep ?(workers = 1) (config : Config.t) ~source ~seeds : sweep_result =
  let seeds = Array.of_list seeds in
  let sp =
    Campaign.spec
      ~strategy:(Strategy.Seeds seeds)
      ~workers
      ~budget:(runs_budget (Array.length seeds))
      config
  in
  let r = run_campaign sp ~source in
  {
    sw_objects = r.r_objects;
    sw_failures =
      List.map
        (fun (f : Aggregate.failure) ->
          (f.Aggregate.f_seed, f.Aggregate.f_error))
        r.r_failures;
  }
