module Pipeline = Drd_harness.Pipeline
module Config = Drd_harness.Config
module Interp = Drd_vm.Interp
module Sink = Drd_vm.Sink
module Memloc = Drd_vm.Memloc
module Site_table = Drd_ir.Site_table
module Ir = Drd_ir.Ir
open Drd_core

type budget = {
  b_runs : int;
  b_seconds : float option;
}

let runs_budget n = { b_runs = n; b_seconds = None }

type spec = {
  e_config : Config.t;
  e_strategy : Strategy.t;
  e_workers : int;
  e_budget : budget;
  e_pct_horizon : int;
}

let default_spec config =
  {
    e_config = config;
    e_strategy = Strategy.Jitter;
    e_workers = 1;
    e_budget = runs_budget 32;
    e_pct_horizon = 20_000;
  }

type report = {
  r_spec : spec;
  r_races : Aggregate.deduped list;
  r_objects : (string * int) list;
  r_failures : Aggregate.failure list;
  r_stats : Aggregate.stats;
  r_wall : float; (* campaign wall clock, compiles included *)
}

let runs_per_sec r =
  float_of_int r.r_stats.Aggregate.st_runs /. Float.max r.r_wall 1e-9

let events_per_sec r =
  float_of_int r.r_stats.Aggregate.st_events /. Float.max r.r_wall 1e-9

let events_per_sec_per_worker r =
  events_per_sec r /. float_of_int (max r.r_spec.e_workers 1)

(* ---- single run ---- *)

(* An interleaving fingerprint: an order-sensitive FNV-1a-style hash of
   the event stream (thread, location, kind per access, plus lock and
   lifecycle transitions).  Two runs with the same fingerprint consumed
   the same detector-visible schedule. *)
let fingerprint_tap () =
  let fp = ref 0x811C9DC5 in
  let mixin v = fp := ((!fp lxor v) * 0x01000193) land 0x3FFFFFFFFFFF in
  let tap =
    {
      Sink.null with
      Sink.access =
        (fun ~tid ~loc ~kind ~locks:_ ~site:_ ->
          mixin tid;
          mixin loc;
          mixin (match kind with Event.Read -> 17 | Event.Write -> 23));
      acquire =
        (fun ~tid ~lock ->
          mixin (tid + 101);
          mixin lock);
      release =
        (fun ~tid ~lock ->
          mixin (tid + 211);
          mixin lock);
      thread_start = (fun ~parent ~child -> mixin ((parent * 31) + child));
    }
  in
  (tap, fun () -> !fp)

let kinds_of (race : Report.race) =
  let k = function Event.Read -> "read" | Event.Write -> "write" in
  Printf.sprintf "%s vs %s" (k race.Report.current.Event.kind)
    (k race.Report.prior.Trie.p_kind)

let site_name (c : Pipeline.compiled) s =
  if s < 0 || s >= Site_table.count c.Pipeline.prog.Ir.p_sites then "<unknown>"
  else Site_table.name c.Pipeline.prog.Ir.p_sites s

let sightings_of (c : Pipeline.compiled) (r : Pipeline.result) =
  match r.Pipeline.report with
  | Some coll ->
      List.map
        (fun (race : Report.race) ->
          let obj =
            Memloc.describe c.Pipeline.prog.Ir.p_tprog r.Pipeline.heap
              race.Report.loc
          in
          {
            Aggregate.s_key =
              Aggregate.key ~obj
                ~site_a:(site_name c race.Report.current.Event.site)
                ~site_b:(site_name c race.Report.prior.Trie.p_site);
            s_kinds = kinds_of race;
          })
        (Report.races coll)
  | None ->
      (* Baseline detectors report locations only. *)
      List.map
        (fun loc ->
          {
            Aggregate.s_key = Aggregate.key ~obj:loc ~site_a:"" ~site_b:"";
            s_kinds = "";
          })
        r.Pipeline.races

let observe_run (c : Pipeline.compiled) (sp : Strategy.run_spec) :
    Aggregate.run_obs =
  let vm =
    {
      (Pipeline.vm_config_of c.Pipeline.config) with
      Interp.seed = sp.Strategy.sp_seed;
      quantum = sp.Strategy.sp_quantum;
      policy = sp.Strategy.sp_policy;
    }
  in
  let tap, fp = fingerprint_tap () in
  let r = Pipeline.run ~vm ~tap c in
  {
    Aggregate.o_index = sp.Strategy.sp_index;
    o_seed = sp.Strategy.sp_seed;
    o_spec = Strategy.describe sp;
    o_repro = Strategy.repro_flags sp;
    o_sightings = sightings_of c r;
    o_objects = r.Pipeline.racy_objects;
    o_fingerprint = fp ();
    o_events = r.Pipeline.events;
    o_steps = r.Pipeline.steps;
    o_wall = r.Pipeline.wall_time;
  }

(* ---- the parallel campaign runner ---- *)

type worker_out = {
  w_obs : Aggregate.run_obs list;
  w_failures : (int * int * string) list; (* index, seed, error *)
}

let run_campaign (spec : spec) ~source : report =
  let budget = spec.e_budget in
  let total_runs =
    match Strategy.count spec.e_strategy with
    | Some n -> min n budget.b_runs
    | None -> budget.b_runs
  in
  let t0 = Unix.gettimeofday () in
  let deadline = Option.map (fun s -> t0 +. s) budget.b_seconds in
  let next = Atomic.make 0 in
  (* Each worker compiles its own copy of the program (compilation
     mutates the IR in place during instrumentation, so domains must not
     share one) and claims run indices from the shared counter.  A
     failing run — VM Runtime_error, step-limit, anything — becomes a
     failure row; it never kills the worker, let alone the campaign. *)
  let worker () =
    match Pipeline.compile spec.e_config ~source with
    | exception e -> { w_obs = []; w_failures = [ (-1, -1, Printexc.to_string e) ] }
    | compiled ->
        let obs = ref [] and fails = ref [] in
        let expired () =
          match deadline with
          | Some d -> Unix.gettimeofday () > d
          | None -> false
        in
        let rec loop () =
          if not (expired ()) then begin
            let i = Atomic.fetch_and_add next 1 in
            if i < total_runs then begin
              let sp =
                Strategy.spec spec.e_strategy ~base:spec.e_config
                  ~pct_horizon:spec.e_pct_horizon i
              in
              (match observe_run compiled sp with
              | o -> obs := o :: !obs
              | exception e ->
                  fails :=
                    (i, sp.Strategy.sp_seed, Printexc.to_string e) :: !fails);
              loop ()
            end
          end
        in
        loop ();
        { w_obs = !obs; w_failures = !fails }
  in
  let outs =
    if spec.e_workers <= 1 then [ worker () ]
    else
      let domains =
        List.init spec.e_workers (fun _ -> Domain.spawn worker)
      in
      List.map Domain.join domains
  in
  let wall = Unix.gettimeofday () -. t0 in
  (* Merge in run-index order so first-seen attribution and the
     discovery curve do not depend on worker interleaving: a campaign
     with a pure run-count budget is fully deterministic. *)
  let agg = Aggregate.create () in
  List.concat_map (fun w -> w.w_obs) outs
  |> List.sort (fun a b -> compare a.Aggregate.o_index b.Aggregate.o_index)
  |> List.iter (Aggregate.add_run agg);
  List.iter
    (fun w ->
      List.iter
        (fun (index, seed, error) -> Aggregate.add_failure agg ~index ~seed ~error)
        w.w_failures)
    outs;
  {
    r_spec = spec;
    r_races = Aggregate.races agg;
    r_objects = Aggregate.object_rows agg;
    r_failures = Aggregate.failures agg;
    r_stats = Aggregate.stats agg;
    r_wall = wall;
  }

(* ---- the legacy seed sweep, rebased on the engine ---- *)

let sweep ?(workers = 1) (config : Config.t) ~source ~seeds :
    (string * int) list * (int * string) list =
  let seeds = Array.of_list seeds in
  let spec =
    {
      e_config = config;
      e_strategy = Strategy.Seeds seeds;
      e_workers = workers;
      e_budget = runs_budget (Array.length seeds);
      e_pct_horizon = 20_000;
    }
  in
  let r = run_campaign spec ~source in
  ( r.r_objects,
    List.map
      (fun (f : Aggregate.failure) -> (f.Aggregate.f_seed, f.Aggregate.f_error))
      r.r_failures )
