(* The versioned JSON-lines wire format for sharded campaigns: the
   campaign spec (header), run observations and failure rows.

   No JSON library ships in the sealed environment, so the module
   carries its own minimal JSON value with a deterministic printer and
   a recursive-descent parser.  Determinism matters: merged reports
   must be byte-identical to single-process ones, so object fields are
   printed in construction order and floats with the shortest
   representation that parses back to the same double. *)

module Config = Drd_harness.Config
module Interp = Drd_vm.Interp
module Memloc = Drd_vm.Memloc

(* Version history:
   1 — initial format (spec without equiv mode, obs without hb field).
   2 — spec carries "equiv", run obs optionally carry "hb_fingerprint".
   Both are decoded: a missing equiv field means Raw and a missing hb
   field means None, exactly the semantics v1 writers had. *)
let schema_version = 2
let min_schema_version = 1

(* ------------------------------------------------------------------ *)
(* JSON values *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Obj of (string * json) list

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 32 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

(* Shortest decimal rendering that parses back to the same double; the
   ".0" suffix keeps integral floats distinct from Ints on re-parse.
   JSON has no encoding for NaN/infinity ("%g" would print "nan"/"inf",
   which fails to re-parse and poisons the shard file), so non-finite
   values are an encode-time error rather than a corrupt line. *)
let float_repr f =
  if not (Float.is_finite f) then
    invalid_arg
      (Printf.sprintf
         "Wire.json_to_string: non-finite float %h has no JSON encoding" f)
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else
    let s = Printf.sprintf "%.15g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let json_to_buffer b v =
  let rec go = function
    | Null -> Buffer.add_string b "null"
    | Bool true -> Buffer.add_string b "true"
    | Bool false -> Buffer.add_string b "false"
    | Int n -> Buffer.add_string b (string_of_int n)
    | Float f -> Buffer.add_string b (float_repr f)
    | String s -> escape_string b s
    | List items ->
        Buffer.add_char b '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char b ',';
            go x)
          items;
        Buffer.add_char b ']'
    | Obj fields ->
        Buffer.add_char b '{';
        List.iteri
          (fun i (k, x) ->
            if i > 0 then Buffer.add_char b ',';
            escape_string b k;
            Buffer.add_char b ':';
            go x)
          fields;
        Buffer.add_char b '}'
  in
  go v

let json_to_string v =
  let b = Buffer.create 256 in
  json_to_buffer b v;
  Buffer.contents b

exception Parse of string

let json_of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail fmt = Printf.ksprintf (fun m -> raise (Parse m)) fmt in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail "expected '%c' at offset %d, found '%c'" c !pos c'
    | None -> fail "expected '%c' at offset %d, found end of input" c !pos
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail "bad literal at offset %d" !pos
  in
  (* UTF-8 encode a code point (BMP or, via a surrogate pair,
     supplementary plane) from \uXXXX escapes. *)
  let add_utf8 b cp =
    if cp < 0x80 then Buffer.add_char b (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char b (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      if c = '"' then Buffer.contents b
      else if c = '\\' then begin
        (if !pos >= n then fail "unterminated escape";
         let e = s.[!pos] in
         advance ();
         match e with
         | '"' -> Buffer.add_char b '"'
         | '\\' -> Buffer.add_char b '\\'
         | '/' -> Buffer.add_char b '/'
         | 'b' -> Buffer.add_char b '\b'
         | 'f' -> Buffer.add_char b '\012'
         | 'n' -> Buffer.add_char b '\n'
         | 'r' -> Buffer.add_char b '\r'
         | 't' -> Buffer.add_char b '\t'
         | 'u' ->
             let hex4 () =
               if !pos + 4 > n then fail "truncated \\u escape";
               let hex = String.sub s !pos 4 in
               pos := !pos + 4;
               try int_of_string ("0x" ^ hex)
               with _ -> fail "bad \\u escape \\u%s" hex
             in
             let cp = hex4 () in
             if cp >= 0xD800 && cp <= 0xDBFF then begin
               (* A high surrogate is only half a code point: it must
                  pair with a following \u low surrogate, the two
                  combining into one supplementary-plane code point
                  (emitting them separately would produce CESU-8, not
                  UTF-8). *)
               if not (!pos + 1 < n && s.[!pos] = '\\' && s.[!pos + 1] = 'u')
               then
                 fail "high surrogate \\u%04X not followed by \\u escape" cp;
               pos := !pos + 2;
               let lo = hex4 () in
               if lo < 0xDC00 || lo > 0xDFFF then
                 fail "high surrogate \\u%04X followed by \\u%04X (not a low \
                       surrogate)"
                   cp lo;
               add_utf8 b
                 (0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00))
             end
             else if cp >= 0xDC00 && cp <= 0xDFFF then
               fail "lone low surrogate \\u%04X" cp
             else add_utf8 b cp
         | e -> fail "bad escape '\\%c'" e);
        go ()
      end
      else begin
        Buffer.add_char b c;
        go ()
      end
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail "bad number %S" tok
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> fail "bad number %S" tok
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec members () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}' at offset %d" !pos
          in
          members ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [] in
          let rec elements () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']' at offset %d" !pos
          in
          elements ();
          List (List.rev !items)
        end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail "unexpected character '%c' at offset %d" c !pos
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage at offset %d" !pos;
    v
  with
  | v -> Ok v
  | exception Parse m -> Error m

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

(* ---- decode combinators (exception-based internally, result at the
   API boundary) ---- *)

exception Decode of string

let dfail fmt = Printf.ksprintf (fun m -> raise (Decode m)) fmt

let field k j =
  match member k j with
  | Some v -> v
  | None -> dfail "missing field %S" k

let d_int k j =
  match field k j with Int n -> n | _ -> dfail "field %S: expected int" k

let d_float k j =
  (* Integral floats may have been printed by an older hand that wrote
     them bare; accept Int where a float is expected. *)
  match field k j with
  | Float f -> f
  | Int n -> float_of_int n
  | _ -> dfail "field %S: expected number" k

let d_bool k j =
  match field k j with Bool b -> b | _ -> dfail "field %S: expected bool" k

let d_string k j =
  match field k j with
  | String s -> s
  | _ -> dfail "field %S: expected string" k

let d_list k j =
  match field k j with List l -> l | _ -> dfail "field %S: expected list" k

let d_opt conv k j =
  match member k j with
  | None | Some Null -> None
  | Some _ -> Some (conv k j)

(* ------------------------------------------------------------------ *)
(* Domain codecs *)

let policy_to_json = function
  | Interp.Random_walk -> Obj [ ("kind", String "random_walk") ]
  | Interp.Pct { depth; horizon } ->
      Obj
        [ ("kind", String "pct"); ("depth", Int depth); ("horizon", Int horizon) ]

let policy_of_json j =
  match d_string "kind" j with
  | "random_walk" -> Interp.Random_walk
  | "pct" -> Interp.Pct { depth = d_int "depth" j; horizon = d_int "horizon" j }
  | k -> dfail "unknown scheduling policy %S" k

let granularity_to_json = function
  | Memloc.Per_field -> String "per_field"
  | Memloc.Per_object -> String "per_object"

let granularity_of_json = function
  | String "per_field" -> Memloc.Per_field
  | String "per_object" -> Memloc.Per_object
  | _ -> dfail "bad granularity"

let detector_to_json = function
  | Config.Ours -> String "ours"
  | Config.Eraser -> String "eraser"
  | Config.ObjRace -> String "objrace"
  | Config.HappensBefore -> String "happens_before"
  | Config.NoDetect -> String "nodetect"

let detector_of_json = function
  | String "ours" -> Config.Ours
  | String "eraser" -> Config.Eraser
  | String "objrace" -> Config.ObjRace
  | String "happens_before" -> Config.HappensBefore
  | String "nodetect" -> Config.NoDetect
  | _ -> dfail "bad detector"

let config_to_json (c : Config.t) =
  Obj
    [
      ("name", String c.Config.name);
      ("static_analysis", Bool c.Config.static_analysis);
      ("weaker_elim", Bool c.Config.weaker_elim);
      ("loop_peel", Bool c.Config.loop_peel);
      ("use_cache", Bool c.Config.use_cache);
      ("use_ownership", Bool c.Config.use_ownership);
      ("granularity", granularity_to_json c.Config.granularity);
      ("detector", detector_to_json c.Config.detector);
      ("pseudo_locks", Bool c.Config.pseudo_locks);
      ("ir_optimize", Bool c.Config.ir_optimize);
      ("seed", Int c.Config.seed);
      ("quantum", Int c.Config.quantum);
      ("policy", policy_to_json c.Config.policy);
    ]

let config_of_json j =
  {
    Config.name = d_string "name" j;
    static_analysis = d_bool "static_analysis" j;
    weaker_elim = d_bool "weaker_elim" j;
    loop_peel = d_bool "loop_peel" j;
    use_cache = d_bool "use_cache" j;
    use_ownership = d_bool "use_ownership" j;
    granularity = granularity_of_json (field "granularity" j);
    detector = detector_of_json (field "detector" j);
    pseudo_locks = d_bool "pseudo_locks" j;
    ir_optimize = d_bool "ir_optimize" j;
    seed = d_int "seed" j;
    quantum = d_int "quantum" j;
    policy = policy_of_json (field "policy" j);
  }

let strategy_to_json = function
  | Strategy.Sweep -> Obj [ ("kind", String "sweep") ]
  | Strategy.Jitter -> Obj [ ("kind", String "jitter") ]
  | Strategy.Pct depth -> Obj [ ("kind", String "pct"); ("depth", Int depth) ]
  | Strategy.Seeds seeds ->
      Obj
        [
          ("kind", String "seeds");
          ("seeds", List (Array.to_list seeds |> List.map (fun s -> Int s)));
        ]

let strategy_of_json j =
  match d_string "kind" j with
  | "sweep" -> Strategy.Sweep
  | "jitter" -> Strategy.Jitter
  | "pct" -> Strategy.Pct (d_int "depth" j)
  | "seeds" ->
      let seeds =
        d_list "seeds" j
        |> List.map (function Int s -> s | _ -> dfail "bad seed list")
      in
      Strategy.Seeds (Array.of_list seeds)
  | k -> dfail "unknown strategy %S" k

let budget_to_json (b : Campaign.budget) =
  Obj
    [
      ("runs", Int b.Campaign.b_runs);
      ( "seconds",
        match b.Campaign.b_seconds with Some s -> Float s | None -> Null );
      ( "plateau",
        match b.Campaign.b_plateau with Some k -> Int k | None -> Null );
    ]

let budget_of_json j =
  {
    Campaign.b_runs = d_int "runs" j;
    b_seconds = d_opt d_float "seconds" j;
    b_plateau = d_opt d_int "plateau" j;
  }

let spec_body_to_json (s : Campaign.spec) =
  Obj
    [
      ("config", config_to_json s.Campaign.e_config);
      ("strategy", strategy_to_json s.Campaign.e_strategy);
      ("workers", Int s.Campaign.e_workers);
      ("budget", budget_to_json s.Campaign.e_budget);
      ("pct_horizon", Int s.Campaign.e_pct_horizon);
      ("equiv", String (Campaign.equiv_name s.Campaign.e_equiv));
    ]

let spec_body_of_json j =
  {
    Campaign.e_config = config_of_json (field "config" j);
    e_strategy = strategy_of_json (field "strategy" j);
    e_workers = d_int "workers" j;
    e_budget = budget_of_json (field "budget" j);
    e_pct_horizon = d_int "pct_horizon" j;
    e_equiv =
      (* Absent on v1 spec headers, which predate equivalence modes and
         always meant raw. *)
      (match member "equiv" j with
      | None -> Campaign.Raw
      | Some (String s) -> (
          match Campaign.equiv_of_string s with
          | Ok e -> e
          | Error m -> dfail "%s" m)
      | Some _ -> dfail "field \"equiv\": expected string");
  }

let sighting_to_json (s : Aggregate.sighting) =
  Obj
    [
      ("object", String s.Aggregate.s_key.Aggregate.k_object);
      ("site_a", String s.Aggregate.s_key.Aggregate.k_site_a);
      ("site_b", String s.Aggregate.s_key.Aggregate.k_site_b);
      ("kinds", String s.Aggregate.s_kinds);
    ]

(* Encoded keys are already normalized and site-sorted; Aggregate.key is
   idempotent on them, so decoding through it is exact. *)
let sighting_of_json j =
  {
    Aggregate.s_key =
      Aggregate.key ~obj:(d_string "object" j) ~site_a:(d_string "site_a" j)
        ~site_b:(d_string "site_b" j);
    s_kinds = d_string "kinds" j;
  }

let obs_body_to_json (o : Aggregate.run_obs) =
  Obj
    ([
       ("index", Int o.Aggregate.o_index);
       ("seed", Int o.Aggregate.o_seed);
       ("spec", String o.Aggregate.o_spec);
       ("repro", String o.Aggregate.o_repro);
       ("sightings", List (List.map sighting_to_json o.Aggregate.o_sightings));
       ("objects", List (List.map (fun s -> String s) o.Aggregate.o_objects));
       ("fingerprint", Int o.Aggregate.o_fingerprint);
     ]
    @ (match o.Aggregate.o_hb_fingerprint with
      | Some hb -> [ ("hb_fingerprint", Int hb) ]
      | None -> [])
    @ [
        ("events", Int o.Aggregate.o_events);
        ("steps", Int o.Aggregate.o_steps);
        ("wall", Float o.Aggregate.o_wall);
      ])

let obs_body_of_json j =
  {
    Aggregate.o_index = d_int "index" j;
    o_seed = d_int "seed" j;
    o_spec = d_string "spec" j;
    o_repro = d_string "repro" j;
    o_sightings = d_list "sightings" j |> List.map sighting_of_json;
    o_objects =
      d_list "objects" j
      |> List.map (function String s -> s | _ -> dfail "bad object list");
    o_fingerprint = d_int "fingerprint" j;
    (* Absent on v1 rows and on raw-equivalence campaigns. *)
    o_hb_fingerprint = d_opt d_int "hb_fingerprint" j;
    o_events = d_int "events" j;
    o_steps = d_int "steps" j;
    o_wall = d_float "wall" j;
  }

let failure_body_to_json (f : Aggregate.failure) =
  Obj
    [
      ("index", Int f.Aggregate.f_index);
      ("seed", Int f.Aggregate.f_seed);
      ("error", String f.Aggregate.f_error);
    ]

let failure_body_of_json j =
  {
    Aggregate.f_index = d_int "index" j;
    f_seed = d_int "seed" j;
    f_error = d_string "error" j;
  }

(* ------------------------------------------------------------------ *)
(* Envelopes: every line carries the schema version and a type tag. *)

let line_to_buffer b tag fields =
  json_to_buffer b
    (Obj (("v", Int schema_version) :: ("t", String tag) :: fields))

let line tag fields =
  let b = Buffer.create 256 in
  line_to_buffer b tag fields;
  Buffer.contents b

let decode_line expected_tags s =
  match json_of_string s with
  | Error m -> Error ("bad wire line: " ^ m)
  | Ok j -> (
      match member "v" j with
      | Some (Int v) when v >= min_schema_version && v <= schema_version -> (
          match member "t" j with
          | Some (String t) when List.mem t expected_tags -> Ok (t, j)
          | Some (String t) ->
              Error
                (Printf.sprintf "unexpected wire line type %S (wanted %s)" t
                   (String.concat "|" expected_tags))
          | _ -> Error "wire line has no type tag")
      | Some (Int v) ->
          Error
            (Printf.sprintf
               "wire schema version %d not supported (this build reads \
                versions %d-%d); re-record the shard or upgrade"
               v min_schema_version schema_version)
      | _ -> Error "wire line has no schema version")

let wrap f = try Ok (f ()) with Decode m -> Error m

let spec_to_json ?(target = "") spec =
  line "spec" [ ("target", String target); ("spec", spec_body_to_json spec) ]

let spec_of_json s =
  Result.bind (decode_line [ "spec" ] s) (fun (_, j) ->
      wrap (fun () -> spec_body_of_json (field "spec" j)))

let target_of_json s =
  Result.bind (decode_line [ "spec" ] s) (fun (_, j) ->
      Ok (match member "target" j with Some (String t) -> t | _ -> ""))

let obs_to_json o = line "run" [ ("obs", obs_body_to_json o) ]

let obs_of_json s =
  Result.bind (decode_line [ "run" ] s) (fun (_, j) ->
      wrap (fun () -> obs_body_of_json (field "obs" j)))

let failure_to_json f = line "failure" [ ("failure", failure_body_to_json f) ]

let failure_of_json s =
  Result.bind (decode_line [ "failure" ] s) (fun (_, j) ->
      wrap (fun () -> failure_body_of_json (field "failure" j)))

let row_to_json = function
  | Aggregate.Run o -> obs_to_json o
  | Aggregate.Failed f -> failure_to_json f

(* The pool workers' hand-off path: serialize into a reusable
   domain-local scratch buffer instead of allocating a fresh one per
   row.  Byte-identical to {!row_to_json} by construction — both funnel
   through {!line_to_buffer}. *)
let row_to_buffer b = function
  | Aggregate.Run o -> line_to_buffer b "run" [ ("obs", obs_body_to_json o) ]
  | Aggregate.Failed f ->
      line_to_buffer b "failure" [ ("failure", failure_body_to_json f) ]

let row_of_json s =
  Result.bind (decode_line [ "run"; "failure" ] s) (fun (t, j) ->
      wrap (fun () ->
          match t with
          | "run" -> Aggregate.Run (obs_body_of_json (field "obs" j))
          | _ -> Aggregate.Failed (failure_body_of_json (field "failure" j))))

(* ------------------------------------------------------------------ *)
(* Whole observation files *)

let write_obs_channel oc ?target spec rows =
  output_string oc (spec_to_json ?target spec);
  output_char oc '\n';
  List.iter
    (fun row ->
      output_string oc (row_to_json row);
      output_char oc '\n')
    rows

let row_of_line = row_of_json

let fold_obs_channel ic ~init ~row =
  let err lineno m = Error (Printf.sprintf "line %d: %s" lineno m) in
  let rec fold_rows lineno acc =
    match input_line ic with
    | exception End_of_file -> Ok acc
    | "" -> fold_rows (lineno + 1) acc
    | l -> (
        match row_of_line l with
        | Ok r -> fold_rows (lineno + 1) (row acc r)
        | Error m -> err lineno m)
  in
  match input_line ic with
  | exception End_of_file -> Error "empty observation file (no spec header)"
  | header -> (
      match spec_of_json header with
      | Error m -> err 1 m
      | Ok spec -> (
          let target =
            match target_of_json header with Ok t -> t | Error _ -> ""
          in
          match fold_rows 2 init with
          | Ok acc -> Ok (spec, target, acc)
          | Error m -> Error m))

let read_obs_channel ic =
  match
    fold_obs_channel ic ~init:[] ~row:(fun acc r -> r :: acc)
  with
  | Ok (spec, target, rev_rows) -> Ok (spec, target, List.rev rev_rows)
  | Error _ as e -> e
