(* Happens-before interleaving fingerprints (partial-order reduction).

   The raw fingerprint in Explore hashes the exact event order, so two
   schedules that differ only by commuting independent events — accesses
   by different threads to different locations, with no synchronization
   between them — count as distinct and both pay full detector replay.
   This tap instead maintains per-thread vector clocks over the sync
   edges the detector can observe (lock release→acquire, thread
   start/join) plus per-location access ordering, and folds each access
   as a commutative (order-insensitive) hash of its
   (location, kind, thread, clock-snapshot).

   Two runs then get equal fingerprints iff every access has the same
   causal past — i.e. they induce the same happens-before order on
   dependent events.  Commuting an independent adjacent pair changes no
   clock, so the multiset of access hashes (and the fingerprint) is
   preserved; reordering dependent events (same thread, same location,
   or across a sync edge followed by an access) changes at least one
   snapshot.  The relation is conservative: accesses to the same
   location are ordered regardless of kind, and every lock hand-off
   counts even when no conflicting access rides it, so equivalence
   classes are never too coarse for the detector — pruning a replay is
   sound — merely sometimes finer than the ideal Mazurkiewicz trace. *)

open Drd_core

(* ---- the FNV-1a constants shared by both fingerprint taps ----

   [mask] truncates to 46 bits: fingerprints cross the shard wire as
   JSON integers, and 46 bits keeps them exactly representable both in
   OCaml's 63-bit ints and in the IEEE doubles any off-the-shelf JSON
   consumer parses numbers into (< 2^53), with headroom for the
   commutative sum fold below.  The raw order-sensitive tap
   (Explore.fingerprint_tap) uses the same constants. *)

let fnv_offset = 0x811C9DC5
let fnv_prime = 0x01000193
let mask = 0x3FFFFFFFFFFF
let mix fp v = ((fp lxor v) * fnv_prime) land mask

let kind_code = function Event.Read -> 17 | Event.Write -> 23

(* Each FNV step is locally affine — (h ⊕ v) * p — so two snapshots
   differing in one small clock component produce hashes whose
   difference is a small multiple of a power of [fnv_prime], and under
   the commutative sum fold below a few such correlated differences can
   cancel exactly: QCheck found two inequivalent schedules colliding
   within thousands of cases, wildly above the 2^-46 chance rate.  A
   SplitMix64-style avalanche over every snapshot hash destroys the
   affine structure before it reaches the sum.  (62-bit truncations of
   the SplitMix64 constants, as in Strategy.mix — OCaml ints are 63
   bits.) *)
let avalanche h =
  let z = ref ((h lxor (h lsr 30)) * 0x3F58476D1CE4E5B9) in
  z := (!z lxor (!z lsr 27)) * 0x14D049BB133111EB;
  (!z lxor (!z lsr 31)) land mask

(* ---- growable vector clocks ----

   Same idea as the happens-before baseline's Drd_baselines.Vclock, but
   growable on demand (campaign programs choose their own thread
   counts) and with a canonical snapshot hash: trailing zeros never
   contribute, so <1,0> and <1> hash identically. *)

type clock = { mutable c : int array }

let clock () = { c = [||] }

let ensure k n =
  if Array.length k.c < n then begin
    let a = Array.make (max n ((2 * Array.length k.c) + 4)) 0 in
    Array.blit k.c 0 a 0 (Array.length k.c);
    k.c <- a
  end

let tick k i =
  ensure k (i + 1);
  k.c.(i) <- k.c.(i) + 1

(* dst := dst ⊔ src *)
let join dst src =
  ensure dst (Array.length src.c);
  Array.iteri (fun i v -> if v > dst.c.(i) then dst.c.(i) <- v) src.c

(* dst := src *)
let assign dst src =
  ensure dst (Array.length src.c);
  Array.fill dst.c 0 (Array.length dst.c) 0;
  Array.blit src.c 0 dst.c 0 (Array.length src.c)

(* Mix the nonzero components as (index, value) pairs in index order —
   the canonical form of the snapshot. *)
let mix_clock h k =
  let h = ref h in
  Array.iteri
    (fun i v ->
      if v <> 0 then begin
        h := mix !h (i + 1);
        h := mix !h v
      end)
    k.c;
  !h

(* ---- the tap ---- *)

type state = {
  threads : (int, clock) Hashtbl.t;
  locks : (int, clock) Hashtbl.t;
  locs : (int, clock) Hashtbl.t; (* last access to each location *)
  mutable fp : int;
}

let clock_of tbl id =
  match Hashtbl.find_opt tbl id with
  | Some k -> k
  | None ->
      let k = clock () in
      Hashtbl.add tbl id k;
      k

let tap () =
  let st =
    {
      threads = Hashtbl.create 16;
      locks = Hashtbl.create 16;
      locs = Hashtbl.create 64;
      fp = fnv_offset;
    }
  in
  let access ~tid ~loc ~kind ~locks:_ ~site:_ =
    let tc = clock_of st.threads tid in
    let lc = clock_of st.locs loc in
    (* The access happens after every earlier access to the same
       location (conservative: reads too) and after everything its
       thread already did. *)
    join tc lc;
    tick tc tid;
    let h = mix (mix (mix (mix fnv_offset 5) tid) loc) (kind_code kind) in
    let h = mix_clock h tc in
    (* Commutative fold: addition, so independent events contribute the
       same no matter where in the schedule they landed. *)
    st.fp <- (st.fp + avalanche h) land mask;
    assign lc tc
  in
  let acquire ~tid ~lock =
    join (clock_of st.threads tid) (clock_of st.locks lock)
  in
  let release ~tid ~lock =
    join (clock_of st.locks lock) (clock_of st.threads tid)
  in
  let thread_start ~parent ~child =
    let pc = clock_of st.threads parent in
    join (clock_of st.threads child) pc;
    tick pc parent
  in
  let thread_join ~joiner ~joinee =
    join (clock_of st.threads joiner) (clock_of st.threads joinee)
  in
  ( {
      Drd_vm.Sink.null with
      Drd_vm.Sink.access;
      acquire;
      release;
      thread_start;
      thread_join;
    },
    fun () -> st.fp )
