(** Campaign-level aggregation of race reports and exploration
    statistics.

    Race reports are deduplicated across runs by (object, field,
    site-pair); heap ids are schedule-dependent, so the object component
    is the class+field identity with object ids stripped
    ("TourElement#12.next" → "TourElement.next").  The first run that
    sighted each deduped race is remembered with its full schedule spec
    so every reported race comes with a reproduction recipe.

    An aggregate is fed {!row}s — successful runs and failures — in
    run-index order.  With a plateau window (adaptive budget) it also
    {e decides} when the campaign stopped discovering: once the window
    trips, later rows are ignored, so the folded result is a
    deterministic function of the row sequence no matter how far the
    runner overshot. *)

type race_key = private {
  k_object : string;  (** Normalized object/static-field identity. *)
  k_site_a : string;  (** Site pair, sorted lexicographically. *)
  k_site_b : string;
}

val key : obj:string -> site_a:string -> site_b:string -> race_key

val normalize_object : string -> string
(** Strip ["#<digits>"] object ids ("Foo#12.f" → "Foo.f"). *)

type sighting = {
  s_key : race_key;
  s_kinds : string;  (** e.g. ["write vs read"]. *)
}

type run_obs = {
  o_index : int;
  o_seed : int;
  o_spec : string;  (** Human description of the schedule. *)
  o_repro : string;  (** [racedet run] flags replaying it. *)
  o_sightings : sighting list;
  o_objects : string list;  (** Raw racy-object names (sweep compat). *)
  o_fingerprint : int;  (** Raw interleaving fingerprint of the run. *)
  o_hb_fingerprint : int option;
      (** Happens-before class fingerprint ({!Hb_fingerprint}); [None]
          on raw-equivalence campaigns and pre-hb wire rows. *)
  o_events : int;
  o_steps : int;
  o_wall : float;  (** VM seconds for this run. *)
}

type failure = { f_index : int; f_seed : int; f_error : string }

(** One observed campaign run: what crosses the wire between shards and
    what an aggregate folds. *)
type row =
  | Run of run_obs
  | Failed of failure

val row_index : row -> int

type deduped = {
  d_key : race_key;
  d_count : int;  (** Runs that reported it. *)
  d_kinds : string;
  d_first_index : int;  (** Run index of the first sighting. *)
  d_first_seed : int;
  d_first_spec : string;
  d_first_repro : string;
}

(** Why aggregation stopped accepting rows. *)
type stop_reason =
  | Exhausted  (** The run budget (or strategy) ran out. *)
  | Plateau of { p_window : int; p_at : int }
      (** [p_window] consecutive runs brought no new distinct race; the
          row with index [p_at] tripped the window. *)
  | Deadline  (** The wall-clock budget expired (runner-reported). *)

val describe_stop : stop_reason -> string

type t

val create : ?plateau:int -> ?hb:bool -> unit -> t
(** [?plateau] arms the adaptive-budget rule: after that many
    consecutive rows (runs or failures) with no new distinct race, the
    aggregate stops folding and reports {!Plateau}.  [?hb] (default
    false) folds equivalence classes over the happens-before
    fingerprint instead of the raw one; pruned-run accounting happens
    here, in fold order, so it is identical across worker counts and
    shard layouts. *)

val add_run : t -> run_obs -> unit
(** Feed observations in run-index order: first-seen attribution, the
    discovery curve and the plateau decision depend on it.  The engine
    sorts merged worker results before folding.  Ignored once the
    plateau window has tripped. *)

val add_failure : t -> failure -> unit
(** A failed run: counts toward the plateau window (it discovered
    nothing) and is recorded for the report. *)

val add_row : t -> row -> unit

val add_rows : t -> row list -> unit
(** Sort by {!row_index} and fold: the entry point for rows collected in
    completion order (pool worker outboxes, merged shard files). *)

val note_deadline : t -> unit
(** Runner-only: mark that the wall-clock budget cut the campaign short.
    Reported as the stop reason unless a plateau already tripped. *)

val races : t -> deduped list
(** Sorted by sighting count (descending), then key. *)

val object_rows : t -> (string * int) list
(** Raw racy-object occurrence counts (the legacy sweep view), sorted by
    count then name. *)

val failures : t -> failure list
(** In run-index order. *)

val observations : t -> run_obs list
(** The folded observations in fold order — exactly the rows a shard
    re-emits on the wire (plateau-ignored rows excluded). *)

type stats = {
  st_runs : int;
  st_failed : int;
  st_distinct_races : int;
  st_distinct_fingerprints : int;
  st_equiv_classes : int;
      (** Distinct schedule-equivalence classes folded: equals
          [st_distinct_fingerprints] under raw equivalence, and the
          number of distinct happens-before fingerprints under hb. *)
  st_pruned_runs : int;
      (** Runs whose equivalence class had already been folded — the
          detector replays an hb campaign saved.  Always [0] under raw
          equivalence. *)
  st_events : int;
  st_steps : int;
  st_run_wall : float;  (** Summed per-run VM seconds. *)
  st_discovery : (int * int) list;
      (** (run index, cumulative distinct races) at each discovery —
          the new-races-per-run decay curve. *)
  st_stop : stop_reason;
}

val stats : t -> stats

val pp_key : race_key Fmt.t
