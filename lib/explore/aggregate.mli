(** Campaign-level aggregation of race reports and exploration
    statistics.

    Race reports are deduplicated across runs by (object, field,
    site-pair); heap ids are schedule-dependent, so the object component
    is the class+field identity with object ids stripped
    ("TourElement#12.next" → "TourElement.next").  The first run that
    sighted each deduped race is remembered with its full schedule spec
    so every reported race comes with a reproduction recipe. *)

type race_key = private {
  k_object : string;  (** Normalized object/static-field identity. *)
  k_site_a : string;  (** Site pair, sorted lexicographically. *)
  k_site_b : string;
}

val key : obj:string -> site_a:string -> site_b:string -> race_key

val normalize_object : string -> string
(** Strip ["#<digits>"] object ids ("Foo#12.f" → "Foo.f"). *)

type sighting = {
  s_key : race_key;
  s_kinds : string;  (** e.g. ["write vs read"]. *)
}

type run_obs = {
  o_index : int;
  o_seed : int;
  o_spec : string;  (** Human description of the schedule. *)
  o_repro : string;  (** [racedet run] flags replaying it. *)
  o_sightings : sighting list;
  o_objects : string list;  (** Raw racy-object names (sweep compat). *)
  o_fingerprint : int;  (** Interleaving fingerprint of the run. *)
  o_events : int;
  o_steps : int;
  o_wall : float;  (** VM seconds for this run. *)
}

type failure = { f_index : int; f_seed : int; f_error : string }

type deduped = {
  d_key : race_key;
  d_count : int;  (** Runs that reported it. *)
  d_kinds : string;
  d_first_index : int;  (** Run index of the first sighting. *)
  d_first_seed : int;
  d_first_spec : string;
  d_first_repro : string;
}

type t

val create : unit -> t

val add_run : t -> run_obs -> unit
(** Feed observations in run-index order: first-seen attribution and the
    discovery curve depend on it.  The engine sorts merged worker
    results before folding. *)

val add_failure : t -> index:int -> seed:int -> error:string -> unit

val races : t -> deduped list
(** Sorted by sighting count (descending), then key. *)

val object_rows : t -> (string * int) list
(** Raw racy-object occurrence counts (the legacy sweep view), sorted by
    count then name. *)

val failures : t -> failure list
(** In run-index order. *)

type stats = {
  st_runs : int;
  st_failed : int;
  st_distinct_races : int;
  st_distinct_fingerprints : int;
  st_events : int;
  st_steps : int;
  st_run_wall : float;  (** Summed per-run VM seconds. *)
  st_discovery : (int * int) list;
      (** (run index, cumulative distinct races) at each discovery —
          the new-races-per-run decay curve. *)
}

val stats : t -> stats

val pp_key : race_key Fmt.t
