(* The campaign description: a pure, serializable value.  Run indices
   derive deterministically from the spec (Strategy.mix), so a spec is
   all a shard needs to own a disjoint slice of a campaign. *)

module Config = Drd_harness.Config

type budget = {
  b_runs : int;
  b_seconds : float option;
  b_plateau : int option;
}

let budget ?seconds ?plateau runs =
  { b_runs = runs; b_seconds = seconds; b_plateau = plateau }

let runs_budget runs = budget runs

let equal_budget a b =
  a.b_runs = b.b_runs && a.b_seconds = b.b_seconds
  && a.b_plateau = b.b_plateau

let pp_budget ppf b =
  Fmt.pf ppf "%d runs" b.b_runs;
  (match b.b_seconds with
  | Some s -> Fmt.pf ppf ", %gs wall" s
  | None -> ());
  match b.b_plateau with
  | Some k -> Fmt.pf ppf ", plateau %d" k
  | None -> ()

(* Which schedules count as "the same interleaving" for dedup and
   detector-replay pruning: the raw event order, or its happens-before
   structure (Hb_fingerprint). *)
type equiv = Raw | Hb

let equiv_name = function Raw -> "raw" | Hb -> "hb"

let equiv_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "raw" -> Ok Raw
  | "hb" -> Ok Hb
  | other -> Error (Printf.sprintf "unknown equivalence mode %S (expected raw or hb)" other)

type spec = {
  e_config : Config.t;
  e_strategy : Strategy.t;
  e_workers : int;
  e_budget : budget;
  e_pct_horizon : int;
  e_equiv : equiv;
}

let spec ?(strategy = Strategy.Jitter) ?(workers = 1)
    ?(budget = runs_budget 32) ?(pct_horizon = 20_000) ?(equiv = Raw) config =
  {
    e_config = config;
    e_strategy = strategy;
    e_workers = workers;
    e_budget = budget;
    e_pct_horizon = pct_horizon;
    e_equiv = equiv;
  }

let default_spec config = spec config

(* Config.t and Strategy.t are immutable first-order data (the only
   non-scalar components are a policy record and a seed array), so
   structural equality is the intended equality. *)
let equal_spec a b =
  a.e_config = b.e_config && a.e_strategy = b.e_strategy
  && a.e_workers = b.e_workers
  && equal_budget a.e_budget b.e_budget
  && a.e_pct_horizon = b.e_pct_horizon
  && a.e_equiv = b.e_equiv

(* Shards of one campaign agree on everything that determines the run
   set; how many domains each shard fanned out over does not. *)
let compatible a b = equal_spec { a with e_workers = 0 } { b with e_workers = 0 }

(* Shard index arithmetic, shared by the runner and its tests so the
   ownership law lives in exactly one place: shard [i] of [n] owns the
   run indices congruent to [i] mod [n], its [k]-th work ordinal being
   run index [i + k*n]. *)
let shard_index ~shard_i ~shard_n k = shard_i + (k * shard_n)

let owned_count ~shard_i ~shard_n ~total =
  if total <= shard_i then 0 else (total - shard_i + shard_n - 1) / shard_n

let pp_spec ppf s =
  Fmt.pf ppf
    "%s (seed %d, quantum %d), %s, %a, pct-horizon %d, %s equivalence, %d \
     workers"
    s.e_config.Config.name s.e_config.Config.seed s.e_config.Config.quantum
    (Strategy.name s.e_strategy) pp_budget s.e_budget s.e_pct_horizon
    (equiv_name s.e_equiv) s.e_workers
