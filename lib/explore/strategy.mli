(** Schedule-diversity strategies for the exploration engine.

    A strategy maps a run index to a {!run_spec} — the VM scheduling
    knobs for that run — purely as a function of the campaign's base
    configuration, so a campaign is a deterministic set of runs however
    they are distributed over workers. *)

module Interp = Drd_vm.Interp
module Config = Drd_harness.Config

type t =
  | Sweep  (** Plain seed sweep: seed [base + index], fixed quantum. *)
  | Jitter
      (** Random-walk with per-run randomized seed {e and} slice bound
          (1..4× the base quantum): varies both thread choice and
          preemption density. *)
  | Pct of int
      (** PCT-style priority scheduling with the given number of
          priority-change points (see {!Interp.policy}). *)
  | Seeds of int array
      (** An explicit seed list (the legacy [sweep] entry point). *)

val name : t -> string

val of_string : string -> (t, string) result
(** Parse a CLI strategy name ([sweep]/[jitter]/[pct]); [pct] defaults
    to 3 change points. *)

val count : t -> int option
(** The intrinsic run count, for strategies that have one ([Seeds]). *)

type run_spec = {
  sp_index : int;
  sp_seed : int;
  sp_quantum : int;
  sp_policy : Interp.policy;
}

val spec : t -> base:Config.t -> pct_horizon:int -> int -> run_spec
(** [spec s ~base ~pct_horizon i] is the schedule of run [i]. *)

val specs :
  t ->
  base:Config.t ->
  pct_horizon:int ->
  first:int ->
  stride:int ->
  count:int ->
  run_spec list
(** One batched work-queue claim's worth of {!spec}s: run indices
    [first], [first+stride], …, [first+(count-1)*stride] in order.  The
    stride is the shard modulus (1 for unsharded campaigns). *)

val mix : int -> int -> int
(** The SplitMix-style (seed, index) → derived-seed finalizer; exposed
    for fingerprinting and tests. *)

val describe_policy : Interp.policy -> string

val describe : run_spec -> string

val repro_flags : run_spec -> string
(** The [racedet run] flags that replay this spec as a single run, e.g.
    ["--seed 7 --quantum 20 --pct 3 --pct-horizon 20000"]. *)
