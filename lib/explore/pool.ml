(* The persistent worker-domain pool behind campaign execution.

   The first runner spawned one domain per worker and had every domain
   fight over a shared counter once per run, return its results as one
   big structured value at join time, and synchronize on shared mutexes
   (replay cache, plateau tracker) once or twice per run.  On multicore
   hosts that *lost* throughput as workers were added: the per-run
   atomics and mutexes serialize the claim path, and the cross-domain
   allocation traffic drags every domain into each other's minor-GC
   pauses (an OCaml 5 minor collection is a stop-the-world handshake
   over all running domains).

   This module keeps the domains long-lived — spawned once per
   campaign, reused across the whole plateau/deadline loop — and makes
   every shared touch point batched:

   - {!claim} hands out *chunks* of work ordinals, so the shared
     counter is hit once per [batch] runs instead of once per run;
   - {!push} hands completed batches back through a single-producer
     {!outbox} (one mutex shared by exactly two parties, acquired once
     per batch — the drain side only runs after the workers quiesce);
   - {!exchange} lets workers trade domain-local discoveries (the hb
     replay cache shards) through an append-only {!journal}, one
     critical section per batch instead of two mutex acquisitions per
     run.

   The pool deliberately knows nothing about campaigns: it moves
   ordinals and opaque values.  Determinism is the caller's concern —
   the campaign fold sorts rows by run index, so nothing here (chunk
   sizes, claim interleaving, drain order) can reach a report. *)

(* ---- chunked work queue ---- *)

type queue = {
  q_next : int Atomic.t; (* next unclaimed chunk ordinal *)
  q_batch : int; (* work ordinals per claim *)
  q_total : int; (* work ordinals in [0, q_total) *)
}

type chunk = {
  c_ordinal : int; (* claim ordinal: chunks are dense and monotone *)
  c_first : int; (* first work ordinal of the chunk *)
  c_count : int; (* ordinals in the chunk (the tail may be short) *)
}

let queue ~batch ~total =
  if batch < 1 then invalid_arg "Pool.queue: batch must be >= 1";
  { q_next = Atomic.make 0; q_batch = batch; q_total = max total 0 }

let claim q =
  let c = Atomic.fetch_and_add q.q_next 1 in
  let first = c * q.q_batch in
  if first >= q.q_total then None
  else
    Some
      { c_ordinal = c; c_first = first; c_count = min q.q_batch (q.q_total - first) }

(* Chunk sizing when the caller does not pin one: aim for a few claims
   per worker so the tail stays balanced, but never so many that the
   per-chunk synchronization (outbox push, tracker note, journal
   exchange) returns to per-run frequency.  Any value is correct — the
   batch size can never reach a report — this only tunes contention
   against tail latency. *)
let default_batch ~workers ~total =
  max 1 (min 16 (total / (max workers 1 * 4)))

(* ---- single-producer outboxes ---- *)

type 'a outbox = { ob_mu : Mutex.t; mutable ob_rev : 'a list }

let outbox () = { ob_mu = Mutex.create (); ob_rev = [] }

let push ob x =
  Mutex.lock ob.ob_mu;
  ob.ob_rev <- x :: ob.ob_rev;
  Mutex.unlock ob.ob_mu

let drain ob =
  Mutex.lock ob.ob_mu;
  let xs = ob.ob_rev in
  ob.ob_rev <- [];
  Mutex.unlock ob.ob_mu;
  List.rev xs

(* ---- append-only journal with per-worker cursors ---- *)

type 'a journal = { j_mu : Mutex.t; mutable j_log : 'a list; mutable j_len : int }

let journal () = { j_mu = Mutex.create (); j_log = []; j_len = 0 }

let exchange j ~cursor ~publish =
  Mutex.lock j.j_mu;
  let before = j.j_len in
  List.iter
    (fun x ->
      j.j_log <- x :: j.j_log;
      j.j_len <- j.j_len + 1)
    publish;
  (* Foreign news: entries [cursor, before), sitting just past our own
     freshly pushed ones at the head of the (newest-first) log. *)
  let news =
    let rec drop k l =
      if k <= 0 then l else match l with [] -> [] | _ :: tl -> drop (k - 1) tl
    in
    let rec take k l acc =
      if k <= 0 then acc
      else match l with [] -> acc | x :: tl -> take (k - 1) tl (x :: acc)
    in
    take (before - cursor) (drop (List.length publish) j.j_log) []
  in
  let len = j.j_len in
  Mutex.unlock j.j_mu;
  (news, len)

(* ---- the pool itself ---- *)

(* The calling domain is worker 0: a campaign with N workers spawns
   N-1 domains, so the single-worker path never pays a spawn and the
   caller's core is never idle while the pool runs.

   [gc_space_overhead] raises [Gc.space_overhead] for the duration of
   the pool (restored on exit, even on raise).  The setting is
   process-global in OCaml 5, so the pool owner flips it once rather
   than each worker racing to: campaign workers allocate in bursts
   (every run builds and drops a detector and a VM heap), and a lazier
   major-GC pacing keeps the domains out of each other's collection
   handshakes at a bounded memory cost.  Throughput-only: no report
   bytes depend on it.

   A worker that raises does not abort the others: every domain runs to
   completion, then the first exception in worker order is re-raised
   with its backtrace. *)
let run ?gc_space_overhead ~workers f =
  let workers = max workers 1 in
  let saved = Gc.get () in
  (match gc_space_overhead with
  | Some so -> Gc.set { saved with Gc.space_overhead = max so saved.Gc.space_overhead }
  | None -> ());
  Fun.protect
    ~finally:(fun () -> if gc_space_overhead <> None then Gc.set saved)
    (fun () ->
      let guard w () =
        try Ok (f ~worker:w)
        with e -> Error (e, Printexc.get_raw_backtrace ())
      in
      let spawned =
        List.init (workers - 1) (fun i -> Domain.spawn (guard (i + 1)))
      in
      let outs = guard 0 () :: List.map Domain.join spawned in
      List.map
        (function
          | Ok v -> v
          | Error (e, bt) -> Printexc.raise_with_backtrace e bt)
        outs)
