(** The campaign description: a pure, serializable value.

    A campaign is fully described by a {!spec} — base detector
    configuration, schedule-diversity strategy, worker count, budget and
    PCT horizon.  Run indices derive deterministically from the spec
    (see {!Strategy.mix}), which is what makes campaigns shardable
    across processes and machines: every shard of a campaign shares one
    spec and owns a disjoint, deterministic slice of the run indices.

    Values of these types round-trip through the JSON-lines wire format
    of {!Wire}. *)

module Config = Drd_harness.Config

type budget = {
  b_runs : int;  (** Maximum runs in the campaign. *)
  b_seconds : float option;  (** Optional wall-clock cap. *)
  b_plateau : int option;
      (** Adaptive budget: stop after this many consecutive runs with no
          new distinct race (the discovery curve flattened).  Applied
          in run-index order, so a plateau-stopped campaign is still a
          deterministic function of its spec. *)
}

val budget : ?seconds:float -> ?plateau:int -> int -> budget
(** [budget n] caps the campaign at [n] runs; [?seconds] adds a
    wall-clock cap (trading determinism for boundedness), [?plateau]
    an adaptive discovery-plateau stop. *)

val runs_budget : int -> budget
(** [runs_budget n = budget n]: the pure run-count budget. *)

val equal_budget : budget -> budget -> bool

val pp_budget : budget Fmt.t

(** Which schedules count as "the same interleaving". *)
type equiv =
  | Raw  (** Exact event order: every distinct schedule is its own class. *)
  | Hb
      (** Happens-before structure ({!Hb_fingerprint}): schedules that
          only commute independent events share a class, and the runner
          skips detector replay for classes it has already seen. *)

val equiv_name : equiv -> string
(** ["raw"] or ["hb"]; the CLI/wire spelling. *)

val equiv_of_string : string -> (equiv, string) result

type spec = {
  e_config : Config.t;  (** Base detector configuration. *)
  e_strategy : Strategy.t;
  e_workers : int;  (** Domains to fan out over (execution detail). *)
  e_budget : budget;
  e_pct_horizon : int;
      (** Step horizon for PCT priority-change points (ignored by other
          strategies). *)
  e_equiv : equiv;
      (** Schedule-equivalence mode for dedup and replay pruning. *)
}

val spec :
  ?strategy:Strategy.t ->
  ?workers:int ->
  ?budget:budget ->
  ?pct_horizon:int ->
  ?equiv:equiv ->
  Config.t ->
  spec
(** Smart constructor; defaults: jitter strategy, 1 worker, 32 runs,
    horizon 20k, raw equivalence. *)

val default_spec : Config.t -> spec
(** [default_spec c = spec c]. *)

val equal_spec : spec -> spec -> bool

val compatible : spec -> spec -> bool
(** Whether two specs describe the same campaign: equal on everything
    that determines the run set — worker count is an execution detail
    and is ignored.  This is the check [racedet merge] applies across
    shard files. *)

val shard_index : shard_i:int -> shard_n:int -> int -> int
(** [shard_index ~shard_i ~shard_n k] is the run index of shard
    [shard_i]-of-[shard_n]'s [k]-th work ordinal: [shard_i + k*shard_n].
    Shard [i] owns exactly the indices congruent to [i] mod [n]. *)

val owned_count : shard_i:int -> shard_n:int -> total:int -> int
(** How many of the [total] campaign run indices shard
    [shard_i]-of-[shard_n] owns. *)

val pp_spec : spec Fmt.t
