(** The versioned JSON-lines wire format for sharded campaigns.

    A shard of a campaign ([racedet explore --shard I/N --emit-obs F])
    dumps its raw observations instead of a folded report; [racedet
    merge F...] validates that all shard files describe the same
    campaign ({!Campaign.compatible}) and re-folds the rows through
    {!Aggregate} in run-index order, reproducing the single-process
    report byte for byte.

    An observation file is one header line (the campaign {!Campaign.spec}
    plus the presentation target, e.g. ["-b needle"]) followed by one
    line per {!Aggregate.row}.  Every line carries the schema version;
    decoders reject lines from a future schema instead of guessing,
    while every past version back to {!min_schema_version} still
    decodes (absent v2 fields take their v1 meanings: raw equivalence,
    no happens-before fingerprint).

    The environment ships no JSON library, so this module carries its
    own minimal JSON representation ({!json}) with a deterministic
    printer (stable field order, shortest round-tripping float
    rendering) and a parser — both exposed for tests and for the CLI's
    report rendering. *)

val schema_version : int
(** Current wire schema version (2): the spec header carries the
    equivalence mode and run observations may carry a happens-before
    fingerprint. *)

val min_schema_version : int
(** Oldest version this build still decodes (1). *)

(** Minimal JSON value. *)
type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Obj of (string * json) list

val json_to_string : json -> string
(** Compact, deterministic rendering (object fields in construction
    order; floats printed with the shortest representation that parses
    back to the same double).  Raises [Invalid_argument] on a
    non-finite {!Float} — JSON has no encoding for NaN/infinity, and a
    corrupt line that fails to re-parse would be strictly worse. *)

val json_to_buffer : Buffer.t -> json -> unit
(** {!json_to_string} into a caller-supplied buffer (appends; does not
    clear).  The allocation-light path for serialization hot loops. *)

val json_of_string : string -> (json, string) result
(** Parse one JSON value; numeric literals without [./e/E] become
    {!Int}, others {!Float}.  [\uXXXX] escapes decode to UTF-8,
    combining surrogate pairs into one supplementary-plane code point;
    lone surrogates are rejected. *)

val member : string -> json -> json option
(** Field lookup in an {!Obj}. *)

(* ---- codecs; [to_json] produce one line (no trailing newline) ---- *)

val spec_to_json : ?target:string -> Campaign.spec -> string
(** The header line.  [?target] is the presentation target the shards
    were launched with (file name or ["-b NAME"]), recorded so a merged
    report can render the same reproduction recipes. *)

val spec_of_json : string -> (Campaign.spec, string) result

val target_of_json : string -> (string, string) result
(** The [target] recorded in a header line ([""] if absent). *)

val obs_to_json : Aggregate.run_obs -> string

val obs_of_json : string -> (Aggregate.run_obs, string) result

val failure_to_json : Aggregate.failure -> string

val failure_of_json : string -> (Aggregate.failure, string) result

val row_to_json : Aggregate.row -> string

val row_to_buffer : Buffer.t -> Aggregate.row -> unit
(** {!row_to_json} appended to a caller-supplied scratch buffer
    (byte-identical output; both share one printer).  Campaign pool
    workers use this to pre-serialize observation rows into reusable
    domain-local buffers before handing batches to the aggregator. *)

val row_of_json : string -> (Aggregate.row, string) result
(** Dispatches on the line's ["t"] tag (["run"] or ["failure"]). *)

val row_of_line : string -> (Aggregate.row, string) result
(** The line-at-a-time streaming decode entry point: exactly
    {!row_of_json}, under the name stream consumers (the serve daemon,
    {!fold_obs_channel}) use.  One line in, one row out, no buffering
    of anything beyond the line itself. *)

(* ---- whole observation files ---- *)

val write_obs_channel :
  out_channel -> ?target:string -> Campaign.spec -> Aggregate.row list -> unit
(** Header line then one line per row. *)

val fold_obs_channel :
  in_channel ->
  init:'a ->
  row:('a -> Aggregate.row -> 'a) ->
  (Campaign.spec * string * 'a, string) result
(** Streaming read of an observation file: decode the header, then fold
    [row] over each observation line as it is read — one line resident
    at a time, never the whole stream.  Returns [(spec, target, acc)];
    errors carry the offending 1-based line number.  Blank lines are
    skipped.  {!read_obs_channel} is the [List.rev]-of-cons instance. *)

val read_obs_channel :
  in_channel -> (Campaign.spec * string * Aggregate.row list, string) result
(** Returns (spec, target, rows in file order); errors carry the
    offending line number.  Blank lines are skipped. *)
