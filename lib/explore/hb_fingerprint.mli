(** Happens-before interleaving fingerprints for partial-order reduction.

    A {!Drd_vm.Sink.t} tap that maintains per-thread vector clocks over
    the synchronization edges of a run (lock release→acquire, thread
    start/join) and folds every access event into an order-insensitive
    commutative hash of its [(loc, kind, tid, clock-snapshot)].  Two
    runs receive equal fingerprints iff they induce the same
    happens-before order on dependent events, so a campaign in
    [--equiv hb] mode can skip detector replay for a schedule whose
    fingerprint was already seen: equivalent schedules present the
    detector with identical per-location access orders and locksets and
    therefore produce identical race reports.

    The dependence relation is deliberately conservative — all accesses
    to the same location are ordered (reads included, matching the
    ownership filter's first-accessor semantics), and every lock
    hand-off counts as an edge even when no conflicting access crosses
    it — so pruning is always sound, at the cost of sometimes splitting
    an ideal Mazurkiewicz trace into several classes. *)

(** {1 Shared FNV-1a constants}

    Used by both this tap and the raw order-sensitive
    {!Explore.fingerprint_tap}.  [mask] truncates to 46 bits so
    fingerprints survive the shard wire as exact JSON integers: well
    under the 2^53 limit of the IEEE doubles that off-the-shelf JSON
    consumers parse numbers into, with headroom for the commutative sum
    fold. *)

val fnv_offset : int
val fnv_prime : int
val mask : int

val mix : int -> int -> int
(** [mix fp v] is one FNV-1a step of [v] into [fp], truncated to
    {!mask}. *)

val tap : unit -> Drd_vm.Sink.t * (unit -> int)
(** [tap ()] is a fresh happens-before fingerprint tap and a function
    returning the fingerprint folded so far.  Feed it a whole run
    (typically via {!Drd_vm.Sink.tee} next to the raw tap) and read the
    fingerprint at the end. *)
