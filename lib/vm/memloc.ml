(* Mapping from concrete storage (object fields, statics, arrays) to the
   integer memory-location ids carried by access events.

   The encoding packs the identity into one non-negative int so the hot
   path allocates nothing:

   - instance field:  [(obj << 11) | (field_index << 1)]
     (field index 1022 is reserved for "whole object", 1023 for arrays)
   - whole array:     [(obj << 11) | (1023 << 1)]   (paper footnote 1)
   - static field:    [(slot << 1) | 1]

   The [Per_object] granularity ("FieldsMerged" in Table 3) maps every
   field of an object — and the array case — to the whole-object
   location; static fields of the same class remain distinguished, as in
   the paper. *)

type granularity = Per_field | Per_object

let max_fields = 1022
let array_tag = 1023
let object_tag = 1022

let field ~gran ~obj ~index =
  match gran with
  | Per_field ->
      if index >= max_fields then invalid_arg "Memloc.field: too many fields";
      (obj lsl 11) lor (index lsl 1)
  | Per_object -> (obj lsl 11) lor (object_tag lsl 1)

let array ~gran ~obj =
  match gran with
  | Per_field -> (obj lsl 11) lor (array_tag lsl 1)
  | Per_object -> (obj lsl 11) lor (object_tag lsl 1)

let static ~gran:_ ~slot = (slot lsl 1) lor 1

let whole_object ~obj = (obj lsl 11) lor (object_tag lsl 1)

(* Decode a location id into a human-readable name for reports. *)
let describe (prog : Drd_lang.Tast.tprogram) heap loc =
  if loc land 1 = 1 then
    let slot = loc lsr 1 in
    let sf = prog.Drd_lang.Tast.statics.(slot) in
    Printf.sprintf "%s.%s" sf.Drd_lang.Tast.sf_class sf.Drd_lang.Tast.sf_name
  else
    let obj = loc lsr 11 in
    let idx = (loc lsr 1) land 1023 in
    if idx = array_tag then Heap.describe heap obj
    else if idx = object_tag then Heap.describe heap obj
    else
      match Heap.get heap obj with
      | Heap.Obj { cls; _ } -> (
          let ci = Hashtbl.find prog.Drd_lang.Tast.classes cls in
          let fields = ci.Drd_lang.Tast.cls_fields in
          let found = ref (-1) in
          let i = ref 0 in
          let n = Array.length fields in
          while !found < 0 && !i < n do
            if fields.(!i).Drd_lang.Tast.fld_index = idx then found := !i;
            incr i
          done;
          match !found with
          | j when j >= 0 ->
              Printf.sprintf "%s#%d.%s" cls obj fields.(j).Drd_lang.Tast.fld_name
          | _ -> Printf.sprintf "%s#%d.field%d" cls obj idx)
      | _ -> Printf.sprintf "%s.field%d" (Heap.describe heap obj) idx
