(* Runtime values of the MiniJava VM. *)

type obj_id = int

type t = Vint of int | Vbool of bool | Vnull | Vref of obj_id

let default_of (ty : Drd_lang.Ast.ty) =
  match ty with
  | Drd_lang.Ast.Tint -> Vint 0
  | Drd_lang.Ast.Tbool -> Vbool false
  | _ -> Vnull

let pp ppf = function
  | Vint n -> Fmt.int ppf n
  | Vbool b -> Fmt.bool ppf b
  | Vnull -> Fmt.string ppf "null"
  | Vref o -> Fmt.pf ppf "#%d" o

let to_int = function Vint n -> n | _ -> invalid_arg "expected int"
let to_bool = function Vbool b -> b | _ -> invalid_arg "expected boolean"

(* Allocation-free constructors for the interpreter hot path.  Values
   are immutable and compared structurally, so sharing the boxes is
   unobservable; computed ints cluster near zero (loop counters, array
   indices, small costs), so a small preallocated range absorbs almost
   every arithmetic result. *)

let vtrue = Vbool true
let vfalse = Vbool false
let of_bool b = if b then vtrue else vfalse

let small_min = -128
let small_limit = 1024

let small_ints =
  Array.init (small_limit - small_min) (fun i -> Vint (small_min + i))

let of_int n =
  if n >= small_min && n < small_limit then
    Array.unsafe_get small_ints (n - small_min)
  else Vint n
