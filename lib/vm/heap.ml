(* The VM heap: a growable store of objects, arrays and opaque objects
   (per-class lock objects and join pseudo-locks).  Heap ids are never
   reused, so a heap id is a stable identity for memory locations and
   locks — the prototype property the paper assumes in Section 3.3
   (no GC movement) holds exactly here. *)

type kind =
  | Obj of { cls : string; fields : Value.t array }
  | Arr of { elems : Value.t array }
  | Opaque of string (* description, e.g. "class Tsp" or "S_2" *)

type t = { mutable data : kind array; mutable n : int }

(* One shared filler block: [create], growth and [clear] all fill with
   the same physical value, so clearing a heap writes pointers only. *)
let unallocated = Opaque "<unallocated>"

let create () = { data = Array.make 1024 unallocated; n = 0 }

(* Empty the heap in place, keeping the grown backing array: only the
   first [n] slots can hold live objects, so filling that prefix with
   the shared filler makes the heap indistinguishable from a fresh one
   (ids restart at 0) while releasing every object for collection. *)
let clear h =
  Array.fill h.data 0 h.n unallocated;
  h.n <- 0

let alloc h kind =
  if h.n = Array.length h.data then begin
    let data = Array.make (2 * h.n) unallocated in
    Array.blit h.data 0 data 0 h.n;
    h.data <- data
  end;
  let id = h.n in
  h.data.(id) <- kind;
  h.n <- h.n + 1;
  id

let get h id =
  if id < 0 || id >= h.n then invalid_arg "Heap.get: bad id";
  h.data.(id)

let alloc_obj h (prog : Drd_lang.Tast.tprogram) cls =
  let ci = Hashtbl.find prog.Drd_lang.Tast.classes cls in
  let fields =
    Array.map
      (fun (f : Drd_lang.Tast.field_info) -> Value.default_of f.fld_ty)
      ci.Drd_lang.Tast.cls_fields
  in
  alloc h (Obj { cls; fields })

(* Allocate a (possibly multi-dimensional) array: [dims] are the sized
   dimensions; inner arrays are allocated recursively. *)
let rec alloc_arr h (elem_ty : Drd_lang.Ast.ty) dims =
  match dims with
  | [] -> invalid_arg "Heap.alloc_arr: no dimensions"
  | [ n ] ->
      if n < 0 then invalid_arg "negative array size";
      alloc h (Arr { elems = Array.make n (Value.default_of elem_ty) })
  | n :: rest ->
      if n < 0 then invalid_arg "negative array size";
      let elems =
        Array.init n (fun _ -> Value.Vref (alloc_arr h elem_ty rest))
      in
      alloc h (Arr { elems })

let alloc_opaque h desc = alloc h (Opaque desc)

let class_of h id =
  match get h id with
  | Obj { cls; _ } -> cls
  | Arr _ -> "<array>"
  | Opaque d -> d

let size h = h.n

let describe h id =
  match get h id with
  | Obj { cls; _ } -> Printf.sprintf "%s#%d" cls id
  | Arr { elems } -> Printf.sprintf "array#%d(len %d)" id (Array.length elems)
  | Opaque d -> d
