open Drd_core
module Ir = Drd_ir.Ir
module Link = Drd_ir.Link
module Ast = Drd_lang.Ast
module Tast = Drd_lang.Tast
open Link

(* The linked-image interpreter.  It executes a [Link.image] — the flat
   form [Pipeline.compile] produces once per program — instead of the
   block IR: method bodies are [lop array]s addressed by an integer pc,
   calls are pre-resolved method ids or vtable slots, and every run-time
   table the hot loop touches is an array indexed by a dense id (thread
   id, heap id, class id).  No string is built or hashed between two
   scheduler decisions.

   Exploration campaigns replay the same program thousands of times, so
   this loop is where their wall-clock goes; see BENCH_vm.json for the
   measured effect.

   Semantics are bit-identical to the frozen block interpreter
   ([Interp_ref]): the same schedule, the same RNG draws in the same
   order, the same [Sink] notifications, the same error strings.  The
   invariants that keep it that way:

   - [st.steps] advances once per executed slot, and block terminators
     occupy exactly one slot in the linked stream (they were one "free"
     [exec_term] step in the block interpreter), so step counts — and
     with them PCT change points and the step limit — are unchanged;
   - the slice budget is spent only by instructions that advance, never
     by terminators or by a blocked retry, exactly as before;
   - the ready list is scanned newest-thread-first (the reverse creation
     order the old [thread list] had), so [Random_walk]'s [List.nth]
     draw and PCT's lazy priority assignment consume the RNG
     identically;
   - heap ids are allocated in the same order (objects, arrays, class
     objects on first touch, join pseudo-locks at thread creation), so
     every location and lock id matches.

   The one intended delta: virtual calls report their real call-site id
   to [Sink.call] (the block interpreter hard-coded -1).  The recording
   and detector paths never read that field, so golden identity holds;
   the object-race baseline gets usable sites out of it. *)

exception Runtime_error of string

type policy =
  | Random_walk
  | Pct of { depth : int; horizon : int }

type config = {
  seed : int;
  quantum : int;
  max_steps : int;
  all_accesses : bool;
  granularity : Memloc.granularity;
  pseudo_locks : bool;
  policy : policy;
}

let default_config =
  {
    seed = 42;
    quantum = 20;
    max_steps = 200_000_000;
    all_accesses = false;
    granularity = Memloc.Per_field;
    pseudo_locks = true;
    policy = Random_walk;
  }

type result = {
  r_prints : (string * Value.t option) list;
  r_steps : int;
  r_max_threads : int;
  r_heap : Heap.t;
}

(* All fields but the register file are mutable so returned frames can
   be recycled through the per-context free list ([alloc_frame]): a
   frame is reinitialized field by field on reuse, and its register
   array — keyed by exact size — is refilled with [Vnull], making a
   recycled frame indistinguishable from a fresh one. *)
type frame = {
  mutable f_meth : lmethod;
  f_regs : Value.t array;
  mutable f_pc : int; (* index into [f_meth.m_code] *)
  mutable f_dst : Ir.reg option; (* caller register receiving the return value *)
}

type status =
  | Runnable
  | Blocked of int (* waiting to enter the monitor of this object *)
  | Joining of int (* waiting for this thread id to finish *)
  | Waiting of int (* in the wait set of this object's monitor *)
  | Finished

type thread = {
  t_id : int;
  mutable t_frames : frame list;
  mutable t_status : status;
  t_held : (int, int) Hashtbl.t; (* monitor object -> reentrancy count *)
  mutable t_lockset : Lockset_id.id; (* outermost real locks + pseudo *)
  mutable t_wait : int option; (* saved reentrancy count across wait() *)
}

type monitor = {
  mutable owner : int option;
  mutable count : int;
  mutable waiters : int list; (* FIFO wait set *)
}

(* Filler for unused thread-array slots; never scheduled. *)
let dummy_thread =
  {
    t_id = -1;
    t_frames = [];
    t_status = Finished;
    t_held = Hashtbl.create 1;
    t_lockset = Lockset_id.empty;
    t_wait = None;
  }

type st = {
  image : image;
  cfg : config;
  sink : Sink.t;
  spec :
    (cell:int ->
    tid:int ->
    loc:int ->
    kind:Drd_core.Event.kind ->
    locks:Lockset_id.id ->
    site:int ->
    unit)
    option;
      (* [sink.spec], pre-gated on the VM config: specialized trace ops
         only take their fast path under the per-field granularity and
         trace-driven (not [all_accesses]) event model the link-time
         classification assumed; any other config falls back to the
         generic [access] path, which is always exact. *)
  heap : Heap.t;
  globals : Value.t array; (* static field slots *)
  mutable threads : thread array; (* tid -> thread; first [nthreads] live *)
  mutable nthreads : int;
  (* Heap-indexed side tables, grown together on demand: heap ids are
     dense and never reused, so an array beats a hashtable on every
     access the hot loop makes. *)
  mutable monitors : monitor option array; (* heap id -> monitor *)
  mutable obj_cls : int array; (* heap id -> class id, or -1 *)
  mutable thread_of_obj : int array; (* heap id -> started tid, or -1 *)
  class_obj_ids : int array; (* class id -> per-class lock heap id, or -1 *)
  templates : Value.t array array; (* class id -> default field values *)
  mutable ready_buf : int array; (* scratch: ready tids, newest first *)
  frame_pool : frame list array; (* free frames, indexed by register count *)
  pseudo : Pseudo_lock.t;
  rng : Random.State.t;
  mutable steps : int;
  mutable prints : (string * Value.t option) list; (* reverse order *)
}

let error fmt = Format.kasprintf (fun m -> raise (Runtime_error m)) fmt

(* Unchecked indexing for the two arrays the linker has already
   validated ([Link.validate]: every register operand is inside its
   method's register file, every pc the interpreter can reach is inside
   [m_code]).  Used ONLY for register files and code fetch — heap-side
   arrays keep their bounds checks. *)
let ( .%() ) = Array.unsafe_get
let ( .%()<- ) = Array.unsafe_set

(* Grow the heap-indexed side tables to cover heap id [id]. *)
let ensure st id =
  if id >= Array.length st.obj_cls then begin
    let cap = max (2 * Array.length st.obj_cls) (id + 1) in
    let grow a fill =
      let b = Array.make cap fill in
      Array.blit a 0 b 0 (Array.length a);
      b
    in
    st.obj_cls <- grow st.obj_cls (-1);
    st.thread_of_obj <- grow st.thread_of_obj (-1);
    st.monitors <- grow st.monitors None
  end

let find_thread st tid =
  if tid < 0 || tid >= st.nthreads then error "unknown thread id %d" tid
  else st.threads.(tid)

let new_thread st frames =
  let tid = st.nthreads in
  st.nthreads <- st.nthreads + 1;
  let t =
    {
      t_id = tid;
      t_frames = frames;
      t_status = Runnable;
      t_held = Hashtbl.create 4;
      t_lockset = Lockset_id.empty;
      t_wait = None;
    }
  in
  if st.cfg.pseudo_locks then begin
    let s = Heap.alloc_opaque st.heap (Printf.sprintf "S_%d" tid) in
    ensure st s;
    Pseudo_lock.on_thread_start st.pseudo tid s;
    t.t_lockset <- Pseudo_lock.locks_of st.pseudo tid
  end;
  if tid >= Array.length st.threads then begin
    let b = Array.make (max 8 (2 * (tid + 1))) dummy_thread in
    Array.blit st.threads 0 b 0 (Array.length st.threads);
    st.threads <- b
  end;
  st.threads.(tid) <- t;
  t

let monitor_of st obj =
  ensure st obj;
  match st.monitors.(obj) with
  | Some m -> m
  | None ->
      let m = { owner = None; count = 0; waiters = [] } in
      st.monitors.(obj) <- Some m;
      m

let class_obj st cid =
  let id = st.class_obj_ids.(cid) in
  if id >= 0 then id
  else begin
    let id = Heap.alloc_opaque st.heap ("class " ^ st.image.i_classes.(cid)) in
    ensure st id;
    st.class_obj_ids.(cid) <- id;
    id
  end

let as_ref ~what = function
  | Value.Vref o -> o
  | Value.Vnull -> error "NullPointerException (%s)" what
  | _ -> error "type confusion: expected reference (%s)" what

(* Structural equality on values without the generic [caml_equal] call;
   agrees with polymorphic [=] on every [Value.t]. *)
let value_eq a b =
  a == b
  ||
  match (a, b) with
  | Value.Vint x, Value.Vint y -> x = y
  | Value.Vbool x, Value.Vbool y -> x = y
  | Value.Vref x, Value.Vref y -> x = y
  | Value.Vnull, Value.Vnull -> true
  | _ -> false

let obj_fields st o =
  match Heap.get st.heap o with
  | Heap.Obj { fields; _ } -> fields
  | _ -> error "type confusion: expected object #%d" o

let arr_elems st o =
  match Heap.get st.heap o with
  | Heap.Arr { elems } -> elems
  | _ -> error "type confusion: expected array #%d" o

let emit_access st thr ~loc ~kind ~site =
  st.sink.Sink.access ~tid:thr.t_id ~loc ~kind ~locks:thr.t_lockset ~site

let raw_access st thr ~loc ~kind =
  if st.cfg.all_accesses then emit_access st thr ~loc ~kind ~site:(-1)

(* The call hot path: reuse a returned frame of the exact register
   count when one is free, else allocate.  The refill makes reuse
   unobservable — registers start [Vnull] either way. *)
let alloc_frame st (m : lmethod) dst =
  let n = m.m_nregs in
  match st.frame_pool.(n) with
  | fr :: tl ->
      st.frame_pool.(n) <- tl;
      Array.fill fr.f_regs 0 n Value.Vnull;
      fr.f_meth <- m;
      fr.f_pc <- m.m_entry;
      fr.f_dst <- dst;
      fr
  | [] ->
      { f_meth = m; f_regs = Array.make n Value.Vnull; f_pc = m.m_entry; f_dst = dst }

let recycle_frame st fr =
  let n = Array.length fr.f_regs in
  st.frame_pool.(n) <- fr :: st.frame_pool.(n)

let push_frame st thr mid dst ~copy_args =
  let m = st.image.i_methods.(mid) in
  let fr = alloc_frame st m dst in
  copy_args fr.f_regs;
  thr.t_frames <- fr :: thr.t_frames

(* Execute one non-terminator instruction of the top frame.  [regs] is
   [frame.f_regs] and [pc] the instruction's slot (the slice loop keeps
   both in locals and passes them in), so error paths read the line from
   [m_lines.(pc)].  Returns [false] when the thread must retry the same
   instruction later (blocked). *)
let exec_instr st thr frame regs (op : lop) pc : bool =
  match op with
  | Lconst (d, Ir.Cint n) ->
      regs.%(d) <- Value.of_int n;
      true
  | Lconst (d, Ir.Cbool b) ->
      regs.%(d) <- Value.of_bool b;
      true
  | Lconst (d, Ir.Cnull) ->
      regs.%(d) <- Value.Vnull;
      true
  | Lmove (d, s) ->
      regs.%(d) <- regs.%(s);
      true
  | Lbinop (op, d, l, r) ->
      let v =
        match op with
        | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod ->
            let a = Value.to_int regs.%(l) and b = Value.to_int regs.%(r) in
            let n =
              match op with
              | Ast.Add -> a + b
              | Ast.Sub -> a - b
              | Ast.Mul -> a * b
              | Ast.Div ->
                  if b = 0 then error "division by zero at line %d" frame.f_meth.m_lines.(pc)
                  else a / b
              | Ast.Mod ->
                  if b = 0 then error "division by zero at line %d" frame.f_meth.m_lines.(pc)
                  else a mod b
              | _ -> assert false
            in
            Value.of_int n
        | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
            let a = Value.to_int regs.%(l) and b = Value.to_int regs.%(r) in
            Value.of_bool
              (match op with
              | Ast.Lt -> a < b
              | Ast.Le -> a <= b
              | Ast.Gt -> a > b
              | _ -> a >= b)
        | Ast.Eq -> Value.of_bool (value_eq regs.%(l) regs.%(r))
        | Ast.Ne -> Value.of_bool (not (value_eq regs.%(l) regs.%(r)))
        | Ast.And | Ast.Or ->
            assert false (* expanded into control flow by lowering *)
      in
      regs.%(d) <- v;
      true
  | Lunop (Ast.Neg, d, s) ->
      regs.%(d) <- Value.of_int (-Value.to_int regs.%(s));
      true
  | Lunop (Ast.Not, d, s) ->
      regs.%(d) <- Value.of_bool (not (Value.to_bool regs.%(s)));
      true
  | Lgetfield (d, o, fm) ->
      (* The error label is built only on the failure path: [as_ref]'s
         [~what] argument would otherwise allocate a string per access. *)
      let obj =
        match regs.%(o) with
        | Value.Vref obj -> obj
        | v -> as_ref ~what:(fm.Ir.fm_name ^ " load") v
      in
      regs.%(d) <- (obj_fields st obj).(fm.Ir.fm_index);
      raw_access st thr
        ~loc:(Memloc.field ~gran:st.cfg.granularity ~obj ~index:fm.Ir.fm_index)
        ~kind:Event.Read;
      true
  | Lputfield (o, fm, s) ->
      let obj =
        match regs.%(o) with
        | Value.Vref obj -> obj
        | v -> as_ref ~what:(fm.Ir.fm_name ^ " store") v
      in
      (obj_fields st obj).(fm.Ir.fm_index) <- regs.%(s);
      raw_access st thr
        ~loc:(Memloc.field ~gran:st.cfg.granularity ~obj ~index:fm.Ir.fm_index)
        ~kind:Event.Write;
      true
  | Lgetstatic (d, sm) ->
      regs.%(d) <- st.globals.(sm.Ir.sm_slot);
      raw_access st thr
        ~loc:(Memloc.static ~gran:st.cfg.granularity ~slot:sm.Ir.sm_slot)
        ~kind:Event.Read;
      true
  | Lputstatic (sm, s) ->
      st.globals.(sm.Ir.sm_slot) <- regs.%(s);
      raw_access st thr
        ~loc:(Memloc.static ~gran:st.cfg.granularity ~slot:sm.Ir.sm_slot)
        ~kind:Event.Write;
      true
  | Laload (d, a, idx) ->
      let arr = as_ref ~what:"array load" regs.%(a) in
      regs.%(d) <- (arr_elems st arr).(Value.to_int regs.%(idx));
      raw_access st thr ~loc:(Memloc.array ~gran:st.cfg.granularity ~obj:arr) ~kind:Event.Read;
      true
  | Lastore (a, idx, s) ->
      let arr = as_ref ~what:"array store" regs.%(a) in
      (arr_elems st arr).(Value.to_int regs.%(idx)) <- regs.%(s);
      raw_access st thr ~loc:(Memloc.array ~gran:st.cfg.granularity ~obj:arr) ~kind:Event.Write;
      true
  | Lnewobj (d, cid) ->
      let id =
        Heap.alloc st.heap
          (Heap.Obj
             {
               cls = st.image.i_classes.(cid);
               fields = Array.copy st.templates.(cid);
             })
      in
      ensure st id;
      st.obj_cls.(id) <- cid;
      regs.%(d) <- Value.Vref id;
      true
  | Lnewarr (d, elem, dims) ->
      let ds = List.map (fun r -> Value.to_int regs.%(r)) dims in
      List.iter
        (fun n -> if n < 0 then error "negative array size at line %d" frame.f_meth.m_lines.(pc))
        ds;
      let id = Heap.alloc_arr st.heap elem ds in
      ensure st id;
      regs.%(d) <- Value.Vref id;
      true
  | Larrlen (d, a) ->
      let arr = as_ref ~what:"length" regs.%(a) in
      regs.%(d) <- Value.of_int (Array.length (arr_elems st arr));
      true
  | Lclassobj (d, cid) ->
      regs.%(d) <- Value.Vref (class_obj st cid);
      true
  | Lnullcheck r ->
      (match regs.%(r) with
      | Value.Vnull ->
          error "NullPointerException at %s line %d" frame.f_meth.m_key
            frame.f_meth.m_lines.(pc)
      | _ -> ());
      true
  | Lboundscheck (a, idx) ->
      let arr = as_ref ~what:"array access" regs.%(a) in
      let n = Array.length (arr_elems st arr) in
      let k = Value.to_int regs.%(idx) in
      if k < 0 || k >= n then
        error "ArrayIndexOutOfBoundsException: %d (length %d) at %s line %d" k
          n frame.f_meth.m_key frame.f_meth.m_lines.(pc);
      true
  | Lcall (dst, target, args, site) ->
      let mid =
        match target with
        | Lc_method mid -> mid
        | Lc_virtual (slot, name) ->
            let recv =
              match regs.%(args.(0)) with
              | Value.Vref recv -> recv
              | v -> as_ref ~what:("call " ^ name) v
            in
            (match st.sink.Sink.call with
            | Some f -> f ~tid:thr.t_id ~obj:recv ~locks:thr.t_lockset ~site
            | None -> ());
            ensure st recv;
            let cid = st.obj_cls.(recv) in
            let mid = if cid >= 0 then st.image.i_vtables.(cid).(slot) else -1 in
            if mid < 0 then
              error "no method %s on class %s" name (Heap.class_of st.heap recv)
            else mid
      in
      push_frame st thr mid dst ~copy_args:(fun nregs ->
          for k = 0 to Array.length args - 1 do
            nregs.(k) <- regs.%(args.(k))
          done);
      true
  | Lmonitorenter r -> (
      let obj = as_ref ~what:"monitorenter" regs.%(r) in
      let m = monitor_of st obj in
      match m.owner with
      | Some o when o = thr.t_id ->
          m.count <- m.count + 1;
          Hashtbl.replace thr.t_held obj m.count;
          true
      | None ->
          m.owner <- Some thr.t_id;
          m.count <- 1;
          Hashtbl.replace thr.t_held obj 1;
          thr.t_lockset <- Lockset_id.add obj thr.t_lockset;
          st.sink.Sink.acquire ~tid:thr.t_id ~lock:obj;
          true
      | Some _ ->
          thr.t_status <- Blocked obj;
          false)
  | Lmonitorexit r ->
      let obj = as_ref ~what:"monitorexit" regs.%(r) in
      let m = monitor_of st obj in
      if (match m.owner with Some o -> o <> thr.t_id | None -> true) then
        error "IllegalMonitorStateException at %s line %d" frame.f_meth.m_key
          frame.f_meth.m_lines.(pc);
      m.count <- m.count - 1;
      if m.count = 0 then begin
        m.owner <- None;
        Hashtbl.remove thr.t_held obj;
        thr.t_lockset <- Lockset_id.remove obj thr.t_lockset;
        st.sink.Sink.release ~tid:thr.t_id ~lock:obj
      end
      else Hashtbl.replace thr.t_held obj m.count;
      true
  | Lthreadstart r ->
      let obj = as_ref ~what:"start" regs.%(r) in
      ensure st obj;
      if st.thread_of_obj.(obj) >= 0 then
        error "IllegalThreadStateException: thread #%d started twice" obj;
      let cid = st.obj_cls.(obj) in
      let run_slot = st.image.i_run_slot in
      let mid =
        if cid >= 0 && run_slot >= 0 then st.image.i_vtables.(cid).(run_slot)
        else -1
      in
      if mid < 0 then
        error "class %s has no run method" (Heap.class_of st.heap obj);
      let m = st.image.i_methods.(mid) in
      let fr = alloc_frame st m None in
      fr.f_regs.(0) <- Value.Vref obj;
      let child = new_thread st [ fr ] in
      st.thread_of_obj.(obj) <- child.t_id;
      st.sink.Sink.thread_start ~parent:thr.t_id ~child:child.t_id;
      true
  | Lthreadjoin r ->
      let obj = as_ref ~what:"join" regs.%(r) in
      ensure st obj;
      let tid = st.thread_of_obj.(obj) in
      if tid < 0 then true (* joining a never-started thread returns at once *)
      else
        let target = find_thread st tid in
        if (match target.t_status with Finished -> true | _ -> false) then begin
          if st.cfg.pseudo_locks then begin
            Pseudo_lock.on_join st.pseudo ~joiner:thr.t_id ~joinee:tid;
            thr.t_lockset <-
              Lockset_id.union thr.t_lockset
                (Pseudo_lock.locks_of st.pseudo thr.t_id)
          end;
          st.sink.Sink.thread_join ~joiner:thr.t_id ~joinee:tid;
          true
        end
        else begin
          thr.t_status <- Joining tid;
          false
        end
  | Lwait r -> (
      let obj = as_ref ~what:"wait" regs.%(r) in
      let m = monitor_of st obj in
      match thr.t_wait with
      | None ->
          (* Phase 1: release the monitor entirely and join the wait
             set.  Resumes at this same instruction once notified. *)
          if (match m.owner with Some o -> o <> thr.t_id | None -> true) then
            error
              "IllegalMonitorStateException: wait at %s line %d without \
               owning the monitor"
              frame.f_meth.m_key frame.f_meth.m_lines.(pc);
          thr.t_wait <- Some m.count;
          m.owner <- None;
          m.count <- 0;
          m.waiters <- m.waiters @ [ thr.t_id ];
          Hashtbl.remove thr.t_held obj;
          thr.t_lockset <- Lockset_id.remove obj thr.t_lockset;
          st.sink.Sink.release ~tid:thr.t_id ~lock:obj;
          thr.t_status <- Waiting obj;
          false
      | Some saved -> (
          (* Phase 2: notified; re-acquire with the saved count. *)
          match m.owner with
          | None ->
              m.owner <- Some thr.t_id;
              m.count <- saved;
              Hashtbl.replace thr.t_held obj saved;
              thr.t_lockset <- Lockset_id.add obj thr.t_lockset;
              st.sink.Sink.acquire ~tid:thr.t_id ~lock:obj;
              thr.t_wait <- None;
              true
          | Some _ ->
              thr.t_status <- Blocked obj;
              false))
  | Lnotify (r, all) ->
      let obj = as_ref ~what:"notify" regs.%(r) in
      let m = monitor_of st obj in
      if (match m.owner with Some o -> o <> thr.t_id | None -> true) then
        error
          "IllegalMonitorStateException: notify at %s line %d without owning \
           the monitor"
          frame.f_meth.m_key frame.f_meth.m_lines.(pc);
      let woken, remaining =
        match m.waiters with
        | [] -> ([], [])
        | w :: rest -> if all then (m.waiters, []) else ([ w ], rest)
      in
      m.waiters <- remaining;
      List.iter
        (fun tid ->
          let t = find_thread st tid in
          (* The woken thread re-contends for the monitor. *)
          t.t_status <- Blocked obj)
        woken;
      true
  | Lyield -> true
  | Lprint (tag, r) ->
      let v = Option.map (fun r -> regs.%(r)) r in
      st.prints <- (tag, v) :: st.prints;
      true
  | Ltrace_field (o, index, kind, site) ->
      let obj = as_ref ~what:"trace" regs.%(o) in
      emit_access st thr ~loc:(Memloc.field ~gran:st.cfg.granularity ~obj ~index) ~kind ~site;
      true
  | Ltrace_static (slot, kind, site) ->
      emit_access st thr ~loc:(Memloc.static ~gran:st.cfg.granularity ~slot) ~kind ~site;
      true
  | Ltrace_array (a, kind, site) ->
      emit_access st thr
        ~loc:(Memloc.array ~gran:st.cfg.granularity ~obj:(as_ref ~what:"trace" regs.%(a)))
        ~kind ~site;
      true
  | Ltrace_field_spec (o, index, kind, site, cell) ->
      let obj = as_ref ~what:"trace" regs.%(o) in
      let loc = Memloc.field ~gran:st.cfg.granularity ~obj ~index in
      (match st.spec with
      | Some f -> f ~cell ~tid:thr.t_id ~loc ~kind ~locks:thr.t_lockset ~site
      | None -> emit_access st thr ~loc ~kind ~site);
      true
  | Ltrace_static_spec (slot, kind, site, cell) ->
      let loc = Memloc.static ~gran:st.cfg.granularity ~slot in
      (match st.spec with
      | Some f -> f ~cell ~tid:thr.t_id ~loc ~kind ~locks:thr.t_lockset ~site
      | None -> emit_access st thr ~loc ~kind ~site);
      true
  | Ltrace_array_spec (a, kind, site, cell) ->
      let loc =
        Memloc.array ~gran:st.cfg.granularity
          ~obj:(as_ref ~what:"trace" regs.%(a))
      in
      (match st.spec with
      | Some f -> f ~cell ~tid:thr.t_id ~loc ~kind ~locks:thr.t_lockset ~site
      | None -> emit_access st thr ~loc ~kind ~site);
      true
  | Lgoto _ | Lif _ | Lret _ | Ltrap _ ->
      assert false (* terminators are handled by the slice loop *)

let exec_ret st thr frame v =
  let value = match v with Some r -> Some frame.f_regs.(r) | None -> None in
  thr.t_frames <- List.tl thr.t_frames;
  (match thr.t_frames with
  | [] ->
      thr.t_status <- Finished;
      st.sink.Sink.thread_exit ~tid:thr.t_id
  | caller :: _ -> (
      match (frame.f_dst, value) with
      | Some d, Some v -> caller.f_regs.(d) <- v
      | Some _, None ->
          error "method %s returned no value" frame.f_meth.m_key
      | None, _ -> ()));
  (* Recycle only after the return value has been read out of [f_regs]
     and delivered. *)
  recycle_frame st frame

(* Can this thread make progress right now? *)
let ready st t =
  match t.t_status with
  | Runnable -> true
  | Finished -> false
  | Waiting _ -> false (* until notified *)
  | Blocked obj -> (match (monitor_of st obj).owner with None -> true | Some _ -> false)
  | Joining tid -> (
      match (find_thread st tid).t_status with Finished -> true | _ -> false)

(* Run one scheduling slice of up to [n] instructions on thread [t].
   Returns when the slice ends, the thread blocks, yields or finishes;
   the result says whether the slice ended at a [Yield] (the PCT
   scheduler deprioritizes the yielder so spin-wait loops cannot starve
   the thread they are waiting on).

   Terminators are slots in the flat stream, but stay what they were in
   the block interpreter: one step that costs no slice budget. *)
let run_slice st t n =
  t.t_status <- Runnable;
  let max_steps = st.cfg.max_steps in
  let continue_ = ref true in
  let yielded = ref false in
  let budget = ref n in
  while
    !continue_ && !budget > 0
    && (match t.t_status with Runnable -> true | _ -> false)
  do
    match t.t_frames with
    | [] -> continue_ := false
    | frame :: _ ->
        (* Inner loop over one frame: [code], [regs], [pc] and the step
           counter stay in locals until the frame changes (call/return),
           the thread stops advancing, or the slice ends.  [frame.f_pc]
           and [st.steps] are flushed at every exit, so anything outside
           this loop (the scheduler's change points, a resumed slice)
           sees exactly the state the per-step version maintained. *)
        let code = frame.f_meth.m_code in
        let regs = frame.f_regs in
        let pc = ref frame.f_pc in
        let steps = ref st.steps in
        let inner = ref true in
        while !inner do
          incr steps;
          if !steps > max_steps then begin
            frame.f_pc <- !pc;
            st.steps <- !steps;
            error "step limit exceeded"
          end;
          match code.%(!pc) with
          | Lgoto l -> pc := l
          | Lif (c, tl, fl) ->
              pc := if Value.to_bool regs.%(c) then tl else fl
          | Lret v ->
              inner := false;
              frame.f_pc <- !pc;
              st.steps <- !steps;
              exec_ret st t frame v
          | Ltrap msg ->
              frame.f_pc <- !pc;
              st.steps <- !steps;
              error "%s in %s" msg frame.f_meth.m_key
          | op ->
              let advanced = exec_instr st t frame regs op !pc in
              if advanced then begin
                (* The instruction may have pushed a new frame; [frame]
                   still designates the frame the instruction came from. *)
                incr pc;
                decr budget;
                match op with
                | Lyield ->
                    continue_ := false;
                    yielded := true;
                    inner := false
                | Lcall _ ->
                    (* A frame was pushed (or the call trapped into an
                       error) — leave this frame parked at the return
                       pc and re-enter on the new top frame. *)
                    inner := false
                | _ -> if !budget <= 0 then inner := false
              end
              else begin
                continue_ := false;
                inner := false
              end
        done;
        frame.f_pc <- !pc;
        st.steps <- !steps
  done;
  !yielded

(* A resettable run context: every array and table one execution needs,
   allocated once and reused across runs.  [run_ctx] resets it at the
   {e start} of each run, so the previous run's [r_heap] stays readable
   until the next run begins on the same context.  The initial sizes
   below must match what [run] historically allocated per run — a reused
   context must grow (and therefore behave) exactly like a fresh one. *)
type ctx = {
  cx_image : image;
  cx_templates : Value.t array array; (* class id -> default field values *)
  cx_globals0 : Value.t array; (* pristine static slots, blitted on reset *)
  cx_globals : Value.t array;
  cx_heap : Heap.t;
  cx_pseudo : Pseudo_lock.t;
  cx_class_obj_ids : int array;
  mutable cx_threads : thread array;
  mutable cx_monitors : monitor option array;
  mutable cx_obj_cls : int array;
  mutable cx_thread_of_obj : int array;
  mutable cx_ready_buf : int array;
  mutable cx_prio : int array; (* PCT priorities, tid-indexed *)
  cx_frame_pool : frame list array; (* free frames, by register count *)
  mutable cx_used : bool; (* a run has touched the context since reset *)
}

let create_ctx (image : image) : ctx =
  let tprog = image.i_prog.Ir.p_tprog in
  let globals0 =
    Array.map
      (fun (sf : Tast.sfield_info) -> Value.default_of sf.Tast.sf_ty)
      tprog.Tast.statics
  in
  {
    cx_image = image;
    cx_templates =
      Array.map
        (fun fields ->
          Array.map
            (fun (f : Tast.field_info) -> Value.default_of f.Tast.fld_ty)
            fields)
        image.i_class_fields;
    cx_globals0 = globals0;
    cx_globals = Array.copy globals0;
    cx_heap = Heap.create ();
    (* Join pseudo-locks live in the heap id space, so they can never
       collide with real lock (object) identities. *)
    cx_pseudo = Pseudo_lock.create ();
    cx_class_obj_ids = Array.make (max (class_count image) 1) (-1);
    cx_threads = Array.make 8 dummy_thread;
    cx_monitors = Array.make 1024 None;
    cx_obj_cls = Array.make 1024 (-1);
    cx_thread_of_obj = Array.make 1024 (-1);
    cx_ready_buf = Array.make 8 0;
    cx_prio = Array.make 8 min_int;
    cx_frame_pool =
      (let max_nregs =
         Array.fold_left
           (fun acc (m : lmethod) -> max acc m.m_nregs)
           0 image.i_methods
       in
       Array.make (max_nregs + 1) []);
    cx_used = false;
  }

(* Whole-array fills rather than tracked dirty extents: the arrays are
   a few thousand words, two orders of magnitude below what rebuilding
   them allocated, and a full fill cannot miss a stale slot. *)
let reset_ctx cx =
  if cx.cx_used then begin
    cx.cx_used <- false;
    Array.blit cx.cx_globals0 0 cx.cx_globals 0 (Array.length cx.cx_globals);
    Heap.clear cx.cx_heap;
    Pseudo_lock.reset cx.cx_pseudo;
    Array.fill cx.cx_class_obj_ids 0 (Array.length cx.cx_class_obj_ids) (-1);
    Array.fill cx.cx_threads 0 (Array.length cx.cx_threads) dummy_thread;
    Array.fill cx.cx_monitors 0 (Array.length cx.cx_monitors) None;
    Array.fill cx.cx_obj_cls 0 (Array.length cx.cx_obj_cls) (-1);
    Array.fill cx.cx_thread_of_obj 0 (Array.length cx.cx_thread_of_obj) (-1);
    Array.fill cx.cx_prio 0 (Array.length cx.cx_prio) min_int
  end

let run_ctx ?(config = default_config) ~sink (cx : ctx) : result =
  reset_ctx cx;
  cx.cx_used <- true;
  let image = cx.cx_image in
  let st =
    {
      image;
      cfg = config;
      sink;
      spec =
        (if config.all_accesses || config.granularity <> Memloc.Per_field then
           None
         else sink.Sink.spec);
      heap = cx.cx_heap;
      globals = cx.cx_globals;
      threads = cx.cx_threads;
      nthreads = 0;
      monitors = cx.cx_monitors;
      obj_cls = cx.cx_obj_cls;
      thread_of_obj = cx.cx_thread_of_obj;
      class_obj_ids = cx.cx_class_obj_ids;
      templates = cx.cx_templates;
      ready_buf = cx.cx_ready_buf;
      (* Survives resets on purpose: parked frames carry no state a
         reuse does not overwrite, and their registers are refilled with
         [Vnull] before handing them out. *)
      frame_pool = cx.cx_frame_pool;
      pseudo = cx.cx_pseudo;
      rng = Random.State.make [| config.seed |];
      steps = 0;
      prints = [];
    }
  in
  let main = image.i_methods.(image.i_main) in
  ignore (new_thread st [ alloc_frame st main None ]);
  (* Scheduling policy (PCT state lives outside the thread records).
     PCT (Burckhardt et al., ASPLOS 2010): every thread gets a random
     priority above [depth]; the scheduler always runs the
     highest-priority ready thread; at [depth] pre-chosen step counts
     within [horizon] the running thread's priority drops to the rank of
     the change point (below every initial priority).  All randomness
     comes from the seeded [st.rng], so a (seed, policy) pair names one
     schedule exactly. *)
  (* Thread priorities, indexed by tid (dense, never reused).  [min_int]
     marks "not yet assigned" — real priorities are either non-negative
     (initial draws, change-point ranks) or small negatives (the yield
     floor), so the sentinel cannot collide. *)
  let pct_prio = ref (Array.make 8 min_int) in
  let prio_slot tid =
    if tid >= Array.length !pct_prio then begin
      let b = Array.make (max 8 (2 * (tid + 1))) min_int in
      Array.blit !pct_prio 0 b 0 (Array.length !pct_prio);
      pct_prio := b
    end;
    !pct_prio
  in
  (* Monotonically decreasing floor for yield-deprioritization: change
     points assign ranks 0..depth-1, so yielders go below them, most
     recent lowest — round-robin among spinning threads. *)
  let pct_floor = ref 0 in
  let pct_points =
    ref
      (match config.policy with
      | Random_walk -> []
      | Pct { depth; horizon } ->
          List.init depth (fun rank ->
              (1 + Random.State.int st.rng (max horizon 1), rank))
          |> List.sort compare)
  in
  let prio_of t =
    let a = prio_slot t.t_id in
    let p = a.(t.t_id) in
    if p <> min_int then p
    else begin
      let depth =
        match config.policy with Pct { depth; _ } -> depth | _ -> 0
      in
      let p = depth + Random.State.int st.rng 0x3FFFFFFF in
      a.(t.t_id) <- p;
      p
    end
  in
  let pick_pct nready =
    (* Highest priority wins; ties (vanishingly rare) go to the lowest
       thread id for determinism.  This walks [ready_buf] in the order
       the frozen interpreter's fold walked its ready list, with the
       comparison written as the same two-binding [let] — lazy priority
       draws consume the RNG identically. *)
    let best = ref st.threads.(st.ready_buf.(0)) in
    for i = 1 to nready - 1 do
      let t = st.threads.(st.ready_buf.(i)) in
      let b = !best in
      let pb = prio_of b and pt = prio_of t in
      if pt > pb || (pt = pb && t.t_id < b.t_id) then best := t
    done;
    !best
  in
  let cross_change_points t =
    match !pct_points with
    | (steps_at, rank) :: rest when st.steps >= steps_at ->
        (prio_slot t.t_id).(t.t_id) <- rank;
        pct_points := rest
    | _ -> ()
  in
  (* One scheduling decision: scan threads newest-first (the order the
     block interpreter kept its thread list in — RNG consumption depends
     on it) into the reusable ready buffer, then let the policy pick. *)
  let rec loop () =
    if Array.length st.ready_buf < st.nthreads then
      st.ready_buf <- Array.make (2 * st.nthreads) 0;
    let nalive = ref 0 and nready = ref 0 and nwaiting = ref 0 in
    for tid = st.nthreads - 1 downto 0 do
      let t = st.threads.(tid) in
      match t.t_status with
      | Finished -> ()
      | s ->
          incr nalive;
          (match s with Waiting _ -> incr nwaiting | _ -> ());
          if ready st t then begin
            st.ready_buf.(!nready) <- tid;
            incr nready
          end
    done;
    if !nalive > 0 then begin
      (if !nready = 0 then
         if !nwaiting > 0 then
           error
             "deadlock: %d of %d remaining threads are stuck in wait() with \
              no runnable thread left to notify them"
             !nwaiting !nalive
         else error "deadlock: no runnable thread among %d" !nalive);
      (match config.policy with
      | Random_walk ->
          let k = Random.State.int st.rng !nready in
          let t = st.threads.(st.ready_buf.(k)) in
          let n = 1 + Random.State.int st.rng config.quantum in
          ignore (run_slice st t n : bool)
      | Pct _ ->
          let t = pick_pct !nready in
          let yielded = run_slice st t (max config.quantum 1) in
          cross_change_points t;
          if yielded then begin
            decr pct_floor;
            (prio_slot t.t_id).(t.t_id) <- !pct_floor
          end);
      loop ()
    end
  in
  (* The run may replace the growable arrays ([ensure], [new_thread],
     [prio_slot] all reallocate on demand); write them back to the
     context on BOTH exits — normal completion and a [Runtime_error]
     escape — so that resetting after an aborted run clears the arrays
     the run actually used, never a stale pre-growth copy. *)
  Fun.protect
    ~finally:(fun () ->
      cx.cx_threads <- st.threads;
      cx.cx_monitors <- st.monitors;
      cx.cx_obj_cls <- st.obj_cls;
      cx.cx_thread_of_obj <- st.thread_of_obj;
      cx.cx_ready_buf <- st.ready_buf;
      cx.cx_prio <- !pct_prio)
    loop;
  {
    r_prints = List.rev st.prints;
    r_steps = st.steps;
    r_max_threads = st.nthreads;
    r_heap = st.heap;
  }

let run ?config ~sink (image : image) : result =
  run_ctx ?config ~sink (create_ctx image)
