(** The MiniJava virtual machine: a deterministic, seeded, preemptive
    interpreter with user-level threads, reentrant monitors, and
    access-event emission at [Trace] pseudo-instructions.  It executes
    the flat {!Link.image} the link phase produces — dense method ids,
    vtable dispatch, integer pcs, array-backed run-time tables — so the
    hot loop touches no string keys and allocates only frames.

    The scheduler interleaves threads at instruction granularity with
    randomized (but seed-deterministic) slice lengths, so a given seed
    always produces the same event stream — race reports are
    reproducible, and tests can sweep seeds.  Schedules, RNG draws and
    event streams are bit-identical to the frozen pre-link interpreter
    ({!Interp_ref}); the golden suite enforces this. *)

module Ir = Drd_ir.Ir
module Link = Drd_ir.Link

exception Runtime_error of string
(** Fatal execution error: null dereference, array bounds violation,
    division by zero, missing return, double thread start, illegal
    monitor state (wait/notify without owning the monitor), deadlock
    (including every remaining thread stuck in [wait()]), step-limit
    exhaustion, or an unknown thread id reaching the scheduler. *)

(** Pluggable scheduling policy.  Both policies draw every decision from
    the seeded RNG, so a (seed, policy) pair names one schedule exactly
    and any run is reproducible from its config. *)
type policy =
  | Random_walk
      (** The historical scheduler: a uniformly random ready thread runs
          a slice of 1..[quantum] instructions. *)
  | Pct of { depth : int; horizon : int }
      (** PCT-style priority scheduling (Burckhardt et al., ASPLOS
          2010): threads get random priorities; the highest-priority
          ready thread always runs; at [depth] random step counts drawn
          from [1..horizon] the running thread's priority drops below
          every initial priority.  Finds bugs of "depth" d with
          probability ≥ 1/(n·k^(d-1)) per run instead of relying on
          uniform noise. *)

type config = {
  seed : int;  (** Scheduler seed. *)
  quantum : int;  (** Maximum instructions per scheduling slice. *)
  max_steps : int;  (** Fail-safe bound on total instructions executed. *)
  all_accesses : bool;
      (** Emit events at every raw memory access in addition to [Trace]
          instructions (used by tests; baselines normally run on fully
          instrumented code instead). *)
  granularity : Memloc.granularity;
      (** Location granularity for event locations (Table 3's
          "FieldsMerged" uses [Per_object]). *)
  pseudo_locks : bool;
      (** Model thread join with per-thread dummy locks (Section 2.3).
          Disabled when driving baselines like Eraser that have no join
          handling. *)
  policy : policy;  (** Thread-choice discipline; see {!policy}. *)
}

val default_config : config
(** seed 42, quantum 20, 200M steps, trace-only events, per-field
    granularity, [Random_walk] scheduling. *)

type result = {
  r_prints : (string * Value.t option) list;
      (** Output of [print] statements, in execution order. *)
  r_steps : int;  (** Total instructions executed. *)
  r_max_threads : int;  (** Number of threads ever created (incl. main). *)
  r_heap : Heap.t;  (** Final heap, for decoding location names. *)
}

val run : ?config:config -> sink:Sink.t -> Link.image -> result
(** Execute a linked image from its [main] method until every thread
    terminates.  Raises {!Runtime_error} on fatal errors.  Equivalent
    to [run_ctx ?config ~sink (create_ctx image)]. *)

type ctx
(** A resettable run context: the heap, thread table, monitor table,
    side tables and PCT priority array one execution needs, allocated
    once and reused across runs.  Contexts are single-domain — use one
    per worker. *)

val create_ctx : Link.image -> ctx

val run_ctx : ?config:config -> sink:Sink.t -> ctx -> result
(** Like {!run}, but executes inside the given context, resetting it at
    the {e start} of the run.  A run on a reused context is
    byte-identical (schedule, RNG draws, heap/lock/location ids, event
    stream, errors) to one on a fresh context — only the allocation
    behaviour differs.  The returned [r_heap] aliases the context's
    heap: it stays readable until the next [run_ctx] on the same
    context begins.  If the run raises {!Runtime_error}, the context
    remains valid and fully resets on its next use — an aborted run
    leaks no state into the next one. *)
