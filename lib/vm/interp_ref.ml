module Tast = Drd_lang.Tast
open Drd_core
open Drd_ir.Ir
module Ir = Drd_ir.Ir

(* The pre-link block interpreter, frozen verbatim when the linked-image
   interpreter ([Interp]) replaced it: methods looked up by "Class.name"
   string in a hashtable, virtual calls dispatched by a [Tast.dispatch]
   hierarchy walk, blocks executed by consing down [instr list], threads
   found by [List.find].

   It exists for two reasons:

   - it is the golden reference the byte-identity suite diffs the linked
     interpreter against (every report, recorded event log and hb
     fingerprint must match exactly, for every example program and
     scheduling policy);
   - it is the "before" engine `bench --vm` measures so the speedup in
     BENCH_vm.json is computed from the same binary and the same run.

   Do not "fix" or optimize this module: its value is that it does not
   change.  It shares [Interp]'s config/policy/result types and
   [Interp.Runtime_error] so harness code can drive either engine
   through one interface.  The only delta from the frozen source is the
   [Call] pattern arity (the IR now carries a call-site id, which this
   engine ignores, still reporting site -1 to [Sink.call] as it always
   did). *)

type policy = Interp.policy =
  | Random_walk
  | Pct of { depth : int; horizon : int }

type config = Interp.config = {
  seed : int;
  quantum : int;
  max_steps : int;
  all_accesses : bool;
  granularity : Memloc.granularity;
  pseudo_locks : bool;
  policy : policy;
}

let default_config = Interp.default_config

type result = Interp.result = {
  r_prints : (string * Value.t option) list;
  r_steps : int;
  r_max_threads : int;
  r_heap : Heap.t;
}

type frame = {
  f_mir : mir;
  f_regs : Value.t array;
  mutable f_block : int;
  mutable f_pc : instr list; (* remaining instructions of the block *)
  f_dst : reg option; (* caller register receiving the return value *)
}

type status =
  | Runnable
  | Blocked of int (* waiting to enter the monitor of this object *)
  | Joining of int (* waiting for this thread id to finish *)
  | Waiting of int (* in the wait set of this object's monitor *)
  | Finished

type thread = {
  t_id : int;
  mutable t_frames : frame list;
  mutable t_status : status;
  t_held : (int, int) Hashtbl.t; (* monitor object -> reentrancy count *)
  mutable t_lockset : Lockset_id.id; (* outermost real locks + pseudo *)
  mutable t_wait : int option; (* saved reentrancy count across wait() *)
}

type monitor = {
  mutable owner : int option;
  mutable count : int;
  mutable waiters : int list; (* FIFO wait set *)
}

type st = {
  prog : program;
  cfg : config;
  sink : Sink.t;
  heap : Heap.t;
  globals : Value.t array; (* static field slots *)
  mutable threads : thread list; (* reverse creation order *)
  mutable nthreads : int;
  monitors : (int, monitor) Hashtbl.t;
  class_objs : (string, int) Hashtbl.t;
  thread_of_obj : (int, int) Hashtbl.t;
  pseudo : Pseudo_lock.t;
  rng : Random.State.t;
  mutable steps : int;
  mutable prints : (string * Value.t option) list; (* reverse order *)
}

let error fmt = Format.kasprintf (fun m -> raise (Interp.Runtime_error m)) fmt

let frame_of st key dst args =
  match find_mir st.prog key with
  | None -> error "no such method %s" key
  | Some m ->
      let regs = Array.make (max m.mir_nregs 1) Value.Vnull in
      List.iteri (fun i v -> regs.(i) <- v) args;
      {
        f_mir = m;
        f_regs = regs;
        f_block = m.mir_entry;
        f_pc = m.mir_blocks.(m.mir_entry).b_instrs;
        f_dst = dst;
      }

let find_thread st tid = List.find (fun t -> t.t_id = tid) st.threads

let new_thread st frames =
  let tid = st.nthreads in
  st.nthreads <- st.nthreads + 1;
  let t =
    {
      t_id = tid;
      t_frames = frames;
      t_status = Runnable;
      t_held = Hashtbl.create 4;
      t_lockset = Lockset_id.empty;
      t_wait = None;
    }
  in
  if st.cfg.pseudo_locks then begin
    let s = Heap.alloc_opaque st.heap (Printf.sprintf "S_%d" tid) in
    Pseudo_lock.on_thread_start st.pseudo tid s;
    t.t_lockset <- Pseudo_lock.locks_of st.pseudo tid
  end;
  st.threads <- t :: st.threads;
  t

let monitor_of st obj =
  match Hashtbl.find_opt st.monitors obj with
  | Some m -> m
  | None ->
      let m = { owner = None; count = 0; waiters = [] } in
      Hashtbl.add st.monitors obj m;
      m

let class_obj st cls =
  match Hashtbl.find_opt st.class_objs cls with
  | Some id -> id
  | None ->
      let id = Heap.alloc_opaque st.heap ("class " ^ cls) in
      Hashtbl.add st.class_objs cls id;
      id

let as_ref ~what = function
  | Value.Vref o -> o
  | Value.Vnull -> error "NullPointerException (%s)" what
  | _ -> error "type confusion: expected reference (%s)" what

let obj_fields st o =
  match Heap.get st.heap o with
  | Heap.Obj { fields; _ } -> fields
  | _ -> error "type confusion: expected object #%d" o

let arr_elems st o =
  match Heap.get st.heap o with
  | Heap.Arr { elems } -> elems
  | _ -> error "type confusion: expected array #%d" o

let emit_access st thr ~loc ~kind ~site =
  st.sink.Sink.access ~tid:thr.t_id ~loc ~kind ~locks:thr.t_lockset ~site

let raw_access st thr ~loc ~kind =
  if st.cfg.all_accesses then emit_access st thr ~loc ~kind ~site:(-1)

(* Execute one instruction of the top frame.  Returns [false] when the
   thread must retry the same instruction later (blocked). *)
let exec_instr st thr frame (i : instr) : bool =
  let regs = frame.f_regs in
  let gran = st.cfg.granularity in
  match i.i_op with
  | Const (d, Cint n) ->
      regs.(d) <- Value.Vint n;
      true
  | Const (d, Cbool b) ->
      regs.(d) <- Value.Vbool b;
      true
  | Const (d, Cnull) ->
      regs.(d) <- Value.Vnull;
      true
  | Move (d, s) ->
      regs.(d) <- regs.(s);
      true
  | Binop (op, d, l, r) ->
      let v =
        match op with
        | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod ->
            let a = Value.to_int regs.(l) and b = Value.to_int regs.(r) in
            let n =
              match op with
              | Ast.Add -> a + b
              | Ast.Sub -> a - b
              | Ast.Mul -> a * b
              | Ast.Div ->
                  if b = 0 then error "division by zero at line %d" i.i_line
                  else a / b
              | Ast.Mod ->
                  if b = 0 then error "division by zero at line %d" i.i_line
                  else a mod b
              | _ -> assert false
            in
            Value.Vint n
        | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
            let a = Value.to_int regs.(l) and b = Value.to_int regs.(r) in
            Value.Vbool
              (match op with
              | Ast.Lt -> a < b
              | Ast.Le -> a <= b
              | Ast.Gt -> a > b
              | _ -> a >= b)
        | Ast.Eq -> Value.Vbool (regs.(l) = regs.(r))
        | Ast.Ne -> Value.Vbool (regs.(l) <> regs.(r))
        | Ast.And | Ast.Or ->
            assert false (* expanded into control flow by lowering *)
      in
      regs.(d) <- v;
      true
  | Unop (Ast.Neg, d, s) ->
      regs.(d) <- Value.Vint (-Value.to_int regs.(s));
      true
  | Unop (Ast.Not, d, s) ->
      regs.(d) <- Value.Vbool (not (Value.to_bool regs.(s)));
      true
  | GetField (d, o, fm) ->
      let obj = as_ref ~what:(fm.fm_name ^ " load") regs.(o) in
      regs.(d) <- (obj_fields st obj).(fm.fm_index);
      raw_access st thr
        ~loc:(Memloc.field ~gran ~obj ~index:fm.fm_index)
        ~kind:Event.Read;
      true
  | PutField (o, fm, s) ->
      let obj = as_ref ~what:(fm.fm_name ^ " store") regs.(o) in
      (obj_fields st obj).(fm.fm_index) <- regs.(s);
      raw_access st thr
        ~loc:(Memloc.field ~gran ~obj ~index:fm.fm_index)
        ~kind:Event.Write;
      true
  | GetStatic (d, sm) ->
      regs.(d) <- st.globals.(sm.sm_slot);
      raw_access st thr ~loc:(Memloc.static ~gran ~slot:sm.sm_slot)
        ~kind:Event.Read;
      true
  | PutStatic (sm, s) ->
      st.globals.(sm.sm_slot) <- regs.(s);
      raw_access st thr ~loc:(Memloc.static ~gran ~slot:sm.sm_slot)
        ~kind:Event.Write;
      true
  | ALoad (d, a, idx) ->
      let arr = as_ref ~what:"array load" regs.(a) in
      regs.(d) <- (arr_elems st arr).(Value.to_int regs.(idx));
      raw_access st thr ~loc:(Memloc.array ~gran ~obj:arr) ~kind:Event.Read;
      true
  | AStore (a, idx, s) ->
      let arr = as_ref ~what:"array store" regs.(a) in
      (arr_elems st arr).(Value.to_int regs.(idx)) <- regs.(s);
      raw_access st thr ~loc:(Memloc.array ~gran ~obj:arr) ~kind:Event.Write;
      true
  | NewObj (d, cls) ->
      regs.(d) <- Value.Vref (Heap.alloc_obj st.heap st.prog.p_tprog cls);
      true
  | NewArr (d, elem, dims) ->
      let ds = List.map (fun r -> Value.to_int regs.(r)) dims in
      List.iter
        (fun n -> if n < 0 then error "negative array size at line %d" i.i_line)
        ds;
      regs.(d) <- Value.Vref (Heap.alloc_arr st.heap elem ds);
      true
  | ArrLen (d, a) ->
      let arr = as_ref ~what:"length" regs.(a) in
      regs.(d) <- Value.Vint (Array.length (arr_elems st arr));
      true
  | ClassObj (d, cls) ->
      regs.(d) <- Value.Vref (class_obj st cls);
      true
  | NullCheck r ->
      (match regs.(r) with
      | Value.Vnull ->
          error "NullPointerException at %s line %d" (mir_key frame.f_mir)
            i.i_line
      | _ -> ());
      true
  | BoundsCheck (a, idx) ->
      let arr = as_ref ~what:"array access" regs.(a) in
      let n = Array.length (arr_elems st arr) in
      let k = Value.to_int regs.(idx) in
      if k < 0 || k >= n then
        error "ArrayIndexOutOfBoundsException: %d (length %d) at %s line %d" k
          n (mir_key frame.f_mir) i.i_line;
      true
  | Call (dst, target, args, _) ->
      let argv = List.map (fun r -> regs.(r)) args in
      let key =
        match target with
        | Static (cls, name) -> cls ^ "." ^ name
        | Ctor cls -> cls ^ ".<init>"
        | Virtual (_, name) -> (
            let recv = as_ref ~what:("call " ^ name) (List.hd argv) in
            (match st.sink.Sink.call with
            | Some f ->
                f ~tid:thr.t_id ~obj:recv ~locks:thr.t_lockset ~site:(-1)
            | None -> ());
            let cls = Heap.class_of st.heap recv in
            match Tast.dispatch st.prog.p_tprog cls name with
            | Some m -> m.Tast.tm_class ^ "." ^ name
            | None -> error "no method %s on class %s" name cls)
      in
      thr.t_frames <- frame_of st key dst argv :: thr.t_frames;
      true
  | MonitorEnter (r, _) -> (
      let obj = as_ref ~what:"monitorenter" regs.(r) in
      let m = monitor_of st obj in
      match m.owner with
      | Some o when o = thr.t_id ->
          m.count <- m.count + 1;
          Hashtbl.replace thr.t_held obj m.count;
          true
      | None ->
          m.owner <- Some thr.t_id;
          m.count <- 1;
          Hashtbl.replace thr.t_held obj 1;
          thr.t_lockset <- Lockset_id.add obj thr.t_lockset;
          st.sink.Sink.acquire ~tid:thr.t_id ~lock:obj;
          true
      | Some _ ->
          thr.t_status <- Blocked obj;
          false)
  | MonitorExit (r, _) ->
      let obj = as_ref ~what:"monitorexit" regs.(r) in
      let m = monitor_of st obj in
      if m.owner <> Some thr.t_id then
        error "IllegalMonitorStateException at %s line %d"
          (mir_key frame.f_mir) i.i_line;
      m.count <- m.count - 1;
      if m.count = 0 then begin
        m.owner <- None;
        Hashtbl.remove thr.t_held obj;
        thr.t_lockset <- Lockset_id.remove obj thr.t_lockset;
        st.sink.Sink.release ~tid:thr.t_id ~lock:obj
      end
      else Hashtbl.replace thr.t_held obj m.count;
      true
  | ThreadStart r ->
      let obj = as_ref ~what:"start" regs.(r) in
      if Hashtbl.mem st.thread_of_obj obj then
        error "IllegalThreadStateException: thread #%d started twice" obj;
      let cls = Heap.class_of st.heap obj in
      let key =
        match Tast.dispatch st.prog.p_tprog cls "run" with
        | Some m -> m.Tast.tm_class ^ ".run"
        | None -> error "class %s has no run method" cls
      in
      let child = new_thread st [ frame_of st key None [ Value.Vref obj ] ] in
      Hashtbl.add st.thread_of_obj obj child.t_id;
      st.sink.Sink.thread_start ~parent:thr.t_id ~child:child.t_id;
      true
  | ThreadJoin r -> (
      let obj = as_ref ~what:"join" regs.(r) in
      match Hashtbl.find_opt st.thread_of_obj obj with
      | None -> true (* joining a never-started thread returns at once *)
      | Some tid ->
          let target = find_thread st tid in
          if target.t_status = Finished then begin
            if st.cfg.pseudo_locks then begin
              Pseudo_lock.on_join st.pseudo ~joiner:thr.t_id ~joinee:tid;
              thr.t_lockset <-
                Lockset_id.union thr.t_lockset
                  (Pseudo_lock.locks_of st.pseudo thr.t_id)
            end;
            st.sink.Sink.thread_join ~joiner:thr.t_id ~joinee:tid;
            true
          end
          else begin
            thr.t_status <- Joining tid;
            false
          end)
  | Wait r -> (
      let obj = as_ref ~what:"wait" regs.(r) in
      let m = monitor_of st obj in
      match thr.t_wait with
      | None ->
          (* Phase 1: release the monitor entirely and join the wait
             set.  Resumes at this same instruction once notified. *)
          if m.owner <> Some thr.t_id then
            error "IllegalMonitorStateException: wait at %s line %d without \
                   owning the monitor"
              (mir_key frame.f_mir) i.i_line;
          thr.t_wait <- Some m.count;
          m.owner <- None;
          m.count <- 0;
          m.waiters <- m.waiters @ [ thr.t_id ];
          Hashtbl.remove thr.t_held obj;
          thr.t_lockset <- Lockset_id.remove obj thr.t_lockset;
          st.sink.Sink.release ~tid:thr.t_id ~lock:obj;
          thr.t_status <- Waiting obj;
          false
      | Some saved -> (
          (* Phase 2: notified; re-acquire with the saved count. *)
          match m.owner with
          | None ->
              m.owner <- Some thr.t_id;
              m.count <- saved;
              Hashtbl.replace thr.t_held obj saved;
              thr.t_lockset <- Lockset_id.add obj thr.t_lockset;
              st.sink.Sink.acquire ~tid:thr.t_id ~lock:obj;
              thr.t_wait <- None;
              true
          | Some _ ->
              thr.t_status <- Blocked obj;
              false))
  | Notify (r, all) ->
      let obj = as_ref ~what:"notify" regs.(r) in
      let m = monitor_of st obj in
      if m.owner <> Some thr.t_id then
        error "IllegalMonitorStateException: notify at %s line %d without \
               owning the monitor"
          (mir_key frame.f_mir) i.i_line;
      let woken, remaining =
        match m.waiters with
        | [] -> ([], [])
        | w :: rest -> if all then (m.waiters, []) else ([ w ], rest)
      in
      m.waiters <- remaining;
      List.iter
        (fun tid ->
          let t = find_thread st tid in
          (* The woken thread re-contends for the monitor. *)
          t.t_status <- Blocked obj)
        woken;
      true
  | Yield -> true
  | Print (tag, r) ->
      let v = Option.map (fun r -> regs.(r)) r in
      st.prints <- (tag, v) :: st.prints;
      true
  | Trace t ->
      let loc =
        match t.tr_target with
        | Tr_field (o, fm) ->
            let obj = as_ref ~what:"trace" regs.(o) in
            Memloc.field ~gran ~obj ~index:fm.fm_index
        | Tr_static sm -> Memloc.static ~gran ~slot:sm.sm_slot
        | Tr_array (a, _) ->
            Memloc.array ~gran ~obj:(as_ref ~what:"trace" regs.(a))
      in
      emit_access st thr ~loc ~kind:t.tr_kind ~site:t.tr_site;
      true

let exec_term st thr frame =
  let regs = frame.f_regs in
  match (block frame.f_mir frame.f_block).b_term with
  | Goto l ->
      frame.f_block <- l;
      frame.f_pc <- (block frame.f_mir l).b_instrs
  | If (c, t, f) ->
      let l = if Value.to_bool regs.(c) then t else f in
      frame.f_block <- l;
      frame.f_pc <- (block frame.f_mir l).b_instrs
  | Ret v -> (
      let value = Option.map (fun r -> regs.(r)) v in
      thr.t_frames <- List.tl thr.t_frames;
      match thr.t_frames with
      | [] ->
          thr.t_status <- Finished;
          st.sink.Sink.thread_exit ~tid:thr.t_id
      | caller :: _ -> (
          match (frame.f_dst, value) with
          | Some d, Some v -> caller.f_regs.(d) <- v
          | Some _, None ->
              error "method %s returned no value" (mir_key frame.f_mir)
          | None, _ -> ()))
  | Trap msg -> error "%s in %s" msg (mir_key frame.f_mir)

(* Can this thread make progress right now? *)
let ready st t =
  match t.t_status with
  | Runnable -> true
  | Finished -> false
  | Waiting _ -> false (* until notified *)
  | Blocked obj -> (monitor_of st obj).owner = None
  | Joining tid -> (find_thread st tid).t_status = Finished

(* Run one scheduling slice of up to [n] instructions on thread [t].
   Returns when the slice ends, the thread blocks, yields or finishes;
   the result says whether the slice ended at a [Yield] (the PCT
   scheduler deprioritizes the yielder so spin-wait loops cannot starve
   the thread they are waiting on). *)
let run_slice st t n =
  t.t_status <- Runnable;
  let continue_ = ref true in
  let yielded = ref false in
  let budget = ref n in
  while !continue_ && !budget > 0 && t.t_status = Runnable do
    match t.t_frames with
    | [] -> continue_ := false
    | frame :: _ -> (
        st.steps <- st.steps + 1;
        if st.steps > st.cfg.max_steps then error "step limit exceeded";
        match frame.f_pc with
        | [] -> exec_term st t frame
        | i :: rest ->
            let advanced = exec_instr st t frame i in
            if advanced then begin
              (* The instruction may have pushed a new frame; [frame]
                 still designates the frame the instruction came from. *)
              frame.f_pc <- rest;
              decr budget;
              if i.i_op = Yield then begin
                continue_ := false;
                yielded := true
              end
            end
            else continue_ := false)
  done;
  !yielded

let run ?(config = default_config) ~sink (prog : program) : result =
  let heap = Heap.create () in
  (* Join pseudo-locks live in the heap id space, so they can never
     collide with real lock (object) identities. *)
  let pseudo = Pseudo_lock.create () in
  let globals =
    Array.map
      (fun (sf : Tast.sfield_info) -> Value.default_of sf.Tast.sf_ty)
      prog.p_tprog.Tast.statics
  in
  let st =
    {
      prog;
      cfg = config;
      sink;
      heap;
      globals;
      threads = [];
      nthreads = 0;
      monitors = Hashtbl.create 64;
      class_objs = Hashtbl.create 16;
      thread_of_obj = Hashtbl.create 16;
      pseudo;
      rng = Random.State.make [| config.seed |];
      steps = 0;
      prints = [];
    }
  in
  ignore (new_thread st [ frame_of st prog.p_main None [] ]);
  (* Scheduling policy (PCT state lives outside the thread records).
     PCT (Burckhardt et al., ASPLOS 2010): every thread gets a random
     priority above [depth]; the scheduler always runs the
     highest-priority ready thread; at [depth] pre-chosen step counts
     within [horizon] the running thread's priority drops to the rank of
     the change point (below every initial priority).  All randomness
     comes from the seeded [st.rng], so a (seed, policy) pair names one
     schedule exactly. *)
  let pct_prio : (int, int) Hashtbl.t = Hashtbl.create 8 in
  (* Monotonically decreasing floor for yield-deprioritization: change
     points assign ranks 0..depth-1, so yielders go below them, most
     recent lowest — round-robin among spinning threads. *)
  let pct_floor = ref 0 in
  let pct_points =
    ref
      (match config.policy with
      | Random_walk -> []
      | Pct { depth; horizon } ->
          List.init depth (fun rank ->
              (1 + Random.State.int st.rng (max horizon 1), rank))
          |> List.sort compare)
  in
  let prio_of t =
    match Hashtbl.find_opt pct_prio t.t_id with
    | Some p -> p
    | None ->
        let depth =
          match config.policy with Pct { depth; _ } -> depth | _ -> 0
        in
        let p = depth + Random.State.int st.rng 0x3FFFFFFF in
        Hashtbl.add pct_prio t.t_id p;
        p
  in
  let pick_pct ready_threads =
    (* Highest priority wins; ties (vanishingly rare) go to the lowest
       thread id for determinism. *)
    List.fold_left
      (fun best t ->
        match best with
        | None -> Some t
        | Some b ->
            let pb = prio_of b and pt = prio_of t in
            if pt > pb || (pt = pb && t.t_id < b.t_id) then Some t else Some b)
      None ready_threads
    |> Option.get
  in
  let cross_change_points t =
    match !pct_points with
    | (steps_at, rank) :: rest when st.steps >= steps_at ->
        Hashtbl.replace pct_prio t.t_id rank;
        pct_points := rest
    | _ -> ()
  in
  let rec loop () =
    let alive = List.filter (fun t -> t.t_status <> Finished) st.threads in
    if alive <> [] then begin
      let ready_threads = List.filter (ready st) alive in
      (match ready_threads with
      | [] ->
          let waiting =
            List.length
              (List.filter
                 (fun t -> match t.t_status with Waiting _ -> true | _ -> false)
                 alive)
          in
          if waiting > 0 then
            error
              "deadlock: %d of %d remaining threads are stuck in wait() with \
               no runnable thread left to notify them"
              waiting (List.length alive)
          else error "deadlock: no runnable thread among %d" (List.length alive)
      | _ -> (
          match config.policy with
          | Random_walk ->
              let k = Random.State.int st.rng (List.length ready_threads) in
              let t = List.nth ready_threads k in
              let n = 1 + Random.State.int st.rng config.quantum in
              ignore (run_slice st t n : bool)
          | Pct _ ->
              let t = pick_pct ready_threads in
              let yielded = run_slice st t (max config.quantum 1) in
              cross_change_points t;
              if yielded then begin
                decr pct_floor;
                Hashtbl.replace pct_prio t.t_id !pct_floor
              end));
      loop ()
    end
  in
  loop ();
  {
    r_prints = List.rev st.prints;
    r_steps = st.steps;
    r_max_threads = st.nthreads;
    r_heap = st.heap;
  }
