(** The pre-link block interpreter, frozen when {!Interp} was rewritten
    against the linked image.  It executes an {!Ir.program} directly —
    string-keyed method lookup, [Tast.dispatch] hierarchy walks, block
    instruction lists — exactly as the VM did before the link phase
    existed.

    Kept for two consumers: the golden byte-identity suite (every
    report, event log and hb fingerprint of {!Interp} must match this
    engine exactly) and `bench --vm`, which measures both engines in the
    same process to compute the committed speedup.  Do not modify its
    semantics.

    Shares {!Interp}'s config/policy/result types and raises
    {!Interp.Runtime_error}, so harness code drives either engine
    through one interface. *)

module Ir = Drd_ir.Ir

type policy = Interp.policy =
  | Random_walk
  | Pct of { depth : int; horizon : int }

type config = Interp.config = {
  seed : int;
  quantum : int;
  max_steps : int;
  all_accesses : bool;
  granularity : Memloc.granularity;
  pseudo_locks : bool;
  policy : policy;
}

val default_config : config

type result = Interp.result = {
  r_prints : (string * Value.t option) list;
  r_steps : int;
  r_max_threads : int;
  r_heap : Heap.t;
}

val run : ?config:config -> sink:Sink.t -> Ir.program -> result
(** Execute a program from its [main] method until every thread
    terminates.  Raises {!Interp.Runtime_error} on fatal errors. *)
