(* The interface between the running (instrumented) program and a
   datarace detector.  The VM pushes access events at [Trace]
   pseudo-instructions (or, in [all_accesses] mode, at every memory
   access), plus the synchronization and thread-lifecycle notifications
   the runtime optimizer and the happens-before baseline need. *)

open Drd_core

type t = {
  access :
    tid:Event.thread_id ->
    loc:Event.loc_id ->
    kind:Event.kind ->
    locks:Lockset_id.id ->
    site:Event.site_id ->
    unit;
  acquire : tid:Event.thread_id -> lock:Event.lock_id -> unit;
      (* outermost acquisition of a real lock *)
  release : tid:Event.thread_id -> lock:Event.lock_id -> unit;
  thread_start : parent:Event.thread_id -> child:Event.thread_id -> unit;
  thread_join : joiner:Event.thread_id -> joinee:Event.thread_id -> unit;
  thread_exit : tid:Event.thread_id -> unit;
  call :
    (tid:Event.thread_id ->
    obj:int ->
    locks:Lockset_id.id ->
    site:Event.site_id ->
    unit)
    option;
      (* invoked at every virtual call with the receiver object; used by
         the object-race baseline, which treats a method call on an
         object as a write to it *)
  spec :
    (cell:int ->
    tid:Event.thread_id ->
    loc:Event.loc_id ->
    kind:Event.kind ->
    locks:Lockset_id.id ->
    site:Event.site_id ->
    unit)
    option;
      (* specialized-trace entry point: when present, the VM routes
         events from specialized trace ops here (with the link-assigned
         spec cell id) instead of [access]; the handler owns the
         fast-path state and falls back to the same work [access] does.
         When absent, specialized ops behave exactly like generic ones.
         A [spec] handler must be observationally equivalent to [access]
         for every contract output (reports, event counts); only
         detector-internal statistics may differ. *)
}

let null =
  {
    access = (fun ~tid:_ ~loc:_ ~kind:_ ~locks:_ ~site:_ -> ());
    acquire = (fun ~tid:_ ~lock:_ -> ());
    release = (fun ~tid:_ ~lock:_ -> ());
    thread_start = (fun ~parent:_ ~child:_ -> ());
    thread_join = (fun ~joiner:_ ~joinee:_ -> ());
    thread_exit = (fun ~tid:_ -> ());
    call = None;
    spec = None;
  }

(* Fan one event stream out to two consumers, [a] first.  Lets a
   campaign observe the schedule (fingerprinting, counting) without the
   detector wiring knowing about it. *)
let tee a b =
  {
    access =
      (fun ~tid ~loc ~kind ~locks ~site ->
        a.access ~tid ~loc ~kind ~locks ~site;
        b.access ~tid ~loc ~kind ~locks ~site);
    acquire =
      (fun ~tid ~lock ->
        a.acquire ~tid ~lock;
        b.acquire ~tid ~lock);
    release =
      (fun ~tid ~lock ->
        a.release ~tid ~lock;
        b.release ~tid ~lock);
    thread_start =
      (fun ~parent ~child ->
        a.thread_start ~parent ~child;
        b.thread_start ~parent ~child);
    thread_join =
      (fun ~joiner ~joinee ->
        a.thread_join ~joiner ~joinee;
        b.thread_join ~joiner ~joinee);
    thread_exit =
      (fun ~tid ->
        a.thread_exit ~tid;
        b.thread_exit ~tid);
    call =
      (match (a.call, b.call) with
      | None, None -> None
      | fa, fb ->
          Some
            (fun ~tid ~obj ~locks ~site ->
              (match fa with Some f -> f ~tid ~obj ~locks ~site | None -> ());
              match fb with Some f -> f ~tid ~obj ~locks ~site | None -> ()));
    spec =
      (* A side without a spec handler still sees every specialized
         event through its ordinary [access], so taps (fingerprints,
         logs) observe streams byte-identical to the generic engine. *)
      (match (a.spec, b.spec) with
      | None, None -> None
      | fa, fb ->
          Some
            (fun ~cell ~tid ~loc ~kind ~locks ~site ->
              (match fa with
              | Some f -> f ~cell ~tid ~loc ~kind ~locks ~site
              | None -> a.access ~tid ~loc ~kind ~locks ~site);
              match fb with
              | Some f -> f ~cell ~tid ~loc ~kind ~locks ~site
              | None -> b.access ~tid ~loc ~kind ~locks ~site));
  }
