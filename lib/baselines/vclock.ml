(* Vector clocks for the happens-before baseline. *)

type t = int array

let size = 64 (* max threads tracked; grown on demand by the detector *)

let create ?(n = size) () = Array.make n 0

let copy = Array.copy

let reset (v : t) = Array.fill v 0 (Array.length v) 0

let get (v : t) i = if i < Array.length v then v.(i) else 0

let tick (v : t) i = v.(i) <- v.(i) + 1

(* v := v ⊔ w *)
let join (v : t) (w : t) =
  for i = 0 to Array.length v - 1 do
    if get w i > v.(i) then v.(i) <- get w i
  done

(* Does epoch (thread [i] at clock [c]) happen-before the point
   described by [v]? *)
let epoch_leq ~thread ~clock (v : t) = clock <= get v thread

let leq (v : t) (w : t) =
  let ok = ref true in
  for i = 0 to Array.length v - 1 do
    if v.(i) > get w i then ok := false
  done;
  !ok

let pp ppf (v : t) =
  Fmt.pf ppf "<%a>" Fmt.(array ~sep:comma int) v
