module Event = Drd_core.Event

(** The Eraser lockset algorithm (Savage, Burrows, Nelson, Sobalvarro,
    Anderson — TOCS 1997), the principal dynamic baseline of the paper's
    Sections 8.3 and 9.

    Eraser enforces a stricter discipline than the paper's detector: a
    single lock must be held consistently across {e all} accesses to a
    shared location.  Mutually-intersecting locksets with no common
    member (the mtrt join idiom) are therefore reported as races, and
    Eraser has no join modeling at all — feed it locksets without the
    join pseudo-locks. *)

type state =
  | Virgin  (** Never accessed. *)
  | Exclusive of Event.thread_id
      (** Only one thread has touched it (initialization is exempt). *)
  | Shared of Drd_core.Lockset_id.id
      (** Read by a second thread; the candidate set is refined but an
          empty set is not yet an error (read-shared data). *)
  | Shared_modified of Drd_core.Lockset_id.id
      (** Written while shared: an empty candidate set reports a race. *)

type race = {
  loc : Event.loc_id;
  access : Event.t;  (** The access that emptied the candidate set. *)
}

type t

val create : unit -> t

val reset : t -> unit
(** Return the detector to its freshly-created state in place (see
    {!Drd_core.Detector_intf.S}). *)

val on_access_interned :
  t ->
  loc:Event.loc_id ->
  thread:Event.thread_id ->
  locks:Drd_core.Lockset_id.id ->
  kind:Event.kind ->
  site:Event.site_id ->
  unit
(** The primary (hot-path) entry point, mirroring
    {!Drd_core.Detector.on_access_interned}: process one access as five
    scalars.  No [Event.t] is allocated unless the access reports a
    race. *)

val id : string

val describe : string

val needs_call_events : bool
(** [false]: Eraser ignores virtual-call receiver events. *)

val on_call :
  t ->
  thread:Event.thread_id ->
  obj_loc:Event.loc_id ->
  locks:Drd_core.Lockset_id.id ->
  site:Event.site_id ->
  unit
(** No-op ({!Drd_core.Detector_intf.S} conformance). *)

val on_acquire : t -> thread:Event.thread_id -> lock:Event.lock_id -> unit
(** No-op: Eraser takes its ordering-free view of the program from the
    locksets carried by each access alone. *)

val on_release : t -> thread:Event.thread_id -> lock:Event.lock_id -> unit
(** No-op. *)

val on_thread_start :
  t -> parent:Event.thread_id -> child:Event.thread_id -> unit
(** No-op: the absence of fork edges is Eraser's documented
    imprecision. *)

val on_thread_join :
  t -> joiner:Event.thread_id -> joinee:Event.thread_id -> unit
(** No-op: likewise for join edges. *)

val on_thread_exit : t -> thread:Event.thread_id -> unit
(** No-op. *)

val races : t -> race list
(** First report per location, in detection order. *)

val racy_locs : t -> Event.loc_id list

val race_count : t -> int

val events_seen : t -> int
