module Event = Drd_core.Event

(** Object race detection (von Praun & Gross — OOPSLA 2001), the
    baseline whose performance the paper matches and whose precision it
    improves on (Sections 8.3 and 9).

    Races are tracked per {e object} rather than per field — the caller
    must supply object-granularity location ids — and a virtual method
    invocation counts as a write to the receiver, which is what floods
    hedc with spurious reports in the paper's comparison.  The
    discipline itself is Eraser-style lockset refinement behind a
    first-owner phase. *)

type state =
  | Owned of Event.thread_id
  | Tracked of Drd_core.Lockset_id.id * bool
      (** Candidate lockset and whether a write has been seen. *)

type race = { loc : Event.loc_id; access : Event.t }

type t

val create : unit -> t

val reset : t -> unit
(** Return the detector to its freshly-created state in place (see
    {!Drd_core.Detector_intf.S}). *)

val on_access_interned :
  t ->
  loc:Event.loc_id ->
  thread:Event.thread_id ->
  locks:Drd_core.Lockset_id.id ->
  kind:Event.kind ->
  site:Event.site_id ->
  unit
(** The primary (hot-path) entry point, mirroring
    {!Drd_core.Detector.on_access_interned}: process one access as five
    scalars.  No [Event.t] is allocated unless the access reports a
    race. *)

val id : string

val describe : string

val needs_call_events : bool
(** [true]: virtual-call receiver events are what distinguish the
    technique — the driver must route them to {!on_call}. *)

val on_call :
  t ->
  thread:Event.thread_id ->
  obj_loc:Event.loc_id ->
  locks:Drd_core.Lockset_id.id ->
  site:Event.site_id ->
  unit
(** A virtual method invocation on a receiver: treated as a write to the
    whole object. *)

val on_acquire : t -> thread:Event.thread_id -> lock:Event.lock_id -> unit
(** No-op ({!Drd_core.Detector_intf.S} conformance): the discipline is
    refined purely from the locksets carried by each access. *)

val on_release : t -> thread:Event.thread_id -> lock:Event.lock_id -> unit
(** No-op. *)

val on_thread_start :
  t -> parent:Event.thread_id -> child:Event.thread_id -> unit
(** No-op. *)

val on_thread_join :
  t -> joiner:Event.thread_id -> joinee:Event.thread_id -> unit
(** No-op. *)

val on_thread_exit : t -> thread:Event.thread_id -> unit
(** No-op. *)

val races : t -> race list

val racy_locs : t -> Event.loc_id list

val race_count : t -> int

val events_seen : t -> int
