(** Fixed-width vector clocks for the happens-before baseline. *)

type t = int array

val size : int
(** Default width (threads beyond it are grown by the detector). *)

val create : ?n:int -> unit -> t

val copy : t -> t

val reset : t -> unit
(** Zero every component in place. *)

val get : t -> int -> int
(** Reads beyond the width return 0. *)

val tick : t -> int -> unit
(** Increment one component in place. *)

val join : t -> t -> unit
(** [join v w] sets [v := v ⊔ w] (componentwise max) in place. *)

val epoch_leq : thread:int -> clock:int -> t -> bool
(** Does the epoch (event at [clock] in [thread]) happen-before the
    point described by the vector? *)

val leq : t -> t -> bool

val pp : t Fmt.t
