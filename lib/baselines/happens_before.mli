module Event = Drd_core.Event

(** A vector-clock happens-before race detector in the style of Djit /
    TRaDe (paper Section 9).

    Precise with respect to the {e observed} ordering — which is exactly
    the imprecision the paper's Section 2.2 criticizes: a feasible race
    hidden by the accidental order of two critical sections is missed,
    and whether a race is reported depends on the schedule.

    Clocks are transferred through per-lock release/acquire pairs and
    explicit thread start/join edges; each location keeps the last-write
    epoch and per-thread last-read clocks. *)

type race = { loc : Event.loc_id; access : Event.t }

type t

val create : unit -> t

val reset : t -> unit
(** Return the detector to its freshly-created state in place (see
    {!Drd_core.Detector_intf.S}); grown clock arrays are kept, zeroed. *)

val on_access_interned :
  t ->
  loc:Event.loc_id ->
  thread:Event.thread_id ->
  locks:Drd_core.Lockset_id.id ->
  kind:Event.kind ->
  site:Event.site_id ->
  unit
(** The primary (hot-path) entry point, mirroring
    {!Drd_core.Detector.on_access_interned}.  [locks] is ignored: the
    ordering comes entirely from the synchronization callbacks below,
    and reported events carry the empty lockset so reports never vary
    with instrumentation details the algorithm does not read. *)

val id : string

val describe : string

val needs_call_events : bool
(** [false]. *)

val on_call :
  t ->
  thread:Event.thread_id ->
  obj_loc:Event.loc_id ->
  locks:Drd_core.Lockset_id.id ->
  site:Event.site_id ->
  unit
(** No-op ({!Drd_core.Detector_intf.S} conformance). *)

val on_acquire : t -> thread:Event.thread_id -> lock:Event.lock_id -> unit

val on_release : t -> thread:Event.thread_id -> lock:Event.lock_id -> unit

val on_thread_start :
  t -> parent:Event.thread_id -> child:Event.thread_id -> unit

val on_thread_join :
  t -> joiner:Event.thread_id -> joinee:Event.thread_id -> unit

val on_thread_exit : t -> thread:Event.thread_id -> unit
(** No-op: a terminated thread's clock simply stops advancing. *)

val races : t -> race list

val racy_locs : t -> Event.loc_id list

val race_count : t -> int

val events_seen : t -> int
