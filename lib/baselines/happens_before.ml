module Event = Drd_core.Event
open Drd_core

(* A happens-before race detector in the style of Djit / TRaDe
   (Section 9): precise with respect to the OBSERVED ordering, which is
   exactly why the paper's Section 2.2 criticizes the approach — a
   "feasible" race hidden by the accidental order of two critical
   sections (Figure 2 with p == q) is not reported, and whether a race
   is reported can depend on the schedule.

   Per-thread vector clocks; lock release/acquire transfers clocks
   through a per-lock clock; thread start and join edges are explicit.
   Each location keeps the epoch of the last write and a vector of last
   reads; a race is an access not ordered after the accesses it
   conflicts with. *)

type loc_state = {
  mutable write_thread : int;
  mutable write_clock : int; (* 0 = none *)
  reads : Vclock.t; (* last read clock per thread *)
}

type race = { loc : Event.loc_id; access : Event.t }

type t = {
  mutable clocks : Vclock.t array; (* per thread *)
  lock_clocks : (Event.lock_id, Vclock.t) Hashtbl.t;
  locs : (Event.loc_id, loc_state) Hashtbl.t;
  mutable races : race list;
  reported : (Event.loc_id, unit) Hashtbl.t;
  mutable events : int;
}

let create () =
  {
    clocks = Array.init 8 (fun _ -> Vclock.create ());
    lock_clocks = Hashtbl.create 64;
    locs = Hashtbl.create 1024;
    races = [];
    reported = Hashtbl.create 64;
    events = 0;
  }

(* Zeroed clocks beyond the fresh length are indistinguishable from the
   lazily-grown ones [clock_of] would create, so the grown arrays are
   kept; per-location states are dropped (they are re-created on
   demand and carry their own [reads] vector). *)
let reset d =
  Array.iter Vclock.reset d.clocks;
  Hashtbl.clear d.lock_clocks;
  Hashtbl.clear d.locs;
  d.races <- [];
  Hashtbl.clear d.reported;
  d.events <- 0

let clock_of d t =
  if t >= Array.length d.clocks then begin
    let n = max (t + 1) (2 * Array.length d.clocks) in
    let a = Array.init n (fun i ->
        if i < Array.length d.clocks then d.clocks.(i) else Vclock.create ())
    in
    d.clocks <- a
  end;
  d.clocks.(t)

let loc_state d loc =
  match Hashtbl.find_opt d.locs loc with
  | Some s -> s
  | None ->
      let s = { write_thread = -1; write_clock = 0; reads = Vclock.create () } in
      Hashtbl.add d.locs loc s;
      s

let report d loc make_access =
  if not (Hashtbl.mem d.reported loc) then begin
    Hashtbl.replace d.reported loc ();
    d.races <- { loc; access = make_access () } :: d.races
  end

let on_acquire d ~thread ~lock =
  match Hashtbl.find_opt d.lock_clocks lock with
  | Some lc -> Vclock.join (clock_of d thread) lc
  | None -> ()

let on_release d ~thread ~lock =
  let tc = clock_of d thread in
  let lc =
    match Hashtbl.find_opt d.lock_clocks lock with
    | Some lc -> lc
    | None ->
        let lc = Vclock.create () in
        Hashtbl.add d.lock_clocks lock lc;
        lc
  in
  Vclock.join lc tc;
  Vclock.tick tc thread

let on_thread_start d ~parent ~child =
  let pc = clock_of d parent in
  let cc = clock_of d child in
  Vclock.join cc pc;
  Vclock.tick cc child;
  Vclock.tick pc parent

let on_thread_join d ~joiner ~joinee =
  let jc = clock_of d joiner in
  Vclock.join jc (clock_of d joinee);
  Vclock.tick jc joiner

(* The scalar hot path: ordering comes entirely from the
   synchronization callbacks, so [locks] plays no role at all — it is
   ignored, and reported events carry the empty lockset so that reports
   do not vary with instrumentation details the algorithm never reads
   (this used to be the caller's job; it lives here now). *)
let on_access_interned d ~loc ~thread ~locks:_ ~kind ~site =
  d.events <- d.events + 1;
  let report_here () =
    report d loc (fun () ->
        Event.make_interned ~loc ~thread ~locks:Lockset_id.empty ~kind ~site)
  in
  let tc = clock_of d thread in
  let s = loc_state d loc in
  match kind with
  | Event.Read ->
      (* Must be ordered after the last write. *)
      if
        s.write_clock > 0 && s.write_thread <> thread
        && not (Vclock.epoch_leq ~thread:s.write_thread ~clock:s.write_clock tc)
      then report_here ();
      s.reads.(thread) <- Vclock.get tc thread
  | Event.Write ->
      if
        s.write_clock > 0 && s.write_thread <> thread
        && not (Vclock.epoch_leq ~thread:s.write_thread ~clock:s.write_clock tc)
      then report_here ();
      (* ... and after every previous read. *)
      Array.iteri
        (fun t c ->
          if c > 0 && t <> thread && not (Vclock.epoch_leq ~thread:t ~clock:c tc)
          then report_here ())
        s.reads;
      s.write_thread <- thread;
      s.write_clock <- Vclock.get tc thread

(* Detector_intf.S plumbing. *)

let id = "vclock"

let describe =
  "Vector-clock happens-before detection (Djit/TRaDe style): precise \
   for the observed order, misses schedule-hidden feasible races"

let needs_call_events = false

let on_call _ ~thread:_ ~obj_loc:_ ~locks:_ ~site:_ = ()

let on_thread_exit _ ~thread:_ = ()

let races d = List.rev d.races

let racy_locs d = List.rev_map (fun r -> r.loc) d.races

let race_count d = Hashtbl.length d.reported

let events_seen d = d.events
