module Event = Drd_core.Event
open Drd_core

(* The Eraser lockset algorithm (Savage et al., TOCS 1997), the main
   dynamic baseline the paper compares against (Sections 8.3 and 9).

   Each location carries a state machine and a candidate lockset
   [C(m)]:

   - [Virgin] until first accessed;
   - [Exclusive t] while only thread [t] has touched it (initialization
     is exempt, like our ownership model);
   - [Shared] once a second thread reads it: [C(m)] is refined on every
     access but empty [C(m)] is not yet an error (read-shared data);
   - [Shared_modified] once a second thread is involved and a write
     occurs: empty [C(m)] reports a race.

   Crucially, Eraser demands ONE lock held across all accesses — where
   our detector accepts mutually-intersecting locksets (e.g. the mtrt
   join idiom {S1,sync},{S2,sync},{S1,S2}), Eraser reports a spurious
   race.  Eraser also has no modeling of [join], so it must be fed
   locksets without our join pseudo-locks. *)

type state =
  | Virgin
  | Exclusive of Event.thread_id
  | Shared of Lockset_id.id
  | Shared_modified of Lockset_id.id

type race = {
  loc : Event.loc_id;
  access : Event.t; (* the access that emptied the candidate set *)
}

type t = {
  states : (Event.loc_id, state) Hashtbl.t;
  mutable races : race list; (* reverse order *)
  reported : (Event.loc_id, unit) Hashtbl.t;
  mutable events : int;
}

let create () =
  {
    states = Hashtbl.create 1024;
    races = [];
    reported = Hashtbl.create 64;
    events = 0;
  }

let report d loc access =
  if not (Hashtbl.mem d.reported loc) then begin
    Hashtbl.replace d.reported loc ();
    d.races <- { loc; access } :: d.races
  end

let on_access d (e : Event.t) =
  d.events <- d.events + 1;
  let st =
    Option.value (Hashtbl.find_opt d.states e.loc) ~default:Virgin
  in
  let st' =
    match st with
    | Virgin -> Exclusive e.thread
    | Exclusive t when t = e.thread -> st
    | Exclusive _ -> (
        (* First contact by a second thread: C(m) starts as its locks. *)
        match e.kind with
        | Event.Read -> Shared e.locks
        | Event.Write ->
            if Lockset_id.is_empty e.locks then report d e.loc e;
            Shared_modified e.locks)
    | Shared c -> (
        let c = Lockset_id.inter c e.locks in
        match e.kind with
        | Event.Read -> Shared c
        | Event.Write ->
            if Lockset_id.is_empty c then report d e.loc e;
            Shared_modified c)
    | Shared_modified c ->
        let c = Lockset_id.inter c e.locks in
        if Lockset_id.is_empty c then report d e.loc e;
        Shared_modified c
  in
  Hashtbl.replace d.states e.loc st'

let races d = List.rev d.races

let racy_locs d = List.rev_map (fun r -> r.loc) d.races

let race_count d = Hashtbl.length d.reported

let events_seen d = d.events
