module Event = Drd_core.Event
open Drd_core

(* The Eraser lockset algorithm (Savage et al., TOCS 1997), the main
   dynamic baseline the paper compares against (Sections 8.3 and 9).

   Each location carries a state machine and a candidate lockset
   [C(m)]:

   - [Virgin] until first accessed;
   - [Exclusive t] while only thread [t] has touched it (initialization
     is exempt, like our ownership model);
   - [Shared] once a second thread reads it: [C(m)] is refined on every
     access but empty [C(m)] is not yet an error (read-shared data);
   - [Shared_modified] once a second thread is involved and a write
     occurs: empty [C(m)] reports a race.

   Crucially, Eraser demands ONE lock held across all accesses — where
   our detector accepts mutually-intersecting locksets (e.g. the mtrt
   join idiom {S1,sync},{S2,sync},{S1,S2}), Eraser reports a spurious
   race.  Eraser also has no modeling of [join], so it must be fed
   locksets without our join pseudo-locks. *)

type state =
  | Virgin
  | Exclusive of Event.thread_id
  | Shared of Lockset_id.id
  | Shared_modified of Lockset_id.id

type race = {
  loc : Event.loc_id;
  access : Event.t; (* the access that emptied the candidate set *)
}

type t = {
  states : (Event.loc_id, state) Hashtbl.t;
  mutable races : race list; (* reverse order *)
  reported : (Event.loc_id, unit) Hashtbl.t;
  mutable events : int;
}

let create () =
  {
    states = Hashtbl.create 1024;
    races = [];
    reported = Hashtbl.create 64;
    events = 0;
  }

let reset d =
  Hashtbl.clear d.states;
  d.races <- [];
  Hashtbl.clear d.reported;
  d.events <- 0

let report d loc make_access =
  if not (Hashtbl.mem d.reported loc) then begin
    Hashtbl.replace d.reported loc ();
    d.races <- { loc; access = make_access () } :: d.races
  end

(* The scalar hot path: the Event.t is only allocated if this access
   actually reports a race. *)
let on_access_interned d ~loc ~thread ~locks ~kind ~site =
  d.events <- d.events + 1;
  let report_here () =
    report d loc (fun () ->
        Event.make_interned ~loc ~thread ~locks ~kind ~site)
  in
  let st = Option.value (Hashtbl.find_opt d.states loc) ~default:Virgin in
  let st' =
    match st with
    | Virgin -> Exclusive thread
    | Exclusive t when t = thread -> st
    | Exclusive _ -> (
        (* First contact by a second thread: C(m) starts as its locks. *)
        match kind with
        | Event.Read -> Shared locks
        | Event.Write ->
            if Lockset_id.is_empty locks then report_here ();
            Shared_modified locks)
    | Shared c -> (
        let c = Lockset_id.inter c locks in
        match kind with
        | Event.Read -> Shared c
        | Event.Write ->
            if Lockset_id.is_empty c then report_here ();
            Shared_modified c)
    | Shared_modified c ->
        let c = Lockset_id.inter c locks in
        if Lockset_id.is_empty c then report_here ();
        Shared_modified c
  in
  Hashtbl.replace d.states loc st'

(* Detector_intf.S plumbing.  Eraser's discipline is purely
   lockset-refinement over accesses: it has no modeling of
   synchronization order (no join edges — the documented imprecision),
   so every hook below is a no-op. *)

let id = "eraser"

let describe =
  "Eraser lockset discipline (Savage et al. 1997): one common lock \
   across all accesses, no fork/join modeling"

let needs_call_events = false

let on_call _ ~thread:_ ~obj_loc:_ ~locks:_ ~site:_ = ()

let on_acquire _ ~thread:_ ~lock:_ = ()

let on_release _ ~thread:_ ~lock:_ = ()

let on_thread_start _ ~parent:_ ~child:_ = ()

let on_thread_join _ ~joiner:_ ~joinee:_ = ()

let on_thread_exit _ ~thread:_ = ()

let races d = List.rev d.races

let racy_locs d = List.rev_map (fun r -> r.loc) d.races

let race_count d = Hashtbl.length d.reported

let events_seen d = d.events
