module Event = Drd_core.Event
open Drd_core

(* Object race detection (Praun & Gross, OOPSLA 2001), the baseline
   whose performance the paper beats and whose precision it criticizes
   (Sections 8.3 and 9): dataraces are tracked per OBJECT, not per
   field, and a method invocation on an object counts as a write to it.

   The detection discipline is Eraser-style lockset refinement with an
   ownership (first-owner) phase.  The caller is responsible for
   feeding object-granularity location ids (every field of an object
   maps to the object) and for forwarding virtual-call receiver events
   as writes. *)

type state =
  | Owned of Event.thread_id
  | Tracked of Lockset_id.id * bool (* candidate set, write seen *)

type race = { loc : Event.loc_id; access : Event.t }

type t = {
  states : (Event.loc_id, state) Hashtbl.t;
  mutable races : race list;
  reported : (Event.loc_id, unit) Hashtbl.t;
  mutable events : int;
}

let create () =
  {
    states = Hashtbl.create 1024;
    races = [];
    reported = Hashtbl.create 64;
    events = 0;
  }

let reset d =
  Hashtbl.clear d.states;
  d.races <- [];
  Hashtbl.clear d.reported;
  d.events <- 0

let report d loc make_access =
  if not (Hashtbl.mem d.reported loc) then begin
    Hashtbl.replace d.reported loc ();
    d.races <- { loc; access = make_access () } :: d.races
  end

(* The scalar hot path: the Event.t is only allocated if this access
   actually reports a race. *)
let on_access_interned d ~loc ~thread ~locks ~kind ~site =
  d.events <- d.events + 1;
  let st =
    match Hashtbl.find_opt d.states loc with
    | Some s -> s
    | None -> Owned thread
  in
  let st' =
    match st with
    | Owned t when t = thread -> st
    | Owned _ -> Tracked (locks, kind = Event.Write)
    | Tracked (c, wrote) ->
        let c = Lockset_id.inter c locks in
        let wrote = wrote || kind = Event.Write in
        if wrote && Lockset_id.is_empty c then
          report d loc (fun () ->
              Event.make_interned ~loc ~thread ~locks ~kind ~site);
        Tracked (c, wrote)
  in
  Hashtbl.replace d.states loc st'

(* A virtual method invocation on a receiver object is treated as a
   write access to the object. *)
let on_call d ~thread ~obj_loc ~locks ~site =
  on_access_interned d ~loc:obj_loc ~thread ~locks ~kind:Event.Write ~site

(* Detector_intf.S plumbing.  Like Eraser, the discipline is refined
   purely from per-access locksets — synchronization-order hooks are
   no-ops — but virtual-call receiver events are essential: treating
   an invocation as a write to the receiver is what defines the
   technique (and what floods hedc with spurious reports). *)

let id = "objrace"

let describe =
  "Object race detection (von Praun & Gross 2001): per-object \
   granularity, virtual calls count as writes to the receiver"

let needs_call_events = true

let on_acquire _ ~thread:_ ~lock:_ = ()

let on_release _ ~thread:_ ~lock:_ = ()

let on_thread_start _ ~parent:_ ~child:_ = ()

let on_thread_join _ ~joiner:_ ~joinee:_ = ()

let on_thread_exit _ ~thread:_ = ()

let races d = List.rev d.races

let racy_locs d = List.rev_map (fun r -> r.loc) d.races

let race_count d = Hashtbl.length d.reported

let events_seen d = d.events
