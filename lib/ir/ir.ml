module Ast = Drd_lang.Ast
module Tast = Drd_lang.Tast
(* Register-based intermediate representation.

   Each method body is a control-flow graph of basic blocks over an
   unbounded register file.  Registers [0, nparams) hold [this] (for
   instance methods) and the parameters on entry; local variable slots
   assigned by the typechecker map to the same register numbers, and
   temporaries follow.

   Potentially excepting instructions (PEIs) — null checks and array
   bounds checks — are explicit, mirroring the Jalapeño HIR property
   that makes loop-invariant hoisting of instrumentation illegal and
   motivates loop peeling (paper Section 6.3).

   The [Trace] pseudo-instruction is the paper's
   [trace(o, f, L, a)] (Section 6.1): it is inserted by the
   instrumentation pass immediately after the memory access it traces
   and is expanded by the VM into an access-event emission.  The lock
   set [L] is implicit (the executing thread's held locks); the
   synchronization nesting path needed by the static [outer] check is
   recorded on every instruction at lowering time. *)

type reg = int
type label = int

type const = Cint of int | Cbool of bool | Cnull

(* Metadata for field accesses, resolved by the typechecker. *)
type field_meta = { fm_class : string; fm_name : string; fm_index : int }

type static_meta = { sm_class : string; sm_name : string; sm_slot : int }

type call_target =
  | Virtual of string * string (* static receiver class, method name *)
  | Static of string * string (* class, method name *)
  | Ctor of string (* class; receiver is the first argument *)

(* What a trace observes.  Arrays are one logical location (paper
   footnote 1); the element index is modeled as a value use only. *)
type trace_target =
  | Tr_field of reg * field_meta (* object, field *)
  | Tr_static of static_meta
  | Tr_array of reg * reg (* array, index *)

type trace = {
  tr_target : trace_target;
  tr_kind : Drd_core.Event.kind;
  tr_site : int; (* site id registered with the program's site table *)
}

type op =
  | Const of reg * const
  | Move of reg * reg
  | Binop of Ast.binop * reg * reg * reg (* dst := l op r; no And/Or here *)
  | Unop of Ast.unop * reg * reg
  | GetField of reg * reg * field_meta (* dst := obj.f *)
  | PutField of reg * field_meta * reg (* obj.f := src *)
  | GetStatic of reg * static_meta
  | PutStatic of static_meta * reg
  | ALoad of reg * reg * reg (* dst := arr[idx] *)
  | AStore of reg * reg * reg (* arr[idx] := src *)
  | NewObj of reg * string
  | NewArr of reg * Ast.ty * reg list (* dst, element type, sized dims *)
  | ArrLen of reg * reg
  | ClassObj of reg * string (* dst := per-class lock object *)
  | NullCheck of reg (* PEI *)
  | BoundsCheck of reg * reg (* PEI: array, index *)
  | Call of reg option * call_target * reg list * int
      (* dst, target, args, call-site id (registered with the program's
         site table for [Virtual] calls so [Sink.call] reports the real
         site; -1 for statics/ctors, which emit no call notification) *)
  | MonitorEnter of reg * int (* lock object, lexical sync region id *)
  | MonitorExit of reg * int
  | ThreadStart of reg
  | ThreadJoin of reg
  | Wait of reg (* o.wait(): full monitor release + sleep + re-acquire *)
  | Notify of reg * bool (* o.notify() / o.notifyAll() when true *)
  | Yield
  | Print of string * reg option
  | Trace of trace

type instr = {
  mutable i_op : op;
  i_id : int; (* unique within the method, stable across passes *)
  i_line : int;
  i_sync : int list; (* enclosing sync region ids, outermost first *)
}

type term =
  | Goto of label
  | If of reg * label * label (* cond, then, else *)
  | Ret of reg option
  | Trap of string (* runtime error, e.g. missing return *)

type block = {
  b_label : label;
  mutable b_instrs : instr list;
  mutable b_term : term;
  mutable b_term_sync : int list; (* sync path at the terminator *)
}

type mir = {
  mir_class : string;
  mir_name : string; (* "<init>" for constructors *)
  mir_static : bool;
  mir_sync : bool; (* synchronized method (lowered to an explicit region) *)
  mir_nparams : int; (* including this for instance methods *)
  mir_entry : label;
  mutable mir_blocks : block array; (* indexed by label *)
  mutable mir_nregs : int;
  mutable mir_next_iid : int;
}

let mir_key m = m.mir_class ^ "." ^ m.mir_name

let fresh_reg m =
  let r = m.mir_nregs in
  m.mir_nregs <- m.mir_nregs + 1;
  r

let fresh_iid m =
  let i = m.mir_next_iid in
  m.mir_next_iid <- m.mir_next_iid + 1;
  i

let block m l = m.mir_blocks.(l)

let successors_of_term = function
  | Goto l -> [ l ]
  | If (_, t, f) -> [ t; f ]
  | Ret _ | Trap _ -> []

let successors m l = successors_of_term (block m l).b_term

let iter_blocks m f = Array.iter f m.mir_blocks

let iter_instrs m f =
  iter_blocks m (fun b -> List.iter (fun i -> f b i) b.b_instrs)

let n_blocks m = Array.length m.mir_blocks

(* Registers used (read) by an operation, in a fixed operand order used
   by SSA/value-numbering to address uses. *)
let uses = function
  | Const _ -> []
  | Move (_, s) -> [ s ]
  | Binop (_, _, l, r) -> [ l; r ]
  | Unop (_, _, s) -> [ s ]
  | GetField (_, o, _) -> [ o ]
  | PutField (o, _, s) -> [ o; s ]
  | GetStatic _ -> []
  | PutStatic (_, s) -> [ s ]
  | ALoad (_, a, i) -> [ a; i ]
  | AStore (a, i, s) -> [ a; i; s ]
  | NewObj _ -> []
  | NewArr (_, _, dims) -> dims
  | ArrLen (_, a) -> [ a ]
  | ClassObj _ -> []
  | NullCheck r -> [ r ]
  | BoundsCheck (a, i) -> [ a; i ]
  | Call (_, _, args, _) -> args
  | MonitorEnter (r, _) | MonitorExit (r, _) -> [ r ]
  | ThreadStart r | ThreadJoin r -> [ r ]
  | Wait r | Notify (r, _) -> [ r ]
  | Yield -> []
  | Print (_, r) -> Option.to_list r
  | Trace t -> (
      match t.tr_target with
      | Tr_field (o, _) -> [ o ]
      | Tr_static _ -> []
      | Tr_array (a, i) -> [ a; i ])

let def = function
  | Const (d, _)
  | Move (d, _)
  | Binop (_, d, _, _)
  | Unop (_, d, _)
  | GetField (d, _, _)
  | GetStatic (d, _)
  | ALoad (d, _, _)
  | NewObj (d, _)
  | NewArr (d, _, _)
  | ArrLen (d, _)
  | ClassObj (d, _) ->
      Some d
  | Call (d, _, _, _) -> d
  | PutField _ | PutStatic _ | AStore _ | NullCheck _ | BoundsCheck _
  | MonitorEnter _ | MonitorExit _ | ThreadStart _ | ThreadJoin _ | Wait _
  | Notify _ | Yield | Print _ | Trace _ ->
      None

let term_uses = function
  | Goto _ -> []
  | If (c, _, _) -> [ c ]
  | Ret (Some r) -> [ r ]
  | Ret None | Trap _ -> []

(* Is this instruction a barrier for the static weaker-than relation
   (the Exec predicate of Section 6.1, condition 2: "no method
   invocation between", plus Definition 3's "no start()/join()
   between")?  Calls may run arbitrary code including start/join.
   [MonitorExit] is a barrier because the held lockset shrinks — an
   event after it can hold fewer locks than the covering event.
   [MonitorEnter] is deliberately NOT a barrier: between the covering
   trace and the covered one the lockset then only grows, which is
   exactly the [e_i.L ⊆ e_j.L] condition (this is what lets an access
   outside a synchronized block cover one inside it, the paper's
   [outer] case).  PEIs abort the thread entirely, so they are not
   barriers either. *)
let is_barrier = function
  | Call _ | ThreadStart _ | ThreadJoin _ | MonitorExit _ -> true
  (* wait releases and re-acquires the whole monitor stack of its
     object, and another thread runs in between: both the lockset and
     the interleaving change across it. *)
  | Wait _ | Notify _ -> true
  | _ -> false

(* A whole program in IR form. *)
type program = {
  p_tprog : Tast.tprogram;
  p_methods : (string, mir) Hashtbl.t; (* keyed by "Class.name" *)
  p_main : string; (* key of main *)
  p_sites : Site_table.t;
}

let find_mir p key = Hashtbl.find_opt p.p_methods key

let iter_mirs p f =
  Hashtbl.fold (fun k m acc -> (k, m) :: acc) p.p_methods []
  |> List.sort compare
  |> List.iter (fun (_, m) -> f m)
