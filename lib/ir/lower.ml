module Ast = Drd_lang.Ast
module Tast = Drd_lang.Tast
open Tast
open Ir

(* Mutable method-under-construction. *)
type builder_block = {
  bb_label : label;
  mutable bb_rev_instrs : instr list;
  mutable bb_term : term option;
  mutable bb_term_sync : int list;
}

type ctx = {
  prog : tprogram;
  sites : Site_table.t;
  meth : tmethod;
  mutable blocks : builder_block list; (* reverse creation order *)
  mutable nblocks : int;
  mutable cur : builder_block;
  mutable nregs : int;
  mutable niids : int;
  mutable nregions : int;
  mutable sync_stack : (reg * int) list; (* (lock reg, region id), innermost first *)
  mutable loops : loop_ctx list;
}

and loop_ctx = {
  lc_continue : label;
  lc_break : label;
  lc_sync_depth : int; (* length of sync_stack at loop entry *)
}

let new_block ctx =
  let bb =
    {
      bb_label = ctx.nblocks;
      bb_rev_instrs = [];
      bb_term = None;
      bb_term_sync = [];
    }
  in
  ctx.nblocks <- ctx.nblocks + 1;
  ctx.blocks <- bb :: ctx.blocks;
  bb

let sync_path ctx = List.rev_map snd ctx.sync_stack

let emit ctx line op =
  let i =
    {
      i_op = op;
      i_id = ctx.niids;
      i_line = line;
      i_sync = sync_path ctx;
    }
  in
  ctx.niids <- ctx.niids + 1;
  ctx.cur.bb_rev_instrs <- i :: ctx.cur.bb_rev_instrs

let fresh ctx =
  let r = ctx.nregs in
  ctx.nregs <- ctx.nregs + 1;
  r

(* Terminate the current block; if it already has a terminator (dead
   code after return/break), the instruction stream continues in a fresh
   unreachable block, so we only set the terminator when absent. *)
let set_term ctx term =
  match ctx.cur.bb_term with
  | None ->
      ctx.cur.bb_term <- Some term;
      ctx.cur.bb_term_sync <- sync_path ctx
  | Some _ -> ()

let switch_to ctx bb = ctx.cur <- bb

let default_const = function
  | Ast.Tint -> Cint 0
  | Ast.Tbool -> Cbool false
  | _ -> Cnull

let line_of_pos (p : Ast.pos) = p.Ast.line

(* Null checks are elided when the receiver is [this] (never null). *)
let is_this (e : texpr) = match e.te with TThis -> true | _ -> false

let null_check ctx line (e : texpr) r =
  if not (is_this e) then emit ctx line (NullCheck r)

let fm_of (fi : field_info) =
  { fm_class = fi.fld_owner; fm_name = fi.fld_name; fm_index = fi.fld_index }

let sm_of (sf : sfield_info) =
  { sm_class = sf.sf_class; sm_name = sf.sf_name; sm_slot = sf.sf_slot }

let static_class_of (e : texpr) =
  match e.tty with
  | Ast.Tclass c -> c
  | _ -> invalid_arg "receiver is not an object"

let rec lower_expr ctx (e : texpr) : reg =
  let line = line_of_pos e.tepos in
  match e.te with
  | TInt n ->
      let d = fresh ctx in
      emit ctx line (Const (d, Cint n));
      d
  | TBool v ->
      let d = fresh ctx in
      emit ctx line (Const (d, Cbool v));
      d
  | TNull ->
      let d = fresh ctx in
      emit ctx line (Const (d, Cnull));
      d
  | TThis -> 0
  | TLocal slot -> slot
  | TGetField (o, fi) ->
      let ro = lower_expr ctx o in
      null_check ctx line o ro;
      let d = fresh ctx in
      emit ctx line (GetField (d, ro, fm_of fi));
      d
  | TGetStatic sf ->
      let d = fresh ctx in
      emit ctx line (GetStatic (d, sm_of sf));
      d
  | TIndex (a, i) ->
      let ra = lower_expr ctx a in
      let ri = lower_expr ctx i in
      null_check ctx line a ra;
      emit ctx line (BoundsCheck (ra, ri));
      let d = fresh ctx in
      emit ctx line (ALoad (d, ra, ri));
      d
  | TLen a ->
      let ra = lower_expr ctx a in
      null_check ctx line a ra;
      let d = fresh ctx in
      emit ctx line (ArrLen (d, ra));
      d
  | TCall c -> (
      match lower_call ctx line c with
      | Some r -> r
      | None ->
          (* void call in expression position cannot happen after
             typechecking, but return a dummy for robustness *)
          let d = fresh ctx in
          emit ctx line (Const (d, Cint 0));
          d)
  | TNew (cname, args) ->
      let d = fresh ctx in
      emit ctx line (NewObj (d, cname));
      (match Tast.find_method ctx.prog cname "<init>" with
      | Some _ ->
          let rargs = List.map (lower_expr ctx) args in
          emit ctx line (Call (None, Ctor cname, d :: rargs, -1))
      | None -> ());
      d
  | TNewArray (base, dims) ->
      let rdims = List.map (lower_expr ctx) dims in
      let d = fresh ctx in
      emit ctx line (NewArr (d, base, rdims));
      d
  | TBinop (Ast.And, l, r) -> lower_short_circuit ctx line ~is_and:true l r
  | TBinop (Ast.Or, l, r) -> lower_short_circuit ctx line ~is_and:false l r
  | TBinop (op, l, r) ->
      let rl = lower_expr ctx l in
      let rr = lower_expr ctx r in
      let d = fresh ctx in
      emit ctx line (Binop (op, d, rl, rr));
      d
  | TUnop (op, s) ->
      let rs = lower_expr ctx s in
      let d = fresh ctx in
      emit ctx line (Unop (op, d, rs));
      d

and lower_short_circuit ctx line ~is_and l r =
  let d = fresh ctx in
  let rl = lower_expr ctx l in
  let b_rhs = new_block ctx in
  let b_skip = new_block ctx in
  let b_join = new_block ctx in
  set_term ctx
    (if is_and then If (rl, b_rhs.bb_label, b_skip.bb_label)
     else If (rl, b_skip.bb_label, b_rhs.bb_label));
  switch_to ctx b_rhs;
  let rr = lower_expr ctx r in
  emit ctx line (Move (d, rr));
  set_term ctx (Goto b_join.bb_label);
  switch_to ctx b_skip;
  emit ctx line (Const (d, Cbool (not is_and)));
  set_term ctx (Goto b_join.bb_label);
  switch_to ctx b_join;
  d

and lower_call ctx line (c : tcall) : reg option =
  match c with
  | CVirtual (recv, name, args, ret) ->
      let rr = lower_expr ctx recv in
      let rargs = List.map (lower_expr ctx) args in
      null_check ctx line recv rr;
      let dst = if ret = Ast.Tvoid then None else Some (fresh ctx) in
      (* Virtual calls notify [Sink.call] with the receiver; give the
         call site a real id so those notifications (and per-site
         statistics built on them) name the actual source site instead
         of -1.  [ctx.niids] is the id [emit] will assign to the call
         instruction itself. *)
      let site =
        Site_table.add ctx.sites
          {
            Site_table.s_method =
              Tast.method_key ctx.meth.tm_class ctx.meth.tm_name;
            s_line = line;
            s_desc = "call " ^ name;
            s_iid = ctx.niids;
          }
      in
      emit ctx line
        (Call (dst, Virtual (static_class_of recv, name), rr :: rargs, site));
      dst
  | CStatic (cls, name, args, ret) ->
      let rargs = List.map (lower_expr ctx) args in
      let dst = if ret = Ast.Tvoid then None else Some (fresh ctx) in
      emit ctx line (Call (dst, Static (cls, name), rargs, -1));
      dst
  | CStart recv ->
      let rr = lower_expr ctx recv in
      null_check ctx line recv rr;
      emit ctx line (ThreadStart rr);
      None
  | CJoin recv ->
      let rr = lower_expr ctx recv in
      null_check ctx line recv rr;
      emit ctx line (ThreadJoin rr);
      None
  | CYield ->
      emit ctx line Yield;
      None
  | CWait recv ->
      let rr = lower_expr ctx recv in
      null_check ctx line recv rr;
      emit ctx line (Wait rr);
      None
  | CNotify recv ->
      let rr = lower_expr ctx recv in
      null_check ctx line recv rr;
      emit ctx line (Notify (rr, false));
      None
  | CNotifyAll recv ->
      let rr = lower_expr ctx recv in
      null_check ctx line recv rr;
      emit ctx line (Notify (rr, true));
      None

(* Emit MonitorExit for the sync regions opened more recently than
   [down_to] (a sync-stack length), innermost first. *)
let emit_sync_exits ctx line ~down_to =
  let rec go stack =
    if List.length stack > down_to then
      match stack with
      | (lock, region) :: rest ->
          emit ctx line (MonitorExit (lock, region));
          go rest
      | [] -> ()
  in
  go ctx.sync_stack

let rec lower_stmt ctx (s : tstmt) =
  let line = line_of_pos s.tspos in
  match s.ts with
  | TDecl (slot, ty, init) -> (
      match init with
      | Some e ->
          let r = lower_expr ctx e in
          emit ctx line (Move (slot, r))
      | None -> emit ctx line (Const (slot, default_const ty)))
  | TAssignLocal (slot, e) ->
      let r = lower_expr ctx e in
      emit ctx line (Move (slot, r))
  | TSetField (o, fi, e) ->
      let ro = lower_expr ctx o in
      let rv = lower_expr ctx e in
      null_check ctx line o ro;
      emit ctx line (PutField (ro, fm_of fi, rv))
  | TSetStatic (sf, e) ->
      let rv = lower_expr ctx e in
      emit ctx line (PutStatic (sm_of sf, rv))
  | TSetIndex (a, i, e) ->
      let ra = lower_expr ctx a in
      let ri = lower_expr ctx i in
      let rv = lower_expr ctx e in
      null_check ctx line a ra;
      emit ctx line (BoundsCheck (ra, ri));
      emit ctx line (AStore (ra, ri, rv))
  | TExpr e -> (
      match e.te with
      | TCall c -> ignore (lower_call ctx (line_of_pos e.tepos) c)
      | _ -> ignore (lower_expr ctx e))
  | TIf (cond, thn, els) ->
      let rc = lower_expr ctx cond in
      let b_then = new_block ctx in
      let b_else = new_block ctx in
      let b_join = new_block ctx in
      set_term ctx (If (rc, b_then.bb_label, b_else.bb_label));
      switch_to ctx b_then;
      List.iter (lower_stmt ctx) thn;
      set_term ctx (Goto b_join.bb_label);
      switch_to ctx b_else;
      List.iter (lower_stmt ctx) els;
      set_term ctx (Goto b_join.bb_label);
      switch_to ctx b_join
  | TWhile (cond, body) ->
      let b_head = new_block ctx in
      let b_body = new_block ctx in
      let b_exit = new_block ctx in
      set_term ctx (Goto b_head.bb_label);
      switch_to ctx b_head;
      let rc = lower_expr ctx cond in
      set_term ctx (If (rc, b_body.bb_label, b_exit.bb_label));
      ctx.loops <-
        {
          lc_continue = b_head.bb_label;
          lc_break = b_exit.bb_label;
          lc_sync_depth = List.length ctx.sync_stack;
        }
        :: ctx.loops;
      switch_to ctx b_body;
      List.iter (lower_stmt ctx) body;
      set_term ctx (Goto b_head.bb_label);
      ctx.loops <- List.tl ctx.loops;
      switch_to ctx b_exit
  | TFor (init, cond, update, body) ->
      Option.iter (lower_stmt ctx) init;
      let b_head = new_block ctx in
      let b_body = new_block ctx in
      let b_update = new_block ctx in
      let b_exit = new_block ctx in
      set_term ctx (Goto b_head.bb_label);
      switch_to ctx b_head;
      (match cond with
      | Some c ->
          let rc = lower_expr ctx c in
          set_term ctx (If (rc, b_body.bb_label, b_exit.bb_label))
      | None -> set_term ctx (Goto b_body.bb_label));
      ctx.loops <-
        {
          lc_continue = b_update.bb_label;
          lc_break = b_exit.bb_label;
          lc_sync_depth = List.length ctx.sync_stack;
        }
        :: ctx.loops;
      switch_to ctx b_body;
      List.iter (lower_stmt ctx) body;
      set_term ctx (Goto b_update.bb_label);
      ctx.loops <- List.tl ctx.loops;
      switch_to ctx b_update;
      Option.iter (lower_stmt ctx) update;
      set_term ctx (Goto b_head.bb_label);
      switch_to ctx b_exit
  | TReturn e ->
      let r = Option.map (lower_expr ctx) e in
      emit_sync_exits ctx line ~down_to:0;
      set_term ctx (Ret r);
      switch_to ctx (new_block ctx)
  | TSync (lock, body) ->
      let rl = lower_expr ctx lock in
      null_check ctx line lock rl;
      let region = ctx.nregions in
      ctx.nregions <- ctx.nregions + 1;
      emit ctx line (MonitorEnter (rl, region));
      ctx.sync_stack <- (rl, region) :: ctx.sync_stack;
      List.iter (lower_stmt ctx) body;
      ctx.sync_stack <- List.tl ctx.sync_stack;
      emit ctx line (MonitorExit (rl, region))
  | TPrint (tag, e) ->
      let r = Option.map (lower_expr ctx) e in
      emit ctx line (Print (tag, r))
  | TBreak ->
      let lc = List.hd ctx.loops in
      emit_sync_exits ctx line ~down_to:lc.lc_sync_depth;
      set_term ctx (Goto lc.lc_break);
      switch_to ctx (new_block ctx)
  | TContinue ->
      let lc = List.hd ctx.loops in
      emit_sync_exits ctx line ~down_to:lc.lc_sync_depth;
      set_term ctx (Goto lc.lc_continue);
      switch_to ctx (new_block ctx)

let lower_method prog sites (m : tmethod) : mir =
  let entry =
    {
      bb_label = 0;
      bb_rev_instrs = [];
      bb_term = None;
      bb_term_sync = [];
    }
  in
  let ctx =
    {
      prog;
      sites;
      meth = m;
      blocks = [ entry ];
      nblocks = 1;
      cur = entry;
      nregs = max m.tm_nslots 1;
      niids = 0;
      nregions = 0;
      sync_stack = [];
      loops = [];
    }
  in
  let line = line_of_pos m.tm_pos in
  (* Synchronized methods: explicit outermost region on [this] (or the
     class object for static methods). *)
  if m.tm_sync then begin
    let lock =
      if m.tm_static then begin
        let r = fresh ctx in
        emit ctx line (ClassObj (r, m.tm_class));
        r
      end
      else 0
    in
    let region = ctx.nregions in
    ctx.nregions <- ctx.nregions + 1;
    emit ctx line (MonitorEnter (lock, region));
    ctx.sync_stack <- (lock, region) :: ctx.sync_stack
  end;
  List.iter (lower_stmt ctx) m.tm_body;
  (* Fall-off-the-end epilogue. *)
  (if m.tm_ret = Ast.Tvoid then begin
     emit_sync_exits ctx line ~down_to:0;
     set_term ctx (Ret None)
   end
   else set_term ctx (Trap "missing return"));
  (* Seal all blocks. *)
  let blocks = Array.make ctx.nblocks None in
  List.iter
    (fun bb ->
      blocks.(bb.bb_label) <-
        Some
          {
            b_label = bb.bb_label;
            b_instrs = List.rev bb.bb_rev_instrs;
            b_term = Option.value bb.bb_term ~default:(Trap "unreachable");
            b_term_sync = bb.bb_term_sync;
          })
    ctx.blocks;
  ignore sites;
  {
    mir_class = m.tm_class;
    mir_name = m.tm_name;
    mir_static = m.tm_static;
    mir_sync = m.tm_sync;
    mir_nparams = (if m.tm_static then 0 else 1) + List.length m.tm_param_tys;
    mir_entry = 0;
    mir_blocks = Array.map Option.get blocks;
    mir_nregs = ctx.nregs;
    mir_next_iid = ctx.niids;
  }

let lower_program (prog : tprogram) : Ir.program =
  let sites = Site_table.create () in
  let methods = Hashtbl.create 64 in
  Tast.iter_methods prog (fun m ->
      let mir = lower_method prog sites m in
      Hashtbl.replace methods (Ir.mir_key mir) mir);
  {
    p_tprog = prog;
    p_methods = methods;
    p_main = Tast.method_key prog.main_class "main";
    p_sites = sites;
  }
