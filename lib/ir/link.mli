(** The link phase: resolve an instrumented {!Ir.program} into a flat
    executable image — dense method ids, per-class vtables, pre-resolved
    call sites and block-free [lop array] bodies addressed by an integer
    pc — so the VM's hot loop runs without string keys, hierarchy walks
    or list traversal.  Linking never adds, removes or reorders an
    executed step: schedules and event streams are bit-identical to the
    block interpreter's. *)

module Tast = Drd_lang.Tast
module Ast = Drd_lang.Ast

exception Link_error of string
(** A program that cannot be linked: missing main, a call to a method
    with no body, field/static layout metadata that contradicts the
    typed program, or a method body that fails the link-time validation
    pass (a register operand outside the method's register file, a
    branch target outside its code array, a non-terminator in the last
    slot).  Validation runs on every linked method and is what lets the
    interpreter skip bounds checks on register-file and code-array
    accesses. *)

(** Pre-resolved call target. *)
type lcall =
  | Lc_method of int  (** Method id — [Static] and [Ctor] calls. *)
  | Lc_virtual of int * string
      (** Vtable slot (the receiver's dynamic class selects the row);
          the method name is kept for error messages only. *)

(** Specialization class of a trace site whose static facts license a
    cheap per-event runtime check (computed by [Drd_static.Specialize];
    the soundness rule is that the fact must hold for {e every}
    execution of the site — near-miss facts leave the site generic). *)
type spec_class =
  | Sfixed
      (** The must-held lockset equals the may-held lockset, so the
          dynamic lockset at the site is statically pinned; the runtime
          keeps a (thread, location, lockset-id) memo per cell and drops
          exact repeats of events that already reached trie storage. *)
  | Sowned
      (** Owned until escape: the site's whole alias component is
          {e managed} — every traced site that can touch one of its
          locations consults the runtime's shared location-owner map —
          so repeats by a location's owning thread are dropped until the
          first event that breaks the pattern demotes the location. *)
  | Sro
      (** Every traced write that can alias the site's location executes
          before any thread start; post-start the location is read-only,
          so reads are dropped after the first sighting. *)

(** The per-site specialization table handed to {!link}.  Sites map to
    dense {e cell} ids (the runtime's flat fast-path state arrays are
    indexed by cell). *)
type spec = {
  sp_ncells : int;
  sp_cell_of_site : int array;  (** site id -> cell id, or -1 (generic). *)
  sp_cell_class : spec_class array;  (** cell id -> class. *)
  sp_cell_managed : bool array;
      (** cell id -> participates in the shared location-owner map
          (always for [Sowned], per-component for [Sfixed], never for
          [Sro]). *)
}

(** Flat executable instruction: {!Ir.op} with call targets resolved,
    trace targets reduced to the indices the event needs, and block
    terminators inlined into the stream with branch targets as pcs. *)
type lop =
  | Lconst of Ir.reg * Ir.const
  | Lmove of Ir.reg * Ir.reg
  | Lbinop of Ast.binop * Ir.reg * Ir.reg * Ir.reg
  | Lunop of Ast.unop * Ir.reg * Ir.reg
  | Lgetfield of Ir.reg * Ir.reg * Ir.field_meta
  | Lputfield of Ir.reg * Ir.field_meta * Ir.reg
  | Lgetstatic of Ir.reg * Ir.static_meta
  | Lputstatic of Ir.static_meta * Ir.reg
  | Laload of Ir.reg * Ir.reg * Ir.reg
  | Lastore of Ir.reg * Ir.reg * Ir.reg
  | Lnewobj of Ir.reg * int  (** class id *)
  | Lnewarr of Ir.reg * Ast.ty * Ir.reg list
  | Larrlen of Ir.reg * Ir.reg
  | Lclassobj of Ir.reg * int  (** class id *)
  | Lnullcheck of Ir.reg
  | Lboundscheck of Ir.reg * Ir.reg
  | Lcall of Ir.reg option * lcall * Ir.reg array * int
      (** dst, target, args, call-site id (-1 for statics/ctors). *)
  | Lmonitorenter of Ir.reg
  | Lmonitorexit of Ir.reg
  | Lthreadstart of Ir.reg
  | Lthreadjoin of Ir.reg
  | Lwait of Ir.reg
  | Lnotify of Ir.reg * bool
  | Lyield
  | Lprint of string * Ir.reg option
  | Ltrace_field of Ir.reg * int * Drd_core.Event.kind * int
      (** object register, field index, kind, site id *)
  | Ltrace_static of int * Drd_core.Event.kind * int  (** slot, kind, site *)
  | Ltrace_array of Ir.reg * Drd_core.Event.kind * int  (** array, kind, site *)
  | Ltrace_field_spec of Ir.reg * int * Drd_core.Event.kind * int * int
      (** Specialized twin of [Ltrace_field] with the spec cell id
          appended; identical semantics when no specialized sink is
          installed. *)
  | Ltrace_static_spec of int * Drd_core.Event.kind * int * int
  | Ltrace_array_spec of Ir.reg * Drd_core.Event.kind * int * int
  | Lgoto of int
  | Lif of Ir.reg * int * int
  | Lret of Ir.reg option
  | Ltrap of string

type lmethod = {
  m_id : int;
  m_key : string;  (** "Class.name", for error messages. *)
  m_nregs : int;  (** Register file size (≥ 1). *)
  m_nparams : int;
  m_entry : int;  (** pc of the entry block. *)
  m_code : lop array;
  m_lines : int array;  (** Source line per pc, for error messages. *)
}

type image = {
  i_prog : Ir.program;  (** The linked program (tprog + site table). *)
  i_methods : lmethod array;  (** Indexed by method id. *)
  i_main : int;  (** Method id of main. *)
  i_classes : string array;  (** Class id -> name (sorted order). *)
  i_class_fields : Tast.field_info array array;
      (** Class id -> full field layout (for allocation templates). *)
  i_vtables : int array array;
      (** Class id -> vtable slot -> method id, or -1 when the class
          has no implementation for that slot. *)
  i_slot_names : string array;  (** Vtable slot -> method name. *)
  i_run_slot : int;  (** Vtable slot of ["run"], or -1. *)
  i_spec : spec option;  (** Trace specialization table, if any. *)
}

val link : ?spec:spec -> Ir.program -> image
(** Number methods and classes (sorted-key order, so ids are a pure
    function of the program), build vtables, flatten and pre-resolve
    every method body, and validate field/static layout metadata.
    When [?spec] is given, each trace site with a cell id is emitted as
    its specialized twin op; linking is otherwise unchanged (the image
    remains valid input for the generic engine, which treats the twins
    exactly like the generic ops).  Raises {!Link_error} on an
    unlinkable program. *)

val spec_cell_of_site : image -> int -> int
(** The spec cell of a site id, or -1 when the site is generic (or the
    image carries no spec table). *)

val spec_class_of_site : image -> int -> spec_class option
(** The specialization class of a site id, when it has one. *)

val method_count : image -> int
val class_count : image -> int

val find_method_id : image -> string -> int option
(** Method id of a "Class.name" key (binary search over the sorted
    method array); [None] if the image has no such method. *)
