module Tast = Drd_lang.Tast
module Ast = Drd_lang.Ast
open Ir

(* The link phase: turn an instrumented [Ir.program] — methods in a
   string-keyed hashtable, bodies as block lists of instruction lists,
   call targets as (class, name) strings — into a flat executable
   image the VM can run without touching a string or walking a class
   hierarchy:

   - methods are numbered into a dense array (ids assigned over the
     sorted key order [iter_mirs] uses, so numbering is independent of
     hashtable insertion order);
   - every class gets a vtable: [vtables.(class_id).(slot)] is the
     implementing method id, so [Virtual] dispatch is two array loads
     instead of a [Tast.dispatch] hierarchy walk plus a string-keyed
     hashtable lookup;
   - call sites are pre-resolved: [Static]/[Ctor] directly to a method
     id, [Virtual] to a vtable slot (the receiver's dynamic class picks
     the row at run time);
   - each method body is flattened into one [lop array]: block
     boundaries disappear, the pc is an integer, branch targets are
     pcs, and block terminators are ordinary slots in the stream (they
     were separate "free" steps in the block interpreter, and stay
     exactly one step here — the step counts the scheduler sees are
     unchanged);
   - field and static layout metadata is checked against the typed
     program once, at link time, so the interpreter can trust every
     [fm_index]/[sm_slot] it executes.

   Linking is pure bookkeeping: it never reorders, adds or removes an
   executed step, so schedules, RNG consumption and the event stream
   are bit-identical to the block interpreter's. *)

exception Link_error of string

let link_error fmt = Format.kasprintf (fun m -> raise (Link_error m)) fmt

(* Pre-resolved call target. *)
type lcall =
  | Lc_method of int (* method id: Static and Ctor calls *)
  | Lc_virtual of int * string (* vtable slot; name kept for errors *)

(* Per-site trace specialization (computed by Drd_static.Specialize,
   consumed here).  A trace site whose static facts license a cheap
   runtime check is linked into a [Ltrace_*_spec] op carrying a dense
   {e cell} id; the runtime keeps its per-site fast-path state (lockset
   memo, first-sighting bit) in flat arrays indexed by that cell, plus
   one shared location -> owner map for the {e managed} cells.  A cell
   is managed when its whole alias component is: every traced site
   that can produce an event for one of the component's locations is
   itself a managed cell, which is what keeps the ownership shortcut
   exact — the first event that breaks a location's single-owner
   pattern necessarily flows through a managed cell and demotes the
   location before any ownership transition it could cause. *)
type spec_class =
  | Sfixed (* must-held lockset = may-held lockset, compile-time constant *)
  | Sowned (* owned until escape: managed component, singleton base *)
  | Sro (* every aliasing traced write executes before any thread start *)

type spec = {
  sp_ncells : int;
  sp_cell_of_site : int array; (* site id -> cell id, or -1 for generic *)
  sp_cell_class : spec_class array; (* cell id -> class *)
  sp_cell_managed : bool array;
      (* cell id -> whether the cell takes part in the shared
         location-owner map (always true for [Sowned], per-component
         for [Sfixed], false for [Sro]) *)
}

(* Flat executable instruction.  Mirrors [Ir.op] with targets resolved
   and terminators inlined; the source line lives in a parallel array
   ([m_lines]) so the hot stream carries only what execution needs. *)
type lop =
  | Lconst of reg * const
  | Lmove of reg * reg
  | Lbinop of Ast.binop * reg * reg * reg
  | Lunop of Ast.unop * reg * reg
  | Lgetfield of reg * reg * field_meta
  | Lputfield of reg * field_meta * reg
  | Lgetstatic of reg * static_meta
  | Lputstatic of static_meta * reg
  | Laload of reg * reg * reg
  | Lastore of reg * reg * reg
  | Lnewobj of reg * int (* class id *)
  | Lnewarr of reg * Ast.ty * reg list
  | Larrlen of reg * reg
  | Lclassobj of reg * int (* class id *)
  | Lnullcheck of reg
  | Lboundscheck of reg * reg
  | Lcall of reg option * lcall * reg array * int (* args, call-site id *)
  | Lmonitorenter of reg
  | Lmonitorexit of reg
  | Lthreadstart of reg
  | Lthreadjoin of reg
  | Lwait of reg
  | Lnotify of reg * bool
  | Lyield
  | Lprint of string * reg option
  | Ltrace_field of reg * int * Drd_core.Event.kind * int (* obj, index, kind, site *)
  | Ltrace_static of int * Drd_core.Event.kind * int (* slot, kind, site *)
  | Ltrace_array of reg * Drd_core.Event.kind * int (* array, kind, site *)
  (* Specialized traces: same operands plus the spec cell id.  They are
     executed exactly like their generic twins when no specialized sink
     is installed (reference semantics), so an image containing them is
     still valid input for the generic linked engine. *)
  | Ltrace_field_spec of reg * int * Drd_core.Event.kind * int * int
  | Ltrace_static_spec of int * Drd_core.Event.kind * int * int
  | Ltrace_array_spec of reg * Drd_core.Event.kind * int * int
  | Lgoto of int
  | Lif of reg * int * int
  | Lret of reg option
  | Ltrap of string

type lmethod = {
  m_id : int;
  m_key : string; (* "Class.name", for error messages *)
  m_nregs : int;
  m_nparams : int;
  m_entry : int; (* pc of the entry block *)
  m_code : lop array;
  m_lines : int array; (* source line per pc, for error messages *)
}

type image = {
  i_prog : Ir.program; (* typed program + site table, for reports *)
  i_methods : lmethod array; (* indexed by method id *)
  i_main : int; (* method id of main *)
  i_classes : string array; (* class id -> name *)
  i_class_fields : Tast.field_info array array; (* class id -> layout *)
  i_vtables : int array array; (* class id -> slot -> method id or -1 *)
  i_slot_names : string array; (* slot -> method name, for errors *)
  i_run_slot : int; (* vtable slot of "run", or -1 if never defined *)
  i_spec : spec option; (* trace specialization table, if any site qualified *)
}

let spec_cell_of_site im site =
  match im.i_spec with
  | Some sp when site >= 0 && site < Array.length sp.sp_cell_of_site ->
      sp.sp_cell_of_site.(site)
  | _ -> -1

let spec_class_of_site im site =
  match im.i_spec with
  | Some sp ->
      let c = spec_cell_of_site im site in
      if c >= 0 then Some sp.sp_cell_class.(c) else None
  | None -> None

let method_count im = Array.length im.i_methods

let class_count im = Array.length im.i_classes

let find_method_id im key =
  let n = Array.length im.i_methods in
  let rec go lo hi =
    if lo >= hi then None
    else
      let mid = (lo + hi) / 2 in
      let c = compare im.i_methods.(mid).m_key key in
      if c = 0 then Some mid else if c < 0 then go (mid + 1) hi else go lo mid
  in
  go 0 n

(* ---- numbering ---- *)

let sorted_keys (p : program) =
  Hashtbl.fold (fun k _ acc -> k :: acc) p.p_methods []
  |> List.sort compare

let sorted_classes (tprog : Tast.tprogram) =
  Hashtbl.fold (fun k _ acc -> k :: acc) tprog.Tast.classes []
  |> List.sort compare

(* ---- layout checking ---- *)

let check_field_meta tprog ~where (fm : field_meta) =
  match Tast.find_class tprog fm.fm_class with
  | None -> link_error "%s: field %s.%s on unknown class" where fm.fm_class fm.fm_name
  | Some ci ->
      let n = Array.length ci.Tast.cls_fields in
      if fm.fm_index < 0 || fm.fm_index >= n then
        link_error "%s: field %s.%s index %d outside layout of %d fields"
          where fm.fm_class fm.fm_name fm.fm_index n;
      let f = ci.Tast.cls_fields.(fm.fm_index) in
      if f.Tast.fld_name <> fm.fm_name then
        link_error "%s: field index %d of %s is %s, not %s" where fm.fm_index
          fm.fm_class f.Tast.fld_name fm.fm_name

let check_static_meta tprog ~where (sm : static_meta) =
  let n = Array.length tprog.Tast.statics in
  if sm.sm_slot < 0 || sm.sm_slot >= n then
    link_error "%s: static %s.%s slot %d outside %d static slots" where
      sm.sm_class sm.sm_name sm.sm_slot n;
  let sf = tprog.Tast.statics.(sm.sm_slot) in
  if sf.Tast.sf_class <> sm.sm_class || sf.Tast.sf_name <> sm.sm_name then
    link_error "%s: static slot %d is %s.%s, not %s.%s" where sm.sm_slot
      sf.Tast.sf_class sf.Tast.sf_name sm.sm_class sm.sm_name

(* Link-time validation that discharges the interpreter's bounds checks:
   once a method passes, every register operand is inside its register
   file, every branch target is a valid pc, and every non-terminator has
   a successor slot, so the hot loop fetches code and registers
   unchecked ([Array.unsafe_get]). *)
let validate (m : lmethod) : lmethod =
  let nregs = m.m_nregs and size = Array.length m.m_code in
  let reg r =
    if r < 0 || r >= nregs then
      link_error "%s: register r%d outside %d registers" m.m_key r nregs
  in
  let opt = function Some r -> reg r | None -> () in
  let target pc =
    if pc < 0 || pc >= size then
      link_error "%s: branch target %d outside %d slots" m.m_key pc size
  in
  target m.m_entry;
  Array.iteri
    (fun pc op ->
      (match op with
      | Lconst (d, _) | Lnewobj (d, _) | Lclassobj (d, _) | Lgetstatic (d, _)
        ->
          reg d
      | Lmove (d, s) | Lunop (_, d, s) ->
          reg d;
          reg s
      | Lbinop (_, d, l, r) ->
          reg d;
          reg l;
          reg r
      | Lgetfield (d, o, _) ->
          reg d;
          reg o
      | Lputfield (o, _, s) ->
          reg o;
          reg s
      | Lputstatic (_, s) -> reg s
      | Laload (a, b, c) | Lastore (a, b, c) ->
          reg a;
          reg b;
          reg c
      | Lnewarr (d, _, dims) ->
          reg d;
          List.iter reg dims
      | Larrlen (d, a) | Lboundscheck (a, d) ->
          reg d;
          reg a
      | Lnullcheck r
      | Lmonitorenter r
      | Lmonitorexit r
      | Lthreadstart r
      | Lthreadjoin r
      | Lwait r
      | Lnotify (r, _)
      | Ltrace_field (r, _, _, _)
      | Ltrace_array (r, _, _)
      | Ltrace_field_spec (r, _, _, _, _)
      | Ltrace_array_spec (r, _, _, _) ->
          reg r
      | Lcall (dst, _, args, _) ->
          opt dst;
          Array.iter reg args
      | Lprint (_, r) | Lret r -> opt r
      | Lyield | Ltrace_static _ | Ltrace_static_spec _ | Ltrap _ -> ()
      | Lgoto l -> target l
      | Lif (c, t, f) ->
          reg c;
          target t;
          target f);
      match op with
      | Lgoto _ | Lif _ | Lret _ | Ltrap _ -> ()
      | _ ->
          if pc + 1 >= size then
            link_error "%s: instruction at pc %d has no successor slot" m.m_key
              pc)
    m.m_code;
  m

(* ---- linking one method ---- *)

let link_mir ~tprog ~method_ids ~class_ids ~slot_ids ~cell_of_site ~id (m : mir)
    : lmethod =
  let key = mir_key m in
  let nblocks = n_blocks m in
  (* First pass: pc of every block (instructions + one terminator slot). *)
  let block_pc = Array.make nblocks 0 in
  let pc = ref 0 in
  for l = 0 to nblocks - 1 do
    block_pc.(l) <- !pc;
    pc := !pc + List.length (block m l).b_instrs + 1
  done;
  let size = !pc in
  let code = Array.make (max size 1) (Ltrap "unlinked slot") in
  let lines = Array.make (max size 1) 0 in
  let method_id mkey =
    match Hashtbl.find_opt method_ids mkey with
    | Some id -> id
    | None -> link_error "%s: call to unknown method %s" key mkey
  in
  let class_id cls =
    match Hashtbl.find_opt class_ids cls with
    | Some id -> id
    | None -> link_error "%s: unknown class %s" key cls
  in
  let link_op (i : instr) : lop =
    let where = Printf.sprintf "%s:%d" key i.i_line in
    match i.i_op with
    | Const (d, c) -> Lconst (d, c)
    | Move (d, s) -> Lmove (d, s)
    | Binop (op, d, l, r) -> Lbinop (op, d, l, r)
    | Unop (op, d, s) -> Lunop (op, d, s)
    | GetField (d, o, fm) ->
        check_field_meta tprog ~where fm;
        Lgetfield (d, o, fm)
    | PutField (o, fm, s) ->
        check_field_meta tprog ~where fm;
        Lputfield (o, fm, s)
    | GetStatic (d, sm) ->
        check_static_meta tprog ~where sm;
        Lgetstatic (d, sm)
    | PutStatic (sm, s) ->
        check_static_meta tprog ~where sm;
        Lputstatic (sm, s)
    | ALoad (d, a, idx) -> Laload (d, a, idx)
    | AStore (a, idx, s) -> Lastore (a, idx, s)
    | NewObj (d, cls) -> Lnewobj (d, class_id cls)
    | NewArr (d, ty, dims) -> Lnewarr (d, ty, dims)
    | ArrLen (d, a) -> Larrlen (d, a)
    | ClassObj (d, cls) -> Lclassobj (d, class_id cls)
    | NullCheck r -> Lnullcheck r
    | BoundsCheck (a, idx) -> Lboundscheck (a, idx)
    | Call (dst, target, args, site) ->
        let lc =
          match target with
          | Static (cls, name) -> Lc_method (method_id (cls ^ "." ^ name))
          | Ctor cls -> Lc_method (method_id (cls ^ ".<init>"))
          | Virtual (_, name) -> (
              match Hashtbl.find_opt slot_ids name with
              | Some slot -> Lc_virtual (slot, name)
              | None -> link_error "%s: no class implements method %s" key name)
        in
        Lcall (dst, lc, Array.of_list args, site)
    | MonitorEnter (r, _) -> Lmonitorenter r
    | MonitorExit (r, _) -> Lmonitorexit r
    | ThreadStart r -> Lthreadstart r
    | ThreadJoin r -> Lthreadjoin r
    | Wait r -> Lwait r
    | Notify (r, all) -> Lnotify (r, all)
    | Yield -> Lyield
    | Print (tag, r) -> Lprint (tag, r)
    | Trace t -> (
        let cell = cell_of_site t.tr_site in
        match t.tr_target with
        | Tr_field (o, fm) ->
            check_field_meta tprog ~where fm;
            if cell >= 0 then
              Ltrace_field_spec (o, fm.fm_index, t.tr_kind, t.tr_site, cell)
            else Ltrace_field (o, fm.fm_index, t.tr_kind, t.tr_site)
        | Tr_static sm ->
            check_static_meta tprog ~where sm;
            if cell >= 0 then
              Ltrace_static_spec (sm.sm_slot, t.tr_kind, t.tr_site, cell)
            else Ltrace_static (sm.sm_slot, t.tr_kind, t.tr_site)
        | Tr_array (a, _) ->
            if cell >= 0 then
              Ltrace_array_spec (a, t.tr_kind, t.tr_site, cell)
            else Ltrace_array (a, t.tr_kind, t.tr_site))
  in
  for l = 0 to nblocks - 1 do
    let b = block m l in
    let pc = ref block_pc.(l) in
    List.iter
      (fun i ->
        code.(!pc) <- link_op i;
        lines.(!pc) <- i.i_line;
        incr pc)
      b.b_instrs;
    let term_line =
      match b.b_instrs with [] -> 0 | is -> (List.nth is (List.length is - 1)).i_line
    in
    code.(!pc) <-
      (match b.b_term with
      | Goto l' -> Lgoto block_pc.(l')
      | If (c, t, f) -> Lif (c, block_pc.(t), block_pc.(f))
      | Ret v -> Lret v
      | Trap msg -> Ltrap msg);
    lines.(!pc) <- term_line
  done;
  validate
    {
      m_id = id;
      m_key = key;
      m_nregs = max m.mir_nregs 1;
      m_nparams = m.mir_nparams;
      m_entry = block_pc.(m.mir_entry);
      m_code = code;
      m_lines = lines;
    }

(* ---- linking a program ---- *)

let link ?spec (p : program) : image =
  let tprog = p.p_tprog in
  (match spec with
  | Some sp ->
      Array.iter
        (fun c ->
          if c >= sp.sp_ncells then
            link_error "spec table: cell %d outside %d cells" c sp.sp_ncells)
        sp.sp_cell_of_site;
      if Array.length sp.sp_cell_class <> sp.sp_ncells then
        link_error "spec table: %d cell classes for %d cells"
          (Array.length sp.sp_cell_class) sp.sp_ncells;
      if Array.length sp.sp_cell_managed <> sp.sp_ncells then
        link_error "spec table: %d managed flags for %d cells"
          (Array.length sp.sp_cell_managed) sp.sp_ncells
  | None -> ());
  let cell_of_site site =
    match spec with
    | Some sp when site >= 0 && site < Array.length sp.sp_cell_of_site ->
        sp.sp_cell_of_site.(site)
    | _ -> -1
  in
  (* Method numbering over the same sorted order [iter_mirs] walks, so
     ids are a pure function of the program, never of hashtable
     history. *)
  let keys = sorted_keys p in
  let method_ids = Hashtbl.create 64 in
  List.iteri (fun id k -> Hashtbl.add method_ids k id) keys;
  (match find_mir p p.p_main with
  | Some _ -> ()
  | None ->
      link_error "program has no main method: %S is not among its %d methods"
        p.p_main (List.length keys));
  (* Class numbering, also over sorted names. *)
  let classes = Array.of_list (sorted_classes tprog) in
  let class_ids = Hashtbl.create 16 in
  Array.iteri (fun id c -> Hashtbl.add class_ids c id) classes;
  let class_fields =
    Array.map
      (fun c ->
        match Tast.find_class tprog c with
        | Some ci -> ci.Tast.cls_fields
        | None -> assert false)
      classes
  in
  (* Vtable slots: one per method name that any class dispatches, in
     sorted name order. *)
  let slot_names =
    Array.fold_left
      (fun acc c ->
        match Tast.find_class tprog c with
        | Some ci -> List.fold_left (fun acc (n, _) -> n :: acc) acc ci.Tast.cls_vtable
        | None -> acc)
      [] classes
    |> List.sort_uniq compare |> Array.of_list
  in
  let slot_ids = Hashtbl.create 16 in
  Array.iteri (fun slot n -> Hashtbl.add slot_ids n slot) slot_names;
  let nslots = Array.length slot_names in
  let vtables =
    Array.map
      (fun c ->
        let row = Array.make (max nslots 1) (-1) in
        (match Tast.find_class tprog c with
        | Some ci ->
            List.iter
              (fun (name, impl) ->
                let mkey = impl ^ "." ^ name in
                match Hashtbl.find_opt method_ids mkey with
                | Some id -> row.(Hashtbl.find slot_ids name) <- id
                | None ->
                    link_error "class %s: vtable entry %s has no method body" c
                      mkey)
              ci.Tast.cls_vtable
        | None -> ());
        row)
      classes
  in
  let methods =
    Array.of_list keys
    |> Array.mapi (fun id key ->
           match find_mir p key with
           | Some m ->
               link_mir ~tprog ~method_ids ~class_ids ~slot_ids ~cell_of_site
                 ~id m
           | None -> assert false)
  in
  {
    i_prog = p;
    i_methods = methods;
    i_main = Hashtbl.find method_ids p.p_main;
    i_classes = classes;
    i_class_fields = class_fields;
    i_vtables = vtables;
    i_slot_names = slot_names;
    i_run_slot =
      (match Hashtbl.find_opt slot_ids "run" with Some s -> s | None -> -1);
    i_spec = spec;
  }
