open Ir

(* Which instructions may be deleted when their result is dead?
   - [Trace] never: the paper marks instrumentation as having an
     unknown side effect (Section 6.2).
   - Memory accesses never: they are the monitored events (and loads
     could fault only via their separate PEIs, which also stay).
   - PEIs, calls, monitors, prints, thread ops: effectful.
   - [Binop] with Div/Mod can trap on zero: only removable when the
     divisor is a known non-zero constant. *)
let removable_if_dead op ~const_of =
  match op with
  | Const _ | Move _ | Unop _ | ArrLen _ | ClassObj _ -> true
  | Binop ((Ast.Div | Ast.Mod), _, _, r) -> (
      match const_of r with Some (Cint n) -> n <> 0 | _ -> false)
  | Binop _ -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Local constant/copy propagation and folding, one block at a time.
   The value state maps registers to a known constant or a copy source;
   any other definition invalidates.  Copies are only propagated to
   USES; definitions keep their registers so liveness stays simple. *)

type lattice = Lconst of const | Lcopy of reg

let fold_binop op a b =
  match (op : Ast.binop) with
  | Ast.Add -> Some (Cint (a + b))
  | Ast.Sub -> Some (Cint (a - b))
  | Ast.Mul -> Some (Cint (a * b))
  | Ast.Div -> if b = 0 then None else Some (Cint (a / b))
  | Ast.Mod -> if b = 0 then None else Some (Cint (a mod b))
  | Ast.Lt -> Some (Cbool (a < b))
  | Ast.Le -> Some (Cbool (a <= b))
  | Ast.Gt -> Some (Cbool (a > b))
  | Ast.Ge -> Some (Cbool (a >= b))
  | Ast.Eq -> Some (Cbool (a = b))
  | Ast.Ne -> Some (Cbool (a <> b))
  | Ast.And | Ast.Or -> None (* expanded at lowering *)

let propagate_block (b : block) =
  let state : (reg, lattice) Hashtbl.t = Hashtbl.create 16 in
  let resolve r =
    match Hashtbl.find_opt state r with Some (Lcopy s) -> s | _ -> r
  in
  let const_of r =
    match Hashtbl.find_opt state (resolve r) with
    | Some (Lconst c) -> Some c
    | _ -> (
        match Hashtbl.find_opt state r with
        | Some (Lconst c) -> Some c
        | _ -> None)
  in
  let kill d =
    Hashtbl.remove state d;
    (* Any copy of d is now stale. *)
    let stale =
      Hashtbl.fold
        (fun r v acc -> match v with Lcopy s when s = d -> r :: acc | _ -> acc)
        state []
    in
    List.iter (Hashtbl.remove state) stale
  in
  let subst op =
    let s = resolve in
    match op with
    | Const _ -> op
    | Move (d, x) -> Move (d, s x)
    | Binop (o, d, l, r) -> Binop (o, d, s l, s r)
    | Unop (o, d, x) -> Unop (o, d, s x)
    | GetField (d, o, fm) -> GetField (d, s o, fm)
    | PutField (o, fm, x) -> PutField (s o, fm, s x)
    | GetStatic _ -> op
    | PutStatic (sm, x) -> PutStatic (sm, s x)
    | ALoad (d, a, i) -> ALoad (d, s a, s i)
    | AStore (a, i, x) -> AStore (s a, s i, s x)
    | NewObj _ -> op
    | NewArr (d, ty, dims) -> NewArr (d, ty, List.map s dims)
    | ArrLen (d, a) -> ArrLen (d, s a)
    | ClassObj _ -> op
    | NullCheck r -> NullCheck (s r)
    | BoundsCheck (a, i) -> BoundsCheck (s a, s i)
    | Call (d, t, args, site) -> Call (d, t, List.map s args, site)
    | MonitorEnter (r, id) -> MonitorEnter (s r, id)
    | MonitorExit (r, id) -> MonitorExit (s r, id)
    | ThreadStart r -> ThreadStart (s r)
    | ThreadJoin r -> ThreadJoin (s r)
    | Wait r -> Wait (s r)
    | Notify (r, all) -> Notify (s r, all)
    | Yield -> op
    | Print (tag, r) -> Print (tag, Option.map s r)
    | Trace t ->
        Trace
          {
            t with
            tr_target =
              (match t.tr_target with
              | Tr_field (o, fm) -> Tr_field (s o, fm)
              | Tr_static sm -> Tr_static sm
              | Tr_array (a, i) -> Tr_array (s a, s i));
          }
  in
  List.iter
    (fun (i : instr) ->
      let op = subst i.i_op in
      (* Fold arithmetic over known constants. *)
      let op =
        match op with
        | Binop (o, d, l, r) -> (
            match (const_of l, const_of r) with
            | Some (Cint a), Some (Cint b) -> (
                match fold_binop o a b with
                | Some c -> Const (d, c)
                | None -> op)
            | _ -> op)
        | Unop (Ast.Neg, d, x) -> (
            match const_of x with
            | Some (Cint a) -> Const (d, Cint (-a))
            | _ -> op)
        | Unop (Ast.Not, d, x) -> (
            match const_of x with
            | Some (Cbool v) -> Const (d, Cbool (not v))
            | _ -> op)
        | Move (d, x) -> (
            match const_of x with Some c -> Const (d, c) | None -> op)
        | _ -> op
      in
      i.i_op <- op;
      (* Update the value state. *)
      match op with
      | Const (d, c) ->
          kill d;
          Hashtbl.replace state d (Lconst c)
      | Move (d, x) ->
          kill d;
          if d <> x then Hashtbl.replace state d (Lcopy x)
      | _ -> ( match def op with Some d -> kill d | None -> ()))
    b.b_instrs;
  (* Branch folding on a known condition. *)
  (match b.b_term with
  | If (c, t, f) -> (
      match const_of (resolve c) with
      | Some (Cbool v) -> b.b_term <- Goto (if v then t else f)
      | _ -> b.b_term <- If (resolve c, t, f))
  | Ret (Some r) -> b.b_term <- Ret (Some (resolve r))
  | _ -> ())

(* ------------------------------------------------------------------ *)
(* Liveness-based dead-code elimination. *)

module Rset = Set.Make (Int)

let dce (m : mir) : int =
  let n = n_blocks m in
  (* Reachability after branch folding. *)
  let reachable = Array.make n false in
  let rec mark b =
    if not reachable.(b) then begin
      reachable.(b) <- true;
      List.iter mark (successors m b)
    end
  in
  mark m.mir_entry;
  let live_in = Array.make n Rset.empty in
  (* Registers with exactly one definition, and that definition a
     constant: only those are safely known for the Div/Mod-removal
     check. *)
  let def_count = Hashtbl.create 32 in
  iter_instrs m (fun _ i ->
      match def i.i_op with
      | Some d ->
          Hashtbl.replace def_count d
            (1 + Option.value (Hashtbl.find_opt def_count d) ~default:0)
      | None -> ());
  let const_env = Hashtbl.create 16 in
  iter_instrs m (fun _ i ->
      match i.i_op with
      | Const (d, c) when Hashtbl.find_opt def_count d = Some 1 ->
          Hashtbl.replace const_env d c
      | _ -> ());
  let const_of r = Hashtbl.find_opt const_env r in
  let transfer b live_out =
    let live = ref live_out in
    List.iter
      (fun (i : instr) ->
        let keep =
          (not (removable_if_dead i.i_op ~const_of))
          ||
          match def i.i_op with
          | Some d -> Rset.mem d !live
          | None -> true
        in
        if keep then begin
          (match def i.i_op with
          | Some d -> live := Rset.remove d !live
          | None -> ());
          List.iter (fun u -> live := Rset.add u !live) (uses i.i_op)
        end
        else
          match def i.i_op with
          | Some d -> live := Rset.remove d !live
          | None -> ())
      (List.rev b.b_instrs);
    !live
  in
  let changed = ref true in
  while !changed do
    changed := false;
    for b = n - 1 downto 0 do
      if reachable.(b) then begin
        let blk = block m b in
        let live_out =
          List.fold_left
            (fun acc s -> Rset.union acc live_in.(s))
            (Rset.of_list (term_uses blk.b_term))
            (successors m b)
        in
        let li = transfer blk live_out in
        if not (Rset.equal li live_in.(b)) then begin
          live_in.(b) <- li;
          changed := true
        end
      end
    done
  done;
  (* Sweep. *)
  let removed = ref 0 in
  iter_blocks m (fun blk ->
      if not reachable.(blk.b_label) then begin
        removed := !removed + List.length blk.b_instrs;
        blk.b_instrs <- [];
        blk.b_term <- Trap "unreachable"
      end
      else begin
        let live_out =
          List.fold_left
            (fun acc s -> Rset.union acc live_in.(s))
            (Rset.of_list (term_uses blk.b_term))
            (successors m blk.b_label)
        in
        let live = ref live_out in
        let kept =
          List.rev_map
            (fun (i : instr) ->
              let keep =
                (not (removable_if_dead i.i_op ~const_of))
                ||
                match def i.i_op with
                | Some d -> Rset.mem d !live
                | None -> true
              in
              if keep then begin
                (match def i.i_op with
                | Some d -> live := Rset.remove d !live
                | None -> ());
                List.iter (fun u -> live := Rset.add u !live) (uses i.i_op);
                Some i
              end
              else begin
                (match def i.i_op with
                | Some d -> live := Rset.remove d !live
                | None -> ());
                incr removed;
                None
              end)
            (List.rev blk.b_instrs)
          |> List.filter_map Fun.id
        in
        blk.b_instrs <- kept
      end);
  !removed

let optimize_mir (m : mir) : int =
  iter_blocks m (fun b -> propagate_block b);
  dce m

let optimize (p : program) : int =
  let n = ref 0 in
  iter_mirs p (fun m -> n := !n + optimize_mir m);
  !n
