module Ast = Drd_lang.Ast
module Tast = Drd_lang.Tast
(* Human-readable IR dumps, used by tests, the CLI's [--dump-ir] mode
   and the Figure 3 (loop peeling) bench output. *)

open Ir

let pp_const ppf = function
  | Cint n -> Fmt.int ppf n
  | Cbool b -> Fmt.bool ppf b
  | Cnull -> Fmt.string ppf "null"

let pp_reg ppf r = Fmt.pf ppf "r%d" r

let pp_target ppf = function
  | Virtual (c, m) -> Fmt.pf ppf "virtual %s.%s" c m
  | Static (c, m) -> Fmt.pf ppf "static %s.%s" c m
  | Ctor c -> Fmt.pf ppf "ctor %s" c

let pp_binop ppf (op : Ast.binop) =
  Fmt.string ppf
    (match op with
    | Add -> "+"
    | Sub -> "-"
    | Mul -> "*"
    | Div -> "/"
    | Mod -> "%"
    | Lt -> "<"
    | Le -> "<="
    | Gt -> ">"
    | Ge -> ">="
    | Eq -> "=="
    | Ne -> "!="
    | And -> "&&"
    | Or -> "||")

let pp_op ppf = function
  | Const (d, c) -> Fmt.pf ppf "%a := %a" pp_reg d pp_const c
  | Move (d, s) -> Fmt.pf ppf "%a := %a" pp_reg d pp_reg s
  | Binop (op, d, l, r) ->
      Fmt.pf ppf "%a := %a %a %a" pp_reg d pp_reg l pp_binop op pp_reg r
  | Unop (Ast.Neg, d, s) -> Fmt.pf ppf "%a := -%a" pp_reg d pp_reg s
  | Unop (Ast.Not, d, s) -> Fmt.pf ppf "%a := !%a" pp_reg d pp_reg s
  | GetField (d, o, fm) ->
      Fmt.pf ppf "%a := %a.%s" pp_reg d pp_reg o fm.fm_name
  | PutField (o, fm, s) ->
      Fmt.pf ppf "%a.%s := %a" pp_reg o fm.fm_name pp_reg s
  | GetStatic (d, sm) ->
      Fmt.pf ppf "%a := %s.%s" pp_reg d sm.sm_class sm.sm_name
  | PutStatic (sm, s) ->
      Fmt.pf ppf "%s.%s := %a" sm.sm_class sm.sm_name pp_reg s
  | ALoad (d, a, i) -> Fmt.pf ppf "%a := %a[%a]" pp_reg d pp_reg a pp_reg i
  | AStore (a, i, s) -> Fmt.pf ppf "%a[%a] := %a" pp_reg a pp_reg i pp_reg s
  | NewObj (d, c) -> Fmt.pf ppf "%a := new %s" pp_reg d c
  | NewArr (d, ty, dims) ->
      Fmt.pf ppf "%a := new %a%a" pp_reg d Ast.pp_ty ty
        Fmt.(list (brackets pp_reg))
        dims
  | ArrLen (d, a) -> Fmt.pf ppf "%a := %a.length" pp_reg d pp_reg a
  | ClassObj (d, c) -> Fmt.pf ppf "%a := classobj %s" pp_reg d c
  | NullCheck r -> Fmt.pf ppf "nullcheck %a" pp_reg r
  | BoundsCheck (a, i) -> Fmt.pf ppf "boundscheck %a[%a]" pp_reg a pp_reg i
  | Call (Some d, t, args, _) ->
      Fmt.pf ppf "%a := call %a(%a)" pp_reg d pp_target t
        Fmt.(list ~sep:comma pp_reg)
        args
  | Call (None, t, args, _) ->
      Fmt.pf ppf "call %a(%a)" pp_target t Fmt.(list ~sep:comma pp_reg) args
  | MonitorEnter (r, id) -> Fmt.pf ppf "monitorenter %a @@%d" pp_reg r id
  | MonitorExit (r, id) -> Fmt.pf ppf "monitorexit %a @@%d" pp_reg r id
  | ThreadStart r -> Fmt.pf ppf "start %a" pp_reg r
  | ThreadJoin r -> Fmt.pf ppf "join %a" pp_reg r
  | Wait r -> Fmt.pf ppf "wait %a" pp_reg r
  | Notify (r, false) -> Fmt.pf ppf "notify %a" pp_reg r
  | Notify (r, true) -> Fmt.pf ppf "notifyAll %a" pp_reg r
  | Yield -> Fmt.string ppf "yield"
  | Print (tag, r) ->
      Fmt.pf ppf "print %S%a" tag Fmt.(option (any ", " ++ pp_reg)) r
  | Trace t -> (
      let k =
        match t.tr_kind with
        | Drd_core.Event.Read -> "R"
        | Drd_core.Event.Write -> "W"
      in
      match t.tr_target with
      | Tr_field (o, fm) ->
          Fmt.pf ppf "trace %s %a.%s [site %d]" k pp_reg o fm.fm_name t.tr_site
      | Tr_static sm ->
          Fmt.pf ppf "trace %s %s.%s [site %d]" k sm.sm_class sm.sm_name
            t.tr_site
      | Tr_array (a, i) ->
          Fmt.pf ppf "trace %s %a[%a] [site %d]" k pp_reg a pp_reg i t.tr_site)

let pp_term ppf = function
  | Goto l -> Fmt.pf ppf "goto B%d" l
  | If (c, t, f) -> Fmt.pf ppf "if %a then B%d else B%d" pp_reg c t f
  | Ret None -> Fmt.string ppf "return"
  | Ret (Some r) -> Fmt.pf ppf "return %a" pp_reg r
  | Trap msg -> Fmt.pf ppf "trap %S" msg

let pp_instr ppf i = Fmt.pf ppf "%4d: %a" i.i_id pp_op i.i_op

let pp_block ppf b =
  Fmt.pf ppf "@[<v2>B%d:@ %a%a@]" b.b_label
    Fmt.(list ~sep:cut pp_instr ++ any "@ ")
    b.b_instrs pp_term b.b_term

let pp_mir ppf m =
  Fmt.pf ppf "@[<v2>%s%s %s (%d params, %d regs):@ %a@]"
    (if m.mir_static then "static " else "")
    (if m.mir_sync then "synchronized" else "")
    (mir_key m) m.mir_nparams m.mir_nregs
    Fmt.(list ~sep:cut pp_block)
    (Array.to_list m.mir_blocks)

let pp_program ppf p =
  iter_mirs p (fun m -> Fmt.pf ppf "%a@.@." pp_mir m)
