(* MiniJava ports of the paper's benchmark programs (Table 1).  Each
   port reproduces the concurrency structure and the specific datarace
   bugs (or non-bugs) the paper reports for the original:

   - mtrt      3 threads; races on RayTrace.threadCount and
                ValidityCheckOutputStream.startOfLine; I/O statistics
                protected by a common lock plus join (the Section 8.3
                idiom that Eraser flags and we must not);
   - tsp       3 threads; a real race on TspSolver.MinTourLen (unlocked
                prune reads vs. locked updates) plus spurious races on
                pooled TourElement objects protected by higher-level
                queue synchronization;
   - sor2      3 threads; barrier-synchronized grid relaxation with
                hoisted row subscripts: the boundary-row races the paper
                reports (not truly unsynchronized), and the loop
                structure that makes dominators + peeling essential;
   - elevator  5 threads; fully synchronized discrete-event simulation:
                no races;
   - hedc      8 threads; a task-pool web-crawler kernel: races on the
                pool size field and on Task.thread_ (the null-assignment
                bug the paper highlights), MetaSearchRequest objects
                with mixed field disciplines that only FieldsMerged
                flags.

   Sizes are parameterized so the benches can sweep work while tests
   use small instances. *)

let figure2 ?(same_pq = false) () =
  Printf.sprintf
    {|
    class Data { int f; int g; }
    class T1 extends Thread {
      Data a; Data b; Object p;
      synchronized void foo() {
        a.f = 50;
        synchronized (p) { b.g = b.f; }
      }
      void run() { foo(); }
    }
    class T2 extends Thread {
      Data d; Object q;
      void bar() { synchronized (q) { d.f = 10; } }
      void run() { bar(); }
    }
    class Main {
      static void main() {
        Data x = new Data();
        x.f = 100;
        Object shared = new Object();
        T1 t1 = new T1(); t1.a = x; t1.b = x; t1.p = %s;
        T2 t2 = new T2(); t2.d = x; t2.q = %s;
        t1.start();
        t2.start();
        t1.join(); t2.join();
        print("f", x.f);
      }
    }
  |}
    (if same_pq then "shared" else "new Object()")
    (if same_pq then "shared" else "new Object()")

(* ------------------------------------------------------------------ *)

let mtrt ?(width = 24) ?(height = 24) ?(spheres = 6) () =
  Printf.sprintf
    {|
    // MultiThreaded Ray Tracer (modeled on SPECJVM98 mtrt).
    class Scene {
      int n;
      int[] cx; int[] cy; int[] cz; int[] r2;
      Scene(int n0) {
        n = n0;
        cx = new int[n]; cy = new int[n]; cz = new int[n]; r2 = new int[n];
        int seed = 987;
        for (int i = 0; i < n; i = i + 1) {
          seed = (seed * 1103515245 + 12345) %% 2147483647;
          cx[i] = seed %% 100;
          seed = (seed * 1103515245 + 12345) %% 2147483647;
          cy[i] = seed %% 100;
          seed = (seed * 1103515245 + 12345) %% 2147483647;
          cz[i] = 100 + seed %% 100;
          r2[i] = 400 + (i * 53) %% 600;
        }
      }
    }
    class RayTrace { static int threadCount; }
    class ValidityCheckOutputStream { static boolean startOfLine; }
    class Stats { int raysTraced; }
    class RenderThread extends Thread {
      // Thread-specific copies of the scene (the scratch state escape
      // analysis is meant to prove single-threaded).
      int n;
      int[] cx; int[] cy; int[] cz; int[] r2;
      int[][] fb; Stats stats; Object statsLock;
      int fromRow; int toRow; int width;
      int[] gamma;        // installed by main AFTER construction
      RenderThread(Scene s, Stats st, Object l, int[][] fb0,
                   int from, int to, int w) {
        n = s.n;
        cx = new int[n]; cy = new int[n]; cz = new int[n]; r2 = new int[n];
        for (int i = 0; i < n; i = i + 1) {
          cx[i] = s.cx[i]; cy[i] = s.cy[i]; cz[i] = s.cz[i]; r2[i] = s.r2[i];
        }
        stats = st; statsLock = l; fb = fb0;
        fromRow = from; toRow = to; width = w;
      }
      int trace(int ox, int oy, int dx, int dy) {
        int best = 1000000000;
        int hit = 0 - 1;
        for (int i = 0; i < n; i = i + 1) {
          int lx = cx[i] - ox - dx;
          int ly = cy[i] - oy - dy;
          int d2 = lx * lx + ly * ly;
          if (d2 < r2[i] * 4) {
            int depth = cz[i] * 16 + d2;
            if (depth < best) { best = depth; hit = i; }
          }
        }
        if (hit < 0) { return 0; }
        return gamma[(hit * 37 + best) %% 255];
      }
      void run() {
        RayTrace.threadCount = RayTrace.threadCount + 1;   // datarace
        int rays = 0;
        for (int y = fromRow; y < toRow; y = y + 1) {
          int[] row = fb[y];
          ValidityCheckOutputStream.startOfLine = true;    // datarace
          for (int x = 0; x < width; x = x + 1) {
            row[x] = trace(x * 4, y * 4, x - width / 2, y - 16);
            rays = rays + 1;
          }
          ValidityCheckOutputStream.startOfLine = false;   // datarace
        }
        synchronized (statsLock) {
          stats.raysTraced = stats.raysTraced + rays;      // common lock
        }
        RayTrace.threadCount = RayTrace.threadCount - 1;   // datarace
      }
    }
    class Main {
      static void main() {
        int width = %d;
        int height = %d;
        Scene s = new Scene(%d);
        int[][] fb = new int[height][width];
        Stats st = new Stats();
        Object lock = new Object();
        RenderThread t1 = new RenderThread(s, st, lock, fb, 0, height / 2, width);
        RenderThread t2 = new RenderThread(s, st, lock, fb, height / 2, height, width);
        // Display gamma tables are installed after construction — an
        // initialize-then-hand-off that only the ownership model (not
        // the thread-specific analysis) proves race-free.
        t1.gamma = new int[256];
        t2.gamma = new int[256];
        for (int g = 0; g < 256; g = g + 1) {
          t1.gamma[g] = (g * 219) / 255 + 16;
          t2.gamma[g] = (g * 219) / 255 + 16;
        }
        t1.start();
        t2.start();
        t1.join();
        t2.join();
        // The post-join read of the common-lock statistics: our join
        // pseudo-locks keep this quiet; Eraser reports it.
        print("rays", st.raysTraced);
        int checksum = 0;
        for (int y = 0; y < height; y = y + 1) {
          for (int x = 0; x < width; x = x + 1) {
            checksum = (checksum + fb[y][x]) %% 65536;
          }
        }
        print("checksum", checksum);
      }
    }
  |}
    width height spheres

(* ------------------------------------------------------------------ *)

let tsp ?(cities = 7) ?(bfs_depth = 3) () =
  Printf.sprintf
    {|
    // Traveling Salesman branch-and-bound (modeled on the ETH tsp).
    //
    // Partial tours below a cutoff depth are expanded breadth-first
    // through a shared queue; deeper tours are solved by recursion.
    // TourElements are recycled through a free list, so over time the
    // same element is mutated (without locks, but protected by the
    // queue protocol) by different threads — the spurious TourElement
    // reports of Table 3.  The real bug is TspSolver.MinTourLen: the
    // pruning read takes no lock while updates hold minLock.
    class TourElement {
      int[] path; boolean[] visited;
      int len; int cost;
      TourElement(int ncities) {
        path = new int[ncities];
        visited = new boolean[ncities];
      }
    }
    class TourQueue {
      TourElement[] slots; int size;
      TourQueue(int cap) { slots = new TourElement[cap]; }
      synchronized void put(TourElement t) {
        slots[size] = t;
        size = size + 1;
      }
      synchronized TourElement take() {
        if (size == 0) { return null; }
        size = size - 1;
        return slots[size];
      }
    }
    class Progress {
      int created; int finished;
      synchronized void created1() { created = created + 1; }
      synchronized void finished1() { finished = finished + 1; }
      synchronized boolean allDone() { return created == finished; }
    }
    class Tsp {
      static int MinTourLen;       // DATARACE: unlocked prune reads
      static Object minLock;
      static int ncities;
      static int cutoff;
      static int[][] dist;
      static TourQueue queue;
      static TourQueue free;
      static Progress progress;
      static TourElement alloc() {
        TourElement t = free.take();
        if (t == null) { return new TourElement(ncities); }
        return t;
      }
    }
    class TspSolver extends Thread {
      int solved;
      void run() {
        while (true) {
          TourElement t = Tsp.queue.take();
          if (t == null) {
            if (Tsp.progress.allDone()) { break; }
            Thread.yield();
          } else {
            if (t.len < Tsp.cutoff) { expand(t); }
            else { solve(t, t.len, t.cost); }
            Tsp.progress.finished1();
            Tsp.free.put(t);       // recycle across threads
            solved = solved + 1;
          }
        }
      }
      // Breadth-first expansion: one level, children re-enqueued.
      void expand(TourElement t) {
        int last = t.path[t.len - 1];
        for (int c = 0; c < Tsp.ncities; c = c + 1) {
          if (!t.visited[c]) {
            TourElement child = Tsp.alloc();
            for (int i = 0; i < t.len; i = i + 1) {
              child.path[i] = t.path[i];
            }
            for (int i = 0; i < Tsp.ncities; i = i + 1) {
              child.visited[i] = t.visited[i];
            }
            child.path[t.len] = c;
            child.visited[c] = true;
            child.len = t.len + 1;
            child.cost = t.cost + Tsp.dist[last][c];
            Tsp.progress.created1();
            Tsp.queue.put(child);
          }
        }
      }
      // Depth-first branch and bound.
      void solve(TourElement t, int len, int cost) {
        if (cost >= Tsp.MinTourLen) { return; }      // DATARACE (read)
        if (len == Tsp.ncities) {
          int total = cost + Tsp.dist[t.path[len - 1]][t.path[0]];
          synchronized (Tsp.minLock) {
            if (total < Tsp.MinTourLen) {
              Tsp.MinTourLen = total;                // locked write
            }
          }
          return;
        }
        int last = t.path[len - 1];
        for (int c = 0; c < Tsp.ncities; c = c + 1) {
          if (!t.visited[c]) {
            t.visited[c] = true;
            t.path[len] = c;
            solve(t, len + 1, cost + Tsp.dist[last][c]);
            t.visited[c] = false;
          }
        }
      }
    }
    class Main {
      static void main() {
        int n = %d;
        Tsp.ncities = n;
        Tsp.cutoff = %d;
        Tsp.minLock = new Object();
        Tsp.MinTourLen = 1000000000;
        Tsp.progress = new Progress();
        Tsp.dist = new int[n][n];
        int seed = 4321;
        for (int i = 0; i < n; i = i + 1) {
          for (int j = 0; j < n; j = j + 1) {
            seed = (seed * 1103515245 + 12345) %% 2147483647;
            if (i == j) { Tsp.dist[i][j] = 0; }
            else { Tsp.dist[i][j] = 10 + seed %% 90; }
          }
        }
        Tsp.queue = new TourQueue(n * n + 8);
        Tsp.free = new TourQueue(n * n + 8);
        TourElement t0 = new TourElement(n);
        t0.path[0] = 0;
        t0.visited[0] = true;
        t0.len = 1;
        Tsp.progress.created1();
        Tsp.queue.put(t0);
        TspSolver s1 = new TspSolver();
        TspSolver s2 = new TspSolver();
        s1.start(); s2.start();
        s1.join(); s2.join();
        print("min", Tsp.MinTourLen);
        print("processed", s1.solved + s2.solved);
      }
    }
  |}
    cities bfs_depth

(* ------------------------------------------------------------------ *)

let sor2 ?(size = 24) ?(iterations = 12) () =
  Printf.sprintf
    {|
    // Successive over-relaxation with hoisted row subscripts (sor2) and
    // barrier synchronization (modeled on the ETH sor benchmark).
    class Barrier {
      int count; int gen; int parties;
      Barrier(int n) { parties = n; }
      synchronized int arrive() {
        count = count + 1;
        if (count == parties) {
          count = 0;
          gen = gen + 1;
          return gen;
        }
        return gen + 1;
      }
      synchronized int generation() { return gen; }
    }
    class SorWorker extends Thread {
      int[][] M; int from; int to; int iters; int width; Barrier bar;
      SorWorker(int[][] m, int f, int t, int it, int w, Barrier b) {
        M = m; from = f; to = t; iters = it; width = w; bar = b;
      }
      void run() {
        for (int it = 0; it < iters; it = it + 1) {
          for (int i = from; i < to; i = i + 1) {
            int[] up = M[i - 1];
            int[] row = M[i];
            int[] down = M[i + 1];
            for (int j = 1; j < width - 1; j = j + 1) {
              row[j] = (up[j] + down[j] + row[j - 1] + row[j + 1]
                        + row[j] * 2) / 6;
            }
          }
          int target = bar.arrive();
          while (bar.generation() < target) { Thread.yield(); }
        }
      }
    }
    class Main {
      static void main() {
        int n = %d;
        int iters = %d;
        int[][] M = new int[n][n];
        for (int i = 0; i < n; i = i + 1) {
          for (int j = 0; j < n; j = j + 1) {
            M[i][j] = (i * 31 + j * 17) %% 1000;
          }
        }
        Barrier b = new Barrier(2);
        int half = n / 2;
        SorWorker w1 = new SorWorker(M, 1, half, iters, n, b);
        SorWorker w2 = new SorWorker(M, half, n - 1, iters, n, b);
        w1.start(); w2.start();
        w1.join(); w2.join();
        int checksum = 0;
        for (int i = 0; i < n; i = i + 1) {
          for (int j = 0; j < n; j = j + 1) {
            checksum = (checksum + M[i][j]) %% 65536;
          }
        }
        print("checksum", checksum);
      }
    }
  |}
    size iterations

(* The ORIGINAL sor, before the paper's manual hoisting of loop-
   invariant subscript expressions (Section 8.1: "We derived sor2 from
   the original sor benchmark by manually hoisting loop invariant array
   subscript expressions out of inner loops ... it has significant
   impact on the effectiveness of our optimizations").  Here the row
   references M[i-1], M[i], M[i+1] are re-loaded on every inner
   iteration, so their value numbers are fresh each time and the static
   weaker-than relation cannot match the peeled copy's traces against
   the loop body's. *)
let sor ?(size = 24) ?(iterations = 12) () =
  Printf.sprintf
    {|
    class Barrier {
      int count; int gen; int parties;
      Barrier(int n) { parties = n; }
      synchronized int arrive() {
        count = count + 1;
        if (count == parties) {
          count = 0;
          gen = gen + 1;
          return gen;
        }
        return gen + 1;
      }
      synchronized int generation() { return gen; }
    }
    class SorWorker extends Thread {
      int[][] M; int from; int to; int iters; int width; Barrier bar;
      SorWorker(int[][] m, int f, int t, int it, int w, Barrier b) {
        M = m; from = f; to = t; iters = it; width = w; bar = b;
      }
      void run() {
        for (int it = 0; it < iters; it = it + 1) {
          for (int i = from; i < to; i = i + 1) {
            for (int j = 1; j < width - 1; j = j + 1) {
              // subscripts recomputed every iteration: no hoisting
              M[i][j] = (M[i - 1][j] + M[i + 1][j] + M[i][j - 1]
                         + M[i][j + 1] + M[i][j] * 2) / 6;
            }
          }
          int target = bar.arrive();
          while (bar.generation() < target) { Thread.yield(); }
        }
      }
    }
    class Main {
      static void main() {
        int n = %d;
        int iters = %d;
        int[][] M = new int[n][n];
        for (int i = 0; i < n; i = i + 1) {
          for (int j = 0; j < n; j = j + 1) {
            M[i][j] = (i * 31 + j * 17) %% 1000;
          }
        }
        Barrier b = new Barrier(2);
        int half = n / 2;
        SorWorker w1 = new SorWorker(M, 1, half, iters, n, b);
        SorWorker w2 = new SorWorker(M, half, n - 1, iters, n, b);
        w1.start(); w2.start();
        w1.join(); w2.join();
        int checksum = 0;
        for (int i = 0; i < n; i = i + 1) {
          for (int j = 0; j < n; j = j + 1) {
            checksum = (checksum + M[i][j]) %% 65536;
          }
        }
        print("checksum", checksum);
      }
    }
  |}
    size iterations

(* ------------------------------------------------------------------ *)

let elevator ?(floors = 8) ?(events = 12) () =
  Printf.sprintf
    {|
    // A discrete-event elevator simulator (modeled on the eth/Praun
    // "elevator"): fully synchronized shared state, hence no races.
    class Controls {
      boolean[] callUp; boolean[] callDown;
      int pending; boolean finished;
      Controls(int floors) {
        callUp = new boolean[floors];
        callDown = new boolean[floors];
      }
      synchronized void call(int floor, boolean up) {
        if (up) {
          if (!callUp[floor]) { callUp[floor] = true; pending = pending + 1; }
        } else {
          if (!callDown[floor]) { callDown[floor] = true; pending = pending + 1; }
        }
      }
      synchronized int claim(int near) {
        // Claim the closest outstanding call; -1 if none.
        int bestFloor = 0 - 1;
        int bestDist = 1000000;
        for (int f = 0; f < callUp.length; f = f + 1) {
          if (callUp[f] || callDown[f]) {
            int d = f - near;
            if (d < 0) { d = 0 - d; }
            if (d < bestDist) { bestDist = d; bestFloor = f; }
          }
        }
        if (bestFloor >= 0) {
          callUp[bestFloor] = false;
          callDown[bestFloor] = false;
          pending = pending - 1;
        }
        return bestFloor;
      }
      synchronized void shutDown() { finished = true; }
      synchronized boolean done() { return finished && pending == 0; }
    }
    class Lift extends Thread {
      Controls controls; int floor; int served;
      int home; int[] schedule;   // configured by main AFTER construction
      Lift(Controls c) { controls = c; }
      void run() {
        floor = home;             // reads the post-construction hand-off
        int warm = 0;
        for (int i = 0; i < schedule.length; i = i + 1) {
          warm = warm + schedule[i];
        }
        served = served + warm - warm;
        while (true) {
          int target = controls.claim(floor);
          if (target < 0) {
            if (controls.done()) { break; }
            Thread.yield();
          } else {
            // travel one floor per step
            while (floor != target) {
              if (floor < target) { floor = floor + 1; }
              else { floor = floor - 1; }
              Thread.yield();
            }
            served = served + 1;
          }
        }
      }
    }
    class Main {
      static void main() {
        int floors = %d;
        Controls c = new Controls(floors);
        Lift l1 = new Lift(c);
        Lift l2 = new Lift(c);
        Lift l3 = new Lift(c);
        Lift l4 = new Lift(c);
        // Post-construction configuration: initialized by main, read by
        // the lift threads after start() — the initialize-then-hand-off
        // idiom that only the ownership model keeps quiet.
        l1.home = 0;            l1.schedule = new int[4];
        l2.home = floors / 3;   l2.schedule = new int[4];
        l3.home = floors / 2;   l3.schedule = new int[4];
        l4.home = floors - 1;   l4.schedule = new int[4];
        l1.schedule[0] = 1; l2.schedule[0] = 2; l3.schedule[0] = 3; l4.schedule[0] = 4;
        l1.start(); l2.start(); l3.start(); l4.start();
        int seed = 777;
        for (int e = 0; e < %d; e = e + 1) {
          seed = (seed * 1103515245 + 12345) %% 2147483647;
          int f = seed %% floors;
          c.call(f, seed %% 2 == 0);
          Thread.yield();
        }
        c.shutDown();
        l1.join(); l2.join(); l3.join(); l4.join();
        print("served", l1.served + l2.served + l3.served + l4.served);
      }
    }
  |}
    floors events

(* ------------------------------------------------------------------ *)

let hedc ?(tasks = 12) ?(work = 150) () =
  Printf.sprintf
    {|
    // A web-crawler task-pool kernel (modeled on the ETH hedc + Doug
    // Lea's concurrency library usage).
    class MetaSearchRequest {
      int query;          // immutable after construction, read unlocked
      int results;        // mutated only under the request's own lock
      MetaSearchRequest(int q) { query = q; }
    }
    class Task {
      Worker thread_;     // DATARACE: unlocked hand-shake with cancel()
      MetaSearchRequest req;
      int state;          // 0 new, 1 running, 2 done (under pool lock)
      Task(MetaSearchRequest r) { req = r; }
      void compute(int work) {
        int acc = 0;
        for (int i = 0; i < work; i = i + 1) {
          acc = (acc + req.query * i) %% 9973;   // unlocked immutable reads
        }
        synchronized (req) { req.results = req.results + acc; }
      }
      void cancel() {
        Worker w = thread_;                      // DATARACE (read)
        if (w != null) { w.interrupts = w.interrupts + 1; }
      }
    }
    // Doug Lea-style linked queue.  [item] is immutable once linked and
    // is read OUTSIDE the lock by consumers, while [next] is mutated
    // under the lock by later producers: per-field this is race-free,
    // but FieldsMerged granularity flags the node objects (Section 8.3).
    class Node {
      Task item; Node next;
      Node(Task t) { item = t; }
    }
    class LinkedQueue {
      Node head; Node tail; // head is a dummy node
      LinkedQueue() { head = new Node(null); tail = head; }
      synchronized void put(Task t) {
        Node n = new Node(t);
        tail.next = n;
        tail = n;
      }
      synchronized Node pollNode() {
        Node first = head.next;
        if (first == null) { return null; }
        head = first;
        return first;
      }
    }
    class Pool {
      int size;           // DATARACE: read and written without the lock
      LinkedQueue hi; LinkedQueue lo;   // two priority lanes
      boolean closed;
      Pool() { hi = new LinkedQueue(); lo = new LinkedQueue(); }
      void submit(Task t, boolean urgent) {
        size = size + 1;              // unlocked
        if (urgent) { hi.put(t); } else { lo.put(t); }
      }
      Node poll() {
        Node n = hi.pollNode();
        if (n == null) { return lo.pollNode(); }
        return n;
      }
      synchronized void close() { closed = true; }
      synchronized boolean isClosed() { return closed; }
    }
    class Worker extends Thread {
      Pool pool; int interrupts; int done; int work;
      Worker(Pool p, int w) { pool = p; work = w; }
      void run() {
        while (true) {
          Node n = pool.poll();
          if (n == null) {
            if (pool.isClosed()) { break; }
            Thread.yield();
          } else {
            Task t = n.item;         // unlocked read of the immutable field
            t.thread_ = this;        // DATARACE (write)
            t.state = 1;
            t.compute(work);
            t.state = 2;
            t.thread_ = null;        // DATARACE (the null-assignment bug)
            pool.size = pool.size - 1;   // unlocked
            done = done + 1;
          }
        }
      }
    }
    class Requester extends Thread {
      Pool pool; int base; int ntasks; int work; Task lastTask;
      Requester(Pool p, int b, int n, int w) {
        pool = p; base = b; ntasks = n; work = w;
      }
      void run() {
        Task[] mine = new Task[ntasks];
        for (int i = 0; i < ntasks; i = i + 1) {
          MetaSearchRequest r = new MetaSearchRequest(base + i);
          Task t = new Task(r);
          pool.submit(t, i %% 2 == 0);
          mine[i] = t;
          lastTask = t;
          Thread.yield();
          Thread.yield();
          // Cancel a task submitted two rounds ago: a worker is likely
          // mid-flight on it — the Task.thread_ hand-shake race.
          if (i >= 2) { mine[i - 2].cancel(); }
          Thread.yield();
        }
        if (lastTask != null) { lastTask.cancel(); }
      }
    }
    class Main {
      static void main() {
        int perRequester = %d / 3;
        int work = %d;
        Pool pool = new Pool();
        Worker w1 = new Worker(pool, work);
        Worker w2 = new Worker(pool, work);
        Worker w3 = new Worker(pool, work);
        Worker w4 = new Worker(pool, work);
        w1.start(); w2.start(); w3.start(); w4.start();
        Requester r1 = new Requester(pool, 100, perRequester, work);
        Requester r2 = new Requester(pool, 200, perRequester, work);
        Requester r3 = new Requester(pool, 300, perRequester, work);
        r1.start(); r2.start(); r3.start();
        r1.join(); r2.join(); r3.join();
        pool.close();
        w1.join(); w2.join(); w3.join(); w4.join();
        print("done", w1.done + w2.done + w3.done + w4.done);
        print("size", pool.size);
      }
    }
  |}
    tasks work

(* ------------------------------------------------------------------ *)
(* needle: a schedule needle-in-a-haystack built for the exploration
   engine.  A writer publishes a flag without synchronization and then
   hammers a shared array; a reader polls the flag for a short window
   and, only if it wins the race, hammers the same array.  Under the
   default deterministic schedule the reader's window expires during
   the writer's warmup, the array stays single-owner, and nothing is
   reported.  Only a preemption inside the writer's burst (the kind a
   PCT change point manufactures) lets the bursts interleave after the
   array becomes shared.  The array subscripts are recomputed every
   iteration on purpose: like the original sor (Section 8.1), fresh
   value numbers defeat the static weaker-than elimination, so the
   in-burst accesses keep their traces and the detector can see the
   interleaving. *)

let needle ?(warmup = 600) ?(burst = 300) () =
  Printf.sprintf
    {|
    class G {
      static int flag;
      static int[] data;
    }
    class Writer extends Thread {
      void run() {
        int sum = 0;
        for (int i = 0; i < %d; i = i + 1) {
          sum = sum + i;
        }
        if (sum > 0) {
          G.flag = 1;           // unsynchronized publish
        }
        for (int j = 0; j < %d; j = j + 1) {
          G.data[j %% 8] = G.data[j %% 8] + 1;   // DATARACE (if reader saw flag)
        }
      }
    }
    class Reader extends Thread {
      void run() {
        int seen = 0;
        for (int i = 0; i < 30; i = i + 1) {
          if (G.flag == 1) {
            seen = 1;
          }
        }
        if (seen == 1) {
          for (int k = 0; k < %d; k = k + 1) {
            G.data[k %% 8] = G.data[k %% 8] + 3;
          }
        }
      }
    }
    class Main {
      static void main() {
        G.data = new int[8];
        Writer w = new Writer();
        Reader r = new Reader();
        w.start();
        r.start();
        w.join();
        r.join();
        print("d0", G.data[0]);
      }
    }
  |}
    warmup burst burst

(* ------------------------------------------------------------------ *)

type benchmark = {
  b_name : string;
  b_description : string;
  b_source : string; (* default size, used by tests and Table 3 *)
  b_perf_source : string; (* larger size, used by Table 2 timing *)
  b_cpu_bound : bool; (* paper reports performance only for CPU-bound ones *)
}

let benchmarks =
  [
    {
      b_name = "mtrt";
      b_description = "MultiThreaded Ray Tracer (from SPECJVM98)";
      b_source = mtrt ();
      b_perf_source = mtrt ~width:96 ~height:96 ~spheres:16 ();
      b_cpu_bound = true;
    };
    {
      b_name = "tsp";
      b_description = "Traveling Salesman Problem solver (from ETH)";
      b_source = tsp ();
      b_perf_source = tsp ~cities:9 ();
      b_cpu_bound = true;
    };
    {
      b_name = "sor2";
      b_description = "Modified Successive Over-Relaxation (from ETH)";
      b_source = sor2 ();
      b_perf_source = sor2 ~size:96 ~iterations:30 ();
      b_cpu_bound = true;
    };
    {
      b_name = "elevator";
      b_description = "Real-time discrete event elevator simulator";
      b_source = elevator ();
      b_perf_source = elevator ~floors:8 ~events:24 ();
      b_cpu_bound = false;
    };
    {
      b_name = "hedc";
      b_description = "Web-crawler task-pool kernel (from ETH)";
      b_source = hedc ();
      b_perf_source = hedc ~tasks:24 ~work:300 ();
      b_cpu_bound = false;
    };
    {
      b_name = "needle";
      b_description = "Schedule needle: flag hand-off race only exploration finds";
      b_source = needle ();
      b_perf_source = needle ~warmup:1200 ~burst:600 ();
      b_cpu_bound = false;
    };
  ]

let paper_benchmarks =
  List.filter (fun b -> b.b_name <> "needle") benchmarks

let find name = List.find_opt (fun b -> b.b_name = name) benchmarks

let loc_of_source src =
  String.split_on_char '\n' src
  |> List.filter (fun l ->
         let l = String.trim l in
         String.length l > 0 && not (String.length l >= 2 && String.sub l 0 2 = "//"))
  |> List.length
