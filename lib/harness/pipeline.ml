module Ir = Drd_ir.Ir
module Link = Drd_ir.Link
module Interp = Drd_vm.Interp
module Interp_ref = Drd_vm.Interp_ref
module Value = Drd_vm.Value
module Memloc = Drd_vm.Memloc
module Sink = Drd_vm.Sink
module Heap = Drd_vm.Heap
module Parser = Drd_lang.Parser
module Typecheck = Drd_lang.Typecheck
module Lower = Drd_ir.Lower
module Site_table = Drd_ir.Site_table
module Insert = Drd_instr.Insert
module Static_weaker = Drd_instr.Static_weaker
module Peel = Drd_instr.Peel
module Race_set = Drd_static.Race_set
module Specialize = Drd_static.Specialize
open Drd_core

type compiled = {
  prog : Ir.program;
  image : Link.image; (* the linked executable form the VM runs *)
  config : Config.t;
  traces_inserted : int;
  traces_eliminated : int;
  static_stats : Drd_static.Race_set.stats option;
  race_set : Drd_static.Race_set.t option;
  compile_time : float;
}

(* Which interpreter executes the program.  [`Spec] is the production
   engine: the flat image with link-time specialized trace ops taking
   their fast paths.  [`Linked] runs the same image with the fast paths
   disabled (specialized ops behave exactly like generic ones — the
   sink simply installs no [spec] handler).  [`Ref] is the frozen
   pre-link block interpreter, kept for the golden byte-identity suite
   and as the bench baseline. *)
type engine = [ `Linked | `Ref | `Spec ]

exception Compile_error of string

(* Frontend failures carry their own exception types with source
   positions; fold them into one exception with a rendered message so
   callers (the CLI, the campaign runner) can make compilation failure a
   distinct, fatal outcome without depending on Drd_lang.  Compilation
   is also the per-domain setup step of campaign pools: a [compiled] is
   freely reusable across runs but must stay on the domain that made it
   (instrumentation and linking mutate the IR in place, and runs share
   the image's site tables), so each pool worker compiles its own —
   and a source that fails to compile fails identically on every
   domain, which is why the runner compiles once up front, fails the
   whole campaign, and never starts the pool. *)
let compile (config : Config.t) ~source : compiled =
  let t0 = Unix.gettimeofday () in
  let frontend_error kind msg (pos : Drd_lang.Ast.pos) =
    raise
      (Compile_error
         (Printf.sprintf "%s error at line %d, col %d: %s" kind
            pos.Drd_lang.Ast.line pos.Drd_lang.Ast.col msg))
  in
  let ast =
    try Parser.parse_program source with
    | Parser.Error (msg, pos) -> frontend_error "parse" msg pos
    | Drd_lang.Lexer.Error (msg, pos) -> frontend_error "lex" msg pos
  in
  let tprog =
    try Typecheck.check ast
    with Typecheck.Error (msg, pos) -> frontend_error "type" msg pos
  in
  let tprog = if config.Config.loop_peel then Peel.peel_program tprog else tprog in
  let prog = Lower.lower_program tprog in
  let static_stats = ref None in
  let race_set = ref None in
  let instrumented = config.Config.detector <> Config.NoDetect in
  if instrumented then
    if config.Config.static_analysis then begin
      let rs = Race_set.compute prog in
      static_stats := Some (Race_set.stats rs);
      race_set := Some rs;
      Insert.instrument ~keep:(Race_set.may_race rs) prog
    end
    else Insert.instrument prog;
  let inserted = Insert.count_traces prog in
  let eliminated =
    if instrumented && config.Config.weaker_elim then
      Static_weaker.eliminate prog
    else 0
  in
  (* The rest of the compiler's optimizations run AFTER instrumentation
     (Section 6.2); traces are unknown-side-effect and survive. *)
  if config.Config.ir_optimize then ignore (Drd_ir.Optimize.optimize prog);
  (* Link once, after every pass that can touch the IR has run.  The
     trace specializer classifies the surviving trace sites from the
     static results; it only fires for the configuration whose dynamic
     pipeline its fast paths model exactly (our detector, per-field
     locations, ownership on — see Specialize for the soundness
     argument), so every other configuration links a purely generic
     image. *)
  let spec =
    if
      config.Config.static_analysis
      && config.Config.detector = Config.Ours
      && config.Config.granularity = Memloc.Per_field
      && config.Config.use_ownership
    then
      match !race_set with
      | Some rs -> Specialize.compute rs prog
      | None -> None
    else None
  in
  let image = Link.link ?spec prog in
  {
    prog;
    image;
    config;
    traces_inserted = inserted;
    traces_eliminated = eliminated;
    static_stats = !static_stats;
    race_set = !race_set;
    compile_time = Unix.gettimeofday () -. t0;
  }

type result = {
  races : string list;
  racy_objects : string list;
  report : Report.collector option;
  detector_stats : Detector.stats option;
  events : int;
  prints : (string * Value.t option) list;
  steps : int;
  threads : int;
  wall_time : float;
  trie_nodes : int;
  locations_tracked : int;
  heap : Heap.t; (* final heap, for decoding identities in reports *)
  deadlocks : Lock_order.report list;
      (* potential deadlocks from the lock-order graph (Section 10
         future work); tracked alongside our detector *)
  immutability : Immutability.summary option;
      (* dynamic immutability classification (Section 10 future work) *)
  spec_events : int;
      (* events that arrived through specialized trace ops (0 unless the
         [`Spec] engine ran an image with specialized sites) *)
  site_stats : (int array * int array) option;
      (* per-site (events, fast-path drops), only under [~site_stats] *)
}

(* Group a location id to the identity Table 3 counts: the object (for
   instance fields and arrays) or the static field itself. *)
let object_of_loc (prog : Ir.program) heap loc =
  if loc land 1 = 1 then Memloc.describe prog.Ir.p_tprog heap loc
  else Heap.describe heap (loc lsr 11)

(* The VM configuration a harness Config.t denotes; [?vm] on {!run}
   lets the exploration engine override it per run. *)
let vm_config_of (config : Config.t) =
  {
    Interp.default_config with
    seed = config.Config.seed;
    quantum = config.Config.quantum;
    granularity = config.Config.granularity;
    pseudo_locks = config.Config.pseudo_locks;
    policy = config.Config.policy;
  }

(* The event sink that drives any Detector_intf.S module: every VM
   callback routed to the matching hook (unused hooks are no-ops by the
   interface contract), virtual-call receiver events only when the
   detector asks for them.  [wrap_access] lets the caller interpose on
   the access path (event counting, site stats). *)
let sink_of_module (type a) (module D : Detector_intf.S with type t = a)
    (d : a) ~wrap_access =
  {
    Sink.access =
      wrap_access (fun ~tid ~loc ~kind ~locks ~site ->
          D.on_access_interned d ~loc ~thread:tid ~locks ~kind ~site);
    acquire = (fun ~tid ~lock -> D.on_acquire d ~thread:tid ~lock);
    release = (fun ~tid ~lock -> D.on_release d ~thread:tid ~lock);
    thread_start = (fun ~parent ~child -> D.on_thread_start d ~parent ~child);
    thread_join = (fun ~joiner ~joinee -> D.on_thread_join d ~joiner ~joinee);
    thread_exit = (fun ~tid -> D.on_thread_exit d ~thread:tid);
    call =
      (if D.needs_call_events then
         Some
           (fun ~tid ~obj ~locks ~site ->
             D.on_call d ~thread:tid
               ~obj_loc:(Memloc.whole_object ~obj)
               ~locks ~site)
       else None);
    spec = None;
  }

(* Pooled state for the [`Spec] engine's fast paths: the memo tables the
   spec handler in {!run} closes over.  8k slots per table (see the
   sizing note there); pooled so a campaign refills them instead of
   reallocating ~135k words per run. *)
let memo_bits = 13

type spec_state = {
  ss_memo : int array; (* Sfixed reached-event memo *)
  ss_shared : int array; (* managed-cell cache mirror *)
  ss_ro_seen : bool array; (* per-cell first-sighting flags *)
  ss_own_map : (int, int) Hashtbl.t; (* managed location -> owner / -2 *)
}

let make_spec_state sp =
  {
    ss_memo = Array.make (1 lsl memo_bits) (-1);
    ss_shared = Array.make (1 lsl memo_bits) (-1);
    ss_ro_seen = Array.make sp.Link.sp_ncells false;
    ss_own_map = Hashtbl.create 1024;
  }

let reset_spec_state ss =
  Array.fill ss.ss_memo 0 (Array.length ss.ss_memo) (-1);
  Array.fill ss.ss_shared 0 (Array.length ss.ss_shared) (-1);
  Array.fill ss.ss_ro_seen 0 (Array.length ss.ss_ro_seen) false;
  Hashtbl.clear ss.ss_own_map

(* A detector-module instance packed with its module, so pooled
   baseline detectors can be stored untyped and reset between runs. *)
type pooled_detector =
  | Pooled :
      (module Detector_intf.S with type t = 'a) * 'a
      -> pooled_detector

let pool_detector (module D : Detector_intf.S) = Pooled ((module D), D.create ())

(* A pooled, resettable run context: everything {!run} would otherwise
   allocate per run — VM state, detector, collector, side analyses,
   spec-handler memo tables — created once per (worker, compiled) pair
   and reset at the start of every run that uses it.  Reports from a
   reused context are byte-identical to fresh-context runs; the tests,
   the CI diff step and the explore bench all assert this. *)
module Run_ctx = struct
  type t = {
    rc_compiled : compiled;
    rc_vm : Interp.ctx;
    rc_collector : Report.collector;
    rc_lock_order : Lock_order.t;
    rc_immut : Immutability.t;
    rc_det : Detector.t option; (* Config.Ours only *)
    rc_baseline : pooled_detector option; (* baseline configs only *)
    rc_spec : spec_state option; (* images with specialized cells only *)
  }

  let create (c : compiled) : t =
    let collector = Report.collector () in
    let det, baseline =
      match c.config.Config.detector with
      | Config.Ours ->
          ( Some
              (Detector.create
                 ~config:
                   {
                     Detector.default_config with
                     Detector.use_cache = c.config.Config.use_cache;
                     use_ownership = c.config.Config.use_ownership;
                   }
                 collector),
            None )
      | (Config.Eraser | Config.ObjRace | Config.HappensBefore) as dv ->
          let entry =
            match Registry.of_detector dv with
            | Some e -> e
            | None -> assert false
          in
          (None, Some (pool_detector entry.Registry.impl))
      | Config.NoDetect -> (None, None)
    in
    {
      rc_compiled = c;
      rc_vm = Interp.create_ctx c.image;
      rc_collector = collector;
      rc_lock_order = Lock_order.create ();
      rc_immut = Immutability.create ();
      rc_det = det;
      rc_baseline = baseline;
      rc_spec =
        (match (c.config.Config.detector, c.image.Link.i_spec) with
        | Config.Ours, Some sp -> Some (make_spec_state sp)
        | _ -> None);
    }

  let compiled t = t.rc_compiled
end

let run ?ctx ?vm ?tap ?(detect = true) ?(engine = (`Spec : engine))
    ?(site_stats = false) (c : compiled) : result =
  (match ctx with
  | Some x when x.Run_ctx.rc_compiled != c ->
      invalid_arg
        "Pipeline.run: run context belongs to a different compiled program"
  | _ -> ());
  let config = c.config in
  let events = ref 0 in
  let spec_events = ref 0 in
  let nsites = Site_table.count c.prog.Ir.p_sites in
  let site_ev = if site_stats then Some (Array.make nsites 0) else None in
  let site_fast = if site_stats then Some (Array.make nsites 0) else None in
  let bump arr site =
    match arr with
    | Some a when site >= 0 && site < Array.length a -> a.(site) <- a.(site) + 1
    | _ -> ()
  in
  let count f = fun ~tid ~loc ~kind ~locks ~site ->
    incr events;
    bump site_ev site;
    f ~tid ~loc ~kind ~locks ~site
  in
  (* Pooled pieces come from the context, reset at the start of the
     run; without a context they are created per run as before.  Only
     the state this run will actually write is reset — a [detect:false]
     (fingerprint-only) pass on a shared context must not pay for, or
     disturb, the detector state a detecting run left behind. *)
  let collector, lock_order, immut =
    match ctx with
    | Some x ->
        if detect && config.Config.detector = Config.Ours then begin
          Report.reset x.Run_ctx.rc_collector;
          Lock_order.reset x.Run_ctx.rc_lock_order;
          Immutability.reset x.Run_ctx.rc_immut
        end;
        (x.Run_ctx.rc_collector, x.Run_ctx.rc_lock_order, x.Run_ctx.rc_immut)
    | None -> (Report.collector (), Lock_order.create (), Immutability.create ())
  in
  let finishers = ref [] in
  let sink =
    (* [detect = false] runs the same instrumented program (so the
       schedule is identical — NoDetect compiles without traces and
       would perturb it) but drops the detector work; only the event
       counter remains.  The exploration engine uses this for
       fingerprint-only passes. *)
    if not detect then
      { Sink.null with Sink.access = count (fun ~tid:_ ~loc:_ ~kind:_ ~locks:_ ~site:_ -> ()) }
    else
    match config.Config.detector with
    | Config.NoDetect -> Sink.null
    | Config.Ours ->
        let det =
          match ctx with
          | Some { Run_ctx.rc_det = Some det; _ } ->
              Detector.reset det;
              det
          | _ ->
              Detector.create
                ~config:
                  {
                    Detector.default_config with
                    Detector.use_cache = config.Config.use_cache;
                    use_ownership = config.Config.use_ownership;
                  }
                collector
        in
        finishers :=
          [ (fun () -> `Ours (Detector.stats det)) ];
        (* The specialized fast paths.  Installed only under the [`Spec]
           engine when the link phase assigned cells; every path either
           performs exactly the generic per-event work or drops an event
           the soundness argument (Specialize, DESIGN §8) proves the
           detector would not have turned into a new report.  Contract
           outputs (races, deadlocks, event counts, logs, fingerprints)
           are byte-identical to the generic engines; only
           detector-internal statistics (events_in, filter counters,
           trie sizes) and the immutability summary may differ. *)
        let spec_handler =
          match (engine, c.image.Link.i_spec) with
          | `Spec, Some sp ->
              let classes = sp.Link.sp_cell_class in
              let is_managed = sp.Link.sp_cell_managed in
              (* Memo of packed (loc, kind, locks, tid) keys of events
                 that reached trie storage: a direct-mapped cache shared
                 by every Sfixed cell (a site iterating over many
                 objects needs one slot per object, not one per site).
                 Dropping on an exact key match is sound no matter which
                 cell inserted the key — the theorem is per event, not
                 per site — and a collision merely falls back to the
                 exact generic path. *)
              (* 8k slots per table ([memo_bits]): comfortably above the
                 distinct-key count of a run's hot sites, small enough
                 that the per-run refill cost stays negligible for short
                 exploration replays. *)
              let ss =
                match ctx with
                | Some { Run_ctx.rc_spec = Some ss; _ } ->
                    reset_spec_state ss;
                    ss
                | _ -> make_spec_state sp
              in
              let memo = ss.ss_memo in
              let memo_idx key =
                (key * 0x9E3779B1) lsr 11 land ((1 lsl memo_bits) - 1)
              in
              let pack ~tid ~loc ~kind ~locks =
                if locks < 1 lsl 20 && tid < 1 lsl 10 then
                  (loc lsl 31)
                  lor ((match kind with Event.Write -> 1 | Event.Read -> 0)
                      lsl 30)
                  lor (locks lsl 10) lor tid
                else -1
              in
              (* Sro: whether the cell's first event was forwarded. *)
              let ro_seen = ss.ss_ro_seen in
              (* The shared location-owner map of the managed cells:
                 owner thread id, or -2 once the location saw a second
                 thread (demoted: owner shortcut off for good).  Every
                 traced site that can touch a mapped location is itself
                 a managed cell (Specialize's component closure), so
                 the map always witnesses the demoting event. *)
              let own_map = ss.ss_own_map in
              let generic_event ~tid ~loc ~kind ~locks ~site =
                Immutability.record immut ~thread:tid ~loc ~kind;
                Detector.on_access_interned det ~loc ~thread:tid ~locks ~kind
                  ~site
              in
              (* Forward to the detector; memoize the key iff the event
                 reached trie storage (trie nodes are never evicted, so
                 a reached key stays droppable forever).  An unpackable
                 key just stays on the exact generic path. *)
              let forward_memo key ~tid ~loc ~kind ~locks ~site =
                Immutability.record immut ~thread:tid ~loc ~kind;
                match
                  Detector.on_access_outcome det ~loc ~thread:tid ~locks
                    ~kind ~site
                with
                | Detector.Reached ->
                    if key >= 0 then memo.(memo_idx key) <- key
                | Detector.Cache_hit | Detector.Owned_skip -> ()
              in
              (* Memo-drop: a repeat of an event that previously reached
                 the trie (same thread, loc, kind, lockset id) is
                 redundant — any race it could expose was checked when
                 the later-arriving party entered the trie, and its own
                 insertion is covered. *)
              let fixed_event ~tid ~loc ~kind ~locks ~site =
                let key = pack ~tid ~loc ~kind ~locks in
                if key >= 0 && memo.(memo_idx key) = key then
                  bump site_fast site
                else forward_memo key ~tid ~loc ~kind ~locks ~site
              in
              (* Cache-mirror memo for managed cells, keyed on the packed
                 (loc, kind, tid) the detector's per-thread cache itself
                 keys on (locksets excluded — the cache ignores them, so
                 the detector never distinguishes differing-locks repeats
                 either).  An entry is armed only after an event is
                 forwarded for a {e demoted} location: at that point the
                 thread's cache provably holds (kind, loc) and the single
                 Became_shared eviction for the location is behind us —
                 the component closure guarantees every traced access to
                 the location flows through a managed cell, so demotion
                 is witnessed — meaning every identical later event is a
                 detector cache hit: pure stats, no trie, droppable.
                 Mirroring requires the cache to exist at all, hence the
                 [use_cache] gate. *)
              let cache_on = config.Config.use_cache in
              let shared = ss.ss_shared in
              let pack_shared ~tid ~loc ~kind =
                if cache_on && tid < 1 lsl 10 then
                  (loc lsl 11)
                  lor ((match kind with Event.Write -> 1 | Event.Read -> 0)
                      lsl 10)
                  lor tid
                else -1
              in
              (* Owner shortcut for a managed cell.  Repeats by a
                 location's owner are exactly the events the detector's
                 cache or ownership filter would drop without touching
                 trie storage; the first event of another thread is
                 forwarded (the detector performs its Became_shared
                 transition) and demotes the location for good, sending
                 Sfixed cells to the memo and Sowned cells back to the
                 generic pipeline — with post-demotion repeats absorbed
                 by the cache mirror. *)
              (* Drop an armed mirror entry of [owner] for [loc] (both
                 kinds), so the owner's next access after the location's
                 demotion is forwarded — the exact-compare guard means a
                 colliding entry of another key is left alone. *)
              let disarm ~owner ~loc =
                let drop kind =
                  let key = pack_shared ~tid:owner ~loc ~kind in
                  if key >= 0 && shared.(memo_idx key) = key then
                    shared.(memo_idx key) <- -1
                in
                drop Event.Read;
                drop Event.Write
              in
              let owner_event cell key2 ~tid ~loc ~kind ~locks ~site =
                match Hashtbl.find own_map loc with
                | owner ->
                    if owner = tid then begin
                      bump site_fast site;
                      (* Arm the mirror for the owner as well: while the
                         location stays owned every repeat is absorbed
                         (cache hit or ownership skip, never trie), and
                         demotion disarms these slots before the first
                         foreign event is forwarded. *)
                      if key2 >= 0 then shared.(memo_idx key2) <- key2
                    end
                    else begin
                      if owner <> -2 then begin
                        Hashtbl.replace own_map loc (-2);
                        disarm ~owner ~loc
                      end;
                      (match classes.(cell) with
                      | Link.Sfixed ->
                          fixed_event ~tid ~loc ~kind ~locks ~site
                      | Link.Sowned | Link.Sro ->
                          generic_event ~tid ~loc ~kind ~locks ~site);
                      (* The location is demoted and this thread's cache
                         now holds (kind, loc) — either the forward just
                         above inserted it, or the Reached event behind a
                         memo hit already had.  Arm the mirror. *)
                      if key2 >= 0 then shared.(memo_idx key2) <- key2
                    end
                | exception Not_found ->
                    (* First event for this location anywhere: record
                       the owner only if the detector's ownership filter
                       itself absorbed it. *)
                    Immutability.record immut ~thread:tid ~loc ~kind;
                    (match
                       Detector.on_access_outcome det ~loc ~thread:tid ~locks
                         ~kind ~site
                     with
                    | Detector.Owned_skip ->
                        Hashtbl.replace own_map loc tid;
                        (* Forwarded while owned: the owner's cache holds
                           (kind, loc) from the lookup just done, so
                           same-kind repeats are cache hits; disarmed on
                           demotion like every owner entry. *)
                        if key2 >= 0 then shared.(memo_idx key2) <- key2
                    | Detector.Cache_hit | Detector.Reached ->
                        Hashtbl.replace own_map loc (-2))
              in
              Some
                (fun ~cell ~tid ~loc ~kind ~locks ~site ->
                  incr events;
                  incr spec_events;
                  bump site_ev site;
                  match classes.(cell) with
                  | Link.Sro ->
                      (* Every write to the component is pre-start and
                         ownership-absorbed, so the trie only ever holds
                         read nodes for these locations — and reads
                         cannot race reads.  Forward the first sighting
                         (ownership bookkeeping), drop the rest. *)
                      if ro_seen.(cell) then bump site_fast site
                      else begin
                        ro_seen.(cell) <- true;
                        generic_event ~tid ~loc ~kind ~locks ~site
                      end
                  | Link.Sfixed when not is_managed.(cell) ->
                      fixed_event ~tid ~loc ~kind ~locks ~site
                  | Link.Sfixed | Link.Sowned ->
                      (* The cache mirror is checked before the owner
                         map: a hit proves this exact (thread, loc, kind)
                         was forwarded after its location's demotion, a
                         drop licence that needs no further state. *)
                      let key2 = pack_shared ~tid ~loc ~kind in
                      if key2 >= 0 && shared.(memo_idx key2) = key2 then
                        bump site_fast site
                      else owner_event cell key2 ~tid ~loc ~kind ~locks ~site)
          | _ -> None
        in
        {
          Sink.null with
          Sink.access =
            (* Scalar calls: no Event.t allocated for events the cache
               or the ownership filter drops. *)
            count (fun ~tid ~loc ~kind ~locks ~site ->
                Immutability.record immut ~thread:tid ~loc ~kind;
                Detector.on_access_interned det ~loc ~thread:tid ~locks ~kind
                  ~site);
          spec = spec_handler;
          acquire =
            (fun ~tid ~lock ->
              Lock_order.on_acquire lock_order ~thread:tid ~lock;
              Detector.on_acquire det ~thread:tid ~lock);
          release =
            (fun ~tid ~lock ->
              Lock_order.on_release lock_order ~thread:tid ~lock;
              Detector.on_release det ~thread:tid ~lock);
          thread_exit = (fun ~tid -> Detector.on_thread_exit det ~thread:tid);
        }
    | (Config.Eraser | Config.ObjRace | Config.HappensBefore) as dv -> (
        (* Every baseline goes through the registry's Detector_intf.S
           module — no per-baseline plumbing.  A pooled instance is
           reset; a fresh one is reset too, which is a no-op. *)
        let pooled =
          match ctx with
          | Some { Run_ctx.rc_baseline = Some p; _ } -> p
          | _ ->
              let entry =
                match Registry.of_detector dv with
                | Some e -> e
                | None -> assert false
              in
              pool_detector entry.Registry.impl
        in
        match pooled with
        | Pooled ((module D), d) ->
            D.reset d;
            finishers := [ (fun () -> `Locs (D.racy_locs d)) ];
            sink_of_module (module D) d ~wrap_access:count)
  in
  let vm_config =
    match vm with Some v -> v | None -> vm_config_of config
  in
  let sink = match tap with Some t -> Sink.tee sink t | None -> sink in
  let t0 = Unix.gettimeofday () in
  let r =
    match (engine, ctx) with
    (* [`Spec] and [`Linked] run the same image; they differ only in
       whether the sink installed a [spec] handler above.  [`Ref] is
       the frozen block interpreter and is never pooled — the context's
       detector-side state still is. *)
    | (`Linked | `Spec), Some x ->
        Interp.run_ctx ~config:vm_config ~sink x.Run_ctx.rc_vm
    | (`Linked | `Spec), None -> Interp.run ~config:vm_config ~sink c.image
    | `Ref, _ -> Interp_ref.run ~config:vm_config ~sink c.prog
  in
  let wall = Unix.gettimeofday () -. t0 in
  let heap = r.Interp.r_heap in
  let racy_locs, detector_stats =
    match !finishers with
    | [ f ] -> (
        match f () with
        | `Ours stats -> (Report.racy_locs collector, Some stats)
        | `Locs locs -> (locs, None))
    | _ -> ([], None)
  in
  let describe = Memloc.describe c.prog.Ir.p_tprog heap in
  let races = List.map describe racy_locs |> List.sort compare in
  let racy_objects =
    List.map (object_of_loc c.prog heap) racy_locs
    |> List.sort_uniq compare
  in
  {
    races;
    racy_objects;
    report =
      (match config.Config.detector with
      | Config.Ours when detect -> Some collector
      | _ -> None);
    detector_stats;
    events = !events;
    prints = r.Interp.r_prints;
    steps = r.Interp.r_steps;
    threads = r.Interp.r_max_threads;
    wall_time = wall;
    trie_nodes =
      (match detector_stats with Some s -> s.Detector.trie_nodes | None -> 0);
    locations_tracked =
      (match detector_stats with
      | Some s -> s.Detector.locations_tracked
      | None -> 0);
    heap;
    deadlocks =
      (match config.Config.detector with
      | Config.Ours when detect -> Lock_order.potential_deadlocks lock_order
      | _ -> []);
    immutability =
      (match config.Config.detector with
      | Config.Ours when detect -> Some (Immutability.summary immut)
      | _ -> None);
    spec_events = !spec_events;
    site_stats =
      (match (site_ev, site_fast) with
      | Some e, Some f -> Some (e, f)
      | _ -> None);
  }

(* Describe an access statement "Class.method:line (op)" for the
   Section 2.6 static-peer listing. *)
let describe_stmt (c : compiled) meth iid =
  match Ir.find_mir c.prog meth with
  | None -> Printf.sprintf "%s#%d" meth iid
  | Some m ->
      let found = ref None in
      Ir.iter_instrs m (fun _ i -> if i.Ir.i_id = iid then found := Some i);
      (match !found with
      | Some i ->
          let desc =
            match i.Ir.i_op with
            | Ir.GetField (_, _, fm) -> "read " ^ fm.Ir.fm_name
            | Ir.PutField (_, fm, _) -> "write " ^ fm.Ir.fm_name
            | Ir.GetStatic (_, sm) ->
                "read " ^ sm.Ir.sm_class ^ "." ^ sm.Ir.sm_name
            | Ir.PutStatic (sm, _) ->
                "write " ^ sm.Ir.sm_class ^ "." ^ sm.Ir.sm_name
            | Ir.ALoad _ -> "read []"
            | Ir.AStore _ -> "write []"
            | _ -> "statement"
          in
          Printf.sprintf "%s:%d (%s)" meth i.Ir.i_line desc
      | None -> Printf.sprintf "%s#%d" meth iid)

(* The statically-possible racing statements for a dynamic report's
   site (Section 2.6). *)
let static_peers_of_site (c : compiled) site =
  match c.race_set with
  | None -> []
  | Some rs ->
      if site < 0 || site >= Site_table.count c.prog.Ir.p_sites then []
      else
        let info = Site_table.get c.prog.Ir.p_sites site in
        Drd_static.Race_set.peers_of rs ~meth:info.Site_table.s_method
          ~iid:info.Site_table.s_iid
        |> List.map (fun (m, iid) -> describe_stmt c m iid)
        |> List.sort_uniq compare

let run_source config source =
  let c = compile config ~source in
  (c, run c)

(* The schedule sweep that used to live here (run once per scheduler
   seed, aggregate racy objects) is now Drd_explore.Explore.sweep — a
   thin wrapper over the parallel schedule-exploration engine. *)

(* ---- post-mortem mode (paper Section 1) ---- *)

(* Execute the instrumented program recording the event stream instead
   of detecting online. *)
let record_log ?(engine = (`Linked : engine)) (c : compiled) :
    Event_log.t * Interp.result =
  let log = Event_log.create () in
  let sink =
    {
      Sink.access =
        (fun ~tid ~loc ~kind ~locks ~site ->
          Event_log.record log
            (Event_log.Access
               (Event.make_interned ~loc ~thread:tid ~locks ~kind ~site)));
      acquire =
        (fun ~tid ~lock -> Event_log.record log (Event_log.Acquire (tid, lock)));
      release =
        (fun ~tid ~lock -> Event_log.record log (Event_log.Release (tid, lock)));
      thread_start =
        (fun ~parent ~child ->
          Event_log.record log (Event_log.Thread_start (parent, child)));
      thread_join =
        (fun ~joiner ~joinee ->
          Event_log.record log (Event_log.Thread_join (joiner, joinee)));
      thread_exit =
        (fun ~tid -> Event_log.record log (Event_log.Thread_exit tid));
      call = None;
      spec = None;
    }
  in
  let r =
    match engine with
    (* Recording installs no [spec] handler, so [`Spec] is [`Linked]. *)
    | `Linked | `Spec ->
        Interp.run ~config:(vm_config_of c.config) ~sink c.image
    | `Ref -> Interp_ref.run ~config:(vm_config_of c.config) ~sink c.prog
  in
  (log, r)

(* Run the final detection phase off-line over a recorded log. *)
let detect_post_mortem (config : Config.t) (log : Event_log.t) :
    Report.collector * Detector.stats =
  let collector = Report.collector () in
  let det =
    Detector.create
      ~config:
        {
          Detector.default_config with
          Detector.use_cache = config.Config.use_cache;
          use_ownership = config.Config.use_ownership;
        }
      collector
  in
  Event_log.replay log det;
  (collector, Detector.stats det)

(* ---- uniform Detector_intf.S driving (registry / arena) ---- *)

type module_run = {
  m_races : string list; (* decoded racy location names, sorted *)
  m_race_count : int;
  m_events : int;
  m_steps : int;
}

(* Run a compiled program with any detector module behind
   Detector_intf.S — the one code path the differential arena uses for
   every technique, paper detector included.  The compile-time
   configuration (granularity, pseudo-locks, schedule) still comes from
   [c.config] / [?vm]; the module only decides what to do with the
   event stream. *)
let run_module ?vm ?(engine = (`Spec : engine))
    (module D : Detector_intf.S) (c : compiled) : module_run =
  let d = D.create () in
  let events = ref 0 in
  let sink =
    sink_of_module
      (module D)
      d
      ~wrap_access:(fun f ~tid ~loc ~kind ~locks ~site ->
        incr events;
        f ~tid ~loc ~kind ~locks ~site)
  in
  let vm_config = match vm with Some v -> v | None -> vm_config_of c.config in
  let r =
    match engine with
    (* No spec handler is installed for module-driven runs, so [`Spec]
       executes the image generically, exactly like [`Linked]. *)
    | `Linked | `Spec -> Interp.run ~config:vm_config ~sink c.image
    | `Ref -> Interp_ref.run ~config:vm_config ~sink c.prog
  in
  let describe = Memloc.describe c.prog.Ir.p_tprog r.Interp.r_heap in
  {
    m_races = D.racy_locs d |> List.map describe |> List.sort compare;
    m_race_count = D.race_count d;
    m_events = !events;
    m_steps = r.Interp.r_steps;
  }

(* Post-mortem replay of a recorded log through any detector module:
   the generic sibling of {!detect_post_mortem} (which keeps the paper
   detector's full stats).  [replay_pooled] is the reusable form: the
   instance is reset up front, so one pooled detector serves any number
   of replays. *)
let replay_pooled (p : pooled_detector) (log : Event_log.t) :
    Event.loc_id list * int =
  match p with
  | Pooled ((module D), d) ->
  D.reset d;
  Event_log.iter
    (fun entry ->
      match entry with
      | Event_log.Access e ->
          D.on_access_interned d ~loc:e.Event.loc ~thread:e.Event.thread
            ~locks:e.Event.locks ~kind:e.Event.kind ~site:e.Event.site
      | Event_log.Acquire (t, l) -> D.on_acquire d ~thread:t ~lock:l
      | Event_log.Release (t, l) -> D.on_release d ~thread:t ~lock:l
      | Event_log.Thread_start (p, ch) ->
          D.on_thread_start d ~parent:p ~child:ch
      | Event_log.Thread_join (j, je) ->
          D.on_thread_join d ~joiner:j ~joinee:je
      | Event_log.Thread_exit t -> D.on_thread_exit d ~thread:t)
    log;
  (D.racy_locs d, D.events_seen d)

let replay_module (m : (module Detector_intf.S)) (log : Event_log.t) :
    Event.loc_id list * int =
  replay_pooled (pool_detector m) log

let names_of (c : compiled) (r : result) : Names.t =
  let names = Names.create () in
  Site_table.iter c.prog.Ir.p_sites (fun id _ ->
      Names.register_site names id (Site_table.name c.prog.Ir.p_sites id));
  (* Locations and locks mentioned in the reports. *)
  (match r.report with
  | Some coll ->
      List.iter
        (fun (race : Report.race) ->
          Names.register_loc names race.Report.loc
            (Memloc.describe c.prog.Ir.p_tprog r.heap race.Report.loc);
          let register_locks ls =
            Event.Lockset.fold
              (fun l () -> Names.register_lock names l (Heap.describe r.heap l))
              ls ()
          in
          register_locks (Event.lockset race.Report.current);
          register_locks (Lockset_id.set_of race.Report.prior.Trie.p_locks))
        (Report.races coll)
  | None -> ());
  names
