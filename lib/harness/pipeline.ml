module Ir = Drd_ir.Ir
module Link = Drd_ir.Link
module Interp = Drd_vm.Interp
module Interp_ref = Drd_vm.Interp_ref
module Value = Drd_vm.Value
module Memloc = Drd_vm.Memloc
module Sink = Drd_vm.Sink
module Heap = Drd_vm.Heap
module Parser = Drd_lang.Parser
module Typecheck = Drd_lang.Typecheck
module Lower = Drd_ir.Lower
module Site_table = Drd_ir.Site_table
module Insert = Drd_instr.Insert
module Static_weaker = Drd_instr.Static_weaker
module Peel = Drd_instr.Peel
module Race_set = Drd_static.Race_set
open Drd_core

type compiled = {
  prog : Ir.program;
  image : Link.image; (* the linked executable form the VM runs *)
  config : Config.t;
  traces_inserted : int;
  traces_eliminated : int;
  static_stats : Drd_static.Race_set.stats option;
  race_set : Drd_static.Race_set.t option;
  compile_time : float;
}

(* Which interpreter executes the program.  [`Linked] is the production
   engine (flat image); [`Ref] is the frozen pre-link block interpreter,
   kept for the golden byte-identity suite and as the bench baseline. *)
type engine = [ `Linked | `Ref ]

let compile (config : Config.t) ~source : compiled =
  let t0 = Unix.gettimeofday () in
  let ast = Parser.parse_program source in
  let tprog = Typecheck.check ast in
  let tprog = if config.Config.loop_peel then Peel.peel_program tprog else tprog in
  let prog = Lower.lower_program tprog in
  let static_stats = ref None in
  let race_set = ref None in
  let instrumented = config.Config.detector <> Config.NoDetect in
  if instrumented then
    if config.Config.static_analysis then begin
      let rs = Race_set.compute prog in
      static_stats := Some (Race_set.stats rs);
      race_set := Some rs;
      Insert.instrument ~keep:(Race_set.may_race rs) prog
    end
    else Insert.instrument prog;
  let inserted = Insert.count_traces prog in
  let eliminated =
    if instrumented && config.Config.weaker_elim then
      Static_weaker.eliminate prog
    else 0
  in
  (* The rest of the compiler's optimizations run AFTER instrumentation
     (Section 6.2); traces are unknown-side-effect and survive. *)
  if config.Config.ir_optimize then ignore (Drd_ir.Optimize.optimize prog);
  (* Link once, after every pass that can touch the IR has run. *)
  let image = Link.link prog in
  {
    prog;
    image;
    config;
    traces_inserted = inserted;
    traces_eliminated = eliminated;
    static_stats = !static_stats;
    race_set = !race_set;
    compile_time = Unix.gettimeofday () -. t0;
  }

type result = {
  races : string list;
  racy_objects : string list;
  report : Report.collector option;
  detector_stats : Detector.stats option;
  events : int;
  prints : (string * Value.t option) list;
  steps : int;
  threads : int;
  wall_time : float;
  trie_nodes : int;
  locations_tracked : int;
  heap : Heap.t; (* final heap, for decoding identities in reports *)
  deadlocks : Lock_order.report list;
      (* potential deadlocks from the lock-order graph (Section 10
         future work); tracked alongside our detector *)
  immutability : Immutability.summary option;
      (* dynamic immutability classification (Section 10 future work) *)
}

(* Group a location id to the identity Table 3 counts: the object (for
   instance fields and arrays) or the static field itself. *)
let object_of_loc (prog : Ir.program) heap loc =
  if loc land 1 = 1 then Memloc.describe prog.Ir.p_tprog heap loc
  else Heap.describe heap (loc lsr 11)

(* The VM configuration a harness Config.t denotes; [?vm] on {!run}
   lets the exploration engine override it per run. *)
let vm_config_of (config : Config.t) =
  {
    Interp.default_config with
    seed = config.Config.seed;
    quantum = config.Config.quantum;
    granularity = config.Config.granularity;
    pseudo_locks = config.Config.pseudo_locks;
    policy = config.Config.policy;
  }

let run ?vm ?tap ?(detect = true) ?(engine = (`Linked : engine)) (c : compiled)
    : result =
  let config = c.config in
  let events = ref 0 in
  let count f = fun ~tid ~loc ~kind ~locks ~site ->
    incr events;
    f ~tid ~loc ~kind ~locks ~site
  in
  let collector = Report.collector () in
  let lock_order = Lock_order.create () in
  let immut = Immutability.create () in
  let finishers = ref [] in
  let sink =
    (* [detect = false] runs the same instrumented program (so the
       schedule is identical — NoDetect compiles without traces and
       would perturb it) but drops the detector work; only the event
       counter remains.  The exploration engine uses this for
       fingerprint-only passes. *)
    if not detect then
      { Sink.null with Sink.access = count (fun ~tid:_ ~loc:_ ~kind:_ ~locks:_ ~site:_ -> ()) }
    else
    match config.Config.detector with
    | Config.NoDetect -> Sink.null
    | Config.Ours ->
        let det =
          Detector.create
            ~config:
              {
                Detector.default_config with
                Detector.use_cache = config.Config.use_cache;
                use_ownership = config.Config.use_ownership;
              }
            collector
        in
        finishers :=
          [ (fun () -> `Ours (Detector.stats det)) ];
        {
          Sink.null with
          Sink.access =
            (* Scalar calls: no Event.t allocated for events the cache
               or the ownership filter drops. *)
            count (fun ~tid ~loc ~kind ~locks ~site ->
                Immutability.record immut ~thread:tid ~loc ~kind;
                Detector.on_access_interned det ~loc ~thread:tid ~locks ~kind
                  ~site);
          acquire =
            (fun ~tid ~lock ->
              Lock_order.on_acquire lock_order ~thread:tid ~lock;
              Detector.on_acquire det ~thread:tid ~lock);
          release =
            (fun ~tid ~lock ->
              Lock_order.on_release lock_order ~thread:tid ~lock;
              Detector.on_release det ~thread:tid ~lock);
          thread_exit = (fun ~tid -> Detector.on_thread_exit det ~thread:tid);
        }
    | Config.Eraser ->
        let d = Drd_baselines.Eraser.create () in
        finishers := [ (fun () -> `Locs (Drd_baselines.Eraser.racy_locs d)) ];
        {
          Sink.null with
          Sink.access =
            count (fun ~tid ~loc ~kind ~locks ~site ->
                Drd_baselines.Eraser.on_access_interned d ~loc ~thread:tid
                  ~locks ~kind ~site);
        }
    | Config.ObjRace ->
        let d = Drd_baselines.Objrace.create () in
        finishers := [ (fun () -> `Locs (Drd_baselines.Objrace.racy_locs d)) ];
        {
          Sink.null with
          Sink.access =
            count (fun ~tid ~loc ~kind ~locks ~site ->
                Drd_baselines.Objrace.on_access_interned d ~loc ~thread:tid
                  ~locks ~kind ~site);
          call =
            Some
              (fun ~tid ~obj ~locks ~site ->
                Drd_baselines.Objrace.on_call d ~thread:tid
                  ~obj_loc:(Memloc.whole_object ~obj)
                  ~locks ~site);
        }
    | Config.HappensBefore ->
        let module H = Drd_baselines.Happens_before in
        let d = H.create () in
        finishers := [ (fun () -> `Locs (H.racy_locs d)) ];
        {
          Sink.access =
            count (fun ~tid ~loc ~kind ~locks:_ ~site ->
                (* Locksets play no role in happens-before ordering;
                   keep the reported events lock-free as before. *)
                H.on_access_interned d ~loc ~thread:tid
                  ~locks:Lockset_id.empty ~kind ~site);
          acquire = (fun ~tid ~lock -> H.on_acquire d ~thread:tid ~lock);
          release = (fun ~tid ~lock -> H.on_release d ~thread:tid ~lock);
          thread_start =
            (fun ~parent ~child -> H.on_thread_start d ~parent ~child);
          thread_join =
            (fun ~joiner ~joinee -> H.on_thread_join d ~joiner ~joinee);
          thread_exit = (fun ~tid:_ -> ());
          call = None;
        }
  in
  let vm_config =
    match vm with Some v -> v | None -> vm_config_of config
  in
  let sink = match tap with Some t -> Sink.tee sink t | None -> sink in
  let t0 = Unix.gettimeofday () in
  let r =
    match engine with
    | `Linked -> Interp.run ~config:vm_config ~sink c.image
    | `Ref -> Interp_ref.run ~config:vm_config ~sink c.prog
  in
  let wall = Unix.gettimeofday () -. t0 in
  let heap = r.Interp.r_heap in
  let racy_locs, detector_stats =
    match !finishers with
    | [ f ] -> (
        match f () with
        | `Ours stats -> (Report.racy_locs collector, Some stats)
        | `Locs locs -> (locs, None))
    | _ -> ([], None)
  in
  let describe = Memloc.describe c.prog.Ir.p_tprog heap in
  let races = List.map describe racy_locs |> List.sort compare in
  let racy_objects =
    List.map (object_of_loc c.prog heap) racy_locs
    |> List.sort_uniq compare
  in
  {
    races;
    racy_objects;
    report =
      (match config.Config.detector with
      | Config.Ours when detect -> Some collector
      | _ -> None);
    detector_stats;
    events = !events;
    prints = r.Interp.r_prints;
    steps = r.Interp.r_steps;
    threads = r.Interp.r_max_threads;
    wall_time = wall;
    trie_nodes =
      (match detector_stats with Some s -> s.Detector.trie_nodes | None -> 0);
    locations_tracked =
      (match detector_stats with
      | Some s -> s.Detector.locations_tracked
      | None -> 0);
    heap;
    deadlocks =
      (match config.Config.detector with
      | Config.Ours when detect -> Lock_order.potential_deadlocks lock_order
      | _ -> []);
    immutability =
      (match config.Config.detector with
      | Config.Ours when detect -> Some (Immutability.summary immut)
      | _ -> None);
  }

(* Describe an access statement "Class.method:line (op)" for the
   Section 2.6 static-peer listing. *)
let describe_stmt (c : compiled) meth iid =
  match Ir.find_mir c.prog meth with
  | None -> Printf.sprintf "%s#%d" meth iid
  | Some m ->
      let found = ref None in
      Ir.iter_instrs m (fun _ i -> if i.Ir.i_id = iid then found := Some i);
      (match !found with
      | Some i ->
          let desc =
            match i.Ir.i_op with
            | Ir.GetField (_, _, fm) -> "read " ^ fm.Ir.fm_name
            | Ir.PutField (_, fm, _) -> "write " ^ fm.Ir.fm_name
            | Ir.GetStatic (_, sm) ->
                "read " ^ sm.Ir.sm_class ^ "." ^ sm.Ir.sm_name
            | Ir.PutStatic (sm, _) ->
                "write " ^ sm.Ir.sm_class ^ "." ^ sm.Ir.sm_name
            | Ir.ALoad _ -> "read []"
            | Ir.AStore _ -> "write []"
            | _ -> "statement"
          in
          Printf.sprintf "%s:%d (%s)" meth i.Ir.i_line desc
      | None -> Printf.sprintf "%s#%d" meth iid)

(* The statically-possible racing statements for a dynamic report's
   site (Section 2.6). *)
let static_peers_of_site (c : compiled) site =
  match c.race_set with
  | None -> []
  | Some rs ->
      if site < 0 || site >= Site_table.count c.prog.Ir.p_sites then []
      else
        let info = Site_table.get c.prog.Ir.p_sites site in
        Drd_static.Race_set.peers_of rs ~meth:info.Site_table.s_method
          ~iid:info.Site_table.s_iid
        |> List.map (fun (m, iid) -> describe_stmt c m iid)
        |> List.sort_uniq compare

let run_source config source =
  let c = compile config ~source in
  (c, run c)

(* The schedule sweep that used to live here (run once per scheduler
   seed, aggregate racy objects) is now Drd_explore.Explore.sweep — a
   thin wrapper over the parallel schedule-exploration engine. *)

(* ---- post-mortem mode (paper Section 1) ---- *)

(* Execute the instrumented program recording the event stream instead
   of detecting online. *)
let record_log ?(engine = (`Linked : engine)) (c : compiled) :
    Event_log.t * Interp.result =
  let log = Event_log.create () in
  let sink =
    {
      Sink.access =
        (fun ~tid ~loc ~kind ~locks ~site ->
          Event_log.record log
            (Event_log.Access
               (Event.make_interned ~loc ~thread:tid ~locks ~kind ~site)));
      acquire =
        (fun ~tid ~lock -> Event_log.record log (Event_log.Acquire (tid, lock)));
      release =
        (fun ~tid ~lock -> Event_log.record log (Event_log.Release (tid, lock)));
      thread_start =
        (fun ~parent ~child ->
          Event_log.record log (Event_log.Thread_start (parent, child)));
      thread_join =
        (fun ~joiner ~joinee ->
          Event_log.record log (Event_log.Thread_join (joiner, joinee)));
      thread_exit =
        (fun ~tid -> Event_log.record log (Event_log.Thread_exit tid));
      call = None;
    }
  in
  let r =
    match engine with
    | `Linked -> Interp.run ~config:(vm_config_of c.config) ~sink c.image
    | `Ref -> Interp_ref.run ~config:(vm_config_of c.config) ~sink c.prog
  in
  (log, r)

(* Run the final detection phase off-line over a recorded log. *)
let detect_post_mortem (config : Config.t) (log : Event_log.t) :
    Report.collector * Detector.stats =
  let collector = Report.collector () in
  let det =
    Detector.create
      ~config:
        {
          Detector.default_config with
          Detector.use_cache = config.Config.use_cache;
          use_ownership = config.Config.use_ownership;
        }
      collector
  in
  Event_log.replay log det;
  (collector, Detector.stats det)

let names_of (c : compiled) (r : result) : Names.t =
  let names = Names.create () in
  Site_table.iter c.prog.Ir.p_sites (fun id _ ->
      Names.register_site names id (Site_table.name c.prog.Ir.p_sites id));
  (* Locations and locks mentioned in the reports. *)
  (match r.report with
  | Some coll ->
      List.iter
        (fun (race : Report.race) ->
          Names.register_loc names race.Report.loc
            (Memloc.describe c.prog.Ir.p_tprog r.heap race.Report.loc);
          let register_locks ls =
            Event.Lockset.fold
              (fun l () -> Names.register_lock names l (Heap.describe r.heap l))
              ls ()
          in
          register_locks (Event.lockset race.Report.current);
          register_locks (Lockset_id.set_of race.Report.prior.Trie.p_locks))
        (Report.races coll)
  | None -> ());
  names
