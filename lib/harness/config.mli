(** Named detector configurations: the rows/columns of the paper's
    Tables 2 and 3 plus the Section 9 baselines.  Each toggles one
    pipeline stage relative to {!full}. *)

module Memloc = Drd_vm.Memloc

type detector =
  | Ours  (** The trie-based detector of Section 3. *)
  | Eraser
  | ObjRace
  | HappensBefore
  | NoDetect  (** Uninstrumented — the "Base" timing reference. *)

type t = {
  name : string;
  static_analysis : bool;  (** Section 5 static datarace set filtering. *)
  weaker_elim : bool;  (** Section 6.1 static weaker-than elimination. *)
  loop_peel : bool;  (** Section 6.3 loop peeling. *)
  use_cache : bool;  (** Section 4 runtime caches. *)
  use_ownership : bool;  (** Section 7 ownership model. *)
  granularity : Memloc.granularity;  (** Table 3's "FieldsMerged" switch. *)
  detector : detector;
  pseudo_locks : bool;  (** Section 2.3 join modeling. *)
  ir_optimize : bool;
      (** Classical scalar optimizations of the surrounding compiler
          (constant/copy propagation, branch folding, DCE); traces are
          never removed by them (Section 6.2). *)
  seed : int;  (** Scheduler seed. *)
  quantum : int;  (** Scheduler slice bound. *)
  policy : Drd_vm.Interp.policy;
      (** Thread-choice discipline of the VM scheduler; the exploration
          engine swaps this per run. *)
}

val full : t
(** Everything on — the paper's headline configuration. *)

val base : t
(** No instrumentation, no detection. *)

val no_static : t

val no_dominators : t
(** Disables the static weaker-than elimination {e and} loop peeling
    (useless without it), as in the paper's Table 2. *)

val no_peeling : t

val no_cache : t

val fields_merged : t
(** Object-granularity locations (statics stay distinguished). *)

val no_ownership : t

val eraser : t
(** Full-stream instrumentation, no join pseudo-locks. *)

val objrace : t
(** Object granularity + call-as-write events, no join pseudo-locks. *)

val happens_before : t

val table2_configs : t list
(** [Base; Full; NoStatic; NoDominators; NoPeeling; NoCache]. *)

val table3_configs : t list
(** [Full; FieldsMerged; NoOwnership]. *)

val all : t list

val by_name : string -> t option
(** Case-insensitive lookup. *)
