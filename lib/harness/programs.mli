(** MiniJava ports of the paper's benchmark programs (Table 1), with the
    same concurrency structure and the same seeded bugs as the
    originals; see the implementation header for the per-program notes
    and `EXPERIMENTS.md` for how their reports compare to the paper's.

    Every generator is pure: the same parameters produce the same
    source text. *)

val figure2 : ?same_pq:bool -> unit -> string
(** The paper's Figure 2 three-thread example; [same_pq] aliases the two
    inner locks to exhibit the feasible race of Section 2.2. *)

val mtrt : ?width:int -> ?height:int -> ?spheres:int -> unit -> string
(** Two render threads over a shared framebuffer; races on
    [RayTrace.threadCount] and
    [ValidityCheckOutputStream.startOfLine]; join+common-lock
    statistics that must stay quiet. *)

val tsp : ?cities:int -> ?bfs_depth:int -> unit -> string
(** Branch-and-bound with a shared tour queue and recycled elements;
    the real [MinTourLen] race plus protocol-protected TourElement
    reports. *)

val sor : ?size:int -> ?iterations:int -> unit -> string
(** The ORIGINAL sor with subscripts recomputed in the inner loop —
    the variant the paper says its optimizations cannot help (fresh
    value numbers every iteration defeat the static weaker-than
    match). *)

val sor2 : ?size:int -> ?iterations:int -> unit -> string
(** Barrier-synchronized grid relaxation with hoisted row subscripts —
    the benchmark that makes dominators + loop peeling essential. *)

val elevator : ?floors:int -> ?events:int -> unit -> string
(** Fully synchronized discrete-event simulation: no races. *)

val hedc : ?tasks:int -> ?work:int -> unit -> string
(** Task-pool crawler kernel: [Pool.size] and [Task.thread_] races,
    LinkedQueue nodes and requests with mixed per-field disciplines. *)

val needle : ?warmup:int -> ?burst:int -> unit -> string
(** Schedule needle-in-a-haystack for the exploration engine: an
    unsynchronized flag hand-off guards dueling array bursts.  The
    default deterministic schedule misses the race; a PCT preemption
    inside the writer's burst exposes it.  Subscripts are recomputed
    per iteration so the in-burst traces survive the static
    weaker-than elimination (same mechanism as [sor]). *)

type benchmark = {
  b_name : string;
  b_description : string;
  b_source : string;  (** Default size: tests, Table 3. *)
  b_perf_source : string;  (** Larger size: Table 2 timing. *)
  b_cpu_bound : bool;
      (** The paper reports performance only for CPU-bound programs. *)
}

val benchmarks : benchmark list
(** mtrt, tsp, sor2, elevator, hedc — in Table 1 order — plus
    [needle], the exploration-engine demo. *)

val paper_benchmarks : benchmark list
(** The Table 1 five only — what the paper's tables iterate. *)

val find : string -> benchmark option

val loc_of_source : string -> int
(** Non-blank, non-comment lines (the Table 1 LoC metric). *)
