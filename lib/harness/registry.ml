open Drd_core

(* The name-keyed detector registry: one row per race-detection
   technique the repo implements, each packaged behind
   Detector_intf.S.  `racedet run/detect/arena --detector NAME` and
   the differential arena resolve techniques here instead of carrying
   per-baseline plumbing. *)

type entry = {
  name : string;
  aliases : string list;
  detector : Config.detector; (* the Config variant the name denotes *)
  impl : (module Detector_intf.S);
}

let all =
  [
    {
      name = "paper";
      aliases = [ "ours" ];
      detector = Config.Ours;
      impl = (module Detector.Standard : Detector_intf.S);
    };
    {
      name = "eraser";
      aliases = [];
      detector = Config.Eraser;
      impl = (module Drd_baselines.Eraser : Detector_intf.S);
    };
    {
      name = "objrace";
      aliases = [ "objectrace" ];
      detector = Config.ObjRace;
      impl = (module Drd_baselines.Objrace : Detector_intf.S);
    };
    {
      name = "vclock";
      aliases = [ "hb"; "happens-before" ];
      detector = Config.HappensBefore;
      impl = (module Drd_baselines.Happens_before : Detector_intf.S);
    };
  ]

let names () = List.map (fun e -> e.name) all

let find name =
  let name = String.lowercase_ascii name in
  List.find_opt (fun e -> e.name = name || List.mem name e.aliases) all

let of_detector (d : Config.detector) =
  match d with
  | Config.NoDetect -> None
  | _ -> List.find_opt (fun e -> e.detector = d) all

let describe e =
  let (module D : Detector_intf.S) = e.impl in
  D.describe

(* The canonical harness configuration for running [e]: the paper
   detector keeps the caller's configuration when it already selects
   it (so `-c NoCache --detector paper` still means NoCache) and the
   baselines take their standard rows — everything instrumented, no
   static filtering, no join pseudo-locks, object granularity for
   objrace — with the caller's schedule parameters carried over. *)
let apply e (c : Config.t) =
  match e.detector with
  | Config.Ours ->
      if c.Config.detector = Config.Ours then c
      else
        {
          Config.full with
          Config.seed = c.Config.seed;
          quantum = c.Config.quantum;
          policy = c.Config.policy;
        }
  | det ->
      let row =
        match det with
        | Config.Eraser -> Config.eraser
        | Config.ObjRace -> Config.objrace
        | Config.HappensBefore -> Config.happens_before
        | Config.Ours | Config.NoDetect -> assert false
      in
      {
        row with
        Config.seed = c.Config.seed;
        quantum = c.Config.quantum;
        policy = c.Config.policy;
      }
