module Memloc = Drd_vm.Memloc

(* Named detector configurations: the rows and columns of the paper's
   Tables 2 and 3, plus the three related-work baselines of Section 9. *)

type detector =
  | Ours (* the trie-based detector of Section 3 *)
  | Eraser
  | ObjRace
  | HappensBefore
  | NoDetect (* uninstrumented "Base" *)

type t = {
  name : string;
  static_analysis : bool; (* Section 5: static datarace set filtering *)
  weaker_elim : bool; (* Section 6.1: static weaker-than elimination *)
  loop_peel : bool; (* Section 6.3 *)
  use_cache : bool; (* Section 4 *)
  use_ownership : bool; (* Section 7 *)
  granularity : Memloc.granularity; (* Table 3 "FieldsMerged" variant *)
  detector : detector;
  pseudo_locks : bool; (* Section 2.3 join modeling *)
  ir_optimize : bool;
      (* the surrounding compiler's classical optimizations (copy/const
         propagation, branch folding, DCE) — traces survive them, as the
         paper requires in Section 6.2 *)
  seed : int;
  quantum : int;
  policy : Drd_vm.Interp.policy;
      (* thread-choice discipline of the VM scheduler; the exploration
         engine swaps this per run *)
}

let full =
  {
    name = "Full";
    static_analysis = true;
    weaker_elim = true;
    loop_peel = true;
    use_cache = true;
    use_ownership = true;
    granularity = Memloc.Per_field;
    detector = Ours;
    pseudo_locks = true;
    ir_optimize = true;
    seed = 42;
    quantum = 20;
    policy = Drd_vm.Interp.Random_walk;
  }

(* The paper's Base is "without any instrumentation (and without loop
   peeling)". *)
let base =
  { full with name = "Base"; detector = NoDetect; loop_peel = false }

let no_static = { full with name = "NoStatic"; static_analysis = false }

(* Disabling the dominator-based elimination also disables peeling,
   which is useless without it (Section 8.2). *)
let no_dominators =
  { full with name = "NoDominators"; weaker_elim = false; loop_peel = false }

let no_peeling = { full with name = "NoPeeling"; loop_peel = false }

let no_cache = { full with name = "NoCache"; use_cache = false }

let fields_merged =
  { full with name = "FieldsMerged"; granularity = Memloc.Per_object }

let no_ownership = { full with name = "NoOwnership"; use_ownership = false }

(* Baselines monitor everything and have no join modeling. *)
let baseline name detector =
  {
    full with
    name;
    detector;
    static_analysis = false;
    weaker_elim = false;
    loop_peel = false;
    pseudo_locks = false;
    granularity =
      (if detector = ObjRace then Memloc.Per_object else Memloc.Per_field);
  }

let eraser = baseline "Eraser" Eraser

let objrace = baseline "ObjRace" ObjRace

let happens_before = baseline "HappensBefore" HappensBefore

let table2_configs =
  [ base; full; no_static; no_dominators; no_peeling; no_cache ]

let table3_configs = [ full; fields_merged; no_ownership ]

let all =
  [
    base;
    full;
    no_static;
    no_dominators;
    no_peeling;
    no_cache;
    fields_merged;
    no_ownership;
    eraser;
    objrace;
    happens_before;
  ]

let by_name name =
  List.find_opt (fun c -> String.lowercase_ascii c.name = String.lowercase_ascii name) all
