(* Regeneration of the paper's tables and figures (Section 8), printed
   in the same row/column structure.  Absolute timings come from this
   machine's interpreter rather than a 450 MHz POWER3, so the
   accompanying deterministic event counts are the primary
   reproduction metric; see EXPERIMENTS.md. *)

module Ir = Drd_ir.Ir

let fpf = Format.printf

let contains_sub needle haystack =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* ---------------- Table 1: benchmark characteristics ---------------- *)

let table1 () =
  fpf "Table 1: Benchmark programs and their characteristics@.";
  fpf "%-10s %14s %21s  %s@." "Example" "Lines of Code" "Num. Dynamic Threads"
    "Description";
  List.iter
    (fun (b : Programs.benchmark) ->
      let r = Pipeline.run_source Config.base b.Programs.b_source |> snd in
      fpf "%-10s %14d %21d  %s@." b.Programs.b_name
        (Programs.loc_of_source b.Programs.b_source)
        r.Pipeline.threads b.Programs.b_description)
    Programs.paper_benchmarks;
  fpf "@."

(* ---------------- Table 2: runtime performance ---------------------- *)

type t2_cell = { wall : float; overhead : float; events : int; steps : int }

let best_of ~runs compiled =
  let best = ref infinity in
  let last = ref None in
  for _ = 1 to runs do
    let r = Pipeline.run compiled in
    if r.Pipeline.wall_time < !best then best := r.Pipeline.wall_time;
    last := Some r
  done;
  (!best, Option.get !last)

let table2 ?(runs = 3) ?(perf = true) () =
  fpf "Table 2: Runtime performance (wall time, %% overhead vs Base,@.";
  fpf "         and deterministic access-event counts)@.";
  fpf "%-8s  %s@." ""
    (String.concat "  "
       (List.map
          (fun (c : Config.t) -> Printf.sprintf "%-22s" c.Config.name)
          Config.table2_configs));
  let rows = ref [] in
  List.iter
    (fun (b : Programs.benchmark) ->
      if b.Programs.b_cpu_bound then begin
        let source =
          if perf then b.Programs.b_perf_source else b.Programs.b_source
        in
        let base_time = ref 1.0 in
        let cells =
          List.map
            (fun config ->
              let compiled = Pipeline.compile config ~source in
              let wall, r = best_of ~runs compiled in
              if config.Config.name = "Base" then base_time := wall;
              {
                wall;
                overhead = (wall /. !base_time -. 1.0) *. 100.;
                events = r.Pipeline.events;
                steps = r.Pipeline.steps;
              })
            Config.table2_configs
        in
        rows := (b.Programs.b_name, cells) :: !rows;
        fpf "%-8s  %s@." b.Programs.b_name
          (String.concat "  "
             (List.map
                (fun c ->
                  Printf.sprintf "%6.3fs (%+4.0f%%) %7s"
                    c.wall c.overhead
                    (Printf.sprintf "e=%d" c.events))
                cells))
      end)
    Programs.paper_benchmarks;
  fpf "(elevator and hedc are not CPU-bound and are excluded, as in the paper)@.@.";
  List.rev !rows

(* ---------------- Table 3: reported racy objects -------------------- *)

let table3 () =
  fpf "Table 3: Number of objects with dataraces reported@.";
  fpf "%-10s %6s %14s %13s@." "Example" "Full" "FieldsMerged" "NoOwnership";
  let rows =
    List.map
      (fun (b : Programs.benchmark) ->
        let count config =
          let _, r = Pipeline.run_source config b.Programs.b_source in
          List.length r.Pipeline.racy_objects
        in
        let cells = List.map count Config.table3_configs in
        fpf "%-10s %6d %14d %13d@." b.Programs.b_name (List.nth cells 0)
          (List.nth cells 1) (List.nth cells 2);
        (b.Programs.b_name, cells))
      Programs.paper_benchmarks
  in
  fpf "@.";
  rows

(* ---------------- Figure 1: architecture (phase trace) -------------- *)

let figure1 () =
  fpf "Figure 1: Architecture of the datarace detection system@.";
  fpf "(phase trace on the tsp benchmark)@.@.";
  let b = Option.get (Programs.find "tsp") in
  let config = Config.full in
  let compiled = Pipeline.compile config ~source:b.Programs.b_source in
  (match compiled.Pipeline.static_stats with
  | Some s ->
      fpf "[1] static datarace analysis:@.    %a@."
        Drd_static.Race_set.pp_stats s
  | None -> ());
  fpf "[2] optimized instrumentation: %d trace statements inserted,@."
    compiled.Pipeline.traces_inserted;
  fpf "    %d removed by the static weaker-than relation (with loop peeling)@."
    compiled.Pipeline.traces_eliminated;
  let r = Pipeline.run compiled in
  (match r.Pipeline.detector_stats with
  | Some s ->
      fpf "[3] runtime optimizer + [4] detector:@.    %a@."
        Drd_core.Detector.pp_stats s
  | None -> ());
  fpf "races reported on: %s@.@."
    (String.concat ", " r.Pipeline.racy_objects)

(* ---------------- Figure 2: the three-thread example ---------------- *)

let figure2 () =
  fpf "Figure 2: Example program with three threads@.@.";
  let run ~same_pq =
    let _, r =
      Pipeline.run_source Config.full (Programs.figure2 ~same_pq ())
    in
    r.Pipeline.racy_objects
  in
  let plain = run ~same_pq:false in
  fpf "distinct locks p != q: races on %s@." (String.concat ", " plain);
  fpf "  (T11:a.f and T14:b.f race with T21:d.f; T01:x.f is ordered by@.";
  fpf "   start() and silenced by the ownership model)@.";
  let same = run ~same_pq:true in
  fpf "same lock p == q:     races on %s@." (String.concat ", " same);
  fpf "  (the feasible race is still reported: lockset-based detection@.";
  fpf "   does not depend on the observed lock acquisition order)@.";
  let _, hb =
    Pipeline.run_source Config.happens_before (Programs.figure2 ~same_pq:true ())
  in
  fpf "happens-before baseline on p == q: races on [%s]@.@."
    (String.concat ", " hb.Pipeline.racy_objects)

(* ---------------- Figure 3: loop peeling ---------------------------- *)

let fig3_src =
  {|
  class A { int f; }
  class Main {
    static void main() {
      A a = new A();
      int n = 100;
      for (int i = 0; i < n; i = i + 1) {
        a.f = i;        // S12/S13: PEI (null check) + write + trace
      }
      print("f", a.f);
    }
  }
|}

let figure3 () =
  fpf "Figure 3: Loop peeling optimization@.@.";
  let show name config =
    let compiled = Pipeline.compile config ~source:fig3_src in
    let r = Pipeline.run compiled in
    fpf "%s: %d trace statements, %d eliminated, %d dynamic events@." name
      compiled.Pipeline.traces_inserted compiled.Pipeline.traces_eliminated
      r.Pipeline.events;
    compiled
  in
  (* The demo program is single-threaded, so the static datarace set
     would empty it; disable static analysis to show the
     instrumentation-level transformation in isolation. *)
  let before =
    show "before (no optimization)    "
      { Config.no_dominators with Config.static_analysis = false }
  in
  let mid =
    show "weaker-than only (NoPeeling)"
      { Config.no_peeling with Config.static_analysis = false }
  in
  let after =
    show "peeling + weaker-than       "
      { Config.full with Config.static_analysis = false }
  in
  ignore (before, mid);
  fpf "@.IR of Main.main after peeling and elimination:@.";
  (match Ir.find_mir after.Pipeline.prog "Main.main" with
  | Some m -> fpf "%a@." Drd_ir.Pretty.pp_mir m
  | None -> ());
  fpf "@."

(* ---------------- Section 8.1: why sor2 exists ---------------------- *)

(* "We derived sor2 from the original sor benchmark by manually hoisting
   loop invariant array subscript expressions out of inner loops ... it
   has significant impact on the effectiveness of our optimizations." *)
let sor_vs_sor2 () =
  fpf "Section 8.1: the effect of hoisting subscripts (sor vs sor2)@.";
  fpf "%-6s %-14s %10s %10s@." "" "" "traces" "events";
  let rows = ref [] in
  List.iter
    (fun (name, source) ->
      List.iter
        (fun (config : Config.t) ->
          let compiled = Pipeline.compile config ~source in
          let r = Pipeline.run compiled in
          fpf "%-6s %-14s %10d %10d@." name config.Config.name
            compiled.Pipeline.traces_inserted r.Pipeline.events;
          rows := ((name, config.Config.name), r.Pipeline.events) :: !rows)
        [ Config.full; Config.no_dominators ])
    [ ("sor", Programs.sor ()); ("sor2", Programs.sor2 ()) ];
  fpf
    "Without hoisting the row references are reloaded per iteration, so@.";
  fpf
    "their value numbers are fresh and the peeled traces cover nothing:@.";
  fpf "sor gains almost nothing from the dominator/peeling machinery,@.";
  fpf "while sor2 collapses — exactly why the authors made sor2.@.@.";
  List.rev !rows

(* ---------------- Section 8.2: space ------------------------------- *)

let space () =
  fpf "Section 8.2: space consumed by the detector (tsp)@.";
  let b = Option.get (Programs.find "tsp") in
  let _, r = Pipeline.run_source Config.full b.Programs.b_source in
  fpf "per-location tries: %d nodes for %d memory locations@."
    r.Pipeline.trie_nodes r.Pipeline.locations_tracked;
  (* The multi-location packing scheme the paper alludes to. *)
  let compiled = Pipeline.compile Config.full ~source:b.Programs.b_source in
  let log, _ = Pipeline.record_log compiled in
  let coll = Drd_core.Report.collector () in
  let det =
    Drd_core.Detector.create
      ~config:
        {
          Drd_core.Detector.default_config with
          Drd_core.Detector.history = Drd_core.Detector.Packed;
        }
      coll
  in
  Drd_core.Event_log.replay log det;
  let ps = Drd_core.Detector.stats det in
  fpf "packed trie:        %d shared nodes for the same %d locations@.@."
    ps.Drd_core.Detector.trie_nodes ps.Drd_core.Detector.locations_tracked;
  (r.Pipeline.trie_nodes, r.Pipeline.locations_tracked)

(* ---------------- Section 8.3: the mtrt join idiom ------------------ *)

let join_example () =
  fpf "Section 8.3: I/O statistics under a common lock + join (mtrt)@.";
  let b = Option.get (Programs.find "mtrt") in
  let ours = snd (Pipeline.run_source Config.full b.Programs.b_source) in
  let eraser = snd (Pipeline.run_source Config.eraser b.Programs.b_source) in
  let stats_flagged objs = List.exists (contains_sub "Stats") objs in
  fpf "our detector:    Stats flagged = %b (locksets {S1,sync},{S2,sync},{S1,S2}@."
    (stats_flagged ours.Pipeline.racy_objects);
  fpf "                 are mutually intersecting: no race)@.";
  fpf "Eraser baseline: Stats flagged = %b (no single common lock)@.@."
    (stats_flagged eraser.Pipeline.racy_objects)

(* ---------------- Section 9: baselines ------------------------------ *)

let baselines () =
  fpf "Section 9: precision/overhead comparison with baselines@.";
  fpf "%-10s %6s %8s %9s %15s@." "Example" "Full" "Eraser" "ObjRace"
    "HappensBefore";
  let rows =
    List.map
      (fun (b : Programs.benchmark) ->
        let count config =
          List.length
            (snd (Pipeline.run_source config b.Programs.b_source))
              .Pipeline.racy_objects
        in
        let cells =
          List.map count
            [ Config.full; Config.eraser; Config.objrace; Config.happens_before ]
        in
        fpf "%-10s %6d %8d %9d %15d@." b.Programs.b_name (List.nth cells 0)
          (List.nth cells 1) (List.nth cells 2) (List.nth cells 3);
        (b.Programs.b_name, cells))
      Programs.paper_benchmarks
  in
  fpf "@.";
  rows
