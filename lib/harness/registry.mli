(** The name-keyed detector registry.

    One row per race-detection technique, each packaged behind
    {!Drd_core.Detector_intf.S}: the paper detector
    ({!Drd_core.Detector.Standard}) plus the three baselines.  The CLI
    (`--detector NAME`) and the differential arena resolve techniques
    here; `lib/harness/pipeline.ml` drives whichever module a
    configuration denotes through the one interface instead of
    per-baseline plumbing. *)

type entry = {
  name : string;  (** Canonical registry name, e.g. ["vclock"]. *)
  aliases : string list;  (** Accepted synonyms, e.g. ["hb"]. *)
  detector : Config.detector;
      (** The configuration variant the name denotes. *)
  impl : (module Drd_core.Detector_intf.S);
}

val all : entry list
(** [paper], [eraser], [objrace], [vclock] — in presentation order. *)

val names : unit -> string list

val find : string -> entry option
(** Case-insensitive lookup by name or alias. *)

val of_detector : Config.detector -> entry option
(** The entry implementing a configuration's detector; [None] for
    [NoDetect]. *)

val describe : entry -> string

val apply : entry -> Config.t -> Config.t
(** The canonical harness configuration for running [entry]: keeps the
    caller's configuration when it already selects the paper detector,
    otherwise the baseline's standard row (no static filtering, no join
    pseudo-locks, per-object granularity for objrace) with the caller's
    seed/quantum/policy carried over. *)
