(** The end-to-end pipeline of the paper's Figure 1: static datarace
    analysis → optimized instrumentation → execution with the runtime
    optimizer and detector — assembled according to a {!Config.t}. *)

module Ir = Drd_ir.Ir
module Link = Drd_ir.Link
module Interp = Drd_vm.Interp
module Value = Drd_vm.Value
open Drd_core

type compiled = {
  prog : Ir.program;
  image : Link.image;
      (** The flat executable image the link phase produced; the VM runs
          this, never the block IR. *)
  config : Config.t;
  traces_inserted : int;  (** Trace statements after static filtering. *)
  traces_eliminated : int;  (** Removed by static weaker-than. *)
  static_stats : Drd_static.Race_set.stats option;
  race_set : Drd_static.Race_set.t option;
      (** The static analysis results, kept for the Section 2.6
          static-peer listing. *)
  compile_time : float;  (** Seconds spent in analysis + instrumentation. *)
}

type engine = [ `Linked | `Ref | `Spec ]
(** Which interpreter executes the program: [`Spec] is the production
    engine — the flat {!Link.image} with its link-time specialized trace
    sites taking their fast paths; [`Linked] runs the very same image
    with the fast paths disabled (specialized ops degrade to generic
    ones when the sink installs no [spec] handler); [`Ref] is the frozen
    pre-link block interpreter ({!Drd_vm.Interp_ref}), kept for the
    golden byte-identity suite and as the `bench --vm` baseline.  All
    three produce bit-identical schedules, event streams and reports;
    only detector-internal statistics may differ under [`Spec]. *)

exception Compile_error of string
(** A frontend failure (lexing, parsing or typechecking), with the
    source position rendered into the message.  Distinct from runtime
    failures: a program that does not compile fails the same way every
    run, so campaign runners treat it as fatal up front rather than as
    per-run failure rows, and the CLI maps it to its usage-error exit
    (the input is broken, not the data produced from it). *)

val compile : Config.t -> source:string -> compiled
(** Parse, typecheck, (optionally) peel, lower, analyze, instrument and
    link one program.  Raises {!Compile_error} on invalid source and
    {!Drd_ir.Link.Link_error} on an unlinkable program.

    A [compiled] is freely reusable across runs ({!run} mutates no
    compiled state) but must stay on the domain that compiled it:
    instrumentation and linking mutate the IR in place and runs share
    the image's site tables, so pool workers each compile their own
    copy once and reuse it for every run they claim. *)

type result = {
  races : string list;
      (** Decoded racy location names, sorted (one per location). *)
  racy_objects : string list;
      (** Racy locations grouped to their object (or static field), the
          unit Table 3 counts. *)
  report : Report.collector option;  (** Our detector's reports. *)
  detector_stats : Detector.stats option;
  events : int;  (** Access events emitted by the program. *)
  prints : (string * Value.t option) list;
  steps : int;  (** Instructions executed. *)
  threads : int;  (** Dynamic thread count (Table 1). *)
  wall_time : float;  (** Seconds of VM execution. *)
  trie_nodes : int;
  locations_tracked : int;
  heap : Drd_vm.Heap.t;  (** Final heap, for decoding identities. *)
  deadlocks : Lock_order.report list;
      (** Potential deadlocks from the dynamic lock-order graph (the
          paper's Section 10 future work), when running our detector. *)
  immutability : Immutability.summary option;
      (** Dynamic immutability classification of the traced locations
          (Section 10 future work), when running our detector. *)
  spec_events : int;
      (** Events that arrived through specialized trace ops; 0 unless
          the [`Spec] engine ran an image with specialized sites. *)
  site_stats : (int array * int array) option;
      (** Per-site (events seen, fast-path drops), indexed by site id;
          present only under [~site_stats:true]. *)
}

val vm_config_of : Config.t -> Interp.config
(** The VM configuration a harness configuration denotes (seed, quantum,
    granularity, pseudo-locks, scheduling policy). *)

type pooled_detector =
  | Pooled :
      (module Detector_intf.S with type t = 'a) * 'a
      -> pooled_detector
      (** A detector instance packed with its module, so it can be reset
          and reused across runs without re-allocating. *)

val pool_detector : (module Detector_intf.S) -> pooled_detector
(** Allocate one instance of a detector module for pooling. *)

(** A resettable per-worker run context: every piece of mutable state a
    {!run} needs — the VM context (heap, thread/monitor tables, PCT
    priorities), the detector with its tries, caches and ownership
    table, the report collector, lock-order graph, immutability tracker
    and (when the image carries static facts) the specialized-trace
    scratch — allocated once and reset in place at the start of each
    run.  A run with a context is byte-identical to one without; only
    the allocation behaviour differs.  Contexts are single-domain and
    bound to the [compiled] they were created from. *)
module Run_ctx : sig
  type t

  val create : compiled -> t
  (** Allocate a context sized for [compiled]'s configuration: the
      detector matching [config.detector], plus VM and spec state. *)

  val compiled : t -> compiled
  (** The program this context is bound to. *)
end

val run :
  ?ctx:Run_ctx.t ->
  ?vm:Interp.config ->
  ?tap:Drd_vm.Sink.t ->
  ?detect:bool ->
  ?engine:engine ->
  ?site_stats:bool ->
  compiled ->
  result
(** Execute the compiled program under its configuration's detector.
    [?vm] overrides the VM configuration (the exploration engine swaps
    seed/quantum/policy per run without recompiling); [?tap] receives a
    copy of every VM notification alongside the detector (schedule
    fingerprinting, event counting).  [?detect:false] runs the {e same}
    instrumented program — so the schedule is bit-identical — but skips
    all detector work, leaving only event counting and the tap; the
    exploration engine uses it for fingerprint-only passes when replay
    pruning decides whether the detector pass is needed at all.
    [?engine] (default [`Spec]) selects the interpreter; [`Linked] and
    [`Ref] exist for golden-identity checking and benchmarking.
    [?site_stats:true] additionally counts events and fast-path drops
    per trace site (a small per-event cost; off by default).

    [?ctx] runs inside a pooled {!Run_ctx.t} instead of allocating fresh
    state: the context is reset at the start of the run, and the report
    is byte-identical to a fresh-context run.  The returned [heap] and
    [report] alias the context's state — read them before the next run
    on the same context.  Raises [Invalid_argument] if [ctx] was created
    from a different [compiled].  If the run raises
    {!Interp.Runtime_error}, the context stays valid and fully resets on
    its next use. *)

val run_source : Config.t -> string -> compiled * result

val names_of : compiled -> result -> Names.t
(** A names registry for pretty-printing this run's reports. *)

val static_peers_of_site : compiled -> Drd_core.Event.site_id -> string list
(** For a dynamic report's source site, the statically-possible racing
    statements (paper Section 2.6), rendered as
    ["Class.method:line (write f)"].  Empty when static analysis was
    not run. *)

val record_log : ?engine:engine -> compiled -> Event_log.t * Interp.result
(** Post-mortem mode, phase 1 (paper Section 1): execute the
    instrumented program recording the full event stream instead of
    detecting online.  [?engine] as in {!run}. *)

val detect_post_mortem :
  Config.t -> Event_log.t -> Report.collector * Detector.stats
(** Post-mortem mode, phase 2: run the detection phase off-line over a
    recorded log.  Produces exactly the online reports for the same
    configuration. *)

val sink_of_module :
  (module Detector_intf.S with type t = 'a) ->
  'a ->
  wrap_access:
    ((tid:Event.thread_id ->
     loc:Event.loc_id ->
     kind:Event.kind ->
     locks:Lockset_id.id ->
     site:Event.site_id ->
     unit) ->
    tid:Event.thread_id ->
    loc:Event.loc_id ->
    kind:Event.kind ->
    locks:Lockset_id.id ->
    site:Event.site_id ->
    unit) ->
  Drd_vm.Sink.t
(** The event sink driving one {!Detector_intf.S} instance: every VM
    callback routed to the matching hook, virtual-call receiver events
    only when the detector asks for them ([needs_call_events]).
    [wrap_access] interposes on the access path (event counting). *)

type module_run = {
  m_races : string list;
      (** Decoded racy location names, sorted (one per location). *)
  m_race_count : int;
  m_events : int;  (** Access events emitted by the program. *)
  m_steps : int;  (** Instructions executed. *)
}

val run_module :
  ?vm:Interp.config ->
  ?engine:engine ->
  (module Detector_intf.S) ->
  compiled ->
  module_run
(** Execute a compiled program with {e any} detector behind
    {!Detector_intf.S} — the one code path the differential arena uses
    for every technique, the paper detector
    ({!Detector.Standard}) included.  Granularity, pseudo-locks and the
    schedule still come from [compiled.config] (override with [?vm]);
    the module only consumes the event stream.  Module-driven runs
    install no specialized-trace handler, so [`Spec] behaves exactly
    like [`Linked]. *)

val replay_module :
  (module Detector_intf.S) -> Event_log.t -> Event.loc_id list * int
(** Post-mortem replay of a recorded log through any detector module:
    [(racy locations, events seen)].  The generic sibling of
    {!detect_post_mortem}.  Equivalent to
    [replay_pooled (pool_detector m) log]. *)

val replay_pooled : pooled_detector -> Event_log.t -> Event.loc_id list * int
(** Like {!replay_module}, but through a pooled instance that is reset
    before the replay — one allocation serves any number of logs. *)
