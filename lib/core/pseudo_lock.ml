type t = {
  dummy : (Event.thread_id, Event.lock_id) Hashtbl.t;
  held : (Event.thread_id, Lockset_id.id) Hashtbl.t;
}

let create () = { dummy = Hashtbl.create 16; held = Hashtbl.create 16 }

let reset t =
  Hashtbl.clear t.dummy;
  Hashtbl.clear t.held

let locks_of t tid =
  match Hashtbl.find t.held tid with
  | id -> id
  | exception Not_found -> Lockset_id.empty

let add_lock t tid l =
  Hashtbl.replace t.held tid (Lockset_id.add l (locks_of t tid))

let on_thread_start t tid s =
  Hashtbl.replace t.dummy tid s;
  add_lock t tid s

let on_join t ~joiner ~joinee =
  match Hashtbl.find_opt t.dummy joinee with
  | Some s -> add_lock t joiner s
  | None -> ()

let dummy_of t tid = Hashtbl.find_opt t.dummy tid
