(** The ownership model (paper Sections 2.3 and 7).

    The owner of a location is the first thread to access it.  Accesses
    by the owner are invisible to the detector until a second thread
    touches the location, at which point it becomes {e shared} and every
    access from then on (starting with the one that caused the
    transition) is forwarded.  This approximates the happened-before
    ordering induced by [Thread.start] for the common initialize-then-
    hand-off idiom without tracking start edges explicitly. *)

type t

val create : unit -> t

val reset : t -> unit
(** Forget every location in place, keeping the table's grown bucket
    capacity: equivalent to {!create} for all observable behaviour. *)

(** Result of filtering one access. *)
type verdict =
  | Owned_skip  (** The current thread owns the location: drop the event. *)
  | Became_shared
      (** First access by a non-owner: forward the event, and evict the
          location from every thread's cache (Section 7.2). *)
  | Already_shared  (** The location is shared: forward the event. *)

val check : t -> thread:Event.thread_id -> loc:Event.loc_id -> verdict

val forget : t -> Event.loc_id -> unit
(** Drop all ownership state for [loc], as if it had never been
    accessed: the next access re-enters the owned state.  Used when the
    detector retires a quiescent location ({!Detector} eviction) — its
    whole per-location state must go at once, or a stale shared-state
    entry would forward events whose access history no longer exists. *)

val is_shared : t -> Event.loc_id -> bool

val owner : t -> Event.loc_id -> Event.thread_id option
(** [owner o loc] is the owning thread, or [None] if the location is
    shared or was never accessed. *)

val shared_count : t -> int
(** Number of locations that have transitioned to the shared state. *)

val tracked_count : t -> int
(** Number of locations ever observed (owned or shared). *)
