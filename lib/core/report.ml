type race = { loc : Event.loc_id; current : Event.t; prior : Trie.prior }

let pp_race names ppf (r : race) =
  let open Event in
  Fmt.pf ppf
    "@[<v2>DATARACE on %s:@ current: T%d %a at %s holding %a@ earlier: %a %a \
     at %s holding %a@]"
    (Names.loc_name names r.loc) r.current.thread pp_kind r.current.kind
    (Names.site_name names r.current.site)
    (Names.pp_lockset names) (Event.lockset r.current) pp_thread_info
    r.prior.Trie.p_thread pp_kind r.prior.Trie.p_kind
    (Names.site_name names r.prior.Trie.p_site)
    (Names.pp_lockset names)
    (Lockset_id.set_of r.prior.Trie.p_locks)

type collector = {
  mutable acc : race list; (* reverse order *)
  seen : (Event.loc_id, unit) Hashtbl.t;
}

let collector () = { acc = []; seen = Hashtbl.create 64 }

let reset c =
  c.acc <- [];
  Hashtbl.clear c.seen

let add c r =
  if not (Hashtbl.mem c.seen r.loc) then begin
    Hashtbl.replace c.seen r.loc ();
    c.acc <- r :: c.acc
  end

let races c = List.rev c.acc
let count c = Hashtbl.length c.seen
let racy_locs c = List.rev_map (fun r -> r.loc) c.acc

let pp names ppf c =
  Fmt.pf ppf "@[<v>%a@]" (Fmt.list (pp_race names)) (races c)
