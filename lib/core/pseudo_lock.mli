(** Join pseudo-locks (paper Section 2.3).

    To model the happened-before ordering of [Thread.join] with pure
    mutual exclusion, every thread [T_j] gets a dummy lock [S_j] that it
    conceptually holds for its entire lifetime, and every thread that
    joins on [T_j] acquires [S_j] (forever) once the join completes.
    Accesses before a join and accesses inside the joined thread then
    share [S_j], so they can never appear racy.

    Pseudo-locks are never released, so a thread's pseudo-lockset only
    grows; consequently they are exempt from the cache eviction machinery
    (see {!Cache}). *)

type t

val create : unit -> t

val reset : t -> unit
(** Forget every registered pseudo-lock in place, keeping table
    capacity. *)

val on_thread_start : t -> Event.thread_id -> Event.lock_id -> unit
(** Register [S_j] for a newly started thread [j] and add it to [j]'s
    pseudo-lockset.  The caller supplies the lock identity, which must
    be disjoint from every real lock (the VM allocates hidden heap
    objects named "S_<j>"). *)

val on_join : t -> joiner:Event.thread_id -> joinee:Event.thread_id -> unit
(** After [joiner] successfully joins on [joinee], add [S_joinee] to
    [joiner]'s pseudo-lockset. *)

val locks_of : t -> Event.thread_id -> Lockset_id.id
(** The pseudo-locks currently attributed to a thread, interned; the VM
    unions this into the lockset of every access event of that thread. *)

val dummy_of : t -> Event.thread_id -> Event.lock_id option
(** [dummy_of t j] is [S_j] if thread [j] was registered. *)
