(** A packed access-history trie: one trie for {e all} memory locations.

    The paper's Section 8.2 mentions "a scheme for packing information
    for multiple locations into one trie which we cannot present due to
    space limitations"; this module is a faithful realization of that
    idea.  Programs hold few distinct locksets but touch many locations,
    so per-location tries duplicate the same lock paths thousands of
    times.  Here the lockset paths are shared: each node carries a small
    per-location summary table for the locations accessed with exactly
    that lockset.

    The per-event protocol is observationally identical to
    {!Trie.process} on a per-location trie (property-tested); only the
    space changes — see {!node_count} vs {!summary_count} and the
    [--space] bench. *)

type t

val create : unit -> t

val process : t -> Event.t -> Trie.prior option * bool
(** Same contract as {!Trie.process}: the race check always runs; the
    history update is skipped when a stored weaker access exists;
    returns the race found and whether the event was redundant. *)

val node_count : t -> int
(** Trie nodes allocated — shared across all locations. *)

val clear : t -> unit
(** Return the packed trie to its freshly-created state in place: the
    root's summary table keeps its bucket capacity, so a reused trie
    observes identically to a fresh one but without the rebuild cost. *)

val summary_count : t -> int
(** Per-(lockset, location) access summaries stored — the analogue of
    the non-[Top] nodes of the per-location tries. *)

val locations : t -> int
(** Distinct locations with at least one stored summary. *)
