type thread_id = int
type lock_id = int
type loc_id = int
type site_id = int

type kind = Read | Write

type thread_info = Thread of thread_id | Bot | Top

(* The reference set representation, re-exported for construction,
   rendering and tests; the event itself carries an interned id. *)
module Lockset = Lockset

type t = {
  loc : loc_id;
  thread : thread_id;
  locks : Lockset_id.id;
  kind : kind;
  site : site_id;
}

let make ~loc ~thread ~locks ~kind ~site =
  { loc; thread; locks = Lockset_id.intern locks; kind; site }

let make_interned ~loc ~thread ~locks ~kind ~site =
  { loc; thread; locks; kind; site }

let lockset e = Lockset_id.set_of e.locks

let equal e1 e2 =
  e1.loc = e2.loc && e1.thread = e2.thread && e1.kind = e2.kind
  && e1.site = e2.site
  && Lockset_id.equal e1.locks e2.locks

let is_race e1 e2 =
  e1.loc = e2.loc
  && e1.thread <> e2.thread
  && Lockset_id.disjoint e1.locks e2.locks
  && (e1.kind = Write || e2.kind = Write)

let kind_leq a1 a2 = a1 = Write || a1 = a2

let thread_leq t1 t2 = t1 = Bot || t1 = t2

let kind_meet a1 a2 = if a1 = a2 then a1 else Write

let thread_meet t1 t2 =
  match (t1, t2) with
  | Top, t | t, Top -> t
  | Thread i, Thread j when i = j -> t1
  | _ -> Bot

let weaker_than p q =
  p.loc = q.loc
  && Lockset_id.subset p.locks q.locks
  && p.thread = q.thread
  && kind_leq p.kind q.kind

let stored_weaker_than ~thread ~kind ~locks q =
  Lockset_id.subset locks q.locks
  && thread_leq thread (Thread q.thread)
  && kind_leq kind q.kind

let pp_kind ppf = function
  | Read -> Fmt.string ppf "read"
  | Write -> Fmt.string ppf "write"

let pp_thread_info ppf = function
  | Thread i -> Fmt.pf ppf "T%d" i
  | Bot -> Fmt.string ppf "t_bot"
  | Top -> Fmt.string ppf "t_top"

let pp ppf e =
  Fmt.pf ppf "(m=%d, t=T%d, L=%a, a=%a, s=%d)" e.loc e.thread Lockset_id.pp
    e.locks pp_kind e.kind e.site
