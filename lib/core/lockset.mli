(** Sets of lock identities — the reference, purely-functional lockset
    representation ([Set.Make (Int)]).

    This is the semantic ground truth for lockset algebra: the interning
    layer {!Lockset_id} must agree with it operation-for-operation (a
    property the test suite checks on randomized pairs).  The hot
    detector pipeline works on interned {!Lockset_id.id} values and only
    materializes a [Lockset.t] at rendering or test boundaries;
    re-exported as [Event.Lockset] for compatibility. *)

type t

val empty : t

val is_empty : t -> bool

val singleton : int -> t

val add : int -> t -> t

val remove : int -> t -> t

val mem : int -> t -> bool

val subset : t -> t -> bool
(** [subset a b] is [true] iff every lock of [a] is in [b]. *)

val disjoint : t -> t -> bool
(** [disjoint a b] is [true] iff [a] and [b] share no lock; this is the
    third datarace condition, [a.L] ∩ [b.L] = ∅. *)

val inter : t -> t -> t

val union : t -> t -> t

val equal : t -> t -> bool

val cardinal : t -> int

val of_list : int list -> t

val to_sorted_list : t -> int list
(** Elements in strictly increasing order; this is the canonical trie
    path for the lockset. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a

val pp : t Fmt.t
