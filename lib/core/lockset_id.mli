(** Interned (hash-consed) locksets.

    Every distinct lockset is mapped to a small integer {!id}; two
    locksets are equal iff their ids are equal.  The lattice relations
    the detector evaluates on its hot path — subset (the weaker-than
    check) and disjointness (the IsRace check) — are answered in O(1):
    by an exact bitset test when all locks involved are {e dense} (see
    below), and by a lazily-filled relation table keyed by id pairs
    otherwise.  Derived sets ([add]/[remove]/[inter]/[union]) are
    memoized the same way, so a VM that maintains each thread's current
    lockset id incrementally allocates nothing after warm-up.

    {b Density.}  Lock identities are heap object ids and therefore
    sparse; each distinct lock is assigned the next {e dense index} in
    first-seen order.  While fewer than 62 distinct locks have been
    seen, every lockset is represented exactly by an immediate-int
    bitmask and the relation table is never consulted.  Programs with
    more locks degrade gracefully: sets containing only early-seen locks
    keep their masks, others fall back to the memo tables backed by a
    sorted-array merge.

    {b Domain-locality.}  The interning universe lives in domain-local
    storage: ids must not cross OCaml domains.  Materialize with
    {!set_of} (or render) before shipping data to another domain. *)

type id = int
(** Interned lockset identity.  Only meaningful inside the domain that
    created it. *)

val empty : id
(** The empty lockset; id [0] in every universe. *)

val intern : Lockset.t -> id

val of_list : int list -> id

val set_of : id -> Lockset.t
(** The canonical {!Lockset.t} the id denotes; O(1), returns the shared
    hash-consed set. *)

val to_sorted_list : id -> int list

val sorted_array : id -> int array
(** The locks in strictly increasing order.  O(1); the returned array is
    the interning table's own storage — callers must not mutate it. *)

val mem : int -> id -> bool
(** Allocation-free membership: bitmask test when the set is dense,
    binary search otherwise. *)

val subset : id -> id -> bool

val disjoint : id -> id -> bool

val add : int -> id -> id

val remove : int -> id -> id

val singleton : int -> id

val inter : id -> id -> id

val union : id -> id -> id

val equal : id -> id -> bool

val compare : id -> id -> int

val is_empty : id -> bool

val cardinal : id -> int

val fold : (int -> 'a -> 'a) -> id -> 'a -> 'a

val uses_mask : id -> bool
(** Whether the id is represented by the dense bitmask fast path (for
    tests probing the density boundary). *)

val interned_count : unit -> int
(** Number of distinct locksets interned in this domain's universe. *)

val pp : id Fmt.t
