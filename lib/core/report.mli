(** Race reports (paper Sections 2.5 and 2.6).

    The detector guarantees that for every memory location involved in a
    datarace, at least one participating access is reported
    (Definition 1).  A report carries the racing access itself — the race
    is announced at the moment it occurs, so a debugger could suspend the
    program — plus the lockset (and, when known, the thread and site) of
    an earlier conflicting access. *)

type race = {
  loc : Event.loc_id;  (** The racy memory location. *)
  current : Event.t;  (** The access being performed when the race was found. *)
  prior : Trie.prior;  (** An earlier access it races with. *)
}

val pp_race : Names.t -> race Fmt.t

type collector
(** Accumulates races, deduplicating per memory location as the paper's
    tool does when counting reported objects. *)

val collector : unit -> collector

val reset : collector -> unit
(** Drop every recorded race in place; equivalent to a fresh
    {!collector} but keeps the dedup table's bucket capacity. *)

val add : collector -> race -> unit

val races : collector -> race list
(** All recorded reports in order of detection (first report per
    location only). *)

val count : collector -> int
(** Number of distinct racy locations reported. *)

val racy_locs : collector -> Event.loc_id list

val pp : Names.t -> collector Fmt.t
