type report = {
  dl_locks : Event.lock_id list;
  dl_threads : Event.thread_id list;
}

(* Edge l1 -> l2: the set of (thread, gate lockset) pairs under which
   some thread holding l1 acquired l2.  Gate locksets are the OTHER
   locks held at that moment (excluding l1 and l2). *)
type t = {
  held : (Event.thread_id, Event.lock_id list) Hashtbl.t; (* stack *)
  edges :
    (Event.lock_id * Event.lock_id,
     (Event.thread_id * Lockset_id.id) list ref)
    Hashtbl.t;
}

let create () = { held = Hashtbl.create 16; edges = Hashtbl.create 64 }

let reset t =
  Hashtbl.clear t.held;
  Hashtbl.clear t.edges

let stack_of t thread =
  match Hashtbl.find t.held thread with
  | held -> held
  | exception Not_found -> []

let on_acquire t ~thread ~lock =
  let held = stack_of t thread in
  (* Outermost acquisitions — the overwhelmingly common case in the
     exploration hot loop — record no edge and intern nothing. *)
  (match held with
  | [] -> ()
  | _ :: _ ->
      let gates = Lockset_id.of_list held in
      List.iter
        (fun l1 ->
          if l1 <> lock then begin
            let key = (l1, lock) in
            let r =
              match Hashtbl.find_opt t.edges key with
              | Some r -> r
              | None ->
                  let r = ref [] in
                  Hashtbl.add t.edges key r;
                  r
            in
            let gate = Lockset_id.remove l1 (Lockset_id.remove lock gates) in
            (* Keep only maximally-weak witnesses: a (thread, gates) pair
               is subsumed by one with the same thread and a subset of
               gates. *)
            if
              not
                (List.exists
                   (fun (th, g) -> th = thread && Lockset_id.subset g gate)
                   !r)
            then r := (thread, gate) :: !r
          end)
        held);
  Hashtbl.replace t.held thread (lock :: held)

let on_release t ~thread ~lock =
  match stack_of t thread with
  | l :: rest when l = lock -> Hashtbl.replace t.held thread rest
  | held ->
      (* Tolerate out-of-order notifications: drop the first match. *)
      let rec drop = function
        | [] -> []
        | x :: tl -> if x = lock then tl else x :: drop tl
      in
      Hashtbl.replace t.held thread (drop held)

let edge_count t = Hashtbl.length t.edges

let potential_deadlocks t =
  let seen = Hashtbl.create 8 in
  let reports = ref [] in
  Hashtbl.iter
    (fun (l1, l2) fwd ->
      if l1 < l2 then
        match Hashtbl.find_opt t.edges (l2, l1) with
        | None -> ()
        | Some bwd ->
            (* A 2-cycle: dangerous iff some forward witness and some
               backward witness come from different threads and share no
               gate lock. *)
            let danger =
              List.exists
                (fun (ta, ga) ->
                  List.exists
                    (fun (tb, gb) -> ta <> tb && Lockset_id.disjoint ga gb)
                    !bwd)
                !fwd
            in
            if danger && not (Hashtbl.mem seen (l1, l2)) then begin
              Hashtbl.replace seen (l1, l2) ();
              let threads =
                List.sort_uniq compare
                  (List.map fst !fwd @ List.map fst !bwd)
              in
              reports := { dl_locks = [ l1; l2 ]; dl_threads = threads } :: !reports
            end)
    t.edges;
  (* Longer cycles: DFS over the condensed edge set, reported without
     the gate refinement.  Only cycles not covered by a reported 2-cycle
     are added. *)
  let succs l =
    Hashtbl.fold
      (fun (a, b) _ acc -> if a = l then b :: acc else acc)
      t.edges []
  in
  let locks =
    Hashtbl.fold (fun (a, b) _ acc -> a :: b :: acc) t.edges []
    |> List.sort_uniq compare
  in
  let report_cycle cyc =
    let canon = List.sort compare cyc in
    if
      List.length canon > 2
      && not (List.exists (fun r -> List.sort compare r.dl_locks = canon) !reports)
    then begin
      let threads =
        Hashtbl.fold
          (fun (a, b) w acc ->
            if List.mem a cyc && List.mem b cyc then
              List.map fst !w @ acc
            else acc)
          t.edges []
        |> List.sort_uniq compare
      in
      if List.length threads >= 2 then
        reports := { dl_locks = canon; dl_threads = threads } :: !reports
    end
  in
  let rec dfs start path l =
    List.iter
      (fun nxt ->
        if nxt = start && List.length path >= 3 then report_cycle path
        else if (not (List.mem nxt path)) && List.length path < 6 then
          dfs start (nxt :: path) nxt)
      (succs l)
  in
  List.iter (fun l -> dfs l [ l ] l) locks;
  List.rev !reports
