type entry =
  | Access of Event.t
  | Acquire of Event.thread_id * Event.lock_id
  | Release of Event.thread_id * Event.lock_id
  | Thread_start of Event.thread_id * Event.thread_id
  | Thread_join of Event.thread_id * Event.thread_id
  | Thread_exit of Event.thread_id

(* Array-backed storage: recording is an amortized store, and replay
   iterates in place — the old reversed-list representation rebuilt the
   whole log as a fresh list (one cons per entry) on every [entries]
   call, which sat inside the timed region of the replay benchmarks. *)
type t = { mutable arr : entry array; mutable n : int }

let dummy = Thread_exit (-1)

let create () = { arr = [||]; n = 0 }

let record t e =
  let cap = Array.length t.arr in
  if t.n = cap then begin
    let arr = Array.make (max 1024 (cap * 2)) dummy in
    Array.blit t.arr 0 arr 0 cap;
    t.arr <- arr
  end;
  t.arr.(t.n) <- e;
  t.n <- t.n + 1

let length t = t.n

let iter f t =
  for i = 0 to t.n - 1 do
    f t.arr.(i)
  done

let entries t = Array.to_list (Array.sub t.arr 0 t.n)

let replay t det =
  iter
    (function
      | Access e -> Detector.on_access det e
      | Acquire (thread, lock) -> Detector.on_acquire det ~thread ~lock
      | Release (thread, lock) -> Detector.on_release det ~thread ~lock
      | Thread_start _ | Thread_join _ -> ()
      | Thread_exit thread -> Detector.on_thread_exit det ~thread)
    t

(* Text serialization: one entry per line.
     A <loc> <thread> <R|W> <site> <lock>*      access
     L <thread> <lock>                          acquire
     U <thread> <lock>                          release
     S <parent> <child>                         thread start
     J <joiner> <joinee>                        thread join
     X <thread>                                 thread exit *)

let entry_to_line e =
  let b = Buffer.create 32 in
  (match e with
  | Access e ->
      Printf.bprintf b "A %d %d %c %d" e.Event.loc e.Event.thread
        (match e.Event.kind with Event.Read -> 'R' | Event.Write -> 'W')
        e.Event.site;
      List.iter (Printf.bprintf b " %d")
        (Lockset_id.to_sorted_list e.Event.locks)
  | Acquire (t, l) -> Printf.bprintf b "L %d %d" t l
  | Release (t, l) -> Printf.bprintf b "U %d %d" t l
  | Thread_start (p, c) -> Printf.bprintf b "S %d %d" p c
  | Thread_join (j, e) -> Printf.bprintf b "J %d %d" j e
  | Thread_exit t -> Printf.bprintf b "X %d" t);
  Buffer.contents b

let to_channel oc t =
  iter
    (fun e ->
      output_string oc (entry_to_line e);
      output_char oc '\n')
    t

(* The single-line decoder every consumer shares: the whole-file parser
   below and the streaming daemon, which feeds one line at a time as it
   arrives on a socket and must never buffer the stream. *)
let entry_of_line line =
  if String.trim line = "" then Ok None
  else begin
    let exception Bad of string in
    let fail reason = raise (Bad (Printf.sprintf "%s in %S" reason line)) in
    let int_field name s =
      match int_of_string_opt s with
      | Some n -> n
      | None -> fail (Printf.sprintf "%s %S is not an integer" name s)
    in
    let parts = String.split_on_char ' ' (String.trim line) in
    match
      match parts with
      | "A" :: loc :: thread :: kind :: site :: locks ->
          let kind =
            match kind with
            | "R" -> Event.Read
            | "W" -> Event.Write
            | k -> fail (Printf.sprintf "access kind %S is not R or W" k)
          in
          (* Intern at the parse boundary: replaying a parsed log
             hits exactly the same interned-id hot path as the
             online pipeline. *)
          Access
            (Event.make_interned
               ~loc:(int_field "location" loc)
               ~thread:(int_field "thread" thread)
               ~locks:
                 (Lockset_id.of_list (List.map (int_field "lock") locks))
               ~kind
               ~site:(int_field "site" site))
      | [ "L"; t; l ] -> Acquire (int_field "thread" t, int_field "lock" l)
      | [ "U"; t; l ] -> Release (int_field "thread" t, int_field "lock" l)
      | [ "S"; p; c ] ->
          Thread_start (int_field "parent" p, int_field "child" c)
      | [ "J"; j; e ] ->
          Thread_join (int_field "joiner" j, int_field "joinee" e)
      | [ "X"; t ] -> Thread_exit (int_field "thread" t)
      | tag :: _ ->
          fail
            (Printf.sprintf
               "unknown entry tag %S (expected A, L, U, S, J or X) or \
                wrong field count"
               tag)
      | [] -> fail "empty entry"
    with
    | entry -> Ok (Some entry)
    | exception Bad m -> Error m
  end

let of_channel ic =
  let t = create () in
  let lineno = ref 0 in
  (try
     while true do
       let line = input_line ic in
       incr lineno;
       match entry_of_line line with
       | Ok None -> ()
       | Ok (Some entry) -> record t entry
       | Error m ->
           failwith (Printf.sprintf "Event_log: line %d: %s" !lineno m)
     done
   with End_of_file -> ());
  t

let equal_entry a b =
  match (a, b) with
  | Access x, Access y -> Event.equal x y
  | x, y -> x = y

let pp_entry ppf = function
  | Access e -> Fmt.pf ppf "access %a" Event.pp e
  | Acquire (t, l) -> Fmt.pf ppf "T%d acquires %d" t l
  | Release (t, l) -> Fmt.pf ppf "T%d releases %d" t l
  | Thread_start (p, c) -> Fmt.pf ppf "T%d starts T%d" p c
  | Thread_join (j, e) -> Fmt.pf ppf "T%d joins T%d" j e
  | Thread_exit t -> Fmt.pf ppf "T%d exits" t
