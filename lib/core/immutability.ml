type cls = Thread_local | Shared_immutable | Shared_mutable

type state =
  | Local of Event.thread_id (* single thread so far *)
  | Shared of bool (* true = written after publication *)

type t = { tbl : (Event.loc_id, state) Hashtbl.t }

let create () = { tbl = Hashtbl.create 1024 }

let reset t = Hashtbl.clear t.tbl

(* Scalar entry point for the hot path; [find] + [Not_found] avoids the
   [Some] allocation of [find_opt] on every access. *)
let record t ~thread ~loc ~(kind : Event.kind) =
  match Hashtbl.find t.tbl loc with
  | Local owner when owner = thread -> ()
  | Local _ ->
      (* Publication: the access that shares the location counts as a
         post-publication access. *)
      Hashtbl.replace t.tbl loc (Shared (kind = Event.Write))
  | Shared true -> ()
  | Shared false ->
      if kind = Event.Write then Hashtbl.replace t.tbl loc (Shared true)
  | exception Not_found -> Hashtbl.replace t.tbl loc (Local thread)

let on_access t (e : Event.t) =
  record t ~thread:e.thread ~loc:e.loc ~kind:e.kind

let classify t loc =
  match Hashtbl.find_opt t.tbl loc with
  | None -> None
  | Some (Local _) -> Some Thread_local
  | Some (Shared false) -> Some Shared_immutable
  | Some (Shared true) -> Some Shared_mutable

type summary = {
  thread_local : int;
  shared_immutable : int;
  shared_mutable : int;
}

let summary t =
  let local = ref 0 and imm = ref 0 and mut = ref 0 in
  Hashtbl.iter
    (fun _ st ->
      match st with
      | Local _ -> incr local
      | Shared false -> incr imm
      | Shared true -> incr mut)
    t.tbl;
  { thread_local = !local; shared_immutable = !imm; shared_mutable = !mut }

let shared_mutable_locs t =
  Hashtbl.fold
    (fun loc st acc -> match st with Shared true -> loc :: acc | _ -> acc)
    t.tbl []
  |> List.sort compare

let pp_summary ppf s =
  Fmt.pf ppf
    "thread-local: %d, shared-immutable: %d, shared-mutable: %d"
    s.thread_local s.shared_immutable s.shared_mutable
