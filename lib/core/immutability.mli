(** Dynamic immutability analysis — the second item of the paper's
    future work (Section 10: "other problems such as deadlock detection
    and immutability analysis").

    Each memory location is classified by its observed access pattern:

    - {e thread-local}: touched by a single thread only;
    - {e shared-immutable}: written only during its initialization phase
      (before a second thread touched it) and read-only afterwards — the
      initialize-then-publish pattern that needs no locking;
    - {e shared-mutable}: written after publication.

    Shared-immutable locations are exactly the ones a programmer could
    annotate as final/immutable; shared-mutable ones are where locking
    discipline matters. *)

type cls = Thread_local | Shared_immutable | Shared_mutable

type t

val create : unit -> t

val reset : t -> unit
(** Forget every classification in place, keeping table capacity. *)

val on_access : t -> Event.t -> unit

val record :
  t -> thread:Event.thread_id -> loc:Event.loc_id -> kind:Event.kind -> unit
(** Scalar equivalent of {!on_access}, for event sources that have not
    materialized an {!Event.t}; allocation-free. *)

val classify : t -> Event.loc_id -> cls option
(** [None] if the location was never accessed. *)

type summary = {
  thread_local : int;
  shared_immutable : int;
  shared_mutable : int;
}

val summary : t -> summary

val shared_mutable_locs : t -> Event.loc_id list
(** The locations where synchronization discipline actually matters. *)

val pp_summary : summary Fmt.t
