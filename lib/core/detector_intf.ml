(** The common shape of every race detector in the repo.

    [S] is the contract the harness ({!Drd_harness.Pipeline}) and the
    differential arena ([Drd_arena]) program against: one constructor,
    one scalar access entry point, the synchronization hooks the VM can
    emit, and report extraction.  {!Detector.Standard} packages the
    paper detector this way; the baselines in [Drd_baselines] satisfy
    it directly.

    Hooks a detector does not use are required to be no-ops rather than
    absent — the driver installs every callback unconditionally and the
    detector ignores what it does not model (Eraser, for instance,
    ignores thread start/join, which is exactly its documented
    imprecision).  The single opt-in is [needs_call_events]: virtual
    call receiver events are only worth routing to detectors that treat
    a method invocation as an access (the object-granularity
    baseline). *)

module type S = sig
  type t

  val id : string
  (** Registry name, e.g. ["paper"] or ["eraser"]. *)

  val describe : string
  (** One-line human description for [racedet list]. *)

  val needs_call_events : bool
  (** Whether {!on_call} does anything: when [false] the driver may
      skip routing virtual-call receiver events entirely. *)

  val create : unit -> t

  val on_access_interned :
    t ->
    loc:Event.loc_id ->
    thread:Event.thread_id ->
    locks:Lockset_id.id ->
    kind:Event.kind ->
    site:Event.site_id ->
    unit
  (** The primary entry point: one access event as five scalars. *)

  val on_call :
    t ->
    thread:Event.thread_id ->
    obj_loc:Event.loc_id ->
    locks:Lockset_id.id ->
    site:Event.site_id ->
    unit
  (** Virtual method invocation on a receiver object (a write to the
      whole object under object-granularity detection).  No-op unless
      [needs_call_events]. *)

  val on_acquire : t -> thread:Event.thread_id -> lock:Event.lock_id -> unit

  val on_release : t -> thread:Event.thread_id -> lock:Event.lock_id -> unit

  val on_thread_start :
    t -> parent:Event.thread_id -> child:Event.thread_id -> unit

  val on_thread_join :
    t -> joiner:Event.thread_id -> joinee:Event.thread_id -> unit

  val on_thread_exit : t -> thread:Event.thread_id -> unit

  val reset : t -> unit
  (** Return the detector to its freshly-created state in place,
      keeping grown table/array capacity.  A reset instance must be
      observationally indistinguishable from [create ()]: pooled
      pipelines replay a new execution into the same instance and
      require byte-identical reports. *)

  val racy_locs : t -> Event.loc_id list
  (** Distinct racy locations, first report per location, in detection
      order. *)

  val race_count : t -> int

  val events_seen : t -> int
end
