(** Access events and the weaker-than lattice (paper Sections 2.4 and 3.1).

    An access event is the 5-tuple [(m, t, L, a, s)]: memory location,
    thread, lockset, access kind and source site.  This module defines the
    event representation shared by the whole detector pipeline, together
    with the [IsRace] predicate and the weaker-than partial order that
    justifies discarding redundant events.

    The lockset component is an {e interned} {!Lockset_id.id}: the VM
    maintains each thread's current lockset id incrementally (recomputed
    only at lock acquire/release, never per access), so an event is five
    scalars and the lattice checks below — subset for weaker-than,
    disjointness for IsRace — are O(1) bitset tests or relation-table
    lookups instead of O(n log n) functional-set walks. *)

type thread_id = int
(** Identity of a program thread.  Thread ids are small non-negative
    integers assigned by the VM in creation order; id [0] is the main
    thread. *)

type lock_id = int
(** Identity of a lock.  Real locks are identified by the heap id of the
    monitor object; per-thread join pseudo-locks (Section 2.3) are
    hidden heap objects allocated by the VM, so they live in the same
    non-negative id space without colliding — see {!Pseudo_lock}. *)

type loc_id = int
(** Identity of a logical memory location: an (object, field) pair, a
    static field, or a whole array (the paper's footnote 1 merges all
    elements of an array into one location).  The mapping from concrete
    locations to ids is owned by the event source; see
    {!Names.register_loc}. *)

type site_id = int
(** Identity of a source location (statement) used only for race
    reporting, see {!Names.register_site}. *)

(** Access kind; the paper's [a] component. *)
type kind =
  | Read
  | Write

(** Thread lattice element stored in access-history trie nodes
    (Section 3.1/3.2).  [Bot] is the pseudothread [t_bot], "at least two
    distinct threads"; [Top] is [t_top], "no threads", used for internal
    trie nodes holding no access. *)
type thread_info =
  | Thread of thread_id
  | Bot
  | Top

module Lockset = Lockset
(** The reference set representation, for construction, rendering and
    tests.  Hot-path code works on {!Lockset_id.id} instead. *)

type t = {
  loc : loc_id;
  thread : thread_id;
  locks : Lockset_id.id;
  kind : kind;
  site : site_id;
}
(** An access event.  New events always carry a concrete thread; only
    stored history entries can degrade to {!Bot}. *)

val make :
  loc:loc_id ->
  thread:thread_id ->
  locks:Lockset.t ->
  kind:kind ->
  site:site_id ->
  t
(** Construct an event from a reference lockset, interning it.  Cold
    constructor for tests and boundaries; hot paths that already hold an
    interned id use {!make_interned}. *)

val make_interned :
  loc:loc_id ->
  thread:thread_id ->
  locks:Lockset_id.id ->
  kind:kind ->
  site:site_id ->
  t
(** Construct an event from an already-interned lockset id; allocates
    exactly the record. *)

val lockset : t -> Lockset.t
(** The event's lockset materialized as a reference set (O(1): the
    canonical hash-consed set). *)

val equal : t -> t -> bool
(** Componentwise equality (locksets compared by interned id, which by
    hash-consing coincides with set equality). *)

val is_race : t -> t -> bool
(** [is_race e1 e2] is the paper's [IsRace] predicate: same location,
    different threads, disjoint locksets, and at least one write. *)

val kind_leq : kind -> kind -> bool
(** [kind_leq a1 a2] is the access-kind order [a1 ⊑ a2]: [a1 = a2] or
    [a1 = Write].  A write is weaker than (covers) a read at the same
    location because it can race with strictly more future accesses. *)

val thread_leq : thread_info -> thread_info -> bool
(** [thread_leq t1 t2] is the thread order [t1 ⊑ t2]: [t1 = t2] or
    [t1 = Bot].  [Top] is weaker than nothing (it represents no access)
    and nothing but [Top] is weaker than it. *)

val kind_meet : kind -> kind -> kind
(** Meet in the access-kind lattice: equal kinds stay, differing kinds
    become [Write]. *)

val thread_meet : thread_info -> thread_info -> thread_info
(** Meet in the thread lattice: [Top] is the identity, differing concrete
    threads become [Bot]. *)

val weaker_than : t -> t -> bool
(** [weaker_than p q] is Definition 2: [p.m = q.m ∧ p.L ⊆ q.L ∧ p.t ⊑ q.t
    ∧ p.a ⊑ q.a], treating both events' threads as concrete.  When it
    holds, every future race with [q] is also a race with [p]
    (Theorem 1), so [q] carries no information for detection. *)

val stored_weaker_than :
  thread:thread_info -> kind:kind -> locks:Lockset_id.id -> t -> bool
(** Weaker-than where the earlier access is a stored history entry whose
    thread may have degraded to {!Bot}. *)

val pp_kind : kind Fmt.t

val pp_thread_info : thread_info Fmt.t

val pp : t Fmt.t
