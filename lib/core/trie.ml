open Event

type prior = {
  p_thread : thread_info;
  p_kind : kind;
  p_locks : Lockset_id.id;
  p_site : site_id;
}

type node = {
  label : lock_id; (* incoming edge label; -1 for the root *)
  mutable thread : thread_info; (* Top = no access stored here *)
  mutable kind : kind;
  mutable site : site_id;
  mutable children : node list; (* sorted by increasing label *)
}

(* The traversal state of the event being processed lives in mutable
   scratch fields rather than refs and closures: [process] runs on every
   event that reaches trie storage, and a handful of heap blocks per
   event is the difference between a reused run context allocating and
   not.  The fields are meaningful only during one [process]/
   [exists_weaker]/[find_race] call; tries are domain-local like the
   detector that owns them, so there is no concurrent use to guard. *)
type t = {
  root : node;
  mutable count : int;
  mutable sc_weaker : bool;
  mutable sc_found : bool; (* race found; racing node in [sc_node] *)
  mutable sc_node : node;
  mutable sc_path : int list; (* reversed path to [sc_node] *)
}

let mk_node label =
  { label; thread = Top; kind = Read; site = -1; children = [] }

let create () =
  let root = mk_node (-1) in
  {
    root;
    count = 1;
    sc_weaker = false;
    sc_found = false;
    sc_node = root;
    sc_path = [];
  }

let node_count h = h.count

let clear h =
  h.root.thread <- Top;
  h.root.kind <- Read;
  h.root.site <- -1;
  h.root.children <- [];
  h.count <- 1;
  h.sc_weaker <- false;
  h.sc_found <- false;
  h.sc_node <- h.root;
  h.sc_path <- []

(* Binary search in the event's strictly increasing lock array; fetched
   once per traversal so membership costs no table lookup and no
   allocation. *)
let mem_arr (a : int array) l =
  let lo = ref 0 and hi = ref (Array.length a) in
  while !hi - !lo > 0 do
    let mid = (!lo + !hi) / 2 in
    if a.(mid) < l then lo := mid + 1 else hi := mid
  done;
  !lo < Array.length a && a.(!lo) = l

(* [tv] is the event's thread as a lattice value, boxed once per event
   by the caller and reused across every node visited. *)
let node_weaker n tv (e : Event.t) =
  n.thread <> Top && thread_leq n.thread tv && kind_leq n.kind e.kind

let node_races n tv (e : Event.t) =
  (match thread_meet tv n.thread with Bot -> true | _ -> false)
  && kind_meet e.kind n.kind = Write

(* Weakness check: walk only edges labeled with locks of [e], so every
   visited node's lockset is a subset of [e.locks].  Top-level mutual
   recursion with explicit arguments — no closures on the hot path. *)
let rec weak_node h n tv e locks =
  if node_weaker n tv e then h.sc_weaker <- true
  else weak_children h n.children tv e locks

and weak_children h cs tv e locks =
  match cs with
  | [] -> ()
  | c :: tl ->
      if mem_arr locks c.label then weak_node h c tv e locks;
      if not h.sc_weaker then weak_children h tl tv e locks

(* Race check: walk only edges NOT labeled with locks of [e] (Case I
   prunes common-lock subtrees); a node meeting to (Bot, Write) is a
   race (Case II), otherwise recurse (Case III).  [path] is the reversed
   list of edge labels, interned only when a race is actually found. *)
let rec race_node h n tv e locks path =
  if node_races n tv e then begin
    h.sc_found <- true;
    h.sc_node <- n;
    h.sc_path <- path
  end
  else race_children h n.children tv e locks path

and race_children h cs tv e locks path =
  match cs with
  | [] -> ()
  | c :: tl ->
      if not (mem_arr locks c.label) then
        race_node h c tv e locks (c.label :: path);
      if not h.sc_found then race_children h tl tv e locks path

(* The fused top-level walk over the root's children: below the root the
   weakness check and the race check explore disjoint parts of the trie
   (subset edges vs. disjoint edges), so each child goes to exactly one
   of them. *)
let rec split_children h cs tv e locks =
  match cs with
  | [] -> ()
  | c :: tl ->
      (if mem_arr locks c.label then begin
         if not h.sc_weaker then weak_node h c tv e locks
       end
       else if not h.sc_found then race_node h c tv e locks [ c.label ]);
      split_children h tl tv e locks

let prior_of n path =
  {
    p_thread = n.thread;
    p_kind = n.kind;
    p_locks = Lockset_id.of_list path;
    p_site = n.site;
  }

let exists_weaker h e =
  let locks = Lockset_id.sorted_array e.locks in
  let tv = Thread e.thread in
  h.sc_weaker <- false;
  weak_node h h.root tv e locks;
  h.sc_weaker

let find_race h (e : Event.t) =
  let locks = Lockset_id.sorted_array e.locks in
  let tv = Thread e.thread in
  h.sc_found <- false;
  race_node h h.root tv e locks [];
  if h.sc_found then Some (prior_of h.sc_node h.sc_path) else None

(* Sorted-children search and insertion, kept closure-free: the hit path
   of [find_child] allocates nothing (a constant exception signals
   absence). *)
let rec find_child l cs =
  match cs with
  | c :: _ when c.label = l -> c
  | c :: tl when c.label < l -> find_child l tl
  | _ -> raise Not_found

let rec insert_sorted c cs =
  match cs with
  | x :: tl when x.label < c.label -> x :: insert_sorted c tl
  | _ -> c :: cs

(* Find or create the node addressed by the sorted lock array [path]
   starting at index [i]. *)
let rec descend h n (path : int array) i =
  if i >= Array.length path then n
  else begin
    let l = path.(i) in
    let child =
      match find_child l n.children with
      | c -> c
      | exception Not_found ->
          let c = mk_node l in
          h.count <- h.count + 1;
          n.children <- insert_sorted c n.children;
          c
    in
    descend h child path (i + 1)
  end

(* Remove stored accesses that [keep] (the just-updated node, holding
   meet value [tv]/[av] for lockset [locks]) is weaker than, and
   garbage-collect empty leaves.  [required] is the sorted array of locks
   of the new access; [ri] indexes the first lock not yet seen on the
   current path.  Edge labels increase along paths, so a label above the
   next required lock kills the whole subtree.  [prune_children] keeps
   the original list spine whenever every child survives, so a pruning
   pass over an already-minimal trie writes and allocates nothing. *)
let rec prune_node h keep required nreq tv av n ri =
  if ri < nreq && n.label > required.(ri) then true
  else begin
    let ri = if ri < nreq && n.label = required.(ri) then ri + 1 else ri in
    if
      ri = nreq && n != keep && n.thread <> Top
      && thread_leq tv n.thread && kind_leq av n.kind
    then begin
      n.thread <- Top;
      n.kind <- Read;
      n.site <- -1
    end;
    let cs' = prune_children h keep required nreq tv av n.children ri in
    if cs' != n.children then n.children <- cs';
    n.thread <> Top
    || (match n.children with [] -> false | _ :: _ -> true)
    || n == keep
  end

and prune_children h keep required nreq tv av cs ri =
  match cs with
  | [] -> []
  | c :: tl ->
      let live = prune_node h keep required nreq tv av c ri in
      let tl' = prune_children h keep required nreq tv av tl ri in
      if live then if tl' == tl then cs else c :: tl'
      else begin
        h.count <- h.count - 1;
        tl'
      end

let prune_stronger h keep (required : int array) tv av =
  ignore (prune_node h keep required (Array.length required) tv av h.root 0)

let update_at h (tv : thread_info) (e : Event.t) locks =
  let n = descend h h.root locks 0 in
  (match n.thread with
  | Top ->
      n.thread <- tv;
      n.kind <- e.kind;
      n.site <- e.site
  | _ ->
      n.thread <- thread_meet n.thread tv;
      (* Keep the site aligned with the strongest kind: once the summary
         says WRITE, point at a write site. *)
      if e.kind = Write && n.kind = Read then n.site <- e.site;
      n.kind <- kind_meet n.kind e.kind);
  prune_stronger h n locks n.thread n.kind

let update h (e : Event.t) =
  update_at h (Thread e.thread) e (Lockset_id.sorted_array e.locks)

(* One event end-to-end.  The race check runs unconditionally — see the
   interface comment: gating it behind the weakness check, as the paper
   describes, can silently drop an event's race with a still-stored past
   access when a meet-merged (t_bot) node covers the event.  The
   weakness check only decides whether the history needs updating.

   The two traversals fuse into a single DFS: below the root, the
   weakness check follows only edges labeled with locks of [e.L] (so
   every visited lockset is a subset of [e.L]) while the race check
   prunes exactly those edges (Case I), so they explore disjoint parts
   of the trie. *)
let process h (e : Event.t) =
  let locks = Lockset_id.sorted_array e.locks in
  let tv = Thread e.thread in
  h.sc_weaker <- node_weaker h.root tv e;
  h.sc_found <- false;
  (* The root participates in both checks: it is the ∅-lockset node. *)
  if node_races h.root tv e then begin
    h.sc_found <- true;
    h.sc_node <- h.root;
    h.sc_path <- []
  end;
  split_children h h.root.children tv e locks;
  if not h.sc_weaker then update_at h tv e locks;
  let race = if h.sc_found then Some (prior_of h.sc_node h.sc_path) else None in
  (race, h.sc_weaker)

let fold_accesses f h init =
  let rec go n path acc =
    let acc =
      if n.thread <> Top then
        f ~locks:path ~thread:n.thread ~kind:n.kind ~site:n.site acc
      else acc
    in
    List.fold_left
      (fun acc c -> go c (Lockset.add c.label path) acc)
      acc n.children
  in
  go h.root Lockset.empty init

let pp ppf h =
  fold_accesses
    (fun ~locks ~thread ~kind ~site () ->
      Fmt.pf ppf "@[L=%a t=%a a=%a s=%d@]@ " Lockset.pp locks pp_thread_info
        thread pp_kind kind site)
    h ()
