open Event

type prior = {
  p_thread : thread_info;
  p_kind : kind;
  p_locks : Lockset_id.id;
  p_site : site_id;
}

type node = {
  label : lock_id; (* incoming edge label; -1 for the root *)
  mutable thread : thread_info; (* Top = no access stored here *)
  mutable kind : kind;
  mutable site : site_id;
  mutable children : node list; (* sorted by increasing label *)
}

type t = { root : node; mutable count : int }

let mk_node label =
  { label; thread = Top; kind = Read; site = -1; children = [] }

let create () = { root = mk_node (-1); count = 1 }

let node_count h = h.count

(* Binary search in the event's strictly increasing lock array; fetched
   once per traversal so membership costs no table lookup and no
   allocation. *)
let mem_arr (a : int array) l =
  let lo = ref 0 and hi = ref (Array.length a) in
  while !hi - !lo > 0 do
    let mid = (!lo + !hi) / 2 in
    if a.(mid) < l then lo := mid + 1 else hi := mid
  done;
  !lo < Array.length a && a.(!lo) = l

let node_weaker n (e : Event.t) =
  n.thread <> Top
  && thread_leq n.thread (Thread e.thread)
  && kind_leq n.kind e.kind

(* Weakness check: walk only edges labeled with locks of [e], so every
   visited node's lockset is a subset of [e.locks]. *)
let exists_weaker h e =
  let locks = Lockset_id.sorted_array e.locks in
  let rec go n =
    node_weaker n e
    || List.exists (fun c -> mem_arr locks c.label && go c) n.children
  in
  go h.root

(* [path] is the reversed list of edge labels to the current node; it is
   interned only when a race is actually found, so the DFS allocates a
   few list cells at most and nothing on the no-race path's fast exits. *)
let prior_of n path =
  {
    p_thread = n.thread;
    p_kind = n.kind;
    p_locks = Lockset_id.of_list path;
    p_site = n.site;
  }

let find_race h (e : Event.t) =
  let locks = Lockset_id.sorted_array e.locks in
  let exception Found of prior in
  let rec go n path =
    (* Case II: at least two threads and at least one write. *)
    if thread_meet (Thread e.thread) n.thread = Bot && kind_meet e.kind n.kind = Write
    then raise (Found (prior_of n path));
    (* Case III: recurse, skipping Case-I subtrees (common lock). *)
    List.iter
      (fun c -> if not (mem_arr locks c.label) then go c (c.label :: path))
      n.children
  in
  match go h.root [] with
  | () -> None
  | exception Found p -> Some p

(* Find or create the node addressed by the sorted lock array [path]
   starting at index [i]. *)
let rec descend h n (path : int array) i =
  if i >= Array.length path then n
  else begin
    let l = path.(i) in
    let rec find = function
      | c :: _ when c.label = l -> Some c
      | c :: tl when c.label < l -> find tl
      | _ -> None
    in
    let child =
      match find n.children with
      | Some c -> c
      | None ->
          let c = mk_node l in
          h.count <- h.count + 1;
          let rec ins = function
            | x :: tl when x.label < l -> x :: ins tl
            | tl -> c :: tl
          in
          n.children <- ins n.children;
          c
    in
    descend h child path (i + 1)
  end

(* Remove stored accesses that [keep] (the just-updated node, holding
   meet value [tv]/[av] for lockset [locks]) is weaker than, and
   garbage-collect empty leaves.  [required] is the sorted array of locks
   of the new access; [ri] indexes the first lock not yet seen on the
   current path.  Edge labels increase along paths, so a label above the
   next required lock kills the whole subtree. *)
let prune_stronger h keep (required : int array) tv av =
  let nreq = Array.length required in
  let rec go n ri =
    let ri' =
      if ri < nreq && n.label = required.(ri) then Some (ri + 1)
      else if ri < nreq && n.label > required.(ri) then None
      else Some ri
    in
    match ri' with
    | None -> true
    | Some ri ->
        if
          ri = nreq && n != keep && n.thread <> Top
          && thread_leq tv n.thread && kind_leq av n.kind
        then begin
          n.thread <- Top;
          n.kind <- Read;
          n.site <- -1
        end;
        let survivors =
          List.filter
            (fun c ->
              let live = go c ri in
              if not live then h.count <- h.count - 1;
              live)
            n.children
        in
        n.children <- survivors;
        n.thread <> Top || n.children <> [] || n == keep
  in
  ignore (go h.root 0)

let update h e =
  let locks = Lockset_id.sorted_array e.locks in
  let n = descend h h.root locks 0 in
  if n.thread = Top then begin
    n.thread <- Thread e.thread;
    n.kind <- e.kind;
    n.site <- e.site
  end
  else begin
    n.thread <- thread_meet n.thread (Thread e.thread);
    (* Keep the site aligned with the strongest kind: once the summary
       says WRITE, point at a write site. *)
    if e.kind = Write && n.kind = Read then n.site <- e.site;
    n.kind <- kind_meet n.kind e.kind
  end;
  prune_stronger h n locks n.thread n.kind

(* One event end-to-end.  The race check runs unconditionally — see the
   interface comment: gating it behind the weakness check, as the paper
   describes, can silently drop an event's race with a still-stored past
   access when a meet-merged (t_bot) node covers the event.  The
   weakness check only decides whether the history needs updating.

   The two traversals fuse into a single DFS: below the root, the
   weakness check follows only edges labeled with locks of [e.L] (so
   every visited lockset is a subset of [e.L]) while the race check
   prunes exactly those edges (Case I), so they explore disjoint parts
   of the trie. *)
let process h (e : Event.t) =
  let locks = Lockset_id.sorted_array e.locks in
  let race = ref None in
  let weaker = ref false in
  let rec weak_dfs n =
    (* Paths within e.L only. *)
    if node_weaker n e then weaker := true
    else
      List.iter
        (fun c -> if (not !weaker) && mem_arr locks c.label then weak_dfs c)
        n.children
  in
  let rec race_dfs n path =
    (* Paths disjoint from e.L only. *)
    if
      !race = None
      && thread_meet (Thread e.thread) n.thread = Bot
      && kind_meet e.kind n.kind = Write
    then race := Some (prior_of n path)
    else if !race = None then
      List.iter
        (fun c ->
          if (not (mem_arr locks c.label)) && !race = None then
            race_dfs c (c.label :: path))
        n.children
  in
  (* The root participates in both: it is the ∅-lockset node. *)
  if node_weaker h.root e then weaker := true;
  if
    thread_meet (Thread e.thread) h.root.thread = Bot
    && kind_meet e.kind h.root.kind = Write
  then race := Some (prior_of h.root []);
  List.iter
    (fun c ->
      if mem_arr locks c.label then (if not !weaker then weak_dfs c)
      else if !race = None then race_dfs c [ c.label ])
    h.root.children;
  if not !weaker then update h e;
  (!race, !weaker)

let fold_accesses f h init =
  let rec go n path acc =
    let acc =
      if n.thread <> Top then
        f ~locks:path ~thread:n.thread ~kind:n.kind ~site:n.site acc
      else acc
    in
    List.fold_left
      (fun acc c -> go c (Lockset.add c.label path) acc)
      acc n.children
  in
  go h.root Lockset.empty init

let pp ppf h =
  fold_accesses
    (fun ~locks ~thread ~kind ~site () ->
      Fmt.pf ppf "@[L=%a t=%a a=%a s=%d@]@ " Lockset.pp locks pp_thread_info
        thread pp_kind kind site)
    h ()
