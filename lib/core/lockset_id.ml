(* Hash-consed locksets.  Every distinct lockset is interned to a small
   integer id, so equality is integer equality and the lattice relations
   the detector evaluates per access event (subset for weaker-than,
   disjointness for IsRace) become O(1): an exact bitset test when the
   locks involved are dense, a lazily-filled relation table keyed by id
   pairs otherwise.

   The interning universe is domain-local (one per OCaml domain, via
   [Domain.DLS]): the schedule-exploration engine runs whole detector
   pipelines inside worker domains, and a shared table would either race
   or need a lock on the hottest path in the system.  The consequence is
   that an id is only meaningful inside the domain that created it —
   anything that crosses domains (deduped race rows, campaign stats)
   must be rendered to strings or materialized to {!Lockset.t} first,
   which the explore engine already does. *)

type id = int

let empty = 0

(* Dense remapping: lock identities are heap object ids (sparse, can be
   large), so each distinct lock seen in an interned set is assigned the
   next dense index in first-seen order.  A lockset whose locks all have
   dense index < [mask_bits] is represented exactly by one immediate-int
   bitmask; masks are stable because dense indices are append-only. *)
let mask_bits = 62

let no_mask = -1

type universe = {
  mutable sets : Lockset.t array; (* id -> canonical set *)
  mutable sorted : int array array; (* id -> locks, strictly increasing *)
  mutable masks : int array; (* id -> dense bitmask, or [no_mask] *)
  mutable count : int;
  by_locks : (int list, int) Hashtbl.t; (* sorted locks -> id *)
  dense : (int, int) Hashtbl.t; (* lock id -> dense bit index *)
  mutable ndense : int;
  rel : (int, int) Hashtbl.t;
      (* pair key -> relation flags, for id pairs outside the bitmask
         fast path: bit0 subset-known, bit1 subset, bit2 disjoint-known,
         bit3 disjoint *)
  add_memo : (int, int) Hashtbl.t; (* (id, lock) -> id *)
  remove_memo : (int, int) Hashtbl.t; (* (id, lock) -> id *)
  inter_memo : (int, int) Hashtbl.t; (* (id, id) -> id *)
  union_memo : (int, int) Hashtbl.t; (* (id, id) -> id *)
}

let create_universe () =
  let u =
    {
      sets = Array.make 64 Lockset.empty;
      sorted = Array.make 64 [||];
      masks = Array.make 64 0;
      count = 1;
      by_locks = Hashtbl.create 256;
      dense = Hashtbl.create 64;
      ndense = 0;
      rel = Hashtbl.create 256;
      add_memo = Hashtbl.create 256;
      remove_memo = Hashtbl.create 256;
      inter_memo = Hashtbl.create 64;
      union_memo = Hashtbl.create 64;
    }
  in
  (* id 0 is the empty lockset in every universe. *)
  Hashtbl.add u.by_locks [] 0;
  u

let dls_key = Domain.DLS.new_key create_universe

let u () = Domain.DLS.get dls_key

(* Ids and lock identities both fit comfortably in 31 bits; pack a pair
   into one immediate key so the memo tables hash an int, not a tuple. *)
let pair_key a b = (a lsl 31) lor b

let dense_of u lock =
  match Hashtbl.find u.dense lock with
  | i -> i
  | exception Not_found ->
      let i = u.ndense in
      u.ndense <- i + 1;
      Hashtbl.add u.dense lock i;
      i

let grow u =
  let cap = Array.length u.sets in
  if u.count = cap then begin
    let cap' = cap * 2 in
    let sets = Array.make cap' Lockset.empty in
    Array.blit u.sets 0 sets 0 cap;
    u.sets <- sets;
    let sorted = Array.make cap' [||] in
    Array.blit u.sorted 0 sorted 0 cap;
    u.sorted <- sorted;
    let masks = Array.make cap' 0 in
    Array.blit u.masks 0 masks 0 cap;
    u.masks <- masks
  end

(* [locks] strictly increasing, [set] its Lockset.t image. *)
let intern_sorted u locks set =
  match Hashtbl.find u.by_locks locks with
  | id -> id
  | exception Not_found ->
      grow u;
      let id = u.count in
      u.count <- id + 1;
      u.sets.(id) <- set;
      u.sorted.(id) <- Array.of_list locks;
      let mask =
        List.fold_left
          (fun m l ->
            let i = dense_of u l in
            if m = no_mask || i >= mask_bits then no_mask
            else m lor (1 lsl i))
          0 locks
      in
      u.masks.(id) <- mask;
      Hashtbl.add u.by_locks locks id;
      id

let intern set =
  let u = u () in
  intern_sorted u (Lockset.to_sorted_list set) set

let of_list ls =
  let set = Lockset.of_list ls in
  intern set

let set_of id = (u ()).sets.(id)

let sorted_array id = (u ()).sorted.(id)

let to_sorted_list id = Array.to_list (sorted_array id)

let equal (a : id) (b : id) = a = b

let compare (a : id) (b : id) = Int.compare a b

let is_empty id = id = 0

let cardinal id = Array.length (sorted_array id)

let uses_mask id = (u ()).masks.(id) <> no_mask

(* Binary search in a strictly increasing array; allocation-free. *)
let mem_sorted (a : int array) l =
  let lo = ref 0 and hi = ref (Array.length a) in
  while !hi - !lo > 0 do
    let mid = (!lo + !hi) / 2 in
    if a.(mid) < l then lo := mid + 1 else hi := mid
  done;
  !lo < Array.length a && a.(!lo) = l

let mem l id =
  if id = 0 then false
  else
    let u = u () in
    let m = u.masks.(id) in
    if m <> no_mask then
      match Hashtbl.find u.dense l with
      | i -> i < mask_bits && m land (1 lsl i) <> 0
      | exception Not_found -> false
    else mem_sorted u.sorted.(id) l

let subset_arrays (a : int array) (b : int array) =
  let na = Array.length a and nb = Array.length b in
  let rec go i j =
    if i >= na then true
    else if j >= nb then false
    else if a.(i) = b.(j) then go (i + 1) (j + 1)
    else if a.(i) > b.(j) then go i (j + 1)
    else false
  in
  go 0 0

let disjoint_arrays (a : int array) (b : int array) =
  let na = Array.length a and nb = Array.length b in
  let rec go i j =
    if i >= na || j >= nb then true
    else if a.(i) = b.(j) then false
    else if a.(i) < b.(j) then go (i + 1) j
    else go i (j + 1)
  in
  go 0 0

let rel_flags u k = match Hashtbl.find u.rel k with f -> f | exception Not_found -> 0

let subset a b =
  a = b || a = 0
  ||
  let u = u () in
  let ma = u.masks.(a) and mb = u.masks.(b) in
  if ma <> no_mask && mb <> no_mask then ma land lnot mb = 0
  else begin
    let k = pair_key a b in
    let f = rel_flags u k in
    if f land 1 <> 0 then f land 2 <> 0
    else begin
      let v = subset_arrays u.sorted.(a) u.sorted.(b) in
      Hashtbl.replace u.rel k (f lor 1 lor (if v then 2 else 0));
      v
    end
  end

let disjoint a b =
  a = 0 || b = 0
  || a <> b
     &&
     let u = u () in
     let ma = u.masks.(a) and mb = u.masks.(b) in
     if ma <> no_mask && mb <> no_mask then ma land mb = 0
     else begin
       let k = pair_key a b in
       let f = rel_flags u k in
       if f land 4 <> 0 then f land 8 <> 0
       else begin
         let v = disjoint_arrays u.sorted.(a) u.sorted.(b) in
         Hashtbl.replace u.rel k (f lor 4 lor (if v then 8 else 0));
         v
       end
     end

let add l id =
  if mem l id then id
  else
    let u = u () in
    let k = pair_key id l in
    match Hashtbl.find u.add_memo k with
    | id' -> id'
    | exception Not_found ->
        let set = Lockset.add l u.sets.(id) in
        let id' = intern_sorted u (Lockset.to_sorted_list set) set in
        Hashtbl.add u.add_memo k id';
        id'

let remove l id =
  if not (mem l id) then id
  else
    let u = u () in
    let k = pair_key id l in
    match Hashtbl.find u.remove_memo k with
    | id' -> id'
    | exception Not_found ->
        let set = Lockset.remove l u.sets.(id) in
        let id' = intern_sorted u (Lockset.to_sorted_list set) set in
        Hashtbl.add u.remove_memo k id';
        id'

let singleton l = add l empty

let inter a b =
  if a = b then a
  else if a = 0 || b = 0 then 0
  else
    let u = u () in
    let k = if a < b then pair_key a b else pair_key b a in
    match Hashtbl.find u.inter_memo k with
    | id -> id
    | exception Not_found ->
        let set = Lockset.inter u.sets.(a) u.sets.(b) in
        let id = intern_sorted u (Lockset.to_sorted_list set) set in
        Hashtbl.add u.inter_memo k id;
        id

let union a b =
  if a = b || b = 0 then a
  else if a = 0 then b
  else
    let u = u () in
    let k = if a < b then pair_key a b else pair_key b a in
    match Hashtbl.find u.union_memo k with
    | id -> id
    | exception Not_found ->
        let set = Lockset.union u.sets.(a) u.sets.(b) in
        let id = intern_sorted u (Lockset.to_sorted_list set) set in
        Hashtbl.add u.union_memo k id;
        id

let fold f id init = Lockset.fold f (set_of id) init

let interned_count () = (u ()).count

let pp ppf id = Lockset.pp ppf (set_of id)
