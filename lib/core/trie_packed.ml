open Event

(* One shared trie over lock identities; each node maps the locations
   accessed with exactly that lockset to their meet summary.  The
   algebra is identical to Trie's — only storage is shared. *)

type summary = {
  mutable s_thread : thread_info; (* never Top: absent instead *)
  mutable s_kind : kind;
  mutable s_site : site_id;
}

type node = {
  label : lock_id; (* -1 for the root *)
  summaries : (loc_id, summary) Hashtbl.t;
  mutable children : node list; (* sorted by increasing label *)
}

type t = { root : node; mutable nodes : int }

let mk_node label = { label; summaries = Hashtbl.create 4; children = [] }

let create () = { root = mk_node (-1); nodes = 1 }

let node_count h = h.nodes

let clear h =
  Hashtbl.clear h.root.summaries;
  h.root.children <- [];
  h.nodes <- 1

let summary_count h =
  let rec go n acc =
    List.fold_left (fun acc c -> go c acc) (acc + Hashtbl.length n.summaries) n.children
  in
  go h.root 0

let locations h =
  let locs = Hashtbl.create 64 in
  let rec go n =
    Hashtbl.iter (fun l _ -> Hashtbl.replace locs l ()) n.summaries;
    List.iter go n.children
  in
  go h.root;
  Hashtbl.length locs

(* Same binary search as Trie.mem_arr: membership in the event's sorted
   lock array without a table lookup or allocation. *)
let mem_arr (a : int array) l =
  let lo = ref 0 and hi = ref (Array.length a) in
  while !hi - !lo > 0 do
    let mid = (!lo + !hi) / 2 in
    if a.(mid) < l then lo := mid + 1 else hi := mid
  done;
  !lo < Array.length a && a.(!lo) = l

let summary_weaker s (e : Event.t) =
  thread_leq s.s_thread (Thread e.thread) && kind_leq s.s_kind e.kind

let rec descend h n (path : int array) i =
  if i >= Array.length path then n
  else begin
    let l = path.(i) in
    let rec find = function
      | c :: _ when c.label = l -> Some c
      | c :: tl when c.label < l -> find tl
      | _ -> None
    in
    let child =
      match find n.children with
      | Some c -> c
      | None ->
          let c = mk_node l in
          h.nodes <- h.nodes + 1;
          let rec ins = function
            | x :: tl when x.label < l -> x :: ins tl
            | tl -> c :: tl
          in
          n.children <- ins n.children;
          c
    in
    descend h child path (i + 1)
  end

(* Remove summaries for [e.loc] that the just-updated node covers, then
   garbage-collect nodes with no summaries and no children. *)
let prune_stronger h keep (loc : loc_id) (required : int array) tv av =
  let nreq = Array.length required in
  let rec go n ri =
    let ri' =
      if ri < nreq && n.label = required.(ri) then Some (ri + 1)
      else if ri < nreq && n.label > required.(ri) then None
      else Some ri
    in
    match ri' with
    | None -> true (* the new lockset cannot be a subset here: keep *)
    | Some ri ->
        (if ri = nreq && n != keep then
           match Hashtbl.find_opt n.summaries loc with
           | Some s when thread_leq tv s.s_thread && kind_leq av s.s_kind ->
               Hashtbl.remove n.summaries loc
           | _ -> ());
        let survivors =
          List.filter
            (fun c ->
              let live = go c ri in
              if not live then h.nodes <- h.nodes - 1;
              live)
            n.children
        in
        n.children <- survivors;
        Hashtbl.length n.summaries > 0 || n.children <> [] || n == keep
  in
  ignore (go h.root 0)

let update h (e : Event.t) =
  let locks = Lockset_id.sorted_array e.locks in
  let n = descend h h.root locks 0 in
  let tv, av =
    match Hashtbl.find_opt n.summaries e.loc with
    | Some s ->
        s.s_thread <- thread_meet s.s_thread (Thread e.thread);
        if e.kind = Write && s.s_kind = Read then s.s_site <- e.site;
        s.s_kind <- kind_meet s.s_kind e.kind;
        (s.s_thread, s.s_kind)
    | None ->
        Hashtbl.replace n.summaries e.loc
          { s_thread = Thread e.thread; s_kind = e.kind; s_site = e.site };
        (Thread e.thread, e.kind)
  in
  prune_stronger h n e.loc locks tv av

let process h (e : Event.t) =
  let locks = Lockset_id.sorted_array e.locks in
  let race = ref None in
  let weaker = ref false in
  let check_weak n =
    match Hashtbl.find n.summaries e.loc with
    | s -> if summary_weaker s e then weaker := true
    | exception Not_found -> ()
  in
  (* [path] is the reversed label list to the node; interned only when a
     race is found. *)
  let check_race n path =
    if !race = None then
      match Hashtbl.find n.summaries e.loc with
      | s
        when thread_meet (Thread e.thread) s.s_thread = Bot
             && kind_meet e.kind s.s_kind = Write ->
          race :=
            Some
              {
                Trie.p_thread = s.s_thread;
                p_kind = s.s_kind;
                p_locks = Lockset_id.of_list path;
                p_site = s.s_site;
              }
      | _ -> ()
      | exception Not_found -> ()
  in
  let rec weak_dfs n =
    check_weak n;
    if not !weaker then
      List.iter
        (fun c -> if (not !weaker) && mem_arr locks c.label then weak_dfs c)
        n.children
  in
  let rec race_dfs n path =
    check_race n path;
    if !race = None then
      List.iter
        (fun c ->
          if (not (mem_arr locks c.label)) && !race = None then
            race_dfs c (c.label :: path))
        n.children
  in
  check_weak h.root;
  check_race h.root [];
  List.iter
    (fun c ->
      if mem_arr locks c.label then (if not !weaker then weak_dfs c)
      else if !race = None then race_dfs c [ c.label ])
    h.root.children;
  if not !weaker then update h e;
  (!race, !weaker)
