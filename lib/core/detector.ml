type history_impl = Per_location | Packed

type config = {
  use_cache : bool;
  cache_size : int;
  use_ownership : bool;
  history : history_impl;
}

let default_config =
  {
    use_cache = true;
    cache_size = 256;
    use_ownership = true;
    history = Per_location;
  }

type stats = {
  events_in : int;
  cache_hits : int;
  ownership_filtered : int;
  weaker_filtered : int;
  race_checks : int;
  races_reported : int;
  locations_tracked : int;
  trie_nodes : int;
}

type history = Htries of (Event.loc_id, Trie.t) Hashtbl.t | Hpacked of Trie_packed.t

type eviction = { ev_high : int; ev_low : int; ev_track : bool }

let eviction ?low ?(track = false) ~high () =
  if high < 1 then
    invalid_arg "Detector.eviction: high watermark must be at least 1";
  let low = match low with Some l -> l | None -> high / 2 in
  if low < 0 || low >= high then
    invalid_arg
      (Printf.sprintf
         "Detector.eviction: low watermark %d must satisfy 0 <= low < high \
          (%d)"
         low high);
  { ev_high = high; ev_low = low; ev_track = track }

(* State of the quiescent-location eviction policy (serve mode).  One
   table drives everything: [last_access] maps every location the
   detector has ever been told about — whether or not it grew a trie —
   to the [events_in] clock of its most recent access.  When the table
   exceeds the high watermark, the least-recently-accessed locations are
   retired down to the low watermark: trie, ownership state, cache
   entries and the clock entry all go at once, so a later access to a
   retired location re-enters the detector as a brand-new location. *)
type evict_state = {
  ev : eviction;
  last_access : (Event.loc_id, int ref) Hashtbl.t;
  ever_evicted : (Event.loc_id, unit) Hashtbl.t;
      (** Only populated under [ev_track] (a test/debug aid: it grows
          with the number of retired locations, which an indefinite
          stream does not bound). *)
  mutable evicted : int;
}

type t = {
  config : config;
  history : history;
  mutable caches : Cache.t option array; (* indexed by thread id *)
  own : Ownership.t;
  collector : Report.collector;
  evict : evict_state option;
  mutable events_in : int;
  mutable cache_hits : int;
  mutable ownership_filtered : int;
  mutable weaker_filtered : int;
  mutable race_checks : int;
}

let create ?(config = default_config) ?eviction collector =
  (match (eviction, config.history) with
  | Some _, Packed ->
      invalid_arg
        "Detector.create: eviction requires the Per_location history (the \
         packed trie shares nodes across locations and cannot retire one \
         location's state)"
  | _ -> ());
  {
    config;
    history =
      (match config.history with
      | Per_location -> Htries (Hashtbl.create 1024)
      | Packed -> Hpacked (Trie_packed.create ()));
    caches = Array.make 16 None;
    own = Ownership.create ();
    collector;
    evict =
      Option.map
        (fun ev ->
          {
            ev;
            last_access = Hashtbl.create 1024;
            ever_evicted = Hashtbl.create (if ev.ev_track then 1024 else 0);
            evicted = 0;
          })
        eviction;
    events_in = 0;
    cache_hits = 0;
    ownership_filtered = 0;
    weaker_filtered = 0;
    race_checks = 0;
  }

(* Thread ids are small and dense (assigned by the VM in creation
   order), so the per-thread caches live in a growable array: the
   per-event lookup is one bounds check and one load, with no [Some]
   allocated — unlike a [Hashtbl.find_opt] — on the hit path. *)
let cache_of d thread =
  let n = Array.length d.caches in
  if thread >= n then begin
    let rec cap n = if thread < n then n else cap (n * 2) in
    let a = Array.make (cap (n * 2)) None in
    Array.blit d.caches 0 a 0 n;
    d.caches <- a
  end;
  match d.caches.(thread) with
  | Some c -> c
  | None ->
      let c = Cache.create ~size:d.config.cache_size () in
      d.caches.(thread) <- Some c;
      c

let process_history d (e : Event.t) =
  match d.history with
  | Hpacked h -> Trie_packed.process h e
  | Htries tries -> (
      match Hashtbl.find tries e.loc with
      | trie -> Trie.process trie e
      | exception Not_found ->
          let trie = Trie.create () in
          Hashtbl.add tries e.loc trie;
          Trie.process trie e)

(* Retire the least-recently-accessed locations until only [ev_low]
   remain tracked.  Everything keyed by a retired location goes in the
   same breath — trie, ownership state, cache entries, clock — because
   any survivor would re-assert facts (hit-implies-weaker, owned-means-
   invisible) whose justification was just deleted.  The location being
   processed right now is never retired: it is by construction the most
   recently accessed.  Cost is O(n log n) in the tracked-location count,
   paid once per (high - low) fresh locations, so amortized logarithmic
   per newly seen location and zero for a stream over a stable set. *)
let run_eviction d es ~current_loc =
  let tries =
    match d.history with Htries t -> t | Hpacked _ -> assert false
  in
  let live = Hashtbl.length es.last_access in
  let arr = Array.make live (0, 0) in
  let i = ref 0 in
  Hashtbl.iter
    (fun loc last ->
      arr.(!i) <- (!last, loc);
      incr i)
    es.last_access;
  Array.sort compare arr;
  let to_evict = live - es.ev.ev_low in
  let n = ref 0 in
  (try
     Array.iter
       (fun (_, loc) ->
         if !n >= to_evict then raise Exit;
         if loc <> current_loc then begin
           Hashtbl.remove es.last_access loc;
           Hashtbl.remove tries loc;
           Ownership.forget d.own loc;
           if d.config.use_cache then
             Array.iter
               (function Some c -> Cache.evict_loc c loc | None -> ())
               d.caches;
           if es.ev.ev_track then Hashtbl.replace es.ever_evicted loc ();
           es.evicted <- es.evicted + 1;
           incr n
         end)
       arr
   with Exit -> ())

(* Update the location's last-access clock (inserting it if new) and
   trigger eviction when the tracked-location count crosses the high
   watermark.  Runs on {e every} access, including cache hits: a
   location kept hot purely by one thread's cache must not be retired,
   or the cached hit-implies-weaker guarantee would outlive the history
   that justifies it. *)
let touch_loc d es loc =
  (match Hashtbl.find es.last_access loc with
  | r -> r := d.events_in
  | exception Not_found ->
      Hashtbl.add es.last_access loc (ref d.events_in);
      if Hashtbl.length es.last_access > es.ev.ev_high then
        run_eviction d es ~current_loc:loc)

type outcome = Cache_hit | Owned_skip | Reached

(* Scalar entry point: five immediates in, no [Event.t] materialized
   unless the event survives both the cache and the ownership filter —
   i.e. unless it actually reaches trie storage and may be needed for a
   race report.  Returns where the event stopped: the specialized VM
   fast paths key their memoization on [Reached] (the only outcome that
   certifies the trie now covers this (thread, locks, kind) at [loc] —
   a cache hit is recorded before the ownership check and an owned skip
   never touches the trie, so neither justifies dropping repeats). *)
let on_access_outcome d ~loc ~thread ~(locks : Lockset_id.id) ~kind ~site :
    outcome =
  d.events_in <- d.events_in + 1;
  (match d.evict with Some es -> touch_loc d es loc | None -> ());
  let filtered_by_cache =
    d.config.use_cache && Cache.lookup_or_add (cache_of d thread) ~kind ~loc
  in
  if filtered_by_cache then begin
    d.cache_hits <- d.cache_hits + 1;
    Cache_hit
  end
  else
    let pass =
      if not d.config.use_ownership then true
      else
        match Ownership.check d.own ~thread ~loc with
        | Ownership.Owned_skip ->
            d.ownership_filtered <- d.ownership_filtered + 1;
            false
        | Ownership.Became_shared ->
            (* Section 7.2: the owner's cached entries for this location
               no longer justify suppression; evict everywhere.  The
               transitioning thread's own entry was inserted by the
               lookup just above for this very event, which is being
               forwarded, so it stays valid. *)
            if d.config.use_cache then
              Array.iteri
                (fun t c ->
                  match c with
                  | Some c when t <> thread -> Cache.evict_loc c loc
                  | _ -> ())
                d.caches;
            true
        | Ownership.Already_shared -> true
    in
    if pass then begin
      d.race_checks <- d.race_checks + 1;
      let e = Event.make_interned ~loc ~thread ~locks ~kind ~site in
      let race, redundant = process_history d e in
      if redundant then d.weaker_filtered <- d.weaker_filtered + 1;
      (match race with
      | Some prior ->
          Report.add d.collector { Report.loc; current = e; prior }
      | None -> ());
      Reached
    end
    else Owned_skip

let on_access_interned d ~loc ~thread ~locks ~kind ~site =
  ignore (on_access_outcome d ~loc ~thread ~locks ~kind ~site : outcome)

let on_access d (e : Event.t) =
  on_access_interned d ~loc:e.loc ~thread:e.thread ~locks:e.locks ~kind:e.kind
    ~site:e.site

let on_acquire d ~thread ~lock =
  if d.config.use_cache then Cache.acquired (cache_of d thread) lock

let on_release d ~thread ~lock =
  if d.config.use_cache then Cache.released (cache_of d thread) lock

let on_thread_exit d ~thread =
  (* Reset in place rather than dropping the slot: thread ids are dense
     and never reused within one execution, so an exited thread's slot
     is only ever read again if a malformed stream keeps sending events
     for it — and a reset cache observes exactly like the fresh one the
     old [None] slot would have lazily created.  Keeping the arrays
     allocated is what lets a pooled detector run reallocation-free. *)
  if thread < Array.length d.caches then
    match d.caches.(thread) with Some c -> Cache.reset c | None -> ()

(* Return the detector to its freshly-created state without giving up
   any grown capacity: trie tables, cache arrays, ownership and eviction
   tables are all emptied in place.  The report collector is shared with
   the caller and deliberately NOT reset here — pooled pipelines reset
   it alongside.  The global [Lockset_id] interner also survives (it is
   append-only and domain-local, so stale entries are merely a warm
   cache for the next execution). *)
let reset d =
  (match d.history with
  | Htries tries -> Hashtbl.clear tries
  | Hpacked h -> Trie_packed.clear h);
  Array.iter (function Some c -> Cache.reset c | None -> ()) d.caches;
  Ownership.reset d.own;
  (match d.evict with
  | Some es ->
      Hashtbl.clear es.last_access;
      Hashtbl.clear es.ever_evicted;
      es.evicted <- 0
  | None -> ());
  d.events_in <- 0;
  d.cache_hits <- 0;
  d.ownership_filtered <- 0;
  d.weaker_filtered <- 0;
  d.race_checks <- 0

let evictions d = match d.evict with Some es -> es.evicted | None -> 0

let live_locations d =
  match d.evict with
  | Some es -> Hashtbl.length es.last_access
  | None -> (
      match d.history with
      | Htries tries -> Hashtbl.length tries
      | Hpacked h -> Trie_packed.locations h)

let was_evicted d loc =
  match d.evict with
  | Some es when es.ev.ev_track -> Hashtbl.mem es.ever_evicted loc
  | Some _ ->
      invalid_arg "Detector.was_evicted: eviction was created without ~track"
  | None -> false

let stats d =
  let trie_nodes =
    match d.history with
    | Htries tries ->
        Hashtbl.fold (fun _ t acc -> acc + Trie.node_count t) tries 0
    | Hpacked h -> Trie_packed.node_count h
  in
  let locations =
    match d.history with
    | Htries tries -> Hashtbl.length tries
    | Hpacked h -> Trie_packed.locations h
  in
  {
    events_in = d.events_in;
    cache_hits = d.cache_hits;
    ownership_filtered = d.ownership_filtered;
    weaker_filtered = d.weaker_filtered;
    race_checks = d.race_checks;
    races_reported = Report.count d.collector;
    locations_tracked = locations;
    trie_nodes;
  }

let pp_stats ppf (s : stats) =
  Fmt.pf ppf
    "@[<v>events in:          %d@ cache hits:         %d@ ownership \
     filtered: %d@ weaker filtered:    %d@ race checks:        %d@ races \
     reported:     %d@ locations tracked:  %d@ trie nodes:         %d@]"
    s.events_in s.cache_hits s.ownership_filtered s.weaker_filtered
    s.race_checks s.races_reported s.locations_tracked s.trie_nodes

(* The paper detector packaged behind the common detector interface:
   a Full-configuration detector bundled with its own report collector
   so that [create : unit -> t] holds.  Fork/join ordering is modeled
   by the join pseudo-locks the VM folds into each access's lockset,
   not by explicit edges, so the start/join hooks are no-ops here. *)
module Standard = struct
  type nonrec t = { det : t; coll : Report.collector }

  let id = "paper"

  let describe =
    "The paper's detector (Choi et al. 2002): trie histories, \
     weaker-than filtering, ownership model, join pseudo-locks"

  let needs_call_events = false

  let create () =
    let coll = Report.collector () in
    { det = create coll; coll }

  let on_access_interned d ~loc ~thread ~locks ~kind ~site =
    on_access_interned d.det ~loc ~thread ~locks ~kind ~site

  let on_call _ ~thread:_ ~obj_loc:_ ~locks:_ ~site:_ = ()

  let on_acquire d ~thread ~lock = on_acquire d.det ~thread ~lock

  let on_release d ~thread ~lock = on_release d.det ~thread ~lock

  let on_thread_start _ ~parent:_ ~child:_ = ()

  let on_thread_join _ ~joiner:_ ~joinee:_ = ()

  let on_thread_exit d ~thread = on_thread_exit d.det ~thread

  let reset d =
    reset d.det;
    Report.reset d.coll

  let racy_locs d = Report.racy_locs d.coll

  let race_count d = Report.count d.coll

  let events_seen d = (stats d.det).events_in
end
