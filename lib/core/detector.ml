type history_impl = Per_location | Packed

type config = {
  use_cache : bool;
  cache_size : int;
  use_ownership : bool;
  history : history_impl;
}

let default_config =
  {
    use_cache = true;
    cache_size = 256;
    use_ownership = true;
    history = Per_location;
  }

type stats = {
  events_in : int;
  cache_hits : int;
  ownership_filtered : int;
  weaker_filtered : int;
  race_checks : int;
  races_reported : int;
  locations_tracked : int;
  trie_nodes : int;
}

type history = Htries of (Event.loc_id, Trie.t) Hashtbl.t | Hpacked of Trie_packed.t

type t = {
  config : config;
  history : history;
  mutable caches : Cache.t option array; (* indexed by thread id *)
  own : Ownership.t;
  collector : Report.collector;
  mutable events_in : int;
  mutable cache_hits : int;
  mutable ownership_filtered : int;
  mutable weaker_filtered : int;
  mutable race_checks : int;
}

let create ?(config = default_config) collector =
  {
    config;
    history =
      (match config.history with
      | Per_location -> Htries (Hashtbl.create 1024)
      | Packed -> Hpacked (Trie_packed.create ()));
    caches = Array.make 16 None;
    own = Ownership.create ();
    collector;
    events_in = 0;
    cache_hits = 0;
    ownership_filtered = 0;
    weaker_filtered = 0;
    race_checks = 0;
  }

(* Thread ids are small and dense (assigned by the VM in creation
   order), so the per-thread caches live in a growable array: the
   per-event lookup is one bounds check and one load, with no [Some]
   allocated — unlike a [Hashtbl.find_opt] — on the hit path. *)
let cache_of d thread =
  let n = Array.length d.caches in
  if thread >= n then begin
    let rec cap n = if thread < n then n else cap (n * 2) in
    let a = Array.make (cap (n * 2)) None in
    Array.blit d.caches 0 a 0 n;
    d.caches <- a
  end;
  match d.caches.(thread) with
  | Some c -> c
  | None ->
      let c = Cache.create ~size:d.config.cache_size () in
      d.caches.(thread) <- Some c;
      c

let process_history d (e : Event.t) =
  match d.history with
  | Hpacked h -> Trie_packed.process h e
  | Htries tries -> (
      match Hashtbl.find tries e.loc with
      | trie -> Trie.process trie e
      | exception Not_found ->
          let trie = Trie.create () in
          Hashtbl.add tries e.loc trie;
          Trie.process trie e)

(* Scalar entry point: five immediates in, no [Event.t] materialized
   unless the event survives both the cache and the ownership filter —
   i.e. unless it actually reaches trie storage and may be needed for a
   race report. *)
let on_access_interned d ~loc ~thread ~(locks : Lockset_id.id) ~kind ~site =
  d.events_in <- d.events_in + 1;
  let filtered_by_cache =
    d.config.use_cache && Cache.lookup_or_add (cache_of d thread) ~kind ~loc
  in
  if filtered_by_cache then d.cache_hits <- d.cache_hits + 1
  else
    let pass =
      if not d.config.use_ownership then true
      else
        match Ownership.check d.own ~thread ~loc with
        | Ownership.Owned_skip ->
            d.ownership_filtered <- d.ownership_filtered + 1;
            false
        | Ownership.Became_shared ->
            (* Section 7.2: the owner's cached entries for this location
               no longer justify suppression; evict everywhere.  The
               transitioning thread's own entry was inserted by the
               lookup just above for this very event, which is being
               forwarded, so it stays valid. *)
            if d.config.use_cache then
              Array.iteri
                (fun t c ->
                  match c with
                  | Some c when t <> thread -> Cache.evict_loc c loc
                  | _ -> ())
                d.caches;
            true
        | Ownership.Already_shared -> true
    in
    if pass then begin
      d.race_checks <- d.race_checks + 1;
      let e = Event.make_interned ~loc ~thread ~locks ~kind ~site in
      let race, redundant = process_history d e in
      if redundant then d.weaker_filtered <- d.weaker_filtered + 1;
      match race with
      | Some prior ->
          Report.add d.collector { Report.loc; current = e; prior }
      | None -> ()
    end

let on_access d (e : Event.t) =
  on_access_interned d ~loc:e.loc ~thread:e.thread ~locks:e.locks ~kind:e.kind
    ~site:e.site

let on_acquire d ~thread ~lock =
  if d.config.use_cache then Cache.acquired (cache_of d thread) lock

let on_release d ~thread ~lock =
  if d.config.use_cache then Cache.released (cache_of d thread) lock

let on_thread_exit d ~thread =
  if thread < Array.length d.caches then d.caches.(thread) <- None

let stats d =
  let trie_nodes =
    match d.history with
    | Htries tries ->
        Hashtbl.fold (fun _ t acc -> acc + Trie.node_count t) tries 0
    | Hpacked h -> Trie_packed.node_count h
  in
  let locations =
    match d.history with
    | Htries tries -> Hashtbl.length tries
    | Hpacked h -> Trie_packed.locations h
  in
  {
    events_in = d.events_in;
    cache_hits = d.cache_hits;
    ownership_filtered = d.ownership_filtered;
    weaker_filtered = d.weaker_filtered;
    race_checks = d.race_checks;
    races_reported = Report.count d.collector;
    locations_tracked = locations;
    trie_nodes;
  }

let pp_stats ppf (s : stats) =
  Fmt.pf ppf
    "@[<v>events in:          %d@ cache hits:         %d@ ownership \
     filtered: %d@ weaker filtered:    %d@ race checks:        %d@ races \
     reported:     %d@ locations tracked:  %d@ trie nodes:         %d@]"
    s.events_in s.cache_hits s.ownership_filtered s.weaker_filtered
    s.race_checks s.races_reported s.locations_tracked s.trie_nodes
