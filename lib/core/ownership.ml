type state = Owned of Event.thread_id | Shared

type t = { tbl : (Event.loc_id, state) Hashtbl.t; mutable shared : int }

type verdict = Owned_skip | Became_shared | Already_shared

let create () = { tbl = Hashtbl.create 1024; shared = 0 }

(* [Hashtbl.clear] (not [reset]) keeps the grown bucket array, so a
   reused table never re-resizes on the next execution. *)
let reset o =
  Hashtbl.clear o.tbl;
  o.shared <- 0

(* [Hashtbl.find] + [Not_found] rather than [find_opt]: the latter
   allocates a [Some] per call, and this runs once per non-cached access
   event. *)
let check o ~thread ~loc =
  match Hashtbl.find o.tbl loc with
  | Owned t when t = thread -> Owned_skip
  | Owned _ ->
      Hashtbl.replace o.tbl loc Shared;
      o.shared <- o.shared + 1;
      Became_shared
  | Shared -> Already_shared
  | exception Not_found ->
      Hashtbl.replace o.tbl loc (Owned thread);
      Owned_skip

let forget o loc =
  match Hashtbl.find_opt o.tbl loc with
  | None -> ()
  | Some st ->
      if st = Shared then o.shared <- o.shared - 1;
      Hashtbl.remove o.tbl loc

let is_shared o loc =
  match Hashtbl.find_opt o.tbl loc with Some Shared -> true | _ -> false

let owner o loc =
  match Hashtbl.find_opt o.tbl loc with Some (Owned t) -> Some t | _ -> None

let shared_count o = o.shared
let tracked_count o = Hashtbl.length o.tbl
