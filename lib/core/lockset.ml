module S = Set.Make (Int)

type t = S.t

let empty = S.empty
let is_empty = S.is_empty
let singleton = S.singleton
let add = S.add
let remove = S.remove
let mem = S.mem
let subset = S.subset
let disjoint = S.disjoint
let inter = S.inter
let union = S.union
let equal = S.equal
let cardinal = S.cardinal
let of_list ls = List.fold_left (fun s l -> S.add l s) S.empty ls
let to_sorted_list = S.elements
let fold = S.fold

let pp ppf s =
  Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any ", ") int) (to_sorted_list s)
