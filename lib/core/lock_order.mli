(** Potential-deadlock detection from lock acquisition orders — the
    first item of the paper's future work (Section 10: "we plan to
    broaden the static/dynamic coanalysis approach to tackle other
    problems such as deadlock detection").

    The classic lock-order-graph ("Goodlock") construction: an edge
    [l1 → l2] is recorded whenever a thread acquires [l2] while holding
    [l1]; a cycle acquired by at least two distinct threads is a
    potential deadlock even if the observed run never blocked.  The
    {e gate lock} refinement suppresses cycles whose participating
    acquisitions all happened under a common enclosing lock, which
    serializes them. *)

type report = {
  dl_locks : Event.lock_id list;  (** The locks on the cycle. *)
  dl_threads : Event.thread_id list;  (** Threads contributing edges. *)
}

type t

val create : unit -> t

val reset : t -> unit
(** Drop all held-lock stacks and recorded edges in place, keeping
    table capacity. *)

val on_acquire : t -> thread:Event.thread_id -> lock:Event.lock_id -> unit
(** Outermost acquisition (same contract as {!Detector.on_acquire});
    held locksets are tracked internally. *)

val on_release : t -> thread:Event.thread_id -> lock:Event.lock_id -> unit

val potential_deadlocks : t -> report list
(** Two-lock cycles [l1 → l2 → l1] acquired by distinct threads with no
    common gate lock, each reported once (with [dl_locks] sorted).
    Longer cycles are reported conservatively (without the gate-lock
    refinement). *)

val edge_count : t -> int
