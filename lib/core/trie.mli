(** Per-location access-history tries (paper Section 3.2).

    The history of accesses to one memory location is an edge-labeled
    trie.  Edges are labeled with lock identities in strictly increasing
    order along any root-to-node path, so a node's path spells the sorted
    lockset of the accesses it summarizes.  Each node carries the meet
    (over the {!Event.thread_info} and {!Event.kind} lattices) of the
    accesses that were performed with exactly that lockset; internal
    nodes holding no access carry [Top]/[Read].

    Processing an event [e] against the trie of [e.loc] is:
    + {b weakness check} — if some stored access is weaker than [e],
      ignore [e] ({!exists_weaker});
    + {b race check} — the three-case depth-first search
      ({!find_race});
    + {b update} — meet [e] into the node for [e.locks] and prune any
      stored access the updated node is now weaker than ({!update}). *)

type prior = {
  p_thread : Event.thread_info;
      (** Thread of the earlier racing access; [Bot] when two or more
          distinct threads already accessed with this lockset, in which
          case the specific thread cannot be reported (Section 3.1). *)
  p_kind : Event.kind;
  p_locks : Lockset_id.id;
      (** Interned lockset of the earlier racing access, materialized
          with {!Lockset_id.set_of} at reporting time. *)
  p_site : Event.site_id;
      (** A representative source site among the accesses summarized by
          the racing node. *)
}
(** Description of the earlier access of a detected race, used in
    reports (Section 2.6). *)

type t
(** The access history of a single memory location. *)

val create : unit -> t

val node_count : t -> int
(** Number of trie nodes currently allocated, including the root; the
    space metric reported in Section 8.2. *)

val clear : t -> unit
(** Return the trie to its freshly-created state: the root summary and
    all children are dropped in place, so the next execution replayed
    against this trie observes exactly what a {!create}d one would. *)

val exists_weaker : t -> Event.t -> bool
(** [exists_weaker h e] is [true] iff the history holds an access weaker
    than [e], i.e. [e] is redundant and can be discarded without
    affecting the reporting guarantee. *)

val find_race : t -> Event.t -> prior option
(** [find_race h e] performs the three-case traversal: subtrees under an
    edge labeled with a lock of [e.locks] cannot race (Case I); a node
    whose thread-meet with [e] is [Bot] and kind-meet is [Write] is a
    race (Case II), reported immediately; otherwise children are searched
    (Case III). *)

val update : t -> Event.t -> unit
(** [update h e] meets [e] into the node addressed by [e.locks]
    (creating it if needed) and then removes every stored access that the
    updated node is weaker than. *)

val process : t -> Event.t -> prior option * bool
(** [process h e] handles one event end-to-end: the race check always
    runs, and the history is updated unless a stored access weaker than
    [e] exists.  Returns the race found (if any) and whether [e] was
    redundant (history left unchanged).

    Note on fidelity: the paper (Section 3.2.1) runs the weakness check
    {e first} and skips the race check entirely when it succeeds.  That
    is unsound for its own reporting guarantee (Definition 1): the
    weaker-than theorem covers every {e future} race of [e], but not
    [e]'s races with {e past} accesses that are still stored.  A
    counterexample found by this repository's property tests: on one
    location, T1 reads with lockset ∅; T1 writes with lockset [{3}]; T0
    reads with lockset [{3}] (merging the [{3}] node to [(t_bot, WRITE)]
    — a thread/kind combination that never occurred as one access); then
    a write by T2 with lockset [{0;3}] is declared redundant by the
    merged node although its race with the initial read was never
    examined, and no race is ever reported for the location.  Running
    the race check unconditionally (the weakness check still gates the
    update) restores Definition 1 — the per-event cost stays one trie
    traversal. *)

val fold_accesses :
  (locks:Event.Lockset.t ->
  thread:Event.thread_info ->
  kind:Event.kind ->
  site:Event.site_id ->
  'a ->
  'a) ->
  t ->
  'a ->
  'a
(** Fold over the stored (non-[Top]) accesses; for tests and debugging. *)

val pp : t Fmt.t
