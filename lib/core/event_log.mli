(** Post-mortem detection support (paper Section 1: "our approach could
    be easily modified to perform post-mortem datarace detection by
    creating a log of access events during program execution and
    performing the final datarace detection phase off-line").

    A log records the full interleaved stream the detector would have
    consumed online — access events plus the outermost lock transitions
    and thread lifecycle the runtime optimizer needs — and can be
    replayed into any detector later, or serialized to a file for
    off-host analysis. *)

type entry =
  | Access of Event.t
  | Acquire of Event.thread_id * Event.lock_id
  | Release of Event.thread_id * Event.lock_id
  | Thread_start of Event.thread_id * Event.thread_id  (** parent, child *)
  | Thread_join of Event.thread_id * Event.thread_id  (** joiner, joinee *)
  | Thread_exit of Event.thread_id

type t

val create : unit -> t

val record : t -> entry -> unit

val length : t -> int

val entries : t -> entry list
(** In recording order.  Allocates a fresh list; use {!iter} where a
    traversal suffices. *)

val iter : (entry -> unit) -> t -> unit
(** Iterate in recording order without materializing a list. *)

val replay : t -> Detector.t -> unit
(** Feed the log through a detector, reproducing exactly the online
    behaviour (modulo the detector's own configuration). *)

val to_channel : out_channel -> t -> unit
(** Serialize in a line-oriented text format. *)

val entry_to_line : entry -> string
(** One entry in the serialized text format, without the newline. *)

val entry_of_line : string -> (entry option, string) result
(** Parse one line of the text format: [Ok None] for a blank line,
    [Ok (Some e)] for an entry, [Error msg] (naming the offending field
    and quoting the line) for malformed input.  This is the streaming
    entry point — the serve daemon decodes each line as it arrives
    without buffering the stream; {!of_channel} is a fold over it. *)

val of_channel : in_channel -> t
(** Parse a log serialized by {!to_channel}.  Raises [Failure] on
    malformed input, with a message naming the 1-based line number,
    the offending field and the line itself. *)

val equal_entry : entry -> entry -> bool
(** Structural equality with set semantics for locksets. *)

val pp_entry : entry Fmt.t
