type entry = { mutable loc : int; mutable stamp : int }
(* [loc = -1] marks an invalid entry.  [stamp] is bumped every time the
   entry is reused for a new location, so that the (entry, stamp) pairs
   recorded on lock frames can detect that their entry was since
   replaced and must not be evicted again. *)

type frame = { lock : int; mutable inserted : (entry * int) list }

type t = {
  read : entry array;
  write : entry array;
  mask : int;
  mutable lock_stack : frame list; (* innermost (last acquired) first *)
  mutable hits : int;
  mutable misses : int;
}

let create ?(size = 256) () =
  if size <= 0 || size land (size - 1) <> 0 then
    invalid_arg "Cache.create: size must be a positive power of two";
  let mk () = Array.init size (fun _ -> { loc = -1; stamp = 0 }) in
  { read = mk (); write = mk (); mask = size - 1; lock_stack = [];
    hits = 0; misses = 0 }

(* Knuth multiplicative hash, as in the paper's implementation note. *)
let index c loc = (loc * 0x9E3779B1) lsr 16 land c.mask

let lookup_or_add c ~kind ~loc =
  let arr = match (kind : Event.kind) with Read -> c.read | Write -> c.write in
  let e = arr.(index c loc) in
  if e.loc = loc then begin
    c.hits <- c.hits + 1;
    true
  end
  else begin
    c.misses <- c.misses + 1;
    e.loc <- loc;
    e.stamp <- e.stamp + 1;
    (match c.lock_stack with
    | f :: _ -> f.inserted <- (e, e.stamp) :: f.inserted
    | [] -> ());
    false
  end

let acquired c lock = c.lock_stack <- { lock; inserted = [] } :: c.lock_stack

let evict_frame f =
  List.iter (fun (e, st) -> if e.stamp = st then e.loc <- -1) f.inserted;
  f.inserted <- []

let clear c =
  let kill arr = Array.iter (fun e -> e.loc <- -1) arr in
  kill c.read;
  kill c.write

(* Malformed event streams (hand-written or truncated logs) can release
   a lock the thread never acquired.  That must not kill a whole replay:
   warn once and fall back to clearing the caches, which over-evicts and
   is therefore always safe for the hit-implies-weaker guarantee. *)
let warned_unheld = Atomic.make false

let warn_unheld lock =
  if not (Atomic.exchange warned_unheld true) then
    Printf.eprintf
      "[drd] warning: release of lock %d that is not held; clearing access \
       cache (further such warnings suppressed)\n%!"
      lock

let released c lock =
  (* The source language's synchronized blocks release in LIFO order,
     but [wait()] releases an arbitrary owned monitor.  For a
     non-innermost release we evict every frame from the top down
     through the released lock's frame — over-eviction is always safe —
     and keep the (flushed) frames of the locks that remain held, so
     later releases still find them. *)
  let rec split acc = function
    | [] -> None
    | f :: rest ->
        evict_frame f;
        if f.lock = lock then Some (List.rev acc, rest)
        else split (f :: acc) rest
  in
  match split [] c.lock_stack with
  | Some (kept_above, below) -> c.lock_stack <- kept_above @ below
  | None ->
      (* Every held frame was already flushed by the walk above; the
         stack itself is kept so genuinely-held locks still find their
         frames on their own release. *)
      warn_unheld lock;
      clear c

let reset c =
  clear c;
  c.lock_stack <- [];
  c.hits <- 0;
  c.misses <- 0

let evict_loc c loc =
  let kill arr =
    let e = arr.(index c loc) in
    if e.loc = loc then e.loc <- -1
  in
  kill c.read;
  kill c.write

let hits c = c.hits
let misses c = c.misses
