(** Per-thread access caches — the runtime optimizer (paper Section 4).

    Each thread owns two direct-mapped caches indexed by memory location,
    one for reads and one for writes.  The eviction policy guarantees
    that a cache hit implies a weaker access has already been recorded by
    the detector, so the event can be dropped without further checks:

    - per-thread caches guarantee [p.t = q.t];
    - separate read/write caches guarantee [p.a = q.a];
    - evicting, at each outermost [monitorexit] of lock [l], every entry
      whose lockset contained [l] guarantees [p.L ⊆ q.L].

    Eviction uses the nested (LIFO) locking discipline of the source
    language: each currently-held lock keeps the list of entries that
    were inserted while it was the most recently acquired lock, and that
    whole list is evicted when the lock is released.  Join pseudo-locks
    (Section 2.3) are never released and must {e not} be pushed through
    {!acquired}/{!released}; because a thread's pseudo-lockset only
    grows, the subset guarantee holds for them without eviction. *)

type t
(** The pair of caches (read and write) of one thread. *)

val create : ?size:int -> unit -> t
(** [create ?size ()] makes an empty cache pair.  [size] is the number of
    entries per cache and must be a power of two; it defaults to 256,
    the configuration measured in the paper (Section 4.3). *)

val lookup_or_add : t -> kind:Event.kind -> loc:Event.loc_id -> bool
(** [lookup_or_add c ~kind ~loc] is [true] on a hit — the access is
    redundant and must not be forwarded to the detector.  On a miss the
    access is inserted (attached to the most recently acquired held lock,
    if any) and the caller must forward the event. *)

val acquired : t -> Event.lock_id -> unit
(** Note an outermost acquisition of a real lock.  Reentrant
    re-acquisitions must be filtered out by the caller. *)

val released : t -> Event.lock_id -> unit
(** Note an outermost release of a real lock; evicts the entries
    inserted under it.  Synchronized blocks release in LIFO order, but
    [wait()] may release a non-innermost monitor: in that case every
    frame above it is conservatively flushed (over-eviction is safe)
    while remaining on the stack for its own later release.  If the lock
    was never acquired (a malformed event stream), a warning is printed
    once and both caches are cleared — over-eviction keeps the
    hit-implies-weaker guarantee intact. *)

val evict_loc : t -> Event.loc_id -> unit
(** Forcibly evict one location from both caches; used when the location
    transitions from owned to shared (Section 7.2). *)

val clear : t -> unit
(** Drop every entry (the lock stack is preserved). *)

val reset : t -> unit
(** Return the cache pair to its freshly-created state without
    reallocating the entry arrays: every entry is dropped, the lock
    stack emptied and the hit/miss counters zeroed.  Entry stamps are
    deliberately left alone — they only guard the (entry, stamp) pairs
    recorded on lock frames, and the frames are discarded here. *)

val hits : t -> int
(** Number of lookups answered by a hit since creation. *)

val misses : t -> int
(** Number of lookups that missed and inserted. *)
