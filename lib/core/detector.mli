(** The on-the-fly datarace detector: runtime optimizer (per-thread
    caches), ownership filter and trie-based detection assembled into the
    pipeline of the paper's Figure 1 (right half).

    The event source (the instrumented VM) feeds it access events plus
    outermost lock acquire/release and thread-exit notifications; races
    are pushed into a {!Report.collector}. *)

(** Storage strategy for the access histories. *)
type history_impl =
  | Per_location  (** One trie per memory location (paper Section 3.2). *)
  | Packed
      (** One shared trie for all locations — the packing scheme alluded
          to in Section 8.2; observationally identical, smaller. *)

type config = {
  use_cache : bool;
      (** Enable the per-thread access caches of Section 4.  Disabling
          reproduces the paper's "NoCache" configuration. *)
  cache_size : int;  (** Entries per direct-mapped cache (power of two). *)
  use_ownership : bool;
      (** Enable the ownership filter of Section 7.  Disabling reproduces
          the "NoOwnership" configuration of Table 3. *)
  history : history_impl;
}

val default_config : config
(** Caches of 256 entries and the ownership model enabled — the paper's
    "Full" runtime configuration. *)

type stats = {
  events_in : int;  (** Access events received from the program. *)
  cache_hits : int;  (** Dropped by the runtime optimizer. *)
  ownership_filtered : int;  (** Dropped because the location was owned. *)
  weaker_filtered : int;
      (** Events found redundant by the trie weakness check: their
          history update was skipped (the race check still ran; see the
          fidelity note on {!Trie.process}). *)
  race_checks : int;  (** Events that reached the trie. *)
  races_reported : int;  (** Distinct racy locations reported. *)
  locations_tracked : int;  (** Locations with an allocated trie. *)
  trie_nodes : int;  (** Total trie nodes over all locations. *)
}

type eviction
(** Quiescent-location eviction policy for long-lived (serve-mode)
    detectors: when the number of tracked memory locations exceeds a
    high watermark, the least-recently-accessed locations are retired —
    trie, ownership state and cache entries together — down to a low
    watermark, bounding the detector's memory under indefinite event
    streams.

    Recency is the event count of the location's last access (any
    access, including cache-filtered ones).  Eviction never changes the
    report for a location that is never evicted: every piece of
    detector state is keyed per location (tries, ownership) or only
    produces hits for the location it was inserted under (the
    direct-mapped caches match on the location tag, so removing one
    location's entries can only turn that location's would-be hits into
    misses).  A retired location that is accessed again re-enters the
    detector as brand new — races spanning the eviction horizon for
    that location are the accepted precision loss, exactly as if the
    daemon had been restarted for it. *)

val eviction : ?low:int -> ?track:bool -> high:int -> unit -> eviction
(** [eviction ~high ()] retires locations once more than [high] are
    tracked, keeping the [low] (default [high / 2]) most recently
    accessed.  Raises [Invalid_argument] unless [0 <= low < high].
    [track] (default false) records every retired location so
    {!was_evicted} can answer — a test aid; tracking grows with the
    number of retirements, which an indefinite stream does not bound. *)

type t

val create : ?config:config -> ?eviction:eviction -> Report.collector -> t
(** [?eviction] requires the [Per_location] history (the packed trie
    shares nodes across locations and cannot retire one location's
    state); raises [Invalid_argument] with [Packed]. *)

type outcome =
  | Cache_hit  (** Dropped by the per-thread cache. *)
  | Owned_skip  (** Dropped by the ownership filter. *)
  | Reached
      (** Survived both filters: the trie now holds (or already held) a
          node covering this (thread, locks, kind) at [loc].  Only this
          outcome certifies trie coverage — the specialized VM fast
          paths memoize exclusively on it, because a cache entry is
          inserted {e before} the ownership check (a later identical
          event could hit the cache without the trie ever having seen
          the first one) and an owned-skip event never enters the trie
          at all. *)

val on_access_outcome :
  t ->
  loc:Event.loc_id ->
  thread:Event.thread_id ->
  locks:Lockset_id.id ->
  kind:Event.kind ->
  site:Event.site_id ->
  outcome
(** Exactly {!on_access_interned}, additionally reporting where the
    event stopped in the cache → ownership → trie pipeline. *)

val on_access_interned :
  t ->
  loc:Event.loc_id ->
  thread:Event.thread_id ->
  locks:Lockset_id.id ->
  kind:Event.kind ->
  site:Event.site_id ->
  unit
(** The primary entry point: process one access event end-to-end —
    cache, ownership, weakness check, race check, history update — from
    five scalars.  No [Event.t] is allocated unless the event survives
    both the cache and the ownership filter (i.e. reaches trie
    storage), so cache-hit and ownership-filtered events are processed
    allocation-free.  The baseline detectors ({!Drd_baselines}) expose
    the same shape. *)

val on_access : t -> Event.t -> unit
(** Convenience wrapper: {!on_access_interned} on the fields of a
    pre-built event. *)

val on_acquire : t -> thread:Event.thread_id -> lock:Event.lock_id -> unit
(** Outermost acquisition of a real lock by [thread] (reentrant
    re-acquisitions must not be reported). *)

val on_release : t -> thread:Event.thread_id -> lock:Event.lock_id -> unit
(** Outermost release of a real lock; triggers cache eviction. *)

val on_thread_exit : t -> thread:Event.thread_id -> unit
(** Discard the thread's caches (reset in place; the storage is kept
    for reuse by a pooled detector). *)

val reset : t -> unit
(** Return the detector to its freshly-created state {e in place}:
    access histories, caches, ownership, eviction bookkeeping and stats
    counters are emptied while every grown table and array keeps its
    capacity, so a reused detector allocates (almost) nothing on the
    next execution and observes byte-identically to a fresh one.  The
    attached {!Report.collector} is shared with the caller and is {e
    not} reset here; pooled pipelines call {!Report.reset} alongside.
    The hash-consed {!Lockset_id} interner deliberately survives: it is
    domain-local and append-only, so retained entries are a warm cache,
    never a behavioural difference. *)

val evictions : t -> int
(** Locations retired by the eviction policy so far (0 without one). *)

val live_locations : t -> int
(** Locations currently tracked: with an eviction policy, every
    location with live state of any kind (bounded by the high
    watermark); without one, the locations with an allocated trie. *)

val was_evicted : t -> Event.loc_id -> bool
(** Whether the location was ever retired.  Requires an eviction policy
    created with [~track:true]; raises [Invalid_argument] on an
    untracked policy and returns [false] without a policy. *)

val stats : t -> stats

val pp_stats : stats Fmt.t

module Standard : Detector_intf.S
(** The paper detector behind the common {!Detector_intf.S} shape: a
    [default_config] detector bundled with a private report collector.
    Fork/join ordering is modeled by the join pseudo-locks the event
    source folds into each lockset — the explicit start/join hooks are
    no-ops.  The harness's primary path ({!Drd_harness.Pipeline.run})
    still drives {!t} directly for stats, immutability and lock-order
    side analyses; [Standard] is the uniform face the detector registry
    and the differential arena program against. *)
