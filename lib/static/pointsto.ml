module Ir = Drd_ir.Ir
module Tast = Drd_lang.Tast
module Ast = Drd_lang.Ast

(* Flow-insensitive, subset-based (Andersen-style) may points-to
   analysis with an on-the-fly call graph, over the whole program
   (paper Section 5.3).

   One abstract object per allocation site; all concrete objects
   allocated at the site are merged.  Arrays are field-insensitive (one
   element variable per abstract array, matching the one-location-per-
   array rule); objects are field-sensitive.  Class lock objects and
   the implicit main-thread object are synthetic single-instance
   abstract objects. *)

type ao_kind =
  | Aobj of string (* class name *)
  | Aarr of Ast.ty * int (* element type, remaining dimensions *)
  | Aclassobj of string
  | Amain (* the implicit main-thread object *)

type abs_obj = {
  ao_id : int;
  ao_kind : ao_kind;
  ao_site : (string * int) option; (* (method key, instr id) *)
}

module Iset = Set.Make (Int)

type var =
  | Vreg of string * int (* method key, register *)
  | Vfield of int * int (* abstract object, field index *)
  | Velem of int (* abstract object (array) *)
  | Vstatic of int (* static slot *)
  | Vret of string (* method key *)

type call_site = { cs_method : string; cs_iid : int }

type t = {
  prog : Ir.program;
  objs : abs_obj array;
  pts : (var, Iset.t) Hashtbl.t;
  (* call graph: resolved targets per call site, and reverse edges *)
  call_targets : (string * int, string list ref) Hashtbl.t;
  callers : (string, call_site list ref) Hashtbl.t;
  start_edges : (string, string list ref) Hashtbl.t;
      (* method containing ThreadStart -> run-method targets *)
  start_sites : (string, call_site list ref) Hashtbl.t;
      (* run method -> ThreadStart sites that can start it *)
  reachable : (string, unit) Hashtbl.t; (* reachable methods *)
  main_obj : int;
  class_objs : (string, int) Hashtbl.t;
}

let obj r id = r.objs.(id)

let pts r v = Option.value (Hashtbl.find_opt r.pts v) ~default:Iset.empty

let class_of_ao r id =
  match (obj r id).ao_kind with
  | Aobj c -> Some c
  | Amain -> Some Drd_lang.Ast.thread_class
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Constraint solving *)

type solver = {
  sprog : Ir.program;
  mutable sobjs : abs_obj list; (* reverse *)
  mutable nobjs : int;
  spts : (var, Iset.t) Hashtbl.t;
  subset : (var, var list ref) Hashtbl.t; (* simple edges src ⊆ dst *)
  (* complex constraints attached to a base variable *)
  complex : (var, (int -> unit) list ref) Hashtbl.t;
  mutable worklist : (var * Iset.t) list;
  scall_targets : (string * int, string list ref) Hashtbl.t;
  scallers : (string, call_site list ref) Hashtbl.t;
  sstart_edges : (string, string list ref) Hashtbl.t;
  sstart_sites : (string, call_site list ref) Hashtbl.t;
  sreachable : (string, unit) Hashtbl.t;
  sclass_objs : (string, int) Hashtbl.t;
  processed_methods : (string, unit) Hashtbl.t;
}

let fresh_obj s kind site =
  let o = { ao_id = s.nobjs; ao_kind = kind; ao_site = site } in
  s.sobjs <- o :: s.sobjs;
  s.nobjs <- s.nobjs + 1;
  o.ao_id

let spts s v = Option.value (Hashtbl.find_opt s.spts v) ~default:Iset.empty

let add_pts s v objs =
  let cur = spts s v in
  let nw = Iset.union cur objs in
  if not (Iset.equal cur nw) then begin
    Hashtbl.replace s.spts v nw;
    s.worklist <- (v, Iset.diff nw cur) :: s.worklist
  end

let add_subset s src dst =
  let edges =
    match Hashtbl.find_opt s.subset src with
    | Some r -> r
    | None ->
        let r = ref [] in
        Hashtbl.add s.subset src r;
        r
  in
  if not (List.mem dst !edges) then begin
    edges := dst :: !edges;
    let cur = spts s src in
    if not (Iset.is_empty cur) then add_pts s dst cur
  end

let add_complex s base f =
  let fs =
    match Hashtbl.find_opt s.complex base with
    | Some r -> r
    | None ->
        let r = ref [] in
        Hashtbl.add s.complex base r;
        r
  in
  fs := f :: !fs;
  Iset.iter f (spts s base)

let class_obj s cls =
  match Hashtbl.find_opt s.sclass_objs cls with
  | Some id -> id
  | None ->
      let id = fresh_obj s (Aclassobj cls) None in
      Hashtbl.add s.sclass_objs cls id;
      id

let record_call s ~site ~target =
  let key = (site.cs_method, site.cs_iid) in
  let ts =
    match Hashtbl.find_opt s.scall_targets key with
    | Some r -> r
    | None ->
        let r = ref [] in
        Hashtbl.add s.scall_targets key r;
        r
  in
  if List.mem target !ts then false
  else begin
    ts := target :: !ts;
    let cs =
      match Hashtbl.find_opt s.scallers target with
      | Some r -> r
      | None ->
          let r = ref [] in
          Hashtbl.add s.scallers target r;
          r
    in
    cs := site :: !cs;
    true
  end

(* Bind arguments/return of a call site to a concrete target method. *)
let rec bind_call s caller_key (i : Ir.instr) target_key args dst =
  if record_call s ~site:{ cs_method = caller_key; cs_iid = i.Ir.i_id } ~target:target_key
  then begin
    process_method s target_key;
    List.iteri
      (fun idx arg -> add_subset s (Vreg (caller_key, arg)) (Vreg (target_key, idx)))
      args;
    match dst with
    | Some d -> add_subset s (Vret target_key) (Vreg (caller_key, d))
    | None -> ()
  end

(* Generate constraints for one method (once). *)
and process_method s key =
  if not (Hashtbl.mem s.processed_methods key) then begin
    Hashtbl.replace s.processed_methods key ();
    Hashtbl.replace s.sreachable key ();
    match Ir.find_mir s.sprog key with
    | None -> ()
    | Some m ->
        let tprog = s.sprog.Ir.p_tprog in
        Ir.iter_blocks m (fun b ->
            (* returns *)
            (match b.Ir.b_term with
            | Ir.Ret (Some r) -> add_subset s (Vreg (key, r)) (Vret key)
            | _ -> ());
            List.iter
              (fun (i : Ir.instr) ->
                let reg r = Vreg (key, r) in
                match i.Ir.i_op with
                | Ir.NewObj (d, cls) ->
                    let o = fresh_obj s (Aobj cls) (Some (key, i.Ir.i_id)) in
                    add_pts s (reg d) (Iset.singleton o)
                | Ir.NewArr (d, elem, dims) ->
                    (* One abstract array per dimension level. *)
                    let depth = List.length dims in
                    let rec mk lvl =
                      let o =
                        fresh_obj s (Aarr (elem, lvl)) (Some (key, i.Ir.i_id))
                      in
                      if lvl > 1 then begin
                        let inner = mk (lvl - 1) in
                        add_pts s (Velem o) (Iset.singleton inner)
                      end;
                      o
                    in
                    let o = mk depth in
                    add_pts s (reg d) (Iset.singleton o)
                | Ir.ClassObj (d, cls) ->
                    add_pts s (reg d) (Iset.singleton (class_obj s cls))
                | Ir.Move (d, src) -> add_subset s (reg src) (reg d)
                | Ir.GetField (d, o, fm) ->
                    add_complex s (reg o) (fun ao ->
                        add_subset s (Vfield (ao, fm.Ir.fm_index)) (reg d))
                | Ir.PutField (o, fm, src) ->
                    add_complex s (reg o) (fun ao ->
                        add_subset s (reg src) (Vfield (ao, fm.Ir.fm_index)))
                | Ir.GetStatic (d, sm) ->
                    add_subset s (Vstatic sm.Ir.sm_slot) (reg d)
                | Ir.PutStatic (sm, src) ->
                    add_subset s (reg src) (Vstatic sm.Ir.sm_slot)
                | Ir.ALoad (d, a, _) ->
                    add_complex s (reg a) (fun ao -> add_subset s (Velem ao) (reg d))
                | Ir.AStore (a, _, src) ->
                    add_complex s (reg a) (fun ao -> add_subset s (reg src) (Velem ao))
                | Ir.Call (dst, Ir.Static (cls, name), args, _) ->
                    bind_call s key i (cls ^ "." ^ name) args dst
                | Ir.Call (dst, Ir.Ctor cls, args, _) ->
                    bind_call s key i (cls ^ ".<init>") args dst
                | Ir.Call (dst, Ir.Virtual (_, name), args, _) ->
                    (* Resolve per receiver abstract object class. *)
                    add_complex s
                      (reg (List.hd args))
                      (fun ao ->
                        match
                          match (List.nth s.sobjs (s.nobjs - 1 - ao)).ao_kind with
                          | Aobj c -> Some c
                          | Amain -> Some Drd_lang.Ast.thread_class
                          | _ -> None
                        with
                        | None -> ()
                        | Some cls -> (
                            match Tast.dispatch tprog cls name with
                            | Some tm ->
                                bind_call s key i
                                  (tm.Tast.tm_class ^ "." ^ name)
                                  args dst
                            | None -> ()))
                | Ir.ThreadStart r ->
                    add_complex s (reg r) (fun ao ->
                        match
                          match (List.nth s.sobjs (s.nobjs - 1 - ao)).ao_kind with
                          | Aobj c -> Some c
                          | Amain -> Some Drd_lang.Ast.thread_class
                          | _ -> None
                        with
                        | None -> ()
                        | Some cls -> (
                            match Tast.dispatch tprog cls "run" with
                            | Some tm ->
                                let rk = tm.Tast.tm_class ^ ".run" in
                                process_method s rk;
                                (* The thread object becomes run's this. *)
                                add_pts s (Vreg (rk, 0)) (Iset.singleton ao);
                                let es =
                                  match Hashtbl.find_opt s.sstart_edges key with
                                  | Some r -> r
                                  | None ->
                                      let r = ref [] in
                                      Hashtbl.add s.sstart_edges key r;
                                      r
                                in
                                if not (List.mem rk !es) then es := rk :: !es;
                                let ss =
                                  match Hashtbl.find_opt s.sstart_sites rk with
                                  | Some r -> r
                                  | None ->
                                      let r = ref [] in
                                      Hashtbl.add s.sstart_sites rk r;
                                      r
                                in
                                if
                                  not
                                    (List.exists
                                       (fun c ->
                                         c.cs_method = key && c.cs_iid = i.Ir.i_id)
                                       !ss)
                                then
                                  ss :=
                                    { cs_method = key; cs_iid = i.Ir.i_id } :: !ss
                            | None -> ()))
                | _ -> ())
              b.Ir.b_instrs)
  end

let solve (prog : Ir.program) : t =
  let s =
    {
      sprog = prog;
      sobjs = [];
      nobjs = 0;
      spts = Hashtbl.create 1024;
      subset = Hashtbl.create 1024;
      complex = Hashtbl.create 256;
      worklist = [];
      scall_targets = Hashtbl.create 256;
      scallers = Hashtbl.create 256;
      sstart_edges = Hashtbl.create 16;
      sstart_sites = Hashtbl.create 16;
      sreachable = Hashtbl.create 64;
      sclass_objs = Hashtbl.create 16;
      processed_methods = Hashtbl.create 64;
    }
  in
  let main_obj = fresh_obj s Amain None in
  process_method s prog.Ir.p_main;
  (* Propagate to fixpoint. *)
  let rec loop () =
    match s.worklist with
    | [] -> ()
    | (v, delta) :: rest ->
        s.worklist <- rest;
        (match Hashtbl.find_opt s.subset v with
        | Some dsts -> List.iter (fun d -> add_pts s d delta) !dsts
        | None -> ());
        (match Hashtbl.find_opt s.complex v with
        | Some fs -> Iset.iter (fun o -> List.iter (fun f -> f o) !fs) delta
        | None -> ());
        loop ()
  in
  loop ();
  {
    prog;
    objs = Array.of_list (List.rev s.sobjs);
    pts = s.spts;
    call_targets = s.scall_targets;
    callers = s.scallers;
    start_edges = s.sstart_edges;
    start_sites = s.sstart_sites;
    reachable = s.sreachable;
    main_obj;
    class_objs = s.sclass_objs;
  }

let is_reachable r key = Hashtbl.mem r.reachable key

let callers_of r key =
  match Hashtbl.find_opt r.callers key with Some l -> !l | None -> []

let call_targets_of r key iid =
  match Hashtbl.find_opt r.call_targets (key, iid) with
  | Some l -> !l
  | None -> []

let start_targets_of r key =
  match Hashtbl.find_opt r.start_edges key with Some l -> !l | None -> []

let start_sites_of r run_key =
  match Hashtbl.find_opt r.start_sites run_key with Some l -> !l | None -> []

let n_objs r = Array.length r.objs

let iter_reachable r f =
  Hashtbl.fold (fun k () acc -> k :: acc) r.reachable []
  |> List.sort compare |> List.iter f
