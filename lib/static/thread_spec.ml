module Ir = Drd_ir.Ir
module Tast = Drd_lang.Tast

(* The thread-specific extension of escape analysis (paper Section 5.4).

   Thread-specific methods:
   (1) constructors of Thread subclasses, and run methods that are only
       invoked by being started (never called explicitly);
   (2) non-static methods all of whose direct callers are thread-
       specific non-static methods passing their own [this] as the
       receiver.

   Thread-specific fields: fields declared in Thread subclasses that
   are only accessed through [this] inside thread-specific methods.

   Unsafe threads: thread classes whose constructor can transitively
   reach a [Thread.start] or lets [this] escape.  Accesses to
   thread-specific fields of safe threads cannot participate in a
   datarace and are excluded from the static race set. *)

type t = {
  specific_methods : (string, unit) Hashtbl.t;
  specific_fields : (string * int, unit) Hashtbl.t; (* declaring class, index *)
  unsafe_classes : (string, unit) Hashtbl.t;
  specific_objects : (int, unit) Hashtbl.t; (* abstract objects *)
}

let thread_classes (prog : Ir.program) =
  let tprog = prog.Ir.p_tprog in
  Hashtbl.fold
    (fun name (ci : Tast.class_info) acc ->
      if ci.Tast.cls_is_thread then name :: acc else acc)
    tprog.Tast.classes []
  |> List.sort compare

let compute (pt : Pointsto.t) : t =
  let prog = pt.Pointsto.prog in
  let tprog = prog.Ir.p_tprog in
  let threads = thread_classes prog in
  let is_thread_class c =
    match Tast.find_class tprog c with
    | Some ci -> ci.Tast.cls_is_thread
    | None -> false
  in
  (* Instruction lookup for call-site inspection. *)
  let instr_tbl = Hashtbl.create 1024 in
  Ir.iter_mirs prog (fun m ->
      Ir.iter_instrs m (fun _ i ->
          Hashtbl.replace instr_tbl (Ir.mir_key m, i.Ir.i_id) i));
  (* Explicitly-invoked run methods. *)
  let explicitly_called = Hashtbl.create 16 in
  Ir.iter_mirs prog (fun m ->
      Ir.iter_instrs m (fun _ i ->
          match i.Ir.i_op with
          | Ir.Call _ ->
              List.iter
                (fun tgt -> Hashtbl.replace explicitly_called tgt ())
                (Pointsto.call_targets_of pt (Ir.mir_key m) i.Ir.i_id)
          | _ -> ()));
  (* Base set: thread constructors and start-only run methods. *)
  let specific = Hashtbl.create 32 in
  List.iter
    (fun cls ->
      let ctor = cls ^ ".<init>" in
      if Hashtbl.mem prog.Ir.p_methods ctor then
        Hashtbl.replace specific ctor ();
      match Tast.dispatch tprog cls "run" with
      | Some tm ->
          let rk = tm.Tast.tm_class ^ ".run" in
          if not (Hashtbl.mem explicitly_called rk) then
            Hashtbl.replace specific rk ()
      | None -> ())
    threads;
  (* Closure rule (2): non-static methods whose direct callers are all
     thread-specific non-static methods passing their own this.  The
     set can only shrink as callers are examined, so iterate a
     candidate-removal fixpoint. *)
  let is_instance key =
    match Ir.find_mir prog key with
    | Some m -> not m.Ir.mir_static
    | None -> false
  in
  let candidate key =
    is_instance key
    && (not (Hashtbl.mem specific key))
    && Pointsto.is_reachable pt key
    &&
    let callers = Pointsto.callers_of pt key in
    callers <> []
  in
  let passes_this (cs : Pointsto.call_site) =
    match Hashtbl.find_opt instr_tbl (cs.Pointsto.cs_method, cs.Pointsto.cs_iid) with
    | Some { Ir.i_op = Ir.Call (_, Ir.Virtual _, recv :: _, _); _ } -> recv = 0
    | _ -> false
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Pointsto.iter_reachable pt (fun key ->
        if candidate key then
          let callers = Pointsto.callers_of pt key in
          let ok =
            List.for_all
              (fun (cs : Pointsto.call_site) ->
                Hashtbl.mem specific cs.Pointsto.cs_method
                && is_instance cs.Pointsto.cs_method
                && passes_this cs)
              callers
          in
          if ok then begin
            Hashtbl.replace specific key ();
            changed := true
          end)
  done;
  (* Thread-specific fields: declared in thread classes, accessed only
     via [this] within thread-specific methods. *)
  let field_ok = Hashtbl.create 32 in
  let disqualify = Hashtbl.create 32 in
  List.iter
    (fun cls ->
      match Tast.find_class tprog cls with
      | Some ci ->
          Array.iter
            (fun (f : Tast.field_info) ->
              (* Only fields declared in thread classes themselves. *)
              if is_thread_class f.Tast.fld_owner then
                Hashtbl.replace field_ok (f.Tast.fld_owner, f.Tast.fld_index) ())
            ci.Tast.cls_fields
      | None -> ())
    threads;
  Ir.iter_mirs prog (fun m ->
      let key = Ir.mir_key m in
      let meth_specific = Hashtbl.mem specific key && not m.Ir.mir_static in
      Ir.iter_instrs m (fun _ i ->
          match i.Ir.i_op with
          | Ir.GetField (_, o, fm) | Ir.PutField (o, fm, _) ->
              let k = (fm.Ir.fm_class, fm.Ir.fm_index) in
              if
                Hashtbl.mem field_ok k
                && not (meth_specific && o = 0)
              then Hashtbl.replace disqualify k ()
          | _ -> ()));
  let specific_fields_tbl = Hashtbl.create 32 in
  Hashtbl.iter
    (fun k () ->
      if not (Hashtbl.mem disqualify k) then Hashtbl.replace specific_fields_tbl k ())
    field_ok;
  (* Unsafe threads: constructor reaches Thread.start, or this escapes
     the constructor (stored to the heap, a static, an array, or passed
     in a non-receiver position / to a non-thread-specific callee). *)
  let unsafe = Hashtbl.create 8 in
  let reaches_start =
    let memo = Hashtbl.create 32 in
    let rec go visiting key =
      match Hashtbl.find_opt memo key with
      | Some b -> b
      | None ->
          if List.mem key visiting then false
          else
            let b =
              match Ir.find_mir prog key with
              | None -> false
              | Some m ->
                  let found = ref false in
                  Ir.iter_instrs m (fun _ i ->
                      match i.Ir.i_op with
                      | Ir.ThreadStart _ -> found := true
                      | Ir.Call _ ->
                          if
                            List.exists
                              (go (key :: visiting))
                              (Pointsto.call_targets_of pt key i.Ir.i_id)
                          then found := true
                      | _ -> ());
                  !found
            in
            Hashtbl.replace memo key b;
            b
    in
    go []
  in
  let this_escapes key =
    match Ir.find_mir prog key with
    | None -> false
    | Some m ->
        let escapes = ref false in
        Ir.iter_instrs m (fun _ i ->
            match i.Ir.i_op with
            | Ir.PutField (_, _, src) when src = 0 -> escapes := true
            | Ir.PutStatic (_, src) when src = 0 -> escapes := true
            | Ir.AStore (_, _, src) when src = 0 -> escapes := true
            | Ir.Call (_, _, args, _) ->
                List.iteri
                  (fun idx a ->
                    if a = 0 && idx > 0 then escapes := true
                    else if a = 0 && idx = 0 then
                      (* receiver position: fine only if every target is
                         itself thread-specific *)
                      if
                        not
                          (List.for_all
                             (Hashtbl.mem specific)
                             (Pointsto.call_targets_of pt key i.Ir.i_id))
                      then escapes := true)
                  args
            | _ -> ());
        Ir.iter_blocks m (fun b ->
            match b.Ir.b_term with
            | Ir.Ret (Some r) when r = 0 -> escapes := true
            | _ -> ());
        !escapes
  in
  List.iter
    (fun cls ->
      let ctor = cls ^ ".<init>" in
      if Hashtbl.mem prog.Ir.p_methods ctor then begin
        if reaches_start ctor || this_escapes ctor then
          Hashtbl.replace unsafe cls ()
      end)
    threads;
  (* Thread-specific OBJECTS (Section 5.4, last paragraph): an abstract
     object only reachable through thread-specific methods of a safe
     thread or through its thread-specific fields cannot be involved in
     a race.  Computed as a greatest fixpoint over the points-to
     results: start from every object held somewhere and remove any
     object one of whose holders is not a qualifying variable (the
     element variable of another candidate array keeps the candidate
     alive only while its parent stays a candidate). *)
  let field_owner_of ao idx =
    match (Pointsto.obj pt ao).Pointsto.ao_kind with
    | Pointsto.Aobj cls | Pointsto.Aclassobj cls -> (
        match Tast.find_class tprog cls with
        | Some ci when idx < Array.length ci.Tast.cls_fields ->
            Some ci.Tast.cls_fields.(idx)
        | _ -> None)
    | Pointsto.Amain -> None
    | Pointsto.Aarr _ -> None
  in
  let holders : (int, Pointsto.var list ref) Hashtbl.t = Hashtbl.create 256 in
  Hashtbl.iter
    (fun v objs ->
      Pointsto.Iset.iter
        (fun o ->
          let r =
            match Hashtbl.find_opt holders o with
            | Some r -> r
            | None ->
                let r = ref [] in
                Hashtbl.add holders o r;
                r
          in
          r := v :: !r)
        objs)
    pt.Pointsto.pts;
  let candidate = Hashtbl.create 64 in
  Hashtbl.iter (fun o _ -> Hashtbl.replace candidate o true) holders;
  let method_of_key key =
    match Ir.find_mir prog key with Some m -> Some m | None -> None
  in
  let var_ok o_candidates v =
    match (v : Pointsto.var) with
    | Pointsto.Vreg (m, _) -> (
        Hashtbl.mem specific m
        &&
        match method_of_key m with
        | Some mir -> not mir.Ir.mir_static
        | None -> false)
    | Pointsto.Vfield (ao, idx) -> (
        match field_owner_of ao idx with
        | Some fi ->
            Hashtbl.mem specific_fields_tbl (fi.Tast.fld_owner, fi.Tast.fld_index)
            && not (Hashtbl.mem unsafe fi.Tast.fld_owner)
        | None -> false)
    | Pointsto.Velem parent ->
        (* inner array of a candidate array *)
        Option.value (Hashtbl.find_opt o_candidates parent) ~default:false
    | Pointsto.Vstatic _ | Pointsto.Vret _ -> false
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Hashtbl.iter
      (fun o live ->
        if live then
          let hs = Option.value (Hashtbl.find_opt holders o) ~default:(ref []) in
          if not (List.for_all (var_ok candidate) !hs) then begin
            Hashtbl.replace candidate o false;
            changed := true
          end)
      (Hashtbl.copy candidate)
  done;
  let specific_objects = Hashtbl.create 64 in
  Hashtbl.iter
    (fun o live -> if live then Hashtbl.replace specific_objects o ())
    candidate;
  {
    specific_methods = specific;
    specific_fields = specific_fields_tbl;
    unsafe_classes = unsafe;
    specific_objects;
  }

let is_specific_method t key = Hashtbl.mem t.specific_methods key

let is_specific_field t ~cls ~index = Hashtbl.mem t.specific_fields (cls, index)

let is_unsafe_class t cls = Hashtbl.mem t.unsafe_classes cls

let is_specific_object t ao = Hashtbl.mem t.specific_objects ao

(* An access instruction that cannot race because it touches a
   thread-specific field of a safe thread. *)
let access_is_thread_specific t (i : Ir.instr) =
  match i.Ir.i_op with
  | Ir.GetField (_, _, fm) | Ir.PutField (_, fm, _) ->
      is_specific_field t ~cls:fm.Ir.fm_class ~index:fm.Ir.fm_index
      && not (is_unsafe_class t fm.Ir.fm_class)
  | _ -> false
