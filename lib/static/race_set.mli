(** Static datarace analysis (paper Section 5): computes the {e static
    datarace set} — the access statements that may participate in a
    datarace in some execution.  Statements outside the set need not be
    instrumented at all.

    For two access statements [x] and [y] (Equation 1):

    [IsMayRace(x,y) ⟺ AccMayConflict(x,y) ∧ ¬MustSameThread(x,y)
     ∧ ¬MustCommonSync(x,y)]

    - [AccMayConflict] — same field and overlapping may points-to sets
      of the bases (Equation 2);
    - [MustSameThread] — the statements' methods are only reachable
      from thread roots whose must thread objects intersect
      (Equation 3);
    - [MustCommonSync] — the must-held locksets intersect (Equation 4);

    refined by the thread-specific escape extension of Section 5.4:
    accesses to thread-specific fields of safe threads are excluded,
    and so are statements in unreachable methods. *)

module Ir = Drd_ir.Ir

type t

type stats = {
  reachable_methods : int;
  access_statements : int;  (** Access statements in reachable code. *)
  in_race_set : int;  (** Statements that may race. *)
  thread_specific_excluded : int;
  abstract_objects : int;
}

val compute : Ir.program -> t
(** Run the whole static analysis stack: points-to + call graph,
    single-instance must points-to, MustSync/MustThread over the ICG,
    and the thread-specific extension. *)

val may_race : t -> Ir.mir -> Ir.instr -> bool
(** Is this access statement in the static datarace set?  This is the
    [keep] predicate handed to the instrumentation pass.  Statements of
    unreachable methods are not in the set. *)

val peers_of : t -> meth:string -> iid:int -> (string * int) list
(** The statements that may race with the given access statement —
    Section 2.6's debugging aid: a dynamic report's site can be linked
    back to the (usually small) set of statically-possible peer source
    locations.  Capped at 16 entries per statement. *)

val stats : t -> stats

val pointsto : t -> Pointsto.t
(** The underlying points-to results (exposed for tests and tools). *)

val icg : t -> Icg.t
(** The interthread call graph with its Must/MaySync results (consumed
    by the link-time trace specializer). *)

val must : t -> Must.t
(** The single-instance must points-to results. *)

val thread_spec : t -> Thread_spec.t

val pp_stats : stats Fmt.t
