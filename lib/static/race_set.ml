module Ir = Drd_ir.Ir
module Iset = Pointsto.Iset
open Drd_core

type t = {
  pt : Pointsto.t;
  must : Must.t;
  icg : Icg.t;
  ts : Thread_spec.t;
  set : (string * int, unit) Hashtbl.t; (* (method key, iid) in race set *)
  peers : (string * int, (string * int) list ref) Hashtbl.t;
      (* statement -> statically possible racing statements (capped) *)
  mutable st : stats;
}

and stats = {
  reachable_methods : int;
  access_statements : int;
  in_race_set : int;
  thread_specific_excluded : int;
  abstract_objects : int;
}

type access = {
  a_key : string; (* method *)
  a_instr : Ir.instr;
  a_kind : Event.kind;
  a_base : Pointsto.var option; (* None for statics *)
}

type group = Gfield of string * int | Gstatic of int | Garray

let accesses_of (pt : Pointsto.t) : (group, access list ref) Hashtbl.t =
  let prog = pt.Pointsto.prog in
  let groups = Hashtbl.create 64 in
  let add g a =
    let r =
      match Hashtbl.find_opt groups g with
      | Some r -> r
      | None ->
          let r = ref [] in
          Hashtbl.add groups g r;
          r
    in
    r := a :: !r
  in
  Pointsto.iter_reachable pt (fun key ->
      match Ir.find_mir prog key with
      | None -> ()
      | Some m ->
          Ir.iter_instrs m (fun _ i ->
              let acc g kind base =
                add g
                  {
                    a_key = key;
                    a_instr = i;
                    a_kind = kind;
                    a_base = base;
                  }
              in
              match i.Ir.i_op with
              | Ir.GetField (_, o, fm) ->
                  acc
                    (Gfield (fm.Ir.fm_class, fm.Ir.fm_index))
                    Event.Read
                    (Some (Pointsto.Vreg (key, o)))
              | Ir.PutField (o, fm, _) ->
                  acc
                    (Gfield (fm.Ir.fm_class, fm.Ir.fm_index))
                    Event.Write
                    (Some (Pointsto.Vreg (key, o)))
              | Ir.GetStatic (_, sm) ->
                  acc (Gstatic sm.Ir.sm_slot) Event.Read None
              | Ir.PutStatic (sm, _) ->
                  acc (Gstatic sm.Ir.sm_slot) Event.Write None
              | Ir.ALoad (_, a, _) ->
                  acc Garray Event.Read (Some (Pointsto.Vreg (key, a)))
              | Ir.AStore (a, _, _) ->
                  acc Garray Event.Write (Some (Pointsto.Vreg (key, a)))
              | _ -> ()))
  ;
  groups

let compute (prog : Ir.program) : t =
  let pt = Pointsto.solve prog in
  let must = Must.create pt in
  let icg = Icg.compute pt must in
  let ts = Thread_spec.compute pt in
  let groups = accesses_of pt in
  let set = Hashtbl.create 256 in
  let peers = Hashtbl.create 256 in
  let max_peers = 16 in
  let add_peer a b =
    let r =
      match Hashtbl.find_opt peers a with
      | Some r -> r
      | None ->
          let r = ref [] in
          Hashtbl.add peers a r;
          r
    in
    if List.length !r < max_peers && not (List.mem b !r) then r := b :: !r
  in
  let n_access = ref 0 in
  let n_ts_excluded = ref 0 in
  Hashtbl.iter (fun _ r -> n_access := !n_access + List.length !r) groups;
  (* An access is excluded when it touches a thread-specific field, or
     when every object its base can point to is thread-specific
     (Section 5.4's object rule — what proves a thread's private copies
     and scratch arrays race-free). *)
  let base_thread_specific a =
    match a.a_base with
    | None -> false
    | Some v ->
        let objs = Pointsto.pts pt v in
        (not (Iset.is_empty objs))
        && Iset.for_all (Thread_spec.is_specific_object ts) objs
  in
  let may_conflict x y =
    match (x.a_base, y.a_base) with
    | None, None -> true (* same static slot by grouping *)
    | Some bx, Some by ->
        not (Iset.disjoint (Pointsto.pts pt bx) (Pointsto.pts pt by))
    | _ -> false
  in
  let is_may_race x y =
    (x.a_kind = Event.Write || y.a_kind = Event.Write)
    && may_conflict x y
    && (not (Icg.must_same_thread icg x.a_key y.a_key))
    && not (Icg.must_common_sync icg x.a_key x.a_instr y.a_key y.a_instr)
  in
  Hashtbl.iter
    (fun _ r ->
      let accs =
        List.filter
          (fun a ->
            let excluded =
              Thread_spec.access_is_thread_specific ts a.a_instr
              || base_thread_specific a
            in
            if excluded then incr n_ts_excluded;
            not excluded)
          !r
        |> Array.of_list
      in
      let n = Array.length accs in
      for i = 0 to n - 1 do
        for j = i to n - 1 do
          let x = accs.(i) and y = accs.(j) in
          if is_may_race x y then begin
            let kx = (x.a_key, x.a_instr.Ir.i_id)
            and ky = (y.a_key, y.a_instr.Ir.i_id) in
            Hashtbl.replace set kx ();
            Hashtbl.replace set ky ();
            add_peer kx ky;
            if kx <> ky then add_peer ky kx
          end
        done
      done)
    groups;
  let st =
    {
      reachable_methods = Hashtbl.length pt.Pointsto.reachable;
      access_statements = !n_access;
      in_race_set = Hashtbl.length set;
      thread_specific_excluded = !n_ts_excluded;
      abstract_objects = Pointsto.n_objs pt;
    }
  in
  { pt; must; icg; ts; set; peers; st }

let may_race t (m : Ir.mir) (i : Ir.instr) =
  Hashtbl.mem t.set (Ir.mir_key m, i.Ir.i_id)

(* The statically-possible racing statements of an access statement —
   the debugging aid of Section 2.6 ("our static datarace analyzer can
   provide a (usually small) set of source locations whose execution
   could potentially race with e").  Capped at 16 peers. *)
let peers_of t ~meth ~iid =
  match Hashtbl.find_opt t.peers (meth, iid) with
  | Some r -> List.rev !r
  | None -> []

let stats t = t.st

let pointsto t = t.pt

let icg t = t.icg

let must t = t.must

let thread_spec t = t.ts

let pp_stats ppf (s : stats) =
  Fmt.pf ppf
    "@[<v>reachable methods:        %d@ access statements:        %d@ in \
     static race set:       %d@ thread-specific excluded: %d@ abstract \
     objects:         %d@]"
    s.reachable_methods s.access_statements s.in_race_set
    s.thread_specific_excluded s.abstract_objects
