module Ir = Drd_ir.Ir
module Link = Drd_ir.Link
module Site_table = Drd_ir.Site_table
module Iset = Pointsto.Iset
module Event = Drd_core.Event

(* Link-time trace specialization (the "compile the detector into the
   image" pass): consult the static analysis once per surviving trace
   site and hand {!Link.link} a table mapping sites to cheap runtime
   check classes.  The soundness rule throughout is that a fact must
   hold for {e every} execution of the site — a near-miss fact (a lock
   held on one path but dropped on another, an allocation inside a
   loop, a single post-start write) leaves the site generic.

   Classes, in priority order per alias component:

   - [Sro] (read-only after init): every traced write that can alias
     the component's locations executes before any thread start.  While
     main is the only live thread, the ownership filter absorbs its
     accesses, so no write ever reaches trie storage; post-start the
     stream for these locations is reads only, and reads never race
     reads.  Read sites may therefore drop everything after a first
     sighting without perturbing any report.

   - [Sowned] / managed [Sfixed] (owned until escape): when {e every}
     live site of the component qualifies — instance/array sites whose
     base may-points-to exactly one abstract object, or sites with a
     pinned lockset (below); statics qualify only through the pinned
     lockset — the component is {e managed}: its sites share the
     runtime's location-owner map.  Component construction makes this
     exact in every execution: sites land in the same component iff
     their bases' may points-to sets overlap (statics: same slot), and
     a concrete object belongs to exactly one abstract object, so every
     traced event that can touch one of the component's locations flows
     through a managed site.  A location's first event is forwarded and
     its owner recorded iff the detector's own ownership filter
     absorbed it; repeats by the owner are dropped (the filter would
     absorb them, or the cache would — neither touches trie storage);
     the first non-matching event demotes the location for good and is
     forwarded, so the detector performs its Became_shared transition
     exactly as without the shortcut.

   - [Sfixed] (pinned lockset): the must-held and may-held locksets of
     the site coincide and every lock in them is single-instance, so
     the lockset a thread holds at the site never varies by path.  The
     cell memoizes the last (thread, location, kind, lockset-id) tuple
     that reached trie storage; an exact repeat is redundant for the
     trie and any race it could report is already recorded for its
     location (race reports are deduplicated per location and stored
     coverage only grows), so it is dropped.  Works standalone (per
     site, no component condition), so fixed sites in unmanaged
     components still specialize; in a managed component the memo is
     the post-demotion fallback.

   The analyses here (MaySync, the interprocedural pre-start pass) are
   conservative over the same call graph and points-to results the
   static race set uses; a site in an unreachable method, or whose base
   has an empty points-to set, is left generic — as is any site with
   neither a pinned lockset nor a managed component, e.g. a lock held
   on one path but dropped on another, or a base that may alias two
   allocation sites. *)

(* ---- may-start: can executing this method transitively start a
   thread? ---- *)

let compute_may_start (pt : Pointsto.t) : (string, bool) Hashtbl.t =
  let prog = pt.Pointsto.prog in
  let ms = Hashtbl.create 64 in
  Pointsto.iter_reachable pt (fun key ->
      match Ir.find_mir prog key with
      | None -> ()
      | Some m ->
          let has = ref false in
          Ir.iter_instrs m (fun _ i ->
              match i.Ir.i_op with
              | Ir.ThreadStart _ -> has := true
              | _ -> ());
          Hashtbl.replace ms key !has);
  let starts key =
    Option.value (Hashtbl.find_opt ms key) ~default:false
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Pointsto.iter_reachable pt (fun key ->
        if not (starts key) then
          match Ir.find_mir prog key with
          | None -> ()
          | Some m ->
              let hit = ref false in
              Ir.iter_instrs m (fun _ i ->
                  match i.Ir.i_op with
                  | Ir.Call _ ->
                      if
                        List.exists starts
                          (Pointsto.call_targets_of pt key i.Ir.i_id)
                      then hit := true
                  | _ -> ());
              if !hit then begin
                Hashtbl.replace ms key true;
                changed := true
              end)
  done;
  ms

(* ---- pre-start: is this statement executed only before any thread
   start, on every path?  Greatest fixpoint: PS(main's entry) = true,
   PS(entry of a started run method) = false, PS(entry of m) = the
   conjunction of start-cleanliness at every call site of m; inside a
   method, cleanliness is a forward all-paths dataflow killed by
   [ThreadStart] and by calls into may-starting methods. ---- *)

let compute_prestart (pt : Pointsto.t) (may_start : (string, bool) Hashtbl.t)
    : (string * int, bool) Hashtbl.t =
  let prog = pt.Pointsto.prog in
  let starts key =
    Option.value (Hashtbl.find_opt may_start key) ~default:false
  in
  let reachable = ref [] in
  Pointsto.iter_reachable pt (fun key ->
      if Ir.find_mir prog key <> None then reachable := key :: !reachable);
  let reachable = List.sort compare !reachable in
  let ps_entry = Hashtbl.create 64 in
  List.iter
    (fun key ->
      let pinned_false =
        key <> prog.Ir.p_main && Pointsto.start_sites_of pt key <> []
      in
      Hashtbl.replace ps_entry key (not pinned_false))
    reachable;
  (* Forward all-paths cleanliness inside one method, given the entry
     value; records the pre-instruction value of every instruction. *)
  let clean_at = Hashtbl.create 256 in
  let flow key =
    match Ir.find_mir prog key with
    | None -> ()
    | Some m ->
        let entry_val = Hashtbl.find ps_entry key in
        let n = Ir.n_blocks m in
        let block_in = Array.make n true in
        let block_out = Array.make n true in
        let kill (i : Ir.instr) =
          match i.Ir.i_op with
          | Ir.ThreadStart _ -> true
          | Ir.Call _ ->
              List.exists starts (Pointsto.call_targets_of pt key i.Ir.i_id)
          | _ -> false
        in
        let transfer l record =
          let v = ref block_in.(l) in
          List.iter
            (fun (i : Ir.instr) ->
              if record then Hashtbl.replace clean_at (key, i.Ir.i_id) !v;
              if kill i then v := false)
            (Ir.block m l).Ir.b_instrs;
          !v
        in
        block_in.(m.Ir.mir_entry) <- entry_val;
        let changed = ref true in
        while !changed do
          changed := false;
          for l = 0 to n - 1 do
            let out = transfer l false in
            if out <> block_out.(l) then begin
              block_out.(l) <- out;
              changed := true
            end;
            (match (Ir.block m l).Ir.b_term with
            | Ir.Goto t ->
                if out < block_in.(t) then begin
                  block_in.(t) <- out;
                  changed := true
                end
            | Ir.If (_, t, f) ->
                if out < block_in.(t) then begin
                  block_in.(t) <- out;
                  changed := true
                end;
                if out < block_in.(f) then begin
                  block_in.(f) <- out;
                  changed := true
                end
            | Ir.Ret _ | Ir.Trap _ -> ())
          done
        done;
        for l = 0 to n - 1 do
          ignore (transfer l true)
        done
  in
  (* Outer fixpoint over method entries, decreasing from true. *)
  let stable = ref false in
  while not !stable do
    stable := true;
    (* [clear], not [reset]: keep the grown bucket array across fixpoint
       rounds instead of shrinking it back to its initial size. *)
    Hashtbl.clear clean_at;
    List.iter flow reachable;
    List.iter
      (fun key ->
        if Hashtbl.find ps_entry key then begin
          let pinned =
            key = prog.Ir.p_main
            || (key <> prog.Ir.p_main && Pointsto.start_sites_of pt key <> [])
          in
          if not pinned then begin
            let callers = Pointsto.callers_of pt key in
            let ok =
              callers <> []
              && List.for_all
                   (fun (cs : Pointsto.call_site) ->
                     Option.value
                       (Hashtbl.find_opt clean_at
                          (cs.Pointsto.cs_method, cs.Pointsto.cs_iid))
                       ~default:false)
                   callers
            in
            if not ok then begin
              Hashtbl.replace ps_entry key false;
              stable := false
            end
          end
        end)
      reachable
  done;
  clean_at

(* ---- surviving trace sites ---- *)

type site = {
  s_site : int; (* site id *)
  s_key : string; (* method *)
  s_iid : int; (* trace instruction id *)
  s_instr : Ir.instr;
  s_kind : Event.kind;
  s_base : Ir.reg option; (* None for statics *)
  s_gidx : int; (* loc-space group: field index, 1023 arrays, -(slot+1) statics *)
}

(* The whole-array location index [Memloc] uses; a field with this
   index would collide with array locations, so classification bails
   out entirely if one exists (it never does in practice — class
   layouts are small). *)
let array_gidx = 1023

exception Unspecializable

let collect_sites (pt : Pointsto.t) (prog : Ir.program) : site list =
  let acc = ref [] in
  Ir.iter_mirs prog (fun m ->
      let key = Ir.mir_key m in
      if Pointsto.is_reachable pt key then
        Ir.iter_instrs m (fun _ i ->
            match i.Ir.i_op with
            | Ir.Trace t ->
                let base, gidx =
                  match t.Ir.tr_target with
                  | Ir.Tr_field (o, fm) ->
                      if fm.Ir.fm_index >= array_gidx then
                        raise Unspecializable;
                      (Some o, fm.Ir.fm_index)
                  | Ir.Tr_static sm -> (None, -(sm.Ir.sm_slot + 1))
                  | Ir.Tr_array (a, _) -> (Some a, array_gidx)
                in
                acc :=
                  {
                    s_site = t.Ir.tr_site;
                    s_key = key;
                    s_iid = i.Ir.i_id;
                    s_instr = i;
                    s_kind = t.Ir.tr_kind;
                    s_base = base;
                    s_gidx = gidx;
                  }
                  :: !acc
            | _ -> ()))
  ;
  List.rev !acc

(* ---- union-find over site indices ---- *)

let find parent i =
  let rec go i = if parent.(i) = i then i else go parent.(i) in
  let r = go i in
  let rec compress i =
    if parent.(i) <> r then begin
      let next = parent.(i) in
      parent.(i) <- r;
      compress next
    end
  in
  compress i;
  r

let union parent i j =
  let ri = find parent i and rj = find parent j in
  if ri <> rj then parent.(ri) <- rj

(* ---- classification ---- *)

let compute (rs : Race_set.t) (prog : Ir.program) : Link.spec option =
  match
    let pt = Race_set.pointsto rs in
    let must = Race_set.must rs in
    let icg = Race_set.icg rs in
    let sites = Array.of_list (collect_sites pt prog) in
    let n = Array.length sites in
    if n = 0 then None
    else begin
      let may_start = compute_may_start pt in
      let prestart = compute_prestart pt may_start in
      let prestart_site s =
        Option.value (Hashtbl.find_opt prestart (s.s_key, s.s_iid))
          ~default:false
      in
      let pts_of s =
        match s.s_base with
        | None -> Iset.empty
        | Some r -> Pointsto.pts pt (Pointsto.Vreg (s.s_key, r))
      in
      let base_pts = Array.map pts_of sites in
      (* Alias components: same loc-space group and overlapping base
         points-to sets (statics: same slot).  A site whose base can
         point to nothing never produces an event; it stays generic
         and constrains nobody. *)
      let parent = Array.init n (fun i -> i) in
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          if sites.(i).s_gidx = sites.(j).s_gidx then
            if sites.(i).s_base = None then union parent i j
            else if not (Iset.disjoint base_pts.(i) base_pts.(j)) then
              union parent i j
        done
      done;
      let comps = Hashtbl.create 16 in
      for i = 0 to n - 1 do
        let r = find parent i in
        let l =
          match Hashtbl.find_opt comps r with
          | Some l -> l
          | None ->
              let l = ref [] in
              Hashtbl.add comps r l;
              l
        in
        l := i :: !l
      done;
      let nsites = Site_table.count prog.Ir.p_sites in
      let cell_of_site = Array.make nsites (-1) in
      let cells = ref [] in
      let ncells = ref 0 in
      let new_cell cls managed =
        let id = !ncells in
        incr ncells;
        cells := (cls, managed) :: !cells;
        id
      in
      let fixed_ok s =
        match Icg.must_sync icg s.s_key s.s_instr with
        | None -> false (* unconstrained top: unreachable node *)
        | Some musts ->
            Iset.equal musts (Icg.may_sync icg s.s_key s.s_instr)
            && Iset.for_all (Must.single_obj must) musts
      in
      Hashtbl.iter
        (fun _ members ->
          let members = List.rev_map (fun i -> sites.(i)) !members in
          let dead s = s.s_base <> None && Iset.is_empty (pts_of s) in
          let live = List.filter (fun s -> not (dead s)) members in
          let writes =
            List.filter (fun s -> s.s_kind = Event.Write) live
          in
          let reads = List.filter (fun s -> s.s_kind = Event.Read) live in
          if reads <> [] && List.for_all prestart_site writes then
            (* Read-only after init: each read site drops independently
               (one cell per site, first-sighting bit).  Write sites
               stay generic — they only ever fire pre-start. *)
            List.iter
              (fun s -> cell_of_site.(s.s_site) <- new_cell Link.Sro false)
              reads
          else begin
            (* A site qualifies for the location-owner shortcut when its
               base may-points-to exactly one abstract object (statics
               never do: they qualify only via the pinned lockset).  The
               component is managed iff every live site qualifies one
               way or the other — otherwise an unqualified site could
               deliver an event for a managed location around the map. *)
            let owned_ok s =
              s.s_base <> None && Iset.cardinal (pts_of s) = 1
            in
            let managed =
              live <> []
              && List.for_all (fun s -> owned_ok s || fixed_ok s) live
            in
            List.iter
              (fun s ->
                if fixed_ok s then
                  cell_of_site.(s.s_site) <- new_cell Link.Sfixed managed
                else if managed then
                  cell_of_site.(s.s_site) <- new_cell Link.Sowned true)
              live
          end)
        comps;
      if !ncells = 0 then None
      else
        let cells = Array.of_list (List.rev !cells) in
        Some
          {
            Link.sp_ncells = !ncells;
            sp_cell_of_site = cell_of_site;
            sp_cell_class = Array.map fst cells;
            sp_cell_managed = Array.map snd cells;
          }
    end
  with
  | spec -> spec
  | exception Unspecializable -> None
