module Ir = Drd_ir.Ir
module Iset = Pointsto.Iset

(* The interthread call graph (ICG) and the two must-analyses computed
   over it (paper Sections 5.2 and 5.3):

   - ICG nodes are methods and synchronized regions (blocks or
     synchronized-method bodies); call edges and region-entry edges are
     the intrathread edges, thread [start] edges the interthread edges.
   - [MustSync] — the set of locks (abstract objects) that are must-held
     at every statement of a node — is a decreasing dataflow fixpoint
     over intrathread edges, with Gen from the must points-to of each
     region's lock;
   - [MustThread] — the set of must thread objects a statement can only
     be executed by — intersects, over the thread roots reaching the
     statement's method along intrathread edges, the must points-to of
     each root's [this]. *)

type node = Nmethod of string | Nsync of string * int

(* [None] plays the role of ⊤ (the unconstrained "all objects" set). *)
type lat = Iset.t option

let meet (a : lat) (b : lat) : lat =
  match (a, b) with
  | None, x | x, None -> x
  | Some a, Some b -> Some (Iset.inter a b)

type t = {
  pt : Pointsto.t;
  must : Must.t;
  so_out : (node, lat) Hashtbl.t;
  may_out : (node, Iset.t) Hashtbl.t;
      (* MaySync: the union-over-paths dual of MustSync, used by the
         link-time trace specializer — a site whose may-held and
         must-held locksets coincide has a compile-time-pinned lockset *)
  must_thread : (string, lat) Hashtbl.t; (* per method *)
  roots : string list; (* thread-root methods: main + started runs *)
}

let node_of_instr key (i : Ir.instr) =
  match List.rev i.Ir.i_sync with
  | [] -> Nmethod key
  | r :: _ -> Nsync (key, r)

(* All ICG nodes of a method, plus the (node, lock reg, enter instr)
   triples of its regions and the enclosing node of each region. *)
let regions_of_mir (m : Ir.mir) =
  let acc = ref [] in
  Ir.iter_instrs m (fun _ i ->
      match i.Ir.i_op with
      | Ir.MonitorEnter (lock, region) ->
          acc := (region, lock, i) :: !acc
      | _ -> ());
  !acc

let compute (pt : Pointsto.t) (must : Must.t) : t =
  let prog = pt.Pointsto.prog in
  let roots =
    prog.Ir.p_main
    :: (Hashtbl.fold (fun k () acc -> k :: acc) pt.Pointsto.reachable []
       |> List.filter (fun k -> Pointsto.start_sites_of pt k <> [])
       |> List.sort compare)
  in
  (* Instruction lookup for call sites. *)
  let instr_tbl = Hashtbl.create 1024 in
  Ir.iter_mirs prog (fun m ->
      Ir.iter_instrs m (fun _ i ->
          Hashtbl.replace instr_tbl (Ir.mir_key m, i.Ir.i_id) i));
  (* Build node lists, Gen sets and intrathread predecessor edges. *)
  let gen : (node, Iset.t) Hashtbl.t = Hashtbl.create 64 in
  let gen_may : (node, Iset.t) Hashtbl.t = Hashtbl.create 64 in
  let preds : (node, node list ref) Hashtbl.t = Hashtbl.create 64 in
  let add_pred n p =
    let r =
      match Hashtbl.find_opt preds n with
      | Some r -> r
      | None ->
          let r = ref [] in
          Hashtbl.add preds n r;
          r
    in
    if not (List.mem p !r) then r := p :: !r
  in
  let nodes = ref [] in
  Pointsto.iter_reachable pt (fun key ->
      match Ir.find_mir prog key with
      | None -> ()
      | Some m ->
          nodes := Nmethod key :: !nodes;
          (* Region nodes: Gen from the must points-to of the lock at
             the region's monitorenter; predecessor is the node the
             enter instruction lives in. *)
          List.iter
            (fun (region, lock, (i : Ir.instr)) ->
              let n = Nsync (key, region) in
              nodes := n :: !nodes;
              Hashtbl.replace gen n (Must.must_pt_reg must key lock);
              Hashtbl.replace gen_may n
                (Pointsto.pts pt (Pointsto.Vreg (key, lock)));
              add_pred n (node_of_instr key i))
            (regions_of_mir m);
          (* Method node: predecessors are the nodes containing its call
             sites. *)
          List.iter
            (fun (cs : Pointsto.call_site) ->
              match
                Hashtbl.find_opt instr_tbl
                  (cs.Pointsto.cs_method, cs.Pointsto.cs_iid)
              with
              | Some i -> add_pred (Nmethod key) (node_of_instr cs.Pointsto.cs_method i)
              | None -> ())
            (Pointsto.callers_of pt key));
  (* Decreasing fixpoint: SO_out(n) = SO_in(n) ∪ Gen(n);
     SO_in = ∩ preds SO_out, with thread roots and main pinned to ∅. *)
  let so_out : (node, lat) Hashtbl.t = Hashtbl.create 64 in
  List.iter (fun n -> Hashtbl.replace so_out n None) !nodes;
  let is_root_node = function
    | Nmethod k -> List.mem k roots
    | Nsync _ -> false
  in
  let gen_of n = Option.value (Hashtbl.find_opt gen n) ~default:Iset.empty in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun n ->
        let so_in =
          if is_root_node n then Some Iset.empty
          else
            match Hashtbl.find_opt preds n with
            | None | Some { contents = [] } ->
                (* No known intrathread predecessor: unreachable from an
                   entry; keep ⊤. *)
                None
            | Some ps ->
                List.fold_left
                  (fun acc p -> meet acc (Hashtbl.find so_out p))
                  None !ps
        in
        let out =
          match so_in with
          | None -> None
          | Some s -> Some (Iset.union s (gen_of n))
        in
        if out <> Hashtbl.find so_out n then begin
          Hashtbl.replace so_out n out;
          changed := true
        end)
      !nodes
  done;
  (* MaySync — the increasing dual: MAYSO_out(n) = MAYSO_in(n) ∪
     Gen_may(n) with Gen_may from the full may points-to of each
     region's lock, MAYSO_in = ∪ preds MAYSO_out, roots start with ∅.
     Bottom is ∅ (an unreachable node stays empty; its statements never
     execute, and the specializer never consults them — surviving trace
     sites live in reachable methods only). *)
  let may_out : (node, Iset.t) Hashtbl.t = Hashtbl.create 64 in
  List.iter (fun n -> Hashtbl.replace may_out n Iset.empty) !nodes;
  let gen_may_of n =
    Option.value (Hashtbl.find_opt gen_may n) ~default:Iset.empty
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun n ->
        let may_in =
          if is_root_node n then Iset.empty
          else
            match Hashtbl.find_opt preds n with
            | None | Some { contents = [] } -> Iset.empty
            | Some ps ->
                List.fold_left
                  (fun acc p -> Iset.union acc (Hashtbl.find may_out p))
                  Iset.empty !ps
        in
        let out = Iset.union may_in (gen_may_of n) in
        if not (Iset.equal out (Hashtbl.find may_out n)) then begin
          Hashtbl.replace may_out n out;
          changed := true
        end)
      !nodes
  done;
  (* MustThread: intrathread (call-edge) reachability from each root. *)
  let reached_by : (string, string list ref) Hashtbl.t = Hashtbl.create 64 in
  let note m root =
    let r =
      match Hashtbl.find_opt reached_by m with
      | Some r -> r
      | None ->
          let r = ref [] in
          Hashtbl.add reached_by m r;
          r
    in
    if List.mem root !r then false
    else begin
      r := root :: !r;
      true
    end
  in
  List.iter
    (fun root ->
      let rec bfs m =
        if note m root then
          match Ir.find_mir prog m with
          | None -> ()
          | Some mir ->
              Ir.iter_instrs mir (fun _ i ->
                  match i.Ir.i_op with
                  | Ir.Call _ ->
                      List.iter bfs (Pointsto.call_targets_of pt m i.Ir.i_id)
                  | _ -> ())
      in
      bfs root)
    roots;
  let must_pt_this root =
    if root = prog.Ir.p_main then Iset.singleton pt.Pointsto.main_obj
    else Must.must_pt_reg must root 0
  in
  let must_thread = Hashtbl.create 64 in
  Pointsto.iter_reachable pt (fun key ->
      let lat =
        match Hashtbl.find_opt reached_by key with
        | None -> None (* unreachable from any root: ⊤ *)
        | Some rs ->
            List.fold_left
              (fun acc root -> meet acc (Some (must_pt_this root)))
              None !rs
      in
      Hashtbl.replace must_thread key lat);
  { pt; must; so_out; may_out; must_thread; roots }

(* MustSync of a statement: the locks must-held at it. *)
let must_sync t key (i : Ir.instr) : lat =
  match Hashtbl.find_opt t.so_out (node_of_instr key i) with
  | Some l -> l
  | None -> None

(* MaySync of a statement: every lock that can be held at it on some
   path.  ∅ for nodes the ICG never saw (unreachable code). *)
let may_sync t key (i : Ir.instr) : Iset.t =
  match Hashtbl.find_opt t.may_out (node_of_instr key i) with
  | Some s -> s
  | None -> Iset.empty

let must_thread t key : lat =
  match Hashtbl.find_opt t.must_thread key with Some l -> l | None -> None

(* The paper's predicates (Equations 3 and 4).  ⊤ means "no constraint
   known but the code is unreachable"; two unreachable statements
   trivially cannot race, so ⊤ ∩ anything is treated as non-empty. *)
let lat_inter_nonempty (a : lat) (b : lat) =
  match (a, b) with
  | None, _ | _, None -> true
  | Some a, Some b -> not (Iset.disjoint a b)

let must_same_thread t kx ky =
  lat_inter_nonempty (must_thread t kx) (must_thread t ky)

let must_common_sync t kx ix ky iy =
  lat_inter_nonempty (must_sync t kx ix) (must_sync t ky iy)
