(* The differential detector arena: the generator's programs are
   well-typed and terminate, the per-idiom ground-truth matrix holds
   verbatim, reports are deterministic for a fixed seed, and the
   shrinker reduces a seeded disagreement to its single-unit core. *)

module G = Drd_arena.Gen
module A = Drd_arena.Arena
module R = Drd_harness.Registry

let quick_opts =
  { A.default_options with A.o_shrink = false; o_count = 60 }

let one_unit ?(iters = 2) idiom =
  { G.sp_index = 0; G.sp_units = [ G.make_unit ~id:0 ~idiom ~iters ] }

let entry name = Option.get (R.find name)

(* ---- registry ---- *)

let test_registry () =
  List.iter
    (fun (e : R.entry) ->
      let (module D : Drd_core.Detector_intf.S) = e.R.impl in
      Alcotest.(check string)
        (e.R.name ^ ": module id matches registry name")
        e.R.name D.id;
      let resolves_to_self s =
        match R.find s with
        | Some e' -> e'.R.name = e.R.name
        | None -> false
      in
      Alcotest.(check bool)
        (e.R.name ^ ": found by own name")
        true
        (resolves_to_self e.R.name);
      List.iter
        (fun a ->
          Alcotest.(check bool) (a ^ ": alias resolves") true
            (resolves_to_self a))
        e.R.aliases)
    R.all;
  Alcotest.(check bool) "case-insensitive" true (R.find "ERASER" <> None);
  Alcotest.(check bool) "unknown is None" true (R.find "nosuch" = None);
  Alcotest.(check bool)
    "NoDetect has no entry" true
    (R.of_detector Drd_harness.Config.NoDetect = None)

(* ---- the ground-truth matrix, pinned idiom by idiom ----

   For every idiom and every detector, which ground-truth cells get
   reported on the arena's schedule.  `None` marks verdicts that are
   legitimately schedule-dependent (feasible races under detectors
   with ownership/happens-before exemptions) and so not pinned. *)

let matrix :
    (G.idiom * (string * (string * bool option) list) list) list =
  let all v markers = List.map (fun m -> (m, v)) markers in
  [
    (G.Sync_counter, [ ("G.d0s", all (Some false) [ "paper"; "eraser"; "objrace"; "vclock" ]) ]);
    (G.Rendezvous_race G.Ww, [ ("G.d0r", all (Some true) [ "paper"; "eraser"; "objrace"; "vclock" ]) ]);
    ( G.Rendezvous_race G.Rw,
      [
        ("G.d0r", all (Some true) [ "paper"; "eraser"; "objrace"; "vclock" ]);
        ("G.d0s", all (Some false) [ "paper"; "eraser"; "objrace"; "vclock" ]);
      ] );
    ( G.Join_handoff,
      [
        ( "G.d0s",
          [
            ("paper", Some false);
            ("eraser", Some true);
            ("objrace", Some true);
            ("vclock", Some false);
          ] );
      ] );
    ( G.Start_chain,
      [
        ( "G.d0s",
          [
            ("paper", Some true);
            ("eraser", Some true);
            ("objrace", Some true);
            ("vclock", Some false);
          ] );
      ] );
    ( G.Ping_pong,
      [
        ( "G.d0s",
          [
            ("paper", Some true);
            ("eraser", Some true);
            ("objrace", Some true);
            ("vclock", Some false);
          ] );
      ] );
    ( G.Oneshot_handoff,
      [
        ( "G.d0s",
          [
            ("paper", Some false);
            ("eraser", Some true);
            ("objrace", Some false);
            ("vclock", Some false);
          ] );
      ] );
    ( G.Mixed_object,
      [
        ( "Mix0#",
          [
            ("paper", Some false);
            ("eraser", Some false);
            ("objrace", Some true);
            ("vclock", Some false);
          ] );
      ] );
    ( G.Worker_pool false,
      [
        ( "Q0#",
          [
            ("paper", Some false);
            ("eraser", Some false);
            ("objrace", Some true);
            ("vclock", Some false);
          ] );
        ("G.d0s", all (Some false) [ "paper"; "eraser"; "objrace"; "vclock" ]);
      ] );
    ( G.Worker_pool true,
      [
        ("Q0#", [ ("objrace", Some true) ]);
        ("G.d0r", all (Some true) [ "paper"; "eraser"; "objrace"; "vclock" ]);
      ] );
    ( G.Hidden_race,
      [
        ( "G.d0r",
          [
            ("paper", None) (* ownership may absorb the serialized side *);
            ("eraser", Some true);
            ("objrace", Some true);
            ("vclock", None) (* the accidental lock-order edge may hide it *);
          ] );
        ("G.t0", all (Some false) [ "paper"; "eraser"; "objrace"; "vclock" ]);
      ] );
  ]

let test_matrix () =
  List.iter
    (fun (idiom, cells) ->
      let sp = one_unit idiom in
      let truth = G.truth sp in
      List.iter
        (fun (marker, verdicts) ->
          let cell =
            match
              List.find_opt (fun c -> c.G.c_marker = marker) truth
            with
            | Some c -> c
            | None ->
                Alcotest.failf "%s: no ground-truth cell %s"
                  (G.idiom_name idiom) marker
          in
          List.iter
            (fun (det, expect) ->
              match expect with
              | None -> ()
              | Some expected ->
                  let o = A.run_one quick_opts (entry det) sp in
                  Alcotest.(check (option string))
                    (Printf.sprintf "%s: %s runs cleanly"
                       (G.idiom_name idiom) det)
                    None o.A.oc_error;
                  Alcotest.(check bool)
                    (Printf.sprintf "%s: %s on %s" (G.idiom_name idiom) det
                       marker)
                    expected
                    (List.exists (G.cell_matches cell) o.A.oc_races))
            verdicts)
        cells)
    matrix

(* ---- generator properties ---- *)

let arb_spec =
  QCheck.make
    ~print:(Fmt.str "%a" G.pp_spec)
    (G.spec_gen ~max_units:4 ~index:0 ())

let prop_typechecks =
  QCheck.Test.make ~count:60 ~name:"generated programs typecheck" arb_spec
    (fun sp ->
      let src = G.emit sp in
      ignore
        (Drd_lang.Typecheck.check (Drd_lang.Parser.parse_program src));
      true)

let prop_terminates =
  QCheck.Test.make ~count:30
    ~name:"generated programs terminate within the step budget" arb_spec
    (fun sp ->
      List.for_all
        (fun det ->
          match (A.run_one quick_opts (entry det) sp).A.oc_error with
          | None -> true
          | Some e -> QCheck.Test.fail_reportf "%s: %s" det e)
        [ "paper"; "vclock" ])

(* ---- determinism ---- *)

let test_deterministic () =
  let opts = { A.default_options with A.o_count = 25 } in
  let j1 = A.to_json (A.run opts) in
  let j2 = A.to_json (A.run opts) in
  Alcotest.(check string) "same seed, byte-identical JSON report" j1 j2

(* ---- corpus-level invariants ---- *)

let test_corpus_scores () =
  let r = A.run quick_opts in
  let t name = List.find (fun t -> t.A.t_name = name) r.A.r_tallies in
  List.iter
    (fun name ->
      let t = t name in
      Alcotest.(check int) (name ^ ": no errors") 0 t.A.t_errors;
      Alcotest.(check int)
        (name ^ ": no unexpected reports")
        0 t.A.t_unexpected;
      Alcotest.(check int)
        (name ^ ": no guaranteed race missed")
        0 t.A.t_guaranteed_missed)
    [ "paper"; "eraser"; "objrace"; "vclock" ];
  (* The documented shape of the techniques: Eraser and objrace catch
     every seeded race (recall 1) but false-report liberally; vclock
     never false-reports on the observed order (precision 1); the
     paper detector sits between, missing nothing guaranteed. *)
  Alcotest.(check (float 0.0001)) "eraser recall 1" 1.0 (A.recall (t "eraser"));
  Alcotest.(check (float 0.0001))
    "objrace recall 1" 1.0
    (A.recall (t "objrace"));
  Alcotest.(check (float 0.0001))
    "vclock precision 1" 1.0
    (A.precision (t "vclock"));
  Alcotest.(check bool)
    "paper precision strictly above eraser's" true
    (A.precision (t "paper") > A.precision (t "eraser"));
  Alcotest.(check bool)
    "paper precision strictly above objrace's" true
    (A.precision (t "paper") > A.precision (t "objrace"));
  Alcotest.(check bool) "misses list empty" true (r.A.r_misses = [])

(* ---- shrinking ---- *)

let test_shrinker () =
  (* A three-unit program whose middle unit carries the signature
     paper-vs-eraser disagreement (join handoff); the shrinker must
     strip the bystander units and lower the loop to one iteration,
     and the shrunk spec must still witness the disagreement. *)
  let sp =
    {
      G.sp_index = 7;
      G.sp_units =
        [
          G.make_unit ~id:0 ~idiom:G.Sync_counter ~iters:3;
          G.make_unit ~id:1 ~idiom:G.Join_handoff ~iters:3;
          G.make_unit ~id:2 ~idiom:G.Ping_pong ~iters:2;
        ];
    }
  in
  let holds =
    A.disagreement_holds quick_opts ~reporter:(entry "eraser")
      ~silent:(entry "paper") ~marker:"G.d1s"
  in
  Alcotest.(check bool) "seeded spec witnesses the disagreement" true
    (holds sp);
  let shrunk = A.shrink ~holds sp in
  Alcotest.(check bool) "shrunk spec still witnesses it" true (holds shrunk);
  (match shrunk.G.sp_units with
  | [ u ] ->
      Alcotest.(check bool) "the surviving unit is the join handoff" true
        (u.G.u_idiom = G.Join_handoff);
      Alcotest.(check int) "stable unit id survives" 1 u.G.u_id;
      Alcotest.(check int) "iterations lowered to the floor" 1 u.G.u_iters
  | us ->
      Alcotest.failf "expected a single surviving unit, got %d"
        (List.length us));
  Alcotest.(check int) "program index preserved" 7 shrunk.G.sp_index

let suite =
  [
    Alcotest.test_case "registry names, aliases, module ids" `Quick
      test_registry;
    Alcotest.test_case "per-idiom ground-truth matrix" `Quick test_matrix;
    QCheck_alcotest.to_alcotest prop_typechecks;
    QCheck_alcotest.to_alcotest prop_terminates;
    Alcotest.test_case "fixed seed is byte-deterministic" `Quick
      test_deterministic;
    Alcotest.test_case "corpus-level precision/recall invariants" `Quick
      test_corpus_scores;
    Alcotest.test_case "shrinker reduces a disagreement to its core" `Quick
      test_shrinker;
  ]
