(* The link phase must be a pure function of the program, not of the
   [p_methods] hash table's internal layout: method ids, vtable rows,
   slot numbering and the call-site ids embedded in linked code have to
   come out identical whatever order the methods were inserted in
   (equivalently, whatever order [iter_mirs] would enumerate).  Plus the
   unlinkable-program diagnostics. *)

module H = Drd_harness
module Pipeline = H.Pipeline
module Config = H.Config
module Programs = H.Programs
module Ir = Drd_ir.Ir
module Link = Drd_ir.Link

let prog_of source = (Pipeline.compile Config.full ~source).Pipeline.prog

let benchmark name =
  match Programs.find name with
  | Some b -> b.Programs.b_source
  | None -> Alcotest.failf "no benchmark named %S" name

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = sub || at (i + 1)) in
  n = 0 || at 0

(* Everything observable about an image except [i_prog] (which holds the
   hash table itself). *)
type skeleton = {
  k_methods : (int * string * int * int * int * Link.lop array * int array) array;
  k_main : int;
  k_classes : string array;
  k_vtables : int array array;
  k_slot_names : string array;
  k_run_slot : int;
}

let skeleton (img : Link.image) =
  {
    k_methods =
      Array.map
        (fun (m : Link.lmethod) ->
          ( m.Link.m_id,
            m.Link.m_key,
            m.Link.m_nregs,
            m.Link.m_nparams,
            m.Link.m_entry,
            m.Link.m_code,
            m.Link.m_lines ))
        img.Link.i_methods;
    k_main = img.Link.i_main;
    k_classes = img.Link.i_classes;
    k_vtables = img.Link.i_vtables;
    k_slot_names = img.Link.i_slot_names;
    k_run_slot = img.Link.i_run_slot;
  }

(* Deterministic Fisher-Yates driven by a little xorshift stream, so a
   QCheck-supplied salt names one insertion order exactly. *)
let shuffle salt arr =
  let state = ref (salt lxor 0x9E3779B9) in
  let next bound =
    let s = !state in
    let s = s lxor (s lsl 13) in
    let s = s lxor (s lsr 7) in
    let s = s lxor (s lsl 17) in
    state := s;
    abs s mod bound
  in
  for i = Array.length arr - 1 downto 1 do
    let j = next (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let reinserted salt (prog : Ir.program) =
  let bindings =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) prog.Ir.p_methods []
    |> List.sort compare |> Array.of_list
  in
  shuffle salt bindings;
  let h = Hashtbl.create (Array.length bindings) in
  Array.iter (fun (k, v) -> Hashtbl.replace h k v) bindings;
  { prog with Ir.p_methods = h }

let stability_prop =
  let prog = prog_of (benchmark "tsp") in
  let baseline = skeleton (Link.link prog) in
  QCheck.Test.make ~count:50
    ~name:"linked image is stable under method-table insertion order"
    QCheck.small_int
    (fun salt ->
      let relinked = skeleton (Link.link (reinserted salt prog)) in
      relinked = baseline)

let test_method_ids_sorted () =
  (* Ids follow sorted-key order, so they are recoverable by name. *)
  let img = Link.link (prog_of (Programs.figure2 ())) in
  Array.iteri
    (fun i (m : Link.lmethod) ->
      Alcotest.(check int) (m.Link.m_key ^ " id") i m.Link.m_id;
      Alcotest.(check (option int))
        (m.Link.m_key ^ " lookup") (Some i)
        (Link.find_method_id img m.Link.m_key))
    img.Link.i_methods;
  Alcotest.(check (option int))
    "unknown key" None
    (Link.find_method_id img "No.such");
  let keys =
    Array.to_list (Array.map (fun m -> m.Link.m_key) img.Link.i_methods)
  in
  Alcotest.(check (list string)) "keys sorted" (List.sort compare keys) keys

let test_vtable_rows () =
  (* Every vtable entry either is -1 or points at a method of that slot's
     name whose key starts with some class name. *)
  let img = Link.link (prog_of (benchmark "elevator")) in
  Array.iteri
    (fun cid row ->
      Alcotest.(check int)
        (img.Link.i_classes.(cid) ^ " vtable width")
        (Array.length img.Link.i_slot_names)
        (Array.length row);
      Array.iteri
        (fun slot mid ->
          if mid >= 0 then begin
            let m = img.Link.i_methods.(mid) in
            let name = img.Link.i_slot_names.(slot) in
            let suffix = "." ^ name in
            let ok =
              String.length m.Link.m_key > String.length suffix
              && String.sub m.Link.m_key
                   (String.length m.Link.m_key - String.length suffix)
                   (String.length suffix)
                 = suffix
            in
            if not ok then
              Alcotest.failf "slot %S of %s resolves to %s" name
                img.Link.i_classes.(cid) m.Link.m_key
          end)
        row)
    img.Link.i_vtables

let test_missing_main () =
  let prog = prog_of (Programs.figure2 ()) in
  let broken = { prog with Ir.p_main = "Nope.main" } in
  match Link.link broken with
  | _ -> Alcotest.fail "linking without a main method must fail"
  | exception Link.Link_error msg ->
      if not (contains ~sub:"no main method" msg && contains ~sub:"Nope.main" msg)
      then Alcotest.failf "unhelpful Link_error: %S" msg

let suite =
  [
    QCheck_alcotest.to_alcotest stability_prop;
    Alcotest.test_case "method ids follow sorted keys" `Quick
      test_method_ids_sorted;
    Alcotest.test_case "vtable rows resolve to same-name methods" `Quick
      test_vtable_rows;
    Alcotest.test_case "missing p_main is rejected with a clear error" `Quick
      test_missing_main;
  ]
