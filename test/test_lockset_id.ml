(* Interned locksets (Lockset_id) vs the Set.Make(Int) reference
   (Lockset): every operation must agree on arbitrary inputs, including
   across the dense-bitmask density boundary (62 distinct locks), after
   which sets silently fall back to the memo-table representation. *)

open Drd_core

(* Lock values mix small ids with sparse heap-object-like ids so both
   the dense path and the sorted-array fallback are exercised no matter
   how many locks earlier suites already interned in this domain. *)
let gen_lock =
  QCheck.Gen.(
    frequency
      [ (4, int_bound 15); (2, int_bound 200); (1, map (fun i -> 100_000 + (i * 977)) (int_bound 50)) ])

let gen_locks = QCheck.Gen.(list_size (int_bound 8) gen_lock)

let arb_pair =
  QCheck.make
    ~print:(fun (a, b) ->
      Printf.sprintf "(%s, %s)"
        (String.concat ";" (List.map string_of_int a))
        (String.concat ";" (List.map string_of_int b)))
    QCheck.Gen.(pair gen_locks gen_locks)

let agree (a, b) =
  let ia = Lockset_id.of_list a and ib = Lockset_id.of_list b in
  let sa = Lockset.of_list a and sb = Lockset.of_list b in
  let canon id s =
    (* ids are canonical: interning the reference set again must yield
       the same id, and materializing must yield the same set. *)
    Lockset_id.equal id (Lockset_id.intern s)
    && Lockset.equal (Lockset_id.set_of id) s
    && Lockset_id.to_sorted_list id = Lockset.to_sorted_list s
  in
  let pool = 0 :: 7 :: (a @ b) in
  canon ia sa && canon ib sb
  && Lockset_id.subset ia ib = Lockset.subset sa sb
  && Lockset_id.subset ib ia = Lockset.subset sb sa
  && Lockset_id.disjoint ia ib = Lockset.disjoint sa sb
  && canon (Lockset_id.inter ia ib) (Lockset.inter sa sb)
  && canon (Lockset_id.union ia ib) (Lockset.union sa sb)
  && Lockset_id.equal ia ib = Lockset.equal sa sb
  && (Lockset_id.compare ia ib = 0) = Lockset.equal sa sb
  && Lockset_id.cardinal ia = Lockset.cardinal sa
  && Lockset_id.is_empty ia = Lockset.is_empty sa
  && List.for_all
       (fun x ->
         Lockset_id.mem x ia = Lockset.mem x sa
         && canon (Lockset_id.add x ia) (Lockset.add x sa)
         && canon (Lockset_id.remove x ia) (Lockset.remove x sa))
       pool
  && Lockset_id.fold (fun x acc -> acc + x) ia 0
     = Lockset.fold (fun x acc -> acc + x) sa 0

let prop_agreement =
  QCheck.Test.make ~count:2000
    ~name:"interned ops agree with Set.Make(Int) reference" arb_pair agree

(* ------------------------------------------------------------------ *)
(* Density boundary.  Run in a fresh domain: the interning universe is
   domain-local, so the spawned domain starts with zero locks seen and
   the boundary lands exactly at the 62nd distinct lock. *)

let test_density_boundary () =
  Domain.join
    (Domain.spawn (fun () ->
         (* Fix the first-seen order: lock i gets dense index i. *)
         for i = 0 to 80 do
           ignore (Lockset_id.singleton i)
         done;
         for i = 0 to 80 do
           Alcotest.(check bool)
             (Printf.sprintf "singleton %d mask" i)
             (i < 62)
             (Lockset_id.uses_mask (Lockset_id.singleton i))
         done;
         Alcotest.(check bool) "dense set keeps mask" true
           (Lockset_id.uses_mask (Lockset_id.of_list [ 0; 17; 61 ]));
         Alcotest.(check bool) "set spanning the boundary has no mask" false
           (Lockset_id.uses_mask (Lockset_id.of_list [ 0; 70 ]));
         (* Relations must agree with the reference on both sides of and
            across the boundary. *)
         let locks = [ 0; 1; 60; 61; 62; 63; 70; 80 ] in
         let sets =
           List.concat_map
             (fun x -> List.map (fun y -> [ x; y ]) locks)
             locks
           @ List.map (fun x -> [ x ]) locks
           @ [ []; [ 0; 61; 62 ]; [ 61; 62 ]; locks ]
         in
         List.iter
           (fun a ->
             List.iter
               (fun b ->
                 let ia = Lockset_id.of_list a and ib = Lockset_id.of_list b in
                 let sa = Lockset.of_list a and sb = Lockset.of_list b in
                 let tag =
                   Printf.sprintf "{%s} vs {%s}"
                     (String.concat "," (List.map string_of_int a))
                     (String.concat "," (List.map string_of_int b))
                 in
                 Alcotest.(check bool) (tag ^ " subset")
                   (Lockset.subset sa sb) (Lockset_id.subset ia ib);
                 Alcotest.(check bool) (tag ^ " disjoint")
                   (Lockset.disjoint sa sb) (Lockset_id.disjoint ia ib);
                 Alcotest.(check bool) (tag ^ " equal")
                   (Lockset.equal sa sb) (Lockset_id.equal ia ib);
                 Alcotest.(check (list int)) (tag ^ " inter")
                   (Lockset.to_sorted_list (Lockset.inter sa sb))
                   (Lockset_id.to_sorted_list (Lockset_id.inter ia ib)))
               sets)
           sets))

let test_interning_is_canonical () =
  let a = Lockset_id.of_list [ 3; 1; 2; 3; 1 ] in
  let b = Lockset_id.of_list [ 2; 3; 1 ] in
  Alcotest.(check bool) "same set, same id" true (a = b);
  Alcotest.(check (list int)) "sorted, deduped" [ 1; 2; 3 ]
    (Lockset_id.to_sorted_list a);
  Alcotest.(check bool) "empty is id 0" true
    (Lockset_id.of_list [] = Lockset_id.empty);
  let two = Lockset_id.of_list [ 1; 2 ] in
  let before = Lockset_id.interned_count () in
  ignore (Lockset_id.of_list [ 1; 2; 3 ]);
  ignore (Lockset_id.add 3 two);
  Alcotest.(check int) "re-interning allocates no new ids" before
    (Lockset_id.interned_count ())

let suite =
  [
    Alcotest.test_case "canonical ids" `Quick test_interning_is_canonical;
    Alcotest.test_case "density boundary (fresh domain)" `Quick
      test_density_boundary;
    QCheck_alcotest.to_alcotest prop_agreement;
  ]
