(* Golden byte-identity for the link phase: the linked-image interpreter
   ([Interp]) and the frozen pre-link block interpreter ([Interp_ref])
   must be indistinguishable through every observable channel — full
   race reports, racy-object lists, event/step/thread counts, prints,
   the complete recorded event log, the raw interleaving fingerprint and
   the happens-before fingerprint — for every example program under
   every scheduling family (sweep, jitter, pct).  A run that dies (e.g.
   needle's seed-dependent wait() deadlock) must die identically: same
   error string, same event-log prefix. *)

module H = Drd_harness
module Pipeline = H.Pipeline
module Config = H.Config
module Programs = H.Programs
module Strategy = Drd_explore.Strategy
module Explore = Drd_explore.Explore
module Hb_fingerprint = Drd_explore.Hb_fingerprint
module Interp = Drd_vm.Interp
module Sink = Drd_vm.Sink
module Value = Drd_vm.Value
open Drd_core

(* A sink recording every notification into an event log (the post-
   mortem recording sink, as a tap). *)
let log_tap () =
  let log = Event_log.create () in
  let sink =
    {
      Sink.access =
        (fun ~tid ~loc ~kind ~locks ~site ->
          Event_log.record log
            (Event_log.Access
               (Event.make_interned ~loc ~thread:tid ~locks ~kind ~site)));
      acquire =
        (fun ~tid ~lock -> Event_log.record log (Event_log.Acquire (tid, lock)));
      release =
        (fun ~tid ~lock -> Event_log.record log (Event_log.Release (tid, lock)));
      thread_start =
        (fun ~parent ~child ->
          Event_log.record log (Event_log.Thread_start (parent, child)));
      thread_join =
        (fun ~joiner ~joinee ->
          Event_log.record log (Event_log.Thread_join (joiner, joinee)));
      thread_exit =
        (fun ~tid -> Event_log.record log (Event_log.Thread_exit tid));
      call = None;
      spec = None;
    }
  in
  (sink, log)

type obs = {
  o_error : string option; (* Runtime_error message, if the run died *)
  o_races : string list;
  o_objects : string list;
  o_events : int;
  o_steps : int;
  o_threads : int;
  o_prints : (string * Value.t option) list;
  o_log : Event_log.entry list;
  o_interleave_fp : int;
  o_hb_fp : int;
}

let observe ~engine compiled vm : obs =
  let log_sink, log = log_tap () in
  let fp_sink, fp = Explore.fingerprint_tap () in
  let hb_sink, hb = Hb_fingerprint.tap () in
  let tap = Sink.tee log_sink (Sink.tee fp_sink hb_sink) in
  let empty =
    {
      o_error = None;
      o_races = [];
      o_objects = [];
      o_events = 0;
      o_steps = 0;
      o_threads = 0;
      o_prints = [];
      o_log = [];
      o_interleave_fp = 0;
      o_hb_fp = 0;
    }
  in
  let finish o =
    { o with o_log = Event_log.entries log; o_interleave_fp = fp (); o_hb_fp = hb () }
  in
  match Pipeline.run ~vm ~tap ~engine compiled with
  | r ->
      finish
        {
          empty with
          o_races = r.Pipeline.races;
          o_objects = r.Pipeline.racy_objects;
          o_events = r.Pipeline.events;
          o_steps = r.Pipeline.steps;
          o_threads = r.Pipeline.threads;
          o_prints = r.Pipeline.prints;
        }
  | exception Interp.Runtime_error m -> finish { empty with o_error = Some m }

let render_entry = function
  | Event_log.Access e ->
      Printf.sprintf "A t%d l%d %s s%d L%d" e.Event.thread e.Event.loc
        (match e.Event.kind with Event.Read -> "R" | Event.Write -> "W")
        e.Event.site
        (e.Event.locks :> int)
  | Event_log.Acquire (t, l) -> Printf.sprintf "acq t%d l%d" t l
  | Event_log.Release (t, l) -> Printf.sprintf "rel t%d l%d" t l
  | Event_log.Thread_start (p, c) -> Printf.sprintf "start %d->%d" p c
  | Event_log.Thread_join (j, e) -> Printf.sprintf "join %d<-%d" j e
  | Event_log.Thread_exit t -> Printf.sprintf "exit %d" t

let check_logs name (ref_log : Event_log.entry list) linked_log =
  let nref = List.length ref_log and nlin = List.length linked_log in
  if nref <> nlin then
    Alcotest.failf "%s: event log length %d (ref) vs %d (linked)" name nref
      nlin;
  List.iteri
    (fun i (a, b) ->
      if a <> b then
        Alcotest.failf "%s: event log diverges at entry %d: %s (ref) vs %s \
                        (linked)"
          name i (render_entry a) (render_entry b))
    (List.combine ref_log linked_log)

let check_obs name (a : obs) (b : obs) =
  Alcotest.(check (option string)) (name ^ " error") a.o_error b.o_error;
  Alcotest.(check (list string)) (name ^ " races") a.o_races b.o_races;
  Alcotest.(check (list string)) (name ^ " objects") a.o_objects b.o_objects;
  Alcotest.(check int) (name ^ " events") a.o_events b.o_events;
  Alcotest.(check int) (name ^ " steps") a.o_steps b.o_steps;
  Alcotest.(check int) (name ^ " threads") a.o_threads b.o_threads;
  Alcotest.(check int)
    (name ^ " prints") (List.length a.o_prints) (List.length b.o_prints);
  if a.o_prints <> b.o_prints then Alcotest.failf "%s: prints differ" name;
  check_logs name a.o_log b.o_log;
  Alcotest.(check int)
    (name ^ " interleaving fp") a.o_interleave_fp b.o_interleave_fp;
  Alcotest.(check int) (name ^ " hb fp") a.o_hb_fp b.o_hb_fp

(* Every example program: the Table 1 benchmark ports plus the paper's
   Figure 2 example. *)
let sources =
  ("figure2", Programs.figure2 ())
  :: List.map
       (fun b -> (b.Programs.b_name, b.Programs.b_source))
       Programs.benchmarks

let compiled_of =
  (* Compile once per program (static analysis is the slow part) and
     reuse across the strategy families. *)
  let memo = Hashtbl.create 8 in
  fun name source ->
    match Hashtbl.find_opt memo name with
    | Some c -> c
    | None ->
        let c = Pipeline.compile Config.full ~source in
        Hashtbl.add memo name c;
        c

let vm_of compiled (sp : Strategy.run_spec) =
  {
    (Pipeline.vm_config_of compiled.Pipeline.config) with
    Interp.seed = sp.Strategy.sp_seed;
    quantum = sp.Strategy.sp_quantum;
    policy = sp.Strategy.sp_policy;
  }

let runs_per_strategy = 3

let test_identity name source strategy () =
  let compiled = compiled_of name source in
  for index = 0 to runs_per_strategy - 1 do
    let sp =
      Strategy.spec strategy ~base:compiled.Pipeline.config
        ~pct_horizon:20_000 index
    in
    let vm = vm_of compiled sp in
    let label = Printf.sprintf "%s %s #%d" name (Strategy.name strategy) index in
    let a = observe ~engine:`Ref compiled vm in
    let b = observe ~engine:`Linked compiled vm in
    check_obs label a b;
    (* The specialized engine's fast paths must be invisible through
       every observable channel too — including the tapped event log,
       where a wrongly dropped event would surface. *)
    let c = observe ~engine:`Spec compiled vm in
    check_obs (label ^ " [spec]") a c
  done

let test_record_log name source () =
  (* The post-mortem recording path proper (not just its sink as a tap)
     must also be engine-independent. *)
  let compiled = compiled_of name source in
  let log_ref, r_ref = Pipeline.record_log ~engine:`Ref compiled in
  let log_lin, r_lin = Pipeline.record_log ~engine:`Linked compiled in
  check_logs (name ^ " record_log") (Event_log.entries log_ref)
    (Event_log.entries log_lin);
  Alcotest.(check int)
    (name ^ " record_log steps") r_ref.Interp.r_steps r_lin.Interp.r_steps

let suite =
  let strategies =
    [ Strategy.Sweep; Strategy.Jitter; Strategy.Pct 3 ]
  in
  List.concat_map
    (fun (name, source) ->
      List.map
        (fun strategy ->
          Alcotest.test_case
            (Printf.sprintf "%s x %s byte-identical" name
               (Strategy.name strategy))
            `Quick
            (test_identity name source strategy))
        strategies
      @ [
          Alcotest.test_case
            (name ^ " record_log byte-identical")
            `Quick (test_record_log name source);
        ])
    sources
