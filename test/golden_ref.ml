(* Frozen pre-interning reference detector, used as the oracle of the
   golden equivalence test (test_golden_equiv.ml).

   This is the detector exactly as it existed before locksets were
   hash-consed: events carry a functional [Set.Make (Int)] lockset and
   every lattice check walks the sets.  The trie and packed-trie bodies
   below are verbatim copies of the pre-interning sources, retyped onto
   the local set-based [event] record.  The per-thread caches and the
   ownership filter are shared with the live implementation because
   their observable behaviour (hit/miss decisions, eviction, ownership
   verdicts) never depended on the lockset representation — only their
   allocation profile changed.

   Keep this module frozen: it must keep answering what the OLD
   implementation would have answered. *)

module C = Drd_core
module L = C.Lockset

type kind = C.Event.kind = Read | Write
type thread_info = C.Event.thread_info = Thread of int | Bot | Top

let kind_leq a1 a2 = a1 = Write || a1 = a2
let thread_leq t1 t2 = t1 = Bot || t1 = t2
let kind_meet a1 a2 = if a1 = a2 then a1 else Write

let thread_meet t1 t2 =
  match (t1, t2) with
  | Top, t | t, Top -> t
  | Thread i, Thread j when i = j -> t1
  | _ -> Bot

type event = {
  loc : int;
  thread : int;
  locks : L.t;
  kind : kind;
  site : int;
}

(* Materialize a live (interned) event into the set representation. *)
let of_event (e : C.Event.t) =
  {
    loc = e.C.Event.loc;
    thread = e.C.Event.thread;
    locks = C.Event.lockset e;
    kind = e.C.Event.kind;
    site = e.C.Event.site;
  }

type prior = {
  p_thread : thread_info;
  p_kind : kind;
  p_locks : L.t;
  p_site : int;
}

type race = { r_loc : int; r_current : event; r_prior : prior }

(* ---- per-location trie, pre-interning body ---- *)

module Trie = struct
  type node = {
    label : int; (* incoming edge label; -1 for the root *)
    mutable thread : thread_info; (* Top = no access stored here *)
    mutable kind : kind;
    mutable site : int;
    mutable children : node list; (* sorted by increasing label *)
  }

  type t = { root : node; mutable count : int }

  let mk_node label =
    { label; thread = Top; kind = Read; site = -1; children = [] }

  let create () = { root = mk_node (-1); count = 1 }

  let node_count h = h.count

  let node_weaker n (e : event) =
    n.thread <> Top
    && thread_leq n.thread (Thread e.thread)
    && kind_leq n.kind e.kind

  let rec descend h n path =
    match path with
    | [] -> n
    | l :: rest ->
        let rec find = function
          | c :: _ when c.label = l -> Some c
          | c :: tl when c.label < l -> find tl
          | _ -> None
        in
        let child =
          match find n.children with
          | Some c -> c
          | None ->
              let c = mk_node l in
              h.count <- h.count + 1;
              let rec ins = function
                | x :: tl when x.label < l -> x :: ins tl
                | tl -> c :: tl
              in
              n.children <- ins n.children;
              c
        in
        descend h child rest

  let prune_stronger h keep locks tv av =
    let rec go n required =
      let required' =
        match required with
        | r :: rest when n.label = r -> Some rest
        | r :: _ when n.label > r -> None
        | req -> Some req
      in
      match required' with
      | None -> true
      | Some req ->
          if
            req = [] && n != keep && n.thread <> Top
            && thread_leq tv n.thread && kind_leq av n.kind
          then begin
            n.thread <- Top;
            n.kind <- Read;
            n.site <- -1
          end;
          let survivors =
            List.filter
              (fun c ->
                let live = go c req in
                if not live then h.count <- h.count - 1;
                live)
              n.children
          in
          n.children <- survivors;
          n.thread <> Top || n.children <> [] || n == keep
    in
    ignore (go h.root (L.to_sorted_list locks))

  let update h (e : event) =
    let n = descend h h.root (L.to_sorted_list e.locks) in
    if n.thread = Top then begin
      n.thread <- Thread e.thread;
      n.kind <- e.kind;
      n.site <- e.site
    end
    else begin
      n.thread <- thread_meet n.thread (Thread e.thread);
      if e.kind = Write && n.kind = Read then n.site <- e.site;
      n.kind <- kind_meet n.kind e.kind
    end;
    prune_stronger h n e.locks n.thread n.kind

  let process h (e : event) =
    let race = ref None in
    let weaker = ref false in
    let rec weak_dfs n =
      if node_weaker n e then weaker := true
      else
        List.iter
          (fun c -> if (not !weaker) && L.mem c.label e.locks then weak_dfs c)
          n.children
    in
    let rec race_dfs n path =
      if
        !race = None
        && thread_meet (Thread e.thread) n.thread = Bot
        && kind_meet e.kind n.kind = Write
      then
        race :=
          Some
            {
              p_thread = n.thread;
              p_kind = n.kind;
              p_locks = path;
              p_site = n.site;
            }
      else if !race = None then
        List.iter
          (fun c ->
            if (not (L.mem c.label e.locks)) && !race = None then
              race_dfs c (L.add c.label path))
          n.children
    in
    if node_weaker h.root e then weaker := true;
    if
      thread_meet (Thread e.thread) h.root.thread = Bot
      && kind_meet e.kind h.root.kind = Write
    then
      race :=
        Some
          {
            p_thread = h.root.thread;
            p_kind = h.root.kind;
            p_locks = L.empty;
            p_site = h.root.site;
          };
    List.iter
      (fun c ->
        if L.mem c.label e.locks then (if not !weaker then weak_dfs c)
        else if !race = None then race_dfs c (L.singleton c.label))
      h.root.children;
    if not !weaker then update h e;
    (!race, !weaker)
end

(* ---- packed trie, pre-interning body ---- *)

module Trie_packed = struct
  type summary = {
    mutable s_thread : thread_info;
    mutable s_kind : kind;
    mutable s_site : int;
  }

  type node = {
    label : int;
    summaries : (int, summary) Hashtbl.t;
    mutable children : node list;
  }

  type t = { root : node; mutable nodes : int }

  let mk_node label = { label; summaries = Hashtbl.create 4; children = [] }

  let create () = { root = mk_node (-1); nodes = 1 }

  let node_count h = h.nodes

  let locations h =
    let locs = Hashtbl.create 64 in
    let rec go n =
      Hashtbl.iter (fun l _ -> Hashtbl.replace locs l ()) n.summaries;
      List.iter go n.children
    in
    go h.root;
    Hashtbl.length locs

  let summary_weaker s (e : event) =
    thread_leq s.s_thread (Thread e.thread) && kind_leq s.s_kind e.kind

  let rec descend h n = function
    | [] -> n
    | l :: rest ->
        let rec find = function
          | c :: _ when c.label = l -> Some c
          | c :: tl when c.label < l -> find tl
          | _ -> None
        in
        let child =
          match find n.children with
          | Some c -> c
          | None ->
              let c = mk_node l in
              h.nodes <- h.nodes + 1;
              let rec ins = function
                | x :: tl when x.label < l -> x :: ins tl
                | tl -> c :: tl
              in
              n.children <- ins n.children;
              c
        in
        descend h child rest

  let prune_stronger h keep loc locks tv av =
    let rec go n required =
      let required' =
        match required with
        | r :: rest when n.label = r -> Some rest
        | r :: _ when n.label > r -> None
        | req -> Some req
      in
      match required' with
      | None -> true
      | Some req ->
          (if req = [] && n != keep then
             match Hashtbl.find_opt n.summaries loc with
             | Some s when thread_leq tv s.s_thread && kind_leq av s.s_kind ->
                 Hashtbl.remove n.summaries loc
             | _ -> ());
          let survivors =
            List.filter
              (fun c ->
                let live = go c req in
                if not live then h.nodes <- h.nodes - 1;
                live)
              n.children
          in
          n.children <- survivors;
          Hashtbl.length n.summaries > 0 || n.children <> [] || n == keep
    in
    ignore (go h.root (L.to_sorted_list locks))

  let update h (e : event) =
    let n = descend h h.root (L.to_sorted_list e.locks) in
    let tv, av =
      match Hashtbl.find_opt n.summaries e.loc with
      | Some s ->
          s.s_thread <- thread_meet s.s_thread (Thread e.thread);
          if e.kind = Write && s.s_kind = Read then s.s_site <- e.site;
          s.s_kind <- kind_meet s.s_kind e.kind;
          (s.s_thread, s.s_kind)
      | None ->
          Hashtbl.replace n.summaries e.loc
            { s_thread = Thread e.thread; s_kind = e.kind; s_site = e.site };
          (Thread e.thread, e.kind)
    in
    prune_stronger h n e.loc e.locks tv av

  let process h (e : event) =
    let race = ref None in
    let weaker = ref false in
    let check_weak n =
      match Hashtbl.find_opt n.summaries e.loc with
      | Some s when summary_weaker s e -> weaker := true
      | _ -> ()
    in
    let check_race n path =
      if !race = None then
        match Hashtbl.find_opt n.summaries e.loc with
        | Some s
          when thread_meet (Thread e.thread) s.s_thread = Bot
               && kind_meet e.kind s.s_kind = Write ->
            race :=
              Some
                {
                  p_thread = s.s_thread;
                  p_kind = s.s_kind;
                  p_locks = path;
                  p_site = s.s_site;
                }
        | _ -> ()
    in
    let rec weak_dfs n =
      check_weak n;
      if not !weaker then
        List.iter
          (fun c -> if (not !weaker) && L.mem c.label e.locks then weak_dfs c)
          n.children
    in
    let rec race_dfs n path =
      check_race n path;
      if !race = None then
        List.iter
          (fun c ->
            if (not (L.mem c.label e.locks)) && !race = None then
              race_dfs c (L.add c.label path))
          n.children
    in
    check_weak h.root;
    check_race h.root L.empty;
    List.iter
      (fun c ->
        if L.mem c.label e.locks then (if not !weaker then weak_dfs c)
        else if !race = None then race_dfs c (L.singleton c.label))
      h.root.children;
    if not !weaker then update h e;
    (!race, !weaker)
end

(* ---- the detector funnel, pre-interning wiring ---- *)

type stats = {
  events_in : int;
  cache_hits : int;
  ownership_filtered : int;
  weaker_filtered : int;
  race_checks : int;
  races_reported : int;
  locations_tracked : int;
  trie_nodes : int;
}

type history = Htries of (int, Trie.t) Hashtbl.t | Hpacked of Trie_packed.t

type t = {
  config : C.Detector.config;
  history : history;
  caches : (int, C.Cache.t) Hashtbl.t;
  own : C.Ownership.t;
  mutable races : race list; (* reverse order *)
  seen : (int, unit) Hashtbl.t;
  mutable events_in : int;
  mutable cache_hits : int;
  mutable ownership_filtered : int;
  mutable weaker_filtered : int;
  mutable race_checks : int;
}

let create config =
  {
    config;
    history =
      (match config.C.Detector.history with
      | C.Detector.Per_location -> Htries (Hashtbl.create 1024)
      | C.Detector.Packed -> Hpacked (Trie_packed.create ()));
    caches = Hashtbl.create 16;
    own = C.Ownership.create ();
    races = [];
    seen = Hashtbl.create 64;
    events_in = 0;
    cache_hits = 0;
    ownership_filtered = 0;
    weaker_filtered = 0;
    race_checks = 0;
  }

let cache_of d thread =
  match Hashtbl.find_opt d.caches thread with
  | Some c -> c
  | None ->
      let c = C.Cache.create ~size:d.config.C.Detector.cache_size () in
      Hashtbl.add d.caches thread c;
      c

let process_history d (e : event) =
  match d.history with
  | Hpacked h -> Trie_packed.process h e
  | Htries tries ->
      let trie =
        match Hashtbl.find_opt tries e.loc with
        | Some t -> t
        | None ->
            let t = Trie.create () in
            Hashtbl.add tries e.loc t;
            t
      in
      Trie.process trie e

let on_access d (e : event) =
  d.events_in <- d.events_in + 1;
  let filtered_by_cache =
    d.config.C.Detector.use_cache
    && C.Cache.lookup_or_add (cache_of d e.thread) ~kind:e.kind ~loc:e.loc
  in
  if filtered_by_cache then d.cache_hits <- d.cache_hits + 1
  else
    let pass =
      if not d.config.C.Detector.use_ownership then true
      else
        match C.Ownership.check d.own ~thread:e.thread ~loc:e.loc with
        | C.Ownership.Owned_skip ->
            d.ownership_filtered <- d.ownership_filtered + 1;
            false
        | C.Ownership.Became_shared ->
            if d.config.C.Detector.use_cache then
              Hashtbl.iter
                (fun t c -> if t <> e.thread then C.Cache.evict_loc c e.loc)
                d.caches;
            true
        | C.Ownership.Already_shared -> true
    in
    if pass then begin
      d.race_checks <- d.race_checks + 1;
      let race, redundant = process_history d e in
      if redundant then d.weaker_filtered <- d.weaker_filtered + 1;
      match race with
      | Some prior ->
          if not (Hashtbl.mem d.seen e.loc) then begin
            Hashtbl.replace d.seen e.loc ();
            d.races <- { r_loc = e.loc; r_current = e; r_prior = prior } :: d.races
          end
      | None -> ()
    end

let on_acquire d ~thread ~lock =
  if d.config.C.Detector.use_cache then C.Cache.acquired (cache_of d thread) lock

let on_release d ~thread ~lock =
  if d.config.C.Detector.use_cache then C.Cache.released (cache_of d thread) lock

let on_thread_exit d ~thread = Hashtbl.remove d.caches thread

let races d = List.rev d.races

let stats d =
  let trie_nodes =
    match d.history with
    | Htries tries ->
        Hashtbl.fold (fun _ t acc -> acc + Trie.node_count t) tries 0
    | Hpacked h -> Trie_packed.node_count h
  in
  let locations =
    match d.history with
    | Htries tries -> Hashtbl.length tries
    | Hpacked h -> Trie_packed.locations h
  in
  {
    events_in = d.events_in;
    cache_hits = d.cache_hits;
    ownership_filtered = d.ownership_filtered;
    weaker_filtered = d.weaker_filtered;
    race_checks = d.race_checks;
    races_reported = Hashtbl.length d.seen;
    locations_tracked = locations;
    trie_nodes;
  }

(* Replay a live Event_log through the frozen detector. *)
let replay (log : C.Event_log.t) d =
  C.Event_log.iter
    (function
      | C.Event_log.Access e -> on_access d (of_event e)
      | C.Event_log.Acquire (thread, lock) -> on_acquire d ~thread ~lock
      | C.Event_log.Release (thread, lock) -> on_release d ~thread ~lock
      | C.Event_log.Thread_start _ | C.Event_log.Thread_join _ -> ()
      | C.Event_log.Thread_exit thread -> on_thread_exit d ~thread)
    log
