let () =
  Alcotest.run "drd"
    [
      ("event", Test_event.suite);
      ("lockset_id", Test_lockset_id.suite);
      ("golden", Test_golden_equiv.suite);
      ("lang", Test_lang.suite);
      ("trie", Test_trie.suite);
      ("cache", Test_cache.suite);
      ("ownership", Test_ownership.suite);
      ("detector", Test_detector.suite);
      ("vm", Test_vm.suite);
      ("ir", Test_ir.suite);
      ("instr", Test_instr.suite);
      ("static", Test_static.suite);
      ("baselines", Test_baselines.suite);
      ("programs", Test_programs.suite);
      ("postmortem", Test_postmortem.suite);
      ("lockorder", Test_lockorder.suite);
      ("differential", Test_differential.suite);
      ("wait", Test_wait.suite);
      ("immutability", Test_immutability.suite);
      ("packed", Test_packed.suite);
      ("harness", Test_harness.suite);
      ("vm2", Test_vm2.suite);
      ("memloc", Test_memloc.suite);
      ("optimize", Test_optimize.suite);
      ("explore", Test_explore_engine.suite);
      ("hb_fingerprint", Test_hb_fingerprint.suite);
      ("wire", Test_wire.suite);
      ("link", Test_link.suite);
      ("specialize", Test_specialize.suite);
      ("vm_golden", Test_vm_golden.suite);
      ("evict", Test_evict.suite);
      ("serve", Test_serve.suite);
      ("arena", Test_arena.suite);
      ("cli", Test_cli.suite);
    ]
