(* Tests for the per-location access-history trie (paper Section 3.2):
   the weakness check, the three-case race traversal, history update and
   pruning, plus a property test checking the reporting guarantee of
   Definition 1 against a naive quadratic oracle. *)

open Drd_core
open Event

let ls = Lockset.of_list

let ev ?(loc = 0) ?(thread = 0) ?(locks = []) ?(kind = Read) ?(site = 0) () =
  make ~loc ~thread ~locks:(ls locks) ~kind ~site

(* Feed one event through the full per-event protocol (race check always,
   update gated by the weakness check); returns the race found, if any. *)
let feed trie e = fst (Trie.process trie e)

let test_weakness_basic () =
  let t = Trie.create () in
  Trie.update t (ev ~thread:1 ~locks:[ 2 ] ~kind:Write ());
  Alcotest.(check bool) "same access is weaker" true
    (Trie.exists_weaker t (ev ~thread:1 ~locks:[ 2 ] ~kind:Write ()));
  Alcotest.(check bool) "write covers read" true
    (Trie.exists_weaker t (ev ~thread:1 ~locks:[ 2 ] ~kind:Read ()));
  Alcotest.(check bool) "subset lockset covers superset" true
    (Trie.exists_weaker t (ev ~thread:1 ~locks:[ 2; 5 ] ~kind:Write ()));
  Alcotest.(check bool) "other thread not covered" false
    (Trie.exists_weaker t (ev ~thread:2 ~locks:[ 2 ] ~kind:Write ()));
  Alcotest.(check bool) "read does not cover write" false
    (let t = Trie.create () in
     Trie.update t (ev ~thread:1 ~locks:[] ~kind:Read ());
     Trie.exists_weaker t (ev ~thread:1 ~locks:[] ~kind:Write ()));
  Alcotest.(check bool) "superset lockset does not cover subset" false
    (Trie.exists_weaker t (ev ~thread:1 ~locks:[] ~kind:Write ()))

let test_bot_weakness () =
  let t = Trie.create () in
  (* Two threads with the same lockset degrade the node to t_bot, which
     is weaker than any thread. *)
  Trie.update t (ev ~thread:1 ~locks:[ 3 ] ~kind:Write ());
  Trie.update t (ev ~thread:2 ~locks:[ 3 ] ~kind:Write ());
  Alcotest.(check bool) "bot covers third thread" true
    (Trie.exists_weaker t (ev ~thread:7 ~locks:[ 3 ] ~kind:Write ()))

let test_race_cases () =
  (* Case II: disjoint locksets, different threads, one write. *)
  let t = Trie.create () in
  ignore (feed t (ev ~thread:1 ~locks:[ 1 ] ~kind:Write ~site:11 ()));
  (match feed t (ev ~thread:2 ~locks:[ 2 ] ~kind:Read ~site:21 ()) with
  | Some p ->
      Alcotest.(check bool) "prior thread" true (p.Trie.p_thread = Thread 1);
      Alcotest.(check bool) "prior kind" true (p.Trie.p_kind = Write);
      Alcotest.(check (list int)) "prior locks" [ 1 ]
        (Lockset_id.to_sorted_list p.Trie.p_locks);
      Alcotest.(check int) "prior site" 11 p.Trie.p_site
  | None -> Alcotest.fail "expected a race");
  (* Case I: common lock prunes the subtree. *)
  let t = Trie.create () in
  ignore (feed t (ev ~thread:1 ~locks:[ 1; 2 ] ~kind:Write ()));
  Alcotest.(check bool) "common lock, no race" true
    (feed t (ev ~thread:2 ~locks:[ 2; 3 ] ~kind:Write ()) = None);
  (* Both reads never race. *)
  let t = Trie.create () in
  ignore (feed t (ev ~thread:1 ~locks:[] ~kind:Read ()));
  Alcotest.(check bool) "read-read, no race" true
    (feed t (ev ~thread:2 ~locks:[] ~kind:Read ()) = None);
  (* Same thread never races. *)
  let t = Trie.create () in
  ignore (feed t (ev ~thread:1 ~locks:[ 1 ] ~kind:Write ()));
  Alcotest.(check bool) "same thread, no race" true
    (feed t (ev ~thread:1 ~locks:[ 2 ] ~kind:Write ()) = None)

let test_empty_lockset_root_race () =
  (* Accesses with the empty lockset live at the root node; races with
     them must still be found. *)
  let t = Trie.create () in
  ignore (feed t (ev ~thread:1 ~locks:[] ~kind:Write ()));
  Alcotest.(check bool) "race with root access" true
    (feed t (ev ~thread:2 ~locks:[ 4 ] ~kind:Read ()) <> None)

let test_prune_stronger () =
  let t = Trie.create () in
  ignore (feed t (ev ~thread:1 ~locks:[ 1; 2 ] ~kind:Read ()));
  Alcotest.(check int) "three nodes (root + 2)" 3 (Trie.node_count t);
  (* A weaker access (same thread, smaller lockset, write) prunes it. *)
  ignore (feed t (ev ~thread:1 ~locks:[ 1 ] ~kind:Write ()));
  let stored =
    Trie.fold_accesses
      (fun ~locks ~thread:_ ~kind:_ ~site:_ acc ->
        Lockset.to_sorted_list locks :: acc)
      t []
  in
  Alcotest.(check (list (list int))) "only the weaker access remains" [ [ 1 ] ] stored;
  Alcotest.(check int) "pruned nodes reclaimed" 2 (Trie.node_count t)

let test_prune_does_not_remove_incomparable () =
  let t = Trie.create () in
  ignore (feed t (ev ~thread:1 ~locks:[ 1; 2 ] ~kind:Write ()));
  ignore (feed t (ev ~thread:1 ~locks:[ 3 ] ~kind:Read ()));
  (* Read at {3} is not weaker than write at {1;2} and vice versa. *)
  let stored =
    Trie.fold_accesses
      (fun ~locks ~thread:_ ~kind:_ ~site:_ acc ->
        Lockset.to_sorted_list locks :: acc)
      t []
    |> List.sort compare
  in
  Alcotest.(check (list (list int))) "both remain" [ [ 1; 2 ]; [ 3 ] ] stored

(* ------------------------------------------------------------------ *)
(* Property: reporting guarantee (Definition 1).  For every location
   involved in a race according to the quadratic oracle over the raw
   event sequence, the trie-based detector (weakness filter + race check
   + update/prune) must flag that location. *)

let gen_trace =
  QCheck.Gen.(
    list_size (int_range 1 40)
      (map
         (fun (loc, thread, locks, w) ->
           make ~loc ~thread
             ~locks:(ls locks)
             ~kind:(if w then Write else Read)
             ~site:0)
         (quad (int_bound 2) (int_bound 2)
            (list_size (int_bound 2) (int_bound 3))
            bool)))

let arb_trace =
  QCheck.make ~print:Fmt.(to_to_string (Dump.list Event.pp)) gen_trace

let oracle_racy_locs trace =
  let racy = Hashtbl.create 8 in
  List.iteri
    (fun i ei ->
      List.iteri
        (fun j ej -> if i < j && is_race ei ej then Hashtbl.replace racy ei.loc ())
        trace)
    trace;
  Hashtbl.fold (fun l () acc -> l :: acc) racy [] |> List.sort compare

let detector_racy_locs trace =
  let tries = Hashtbl.create 8 in
  let racy = Hashtbl.create 8 in
  List.iter
    (fun e ->
      let t =
        match Hashtbl.find_opt tries e.loc with
        | Some t -> t
        | None ->
            let t = Trie.create () in
            Hashtbl.add tries e.loc t;
            t
      in
      match feed t e with
      | Some _ -> Hashtbl.replace racy e.loc ()
      | None -> ())
    trace;
  Hashtbl.fold (fun l () acc -> l :: acc) racy [] |> List.sort compare

let prop_reporting_guarantee =
  QCheck.Test.make ~count:1000 ~name:"Definition 1: every racy location reported"
    arb_trace (fun trace ->
      let oracle = oracle_racy_locs trace in
      let reported = detector_racy_locs trace in
      List.for_all (fun l -> List.mem l reported) oracle)

(* Precision on traces where no two distinct threads share a non-empty
   lockset on the same location: then t_bot merging cannot manufacture
   spurious races, and reported locations must be exactly the oracle's. *)
let prop_precision_no_shared_locksets =
  QCheck.Test.make ~count:1000 ~name:"precision without t_bot collisions" arb_trace
    (fun trace ->
      let clash =
        List.exists
          (fun (e1 : t) ->
            List.exists
              (fun (e2 : t) ->
                e1.loc = e2.loc && e1.thread <> e2.thread
                && (not (Lockset_id.is_empty e1.locks))
                && Lockset_id.equal e1.locks e2.locks)
              trace)
          trace
      in
      QCheck.assume (not clash);
      detector_racy_locs trace = oracle_racy_locs trace)

(* The fused single-DFS [process] agrees with the reference composition
   of [find_race] / [exists_weaker] / [update] on whole traces. *)
let prop_process_matches_reference =
  QCheck.Test.make ~count:1000 ~name:"process = find_race + exists_weaker + update"
    arb_trace (fun trace ->
      let fused = Trie.create () and refr = Trie.create () in
      List.for_all
        (fun e ->
          let race_f, red_f = Trie.process fused e in
          let race_r = Trie.find_race refr e in
          let red_r = Trie.exists_weaker refr e in
          if not red_r then Trie.update refr e;
          let dump t =
            Trie.fold_accesses
              (fun ~locks ~thread ~kind ~site acc ->
                (Lockset.to_sorted_list locks, thread, kind, site) :: acc)
              t []
            |> List.sort compare
          in
          (race_f = None) = (race_r = None)
          && red_f = red_r
          && dump fused = dump refr)
        trace)

(* Invariant: after any trace, the stored accesses of a trie form an
   antichain under the weaker-than order — a stronger access is either
   filtered on arrival or pruned when a weaker one lands. *)
let prop_stored_antichain =
  QCheck.Test.make ~count:1000 ~name:"stored accesses form an antichain"
    arb_trace (fun trace ->
      let tries = Hashtbl.create 8 in
      List.iter
        (fun (e : Event.t) ->
          let t =
            match Hashtbl.find_opt tries e.loc with
            | Some t -> t
            | None ->
                let t = Trie.create () in
                Hashtbl.add tries e.loc t;
                t
          in
          ignore (Trie.process t e))
        trace;
      Hashtbl.fold
        (fun _ t ok ->
          ok
          &&
          let stored =
            Trie.fold_accesses
              (fun ~locks ~thread ~kind ~site:_ acc ->
                (locks, thread, kind) :: acc)
              t []
          in
          List.for_all
            (fun (l1, t1, k1) ->
              List.for_all
                (fun (l2, t2, k2) ->
                  (l1, t1, k1) == (l2, t2, k2)
                  || (Lockset.equal l1 l2 && t1 = t2 && k1 = k2)
                  || not
                       (Lockset.subset l1 l2 && thread_leq t1 t2
                      && kind_leq k1 k2))
                stored)
            stored)
        tries true)

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_reporting_guarantee;
      prop_precision_no_shared_locksets;
      prop_process_matches_reference;
      prop_stored_antichain;
    ]

let suite =
  [
    Alcotest.test_case "weakness basics" `Quick test_weakness_basic;
    Alcotest.test_case "t_bot weakness" `Quick test_bot_weakness;
    Alcotest.test_case "race cases" `Quick test_race_cases;
    Alcotest.test_case "root (empty lockset) races" `Quick test_empty_lockset_root_race;
    Alcotest.test_case "prune stronger" `Quick test_prune_stronger;
    Alcotest.test_case "prune keeps incomparable" `Quick test_prune_does_not_remove_incomparable;
  ]
  @ qsuite
