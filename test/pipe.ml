(* Minimal parse→check→lower→instrument→run pipeline used by the VM and
   language tests.  The full configurable pipeline (static analysis,
   instrumentation optimization, baselines) lives in Drd_harness. *)

module Parser = Drd_lang.Parser
module Typecheck = Drd_lang.Typecheck
module Lower = Drd_ir.Lower
module Insert = Drd_instr.Insert
module Value = Drd_vm.Value
module Interp = Drd_vm.Interp
module Link = Drd_ir.Link
module Memloc = Drd_vm.Memloc
module Sink = Drd_vm.Sink
open Drd_core

type outcome = {
  prints : (string * Value.t option) list;
  races : Report.race list;
  race_locs : string list; (* decoded location names, sorted *)
  stats : Detector.stats;
  result : Interp.result;
}

let compile ?(peel = false) source =
  let ast = Parser.parse_program source in
  let tprog = Typecheck.check ast in
  let tprog = if peel then Drd_instr.Peel.peel_program tprog else tprog in
  Lower.lower_program tprog

let run ?(seed = 42) ?(quantum = 20) ?(instrument = true) ?(peel = false)
    ?(weaker = false) ?(static = false)
    ?(detector_config = Detector.default_config)
    ?(granularity = Memloc.Per_field) source =
  let prog = compile ~peel source in
  (if instrument then
     if static then
       let rs = Drd_static.Race_set.compute prog in
       Insert.instrument ~keep:(Drd_static.Race_set.may_race rs) prog
     else Insert.instrument prog);
  if weaker then ignore (Drd_instr.Static_weaker.eliminate prog);
  let collector = Report.collector () in
  let det = Detector.create ~config:detector_config collector in
  let sink =
    {
      Sink.null with
      Sink.access =
        (fun ~tid ~loc ~kind ~locks ~site ->
          Detector.on_access det
            (Event.make_interned ~loc ~thread:tid ~locks ~kind ~site));
      acquire = (fun ~tid ~lock -> Detector.on_acquire det ~thread:tid ~lock);
      release = (fun ~tid ~lock -> Detector.on_release det ~thread:tid ~lock);
      thread_exit = (fun ~tid -> Detector.on_thread_exit det ~thread:tid);
    }
  in
  let config = { Interp.default_config with seed; quantum; granularity } in
  let result = Interp.run ~config ~sink (Link.link prog) in
  let race_locs =
    Report.racy_locs collector
    |> List.map (Memloc.describe prog.Drd_ir.Ir.p_tprog result.Interp.r_heap)
    |> List.sort compare
  in
  {
    prints = result.Interp.r_prints;
    races = Report.races collector;
    race_locs;
    stats = Detector.stats det;
    result;
  }

(* Run one of the baseline detectors (fully instrumented program). *)
type baseline = Eraser | ObjRace | HappensBefore

let run_baseline ?(seed = 42) ?(quantum = 20) baseline source =
  let prog = compile source in
  Insert.instrument prog;
  let granularity =
    match baseline with
    | ObjRace -> Memloc.Per_object
    | Eraser | HappensBefore -> Memloc.Per_field
  in
  let (module D : Detector_intf.S) =
    match baseline with
    | Eraser -> (module Drd_baselines.Eraser)
    | ObjRace -> (module Drd_baselines.Objrace)
    | HappensBefore -> (module Drd_baselines.Happens_before)
  in
  let d = D.create () in
  let sink =
    {
      Sink.access =
        (fun ~tid ~loc ~kind ~locks ~site ->
          D.on_access_interned d ~loc ~thread:tid ~locks ~kind ~site);
      acquire = (fun ~tid ~lock -> D.on_acquire d ~thread:tid ~lock);
      release = (fun ~tid ~lock -> D.on_release d ~thread:tid ~lock);
      thread_start =
        (fun ~parent ~child -> D.on_thread_start d ~parent ~child);
      thread_join =
        (fun ~joiner ~joinee -> D.on_thread_join d ~joiner ~joinee);
      thread_exit = (fun ~tid -> D.on_thread_exit d ~thread:tid);
      call =
        (if D.needs_call_events then
           Some
             (fun ~tid ~obj ~locks ~site ->
               D.on_call d ~thread:tid
                 ~obj_loc:(Memloc.whole_object ~obj)
                 ~locks ~site)
         else None);
      spec = None;
    }
  in
  let config =
    {
      Interp.default_config with
      seed;
      quantum;
      granularity;
      pseudo_locks = false;
    }
  in
  let result = Interp.run ~config ~sink (Link.link prog) in
  let locs =
    D.racy_locs d
    |> List.map (Memloc.describe prog.Drd_ir.Ir.p_tprog result.Interp.r_heap)
    |> List.sort compare
  in
  (locs, result)

(* Convenience: run without any detection at all (Base configuration). *)
let run_base ?(seed = 42) ?(quantum = 20) source =
  let prog = compile source in
  Interp.run
    ~config:{ Interp.default_config with seed; quantum }
    ~sink:Sink.null (Link.link prog)

let ints prints =
  List.map
    (fun (tag, v) ->
      (tag, match v with Some (Value.Vint n) -> n | _ -> min_int))
    prints
