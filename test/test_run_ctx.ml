(* The pooled run-context contract (Pipeline.Run_ctx): a run through a
   reused, reset-in-place context must be byte-identical to the same
   run on fresh state — for every benchmark, engine, strategy family
   and equivalence mode — and an aborted run must leak nothing into the
   next run on the same context. *)

module H = Drd_harness
module E = Drd_explore
module Explore = E.Explore
module Strategy = E.Strategy
module I = Drd_vm.Interp

let benchmark_source name =
  match H.Programs.find name with
  | Some b -> b.H.Programs.b_source
  | None -> Alcotest.failf "%s benchmark missing" name

(* Everything report-visible about one run, serialized: races and
   objects, event/step/thread counts, prints, deadlocks, detector and
   immutability statistics.  Two runs with equal summaries consumed the
   same schedule and produced the same reports. *)
let summarize (r : H.Pipeline.result) =
  let b = Buffer.create 256 in
  let pr fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pr "races:%s\n" (String.concat ";" r.H.Pipeline.races);
  pr "objects:%s\n" (String.concat ";" r.H.Pipeline.racy_objects);
  pr "events:%d spec:%d steps:%d threads:%d\n" r.H.Pipeline.events
    r.H.Pipeline.spec_events r.H.Pipeline.steps r.H.Pipeline.threads;
  List.iter
    (fun (tag, v) ->
      pr "print:%s=%s\n" tag
        (match v with
        | Some v -> Fmt.str "%a" Drd_vm.Value.pp v
        | None -> "()"))
    r.H.Pipeline.prints;
  List.iter
    (fun (d : Drd_core.Lock_order.report) ->
      pr "deadlock:%s/%s\n"
        (String.concat "," (List.map string_of_int d.Drd_core.Lock_order.dl_locks))
        (String.concat ","
           (List.map string_of_int d.Drd_core.Lock_order.dl_threads)))
    r.H.Pipeline.deadlocks;
  (match r.H.Pipeline.detector_stats with
  | Some s -> pr "stats:%s\n" (Fmt.str "%a" Drd_core.Detector.pp_stats s)
  | None -> pr "stats:none\n");
  (match r.H.Pipeline.immutability with
  | Some s ->
      pr "immut:%d/%d/%d\n" s.Drd_core.Immutability.thread_local
        s.Drd_core.Immutability.shared_immutable
        s.Drd_core.Immutability.shared_mutable
  | None -> pr "immut:none\n");
  Buffer.contents b

let vm_for seed =
  {
    (H.Pipeline.vm_config_of H.Config.full) with
    I.seed;
    quantum = 7;
    policy = I.Random_walk;
  }

let test_pipeline_matrix () =
  (* Every benchmark × engine: a seed sweep through ONE reused context
     equals the same sweep with a fresh context per run.  The [`Ref]
     engine runs the frozen block interpreter but still pools the
     detector-side state, so it participates on the small benchmarks. *)
  let seeds = [ 0; 1; 2 ] in
  List.iter
    (fun (b : H.Programs.benchmark) ->
      let compiled =
        H.Pipeline.compile H.Config.full ~source:b.H.Programs.b_source
      in
      let ctx = H.Pipeline.Run_ctx.create compiled in
      let engines =
        if b.H.Programs.b_name = "tsp" || b.H.Programs.b_name = "needle" then
          [ ("spec", `Spec); ("linked", `Linked); ("ref", `Ref) ]
        else [ ("spec", `Spec); ("linked", `Linked) ]
      in
      List.iter
        (fun (ename, engine) ->
          List.iter
            (fun seed ->
              let vm = vm_for seed in
              let fresh =
                summarize (H.Pipeline.run ~vm ~engine compiled)
              in
              let reused =
                summarize (H.Pipeline.run ~ctx ~vm ~engine compiled)
              in
              Alcotest.(check string)
                (Printf.sprintf "%s/%s/seed %d: reused ctx byte-identical"
                   b.H.Programs.b_name ename seed)
                fresh reused)
            seeds)
        engines)
    H.Programs.benchmarks

let report_bytes ~target r =
  ( Explore.report_text ~timing:false ~target r,
    Explore.report_json ~timing:false r )

let test_campaign_matrix () =
  (* Campaign level: the worker pool holding one context per domain for
     the whole campaign ([reuse_ctx], the default) renders the same
     report as fresh per-run state, across both strategy families, both
     equivalence modes and 1 vs 2 workers. *)
  let strategies = [ ("sweep", Strategy.Sweep); ("pct", Strategy.Pct 3) ] in
  let equivs = [ ("raw", Explore.Raw); ("hb", Explore.Hb) ] in
  List.iter
    (fun name ->
      let source = benchmark_source name in
      let target = "-b " ^ name in
      List.iter
        (fun (sname, strategy) ->
          List.iter
            (fun (ename, equiv) ->
              List.iter
                (fun workers ->
                  let sp =
                    Explore.spec ~strategy ~workers
                      ~budget:(Explore.runs_budget 6) ~pct_horizon:5_000
                      ~equiv H.Config.full
                  in
                  Alcotest.(check (pair string string))
                    (Printf.sprintf "%s/%s/%s/%dw: ctx reuse byte-identical"
                       name sname ename workers)
                    (report_bytes ~target
                       (Explore.run_campaign ~reuse_ctx:false sp ~source))
                    (report_bytes ~target
                       (Explore.run_campaign ~reuse_ctx:true sp ~source)))
                [ 1; 2 ])
            equivs)
        strategies)
    [ "tsp"; "needle" ]

(* A schedule-dependent crash: User dereferences G.data, which Setter
   publishes late, so some seeds die with a NullPointerException and
   others complete.  Exercises the aborted-run guarantee. *)
let crashy_source =
  {|
  class G {
    static int[] data;
  }
  class Setter extends Thread {
    void run() {
      int x = 0;
      for (int i = 0; i < 6; i = i + 1) { x = x + i; }
      G.data = new int[4];
      G.data[0] = x;
    }
  }
  class User extends Thread {
    void run() {
      int y = 0;
      for (int i = 0; i < 6; i = i + 1) { y = y + i; }
      G.data[1] = 7 + y;
    }
  }
  class Main {
    static void main() {
      Setter s = new Setter();
      User u = new User();
      s.start();
      u.start();
      s.join();
      u.join();
      print(G.data[0]);
    }
  }
  |}

let outcome ?ctx compiled seed =
  match H.Pipeline.run ?ctx ~vm:(vm_for seed) compiled with
  | r -> Ok (summarize r)
  | exception I.Runtime_error msg -> Error msg

(* Shared-context environment for the abort property, built once on
   first use: the compiled program, ONE long-lived context, and a seed
   known to abort (the scan also proves completing seeds exist, so the
   property covers both outcome kinds). *)
let crash_env =
  lazy
    (let compiled = H.Pipeline.compile H.Config.full ~source:crashy_source in
     let ctx = H.Pipeline.Run_ctx.create compiled in
     let aborting = ref None and completing = ref None in
     for seed = 0 to 199 do
       match outcome compiled seed with
       | Ok _ -> if !completing = None then completing := Some seed
       | Error _ -> if !aborting = None then aborting := Some seed
     done;
     let aborting =
       match !aborting with
       | Some s -> s
       | None -> Alcotest.fail "no seed in 0..199 aborts the crashy program"
     in
     (match !completing with
     | Some _ -> ()
     | None -> Alcotest.fail "no seed in 0..199 completes the crashy program");
     (compiled, ctx, aborting))

(* QCheck property: for any seed, running on a context that just
   aborted (and on which many earlier runs happened) gives the same
   outcome — same summary or same error — as untouched fresh state. *)
let prop_aborted_run_no_bleed =
  QCheck.Test.make ~count:100 ~name:"aborted run leaves no state behind"
    QCheck.(int_range 0 9_999)
    (fun seed ->
      let compiled, ctx, aborting = Lazy.force crash_env in
      (* Poison the shared context with an aborted run, then compare
         the next run on it against fresh state. *)
      (match outcome ~ctx compiled aborting with
      | Error _ -> ()
      | Ok _ -> QCheck.Test.fail_reportf "seed %d stopped aborting" aborting);
      let on_shared = outcome ~ctx compiled seed in
      let on_fresh = outcome compiled seed in
      if on_shared <> on_fresh then
        QCheck.Test.fail_reportf
          "seed %d diverges after an aborted run on the shared context" seed;
      true)

let suite =
  [
    Alcotest.test_case "pipeline fresh vs reused matrix" `Quick
      test_pipeline_matrix;
    Alcotest.test_case "campaign fresh vs reused matrix" `Quick
      test_campaign_matrix;
    QCheck_alcotest.to_alcotest prop_aborted_run_no_bleed;
  ]
