(* Tests for the three baseline detectors the paper compares against
   (Sections 8.3 and 9): the Eraser lockset discipline, Praun-Gross
   object race detection, and a vector-clock happens-before detector —
   each reproducing the precision difference the paper claims. *)

module E = Drd_baselines.Eraser
module O = Drd_baselines.Objrace
module H = Drd_baselines.Happens_before
module V = Drd_baselines.Vclock
open Drd_core

(* Feed one access through the common Detector_intf.S entry point —
   the only access path the baselines expose now that the Event.t
   wrappers are gone. *)
let access (type a) (module D : Detector_intf.S with type t = a) (d : a)
    ?(loc = 0) ?(thread = 0) ?(locks = []) ?(kind = Event.Read) () =
  D.on_access_interned d ~loc ~thread ~locks:(Lockset_id.of_list locks) ~kind
    ~site:0

(* ---- Eraser unit tests ---- *)

let test_eraser_states () =
  let d = E.create () in
  (* Initialization by one thread is exempt. *)
  access (module E) d ~thread:1 ~kind:Event.Write ();
  access (module E) d ~thread:1 ~kind:Event.Write ();
  Alcotest.(check int) "exclusive quiet" 0 (E.race_count d);
  (* Read-shared without locks: still no error. *)
  access (module E) d ~thread:2 ~kind:Event.Read ();
  Alcotest.(check int) "read-shared quiet" 0 (E.race_count d);
  (* A write with empty candidate set: race. *)
  access (module E) d ~thread:1 ~kind:Event.Write ();
  Alcotest.(check int) "write to shared reports" 1 (E.race_count d)

let test_eraser_consistent_lock_quiet () =
  let d = E.create () in
  access (module E) d ~thread:1 ~locks:[ 7 ] ~kind:Event.Write ();
  access (module E) d ~thread:2 ~locks:[ 7 ] ~kind:Event.Write ();
  access (module E) d ~thread:1 ~locks:[ 7; 8 ] ~kind:Event.Read ();
  Alcotest.(check int) "common lock" 0 (E.race_count d)

let test_eraser_rejects_mutually_intersecting () =
  (* The mtrt idiom (Section 8.3): locksets {1,3},{2,3},{1,2} are
     mutually intersecting but share no single common lock — Eraser
     reports, our detector does not. *)
  let d = E.create () in
  access (module E) d ~thread:1 ~locks:[ 1; 3 ] ~kind:Event.Write ();
  access (module E) d ~thread:2 ~locks:[ 2; 3 ] ~kind:Event.Write ();
  (* T1 accesses again now that the location is shared, so its lockset
     {1,3} also refines the candidate set (Exclusive-state accesses are
     exempt in Eraser). *)
  access (module E) d ~thread:1 ~locks:[ 1; 3 ] ~kind:Event.Write ();
  Alcotest.(check int) "no single common lock yet no report" 0 (E.race_count d);
  access (module E) d ~thread:0 ~locks:[ 1; 2 ] ~kind:Event.Read ();
  Alcotest.(check int) "Eraser flags it" 1 (E.race_count d)

(* ---- Vector clock unit tests ---- *)

let test_vclock_laws () =
  let a = V.create ~n:4 () and b = V.create ~n:4 () in
  V.tick a 0;
  V.tick a 0;
  V.tick b 1;
  Alcotest.(check bool) "incomparable" false (V.leq a b && V.leq b a);
  V.join b a;
  Alcotest.(check bool) "join dominates" true (V.leq a b);
  Alcotest.(check bool) "epoch" true (V.epoch_leq ~thread:0 ~clock:2 b);
  Alcotest.(check bool) "epoch strict" false (V.epoch_leq ~thread:0 ~clock:3 b)

let test_hb_direct () =
  let d = H.create () in
  (* T0 writes, then start-edge to T1, T1 reads: ordered, quiet. *)
  access (module H) d ~thread:0 ~kind:Event.Write ();
  H.on_thread_start d ~parent:0 ~child:1;
  access (module H) d ~thread:1 ~kind:Event.Read ();
  Alcotest.(check int) "start edge orders" 0 (H.race_count d);
  (* Unordered concurrent write by T2. *)
  H.on_thread_start d ~parent:0 ~child:2;
  access (module H) d ~thread:2 ~kind:Event.Write ();
  Alcotest.(check int) "unordered write races" 1 (H.race_count d)

let test_hb_lock_transfer () =
  let d = H.create () in
  H.on_acquire d ~thread:0 ~lock:9;
  access (module H) d ~thread:0 ~kind:Event.Write ();
  H.on_release d ~thread:0 ~lock:9;
  H.on_acquire d ~thread:1 ~lock:9;
  access (module H) d ~thread:1 ~kind:Event.Write ();
  H.on_release d ~thread:1 ~lock:9;
  Alcotest.(check int) "lock edge orders" 0 (H.race_count d)

(* ---- End-to-end comparisons on MiniJava programs ---- *)

(* The mtrt join idiom: two workers update a statistic under a common
   lock; the parent reads it after joining both, without locks.  Our
   detector: locksets {S1,sync},{S2,sync},{S1,S2} mutually intersect —
   silent.  Eraser: no single common lock — spurious report. *)
let join_stats_src =
  {|
  class Stats { int ops; }
  class W extends Thread {
    Stats s; Object lock;
    W(Stats s0, Object l) { s = s0; lock = l; }
    void run() {
      for (int i = 0; i < 10; i = i + 1) {
        synchronized (lock) { s.ops = s.ops + 1; }
      }
    }
  }
  class Main {
    static void main() {
      Stats s = new Stats();
      Object l = new Object();
      W w1 = new W(s, l); W w2 = new W(s, l);
      w1.start(); w2.start();
      w1.join(); w2.join();
      print("ops", s.ops);
    }
  }
|}

let test_join_idiom_ours_vs_eraser () =
  let ours = Pipe.run join_stats_src in
  Alcotest.(check (list string)) "ours: silent" [] ours.Pipe.race_locs;
  let eraser, _ = Pipe.run_baseline Pipe.Eraser join_stats_src in
  Alcotest.(check bool) "Eraser: spurious report on ops" true
    (List.exists (fun l -> Astring_contains.contains l ".ops") eraser)

(* Object-granularity false positives: a perfectly synchronized counter
   still gets flagged by object race detection because the method call
   itself is treated as an unprotected write to the receiver. *)
let test_objrace_spurious_on_synchronized_counter () =
  let src = Test_vm.counter_src ~sync:true in
  let ours = Pipe.run src in
  Alcotest.(check (list string)) "ours: silent" [] ours.Pipe.race_locs;
  let objrace, _ = Pipe.run_baseline Pipe.ObjRace src in
  Alcotest.(check bool) "objrace: spurious report" true
    (List.length objrace > 0)

let test_objrace_superset_of_ours () =
  (* On a racy program, object race detection reports at least the
     objects we report. *)
  let src = Test_vm.counter_src ~sync:false in
  let ours = Pipe.run src in
  let objrace, _ = Pipe.run_baseline Pipe.ObjRace src in
  Alcotest.(check bool) "ours found the race" true
    (List.length ours.Pipe.race_locs > 0);
  Alcotest.(check bool) "objrace reports too" true (List.length objrace > 0)

(* The feasible-race example (Figure 2 with p == q): our lockset-based
   definition reports it under every schedule; happens-before only when
   T2 happens to win the lock first.  Sweep seeds and check both
   behaviours materialize. *)
let test_feasible_race_hb_schedule_dependent () =
  let src = Test_vm.figure2 ~same_pq:true in
  let seeds = List.init 20 (fun i -> i + 1) in
  let hb_hits = ref 0 and hb_misses = ref 0 in
  List.iter
    (fun seed ->
      let ours = Pipe.run ~seed src in
      Alcotest.(check int) "ours reports under every schedule" 1
        (List.length ours.Pipe.race_locs);
      let hb, _ = Pipe.run_baseline ~seed Pipe.HappensBefore src in
      let hit = List.exists (fun l -> Astring_contains.contains l ".f") hb in
      if hit then incr hb_hits else incr hb_misses)
    seeds;
  Alcotest.(check bool)
    (Fmt.str "HB misses on some schedules (hits %d, misses %d)" !hb_hits
       !hb_misses)
    true
    (!hb_misses > 0);
  Alcotest.(check bool) "HB catches on some schedules" true (!hb_hits > 0)

let test_hb_no_false_positive_on_synchronized () =
  let hb, _ = Pipe.run_baseline Pipe.HappensBefore (Test_vm.counter_src ~sync:true) in
  Alcotest.(check (list string)) "HB quiet on synchronized counter" [] hb

let test_hb_catches_plain_race () =
  let hb, _ = Pipe.run_baseline Pipe.HappensBefore (Test_vm.counter_src ~sync:false) in
  Alcotest.(check bool) "HB reports the counter race" true
    (List.exists (fun l -> Astring_contains.contains l ".n") hb)

let suite =
  [
    Alcotest.test_case "eraser states" `Quick test_eraser_states;
    Alcotest.test_case "eraser common lock" `Quick test_eraser_consistent_lock_quiet;
    Alcotest.test_case "eraser vs intersecting locksets" `Quick
      test_eraser_rejects_mutually_intersecting;
    Alcotest.test_case "vector clock laws" `Quick test_vclock_laws;
    Alcotest.test_case "hb direct" `Quick test_hb_direct;
    Alcotest.test_case "hb lock transfer" `Quick test_hb_lock_transfer;
    Alcotest.test_case "join idiom: ours vs Eraser" `Quick test_join_idiom_ours_vs_eraser;
    Alcotest.test_case "objrace spurious" `Quick test_objrace_spurious_on_synchronized_counter;
    Alcotest.test_case "objrace superset" `Quick test_objrace_superset_of_ours;
    Alcotest.test_case "feasible race vs HB" `Quick test_feasible_race_hb_schedule_dependent;
    Alcotest.test_case "hb quiet on sync" `Quick test_hb_no_false_positive_on_synchronized;
    Alcotest.test_case "hb catches race" `Quick test_hb_catches_plain_race;
  ]
