(* Post-mortem detection (paper Section 1): recording the event stream
   and running detection off-line must produce exactly the online
   reports; the text serialization round-trips. *)

module H = Drd_harness
open Drd_core

let online_vs_postmortem name =
  let b = Option.get (H.Programs.find name) in
  let compiled =
    H.Pipeline.compile H.Config.full ~source:b.H.Programs.b_source
  in
  let online = H.Pipeline.run compiled in
  let log, _ = H.Pipeline.record_log compiled in
  let coll, stats = H.Pipeline.detect_post_mortem H.Config.full log in
  (online, log, coll, stats)

let test_equivalence () =
  List.iter
    (fun name ->
      let online, log, coll, _ = online_vs_postmortem name in
      Alcotest.(check bool) (name ^ ": log non-trivial") true
        (Event_log.length log > 0);
      match online.H.Pipeline.report with
      | Some online_coll ->
          Alcotest.(check (list int))
            (name ^ ": same racy locations")
            (List.sort compare (Report.racy_locs online_coll))
            (List.sort compare (Report.racy_locs coll))
      | None -> Alcotest.fail "online run had no collector")
    [ "mtrt"; "tsp"; "sor2"; "elevator"; "hedc" ]

let test_stats_equivalence () =
  (* The offline detector consumes the identical stream, so its funnel
     statistics match the online ones.  Pinned to the generic [`Linked]
     engine: the specialized engine drops provably-redundant events
     before the detector, so its internal funnel counters are allowed
     to differ (its reports are not — test_equivalence covers that with
     the default engine). *)
  let b = Option.get (H.Programs.find "tsp") in
  let compiled =
    H.Pipeline.compile H.Config.full ~source:b.H.Programs.b_source
  in
  let online = H.Pipeline.run ~engine:`Linked compiled in
  let log, _ = H.Pipeline.record_log compiled in
  let _, stats = H.Pipeline.detect_post_mortem H.Config.full log in
  match online.H.Pipeline.detector_stats with
  | Some s ->
      Alcotest.(check int) "events" s.Detector.events_in stats.Detector.events_in;
      Alcotest.(check int) "cache hits" s.Detector.cache_hits
        stats.Detector.cache_hits;
      Alcotest.(check int) "races" s.Detector.races_reported
        stats.Detector.races_reported
  | None -> Alcotest.fail "no online stats"

let test_serialization_roundtrip () =
  let _, log, _, _ = online_vs_postmortem "hedc" in
  let path = Filename.temp_file "drd_log" ".txt" in
  let oc = open_out path in
  Event_log.to_channel oc log;
  close_out oc;
  let ic = open_in path in
  let log' = Event_log.of_channel ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check int) "same length" (Event_log.length log)
    (Event_log.length log');
  Alcotest.(check bool) "same entries" true
    (List.for_all2 Event_log.equal_entry (Event_log.entries log)
       (Event_log.entries log'));
  (* And the replayed copy detects the same races. *)
  let c1, _ = H.Pipeline.detect_post_mortem H.Config.full log in
  let c2, _ = H.Pipeline.detect_post_mortem H.Config.full log' in
  Alcotest.(check (list int)) "same races"
    (List.sort compare (Report.racy_locs c1))
    (List.sort compare (Report.racy_locs c2))

let gen_entry =
  QCheck.Gen.(
    frequency
      [
        ( 5,
          map
            (fun (loc, thread, locks, w) ->
              Event_log.Access
                (Event.make ~loc ~thread
                   ~locks:(Event.Lockset.of_list locks)
                   ~kind:(if w then Event.Write else Event.Read)
                   ~site:(loc mod 17)))
            (quad (int_bound 10000) (int_bound 63)
               (list_size (int_bound 4) (int_bound 2000))
               bool) );
        (1, map2 (fun t l -> Event_log.Acquire (t, l)) (int_bound 63) (int_bound 2000));
        (1, map2 (fun t l -> Event_log.Release (t, l)) (int_bound 63) (int_bound 2000));
        (1, map2 (fun p c -> Event_log.Thread_start (p, c)) (int_bound 63) (int_bound 63));
        (1, map2 (fun j e -> Event_log.Thread_join (j, e)) (int_bound 63) (int_bound 63));
        (1, map (fun t -> Event_log.Thread_exit t) (int_bound 63));
      ])

let prop_roundtrip =
  QCheck.Test.make ~count:300 ~name:"event log text round-trip"
    (QCheck.make QCheck.Gen.(list_size (int_bound 50) gen_entry))
    (fun entries ->
      let log = Event_log.create () in
      List.iter (Event_log.record log) entries;
      let path = Filename.temp_file "drd_qlog" ".txt" in
      let oc = open_out path in
      Event_log.to_channel oc log;
      close_out oc;
      let ic = open_in path in
      let log' = Event_log.of_channel ic in
      close_in ic;
      Sys.remove path;
      List.length (Event_log.entries log)
      = List.length (Event_log.entries log')
      && List.for_all2 Event_log.equal_entry (Event_log.entries log)
           (Event_log.entries log'))

let parse_string s =
  let path = Filename.temp_file "drd_badlog" ".txt" in
  let oc = open_out path in
  output_string oc s;
  close_out oc;
  let ic = open_in path in
  let r =
    match Event_log.of_channel ic with
    | log -> Ok log
    | exception Failure msg -> Error msg
  in
  close_in ic;
  Sys.remove path;
  r

let check_error name input fragments =
  match parse_string input with
  | Ok _ -> Alcotest.failf "%s: malformed input parsed" name
  | Error msg ->
      List.iter
        (fun fragment ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: error %S mentions %S" name msg fragment)
            true
            (Astring_contains.contains msg fragment))
        fragments

let test_malformed_input () =
  (* The parser must locate the bad line and say what is wrong with
     it, not die with int_of_string's bare "Failure". *)
  check_error "bad tag" "A 1 2 R 0\nQ 1 2\n" [ "line 2"; "\"Q\"" ];
  check_error "bad thread" "L one 5\n" [ "line 1"; "thread"; "\"one\"" ];
  check_error "bad kind" "A 1 2 Z 0\n" [ "line 1"; "kind"; "\"Z\"" ];
  check_error "bad lock" "A 1 2 W 0 3 x\n" [ "line 1"; "lock"; "\"x\"" ];
  (* Blank lines are skipped, so the count is relative to the file. *)
  check_error "line numbering" "A 1 2 R 0\n\nX 1\nS 0 nope\n"
    [ "line 4"; "child"; "\"nope\"" ];
  (* Well-formed input with blank lines still parses. *)
  match parse_string "A 1 2 R 0\n\nX 1\n" with
  | Ok log -> Alcotest.(check int) "blank lines skipped" 2 (Event_log.length log)
  | Error msg -> Alcotest.failf "valid log rejected: %s" msg

let test_unheld_release_replays () =
  (* A log releasing a lock that was never acquired is malformed but
     must replay without an exception: the cache warns once and clears
     instead of aborting the whole post-mortem run. *)
  match
    parse_string "A 1 0 W 0\nU 0 5\nA 1 1 R 1\nA 1 0 W 2\n"
  with
  | Error msg -> Alcotest.failf "log rejected at parse time: %s" msg
  | Ok log ->
      let coll, stats = H.Pipeline.detect_post_mortem H.Config.full log in
      Alcotest.(check int) "all events processed" 3 stats.Detector.events_in;
      Alcotest.(check int) "race still found" 1 (Report.count coll)

(* FullRace reconstruction (Sections 2.5/2.6). *)
let test_full_race_counts_match_oracle () =
  let b = Option.get (H.Programs.find "tsp") in
  let compiled = H.Pipeline.compile H.Config.full ~source:b.H.Programs.b_source in
  let log, _ = H.Pipeline.record_log compiled in
  let racy = Full_race.racy_locs_of_log log in
  Alcotest.(check bool) "found racy locations" true (racy <> []);
  let all_events =
    List.filter_map
      (function Event_log.Access e -> Some e | _ -> None)
      (Event_log.entries log)
  in
  let oracle_pairs loc =
    let events =
      List.filter (fun (e : Event.t) -> e.Event.loc = loc) all_events
      |> Array.of_list
    in
    let c = ref 0 in
    Array.iteri
      (fun i a ->
        Array.iteri
          (fun j b -> if i < j && Event.is_race a b then incr c)
          events)
      events;
    !c
  in
  List.iter
    (fun (loc, pairs) ->
      let total = List.fold_left (fun acc p -> acc + p.Full_race.fr_count) 0 pairs in
      Alcotest.(check int)
        (Printf.sprintf "loc %d pair count" loc)
        (oracle_pairs loc) total;
      Alcotest.(check bool) "racy loc has pairs" true (total > 0);
      List.iter
        (fun (p : Full_race.pair) ->
          let a, b = p.Full_race.fr_example in
          Alcotest.(check bool) "example is a race" true (Event.is_race a b))
        pairs)
    (Full_race.reconstruct ~ownership:false log ~locs:racy);
  (* The ownership-filtered reconstruction is a subset of the raw one. *)
  List.iter2
    (fun (_, raw) (_, filtered) ->
      let tot ps = List.fold_left (fun acc p -> acc + p.Full_race.fr_count) 0 ps in
      Alcotest.(check bool) "filtered <= raw" true (tot filtered <= tot raw))
    (Full_race.reconstruct ~ownership:false log ~locs:racy)
    (Full_race.reconstruct log ~locs:racy)

let test_full_race_figure2 () =
  let compiled =
    H.Pipeline.compile H.Config.full ~source:(H.Programs.figure2 ())
  in
  let log, _ = H.Pipeline.record_log compiled in
  let racy = Full_race.racy_locs_of_log log in
  Alcotest.(check int) "one racy location" 1 (List.length racy);
  match Full_race.reconstruct log ~locs:racy with
  | [ (_, pairs) ] ->
      (* T11:a.f and T14:b.f both race with T21:d.f — two site pairs. *)
      Alcotest.(check int) "two racing site pairs" 2 (List.length pairs)
  | _ -> Alcotest.fail "expected one location"

let suite =
  [
    Alcotest.test_case "online = post-mortem" `Quick test_equivalence;
    Alcotest.test_case "funnel stats match" `Quick test_stats_equivalence;
    Alcotest.test_case "serialization round-trip" `Quick test_serialization_roundtrip;
    Alcotest.test_case "malformed input errors" `Quick test_malformed_input;
    Alcotest.test_case "unheld release replays" `Quick test_unheld_release_replays;
    Alcotest.test_case "FullRace = oracle" `Quick test_full_race_counts_match_oracle;
    Alcotest.test_case "FullRace on figure 2" `Quick test_full_race_figure2;
    QCheck_alcotest.to_alcotest prop_roundtrip;
  ]
