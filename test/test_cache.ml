(* Tests for the per-thread runtime caches (paper Section 4): the policy
   invariant "a hit implies a weaker access was already forwarded", LIFO
   eviction, conflict replacement, and end-to-end transparency — the
   detector reports the same racy locations with and without caches on
   randomly generated well-nested multithreaded traces. *)

open Drd_core
open Event

let test_hit_after_miss () =
  let c = Cache.create ~size:8 () in
  Alcotest.(check bool) "first lookup misses" false
    (Cache.lookup_or_add c ~kind:Read ~loc:42);
  Alcotest.(check bool) "second lookup hits" true
    (Cache.lookup_or_add c ~kind:Read ~loc:42);
  Alcotest.(check bool) "write cache independent" false
    (Cache.lookup_or_add c ~kind:Write ~loc:42);
  Alcotest.(check int) "hit count" 1 (Cache.hits c);
  Alcotest.(check int) "miss count" 2 (Cache.misses c)

let test_eviction_on_release () =
  let c = Cache.create ~size:8 () in
  Cache.acquired c 100;
  ignore (Cache.lookup_or_add c ~kind:Write ~loc:1);
  Alcotest.(check bool) "hit while lock held" true
    (Cache.lookup_or_add c ~kind:Write ~loc:1);
  Cache.released c 100;
  Alcotest.(check bool) "evicted after release" false
    (Cache.lookup_or_add c ~kind:Write ~loc:1)

let test_nested_locks_lifo () =
  let c = Cache.create ~size:8 () in
  ignore (Cache.lookup_or_add c ~kind:Read ~loc:0);
  Cache.acquired c 100;
  ignore (Cache.lookup_or_add c ~kind:Read ~loc:1);
  Cache.acquired c 200;
  ignore (Cache.lookup_or_add c ~kind:Read ~loc:2);
  Cache.released c 200;
  Alcotest.(check bool) "inner entry evicted" false
    (Cache.lookup_or_add c ~kind:Read ~loc:2);
  (* loc 2 was re-added under lock 100 by the miss above. *)
  Cache.released c 100;
  Alcotest.(check bool) "outer entry evicted" false
    (Cache.lookup_or_add c ~kind:Read ~loc:1);
  Alcotest.(check bool) "lock-free entry survives" true
    (Cache.lookup_or_add c ~kind:Read ~loc:0)

(* Releasing a lock that was never acquired (malformed stream) degrades
   gracefully: the caches are cleared instead of raising, and held locks
   keep working. *)
let test_release_without_acquire_graceful () =
  let c = Cache.create ~size:8 () in
  Cache.acquired c 1;
  ignore (Cache.lookup_or_add c ~kind:Read ~loc:7);
  Cache.released c 2;
  Alcotest.(check bool) "caches cleared on unheld release" false
    (Cache.lookup_or_add c ~kind:Read ~loc:7);
  (* Lock 1 is still held: its frame survived, so inserting under it and
     releasing it still evicts. *)
  ignore (Cache.lookup_or_add c ~kind:Read ~loc:8);
  Cache.released c 1;
  Alcotest.(check bool) "held lock still evicts after recovery" false
    (Cache.lookup_or_add c ~kind:Read ~loc:8)

(* wait() can release a non-innermost monitor: the cache must stay
   sound by over-evicting the inner frames while keeping them on the
   stack for their own later release. *)
let test_non_lifo_release_conservative () =
  let c = Cache.create ~size:8 () in
  Cache.acquired c 1;
  ignore (Cache.lookup_or_add c ~kind:Event.Read ~loc:10);
  Cache.acquired c 2;
  ignore (Cache.lookup_or_add c ~kind:Event.Read ~loc:20);
  (* Release the OUTER lock 1 (as wait(outer) would). *)
  Cache.released c 1;
  Alcotest.(check bool) "outer entry evicted" false
    (Cache.lookup_or_add c ~kind:Event.Read ~loc:10);
  (* loc 20 was over-evicted (safe), and was re-inserted by the miss
     above?  No: that miss was loc 10.  Check 20 misses too. *)
  Alcotest.(check bool) "inner entry over-evicted" false
    (Cache.lookup_or_add c ~kind:Event.Read ~loc:20);
  (* Lock 2 is still held and its frame survives: releasing it must
     evict the entries inserted after the non-LIFO release. *)
  Cache.released c 2;
  Alcotest.(check bool) "re-inserted entries evicted by inner release" false
    (Cache.lookup_or_add c ~kind:Event.Read ~loc:20)

let test_conflict_replacement_not_double_evicted () =
  (* After an entry is replaced due to an index conflict, releasing the
     lock under which the old entry was inserted must not evict the new
     occupant. *)
  let c = Cache.create ~size:1 () in
  Cache.acquired c 100;
  ignore (Cache.lookup_or_add c ~kind:Read ~loc:1);
  Cache.released c 100;
  (* Entry for loc 1 evicted.  Insert loc 2 with no locks held. *)
  ignore (Cache.lookup_or_add c ~kind:Read ~loc:2);
  Cache.acquired c 100;
  ignore (Cache.lookup_or_add c ~kind:Read ~loc:3);
  (* loc 3 replaced loc 2 (size-1 cache).  Release: evicts loc 3 only. *)
  Cache.released c 100;
  Alcotest.(check bool) "replaced entry gone" false
    (Cache.lookup_or_add c ~kind:Read ~loc:3)

let test_stale_list_pair_ignored () =
  let c = Cache.create ~size:1 () in
  Cache.acquired c 100;
  ignore (Cache.lookup_or_add c ~kind:Read ~loc:1);
  (* Conflict-replace loc 1 by loc 2 while the lock list still records
     the (entry, stamp) pair for loc 1. *)
  ignore (Cache.lookup_or_add c ~kind:Read ~loc:2);
  ignore (Cache.lookup_or_add c ~kind:Read ~loc:1);
  (* Now the entry holds loc 1 again with a fresh stamp; both stale pairs
     for the same physical entry are on lock 100's list. *)
  Cache.released c 100;
  Alcotest.(check bool) "entry evicted exactly once, no resurrection" false
    (Cache.lookup_or_add c ~kind:Read ~loc:1)

let test_evict_loc () =
  let c = Cache.create ~size:8 () in
  ignore (Cache.lookup_or_add c ~kind:Read ~loc:5);
  ignore (Cache.lookup_or_add c ~kind:Write ~loc:5);
  Cache.evict_loc c 5;
  Alcotest.(check bool) "read evicted" false (Cache.lookup_or_add c ~kind:Read ~loc:5);
  Alcotest.(check bool) "write evicted" false (Cache.lookup_or_add c ~kind:Write ~loc:5)

let test_clear () =
  let c = Cache.create ~size:8 () in
  ignore (Cache.lookup_or_add c ~kind:Read ~loc:5);
  Cache.clear c;
  Alcotest.(check bool) "cleared" false (Cache.lookup_or_add c ~kind:Read ~loc:5)

let test_bad_size_rejected () =
  Alcotest.check_raises "non power of two"
    (Invalid_argument "Cache.create: size must be a positive power of two")
    (fun () -> ignore (Cache.create ~size:3 ()))

(* ------------------------------------------------------------------ *)
(* Random well-nested multithreaded traces.  Each thread runs a random
   sequence of operations with properly nested synchronized regions; a
   random interleaving is generated, and the resulting event stream is
   fed to detectors with and without the cache. *)

type op = Acq of int | Rel of int | Acc of int * kind

let gen_thread_ops =
  (* A balanced sequence over a small lock/location universe. *)
  QCheck.Gen.(
    let rec gen_block depth fuel =
      if fuel <= 0 then return []
      else
        frequency
          [
            ( 4,
              int_bound 3 >>= fun loc ->
              bool >>= fun w ->
              gen_block depth (fuel - 1) >|= fun rest ->
              Acc (loc, if w then Write else Read) :: rest );
            ( 2,
              if depth >= 3 then
                int_bound 3 >>= fun loc ->
                bool >>= fun w ->
                gen_block depth (fuel - 1) >|= fun rest ->
                Acc (loc, if w then Write else Read) :: rest
              else
                int_range 100 102 >>= fun l ->
                gen_block (depth + 1) (fuel / 2) >>= fun body ->
                gen_block depth (fuel - 1) >|= fun rest ->
                (Acq l :: body) @ (Rel l :: rest) );
          ]
    in
    gen_block 0 12)

let gen_schedule =
  QCheck.Gen.(
    list_repeat 3 gen_thread_ops >>= fun threads ->
    (* Random fair interleaving: repeatedly pick a non-empty thread. *)
    let rec interleave acc threads st =
      let nonempty =
        List.filteri (fun _ ops -> ops <> []) threads |> List.length
      in
      if nonempty = 0 then List.rev acc
      else
        let idx = Random.State.int st (List.length threads) in
        match List.nth threads idx with
        | [] -> interleave acc threads st
        | op :: rest ->
            let threads =
              List.mapi (fun i ops -> if i = idx then rest else ops) threads
            in
            interleave ((idx, op) :: acc) threads st
    in
    fun st -> interleave [] threads st)

let arb_schedule =
  let print sched =
    String.concat ";"
      (List.map
         (function
           | t, Acq l -> Printf.sprintf "T%d:acq%d" t l
           | t, Rel l -> Printf.sprintf "T%d:rel%d" t l
           | t, Acc (m, Read) -> Printf.sprintf "T%d:R%d" t m
           | t, Acc (m, Write) -> Printf.sprintf "T%d:W%d" t m)
         sched)
  in
  QCheck.make ~print gen_schedule

(* Run a schedule through a detector configuration.  The generator may
   produce nested acquisitions of the same lock; like the VM, the
   harness tracks reentrancy and only reports outermost transitions to
   the detector (the documented contract). *)
let run_schedule config sched =
  let coll = Report.collector () in
  let d = Detector.create ~config coll in
  let stacks = Hashtbl.create 8 in
  let counts = Hashtbl.create 8 in
  let stack_of t = Option.value (Hashtbl.find_opt stacks t) ~default:[] in
  let count_of t l = Option.value (Hashtbl.find_opt counts (t, l)) ~default:0 in
  List.iter
    (fun (t, op) ->
      match op with
      | Acq l ->
          Hashtbl.replace stacks t (l :: stack_of t);
          let c = count_of t l in
          Hashtbl.replace counts (t, l) (c + 1);
          if c = 0 then Detector.on_acquire d ~thread:t ~lock:l
      | Rel l ->
          (match stack_of t with
          | l' :: rest when l' = l -> Hashtbl.replace stacks t rest
          | _ -> Alcotest.fail "generator produced non-LIFO schedule");
          let c = count_of t l in
          Hashtbl.replace counts (t, l) (c - 1);
          if c = 1 then Detector.on_release d ~thread:t ~lock:l
      | Acc (loc, kind) ->
          let locks =
            List.filter (fun l -> count_of t l > 0) [ 100; 101; 102 ]
          in
          Detector.on_access d
            (make ~loc ~thread:t ~locks:(Lockset.of_list locks) ~kind ~site:0))
    sched;
  List.sort compare (Report.racy_locs coll)

(* Ground truth: quadratic IsRace over the event sequence the schedule
   induces. *)
let oracle_racy_locs sched =
  let counts = Hashtbl.create 8 in
  let count_of t l = Option.value (Hashtbl.find_opt counts (t, l)) ~default:0 in
  let events = ref [] in
  List.iter
    (fun (t, op) ->
      match op with
      | Acq l -> Hashtbl.replace counts (t, l) (count_of t l + 1)
      | Rel l -> Hashtbl.replace counts (t, l) (count_of t l - 1)
      | Acc (loc, kind) ->
          let locks =
            List.filter (fun l -> count_of t l > 0) [ 100; 101; 102 ]
          in
          events :=
            make ~loc ~thread:t ~locks:(Lockset.of_list locks) ~kind ~site:0
            :: !events)
    sched;
  let events = Array.of_list (List.rev !events) in
  let racy = Hashtbl.create 8 in
  Array.iteri
    (fun i ei ->
      Array.iteri
        (fun j ej ->
          if i < j && is_race ei ej then Hashtbl.replace racy ei.loc ())
        events)
    events;
  Hashtbl.fold (fun l () acc -> l :: acc) racy [] |> List.sort compare

let subset a b = List.for_all (fun x -> List.mem x b) a

(* The provable relationships (exact equality is NOT a theorem: the
   no-cache run can report t_bot artifacts — spurious races manufactured
   by node merging — that the cache happens to mask):
   - completeness: every truly racy location is reported, with and
     without the cache (ownership off);
   - monotonicity: enabling the cache never adds reports. *)
let prop_cache_sound_and_monotone =
  QCheck.Test.make ~count:500
    ~name:"cache: complete w.r.t. oracle and never adds reports" arb_schedule
    (fun sched ->
      let base =
        {
          Detector.default_config with
          Detector.use_cache = false;
          use_ownership = false;
        }
      in
      let nocache = run_schedule base sched in
      let cache = run_schedule { base with Detector.use_cache = true } sched in
      let tiny =
        run_schedule { base with Detector.use_cache = true; cache_size = 2 } sched
      in
      let oracle = oracle_racy_locs sched in
      subset oracle cache && subset oracle tiny && subset oracle nocache
      && subset cache nocache && subset tiny nocache)

let prop_cache_with_ownership_monotone =
  QCheck.Test.make ~count:500
    ~name:"cache with ownership: never adds reports" arb_schedule (fun sched ->
      let base =
        {
          Detector.default_config with
          Detector.use_cache = false;
          use_ownership = true;
        }
      in
      let nocache = run_schedule base sched in
      let cache = run_schedule { base with Detector.use_cache = true } sched in
      subset cache nocache)

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_cache_sound_and_monotone; prop_cache_with_ownership_monotone ]

let suite =
  [
    Alcotest.test_case "hit after miss" `Quick test_hit_after_miss;
    Alcotest.test_case "eviction on release" `Quick test_eviction_on_release;
    Alcotest.test_case "nested LIFO eviction" `Quick test_nested_locks_lifo;
    Alcotest.test_case "release unheld graceful" `Quick test_release_without_acquire_graceful;
    Alcotest.test_case "non-LIFO release conservative" `Quick test_non_lifo_release_conservative;
    Alcotest.test_case "conflict replacement" `Quick test_conflict_replacement_not_double_evicted;
    Alcotest.test_case "stale list pairs" `Quick test_stale_list_pair_ignored;
    Alcotest.test_case "evict_loc" `Quick test_evict_loc;
    Alcotest.test_case "clear" `Quick test_clear;
    Alcotest.test_case "bad size" `Quick test_bad_size_rejected;
  ]
  @ qsuite
