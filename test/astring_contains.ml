(* Tiny substring helper shared by test modules. *)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  if nn = 0 then true
  else
    let rec go i =
      i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1))
    in
    go 0

(* Replace the first occurrence of [sub] with [by] (identity when [sub]
   does not occur).  Enough for rewriting wire lines in version-compat
   tests. *)
let replace ~sub ~by s =
  let ns = String.length s and nsub = String.length sub in
  if nsub = 0 then s
  else
    let rec find i =
      if i + nsub > ns then None
      else if String.sub s i nsub = sub then Some i
      else find (i + 1)
    in
    match find 0 with
    | None -> s
    | Some i ->
        String.sub s 0 i ^ by ^ String.sub s (i + nsub) (ns - i - nsub)
