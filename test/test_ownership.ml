(* Tests for the ownership model (paper Sections 2.3 and 7): the
   owned/shared state machine, the initialize-then-hand-off idiom it is
   designed to silence, and the join pseudo-lock machinery. *)

open Drd_core
open Event

let test_state_machine () =
  let o = Ownership.create () in
  Alcotest.(check bool) "first access owned" true
    (Ownership.check o ~thread:1 ~loc:7 = Ownership.Owned_skip);
  Alcotest.(check (option int)) "owner recorded" (Some 1) (Ownership.owner o 7);
  Alcotest.(check bool) "owner re-access skipped" true
    (Ownership.check o ~thread:1 ~loc:7 = Ownership.Owned_skip);
  Alcotest.(check bool) "second thread shares" true
    (Ownership.check o ~thread:2 ~loc:7 = Ownership.Became_shared);
  Alcotest.(check bool) "now shared" true (Ownership.is_shared o 7);
  Alcotest.(check bool) "owner access forwarded once shared" true
    (Ownership.check o ~thread:1 ~loc:7 = Ownership.Already_shared);
  Alcotest.(check (option int)) "no owner once shared" None (Ownership.owner o 7);
  Alcotest.(check int) "one shared location" 1 (Ownership.shared_count o);
  Alcotest.(check int) "one tracked location" 1 (Ownership.tracked_count o)

(* The idiom of Section 2.3: a parent initializes data without locks and
   hands it to a child; with the ownership filter no race is reported,
   without it a spurious race appears. *)
let run_handoff ~use_ownership =
  let coll = Report.collector () in
  let d =
    Detector.create
      ~config:{ Detector.default_config with use_ownership }
      coll
  in
  let locks = Lockset.empty in
  (* Parent (T0) initializes locations 1 and 2. *)
  Detector.on_access d (make ~loc:1 ~thread:0 ~locks ~kind:Write ~site:1);
  Detector.on_access d (make ~loc:2 ~thread:0 ~locks ~kind:Write ~site:2);
  (* Child (T1) processes them, unsynchronized but after start. *)
  Detector.on_access d (make ~loc:1 ~thread:1 ~locks ~kind:Read ~site:3);
  Detector.on_access d (make ~loc:2 ~thread:1 ~locks ~kind:Write ~site:4);
  Report.count coll

let test_handoff_idiom () =
  Alcotest.(check int) "ownership filters the hand-off" 0
    (run_handoff ~use_ownership:true);
  Alcotest.(check int) "NoOwnership reports both locations" 2
    (run_handoff ~use_ownership:false)

(* Ownership delays but does not hide true races: after the hand-off, if
   the parent keeps writing concurrently with the child, a race is
   reported even with the filter on. *)
let test_true_race_survives_ownership () =
  let coll = Report.collector () in
  let d = Detector.create ~config:Detector.default_config coll in
  let locks = Lockset.empty in
  Detector.on_access d (make ~loc:1 ~thread:0 ~locks ~kind:Write ~site:1);
  Detector.on_access d (make ~loc:1 ~thread:1 ~locks ~kind:Read ~site:2);
  Detector.on_access d (make ~loc:1 ~thread:0 ~locks ~kind:Write ~site:3);
  Alcotest.(check int) "race reported" 1 (Report.count coll)

(* Join pseudo-locks: child writes under its dummy lock S_c (plus a real
   lock); after joining, the parent reads holding S_c — the locksets
   intersect, so no race.  Without the join edge the race is flagged. *)
let run_join ~with_join =
  let coll = Report.collector () in
  let d =
    Detector.create
      ~config:{ Detector.default_config with use_ownership = false }
      coll
  in
  let pl = Pseudo_lock.create () in
  Pseudo_lock.on_thread_start pl 0 1001;
  Pseudo_lock.on_thread_start pl 1 1002;
  (* Child T1 writes loc 5 with no real locks. *)
  Detector.on_access d
    (make_interned ~loc:5 ~thread:1 ~locks:(Pseudo_lock.locks_of pl 1)
       ~kind:Write ~site:1);
  if with_join then Pseudo_lock.on_join pl ~joiner:0 ~joinee:1;
  (* Parent reads loc 5 after the join. *)
  Detector.on_access d
    (make_interned ~loc:5 ~thread:0 ~locks:(Pseudo_lock.locks_of pl 0)
       ~kind:Read ~site:2);
  Report.count coll

let test_join_pseudo_locks () =
  Alcotest.(check int) "join orders accesses" 0 (run_join ~with_join:true);
  Alcotest.(check int) "no join, race" 1 (run_join ~with_join:false)

(* The mtrt idiom of Section 8.3: two children access statistics under a
   common lock; the parent accesses them after joining both, with no
   lock.  The locksets {S1,sync}, {S2,sync}, {S1,S2} are mutually
   intersecting, so our definition reports no race even though no single
   common lock protects the location. *)
let test_mtrt_join_idiom () =
  let coll = Report.collector () in
  let d =
    Detector.create
      ~config:{ Detector.default_config with use_ownership = false }
      coll
  in
  let pl = Pseudo_lock.create () in
  List.iter (fun tid -> Pseudo_lock.on_thread_start pl tid (1001 + tid)) [ 0; 1; 2 ];
  let sync = 500 in
  let child t =
    Detector.on_access d
      (make_interned ~loc:9 ~thread:t
         ~locks:(Lockset_id.add sync (Pseudo_lock.locks_of pl t))
         ~kind:Write ~site:t)
  in
  child 1;
  child 2;
  Pseudo_lock.on_join pl ~joiner:0 ~joinee:1;
  Pseudo_lock.on_join pl ~joiner:0 ~joinee:2;
  Detector.on_access d
    (make_interned ~loc:9 ~thread:0 ~locks:(Pseudo_lock.locks_of pl 0)
       ~kind:Read ~site:0);
  Alcotest.(check int) "mutually intersecting locksets: no race" 0
    (Report.count coll)

let test_dummy_of () =
  let pl = Pseudo_lock.create () in
  Alcotest.(check (option int)) "unregistered" None (Pseudo_lock.dummy_of pl 3);
  Pseudo_lock.on_thread_start pl 3 1;
  Alcotest.(check (option int)) "registered" (Some 1) (Pseudo_lock.dummy_of pl 3);
  Pseudo_lock.on_join pl ~joiner:9 ~joinee:3;
  Alcotest.(check (list int)) "joiner holds S_3" [ 1 ]
    (Lockset_id.to_sorted_list (Pseudo_lock.locks_of pl 9));
  (* Joining an unregistered thread is a no-op. *)
  Pseudo_lock.on_join pl ~joiner:9 ~joinee:77;
  Alcotest.(check (list int)) "unchanged" [ 1 ]
    (Lockset_id.to_sorted_list (Pseudo_lock.locks_of pl 9))

let suite =
  [
    Alcotest.test_case "state machine" `Quick test_state_machine;
    Alcotest.test_case "hand-off idiom" `Quick test_handoff_idiom;
    Alcotest.test_case "true race survives" `Quick test_true_race_survives_ownership;
    Alcotest.test_case "join pseudo-locks" `Quick test_join_pseudo_locks;
    Alcotest.test_case "mtrt join idiom" `Quick test_mtrt_join_idiom;
    Alcotest.test_case "dummy_of" `Quick test_dummy_of;
  ]
