(* End-to-end exit-code and stream-hygiene tests against the installed
   binary.  The contract (documented in racedet's man page): 0 success,
   2 malformed input data, 124 CLI misuse, 125 internal error — and
   under --json, stdout carries only machine-readable output while
   diagnostics go to stderr. *)

(* The binary is declared as a dune dep of the test, so it lives next
   to us in _build regardless of where the runner was started from. *)
let racedet =
  Filename.concat
    (Filename.dirname (Filename.dirname Sys.executable_name))
    "bin/racedet.exe"

let contains = Astring_contains.contains

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* Run [racedet args], feeding [stdin] if given; return exit code and
   captured stdout/stderr. *)
let run ?(stdin = "") args =
  let in_path = Filename.temp_file "drd_cli_in" ".txt" in
  let out_path = Filename.temp_file "drd_cli_out" ".txt" in
  let err_path = Filename.temp_file "drd_cli_err" ".txt" in
  write_file in_path stdin;
  let fd_in = Unix.openfile in_path [ Unix.O_RDONLY ] 0 in
  let fd_out =
    Unix.openfile out_path [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600
  in
  let fd_err =
    Unix.openfile err_path [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600
  in
  let pid =
    Unix.create_process racedet
      (Array.of_list (racedet :: args))
      fd_in fd_out fd_err
  in
  Unix.close fd_in;
  Unix.close fd_out;
  Unix.close fd_err;
  let _, status = Unix.waitpid [] pid in
  let code =
    match status with
    | Unix.WEXITED c -> c
    | Unix.WSIGNALED s -> Alcotest.failf "racedet killed by signal %d" s
    | Unix.WSTOPPED _ -> Alcotest.fail "racedet stopped"
  in
  let out = read_file out_path and err = read_file err_path in
  Sys.remove in_path;
  Sys.remove out_path;
  Sys.remove err_path;
  (code, out, err)

let good_log = "A 1 1 W 5\nA 1 2 R 6\nA 1 1 W 5\n"
let bad_log = "A 1 1 W 5\nA bogus line\n"

let with_log contents f =
  let path = Filename.temp_file "drd_cli_log" ".log" in
  write_file path contents;
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let test_detect_json_success () =
  with_log good_log (fun log ->
      let code, out, err = run [ "detect"; log; "--json" ] in
      Alcotest.(check int) "exit 0" 0 code;
      Alcotest.(check bool) "stdout is the JSON body" true
        (String.length out > 0 && out.[0] = '{');
      Alcotest.(check bool) "a race was found" true
        (contains out "\"races\":[{");
      Alcotest.(check string) "stderr silent on success" "" err)

let test_detect_malformed_is_exit_2 () =
  with_log bad_log (fun log ->
      let code, out, err = run [ "detect"; log; "--json" ] in
      Alcotest.(check int) "exit 2" 2 code;
      Alcotest.(check string) "no partial JSON on stdout" "" out;
      Alcotest.(check bool) "diagnostic on stderr" true
        (contains err "racedet:");
      Alcotest.(check bool) "diagnostic names the bad line" true
        (contains err "bogus"))

let test_cli_misuse_is_exit_124 () =
  (* A missing log file is caught by argument validation, not treated
     as a data error. *)
  let code, _, err = run [ "detect"; "/no/such/file.log"; "--json" ] in
  Alcotest.(check int) "missing file: exit 124" 124 code;
  Alcotest.(check bool) "usage diagnostic" true (String.length err > 0);
  let code, _, _ = run [ "frobnicate" ] in
  Alcotest.(check int) "unknown command: exit 124" 124 code;
  let code, _, _ = run [ "serve"; "--evict-high"; "2"; "--evict-low"; "5" ] in
  Alcotest.(check int) "inverted watermarks: exit 124" 124 code;
  let code, _, _ = run [ "serve"; "--evict-low"; "3" ] in
  Alcotest.(check int) "low without high: exit 124" 124 code;
  let code, _, err = run [ "run"; "-b"; "figure2"; "--detector"; "nosuch" ] in
  Alcotest.(check int) "unknown detector: exit 124" 124 code;
  Alcotest.(check bool) "diagnostic lists the registry" true
    (contains err "paper");
  let code, _, _ = run [ "arena"; "-n"; "1"; "--fail-on-miss"; "bogus" ] in
  Alcotest.(check int) "unknown --fail-on-miss detector: exit 124" 124 code

let test_compile_error_is_exit_124 () =
  (* A program that fails to compile is command-line misuse — the user
     pointed the tool at bad source — never a data error (2), an
     internal crash (125), or a silent per-run failure row.  The
     campaign compiles up-front, so the multi-domain pool must not
     start at all: the diagnostic appears exactly once, not once per
     worker. *)
  let bad_source = "class Bad { int x\n" in
  let with_source f =
    let path = Filename.temp_file "drd_cli_src" ".java" in
    write_file path bad_source;
    Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)
  in
  with_source (fun src ->
      let code, out, err = run [ "run"; src ] in
      Alcotest.(check int) "run: exit 124" 124 code;
      Alcotest.(check string) "run: stdout clean" "" out;
      Alcotest.(check bool) "run: diagnostic names the parse error" true
        (contains err "parse error");
      let code, out, err =
        run [ "explore"; src; "-n"; "8"; "-w"; "2"; "--json" ]
      in
      Alcotest.(check int) "explore -w 2: exit 124" 124 code;
      Alcotest.(check string) "explore: no partial JSON on stdout" "" out;
      Alcotest.(check bool) "explore: diagnostic names the parse error" true
        (contains err "parse error");
      let occurrences needle hay =
        let n = String.length needle in
        let count = ref 0 in
        for i = 0 to String.length hay - n do
          if String.sub hay i n = needle then incr count
        done;
        !count
      in
      Alcotest.(check int) "explore: diagnostic appears exactly once" 1
        (occurrences "parse error" err))

let test_explore_batch_flag () =
  (* --batch is a hand-off granularity knob, never an output knob: any
     batch size gives byte-identical JSON (timing suppressed), and a
     nonsensical one is CLI misuse. *)
  let args batch =
    [
      "explore"; "-b"; "needle"; "-n"; "12"; "-w"; "3"; "--batch"; batch;
      "--no-timing"; "--json";
    ]
  in
  let code1, out1, _ = run (args "1") in
  let code2, out2, _ = run (args "5") in
  Alcotest.(check int) "batch 1 exit 0" 0 code1;
  Alcotest.(check int) "batch 5 exit 0" 0 code2;
  Alcotest.(check string) "batch size never reaches the report" out1 out2;
  let code, _, _ = run (args "0") in
  Alcotest.(check int) "--batch 0 is exit 124" 124 code

let test_run_detector_flag () =
  let code, out, _ =
    run [ "run"; "-b"; "figure2"; "--detector"; "eraser" ]
  in
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check bool) "baseline row selected by name" true
    (contains out "Dataraces reported by Eraser");
  (* The alias goes through the same registry row. *)
  let code, out_alias, _ =
    run [ "run"; "-b"; "figure2"; "--detector"; "hb" ]
  in
  Alcotest.(check int) "alias exit 0" 0 code;
  Alcotest.(check bool) "hb alias selects HappensBefore" true
    (contains out_alias "Dataraces reported by HappensBefore")

let test_arena_json_deterministic () =
  let args = [ "arena"; "-n"; "12"; "--seed"; "7"; "--json" ] in
  let code1, out1, err1 = run args in
  let code2, out2, _ = run args in
  Alcotest.(check int) "exit 0" 0 code1;
  Alcotest.(check int) "exit 0 again" 0 code2;
  Alcotest.(check string) "stderr silent" "" err1;
  Alcotest.(check bool) "stdout is the JSON report" true
    (String.length out1 > 0 && out1.[0] = '{');
  Alcotest.(check string) "byte-identical across invocations" out1 out2

let test_serve_stdin_matches_detect () =
  with_log good_log (fun log ->
      let code, detect_out, _ = run [ "detect"; log; "--json" ] in
      Alcotest.(check int) "detect exit 0" 0 code;
      let body = String.trim detect_out in
      let code, serve_out, _ = run ~stdin:good_log [ "serve" ] in
      Alcotest.(check int) "serve exit 0" 0 code;
      let lines = String.split_on_char '\n' (String.trim serve_out) in
      let report =
        match List.rev lines with
        | last :: _ -> last
        | [] -> Alcotest.fail "serve produced no frames"
      in
      Alcotest.(check bool) "final frame is the report" true
        (contains report "\"t\":\"report\"");
      Alcotest.(check bool)
        "report body is byte-identical to the one-shot replay" true
        (contains report body);
      (* The race was also streamed incrementally, before the report. *)
      Alcotest.(check bool) "incremental race frame" true
        (List.exists (fun l -> contains l "\"t\":\"race\"") lines))

let test_serve_stdin_malformed_is_exit_2 () =
  let code, out, err = run ~stdin:bad_log [ "serve" ] in
  Alcotest.(check int) "exit 2" 2 code;
  Alcotest.(check bool) "client saw an error frame" true
    (contains out "\"t\":\"error\"");
  Alcotest.(check bool) "diagnostic on stderr" true (contains err "racedet:")

let suite =
  [
    Alcotest.test_case "detect --json: clean stdout, exit 0" `Quick (fun () ->
        test_detect_json_success ());
    Alcotest.test_case "malformed log data is exit 2" `Quick (fun () ->
        test_detect_malformed_is_exit_2 ());
    Alcotest.test_case "CLI misuse is exit 124" `Quick (fun () ->
        test_cli_misuse_is_exit_124 ());
    Alcotest.test_case "serve over stdin matches one-shot detect" `Quick
      (fun () -> test_serve_stdin_matches_detect ());
    Alcotest.test_case "serve rejects malformed payload with exit 2" `Quick
      (fun () -> test_serve_stdin_malformed_is_exit_2 ());
    Alcotest.test_case "compile failure is exit 124, campaign-fatal" `Quick
      (fun () -> test_compile_error_is_exit_124 ());
    Alcotest.test_case "explore --batch: invariant and validated" `Quick
      (fun () -> test_explore_batch_flag ());
    Alcotest.test_case "run --detector selects registry rows" `Quick
      (fun () -> test_run_detector_flag ());
    Alcotest.test_case "arena --json is byte-deterministic" `Quick (fun () ->
        test_arena_json_deterministic ());
  ]
