(* The serve daemon: protocol framing, session semantics (byte-identity
   with the one-shot replay, incremental race frames, streaming obs
   merge), the stdin transport and a Unix-socket smoke test. *)

module H = Drd_harness
module E = Drd_explore
module S = Drd_serve
module W = Drd_explore.Wire
open Drd_core

let contains = Astring_contains.contains

(* ---- protocol framing ---- *)

let test_classify () =
  let payload l =
    match S.Protocol.classify_line l with
    | Ok S.Protocol.Payload -> ()
    | Ok (S.Protocol.Control _) -> Alcotest.fail (l ^ ": classified control")
    | Error m -> Alcotest.fail (l ^ ": " ^ m)
  in
  (* Event-log lines and blank lines are payload without JSON parsing. *)
  payload "A 1 2 W 3 4";
  payload "L 1 5";
  payload "";
  (* Observation wire lines are JSON payload. *)
  payload "{\"v\":2,\"t\":\"run\",\"index\":0}";
  payload "{\"v\":2,\"t\":\"spec\"}";
  payload "{\"v\":2,\"t\":\"failure\"}";
  (* Control frames round-trip through their encoder. *)
  List.iter
    (fun c ->
      match S.Protocol.classify_line (S.Protocol.control_to_line c) with
      | Ok (S.Protocol.Control c') when c = c' -> ()
      | Ok (S.Protocol.Control _) -> Alcotest.fail "control decoded differently"
      | Ok S.Protocol.Payload -> Alcotest.fail "control classified as payload"
      | Error m -> Alcotest.fail m)
    [
      S.Protocol.Hello
        { c_session = "s1"; c_kind = S.Protocol.Events; c_config = "Full" };
      S.Protocol.Hello
        { c_session = ""; c_kind = S.Protocol.Obs; c_config = "" };
      S.Protocol.Stats_req;
      S.Protocol.Close;
      S.Protocol.Shutdown;
    ];
  let err l =
    match S.Protocol.classify_line l with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail (l ^ ": should be rejected")
  in
  err "{not json";
  err "{\"v\":1,\"t\":\"frobnicate\"}";
  err "{\"v\":99,\"t\":\"hello\"}";
  (* future protocol version *)
  err "{\"t\":\"hello\"}" (* control without a version *)

(* ---- events sessions ---- *)

let feed_ok s line =
  match S.Session.feed_line s line with
  | Ok frames -> frames
  | Error m -> Alcotest.fail ("feed: " ^ m)

let log_lines log =
  let acc = ref [] in
  Event_log.iter (fun e -> acc := Event_log.entry_to_line e :: !acc) log;
  List.rev !acc

let test_session_byte_identity () =
  let compiled =
    H.Pipeline.compile H.Config.full ~source:(H.Programs.figure2 ())
  in
  let log, _ = H.Pipeline.record_log compiled in
  let coll, stats = H.Pipeline.detect_post_mortem H.Config.full log in
  let expected =
    S.Protocol.events_report_body ~races:(Report.races coll) ~stats
      ~evictions:0
  in
  let run ~eviction =
    let s =
      S.Session.create ~id:"t" ~kind:S.Protocol.Events ~config:H.Config.full
        ~eviction ()
    in
    List.iter (fun l -> ignore (feed_ok s l)) (log_lines log);
    match S.Session.close s with
    | Ok body -> body
    | Error m -> Alcotest.fail ("close: " ^ m)
  in
  Alcotest.(check string) "no eviction: identical to one-shot" expected
    (run ~eviction:None);
  (* An eviction policy whose watermark is never reached must not
     perturb a single byte either. *)
  Alcotest.(check string) "idle eviction policy: still identical" expected
    (run ~eviction:(Some (Detector.eviction ~high:100_000 ())))

let test_incremental_race_frames () =
  let s =
    S.Session.create ~id:"inc" ~kind:S.Protocol.Events ~config:H.Config.full
      ~eviction:None ()
  in
  Alcotest.(check (list string)) "owned write: quiet" [] (feed_ok s "A 1 1 W 5");
  Alcotest.(check (list string)) "sharing read: quiet" [] (feed_ok s "A 1 2 R 6");
  (match feed_ok s "A 1 1 W 5" with
  | [ frame ] ->
      Alcotest.(check bool) "race frame" true (contains frame "\"t\":\"race\"");
      Alcotest.(check bool) "session id" true (contains frame "\"session\":\"inc\"");
      Alcotest.(check bool) "seq 0" true (contains frame "\"seq\":0")
  | frames ->
      Alcotest.failf "expected exactly one race frame, got %d"
        (List.length frames));
  (* The same location racing again is deduped, like the collector. *)
  Alcotest.(check (list string)) "dedup per location" []
    (feed_ok s "A 1 2 W 6");
  Alcotest.(check int) "one distinct race" 1 (S.Session.races s);
  Alcotest.(check int) "events counted" 4 (S.Session.events s)

let test_session_feed_errors () =
  let s =
    S.Session.create ~id:"bad" ~kind:S.Protocol.Events ~config:H.Config.full
      ~eviction:None ()
  in
  (match S.Session.feed_line s "A nope" with
  | Error m ->
      Alcotest.(check bool) "names the line" true (contains m "A nope")
  | Ok _ -> Alcotest.fail "malformed entry accepted")

(* ---- obs sessions: a streaming merge ---- *)

let needle_campaign () =
  let b = Option.get (H.Programs.find "needle") in
  let sp =
    E.Explore.spec ~strategy:(E.Strategy.Pct 3)
      ~budget:(E.Explore.runs_budget 6) H.Config.full
  in
  let r = E.Explore.run_campaign sp ~source:b.H.Programs.b_source in
  (sp, r)

let test_obs_session_matches_merge () =
  let sp, r = needle_campaign () in
  let rows = E.Explore.rows_of_report r in
  let expected =
    E.Explore.report_json ~timing:false (E.Explore.merge sp rows)
  in
  let s =
    S.Session.create ~id:"obs" ~kind:S.Protocol.Obs ~config:H.Config.full
      ~eviction:None ()
  in
  ignore (feed_ok s (E.Explore.spec_to_json ~target:"-b needle" sp));
  List.iter (fun row -> ignore (feed_ok s (E.Explore.row_to_json row))) rows;
  (match S.Session.close s with
  | Ok body ->
      Alcotest.(check string) "streamed fold = racedet merge" expected body
  | Error m -> Alcotest.fail ("close: " ^ m));
  ()

let test_obs_session_errors () =
  (* Closing before the header is refused. *)
  let s =
    S.Session.create ~id:"o1" ~kind:S.Protocol.Obs ~config:H.Config.full
      ~eviction:None ()
  in
  (match S.Session.close s with
  | Error m -> Alcotest.(check bool) "names the header" true (contains m "header")
  | Ok _ -> Alcotest.fail "headerless close accepted");
  (* A truncated stream under a purely runs-based budget is refused,
     like racedet merge. *)
  let sp, r = needle_campaign () in
  let rows = E.Explore.rows_of_report r in
  let s =
    S.Session.create ~id:"o2" ~kind:S.Protocol.Obs ~config:H.Config.full
      ~eviction:None ()
  in
  ignore (feed_ok s (E.Explore.spec_to_json sp));
  (match rows with
  | row :: _ -> ignore (feed_ok s (E.Explore.row_to_json row))
  | [] -> Alcotest.fail "campaign produced no rows");
  match S.Session.close s with
  | Error m -> Alcotest.(check bool) "truncation refused" true (contains m "missing")
  | Ok _ -> Alcotest.fail "truncated obs stream folded"

(* ---- the stdin/stdout transport ---- *)

let serve_string conf input =
  let in_path = Filename.temp_file "drd_serve_in" ".txt" in
  let out_path = Filename.temp_file "drd_serve_out" ".txt" in
  let oc = open_out in_path in
  output_string oc input;
  close_out oc;
  let ic = open_in in_path and oc = open_out out_path in
  let r = S.Server.serve_channels conf ic oc in
  close_in ic;
  close_out oc;
  let ic = open_in out_path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove in_path;
  Sys.remove out_path;
  (r, List.rev !lines)

let default_conf =
  {
    S.Server.sv_config = H.Config.full;
    sv_eviction = None;
    sv_stats_every = 0.;
  }

let test_serve_channels_implicit_session () =
  let compiled =
    H.Pipeline.compile H.Config.full ~source:(H.Programs.figure2 ())
  in
  let log, _ = H.Pipeline.record_log compiled in
  let input = String.concat "\n" (log_lines log) ^ "\n" in
  let r, out = serve_string default_conf input in
  Alcotest.(check bool) "clean exit" true (r = Ok ());
  match List.rev out with
  | last :: _ ->
      Alcotest.(check bool) "final frame is the report" true
        (contains last "\"t\":\"report\"");
      Alcotest.(check bool) "implicit session is 'default'" true
        (contains last "\"session\":\"default\"")
  | [] -> Alcotest.fail "no output frames"

let test_serve_channels_framed_sessions () =
  (* Two sequential sessions on one connection; stats in between. *)
  let hello id =
    S.Protocol.control_to_line
      (S.Protocol.Hello
         { c_session = id; c_kind = S.Protocol.Events; c_config = "" })
  in
  let close = S.Protocol.control_to_line S.Protocol.Close in
  let stats = S.Protocol.control_to_line S.Protocol.Stats_req in
  let input =
    String.concat "\n"
      [
        hello "one"; "A 1 1 W 0"; stats; close;
        hello "two"; "A 2 1 W 0"; close;
      ]
    ^ "\n"
  in
  let r, out = serve_string default_conf input in
  Alcotest.(check bool) "clean exit" true (r = Ok ());
  let count p = List.length (List.filter (fun l -> contains l p) out) in
  Alcotest.(check int) "two hello acks" 2 (count "\"t\":\"hello\"");
  Alcotest.(check int) "one stats frame" 1 (count "\"t\":\"stats\"");
  Alcotest.(check int) "two reports" 2 (count "\"t\":\"report\"");
  Alcotest.(check bool) "sessions named" true
    (count "\"session\":\"one\"" >= 1 && count "\"session\":\"two\"" >= 1)

let test_serve_channels_errors () =
  (* Malformed payload: error frame, Error result (exit code 2 at the
     CLI). *)
  let r, out = serve_string default_conf "A bogus line\n" in
  (match r with
  | Error m -> Alcotest.(check bool) "error names the tag" true (contains m "bogus")
  | Ok () -> Alcotest.fail "malformed payload accepted");
  Alcotest.(check bool) "error frame emitted" true
    (List.exists (fun l -> contains l "\"t\":\"error\"") out);
  (* Unknown config in hello. *)
  let hello =
    S.Protocol.control_to_line
      (S.Protocol.Hello
         { c_session = "x"; c_kind = S.Protocol.Events; c_config = "NoSuch" })
  in
  let r, _ = serve_string default_conf (hello ^ "\n") in
  (match r with
  | Error m -> Alcotest.(check bool) "unknown config refused" true (contains m "NoSuch")
  | Ok () -> Alcotest.fail "unknown config accepted");
  (* Double hello. *)
  let h =
    S.Protocol.control_to_line
      (S.Protocol.Hello
         { c_session = "x"; c_kind = S.Protocol.Events; c_config = "" })
  in
  let r, _ = serve_string default_conf (h ^ "\n" ^ h ^ "\n") in
  match r with
  | Error m -> Alcotest.(check bool) "double hello refused" true (contains m "already open")
  | Ok () -> Alcotest.fail "double hello accepted"

(* ---- Unix-socket transport smoke ---- *)

let test_socket_smoke () =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "drd-serve-test-%d.sock" (Unix.getpid ()))
  in
  let conf = { default_conf with S.Server.sv_eviction = None } in
  let ready = Atomic.make false in
  let server =
    Domain.spawn (fun () ->
        S.Server.serve_socket conf ~path
          ~ready:(fun () -> Atomic.set ready true)
          ())
  in
  while not (Atomic.get ready) do
    Domain.cpu_relax ()
  done;
  let connect () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_UNIX path);
    (Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd)
  in
  let session_report id =
    let ic, oc = connect () in
    output_string oc
      (S.Protocol.control_to_line
         (S.Protocol.Hello
            { c_session = id; c_kind = S.Protocol.Events; c_config = "" }));
    output_char oc '\n';
    output_string oc "A 1 1 W 0\nA 1 2 R 0\nA 1 1 W 0\n";
    output_string oc (S.Protocol.control_to_line S.Protocol.Close);
    output_char oc '\n';
    flush oc;
    let rec find_report () =
      let l = input_line ic in
      if contains l "\"t\":\"report\"" then l else find_report ()
    in
    let report = find_report () in
    close_out oc;
    report
  in
  (* Two client connections, each with its own session and race. *)
  let r1 = session_report "a" and r2 = session_report "b" in
  Alcotest.(check bool) "session a reported" true (contains r1 "\"session\":\"a\"");
  Alcotest.(check bool) "session b reported" true (contains r2 "\"session\":\"b\"");
  Alcotest.(check bool) "a found its race" true (contains r1 "\"races\":[{");
  (* Shut the daemon down. *)
  let _, oc = connect () in
  output_string oc (S.Protocol.control_to_line S.Protocol.Shutdown);
  output_char oc '\n';
  flush oc;
  (match Domain.join server with
  | Ok () -> ()
  | Error m -> Alcotest.fail ("server: " ^ m));
  Alcotest.(check bool) "socket unlinked" false (Sys.file_exists path)

let suite =
  [
    Alcotest.test_case "protocol classify and round-trip" `Quick (fun () ->
        test_classify ());
    Alcotest.test_case "events session is byte-identical to one-shot" `Quick
      (fun () -> test_session_byte_identity ());
    Alcotest.test_case "incremental race frames" `Quick (fun () ->
        test_incremental_race_frames ());
    Alcotest.test_case "malformed payload is an error" `Quick (fun () ->
        test_session_feed_errors ());
    Alcotest.test_case "obs session equals racedet merge" `Quick (fun () ->
        test_obs_session_matches_merge ());
    Alcotest.test_case "obs session refusals" `Quick (fun () ->
        test_obs_session_errors ());
    Alcotest.test_case "stdin transport: implicit session" `Quick (fun () ->
        test_serve_channels_implicit_session ());
    Alcotest.test_case "stdin transport: framed sessions" `Quick (fun () ->
        test_serve_channels_framed_sessions ());
    Alcotest.test_case "stdin transport: input errors" `Quick (fun () ->
        test_serve_channels_errors ());
    Alcotest.test_case "unix socket smoke" `Quick (fun () ->
        test_socket_smoke ());
  ]
