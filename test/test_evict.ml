(* Quiescent-location eviction (serve mode): LRU retirement by
   last-access event count, watermark semantics, and the soundness
   invariant — eviction never changes the report for a location that is
   never evicted, and a policy whose watermark is never hit changes
   nothing at all. *)

open Drd_core

let interned locks = Lockset_id.of_list locks

let access d ~loc ?(thread = 1) ?(kind = Event.Write) ?(locks = []) () =
  Detector.on_access_interned d ~loc ~thread ~locks:(interned locks) ~kind
    ~site:0

let make_evicting ?(high = 4) ?(low = 2) () =
  let coll = Report.collector () in
  let d =
    Detector.create
      ~eviction:(Detector.eviction ~low ~track:true ~high ())
      coll
  in
  (d, coll)

let test_lru_retires_oldest () =
  let d, _ = make_evicting () in
  List.iter (fun loc -> access d ~loc ()) [ 1; 2; 3; 4 ];
  Alcotest.(check int) "at watermark, nothing evicted" 0 (Detector.evictions d);
  Alcotest.(check int) "four live" 4 (Detector.live_locations d);
  (* The fifth location crosses the high watermark: retire down to the
     low one, oldest first. *)
  access d ~loc:5 ();
  Alcotest.(check int) "down to low watermark" 2 (Detector.live_locations d);
  Alcotest.(check int) "three retired" 3 (Detector.evictions d);
  List.iter
    (fun loc ->
      Alcotest.(check bool)
        (Printf.sprintf "loc %d retired" loc)
        true (Detector.was_evicted d loc))
    [ 1; 2; 3 ];
  List.iter
    (fun loc ->
      Alcotest.(check bool)
        (Printf.sprintf "loc %d kept" loc)
        false (Detector.was_evicted d loc))
    [ 4; 5 ]

let test_touch_refreshes_recency () =
  let d, _ = make_evicting () in
  List.iter (fun loc -> access d ~loc ()) [ 1; 2; 3; 4 ];
  (* Re-access 1: now 2 is the oldest.  A cache hit still counts as a
     touch — a cache-hot location must never be quiescent. *)
  access d ~loc:1 ();
  access d ~loc:5 ();
  Alcotest.(check bool) "refreshed loc survives" false
    (Detector.was_evicted d 1);
  Alcotest.(check bool) "stale loc retired" true (Detector.was_evicted d 2);
  Alcotest.(check int) "down to low watermark" 2 (Detector.live_locations d)

let test_retired_location_reenters () =
  let d, coll = make_evicting () in
  (* Make location 1 racy-in-waiting: thread 1 writes under no lock. *)
  access d ~loc:1 ~thread:1 ();
  (* Second thread touches it (ownership transition), then it idles
     while churn retires it. *)
  access d ~loc:1 ~thread:2 ~kind:Event.Read ();
  List.iter (fun loc -> access d ~loc ()) [ 11; 12; 13; 14; 15 ];
  Alcotest.(check bool) "loc 1 retired" true (Detector.was_evicted d 1);
  (* Post-eviction accesses re-enter as brand new: the same two-thread
     conflict must rebuild from scratch (ownership restarts, so the
     first re-access is owned again) and still produce the race. *)
  Alcotest.(check int) "no race before re-entry" 0 (Report.count coll);
  access d ~loc:1 ~thread:1 ();
  (* owned again: skipped *)
  access d ~loc:1 ~thread:2 ~kind:Event.Read ();
  (* shares: stored *)
  access d ~loc:1 ~thread:1 ();
  (* conflicting write vs the stored read *)
  Alcotest.(check int) "race found after re-entry" 1 (Report.count coll)

let test_policy_validation () =
  let raises_invalid name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail (name ^ ": expected Invalid_argument")
  in
  raises_invalid "high must be positive" (fun () ->
      Detector.eviction ~high:0 ());
  raises_invalid "low below high" (fun () ->
      Detector.eviction ~low:4 ~high:4 ());
  raises_invalid "packed history cannot evict" (fun () ->
      Detector.create
        ~config:{ Detector.default_config with history = Detector.Packed }
        ~eviction:(Detector.eviction ~high:8 ())
        (Report.collector ()));
  (* was_evicted needs tracking. *)
  let d_untracked =
    Detector.create ~eviction:(Detector.eviction ~high:8 ()) (Report.collector ())
  in
  raises_invalid "untracked policy cannot answer was_evicted" (fun () ->
      Detector.was_evicted d_untracked 1);
  let d_plain = Detector.create (Report.collector ()) in
  Alcotest.(check bool) "no policy: nothing was evicted" false
    (Detector.was_evicted d_plain 1)

let test_ownership_forget () =
  let o = Ownership.create () in
  ignore (Ownership.check o ~thread:1 ~loc:7);
  ignore (Ownership.check o ~thread:2 ~loc:7);
  Alcotest.(check bool) "shared before forget" true (Ownership.is_shared o 7);
  Alcotest.(check int) "one shared" 1 (Ownership.shared_count o);
  Ownership.forget o 7;
  Alcotest.(check bool) "not shared after forget" false (Ownership.is_shared o 7);
  Alcotest.(check int) "shared count dropped" 0 (Ownership.shared_count o);
  Alcotest.(check int) "untracked after forget" 0 (Ownership.tracked_count o);
  (* Re-entry: first access owns again. *)
  (match Ownership.check o ~thread:2 ~loc:7 with
  | Ownership.Owned_skip -> ()
  | _ -> Alcotest.fail "re-entering access should re-own the location");
  Ownership.forget o 7 (* forgetting an owned (non-shared) loc is fine *)

(* ---- the soundness property, on random logs ---- *)

(* A random well-formed access stream over a small location space:
   enough collisions that races, ownership transitions, cache hits and
   (for the evicting replay) retirements all actually happen. *)
let gen_stream =
  let open QCheck.Gen in
  let entry =
    frequency
      [
        ( 10,
          map
            (fun (loc, thread, w, ls) ->
              `Access
                ( loc,
                  thread,
                  (if w then Event.Write else Event.Read),
                  List.filteri (fun i _ -> i < 2) ls ))
            (quad (int_range 0 24) (int_range 0 2) bool
               (list_size (int_range 0 2) (int_range 1 3))) );
        (1, map (fun t -> `Exit t) (int_range 0 2));
      ]
  in
  list_size (int_range 50 400) entry

let replay ?eviction stream =
  let coll = Report.collector () in
  let d = Detector.create ?eviction coll in
  List.iter
    (function
      | `Access (loc, thread, kind, locks) ->
          Detector.on_access_interned d ~loc ~thread
            ~locks:(Lockset_id.of_list locks)
            ~kind ~site:0
      | `Exit thread -> Detector.on_thread_exit d ~thread)
    stream;
  (d, coll)

(* Byte-level rendering of one race, so "identical report" really means
   identical bytes, not just equal racy-location sets. *)
let render_races coll ~keep =
  Report.races coll
  |> List.filter (fun (r : Report.race) -> keep r.Report.loc)
  |> List.map (fun r ->
         Drd_serve.Protocol.Wire.json_to_string
           (Drd_serve.Protocol.race_json r))
  |> String.concat "\n"

let prop_eviction_preserves_live_reports =
  QCheck.Test.make ~count:200
    ~name:"eviction preserves reports for never-evicted locations"
    (QCheck.make gen_stream) (fun stream ->
      let _, plain = replay stream in
      let d, evicting =
        replay
          ~eviction:(Detector.eviction ~low:4 ~track:true ~high:8 ())
          stream
      in
      let never_evicted loc = not (Detector.was_evicted d loc) in
      (* Two claims: every never-evicted location has byte-identical
         reports, and every racy location in the evicting replay that
         was never evicted is also racy in the plain one (no phantom
         races from eviction). *)
      render_races plain ~keep:never_evicted
      = render_races evicting ~keep:never_evicted)

let prop_unhit_watermark_changes_nothing =
  QCheck.Test.make ~count:100
    ~name:"a watermark that is never hit changes nothing"
    (QCheck.make gen_stream) (fun stream ->
      let d0, plain = replay stream in
      let d1, evicting =
        (* 25 locations exist at most; a high watermark of 64 never
           triggers. *)
        replay ~eviction:(Detector.eviction ~track:true ~high:64 ()) stream
      in
      Detector.evictions d1 = 0
      && Drd_serve.Protocol.events_report_body ~races:(Report.races plain)
           ~stats:(Detector.stats d0) ~evictions:0
         = Drd_serve.Protocol.events_report_body
             ~races:(Report.races evicting)
             ~stats:(Detector.stats d1) ~evictions:(Detector.evictions d1))

let suite =
  [
    Alcotest.test_case "LRU retires the oldest locations" `Quick (fun () ->
        test_lru_retires_oldest ());
    Alcotest.test_case "any access refreshes recency" `Quick (fun () ->
        test_touch_refreshes_recency ());
    Alcotest.test_case "retired locations re-enter as new" `Quick (fun () ->
        test_retired_location_reenters ());
    Alcotest.test_case "policy validation" `Quick (fun () ->
        test_policy_validation ());
    Alcotest.test_case "ownership forget drops all state" `Quick (fun () ->
        test_ownership_forget ());
    QCheck_alcotest.to_alcotest prop_eviction_preserves_live_reports;
    QCheck_alcotest.to_alcotest prop_unhit_watermark_changes_nothing;
  ]
