(* The schedule-exploration engine (lib/explore): a race the default
   deterministic schedule misses must be found by a PCT campaign, the
   printed reproduction recipe must actually reproduce it, and
   campaigns must be deterministic functions of their spec — including
   across worker counts. *)

module H = Drd_harness
module E = Drd_explore
module Explore = E.Explore
module Aggregate = E.Aggregate
module Strategy = E.Strategy

let needle_source = H.Programs.needle ()

let contains_sub sub s = Astring_contains.contains s sub

let pct_spec ?(workers = 1) ?(runs = 40) () =
  {
    (Explore.default_spec H.Config.full) with
    Explore.e_strategy = Strategy.Pct 3;
    e_workers = workers;
    e_budget = Explore.runs_budget runs;
    e_pct_horizon = 10_000;
  }

let test_default_schedule_misses () =
  let _, r = H.Pipeline.run_source H.Config.full needle_source in
  Alcotest.(check (list string)) "needle quiet under the default schedule" []
    r.H.Pipeline.racy_objects

let test_pct_campaign_finds () =
  let report = Explore.run_campaign (pct_spec ()) ~source:needle_source in
  Alcotest.(check (list string)) "no crashed runs" []
    (List.map (fun f -> f.Aggregate.f_error) report.Explore.r_failures);
  Alcotest.(check bool) "at least one deduped race" true
    (report.Explore.r_races <> []);
  let on_array =
    List.exists
      (fun d -> contains_sub "array" d.Aggregate.d_key.Aggregate.k_object)
      report.Explore.r_races
  in
  Alcotest.(check bool) "the G.data array race is reported" true on_array;
  (* The campaign explored genuinely different interleavings. *)
  Alcotest.(check bool) "several distinct fingerprints" true
    (report.Explore.r_stats.Aggregate.st_distinct_fingerprints > 1)

let test_repro_recipe_reproduces () =
  (* The first-seen spec attached to a deduped race must replay to a
     run that reports the same race. *)
  let report = Explore.run_campaign (pct_spec ()) ~source:needle_source in
  match report.Explore.r_races with
  | [] -> Alcotest.fail "campaign found nothing to reproduce"
  | d :: _ ->
      let spec =
        Strategy.spec (pct_spec ()).Explore.e_strategy ~base:H.Config.full
          ~pct_horizon:10_000 d.Aggregate.d_first_index
      in
      Alcotest.(check int) "recipe seed matches"
        d.Aggregate.d_first_seed spec.Strategy.sp_seed;
      let compiled = H.Pipeline.compile H.Config.full ~source:needle_source in
      let obs = Explore.observe_run compiled spec in
      let replayed_keys =
        List.map (fun s -> s.Aggregate.s_key) obs.Aggregate.o_sightings
      in
      Alcotest.(check bool) "replay reports the same race" true
        (List.mem d.Aggregate.d_key replayed_keys)

let strip_wall (r : Explore.report) =
  (* Everything but the timing fields. *)
  let races =
    List.map
      (fun d ->
        ( d.Aggregate.d_key.Aggregate.k_object,
          d.Aggregate.d_key.Aggregate.k_site_a,
          d.Aggregate.d_key.Aggregate.k_site_b,
          d.Aggregate.d_count,
          d.Aggregate.d_first_index,
          d.Aggregate.d_first_seed,
          d.Aggregate.d_first_repro ))
      r.Explore.r_races
  in
  let s = r.Explore.r_stats in
  ( races,
    r.Explore.r_objects,
    List.length r.Explore.r_failures,
    ( s.Aggregate.st_runs,
      s.Aggregate.st_distinct_races,
      s.Aggregate.st_distinct_fingerprints,
      s.Aggregate.st_events,
      s.Aggregate.st_steps,
      s.Aggregate.st_discovery ) )

let test_campaign_deterministic () =
  let a = Explore.run_campaign (pct_spec ()) ~source:needle_source in
  let b = Explore.run_campaign (pct_spec ()) ~source:needle_source in
  Alcotest.(check bool) "same spec, same report" true
    (strip_wall a = strip_wall b)

let test_campaign_worker_invariant () =
  (* Deduped reports, first-seen attribution and the discovery curve
     must not depend on how runs landed on workers. *)
  let one = Explore.run_campaign (pct_spec ~workers:1 ()) ~source:needle_source in
  let two = Explore.run_campaign (pct_spec ~workers:2 ()) ~source:needle_source in
  Alcotest.(check bool) "1 worker = 2 workers" true
    (strip_wall one = strip_wall two)

let test_jitter_contrast () =
  (* Quantum jitter shuffles slice lengths but keeps the round-robin
     structure, so it does NOT manufacture the mid-burst preemption the
     needle requires — evidence the PCT result above is the scheduler's
     doing, not luck. *)
  let spec =
    {
      (pct_spec ()) with
      Explore.e_strategy = Strategy.Jitter;
    }
  in
  let report = Explore.run_campaign spec ~source:needle_source in
  Alcotest.(check (list string)) "jitter finds nothing on needle" []
    (List.map
       (fun d -> d.Aggregate.d_key.Aggregate.k_object)
       report.Explore.r_races)

let test_crash_isolation () =
  (* A program that dies in some schedules must yield failure rows, not
     a campaign abort, and healthy runs still aggregate. *)
  let source =
    {|
    class T extends Thread {
      void run() { int x = 1 / 0; }
    }
    class Main {
      static void main() {
        T t = new T();
        t.start();
        t.join();
        print("ok", 1);
      }
    }
  |}
  in
  let spec =
    {
      (Explore.default_spec H.Config.full) with
      Explore.e_strategy = Strategy.Sweep;
      e_budget = Explore.runs_budget 4;
    }
  in
  let report = Explore.run_campaign spec ~source in
  Alcotest.(check int) "all runs failed" 4
    report.Explore.r_stats.Aggregate.st_failed;
  Alcotest.(check int) "failure rows recorded" 4
    (List.length report.Explore.r_failures);
  List.iter
    (fun f ->
      Alcotest.(check bool) "failure mentions the error" true
        (contains_sub "divi" f.Aggregate.f_error
        || contains_sub "zero" f.Aggregate.f_error
        || String.length f.Aggregate.f_error > 0))
    report.Explore.r_failures

let suite =
  [
    Alcotest.test_case "default schedule misses needle" `Quick
      test_default_schedule_misses;
    Alcotest.test_case "pct campaign finds needle" `Quick
      test_pct_campaign_finds;
    Alcotest.test_case "repro recipe reproduces" `Quick
      test_repro_recipe_reproduces;
    Alcotest.test_case "campaign deterministic" `Quick
      test_campaign_deterministic;
    Alcotest.test_case "worker-count invariant" `Quick
      test_campaign_worker_invariant;
    Alcotest.test_case "jitter contrast" `Quick test_jitter_contrast;
    Alcotest.test_case "crash isolation" `Quick test_crash_isolation;
  ]
