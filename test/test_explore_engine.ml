(* The schedule-exploration engine (lib/explore): a race the default
   deterministic schedule misses must be found by a PCT campaign, the
   printed reproduction recipe must actually reproduce it, and
   campaigns must be deterministic functions of their spec — including
   across worker counts. *)

module H = Drd_harness
module E = Drd_explore
module Explore = E.Explore
module Aggregate = E.Aggregate
module Strategy = E.Strategy

let needle_source = H.Programs.needle ()

let contains_sub sub s = Astring_contains.contains s sub

let pct_spec ?(workers = 1) ?(runs = 40) ?plateau () =
  Explore.spec ~strategy:(Strategy.Pct 3) ~workers
    ~budget:(Explore.budget ?plateau runs)
    ~pct_horizon:10_000 H.Config.full

let test_default_schedule_misses () =
  let _, r = H.Pipeline.run_source H.Config.full needle_source in
  Alcotest.(check (list string)) "needle quiet under the default schedule" []
    r.H.Pipeline.racy_objects

let test_pct_campaign_finds () =
  let report = Explore.run_campaign (pct_spec ()) ~source:needle_source in
  Alcotest.(check (list string)) "no crashed runs" []
    (List.map (fun f -> f.Aggregate.f_error) report.Explore.r_failures);
  Alcotest.(check bool) "at least one deduped race" true
    (report.Explore.r_races <> []);
  let on_array =
    List.exists
      (fun d -> contains_sub "array" d.Aggregate.d_key.Aggregate.k_object)
      report.Explore.r_races
  in
  Alcotest.(check bool) "the G.data array race is reported" true on_array;
  (* The campaign explored genuinely different interleavings. *)
  Alcotest.(check bool) "several distinct fingerprints" true
    (report.Explore.r_stats.Aggregate.st_distinct_fingerprints > 1)

let test_repro_recipe_reproduces () =
  (* The first-seen spec attached to a deduped race must replay to a
     run that reports the same race. *)
  let report = Explore.run_campaign (pct_spec ()) ~source:needle_source in
  match report.Explore.r_races with
  | [] -> Alcotest.fail "campaign found nothing to reproduce"
  | d :: _ ->
      let spec =
        Strategy.spec (pct_spec ()).Explore.e_strategy ~base:H.Config.full
          ~pct_horizon:10_000 d.Aggregate.d_first_index
      in
      Alcotest.(check int) "recipe seed matches"
        d.Aggregate.d_first_seed spec.Strategy.sp_seed;
      let compiled = H.Pipeline.compile H.Config.full ~source:needle_source in
      let obs = Explore.observe_run compiled spec in
      let replayed_keys =
        List.map (fun s -> s.Aggregate.s_key) obs.Aggregate.o_sightings
      in
      Alcotest.(check bool) "replay reports the same race" true
        (List.mem d.Aggregate.d_key replayed_keys)

let strip_wall (r : Explore.report) =
  (* Everything but the timing fields. *)
  let races =
    List.map
      (fun d ->
        ( d.Aggregate.d_key.Aggregate.k_object,
          d.Aggregate.d_key.Aggregate.k_site_a,
          d.Aggregate.d_key.Aggregate.k_site_b,
          d.Aggregate.d_count,
          d.Aggregate.d_first_index,
          d.Aggregate.d_first_seed,
          d.Aggregate.d_first_repro ))
      r.Explore.r_races
  in
  let s = r.Explore.r_stats in
  ( races,
    r.Explore.r_objects,
    List.length r.Explore.r_failures,
    ( s.Aggregate.st_runs,
      s.Aggregate.st_distinct_races,
      s.Aggregate.st_distinct_fingerprints,
      s.Aggregate.st_events,
      s.Aggregate.st_steps,
      s.Aggregate.st_equiv_classes,
      s.Aggregate.st_pruned_runs,
      s.Aggregate.st_discovery ) )

let test_campaign_deterministic () =
  let a = Explore.run_campaign (pct_spec ()) ~source:needle_source in
  let b = Explore.run_campaign (pct_spec ()) ~source:needle_source in
  Alcotest.(check bool) "same spec, same report" true
    (strip_wall a = strip_wall b)

let test_campaign_worker_invariant () =
  (* Deduped reports, first-seen attribution and the discovery curve
     must not depend on how runs landed on workers. *)
  let one = Explore.run_campaign (pct_spec ~workers:1 ()) ~source:needle_source in
  let two = Explore.run_campaign (pct_spec ~workers:2 ()) ~source:needle_source in
  Alcotest.(check bool) "1 worker = 2 workers" true
    (strip_wall one = strip_wall two)

(* The rendered report, minus machine-dependent timing: what must be
   byte-identical whenever two campaigns are equivalent. *)
let report_bytes ~target r =
  ( Explore.report_text ~timing:false ~target r,
    Explore.report_json ~timing:false r )

let benchmark_source name =
  match H.Programs.find name with
  | Some b -> b.H.Programs.b_source
  | None -> Alcotest.failf "%s benchmark missing" name

let test_worker_matrix_bytes () =
  (* The tentpole guarantee of the persistent pool: run indices are a
     pure function of the spec, workers hand rows back in completion
     order, and the fold re-sorts — so the rendered report is
     byte-identical at every worker count.  Every benchmark × both
     strategy families × both equivalence modes × workers {1,2,4}. *)
  let strategies = [ ("sweep", Strategy.Sweep); ("pct", Strategy.Pct 3) ] in
  let equivs = [ ("raw", Explore.Raw); ("hb", Explore.Hb) ] in
  List.iter
    (fun (b : H.Programs.benchmark) ->
      let source = b.H.Programs.b_source in
      let target = "-b " ^ b.H.Programs.b_name in
      List.iter
        (fun (sname, strategy) ->
          List.iter
            (fun (ename, equiv) ->
              let mk workers =
                Explore.spec ~strategy ~workers
                  ~budget:(Explore.runs_budget 6) ~pct_horizon:5_000 ~equiv
                  H.Config.full
              in
              let base =
                report_bytes ~target (Explore.run_campaign (mk 1) ~source)
              in
              List.iter
                (fun w ->
                  Alcotest.(check (pair string string))
                    (Printf.sprintf "%s/%s/%s: %d workers byte-identical"
                       b.H.Programs.b_name sname ename w)
                    base
                    (report_bytes ~target
                       (Explore.run_campaign (mk w) ~source)))
                [ 2; 4 ])
            equivs)
        strategies)
    H.Programs.benchmarks

let test_batch_invariant () =
  (* The work-queue claim granularity is a perf knob, never an output
     knob: any batch size (including one larger than the budget) yields
     the same bytes.  17 runs over 3 workers makes every batch size
     produce ragged last chunks. *)
  let sp = pct_spec ~workers:3 ~runs:17 () in
  let target = "-b needle" in
  let base =
    report_bytes ~target
      (Explore.run_campaign ~batch:1 sp ~source:needle_source)
  in
  List.iter
    (fun b ->
      Alcotest.(check (pair string string))
        (Printf.sprintf "batch %d byte-identical to batch 1" b)
        base
        (report_bytes ~target
           (Explore.run_campaign ~batch:b sp ~source:needle_source)))
    [ 2; 5; 64 ]

let test_pooled_shards_merge_identical () =
  (* Sharding × the pool: each shard drives its slice with its own
     multi-domain pool, and the wire-merged result still reproduces the
     whole campaign byte for byte. *)
  let sp = pct_spec ~workers:3 ~runs:24 () in
  let whole = Explore.run_campaign sp ~source:needle_source in
  let shards = 3 in
  let rows =
    List.concat_map
      (fun i ->
        let r =
          Explore.run_campaign ~shard:(i, shards) sp ~source:needle_source
        in
        List.map
          (fun row ->
            match Explore.row_of_json (Explore.row_to_json row) with
            | Ok row -> row
            | Error m -> Alcotest.failf "wire round-trip: %s" m)
          (Explore.rows_of_report r))
      [ 0; 1; 2 ]
  in
  let merged = Explore.merge sp rows in
  let target = "-b needle" in
  Alcotest.(check (pair string string))
    "pooled shards merge byte-identical"
    (report_bytes ~target whole)
    (report_bytes ~target merged)

let test_campaign_loop_allocation () =
  (* Allocation regression guard for the pool hot loop (the per-run
     work a worker domain repeats): observe a run through a pooled run
     context and serialize its row into a reused scratch buffer,
     exactly as Explore.run_campaign's worker body does.  With the
     resettable context the warm tsp cycle allocates around 47-49k
     minor words (recycled frames, the trie race checks, the report
     row and its sighting strings) instead of the ~150k a fresh-state
     run paid before pooling; pin a ~2x ceiling so a per-run
     allocation regression (a dropped context reuse, per-run taps or
     buffers growing into per-event ones) fails the suite, not just
     the bench.  Per-domain counter, so the measuring loop runs on
     this domain like pool worker 0 does. *)
  let compiled =
    H.Pipeline.compile H.Config.full ~source:(benchmark_source "tsp")
  in
  let ctx = H.Pipeline.Run_ctx.create compiled in
  let rsp =
    Strategy.spec Strategy.Sweep ~base:H.Config.full ~pct_horizon:5_000 0
  in
  let scratch = Buffer.create 1024 in
  let cycle () =
    let o = Explore.observe_run ~ctx compiled rsp in
    Buffer.clear scratch;
    E.Wire.row_to_buffer scratch (Aggregate.Run o);
    Buffer.length scratch
  in
  (* Warm: interned locksets, site tables, context state, buffer. *)
  ignore (cycle ());
  ignore (cycle ());
  let n = 8 in
  let before = Gc.minor_words () in
  for _ = 1 to n do
    ignore (cycle ())
  done;
  let per_run = (Gc.minor_words () -. before) /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf
       "campaign hot loop stays under the allocation ceiling (measured \
        %.0f minor words/run)"
       per_run)
    true
    (per_run < 100_000.0)

let test_plateau_budget_stops_early () =
  (* An adaptive budget: once a long stretch of runs brings no new
     distinct race, the campaign stops instead of burning the rest of
     the run budget — and says so in the stop reason. *)
  let runs = 400 in
  let r =
    Explore.run_campaign (pct_spec ~runs ~plateau:25 ()) ~source:needle_source
  in
  Alcotest.(check bool) "found the race before plateauing" true
    (r.Explore.r_races <> []);
  Alcotest.(check bool) "stopped well short of the budget" true
    (r.Explore.r_stats.Aggregate.st_runs < runs);
  (match r.Explore.r_stats.Aggregate.st_stop with
  | Aggregate.Plateau { p_window = 25; p_at = _ } -> ()
  | s -> Alcotest.failf "stop reason: %s" (Aggregate.describe_stop s));
  (* The cutoff is part of the deterministic fold: same spec, same
     truncated report byte for byte, regardless of how far a wider pool
     overshot the stop point with in-flight batches. *)
  let target = "-b needle" in
  List.iter
    (fun w ->
      let again =
        Explore.run_campaign
          (pct_spec ~workers:w ~runs ~plateau:25 ())
          ~source:needle_source
      in
      Alcotest.(check (pair string string))
        (Printf.sprintf "plateau cutoff byte-identical at %d workers" w)
        (report_bytes ~target r)
        (report_bytes ~target again))
    [ 2; 4 ]

let test_shard_merge_identity () =
  (* The distributed path: N shards, each owning the indices congruent
     to its id, merged back through the wire format, must reproduce the
     single-process report byte for byte (text and JSON). *)
  let check_benchmark name source sp =
    let whole = Explore.run_campaign sp ~source in
    let shards = 4 in
    let rows =
      List.concat_map
        (fun i ->
          let r = Explore.run_campaign ~shard:(i, shards) sp ~source in
          (* ... through the wire: encode each row, decode it back. *)
          List.map
            (fun row ->
              match Explore.row_of_json (Explore.row_to_json row) with
              | Ok row -> row
              | Error m -> Alcotest.failf "%s: wire round-trip: %s" name m)
            (Explore.rows_of_report r))
        [ 0; 1; 2; 3 ]
    in
    let merged = Explore.merge sp rows in
    let target = "-b " ^ name in
    Alcotest.(check string)
      (name ^ ": merged text report is byte-identical")
      (Explore.report_text ~timing:false ~target whole)
      (Explore.report_text ~timing:false ~target merged);
    Alcotest.(check string)
      (name ^ ": merged JSON report is byte-identical")
      (Explore.report_json ~timing:false whole)
      (Explore.report_json ~timing:false merged)
  in
  check_benchmark "needle" needle_source (pct_spec ~runs:24 ());
  let tsp =
    match H.Programs.find "tsp" with
    | Some b -> b.H.Programs.b_source
    | None -> Alcotest.fail "tsp benchmark missing"
  in
  check_benchmark "tsp" tsp
    (Explore.spec ~strategy:Strategy.Jitter ~budget:(Explore.runs_budget 8)
       H.Config.full)

let test_shard_plateau_merge () =
  (* Plateau x sharding: the window is a campaign-wide property, so a
     shard must NOT truncate locally — a shard whose own indices go
     quiet while another shard keeps discovering would otherwise stop
     below the true cutoff and the merged fold would see gaps.  Each
     shard has to emit its complete owned slice, and the merge-time
     fold alone applies the window, reproducing the single-process
     adaptive report byte for byte. *)
  let runs = 400 and shards = 4 in
  let sp = pct_spec ~runs ~plateau:25 () in
  let whole = Explore.run_campaign sp ~source:needle_source in
  (match whole.Explore.r_stats.Aggregate.st_stop with
  | Aggregate.Plateau _ -> ()
  | s ->
      Alcotest.failf "single-process run did not plateau: %s"
        (Aggregate.describe_stop s));
  let rows =
    List.concat_map
      (fun i ->
        let r = Explore.run_campaign ~shard:(i, shards) sp ~source:needle_source in
        let rows = Explore.rows_of_report r in
        (* The full owned slice, not a locally-plateaued prefix. *)
        let owned = (runs - i + shards - 1) / shards in
        Alcotest.(check int)
          (Printf.sprintf "shard %d/%d emits its whole slice" i shards)
          owned (List.length rows);
        rows)
      [ 0; 1; 2; 3 ]
  in
  Alcotest.(check (list int)) "shards cover the whole index range" []
    (Explore.missing_indices sp rows);
  let merged = Explore.merge sp rows in
  let target = "-b needle" in
  Alcotest.(check string) "merged text == single-process adaptive text"
    (Explore.report_text ~timing:false ~target whole)
    (Explore.report_text ~timing:false ~target merged);
  Alcotest.(check string) "merged JSON == single-process adaptive JSON"
    (Explore.report_json ~timing:false whole)
    (Explore.report_json ~timing:false merged)

let test_hb_pruning_soundness () =
  (* The core guarantee of hb pruning: skipping detector replays for
     runs whose happens-before class was already seen must not change
     the deduped race report.  Every benchmark, under both a
     deterministic sweep and PCT, compared field for field — races,
     first-seen attribution, repro recipes, racy objects. *)
  let strategies =
    [ ("sweep", Strategy.Sweep); ("pct", Strategy.Pct 3) ]
  in
  List.iter
    (fun (b : H.Programs.benchmark) ->
      List.iter
        (fun (sname, strategy) ->
          let mk equiv =
            Explore.spec ~strategy ~budget:(Explore.runs_budget 8)
              ~pct_horizon:5_000 ~equiv H.Config.full
          in
          let raw =
            Explore.run_campaign (mk Explore.Raw) ~source:b.H.Programs.b_source
          in
          let hb =
            Explore.run_campaign (mk Explore.Hb) ~source:b.H.Programs.b_source
          in
          let what = Printf.sprintf "%s/%s" b.H.Programs.b_name sname in
          let strip (r : Explore.report) =
            (* Everything report-visible except the equiv bookkeeping
               (which legitimately differs between modes) and timing. *)
            let races, objects, failures, stats = strip_wall r in
            let runs, dr, df, ev, st, _classes, _pruned, disc = stats in
            (races, objects, failures, (runs, dr, df, ev, st, disc))
          in
          Alcotest.(check bool)
            (what ^ ": hb report identical to raw")
            true
            (strip raw = strip hb);
          let s = hb.Explore.r_stats in
          Alcotest.(check bool)
            (what ^ ": equiv classes <= distinct fingerprints")
            true
            (s.Aggregate.st_equiv_classes
            <= s.Aggregate.st_distinct_fingerprints))
        strategies)
    H.Programs.benchmarks

let test_hb_shard_merge_identity () =
  (* The distributed path under hb equivalence: shards carry the hb
     fingerprint over the wire, and the merged fold reproduces the
     single-process hb report byte for byte — including the equiv-class
     and pruned-run counts, which therefore cannot depend on which
     process's replay cache happened to see a class first. *)
  let sp = pct_spec ~runs:24 () in
  let sp = { sp with Explore.e_equiv = Explore.Hb } in
  let whole = Explore.run_campaign sp ~source:needle_source in
  Alcotest.(check bool) "the hb campaign actually pruned" true
    (whole.Explore.r_stats.Aggregate.st_pruned_runs > 0);
  let shards = 3 in
  let rows =
    List.concat_map
      (fun i ->
        let r = Explore.run_campaign ~shard:(i, shards) sp ~source:needle_source in
        List.map
          (fun row ->
            match Explore.row_of_json (Explore.row_to_json row) with
            | Ok row -> row
            | Error m -> Alcotest.failf "wire round-trip: %s" m)
          (Explore.rows_of_report r))
      [ 0; 1; 2 ]
  in
  let merged = Explore.merge sp rows in
  let target = "-b needle" in
  Alcotest.(check string) "merged hb text report is byte-identical"
    (Explore.report_text ~timing:false ~target whole)
    (Explore.report_text ~timing:false ~target merged);
  Alcotest.(check string) "merged hb JSON report is byte-identical"
    (Explore.report_json ~timing:false whole)
    (Explore.report_json ~timing:false merged)

let test_equiv_mode_incompatible () =
  (* Shards recorded under different equivalence modes must not merge:
     the spec compatibility check treats e_equiv as load-bearing. *)
  let raw = pct_spec ~runs:8 () in
  let hb = { raw with Explore.e_equiv = Explore.Hb } in
  Alcotest.(check bool) "raw vs hb specs are incompatible" false
    (Explore.compatible raw hb);
  Alcotest.(check bool) "same equiv is compatible" true
    (Explore.compatible hb { hb with Explore.e_workers = 9 })

let test_missing_indices () =
  (* Merge-time completeness: dropping rows from a complete campaign
     must surface exactly the dropped indices. *)
  let sp = pct_spec ~runs:8 () in
  let rows =
    Explore.rows_of_report (Explore.run_campaign sp ~source:needle_source)
  in
  Alcotest.(check (list int)) "complete row set has no gaps" []
    (Explore.missing_indices sp rows);
  let dropped =
    List.filter
      (fun row ->
        let i = Aggregate.row_index row in
        i <> 3 && i <> 5)
      rows
  in
  Alcotest.(check (list int)) "dropped indices are reported in order" [ 3; 5 ]
    (Explore.missing_indices sp dropped)

let test_spec_wire_identity () =
  (* The spec a shard records is the spec merge folds under. *)
  let sp = pct_spec ~runs:12 ~plateau:5 () in
  match Explore.spec_of_json (Explore.spec_to_json ~target:"-b needle" sp) with
  | Error m -> Alcotest.failf "spec round-trip: %s" m
  | Ok sp' ->
      Alcotest.(check bool) "equal_spec" true (Explore.equal_spec sp sp');
      Alcotest.(check bool) "compatible ignores workers" true
        (Explore.compatible sp { sp' with Explore.e_workers = 9 })

let test_jitter_contrast () =
  (* Quantum jitter shuffles slice lengths but keeps the round-robin
     structure, so it does NOT manufacture the mid-burst preemption the
     needle requires — evidence the PCT result above is the scheduler's
     doing, not luck. *)
  let spec =
    {
      (pct_spec ()) with
      Explore.e_strategy = Strategy.Jitter;
    }
  in
  let report = Explore.run_campaign spec ~source:needle_source in
  Alcotest.(check (list string)) "jitter finds nothing on needle" []
    (List.map
       (fun d -> d.Aggregate.d_key.Aggregate.k_object)
       report.Explore.r_races)

let test_crash_isolation () =
  (* A program that dies in some schedules must yield failure rows, not
     a campaign abort, and healthy runs still aggregate. *)
  let source =
    {|
    class T extends Thread {
      void run() { int x = 1 / 0; }
    }
    class Main {
      static void main() {
        T t = new T();
        t.start();
        t.join();
        print("ok", 1);
      }
    }
  |}
  in
  let spec =
    {
      (Explore.default_spec H.Config.full) with
      Explore.e_strategy = Strategy.Sweep;
      e_budget = Explore.runs_budget 4;
    }
  in
  let report = Explore.run_campaign spec ~source in
  Alcotest.(check int) "all runs failed" 4
    report.Explore.r_stats.Aggregate.st_failed;
  Alcotest.(check int) "failure rows recorded" 4
    (List.length report.Explore.r_failures);
  List.iter
    (fun f ->
      Alcotest.(check bool) "failure mentions the error" true
        (contains_sub "divi" f.Aggregate.f_error
        || contains_sub "zero" f.Aggregate.f_error
        || String.length f.Aggregate.f_error > 0))
    report.Explore.r_failures

let suite =
  [
    Alcotest.test_case "default schedule misses needle" `Quick
      test_default_schedule_misses;
    Alcotest.test_case "pct campaign finds needle" `Quick
      test_pct_campaign_finds;
    Alcotest.test_case "repro recipe reproduces" `Quick
      test_repro_recipe_reproduces;
    Alcotest.test_case "campaign deterministic" `Quick
      test_campaign_deterministic;
    Alcotest.test_case "worker-count invariant" `Quick
      test_campaign_worker_invariant;
    Alcotest.test_case "worker matrix byte-identical" `Quick
      test_worker_matrix_bytes;
    Alcotest.test_case "batch size never reaches the report" `Quick
      test_batch_invariant;
    Alcotest.test_case "pooled shards merge byte-identical" `Quick
      test_pooled_shards_merge_identical;
    Alcotest.test_case "campaign hot loop allocation ceiling" `Quick
      test_campaign_loop_allocation;
    Alcotest.test_case "jitter contrast" `Quick test_jitter_contrast;
    Alcotest.test_case "crash isolation" `Quick test_crash_isolation;
    Alcotest.test_case "plateau budget stops early" `Quick
      test_plateau_budget_stops_early;
    Alcotest.test_case "shard+merge is byte-identical" `Quick
      test_shard_merge_identity;
    Alcotest.test_case "shard+plateau merges byte-identical" `Quick
      test_shard_plateau_merge;
    Alcotest.test_case "hb pruning is sound" `Quick test_hb_pruning_soundness;
    Alcotest.test_case "hb shard+merge is byte-identical" `Quick
      test_hb_shard_merge_identity;
    Alcotest.test_case "equiv modes are merge-incompatible" `Quick
      test_equiv_mode_incompatible;
    Alcotest.test_case "missing indices detected" `Quick test_missing_indices;
    Alcotest.test_case "spec wire identity" `Quick test_spec_wire_identity;
  ]
