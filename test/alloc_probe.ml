(* Scratch driver: where do the warm-run minor words go?  Not part of
   the test suite. *)

module H = Drd_harness
module E = Drd_explore

let measure name f =
  ignore (f ());
  ignore (f ());
  let n = 8 in
  let before = Gc.minor_words () in
  for _ = 1 to n do
    ignore (f ())
  done;
  let per = (Gc.minor_words () -. before) /. float_of_int n in
  Printf.printf "%-40s %10.0f minor words/run\n%!" name per

let () =
  let b = Option.get (H.Programs.find "tsp") in
  let source = b.H.Programs.b_source in
  let compiled = H.Pipeline.compile H.Config.full ~source in
  let ctx = H.Pipeline.Run_ctx.create compiled in
  measure "run fresh" (fun () -> H.Pipeline.run compiled);
  measure "run ctx" (fun () -> H.Pipeline.run ~ctx compiled);
  measure "run ctx detect:false" (fun () ->
      H.Pipeline.run ~ctx ~detect:false compiled);
  measure "run ctx engine:`Linked" (fun () ->
      H.Pipeline.run ~ctx ~engine:`Linked compiled);
  measure "run ctx detect:false no-trace?" (fun () ->
      H.Pipeline.run ~ctx ~detect:false ~engine:`Linked compiled);
  let rsp =
    E.Strategy.spec E.Strategy.Sweep ~base:H.Config.full ~pct_horizon:5_000 0
  in
  measure "observe_run ctx" (fun () -> E.Explore.observe_run ~ctx compiled rsp);
  let r = H.Pipeline.run ~ctx compiled in
  (match r.H.Pipeline.detector_stats with
  | Some s ->
      Printf.printf
        "events_in=%d cache_hits=%d own_filtered=%d weaker=%d race_checks=%d\n"
        s.Drd_core.Detector.events_in s.Drd_core.Detector.cache_hits
        s.Drd_core.Detector.ownership_filtered s.Drd_core.Detector.weaker_filtered
        s.Drd_core.Detector.race_checks
  | None -> ());
  Printf.printf "trie_nodes=%d locations=%d spec_events=%d events=%d\n"
    r.H.Pipeline.trie_nodes r.H.Pipeline.locations_tracked
    r.H.Pipeline.spec_events r.H.Pipeline.events;
  Printf.printf "races=%d sightings=%d deadlocks=%d prints=%d\n"
    (List.length r.H.Pipeline.races)
    (match r.H.Pipeline.report with
    | Some c -> List.length (Drd_core.Report.races c)
    | None -> -1)
    (List.length r.H.Pipeline.deadlocks)
    (List.length r.H.Pipeline.prints);
  let acq = ref 0 and rel = ref 0 and acc = ref 0 in
  let tap =
    {
      Drd_vm.Sink.null with
      Drd_vm.Sink.acquire = (fun ~tid:_ ~lock:_ -> incr acq);
      release = (fun ~tid:_ ~lock:_ -> incr rel);
      access = (fun ~tid:_ ~loc:_ ~kind:_ ~locks:_ ~site:_ -> incr acc);
    }
  in
  ignore (H.Pipeline.run ~ctx ~tap compiled);
  Printf.printf "acquires=%d releases=%d accesses(tap)=%d\n" !acq !rel !acc
