(* Link-time trace specialization (Specialize + Link + the Pipeline
   fast paths).

   Two families:

   - Soundness pins.  The classifier may specialize a site only when
     the licensing fact holds for {e every} execution of that site.
     Each near-miss program here embodies a fact that {e usually} holds
     but provably not always — a lock held on one call path and dropped
     on another, a receiver aliasing two allocation sites, a single
     post-start write to an otherwise read-only static — and the tests
     pin that the affected sites stay generic (no spec cell) and that
     the specialized engine is byte-identical to the frozen reference
     interpreter on them anyway.

   - Positive classification + exactness.  Programs where the facts do
     hold get their expected classes, and a late-escape program (object
     owned by its thread, read by main only after join) shows the owner
     fast path demoting exactly: same races, same event log, same
     counts as the reference engine. *)

module H = Drd_harness
module Pipeline = H.Pipeline
module Config = H.Config
module Link = Drd_ir.Link
module Ir = Drd_ir.Ir
module Site_table = Drd_ir.Site_table
module Interp = Drd_vm.Interp
module Sink = Drd_vm.Sink
open Drd_core

let compile source = Pipeline.compile Config.full ~source

(* All site ids whose registry entry lives in [meth]; [desc] further
   restricts to sites whose description mentions that token (e.g. "f"
   to select the accesses of field f and skip the receiver loads). *)
let sites_of_method ?desc (c : Pipeline.compiled) meth =
  let acc = ref [] in
  Site_table.iter c.Pipeline.prog.Ir.p_sites (fun id info ->
      let keep =
        info.Site_table.s_method = meth
        &&
        match desc with
        | None -> true
        | Some d ->
            let s = info.Site_table.s_desc in
            s = "read " ^ d || s = "write " ^ d
      in
      if keep then acc := id :: !acc);
  List.rev !acc

let class_of c site = Link.spec_class_of_site c.Pipeline.image site

let check_all_generic ?desc name c meth =
  let sites = sites_of_method ?desc c meth in
  Alcotest.(check bool)
    (name ^ ": " ^ meth ^ " has traced sites")
    true (sites <> []);
  List.iter
    (fun s ->
      match class_of c s with
      | None -> ()
      | Some _ ->
          Alcotest.failf "%s: site %d (%s) specialized, must stay generic"
            name s
            (Site_table.name c.Pipeline.prog.Ir.p_sites s))
    sites

let has_class c meth cls =
  List.exists (fun s -> class_of c s = Some cls) (sites_of_method c meth)

(* Engine byte-identity on the contract outputs, including the full
   tapped event log (the tap composes with the spec fast paths, so a
   dropped event would show up as a log divergence). *)
let observe engine c =
  let log = Event_log.create () in
  let tap =
    {
      Sink.null with
      Sink.access =
        (fun ~tid ~loc ~kind ~locks ~site ->
          Event_log.record log
            (Event_log.Access
               (Event.make_interned ~loc ~thread:tid ~locks ~kind ~site)));
      acquire =
        (fun ~tid ~lock -> Event_log.record log (Event_log.Acquire (tid, lock)));
      release =
        (fun ~tid ~lock -> Event_log.record log (Event_log.Release (tid, lock)));
    }
  in
  let r = Pipeline.run ~tap ~engine c in
  (r, Event_log.entries log)

let check_identity name c =
  let r_ref, log_ref = observe `Ref c in
  let r_spec, log_spec = observe `Spec c in
  Alcotest.(check (list string))
    (name ^ " races") r_ref.Pipeline.races r_spec.Pipeline.races;
  Alcotest.(check (list string))
    (name ^ " objects") r_ref.Pipeline.racy_objects r_spec.Pipeline.racy_objects;
  Alcotest.(check int) (name ^ " events") r_ref.Pipeline.events
    r_spec.Pipeline.events;
  Alcotest.(check int) (name ^ " steps") r_ref.Pipeline.steps
    r_spec.Pipeline.steps;
  Alcotest.(check bool) (name ^ " event log") true (log_ref = log_spec)

(* --------------------------------------------------------------- *)
(* Near miss 1: the lock is held around the hot call most of the
   time, but one call path drops it.  must-sync ∩ may-sync differ at
   bump's sites, so Sfixed must not fire; the location is static, so
   neither can Sowned; the writes are post-start, so neither can Sro. *)

let near_miss_lock_one_path =
  {|
    class W extends Thread {
      void bump() { Main.x = Main.x + 1; }
      void run() {
        synchronized (Main.lk) { bump(); }
        bump();
      }
    }
    class Main {
      static int x;
      static Object lk;
      static void main() {
        Main.lk = new Object();
        W w = new W();
        w.start();
        synchronized (Main.lk) { Main.x = Main.x + 1; }
        w.join();
        print("x", Main.x);
      }
    }
  |}

let test_near_miss_lock_one_path () =
  let c = compile near_miss_lock_one_path in
  check_all_generic "lock-one-path" c "W.bump";
  check_identity "lock-one-path" c

(* Near miss 2: the receiver field aliases two allocation sites (the
   may points-to set is not a singleton), so the component is not
   managed and Sowned must not fire; the helper runs both with and
   without the lock, so Sfixed must not fire either. *)

let near_miss_alias =
  {|
    class D { int f; }
    class W extends Thread {
      D d;
      Object lk;
      void poke() { this.d.f = this.d.f + 1; }
      void run() {
        synchronized (this.lk) { poke(); }
        poke();
      }
    }
    class Main {
      static void main() {
        D a = new D();
        D b = new D();
        W w1 = new W(); w1.d = a; w1.lk = new Object();
        W w2 = new W(); w2.d = b; w2.lk = new Object();
        w1.start(); w2.start();
        w1.join(); w2.join();
        print("f", a.f + b.f);
      }
    }
  |}

let test_near_miss_alias () =
  let c = compile near_miss_alias in
  (* The D.f accesses are the near miss (the receiver-load sites on W.d
     are genuinely read-only after init, which may classify). *)
  check_all_generic ~desc:"f" "alias" c "W.poke";
  check_identity "alias" c

(* Near miss 3: a static that is read-only for almost the whole run —
   except for one unsynchronized write after the readers have started.
   The post-start write defeats Sro for the reads; peek runs both
   locked and unlocked, defeating Sfixed; statics are never owned. *)

let near_miss_post_start_write =
  {|
    class R extends Thread {
      int peek() { return Main.cfg; }
      void run() {
        int a = 0;
        synchronized (Main.lk) { a = this.peek(); }
        int b = this.peek();
        print("r", a + b);
      }
    }
    class Main {
      static int cfg;
      static Object lk;
      static void main() {
        Main.lk = new Object();
        Main.cfg = 7;
        R r = new R();
        r.start();
        Main.cfg = 8;
        r.join();
        print("cfg", Main.cfg);
      }
    }
  |}

let test_near_miss_post_start_write () =
  let c = compile near_miss_post_start_write in
  check_all_generic "post-start-write" c "R.peek";
  check_identity "post-start-write" c

(* --------------------------------------------------------------- *)
(* Positive classifications. *)

let fixed_positive =
  {|
    class W extends Thread {
      void run() {
        synchronized (Main.lk) { Main.x = Main.x + 1; }
      }
    }
    class Main {
      static int x;
      static Object lk;
      static void main() {
        Main.lk = new Object();
        W w1 = new W();
        W w2 = new W();
        w1.start(); w2.start();
        w1.join(); w2.join();
        print("x", Main.x);
      }
    }
  |}

let test_fixed_positive () =
  let c = compile fixed_positive in
  Alcotest.(check bool)
    "W.run has an Sfixed site" true
    (has_class c "W.run" Link.Sfixed);
  check_identity "fixed-positive" c

let ro_positive =
  {|
    class R extends Thread {
      void run() { print("k", Main.k); }
    }
    class Main {
      static int k;
      static void main() {
        Main.k = 7;
        R r1 = new R();
        R r2 = new R();
        r1.start(); r2.start();
        r1.join(); r2.join();
      }
    }
  |}

let test_ro_positive () =
  let c = compile ro_positive in
  Alcotest.(check bool)
    "R.run has an Sro site" true
    (has_class c "R.run" Link.Sro);
  check_identity "ro-positive" c

(* Owned component with a late escape: each worker touches only its own
   D (single allocation site, helper called locked and unlocked so the
   sites are Sowned, not Sfixed), and after the joins main reads the
   workers' fields — the escape.  The specialized engine must demote at
   the escape and report exactly what the reference engine reports. *)

let owned_late_escape =
  {|
    class D { int f; }
    class W extends Thread {
      D d;
      void touch() { this.d.f = this.d.f + 1; }
      void run() {
        this.d = new D();
        synchronized (this) { this.touch(); }
        this.touch();
      }
    }
    class Main {
      static void main() {
        W w1 = new W();
        W w2 = new W();
        w1.start(); w2.start();
        w1.join(); w2.join();
        print("f1", w1.d.f);
        print("f2", w2.d.f);
      }
    }
  |}

let test_owned_late_escape () =
  let c = compile owned_late_escape in
  Alcotest.(check bool)
    "W.touch has an Sowned site" true
    (has_class c "W.touch" Link.Sowned);
  check_identity "owned-late-escape" c

(* --------------------------------------------------------------- *)
(* Lockset-id stability.  The Sfixed memo packs the runtime lockset id
   into its key, relying on two facts: interning is canonical (the id
   is a pure function of the member set, so re-interning the sorted
   members returns the same id), and at a Fixed site each thread
   observes one single id between forks, because the dynamic lockset is
   statically pinned.  The first is a QCheck property over arbitrary
   lock sets; the second is checked against a live run's tap. *)

let prop_intern_canonical =
  QCheck.Test.make ~count:500 ~name:"re-interning sorted members is identity"
    (QCheck.make
       QCheck.Gen.(list_size (int_bound 10) (int_range 1 40))
       ~print:(fun l -> String.concat "," (List.map string_of_int l)))
    (fun locks ->
      let id = Lockset_id.of_list locks in
      Lockset_id.of_list (Lockset_id.to_sorted_list id) = id
      && Lockset_id.intern (Lockset_id.set_of id) = id)

let test_fixed_site_lockset_stable () =
  let c = compile fixed_positive in
  let fixed_sites =
    List.filter
      (fun s -> class_of c s = Some Link.Sfixed)
      (sites_of_method c "W.run")
  in
  Alcotest.(check bool) "found Sfixed sites" true (fixed_sites <> []);
  (* site -> thread -> set of observed lockset ids *)
  let seen : (int * int, (int, unit) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 16
  in
  let tap =
    {
      Sink.null with
      Sink.access =
        (fun ~tid ~loc:_ ~kind:_ ~locks ~site ->
          if List.mem site fixed_sites then begin
            let ids =
              match Hashtbl.find_opt seen (site, tid) with
              | Some ids -> ids
              | None ->
                  let ids = Hashtbl.create 4 in
                  Hashtbl.add seen (site, tid) ids;
                  ids
            in
            Hashtbl.replace ids (locks :> int) ()
          end);
    }
  in
  ignore (Pipeline.run ~tap ~engine:`Spec c);
  Alcotest.(check bool) "fixed sites produced events" true
    (Hashtbl.length seen > 0);
  Hashtbl.iter
    (fun (site, tid) ids ->
      if Hashtbl.length ids <> 1 then
        Alcotest.failf
          "Sfixed site %d saw %d distinct lockset ids for thread %d" site
          (Hashtbl.length ids) tid;
      (* The observed id round-trips through canonical re-interning. *)
      Hashtbl.iter
        (fun id () ->
          Alcotest.(check int)
            (Printf.sprintf "site %d id canonical" site)
            id
            (Lockset_id.of_list (Lockset_id.to_sorted_list id) :> int))
        ids)
    seen

let suite =
  [
    Alcotest.test_case "near miss: lock dropped on one path" `Quick
      test_near_miss_lock_one_path;
    Alcotest.test_case "near miss: two-allocation-site alias" `Quick
      test_near_miss_alias;
    Alcotest.test_case "near miss: single post-start write" `Quick
      test_near_miss_post_start_write;
    Alcotest.test_case "positive: fixed lockset" `Quick test_fixed_positive;
    Alcotest.test_case "positive: read-only after init" `Quick
      test_ro_positive;
    Alcotest.test_case "positive: owned with late escape" `Quick
      test_owned_late_escape;
    QCheck_alcotest.to_alcotest prop_intern_canonical;
    Alcotest.test_case "fixed sites see one lockset id per thread" `Quick
      test_fixed_site_lockset_stable;
  ]
