(* The happens-before fingerprint (lib/explore/hb_fingerprint.ml): the
   commutation property that justifies replay pruning.  Swapping two
   adjacent events of a log must preserve the HB fingerprint when the
   pair is independent (different threads, different locations, no sync
   edge between them) and change it when the pair conflicts or is
   sync-ordered — while the raw order-sensitive fingerprint changes in
   both cases, which is what makes HB equivalence strictly coarser. *)

module E = Drd_explore
module Hb = E.Hb_fingerprint
module Sink = Drd_vm.Sink
module Event = Drd_core.Event
module Lockset_id = Drd_core.Lockset_id

(* A synthetic event log, fed straight into the taps — no VM needed. *)
type op =
  | Acc of int * int * Event.kind (* tid, loc, kind *)
  | Acq of int * int (* tid, lock *)
  | Rel of int * int
  | Start of int * int (* parent, child *)
  | Join of int * int (* joiner, joinee *)

let apply (tap : Sink.t) = function
  | Acc (tid, loc, kind) ->
      tap.Sink.access ~tid ~loc ~kind ~locks:Lockset_id.empty ~site:0
  | Acq (tid, lock) -> tap.Sink.acquire ~tid ~lock
  | Rel (tid, lock) -> tap.Sink.release ~tid ~lock
  | Start (parent, child) -> tap.Sink.thread_start ~parent ~child
  | Join (joiner, joinee) -> tap.Sink.thread_join ~joiner ~joinee

let hb_fp ops =
  let tap, fp = Hb.tap () in
  List.iter (apply tap) ops;
  fp ()

let raw_fp ops =
  let tap, fp = E.Explore.fingerprint_tap () in
  List.iter (apply tap) ops;
  fp ()

let swap_at i ops =
  List.mapi
    (fun j op ->
      if j = i then List.nth ops (i + 1)
      else if j = i + 1 then List.nth ops i
      else op)
    ops

(* A little surrounding context so the swapped pair is not the whole
   log: same-thread accesses before and after, which also checks that
   downstream events feel (or don't feel) the reorder. *)
let in_context pair =
  [ Acc (0, 100, Event.Write); Acc (1, 101, Event.Write) ]
  @ pair
  @ [ Acc (0, 102, Event.Read); Acc (1, 103, Event.Read) ]

let check_swap ~what ~hb_preserved pair =
  let ops = in_context pair in
  let i = 2 (* the pair starts after the 2-op prefix *) in
  let swapped = swap_at i ops in
  Alcotest.(check bool)
    (what ^ ": hb fingerprint " ^ if hb_preserved then "preserved" else "changed")
    hb_preserved
    (hb_fp ops = hb_fp swapped);
  Alcotest.(check bool)
    (what ^ ": raw fingerprint changed")
    false
    (raw_fp ops = raw_fp swapped)

let test_independent_pair_preserved () =
  (* Different threads, different locations, no sync edge: the classic
     independent commutation.  HB equal, raw different — the HB
     relation is strictly coarser. *)
  check_swap ~what:"independent accesses" ~hb_preserved:true
    [ Acc (0, 1, Event.Write); Acc (1, 2, Event.Write) ];
  check_swap ~what:"independent reads" ~hb_preserved:true
    [ Acc (0, 1, Event.Read); Acc (1, 2, Event.Read) ]

let test_conflicting_pair_changed () =
  check_swap ~what:"write/read same location" ~hb_preserved:false
    [ Acc (0, 5, Event.Write); Acc (1, 5, Event.Read) ];
  check_swap ~what:"write/write same location" ~hb_preserved:false
    [ Acc (0, 5, Event.Write); Acc (1, 5, Event.Write) ];
  (* Same-location reads are dependent too — deliberately conservative:
     the detector's ownership filter cares which thread touched a
     location first even for reads. *)
  check_swap ~what:"read/read same location" ~hb_preserved:false
    [ Acc (0, 5, Event.Read); Acc (1, 5, Event.Read) ];
  (* Program order: two accesses of one thread never commute. *)
  check_swap ~what:"same-thread accesses" ~hb_preserved:false
    [ Acc (0, 1, Event.Write); Acc (0, 2, Event.Write) ]

let test_sync_ordered_pair_changed () =
  (* T0 releases a lock T1 then acquires: a hand-off edge.  Swapping
     the release/acquire pair reverses the edge, and T1's later access
     (in_context's suffix) no longer carries T0's clock. *)
  let log =
    [
      Acq (0, 9);
      Acc (0, 1, Event.Write);
      Rel (0, 9);
      Acq (1, 9);
      Acc (1, 2, Event.Write);
      Rel (1, 9);
    ]
  in
  let i = 2 (* Rel (0, 9); Acq (1, 9) *) in
  Alcotest.(check bool) "lock hand-off swap changes hb" false
    (hb_fp log = hb_fp (swap_at i log));
  Alcotest.(check bool) "lock hand-off swap changes raw" false
    (raw_fp log = raw_fp (swap_at i log));
  (* Thread start: the child's first access must order after the fork.
     Swapping the start with the child's access erases that edge. *)
  let fork = [ Acc (0, 1, Event.Write); Start (0, 1); Acc (1, 2, Event.Write) ] in
  Alcotest.(check bool) "fork-edge swap changes hb" false
    (hb_fp fork = hb_fp (swap_at 1 fork));
  (* Thread join mirrors it: the joiner's access after the join sees
     the joinee's clock only in the original order. *)
  let join =
    [ Acc (1, 1, Event.Write); Join (0, 1); Acc (0, 2, Event.Write) ]
  in
  Alcotest.(check bool) "join-edge swap changes hb" false
    (hb_fp join = hb_fp (swap_at 1 join))

let test_commuted_runs_share_class_across_whole_log () =
  (* Not just a single swap: two schedules of the same partial order
     with many independent events interleaved differently collapse to
     one class.  T0 works on locs 1..4, T1 on locs 11..14; round-robin
     vs sequential interleavings. *)
  let t0 = List.init 4 (fun i -> Acc (0, 1 + i, Event.Write)) in
  let t1 = List.init 4 (fun i -> Acc (1, 11 + i, Event.Write)) in
  let sequential = t0 @ t1 in
  let interleaved =
    List.concat (List.map2 (fun a b -> [ a; b ]) t0 t1)
  in
  Alcotest.(check bool) "same hb class" true
    (hb_fp sequential = hb_fp interleaved);
  Alcotest.(check bool) "distinct raw fingerprints" false
    (raw_fp sequential = raw_fp interleaved)

let test_no_affine_cancellation () =
  (* Regression: QCheck once found this pair of genuinely inequivalent
     schedules (the swapped pair conflicts on location 3, and the clock
     snapshots provably differ) whose fingerprints still collided.  Each
     FNV step is locally affine — (h ⊕ v) * prime — so snapshots
     differing in one small clock component hash to values a small
     multiple of a power of the prime apart, and three such correlated
     differences cancelled exactly in the commutative sum.  The
     avalanche finalizer in Hb_fingerprint breaks the affine structure;
     this log must keep splitting. *)
  let ops =
    [
      Rel (1, 52);
      Rel (1, 50);
      Acq (0, 51);
      Acc (0, 3, Event.Write);
      Rel (2, 52);
      Rel (2, 50);
      Acq (2, 50);
      Acc (2, 3, Event.Read);
      Acq (0, 52);
      Acc (2, 4, Event.Write);
      Acc (0, 3, Event.Write);
      Acc (0, 3, Event.Write);
      Acc (2, 3, Event.Read);
      Acq (1, 52);
      Acc (2, 4, Event.Read);
    ]
  in
  Alcotest.(check bool) "conflicting swap splits the class" false
    (hb_fp ops = hb_fp (swap_at 11 ops))

(* ---- the QCheck commutation property over generated logs ---- *)

let gen_log =
  QCheck.Gen.(
    let gen_op =
      oneof
        [
          map3
            (fun tid loc w ->
              Acc (tid, loc, if w then Event.Write else Event.Read))
            (int_range 0 2) (int_range 1 6) bool;
          map2 (fun tid lock -> Acq (tid, lock)) (int_range 0 2)
            (int_range 50 52);
          map2 (fun tid lock -> Rel (tid, lock)) (int_range 0 2)
            (int_range 50 52);
        ]
    in
    list_size (int_range 6 20) gen_op)

(* Positions of adjacent access pairs by different threads; the pair is
   independent iff the locations differ. *)
let adjacent_access_pairs ops =
  let arr = Array.of_list ops in
  let out = ref [] in
  Array.iteri
    (fun i op ->
      if i + 1 < Array.length arr then
        match (op, arr.(i + 1)) with
        | Acc (t1, l1, _), Acc (t2, l2, _) when t1 <> t2 ->
            out := (i, l1 = l2) :: !out
        | _ -> ())
    arr;
  !out

let prop_adjacent_swap =
  QCheck.Test.make ~count:500
    ~name:"adjacent swap: hb preserved iff pair independent"
    (QCheck.make gen_log) (fun ops ->
      List.for_all
        (fun (i, same_loc) ->
          let swapped = swap_at i ops in
          let hb_equal = hb_fp ops = hb_fp swapped in
          if same_loc then
            (* Conflicting pair: the class must split. *)
            not hb_equal
          else
            (* Independent pair (different threads, different locations,
               adjacent so no sync op between them). *)
            hb_equal)
        (adjacent_access_pairs ops))

let suite =
  List.map QCheck_alcotest.to_alcotest [ prop_adjacent_swap ]
  @ [
      Alcotest.test_case "independent pair: hb preserved, raw not" `Quick
        test_independent_pair_preserved;
      Alcotest.test_case "conflicting pair: both change" `Quick
        test_conflicting_pair_changed;
      Alcotest.test_case "sync-ordered pair: both change" `Quick
        test_sync_ordered_pair_changed;
      Alcotest.test_case "whole-log commutation collapses to one class"
        `Quick test_commuted_runs_share_class_across_whole_log;
      Alcotest.test_case "affine cancellation regression (avalanche)"
        `Quick test_no_affine_cancellation;
    ]
